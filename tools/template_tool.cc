// Validates a function-template XML file and optionally test-builds the
// region for concrete argument values:
//
//   template_tool check <template.xml>
//   template_tool region <template.xml> <arg1> <arg2> ...

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "core/function_template.h"
#include "geometry/hyperrectangle.h"
#include "geometry/region.h"
#include "sql/value.h"

using namespace fnproxy;

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage:\n"
                 "  template_tool check  <template.xml>\n"
                 "  template_tool region <template.xml> <arg1> <arg2> ...\n");
    return 2;
  }
  std::ifstream in(argv[2]);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", argv[2]);
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto tmpl = core::FunctionTemplate::FromXml(buffer.str());
  if (!tmpl.ok()) {
    std::fprintf(stderr, "INVALID: %s\n", tmpl.status().ToString().c_str());
    return 1;
  }
  std::printf("function:   %s\n", tmpl->name().c_str());
  std::printf("shape:      %s (%zu-D)\n",
              geometry::ShapeKindName(tmpl->shape()), tmpl->num_dimensions());
  std::printf("parameters:");
  for (const std::string& p : tmpl->params()) std::printf(" $%s", p.c_str());
  std::printf("\ncoordinate columns:");
  for (const std::string& c : tmpl->coordinate_columns()) {
    std::printf(" %s", c.c_str());
  }
  std::printf("\n");

  if (std::string(argv[1]) == "region") {
    std::vector<sql::Value> args;
    for (int i = 3; i < argc; ++i) {
      args.push_back(sql::ParseValueFromText(argv[i]));
    }
    auto region = tmpl->BuildRegion(args);
    if (!region.ok()) {
      std::fprintf(stderr, "region build failed: %s\n",
                   region.status().ToString().c_str());
      return 1;
    }
    std::printf("region:     %s\n", (*region)->ToString().c_str());
    std::printf("bounding box: %s\n",
                (*region)->BoundingBox().ToString().c_str());
  }
  std::printf("OK\n");
  return 0;
}
