// Command-line driver for the whole-program concurrency checker: scans the
// given C++ files (directories recurse; only .h/.cc are taken), runs every
// lockcheck pass over them as one program, and prints diagnostics in the
// shared `file:line: severity [check-id] message` format (docs/FORMATS.md
// §12). CI runs `fnproxy_lockcheck --werror src/`.
//
// Exit status: 0 clean, 1 findings (errors, or warnings under --werror),
// 2 usage error or unreadable input.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/lockcheck.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--werror] <file-or-directory>...\n"
               "Runs the whole-program concurrency checks over C++ sources.\n"
               "Directories are scanned recursively for .h/.cc files.\n",
               argv0);
  return 2;
}

bool IsSourcePath(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc";
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool werror = false;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--werror") {
      werror = true;
    } else if (arg == "--help" || arg == "-h") {
      return Usage(argv[0]);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return Usage(argv[0]);
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) return Usage(argv[0]);

  std::vector<std::string> paths;
  for (const std::string& input : inputs) {
    std::error_code ec;
    if (std::filesystem::is_directory(input, ec)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(input, ec)) {
        if (entry.is_regular_file() && IsSourcePath(entry.path())) {
          paths.push_back(entry.path().string());
        }
      }
      if (ec) {
        std::fprintf(stderr, "cannot scan directory: %s\n", input.c_str());
        return 2;
      }
    } else {
      paths.push_back(input);
    }
  }
  std::sort(paths.begin(), paths.end());

  std::vector<fnproxy::analysis::SourceFile> files;
  files.reserve(paths.size());
  for (const std::string& path : paths) {
    fnproxy::analysis::SourceFile f;
    f.path = path;
    if (!ReadFile(path, &f.content)) {
      std::fprintf(stderr, "cannot read file: %s\n", path.c_str());
      return 2;
    }
    files.push_back(std::move(f));
  }

  const fnproxy::analysis::LockcheckResult result =
      fnproxy::analysis::RunLockcheck(files);

  size_t errors = 0, warnings = 0;
  for (const auto& d : result.diagnostics) {
    std::printf("%s\n", d.ToString().c_str());
    if (d.severity == fnproxy::lint::Severity::kError) {
      ++errors;
    } else {
      ++warnings;
    }
  }
  std::fprintf(stderr, "fnproxy_lockcheck: %zu file(s), %zu error(s), %zu warning(s)\n",
               files.size(), errors, warnings);
  if (errors > 0 || (werror && warnings > 0)) return 1;
  return 0;
}
