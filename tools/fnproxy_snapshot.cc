// Command-line utility for warm-restart snapshot and spill files
// (docs/FORMATS.md §13, docs/STORAGE.md):
//
//   fnproxy_snapshot inspect <file>   section map, entries, stats summary
//   fnproxy_snapshot verify  <file>   full integrity check (exit 0 = intact)
//
// `verify` goes beyond the container checksums: every embedded segment is
// parsed and decoded back to a hot table, so a snapshot that passes here is
// one the proxy can actually restore from.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "storage/segment.h"
#include "storage/wire.h"

using namespace fnproxy;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  fnproxy_snapshot inspect <file>\n"
               "  fnproxy_snapshot verify  <file>\n");
  return 2;
}

const char* SectionName(uint32_t id) {
  switch (id) {
    case storage::kSectionMeta:
      return "META";
    case storage::kSectionEntries:
      return "ENTRIES";
    case storage::kSectionStats:
      return "STATS";
    default:
      return "(unknown)";
  }
}

/// One parsed snapshot entry body (the subset the tool reports on).
struct EntryInfo {
  std::string template_id;
  bool truncated = false;
  uint64_t access_count = 0;
  std::string segment_bytes;
};

/// Walks the ENTRIES payload. Returns false (with a message) on truncation.
bool ReadEntries(std::string_view payload, std::vector<EntryInfo>* out) {
  storage::ByteReader reader(payload);
  const uint64_t count = reader.GetVarint();
  for (uint64_t i = 0; i < count && reader.ok(); ++i) {
    EntryInfo info;
    info.template_id = reader.GetString();
    reader.GetString();  // nonspatial fingerprint
    reader.GetString();  // param fingerprint
    reader.GetString();  // region XML
    info.truncated = reader.GetU8() != 0;
    reader.GetZigzag();  // last access
    info.access_count = reader.GetVarint();
    info.segment_bytes = reader.GetString();
    if (reader.ok()) out->push_back(std::move(info));
  }
  return reader.ok();
}

int Inspect(const std::string& path) {
  auto file = storage::ReadFileToString(path);
  if (!file.ok()) {
    std::fprintf(stderr, "%s\n", file.status().ToString().c_str());
    return 1;
  }
  auto sections = storage::ParseSnapshotFile(*file);
  if (!sections.ok()) {
    std::fprintf(stderr, "corrupt container: %s\n",
                 sections.status().ToString().c_str());
    return 1;
  }
  std::printf("file: %s (%zu bytes, %zu sections)\n", path.c_str(),
              file->size(), sections->size());
  for (const storage::Section& section : *sections) {
    std::printf("  section %u %-8s %10zu bytes  checksum ok\n", section.id,
                SectionName(section.id), section.payload.size());
  }
  for (const storage::Section& section : *sections) {
    if (section.id == storage::kSectionMeta) {
      storage::ByteReader reader(section.payload);
      const uint32_t version = reader.GetU32();
      const uint8_t mode = reader.GetU8();
      const int64_t written_micros = reader.GetZigzag();
      if (!reader.ok()) {
        std::fprintf(stderr, "META truncated\n");
        return 1;
      }
      std::printf("meta: version %u, mode %u, written at virtual t=%lldus\n",
                  version, mode, static_cast<long long>(written_micros));
    }
  }
  for (const storage::Section& section : *sections) {
    if (section.id != storage::kSectionEntries) continue;
    std::vector<EntryInfo> entries;
    if (!ReadEntries(section.payload, &entries)) {
      std::fprintf(stderr, "ENTRIES truncated\n");
      return 1;
    }
    std::printf("entries: %zu\n", entries.size());
    size_t raw_total = 0;
    size_t encoded_total = 0;
    for (size_t i = 0; i < entries.size(); ++i) {
      const EntryInfo& info = entries[i];
      auto segment = storage::FrozenSegment::Parse(info.segment_bytes);
      if (!segment.ok()) {
        std::printf("  [%zu] template=%s  BAD SEGMENT: %s\n", i,
                    info.template_id.c_str(),
                    segment.status().ToString().c_str());
        continue;
      }
      const sql::ColumnarTable thawed = segment->Thaw();
      raw_total += thawed.ByteSize();
      encoded_total += info.segment_bytes.size();
      std::printf("  [%zu] template=%s rows=%zu cols=%zu encoded=%zuB",
                  i, info.template_id.c_str(), segment->num_rows(),
                  segment->num_columns(), info.segment_bytes.size());
      if (info.truncated) std::printf(" truncated");
      std::printf("\n");
      for (size_t c = 0; c < segment->num_columns(); ++c) {
        std::printf("        col %-20s %s\n",
                    segment->schema().column(c).name.c_str(),
                    storage::ColumnEncodingName(segment->encoding(c)));
      }
    }
    if (encoded_total > 0) {
      std::printf("compression: %zu raw -> %zu encoded (%.2fx)\n", raw_total,
                  encoded_total,
                  static_cast<double>(raw_total) /
                      static_cast<double>(encoded_total));
    }
  }
  for (const storage::Section& section : *sections) {
    if (section.id != storage::kSectionStats) continue;
    storage::ByteReader reader(section.payload);
    const uint64_t counters = reader.GetVarint();
    uint64_t requests = 0;
    for (uint64_t i = 0; i < counters && reader.ok(); ++i) {
      const uint64_t value = reader.GetVarint();
      if (i == 0) requests = value;
    }
    reader.GetVarint();  // origin retries
    reader.GetVarint();  // breaker transitions
    reader.GetDouble();  // coverage served
    const uint64_t records = reader.GetVarint();
    if (!reader.ok()) {
      std::fprintf(stderr, "STATS truncated\n");
      return 1;
    }
    std::printf("stats: %llu counters (requests=%llu), %llu query records\n",
                static_cast<unsigned long long>(counters),
                static_cast<unsigned long long>(requests),
                static_cast<unsigned long long>(records));
  }
  return 0;
}

int Verify(const std::string& path) {
  auto file = storage::ReadFileToString(path);
  if (!file.ok()) {
    std::fprintf(stderr, "FAIL: %s\n", file.status().ToString().c_str());
    return 1;
  }
  auto sections = storage::ParseSnapshotFile(*file);
  if (!sections.ok()) {
    std::fprintf(stderr, "FAIL: %s\n", sections.status().ToString().c_str());
    return 1;
  }
  size_t segments = 0;
  size_t rows = 0;
  for (const storage::Section& section : *sections) {
    if (section.id != storage::kSectionEntries) continue;
    std::vector<EntryInfo> entries;
    if (!ReadEntries(section.payload, &entries)) {
      std::fprintf(stderr, "FAIL: ENTRIES section truncated\n");
      return 1;
    }
    for (const EntryInfo& info : entries) {
      auto segment = storage::FrozenSegment::Parse(info.segment_bytes);
      if (!segment.ok()) {
        std::fprintf(stderr, "FAIL: bad segment (template %s): %s\n",
                     info.template_id.c_str(),
                     segment.status().ToString().c_str());
        return 1;
      }
      // Decode every column: a segment that thaws is one FindHot can serve.
      const sql::ColumnarTable thawed = segment->Thaw();
      rows += thawed.num_rows();
      ++segments;
    }
  }
  std::printf("OK: %zu sections, %zu segments, %zu rows\n", sections->size(),
              segments, rows);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) return Usage();
  const std::string command = argv[1];
  if (command == "inspect") return Inspect(argv[2]);
  if (command == "verify") return Verify(argv[2]);
  return Usage();
}
