// fnproxy_lint: static checker for function-template and query-template
// files. Prints one diagnostic per line in the format
//
//   file:line: severity [check-id] message
//
// and exits 1 when any error-severity diagnostic was emitted, 2 on usage or
// I/O problems, 0 when every input lints clean (warnings alone do not fail
// the run unless --werror is given). Directories are scanned recursively for
// *.xml files.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace {

int Usage() {
  std::cerr << "usage: fnproxy_lint [--werror] <file-or-directory>...\n"
            << "Lints function-template / query-template XML files.\n"
            << "Directories are scanned recursively for *.xml.\n";
  return 2;
}

bool ReadFile(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool werror = false;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--werror") {
      werror = true;
    } else if (arg == "-h" || arg == "--help") {
      return Usage();
    } else {
      inputs.push_back(std::move(arg));
    }
  }
  if (inputs.empty()) return Usage();

  std::vector<std::string> files;
  for (const std::string& input : inputs) {
    std::error_code ec;
    if (std::filesystem::is_directory(input, ec)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(input, ec)) {
        if (entry.is_regular_file() && entry.path().extension() == ".xml") {
          files.push_back(entry.path().string());
        }
      }
      if (ec) {
        std::cerr << "fnproxy_lint: cannot scan " << input << ": "
                  << ec.message() << "\n";
        return 2;
      }
    } else {
      files.push_back(input);
    }
  }
  if (files.empty()) {
    std::cerr << "fnproxy_lint: no .xml files found\n";
    return 2;
  }
  std::sort(files.begin(), files.end());

  size_t errors = 0;
  size_t warnings = 0;
  for (const std::string& file : files) {
    std::string content;
    if (!ReadFile(file, content)) {
      std::cerr << "fnproxy_lint: cannot read " << file << "\n";
      return 2;
    }
    fnproxy::lint::LintResult result =
        fnproxy::lint::LintTemplateFile(file, content);
    for (const fnproxy::lint::Diagnostic& d : result.diagnostics) {
      std::cout << d.ToString() << "\n";
      if (d.severity == fnproxy::lint::Severity::kError) {
        ++errors;
      } else {
        ++warnings;
      }
    }
  }

  std::cerr << "fnproxy_lint: " << files.size() << " file(s), " << errors
            << " error(s), " << warnings << " warning(s)\n";
  if (errors > 0 || (werror && warnings > 0)) return 1;
  return 0;
}
