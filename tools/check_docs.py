#!/usr/bin/env python3
"""Static checks for the repo's documentation.

Two gates, run from the repo root (CI's docs job):

1. Intra-repo markdown links. Every relative link target in a tracked
   markdown file must exist on disk. External schemes (http, https,
   mailto) and pure in-page anchors are skipped; anchors on relative
   links are stripped before the existence check.

2. Metric-name catalog. docs/OBSERVABILITY.md is the catalog of every
   metric the code registers. Each `fnproxy_*` token mentioned in the
   docs (after stripping the Prometheus histogram-expansion suffixes
   _bucket/_sum/_count) must be a name registered somewhere in src/, and
   every name registered in src/ must be documented in the catalog — so
   the doc can neither drift ahead of the code nor fall behind it.

3. Encoding catalog. docs/STORAGE.md documents every frozen-segment
   column encoding by its wire name (the ColumnEncodingName strings in
   src/storage/segment.cc). Adding an encoder without a byte-layout doc,
   or documenting one that no longer exists, fails the check.

Usage:
  check_docs.py [--root DIR]
"""

import argparse
import pathlib
import re
import sys

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
METRIC_RE = re.compile(r"fnproxy_[a-z0-9_]+")
# Quoted literals only: metric names are always registered as strings, and
# this keeps CMake target names like fnproxy_core out of the catalog.
SRC_METRIC_RE = re.compile(r'"(fnproxy_[a-z0-9_]+)"')
SKIP_SCHEMES = ("http://", "https://", "mailto:")
HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


# Research-material digests dropped in by the paper pipeline, not
# hand-maintained docs; their links point at assets that were never vendored.
SKIP_FILES = {"PAPER.md", "PAPERS.md", "SNIPPETS.md", "ISSUE.md"}


def markdown_files(root):
    skip_dirs = {"build", ".git", "third_party"}
    for path in sorted(root.rglob("*.md")):
        if any(part in skip_dirs for part in path.parts):
            continue
        if path.name in SKIP_FILES:
            continue
        yield path


def check_links(root):
    errors = []
    for md in markdown_files(root):
        text = md.read_text(encoding="utf-8")
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
                continue
            target = target.split("#", 1)[0]
            if not target:
                continue
            resolved = (md.parent / target).resolve()
            if not resolved.exists():
                errors.append(
                    f"{md.relative_to(root)}: broken link -> {match.group(1)}"
                )
    return errors


def strip_histogram_suffix(name, families):
    """_bucket/_sum/_count are render-time expansions, not family names."""
    for suffix in HISTOGRAM_SUFFIXES:
        if name.endswith(suffix) and name[: -len(suffix)] in families:
            return name[: -len(suffix)]
    return name


def check_metric_catalog(root):
    errors = []
    catalog_path = root / "docs" / "OBSERVABILITY.md"
    if not catalog_path.exists():
        return [f"missing metric catalog: {catalog_path.relative_to(root)}"]

    registered = set()
    for src in sorted((root / "src").rglob("*")):
        if src.suffix not in (".cc", ".h"):
            continue
        registered.update(SRC_METRIC_RE.findall(src.read_text(encoding="utf-8")))

    # CMake library names (fnproxy_obs, fnproxy_core, ...) and tool binaries
    # (fnproxy_lint) share the prefix; they are not metrics.
    non_metrics = {
        f"fnproxy_{d.name}" for d in (root / "src").iterdir() if d.is_dir()
    }
    non_metrics.update(
        f"fnproxy_{t.stem.removeprefix('fnproxy_')}"
        for t in (root / "tools").glob("fnproxy_*")
    )

    documented_raw = set(
        METRIC_RE.findall(catalog_path.read_text(encoding="utf-8"))
    )
    documented = {
        strip_histogram_suffix(name, registered)
        for name in documented_raw
        if name not in non_metrics
    }

    for name in sorted(documented - registered):
        errors.append(
            f"docs/OBSERVABILITY.md documents '{name}' but no src/ file "
            "registers it"
        )
    for name in sorted(registered - documented):
        errors.append(
            f"src/ registers '{name}' but docs/OBSERVABILITY.md does not "
            "document it"
        )
    return errors


ENCODING_NAME_RE = re.compile(r'return "([a-z0-9_]+)";')


def check_encoding_catalog(root):
    errors = []
    doc_path = root / "docs" / "STORAGE.md"
    if not doc_path.exists():
        return [f"missing storage doc: {doc_path.relative_to(root)}"]
    segment_cc = root / "src" / "storage" / "segment.cc"
    text = segment_cc.read_text(encoding="utf-8")
    # The wire names live in ColumnEncodingName's switch, before the next
    # function body.
    switch = text.split("ColumnEncodingName", 1)[1].split("\n}\n", 1)[0]
    implemented = set(ENCODING_NAME_RE.findall(switch))
    if not implemented:
        return [f"could not extract encoding names from {segment_cc}"]

    doc_text = doc_path.read_text(encoding="utf-8")
    documented = {
        name
        for name in re.findall(r"`([a-z0-9_]+)`", doc_text)
        if name in implemented or name.endswith(("_int", "_double",
                                                 "_string", "_bool",
                                                 "_mixed", "_null"))
    }
    for name in sorted(documented - implemented):
        errors.append(
            f"docs/STORAGE.md documents encoding '{name}' that "
            "src/storage/segment.cc does not implement"
        )
    for name in sorted(implemented - documented):
        errors.append(
            f"src/storage/segment.cc implements encoding '{name}' but "
            "docs/STORAGE.md does not document it"
        )
    return errors


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--root", default=".")
    args = parser.parse_args()
    root = pathlib.Path(args.root).resolve()

    errors = (
        check_links(root)
        + check_metric_catalog(root)
        + check_encoding_catalog(root)
    )
    for error in errors:
        print(f"error: {error}", file=sys.stderr)
    if errors:
        sys.exit(f"{len(errors)} documentation problem(s)")
    print(
        "docs ok: links resolve, metric catalog matches src/, "
        "encoding catalog matches segment.cc"
    )


if __name__ == "__main__":
    main()
