// Replays a Radial trace file through the full simulated pipeline
// (RBE -> LAN -> function proxy -> WAN -> synthetic SkyServer) under a
// chosen caching scheme and prints the run summary:
//
//   run_trace <trace-file> [scheme] [cache-bytes]
//
// scheme: nc | pc | full | region | containment   (default: full)
// cache-bytes: result-store budget, 0 = unlimited (default).

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "workload/experiment.h"

using namespace fnproxy;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: run_trace <trace-file> [nc|pc|full|region|containment]"
                 " [cache-bytes]\n");
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", argv[1]);
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto trace = workload::Trace::Deserialize(buffer.str());
  if (!trace.ok()) {
    std::fprintf(stderr, "trace parse error: %s\n",
                 trace.status().ToString().c_str());
    return 1;
  }
  if (trace->form_path != "/radial") {
    std::fprintf(stderr, "run_trace drives the /radial form; got %s\n",
                 trace->form_path.c_str());
    return 1;
  }

  core::CachingMode mode = core::CachingMode::kActiveFull;
  if (argc > 2) {
    std::string name = argv[2];
    if (name == "nc") mode = core::CachingMode::kNoCache;
    else if (name == "pc") mode = core::CachingMode::kPassive;
    else if (name == "full") mode = core::CachingMode::kActiveFull;
    else if (name == "region") mode = core::CachingMode::kActiveRegionContainment;
    else if (name == "containment") mode = core::CachingMode::kActiveContainmentOnly;
    else {
      std::fprintf(stderr, "unknown scheme %s\n", argv[2]);
      return 2;
    }
  }
  size_t cache_bytes =
      argc > 3 ? static_cast<size_t>(std::atoll(argv[3])) : 0;

  // Build the standard experiment substrate but replay the user's trace.
  workload::SkyExperiment::Options options;
  options.trace.num_queries = 1;  // Placeholder; we replay the file below.
  workload::SkyExperiment experiment(options);

  util::SimulatedClock clock;
  server::OriginWebApp app(experiment.database(), &clock,
                           options.server_costs);
  if (auto s = app.RegisterForm("/radial", workload::kRadialTemplateSql);
      !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  net::SimulatedChannel wan(&app, options.wan, &clock);
  core::ProxyConfig config;
  config.mode = mode;
  config.max_cache_bytes = cache_bytes;
  core::FunctionProxy proxy(config, &experiment.templates(), &wan, &clock);
  net::SimulatedChannel lan(&proxy, options.lan, &clock);
  workload::RemoteBrowserEmulator rbe(&lan, &clock);

  workload::RbeResult result = rbe.Run(*trace);
  const core::ProxyStats& stats = proxy.stats();
  std::printf("scheme:              %s\n", core::CachingModeName(mode));
  std::printf("queries:             %zu (%lu errors)\n",
              trace->queries.size(),
              static_cast<unsigned long>(result.errors));
  std::printf("avg response:        %.0f ms (first 10k: %.0f ms)\n",
              result.AverageResponseMillis(),
              result.AverageResponseMillis(10000));
  std::printf("cache efficiency:    %.3f\n", stats.AverageCacheEfficiency());
  std::printf("hits:                exact %lu, containment %lu, "
              "region-containment %lu, overlap %lu\n",
              static_cast<unsigned long>(stats.exact_hits),
              static_cast<unsigned long>(stats.containment_hits),
              static_cast<unsigned long>(stats.region_containments),
              static_cast<unsigned long>(stats.overlaps_handled));
  std::printf("misses:              %lu\n",
              static_cast<unsigned long>(stats.misses));
  std::printf("origin requests:     %lu (%.1f MB received)\n",
              static_cast<unsigned long>(wan.total_requests()),
              static_cast<double>(wan.total_bytes_received()) / (1024 * 1024));
  std::printf("final cache:         %zu entries, %.1f MB\n",
              proxy.cache().num_entries(),
              static_cast<double>(proxy.cache().bytes_used()) / (1024 * 1024));
  return result.errors == 0 ? 0 : 1;
}
