// Replays a Radial trace file through the full simulated pipeline
// (RBE -> LAN -> function proxy -> WAN -> synthetic SkyServer) under a
// chosen caching scheme and prints the run summary:
//
//   run_trace <trace-file> [scheme] [cache-bytes] [--fault-profile=<name>]
//             [--threads=N] [--proxies=N] [--trace-out=PATH]
//             [--snapshot-out=PATH] [--snapshot-in=PATH] [--expect-first-warm]
//
// scheme: nc | pc | full | region | containment   (default: full)
// cache-bytes: result-store budget, 0 = unlimited (default).
// threads: closed-loop client workers sharing one proxy (default 1, the
//   classic sequential replay). N > 1 replays through the concurrent driver
//   (sharded cache, wall-clock latencies) and requires the healthy profile.
// proxies: size of the cooperative tier (default 1, the classic single
//   proxy). N > 1 wires a ProxyTier — round-robin router, consistent-hash
//   ownership, peer lookups before origin trips — and requires the healthy
//   profile; see docs/FORMATS.md.
// trace-out: write one JSON span tree per query (JSONL) to PATH; the schema
//   is documented in docs/OBSERVABILITY.md.
// snapshot-out: enable the storage tier and write a warm-restart snapshot
//   (docs/FORMATS.md §13) at clean shutdown.
// snapshot-in: restore cache + stats from a snapshot before replaying (the
//   warm-restart half of the round trip; single-threaded replays only).
// expect-first-warm: exit nonzero unless the first query of this replay was
//   answered from the (restored) cache without an origin round trip — the
//   CI warm-restart smoke check.
// fault-profile:
//   healthy — no faults (default); the pipeline behaves as before.
//   flaky   — intermittent 500s, connection drops, garbage bodies and
//             latency spikes; the WAN channel retries with jittered backoff
//             and a circuit breaker guards the origin.
//   outage  — a hard origin outage covering 30% of the run's timeline
//             (placed by a fault-free calibration replay); degraded-mode
//             serving answers what the cache can.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "workload/availability.h"
#include "workload/experiment.h"
#include "workload/multi_proxy.h"

using namespace fnproxy;

namespace {

/// Per-phase latency table shared by both replay paths.
void PrintPhases(const std::vector<obs::PhaseBreakdown>& phases) {
  if (phases.empty()) return;
  std::printf("phase breakdown (virtual micros):\n");
  std::printf("  %-18s %10s %14s %10s %10s %10s\n", "phase", "count",
              "total", "p50", "p95", "p99");
  for (const obs::PhaseBreakdown& row : phases) {
    std::printf("  %-18s %10lu %14lld %10lld %10lld %10lld\n",
                row.phase.c_str(), static_cast<unsigned long>(row.count),
                static_cast<long long>(row.total_micros),
                static_cast<long long>(row.p50_micros),
                static_cast<long long>(row.p95_micros),
                static_cast<long long>(row.p99_micros));
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string fault_profile = "healthy";
  std::string trace_out;
  std::string snapshot_out;
  std::string snapshot_in;
  bool expect_first_warm = false;
  size_t num_threads = 1;
  size_t num_proxies = 1;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--fault-profile=", 16) == 0) {
      fault_profile = argv[i] + 16;
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      num_threads = static_cast<size_t>(std::atoll(argv[i] + 10));
      if (num_threads == 0) num_threads = 1;
    } else if (std::strncmp(argv[i], "--proxies=", 10) == 0) {
      num_proxies = static_cast<size_t>(std::atoll(argv[i] + 10));
      if (num_proxies == 0) num_proxies = 1;
    } else if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      trace_out = argv[i] + 12;
    } else if (std::strncmp(argv[i], "--snapshot-out=", 15) == 0) {
      snapshot_out = argv[i] + 15;
    } else if (std::strncmp(argv[i], "--snapshot-in=", 14) == 0) {
      snapshot_in = argv[i] + 14;
    } else if (std::strcmp(argv[i], "--expect-first-warm") == 0) {
      expect_first_warm = true;
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (positional.empty()) {
    std::fprintf(stderr,
                 "usage: run_trace <trace-file> [nc|pc|full|region|containment]"
                 " [cache-bytes] [--fault-profile=healthy|flaky|outage]"
                 " [--threads=N] [--proxies=N] [--trace-out=PATH]"
                 " [--snapshot-out=PATH] [--snapshot-in=PATH]"
                 " [--expect-first-warm]\n");
    return 2;
  }
  if ((num_threads > 1 || num_proxies > 1) && fault_profile != "healthy") {
    std::fprintf(stderr,
                 "--threads/--proxies > 1 require --fault-profile=healthy\n");
    return 2;
  }
  if ((!snapshot_out.empty() || !snapshot_in.empty() || expect_first_warm) &&
      (num_threads > 1 || num_proxies > 1)) {
    std::fprintf(stderr,
                 "--snapshot-out/--snapshot-in/--expect-first-warm drive the "
                 "single-threaded replay only\n");
    return 2;
  }
  if (!snapshot_out.empty() && !snapshot_in.empty() &&
      snapshot_out != snapshot_in) {
    std::fprintf(stderr,
                 "--snapshot-in and --snapshot-out must name the same file "
                 "when both are given\n");
    return 2;
  }
  if (fault_profile != "healthy" && fault_profile != "flaky" &&
      fault_profile != "outage") {
    std::fprintf(stderr, "unknown fault profile %s\n", fault_profile.c_str());
    return 2;
  }
  std::ifstream in(positional[0]);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", positional[0]);
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto trace = workload::Trace::Deserialize(buffer.str());
  if (!trace.ok()) {
    std::fprintf(stderr, "trace parse error: %s\n",
                 trace.status().ToString().c_str());
    return 1;
  }
  if (trace->form_path != "/radial") {
    std::fprintf(stderr, "run_trace drives the /radial form; got %s\n",
                 trace->form_path.c_str());
    return 1;
  }

  core::CachingMode mode = core::CachingMode::kActiveFull;
  if (positional.size() > 1) {
    std::string name = positional[1];
    if (name == "nc") mode = core::CachingMode::kNoCache;
    else if (name == "pc") mode = core::CachingMode::kPassive;
    else if (name == "full") mode = core::CachingMode::kActiveFull;
    else if (name == "region") mode = core::CachingMode::kActiveRegionContainment;
    else if (name == "containment") mode = core::CachingMode::kActiveContainmentOnly;
    else {
      std::fprintf(stderr, "unknown scheme %s\n", name.c_str());
      return 2;
    }
  }
  size_t cache_bytes =
      positional.size() > 2 ? static_cast<size_t>(std::atoll(positional[2]))
                            : 0;

  // Build the standard experiment substrate but replay the user's trace.
  workload::SkyExperiment::Options sky_options;
  sky_options.trace.num_queries = 1;  // Placeholder; we replay the file.
  workload::SkyExperiment experiment(sky_options);

  std::unique_ptr<obs::JsonlTraceWriter> trace_writer;
  if (!trace_out.empty()) {
    auto writer = obs::JsonlTraceWriter::Open(trace_out);
    if (!writer.ok()) {
      std::fprintf(stderr, "cannot open %s: %s\n", trace_out.c_str(),
                   writer.status().ToString().c_str());
      return 1;
    }
    trace_writer = std::move(*writer);
  }

  if (num_proxies > 1) {
    workload::ProxyTierOptions tier_options;
    tier_options.num_proxies = num_proxies;
    tier_options.proxy.mode = mode;
    tier_options.proxy.max_cache_bytes = cache_bytes;
    tier_options.proxy.cache_shards = 8;
    tier_options.proxy.trace_sink = trace_writer.get();
    workload::TierRunOptions run_options;
    run_options.num_threads = num_threads;
    run_options.real_time_scale = 0.01;
    workload::TierRunOutput output =
        workload::RunTraceTier(experiment, *trace, tier_options, run_options);
    const workload::ConcurrentRunResult& run = output.driver;
    const core::ProxyStats& stats = output.aggregate;
    std::printf("scheme:              %s\n", core::CachingModeName(mode));
    std::printf("proxies:             %zu (threads: %zu)\n", num_proxies,
                run_options.num_threads);
    std::printf("queries:             %zu (%lu errors)\n",
                trace->queries.size(),
                static_cast<unsigned long>(run.errors));
    std::printf("wall time:           %.1f ms (%.0f req/s)\n", run.wall_millis,
                run.requests_per_second);
    std::printf("latency (wall):      p50 %.2f ms, p95 %.2f ms, p99 %.2f ms, "
                "max %.2f ms\n",
                static_cast<double>(run.p50_micros) / 1000.0,
                static_cast<double>(run.p95_micros) / 1000.0,
                static_cast<double>(run.p99_micros) / 1000.0,
                static_cast<double>(run.max_micros) / 1000.0);
    std::printf("cache efficiency:    %.3f\n", stats.AverageCacheEfficiency());
    std::printf("hits:                exact %lu, containment %lu, "
                "region-containment %lu, overlap %lu\n",
                static_cast<unsigned long>(stats.exact_hits),
                static_cast<unsigned long>(stats.containment_hits),
                static_cast<unsigned long>(stats.region_containments),
                static_cast<unsigned long>(stats.overlaps_handled));
    std::printf("peer lookups:        %lu (%lu served by a sibling, "
                "%lu failures)\n",
                static_cast<unsigned long>(stats.peer_lookups),
                static_cast<unsigned long>(stats.peer_hits),
                static_cast<unsigned long>(stats.peer_failures));
    std::printf("misses:              %lu\n",
                static_cast<unsigned long>(stats.misses));
    std::printf("origin queries:      %lu form, %lu sql (%lu wire requests)\n",
                static_cast<unsigned long>(output.origin_form_queries),
                static_cast<unsigned long>(output.origin_sql_queries),
                static_cast<unsigned long>(output.origin_requests));
    std::printf("final cache:         %zu entries across the tier\n",
                output.cache_entries_final);
    PrintPhases(output.phases);
    return run.errors == 0 ? 0 : 1;
  }

  if (num_threads > 1) {
    core::ProxyConfig proxy_config;
    proxy_config.mode = mode;
    proxy_config.max_cache_bytes = cache_bytes;
    proxy_config.cache_shards = 8;  // Spread lock contention across shards.
    proxy_config.trace_sink = trace_writer.get();
    workload::SkyExperiment::ConcurrentRunOutput output =
        experiment.RunTraceConcurrent(*trace, proxy_config, num_threads,
                                      /*real_time_scale=*/0.01);
    const workload::ConcurrentRunResult& run = output.driver;
    const core::ProxyStats& stats = output.proxy_stats;
    std::printf("scheme:              %s\n", core::CachingModeName(mode));
    std::printf("threads:             %zu (cache shards: %zu)\n",
                num_threads, proxy_config.cache_shards);
    std::printf("queries:             %zu (%lu errors)\n",
                trace->queries.size(),
                static_cast<unsigned long>(run.errors));
    std::printf("wall time:           %.1f ms (%.0f req/s)\n", run.wall_millis,
                run.requests_per_second);
    std::printf("latency (wall):      p50 %.2f ms, p95 %.2f ms, p99 %.2f ms, "
                "max %.2f ms\n",
                static_cast<double>(run.p50_micros) / 1000.0,
                static_cast<double>(run.p95_micros) / 1000.0,
                static_cast<double>(run.p99_micros) / 1000.0,
                static_cast<double>(run.max_micros) / 1000.0);
    std::printf("modeled time:        %.1f s total across threads\n",
                static_cast<double>(run.virtual_micros) / 1e6);
    std::printf("cache efficiency:    %.3f\n", stats.AverageCacheEfficiency());
    std::printf("hits:                exact %lu, containment %lu, "
                "region-containment %lu, overlap %lu\n",
                static_cast<unsigned long>(stats.exact_hits),
                static_cast<unsigned long>(stats.containment_hits),
                static_cast<unsigned long>(stats.region_containments),
                static_cast<unsigned long>(stats.overlaps_handled));
    std::printf("misses:              %lu\n",
                static_cast<unsigned long>(stats.misses));
    std::printf("origin requests:     %lu (%.1f MB received)\n",
                static_cast<unsigned long>(output.origin_requests),
                static_cast<double>(output.origin_bytes_received) /
                    (1024 * 1024));
    std::printf("final cache:         %zu entries, %.1f MB\n",
                output.cache_entries_final,
                static_cast<double>(output.cache_bytes_final) / (1024 * 1024));
    PrintPhases(output.phases);
    return run.errors == 0 ? 0 : 1;
  }

  workload::AvailabilityExperiment availability(&experiment);

  workload::AvailabilityOptions options;
  options.proxy.mode = mode;
  options.proxy.max_cache_bytes = cache_bytes;
  options.proxy.trace_sink = trace_writer.get();
  if (!snapshot_out.empty() || !snapshot_in.empty()) {
    options.proxy.storage.enable = true;
    // Inline maintenance keeps the single-threaded replay deterministic.
    options.proxy.storage.background_maintenance = false;
    options.proxy.storage.snapshot_path =
        snapshot_out.empty() ? snapshot_in : snapshot_out;
    options.proxy.storage.restore_on_start = !snapshot_in.empty();
  }
  if (fault_profile != "healthy") {
    // An unreliable origin warrants retries and a breaker.
    options.proxy.breaker.enabled = true;
    options.proxy.breaker.open_cooldown_micros = 120'000'000;
    options.retry.max_attempts = 3;
    options.retry.base_backoff_micros = 200'000;
    options.retry.max_backoff_micros = 2'000'000;
    options.retry.jitter_seed = 42;
  }
  if (fault_profile == "flaky") {
    options.faults = net::FlakyProfile();
  } else if (fault_profile == "outage") {
    options.outage_fractions = {{0.3, 0.3}};
    // Think time anchors query arrivals to the timeline so the outage
    // fraction translates into a query fraction (see AvailabilityOptions).
    options.think_time_micros = 30'000'000;
  }

  workload::AvailabilityResult result =
      availability.RunTrace(*trace, options);

  const core::ProxyStats& stats = result.proxy_stats;
  double avg_ms = 0.0, avg_ms_10k = 0.0;
  for (size_t i = 0; i < result.points.size(); ++i) {
    double ms = static_cast<double>(result.points[i].response_micros) / 1000.0;
    avg_ms += ms;
    if (i < 10000) avg_ms_10k += ms;
  }
  if (!result.points.empty()) {
    avg_ms_10k /= static_cast<double>(std::min<size_t>(result.points.size(),
                                                       10000));
    avg_ms /= static_cast<double>(result.points.size());
  }

  std::printf("scheme:              %s\n", core::CachingModeName(mode));
  std::printf("fault profile:       %s\n", fault_profile.c_str());
  std::printf("queries:             %zu (%lu failed)\n",
              trace->queries.size(),
              static_cast<unsigned long>(result.failed));
  std::printf("avg response:        %.0f ms (first 10k: %.0f ms)\n", avg_ms,
              avg_ms_10k);
  std::printf("cache efficiency:    %.3f\n", stats.AverageCacheEfficiency());
  std::printf("hits:                exact %lu, containment %lu, "
              "region-containment %lu, overlap %lu\n",
              static_cast<unsigned long>(stats.exact_hits),
              static_cast<unsigned long>(stats.containment_hits),
              static_cast<unsigned long>(stats.region_containments),
              static_cast<unsigned long>(stats.overlaps_handled));
  std::printf("misses:              %lu\n",
              static_cast<unsigned long>(stats.misses));
  std::printf("origin requests:     %lu (%.1f MB received)\n",
              static_cast<unsigned long>(result.wan_requests),
              static_cast<double>(result.wan_bytes_received) / (1024 * 1024));
  std::printf("final cache:         %zu entries, %.1f MB\n",
              result.cache_entries_final,
              static_cast<double>(result.cache_bytes_final) / (1024 * 1024));
  if (!snapshot_out.empty()) {
    std::printf("snapshot:            will be written to %s at shutdown\n",
                snapshot_out.c_str());
  }
  if (expect_first_warm) {
    // stats.records = [restored records..., this replay's records]; the
    // first record of this replay sits queries.size() from the end.
    if (stats.records.size() < trace->queries.size()) {
      std::fprintf(stderr, "expect-first-warm: missing query records\n");
      return 1;
    }
    const core::QueryRecord& first =
        stats.records[stats.records.size() - trace->queries.size()];
    const bool warm = first.handled_by_template && !first.failed &&
                      !first.contacted_origin;
    std::printf("first query:         %s\n",
                warm ? "warm (served from restored cache, no origin trip)"
                     : "COLD (origin contacted)");
    if (!warm) return 1;
  }
  PrintPhases(result.phases);
  if (fault_profile != "healthy") {
    std::printf(
        "availability:        %.1f%% (%lu ok, %lu partial, %lu failed), "
        "coverage-weighted %.1f%%\n",
        100 * result.availability, static_cast<unsigned long>(result.ok),
        static_cast<unsigned long>(result.partial),
        static_cast<unsigned long>(result.failed),
        100 * result.coverage_weighted_availability);
    std::printf(
        "degraded answers:    %lu full, %lu partial, %lu unavailable (503)\n",
        static_cast<unsigned long>(stats.degraded_full),
        static_cast<unsigned long>(stats.degraded_partial),
        static_cast<unsigned long>(stats.degraded_unavailable));
    std::printf(
        "origin channel:      %lu failures, %lu retries, %lu timeouts, "
        "%lu breaker rejections, %lu breaker transitions\n",
        static_cast<unsigned long>(stats.origin_failures),
        static_cast<unsigned long>(result.wan_retry_stats.retries),
        static_cast<unsigned long>(result.wan_retry_stats.timeouts),
        static_cast<unsigned long>(stats.breaker_open_rejections),
        static_cast<unsigned long>(stats.breaker_transitions));
    std::printf(
        "faults injected:     %lu (drops %lu, errors %lu, garbage %lu, "
        "truncations %lu, outage drops %lu)\n",
        static_cast<unsigned long>(result.fault_stats.total_faults()),
        static_cast<unsigned long>(result.fault_stats.injected_drops),
        static_cast<unsigned long>(result.fault_stats.injected_errors),
        static_cast<unsigned long>(result.fault_stats.injected_garbage),
        static_cast<unsigned long>(result.fault_stats.injected_truncations),
        static_cast<unsigned long>(result.fault_stats.outage_drops));
    return 0;
  }
  return result.failed == 0 ? 0 : 1;
}
