// Command-line utility for query traces:
//
//   trace_tool gen-radial <out-file> [num_queries] [seed]
//   trace_tool gen-rect   <out-file> [num_queries] [seed]
//   trace_tool info       <trace-file>
//
// Traces use the line-oriented format of workload::Trace::Serialize and can
// be replayed with run_trace.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/string_util.h"
#include "workload/trace.h"
#include "workload/trace_generator.h"

using namespace fnproxy;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  trace_tool gen-radial <out-file> [num_queries] [seed]\n"
               "  trace_tool gen-rect   <out-file> [num_queries] [seed]\n"
               "  trace_tool info       <trace-file>\n");
  return 2;
}

int WriteTrace(const workload::Trace& trace, const char* path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path);
    return 1;
  }
  out << trace.Serialize();
  std::printf("wrote %zu queries to %s\n", trace.queries.size(), path);
  return 0;
}

int Info(const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto trace = workload::Trace::Deserialize(buffer.str());
  if (!trace.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 trace.status().ToString().c_str());
    return 1;
  }
  using geometry::RegionRelation;
  std::printf("form path: %s\n", trace->form_path.c_str());
  std::printf("queries:   %zu\n", trace->queries.size());
  std::printf("intended mix:\n");
  for (RegionRelation r :
       {RegionRelation::kEqual, RegionRelation::kContainedBy,
        RegionRelation::kContains, RegionRelation::kOverlap,
        RegionRelation::kDisjoint}) {
    std::printf("  %-14s %5.1f%%\n", geometry::RegionRelationName(r),
                100 * trace->IntendedFraction(r));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  std::string command = argv[1];
  if (command == "info") return Info(argv[2]);

  size_t num_queries = argc > 3 ? static_cast<size_t>(std::atoll(argv[3]))
                                : 11323;
  uint64_t seed = argc > 4 ? static_cast<uint64_t>(std::atoll(argv[4])) : 2004;

  if (command == "gen-radial") {
    workload::RadialTraceConfig config;
    config.num_queries = num_queries;
    config.seed = seed;
    return WriteTrace(workload::GenerateRadialTrace(config), argv[2]);
  }
  if (command == "gen-rect") {
    workload::RectTraceConfig config;
    config.num_queries = num_queries;
    config.seed = seed;
    return WriteTrace(workload::GenerateRectTrace(config), argv[2]);
  }
  return Usage();
}
