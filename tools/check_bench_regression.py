#!/usr/bin/env python3
"""Fails CI when a benchmark metric regresses beyond tolerance.

Both inputs are BENCH_results.json files (one JSON object per line, see
docs/FORMATS.md): the committed baseline and a fresh run. Compared metrics
are higher-is-better (e.g. the columnar-scan speedup ratio, the overload
sweep's goodput retention); the gate fails when any fresh value drops more
than --tolerance below its baseline.

Usage:
  check_bench_regression.py BASELINE FRESH [--metric NAME]... [--tolerance F]

--metric may repeat to gate several metrics in one invocation; with no
--metric flag the historical default (subsumed_scan/speedup) is used.
"""

import argparse
import json
import sys


def load_metric(path, metric, agg):
    values = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            # Records carry bench-specific extra fields (e.g. per-phase
            # latency columns) and some may omit name/value entirely; skip
            # anything that is not a (name, value) measurement of `metric`.
            if record.get("name") != metric:
                continue
            value = record.get("value")
            if value is None:
                continue
            values.append(float(value))
    if not values:
        sys.exit(f"error: metric '{metric}' not found in {path}")
    # The files are append-only: a baseline takes its most recent record; a
    # fresh file may hold several repeat runs, and best-of-N filters out the
    # scheduling noise of shared CI runners.
    return values[-1] if agg == "last" else max(values)


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--metric", action="append", dest="metrics")
    parser.add_argument("--tolerance", type=float, default=0.20)
    args = parser.parse_args()
    metrics = args.metrics or ["subsumed_scan/speedup"]

    failed = []
    for metric in metrics:
        baseline = load_metric(args.baseline, metric, "last")
        fresh = load_metric(args.fresh, metric, "max")
        drop = (baseline - fresh) / baseline if baseline > 0 else 0.0

        print(
            f"{metric}: baseline={baseline:.4f} fresh={fresh:.4f} "
            f"drop={drop * 100:.1f}% (tolerance {args.tolerance * 100:.0f}%)"
        )
        if drop > args.tolerance:
            failed.append(metric)
    if failed:
        sys.exit(f"error: regressed beyond tolerance: {', '.join(failed)}")
    print("ok")


if __name__ == "__main__":
    main()
