#!/usr/bin/env python3
"""Fails CI when a benchmark metric regresses beyond tolerance.

Both inputs are BENCH_results.json files (one JSON object per line, see
docs/FORMATS.md): the committed baseline and a fresh run. The compared
metric is higher-is-better (the columnar-scan speedup ratio); the gate
fails when the fresh value drops more than --tolerance below the baseline.

Usage:
  check_bench_regression.py BASELINE FRESH [--metric NAME] [--tolerance F]
"""

import argparse
import json
import sys


def load_metric(path, metric, agg):
    values = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            # Records carry bench-specific extra fields (e.g. per-phase
            # latency columns) and some may omit name/value entirely; skip
            # anything that is not a (name, value) measurement of `metric`.
            if record.get("name") != metric:
                continue
            value = record.get("value")
            if value is None:
                continue
            values.append(float(value))
    if not values:
        sys.exit(f"error: metric '{metric}' not found in {path}")
    # The files are append-only: a baseline takes its most recent record; a
    # fresh file may hold several repeat runs, and best-of-N filters out the
    # scheduling noise of shared CI runners.
    return values[-1] if agg == "last" else max(values)


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--metric", default="subsumed_scan/speedup")
    parser.add_argument("--tolerance", type=float, default=0.20)
    args = parser.parse_args()

    baseline = load_metric(args.baseline, args.metric, "last")
    fresh = load_metric(args.fresh, args.metric, "max")
    drop = (baseline - fresh) / baseline if baseline > 0 else 0.0

    print(
        f"{args.metric}: baseline={baseline:.4f} fresh={fresh:.4f} "
        f"drop={drop * 100:.1f}% (tolerance {args.tolerance * 100:.0f}%)"
    )
    if drop > args.tolerance:
        sys.exit(f"error: {args.metric} regressed beyond tolerance")
    print("ok")


if __name__ == "__main__":
    main()
