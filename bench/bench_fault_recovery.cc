// Fault-recovery comparison of the five caching schemes: the same Radial
// trace is replayed while the origin suffers a scripted hard outage covering
// 30% of the run's timeline (plus a flaky-origin pass with intermittent
// 500s, drops and latency spikes). The proxy retries with jittered backoff,
// trips a circuit breaker, and — in the active schemes — keeps serving
// subsumed queries from the cache and the cached portion of overlapping
// queries as partial answers.
//
// Expected shape: during the outage kNoCache and kPassive fail nearly every
// query (passive saves only exact-URL repeats), while kActiveFull keeps the
// highest availability — full answers for subsumed queries, partial answers
// with a coverage fraction for overlaps — and coverage-weighted availability
// orders First > Second > Third > PC > NC.

#include <cstdio>

#include "bench_common.h"
#include "workload/availability.h"

using namespace fnproxy;

namespace {

struct Scheme {
  const char* name;
  core::CachingMode mode;
};

const Scheme kSchemes[] = {
    {"NC (no cache)", core::CachingMode::kNoCache},
    {"PC (passive)", core::CachingMode::kPassive},
    {"First (full semantic)", core::CachingMode::kActiveFull},
    {"Second (region cont.)", core::CachingMode::kActiveRegionContainment},
    {"Third (containment)", core::CachingMode::kActiveContainmentOnly},
};

// Think time dominating per-query cost anchors arrivals to the virtual
// timeline, so an outage covering 30% of the timeline hits ~30% of the
// queries in every mode (see AvailabilityOptions::think_time_micros).
constexpr int64_t kThinkMicros = 30'000'000;

core::ProxyConfig FaultTolerantConfig(core::CachingMode mode) {
  core::ProxyConfig config = bench::MakeProxyConfig(mode);
  config.breaker.enabled = true;
  config.breaker.window_size = 8;
  config.breaker.min_samples = 4;
  config.breaker.failure_threshold = 0.5;
  // Probe roughly every fourth query at the 30 s think cadence.
  config.breaker.open_cooldown_micros = 120'000'000;
  config.breaker.half_open_successes = 2;
  return config;
}

net::RetryPolicy WanRetryPolicy() {
  net::RetryPolicy retry;
  retry.max_attempts = 3;
  retry.base_backoff_micros = 200'000;
  retry.max_backoff_micros = 2'000'000;
  // The 2004-era WAN moves ~6 KB/s, so legitimate bodies take tens of
  // seconds; 90 s only catches drops the injector models (1 s detect) and
  // pathological trickles.
  retry.per_attempt_timeout_micros = 90'000'000;
  retry.jitter_seed = 42;
  return retry;
}

void PrintHeader() {
  std::printf("%-24s %7s %7s %7s %7s %8s %8s %7s %7s %8s\n", "scheme", "ok",
              "partial", "failed", "avail", "covAvail", "cacheEff", "brkOpen",
              "retries", "faults");
}

void PrintRow(const char* name, const workload::AvailabilityResult& r) {
  std::printf("%-24s %7lu %7lu %7lu %6.1f%% %7.1f%% %8.3f %7lu %7lu %8lu\n",
              name, static_cast<unsigned long>(r.ok),
              static_cast<unsigned long>(r.partial),
              static_cast<unsigned long>(r.failed), 100 * r.availability,
              100 * r.coverage_weighted_availability,
              r.proxy_stats.AverageCacheEfficiency(),
              static_cast<unsigned long>(r.proxy_stats.breaker_open_rejections),
              static_cast<unsigned long>(r.wan_retry_stats.retries),
              static_cast<unsigned long>(r.fault_stats.total_faults()));
}

}  // namespace

int main() {
  std::printf("=== Fault recovery: caching schemes under origin failures ===\n");
  workload::SkyExperiment experiment(bench::PaperOptions(3000));
  bench::PrintTraceMix(experiment.trace());
  workload::AvailabilityExperiment availability(&experiment);

  std::printf(
      "\n--- Scripted outage: origin dark for 30%% of the timeline "
      "(starting at 30%%) ---\n");
  PrintHeader();
  for (const Scheme& scheme : kSchemes) {
    workload::AvailabilityOptions options;
    options.proxy = FaultTolerantConfig(scheme.mode);
    options.retry = WanRetryPolicy();
    options.outage_fractions = {{0.3, 0.3}};
    options.think_time_micros = kThinkMicros;
    workload::AvailabilityResult result = availability.Run(options);
    PrintRow(scheme.name, result);
  }

  std::printf(
      "\n--- Flaky origin: 10%% 500s, 5%% drops, 2%% garbage bodies, "
      "latency spikes ---\n");
  PrintHeader();
  for (const Scheme& scheme : kSchemes) {
    workload::AvailabilityOptions options;
    options.proxy = FaultTolerantConfig(scheme.mode);
    options.retry = WanRetryPolicy();
    options.faults = net::FlakyProfile(/*seed=*/7);
    options.think_time_micros = kThinkMicros;
    workload::AvailabilityResult result = availability.Run(options);
    PrintRow(scheme.name, result);
  }

  std::printf(
      "\nExpected shape: under the outage the active schemes keep answering "
      "subsumed\nqueries (ok) and overlaps (partial, discounted by coverage); "
      "NC/PC fail almost\neverything. Against a flaky origin, retries absorb "
      "most transient faults and\nthe breaker bounds the damage of bursts.\n");
  return 0;
}
