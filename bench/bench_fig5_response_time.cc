// Reproduces Figure 5 of the paper: average response time of the first
// 10,000 trace queries under four proxy configurations — ACR (active, R-tree
// description), ACNR (active, array description), PC (passive) and NC
// (tunneling, no cache) — with cache size in {1/6, 1/3, 1/2, 1} of the total
// trace result size.
//
// Paper shape: NC > 2000 ms; PC ~ 1400 ms; ACR/ACNR ~ 1150-1250 ms with the
// R-tree giving no speedup over the array (sometimes slightly slower);
// response times improve only mildly with cache size.

#include <cstdio>

#include "bench_common.h"

using namespace fnproxy;

int main() {
  std::printf("=== Figure 5: Average response time (ms), first 10,000 queries ===\n");
  workload::SkyExperiment experiment(bench::PaperOptions());
  bench::PrintTraceMix(experiment.trace());
  size_t total_bytes = experiment.TotalDistinctResultBytes();

  const double fractions[] = {1.0 / 6, 1.0 / 3, 1.0 / 2, 1.0};
  const char* fraction_names[] = {"1/6", "1/3", "1/2", "1"};

  // NC has no cache; one run serves every column.
  auto nc =
      experiment.Run(bench::MakeProxyConfig(core::CachingMode::kNoCache));
  double nc_ms = nc.rbe.AverageResponseMillis(10000);

  double acr_ms[4], acnr_ms[4], pc_ms[4];
  for (int i = 0; i < 4; ++i) {
    size_t budget = static_cast<size_t>(static_cast<double>(total_bytes) *
                                        fractions[i]);
    acr_ms[i] = experiment
                    .Run(bench::MakeProxyConfig(core::CachingMode::kActiveFull,
                                                /*rtree=*/true, budget))
                    .rbe.AverageResponseMillis(10000);
    acnr_ms[i] = experiment
                     .Run(bench::MakeProxyConfig(
                         core::CachingMode::kActiveFull, /*rtree=*/false,
                         budget))
                     .rbe.AverageResponseMillis(10000);
    pc_ms[i] = experiment
                   .Run(bench::MakeProxyConfig(core::CachingMode::kPassive,
                                               false, budget))
                   .rbe.AverageResponseMillis(10000);
    std::printf("  [cache=%s done]\n", fraction_names[i]);
  }

  std::printf("\nConfig   1/6     1/3     1/2     1\n");
  std::printf("ACR   %6.0f  %6.0f  %6.0f  %6.0f\n", acr_ms[0], acr_ms[1],
              acr_ms[2], acr_ms[3]);
  std::printf("ACNR  %6.0f  %6.0f  %6.0f  %6.0f\n", acnr_ms[0], acnr_ms[1],
              acnr_ms[2], acnr_ms[3]);
  std::printf("PC    %6.0f  %6.0f  %6.0f  %6.0f\n", pc_ms[0], pc_ms[1],
              pc_ms[2], pc_ms[3]);
  std::printf("NC    %6.0f  %6.0f  %6.0f  %6.0f\n", nc_ms, nc_ms, nc_ms, nc_ms);
  std::printf(
      "\nPaper shape: NC >2000; PC ~1400; AC ~1150-1250; R-tree does not beat "
      "the array;\nlarger caches improve response time only mildly.\n");
  return 0;
}
