// Ablation A: cache-description implementation (array vs R-tree).
//
// The paper (§4.2) finds that the R-tree does not accelerate active caching
// because cache descriptions stay small: checking time is under 100 ms
// either way, and R-tree maintenance costs more than an array append/erase.
// This bench isolates the description data structure: populations of
// clustered query boxes from 100 to 100,000 entries, measuring box
// comparisons (the proxy's virtual-cost driver) and real time per operation.

#include <cstdio>
#include <memory>

#include "geometry/celestial.h"
#include "index/array_index.h"
#include "index/rtree.h"
#include "util/clock.h"
#include "util/random.h"

using namespace fnproxy;

namespace {

geometry::Hyperrectangle RandomQueryBox(util::Random& rng) {
  // Cones around clustered hotspots, like the Radial trace's regions.
  static std::vector<std::pair<double, double>> hotspots = [] {
    util::Random hotspot_rng(1);
    std::vector<std::pair<double, double>> spots;
    for (int i = 0; i < 60; ++i) {
      spots.emplace_back(hotspot_rng.NextDouble(130, 230),
                         hotspot_rng.NextDouble(0, 60));
    }
    return spots;
  }();
  const auto& [ra, dec] = hotspots[rng.NextUint64(hotspots.size())];
  double cra = ra + rng.NextGaussian() * 0.8;
  double cdec = dec + rng.NextGaussian() * 0.8;
  double radius = rng.NextDouble(4.0 / 60, 30.0 / 60);
  return geometry::ConeToHypersphere(cra, cdec, radius * 60).BoundingBox();
}

struct Measurement {
  double search_comparisons;
  double search_micros;
  double maintain_comparisons;  // Insert+remove pair.
  double maintain_micros;
};

Measurement Measure(index::RegionIndex* index, size_t population,
                    util::Random& rng) {
  std::vector<geometry::Hyperrectangle> boxes;
  for (size_t i = 0; i < population; ++i) {
    boxes.push_back(RandomQueryBox(rng));
    index->Insert(i, boxes.back());
  }
  Measurement m{0, 0, 0, 0};
  const int kProbes = 200;
  util::Stopwatch sw;
  for (int i = 0; i < kProbes; ++i) {
    index->SearchIntersecting(RandomQueryBox(rng));
    m.search_comparisons += static_cast<double>(index->last_op_comparisons());
  }
  m.search_micros = static_cast<double>(sw.ElapsedMicros()) / kProbes;
  m.search_comparisons /= kProbes;

  sw.Reset();
  for (int i = 0; i < kProbes; ++i) {
    size_t victim = rng.NextUint64(population);
    index->Remove(victim);
    m.maintain_comparisons += static_cast<double>(index->last_op_comparisons());
    index->Insert(victim, boxes[victim]);
    m.maintain_comparisons += static_cast<double>(index->last_op_comparisons());
  }
  m.maintain_micros = static_cast<double>(sw.ElapsedMicros()) / kProbes;
  m.maintain_comparisons /= kProbes;
  return m;
}

}  // namespace

int main() {
  std::printf("=== Ablation A: cache description, array vs R-tree ===\n");
  std::printf("%10s %8s | %12s %10s %12s %10s\n", "entries", "impl",
              "search cmp", "search us", "maint cmp", "maint us");
  for (size_t population : {100u, 1000u, 5000u, 20000u, 100000u}) {
    {
      util::Random rng(7);
      index::ArrayRegionIndex array;
      Measurement m = Measure(&array, population, rng);
      std::printf("%10zu %8s | %12.0f %10.1f %12.0f %10.1f\n", population,
                  "array", m.search_comparisons, m.search_micros,
                  m.maintain_comparisons, m.maintain_micros);
    }
    {
      util::Random rng(7);
      index::RTreeIndex rtree;
      Measurement m = Measure(&rtree, population, rng);
      std::printf("%10zu %8s | %12.0f %10.1f %12.0f %10.1f\n", population,
                  "rtree", m.search_comparisons, m.search_micros,
                  m.maintain_comparisons, m.maintain_micros);
    }
  }
  std::printf(
      "\nExpected shape (paper §4.2): at cache-description sizes active "
      "caching reaches\n(thousands of entries) the R-tree's search advantage "
      "is modest while its\nmaintenance (insert/delete with splits and "
      "reinsertion) costs clearly more than\nthe array's; the R-tree only "
      "pays off at populations far beyond real caches.\n");
  return 0;
}
