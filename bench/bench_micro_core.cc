// Micro-benchmarks for the proxy core: region construction from templates,
// relationship checking against a populated cache, local evaluation of
// subsumed queries, and remainder-query construction.

#include <benchmark/benchmark.h>

#include "core/cache_store.h"
#include "core/function_template.h"
#include "core/local_eval.h"
#include "core/region_predicate.h"
#include "core/relationship.h"
#include "geometry/celestial.h"
#include "index/array_index.h"
#include "sql/parser.h"
#include "util/random.h"
#include "workload/experiment.h"

namespace fnproxy::core {
namespace {

using sql::Value;

void BM_BuildRegionFromTemplate(benchmark::State& state) {
  auto tmpl = FunctionTemplate::FromXml(workload::kNearbyObjEqTemplateXml);
  std::vector<Value> args = {Value::Double(195.1), Value::Double(2.5),
                             Value::Double(10.0)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(tmpl->BuildRegion(args));
  }
}
BENCHMARK(BM_BuildRegionFromTemplate);

std::unique_ptr<CacheStore> MakePopulatedStore(size_t entries,
                                               util::Random& rng) {
  auto store = std::make_unique<CacheStore>(
      std::make_unique<index::ArrayRegionIndex>(), 0, ReplacementPolicy::kLru);
  sql::Table empty(sql::Schema({{"cx", sql::ValueType::kDouble}}));
  for (size_t i = 0; i < entries; ++i) {
    CacheEntry entry;
    entry.template_id = "radial";
    entry.region = geometry::ConeToHypersphere(rng.NextDouble(130, 230),
                                               rng.NextDouble(0, 60),
                                               rng.NextDouble(4, 30))
                       .Clone();
    entry.result = empty;
    store->Insert(std::move(entry));
  }
  return store;
}

void BM_CheckRelationship(benchmark::State& state) {
  util::Random rng(1);
  std::unique_ptr<CacheStore> store_owner =
      MakePopulatedStore(static_cast<size_t>(state.range(0)), rng);
  CacheStore& store = *store_owner;
  std::vector<geometry::Hypersphere> probes;
  for (int i = 0; i < 256; ++i) {
    probes.push_back(geometry::ConeToHypersphere(rng.NextDouble(130, 230),
                                                 rng.NextDouble(0, 60),
                                                 rng.NextDouble(4, 30)));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        CheckRelationship(store, "radial", "", probes[i & 255]));
    ++i;
  }
}
BENCHMARK(BM_CheckRelationship)->Arg(1000)->Arg(5000);

void BM_SelectInRegion(benchmark::State& state) {
  util::Random rng(2);
  sql::Table cached(sql::Schema({{"objID", sql::ValueType::kInt},
                                 {"cx", sql::ValueType::kDouble},
                                 {"cy", sql::ValueType::kDouble},
                                 {"cz", sql::ValueType::kDouble}}));
  for (int64_t i = 0; i < state.range(0); ++i) {
    geometry::Point p = geometry::RaDecToUnitVector(
        rng.NextDouble(180, 181), rng.NextDouble(30, 31));
    cached.AddRow({Value::Int(i), Value::Double(p[0]), Value::Double(p[1]),
                   Value::Double(p[2])});
  }
  geometry::Hypersphere region =
      geometry::ConeToHypersphere(180.5, 30.5, 20.0);
  std::vector<std::string> coords = {"cx", "cy", "cz"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(SelectInRegion(cached, region, coords));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SelectInRegion)->Arg(100)->Arg(1000);

void BM_BuildRemainderQuery(benchmark::State& state) {
  auto stmt = sql::ParseSelect(
      "SELECT p.objID, p.cx, p.cy, p.cz FROM fGetNearbyObjEq(180.0, 30.0, 30.0)"
      " AS n JOIN PhotoPrimary AS p ON n.objID = p.objID");
  util::Random rng(3);
  std::vector<std::unique_ptr<geometry::Region>> holes;
  std::vector<const geometry::Region*> hole_ptrs;
  for (int i = 0; i < state.range(0); ++i) {
    holes.push_back(geometry::ConeToHypersphere(rng.NextDouble(179, 181),
                                                rng.NextDouble(29, 31),
                                                rng.NextDouble(2, 10))
                        .Clone());
    hole_ptrs.push_back(holes.back().get());
  }
  std::vector<std::string> coords = {"cx", "cy", "cz"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildRemainderQuery(*stmt, hole_ptrs, coords));
  }
}
BENCHMARK(BM_BuildRemainderQuery)->Arg(1)->Arg(8);

void BM_MergeDistinct(benchmark::State& state) {
  util::Random rng(4);
  sql::Table a(sql::Schema({{"objID", sql::ValueType::kInt},
                            {"v", sql::ValueType::kDouble}}));
  sql::Table b(a.schema());
  for (int64_t i = 0; i < state.range(0); ++i) {
    a.AddRow({Value::Int(i), Value::Double(rng.NextDouble())});
    // Half the rows of b duplicate a.
    if (i % 2 == 0) {
      b.AddRow(a.row(static_cast<size_t>(i)));
    } else {
      b.AddRow({Value::Int(i + 100000), Value::Double(rng.NextDouble())});
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(MergeDistinct({&a, &b}));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 2);
}
BENCHMARK(BM_MergeDistinct)->Arg(100)->Arg(1000);

}  // namespace
}  // namespace fnproxy::core
