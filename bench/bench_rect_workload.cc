// Beyond-paper macro benchmark: the same scheme comparison on the
// rectangular-search workload (fGetObjFromRect with a hyperrectangle
// function template). The paper evaluates the Radial form only; this bench
// checks that the qualitative story — active caching's win over passive,
// and the scheme ordering — carries over to the 2-D rectangle templates.

#include <cstdio>

#include "bench_common.h"
#include "workload/trace_generator.h"

using namespace fnproxy;

int main() {
  std::printf("=== Rect workload: scheme comparison on fGetObjFromRect ===\n");
  workload::SkyExperiment experiment(bench::PaperOptions(1));

  workload::RectTraceConfig trace_config;
  trace_config.num_queries = 4000;
  trace_config.ra_min = 132.0;
  trace_config.ra_max = 228.0;
  trace_config.dec_min = 2.0;
  trace_config.dec_max = 58.0;
  workload::Trace trace = workload::GenerateRectTrace(trace_config);
  bench::PrintTraceMix(trace);

  struct Config {
    const char* name;
    core::CachingMode mode;
  };
  const Config configs[] = {
      {"NC", core::CachingMode::kNoCache},
      {"PC", core::CachingMode::kPassive},
      {"AC containment-only", core::CachingMode::kActiveContainmentOnly},
      {"AC region-containment", core::CachingMode::kActiveRegionContainment},
      {"AC full semantic", core::CachingMode::kActiveFull},
  };
  std::vector<bench::RunSummary> rows;
  for (const Config& config : configs) {
    auto result =
        experiment.RunTrace(trace, bench::MakeProxyConfig(config.mode));
    rows.push_back(bench::Summarize(config.name, result));
  }
  PrintSummaryTable(rows);
  std::printf(
      "\nExpected shape: same ordering as the Radial workload — active "
      "caching roughly\nhalves passive caching's response time; rectangle "
      "relationship checks are plain\ninterval tests instead of chord "
      "distances.\n");
  return 0;
}
