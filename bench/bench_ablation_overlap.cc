// Ablation B: when is handling cache-intersecting queries worthwhile?
//
// The paper's headline finding is that full semantic caching ("First") loses
// to containment-based schemes because overlap handling ships remainder
// queries that are more expensive at the origin than they save in transfer.
// This bench sweeps (a) the trace's overlap fraction and (b) the origin's
// remainder-complexity multiplier, reporting full-semantic vs
// region-containment response times. Smaller traces keep the sweep fast.

#include <cstdio>

#include "bench_common.h"

using namespace fnproxy;

namespace {

workload::SkyExperiment::Options SweepOptions(double overlap_fraction,
                                              double remainder_multiplier) {
  workload::SkyExperiment::Options options = bench::PaperOptions(4000);
  // Rebalance: take overlap share out of the disjoint share.
  options.trace.overlap_fraction = overlap_fraction;
  options.server_costs.remainder_multiplier = remainder_multiplier;
  return options;
}

}  // namespace

int main() {
  std::printf("=== Ablation B: overlap handling tradeoff ===\n");

  std::printf("\n-- Sweep 1: overlap fraction (remainder multiplier fixed at default) --\n");
  std::printf("%9s | %18s %18s %10s\n", "overlap", "full-semantic ms",
              "region-cont ms", "delta ms");
  for (double overlap : {0.0, 0.03, 0.06, 0.12, 0.20}) {
    workload::SkyExperiment experiment(SweepOptions(overlap, 2.6));
    double full = experiment.Run(bench::MakeProxyConfig(
                                     core::CachingMode::kActiveFull))
                      .rbe.AverageResponseMillis();
    double rc = experiment
                    .Run(bench::MakeProxyConfig(
                        core::CachingMode::kActiveRegionContainment))
                    .rbe.AverageResponseMillis();
    std::printf("%8.0f%% | %18.0f %18.0f %+10.0f\n", overlap * 100, full, rc,
                full - rc);
  }

  std::printf("\n-- Sweep 2: remainder-complexity multiplier (overlap fixed at 6%%) --\n");
  std::printf("%10s | %18s %18s %10s\n", "multiplier", "full-semantic ms",
              "region-cont ms", "delta ms");
  for (double multiplier : {1.0, 1.5, 2.0, 2.6, 3.5}) {
    workload::SkyExperiment experiment(SweepOptions(0.06, multiplier));
    double full = experiment.Run(bench::MakeProxyConfig(
                                     core::CachingMode::kActiveFull))
                      .rbe.AverageResponseMillis();
    double rc = experiment
                    .Run(bench::MakeProxyConfig(
                        core::CachingMode::kActiveRegionContainment))
                    .rbe.AverageResponseMillis();
    std::printf("%10.1f | %18.0f %18.0f %+10.0f\n", multiplier, full, rc,
                full - rc);
  }

  std::printf(
      "\nExpected shape: with no overlap in the trace the schemes tie; as the "
      "overlap\nfraction or the remainder multiplier grows, full semantic "
      "caching falls further\nbehind (positive delta) — handling "
      "cache-intersecting queries is only worthwhile\nwhen remainder queries "
      "are cheap at the origin.\n");
  return 0;
}
