// Micro-benchmarks for the geometry substrate: the per-check costs behind
// the proxy's relationship checking (paper §3.2 transforms query containment
// into these spatial predicates).

#include <benchmark/benchmark.h>

#include "geometry/celestial.h"
#include "geometry/gjk.h"
#include "geometry/hyperrectangle.h"
#include "geometry/hypersphere.h"
#include "geometry/polytope.h"
#include "geometry/rect_difference.h"
#include "geometry/region.h"
#include "util/random.h"

namespace fnproxy::geometry {
namespace {

Hypersphere RandomCone(util::Random& rng) {
  return ConeToHypersphere(rng.NextDouble(130, 230), rng.NextDouble(0, 60),
                           rng.NextDouble(4, 30));
}

void BM_RelateSphereSphere(benchmark::State& state) {
  util::Random rng(1);
  std::vector<Hypersphere> spheres;
  for (int i = 0; i < 1024; ++i) spheres.push_back(RandomCone(rng));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Relate(spheres[i & 1023], spheres[(i + 7) & 1023]));
    ++i;
  }
}
BENCHMARK(BM_RelateSphereSphere);

void BM_RelateRectRect(benchmark::State& state) {
  util::Random rng(2);
  std::vector<Hyperrectangle> rects;
  for (int i = 0; i < 1024; ++i) rects.push_back(RandomCone(rng).BoundingBox());
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Relate(rects[i & 1023], rects[(i + 7) & 1023]));
    ++i;
  }
}
BENCHMARK(BM_RelateRectRect);

void BM_RelateSphereRect(benchmark::State& state) {
  util::Random rng(3);
  std::vector<Hypersphere> spheres;
  std::vector<Hyperrectangle> rects;
  for (int i = 0; i < 1024; ++i) {
    spheres.push_back(RandomCone(rng));
    rects.push_back(RandomCone(rng).BoundingBox());
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Relate(spheres[i & 1023], rects[(i + 7) & 1023]));
    ++i;
  }
}
BENCHMARK(BM_RelateSphereRect);

void BM_GjkPolytopeSphere(benchmark::State& state) {
  util::Random rng(4);
  std::vector<Halfspace> halfspaces = {{{-1, 0}, 0}, {{0, -1}, 0}, {{1, 1}, 4}};
  std::vector<Point> vertices = {{0, 0}, {4, 0}, {0, 4}};
  Polytope triangle(halfspaces, vertices);
  std::vector<Hypersphere> spheres;
  for (int i = 0; i < 1024; ++i) {
    spheres.emplace_back(Point{rng.NextDouble(-4, 8), rng.NextDouble(-4, 8)},
                         rng.NextDouble(0.2, 2.0));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(GjkDistance(triangle, spheres[i & 1023]));
    ++i;
  }
}
BENCHMARK(BM_GjkPolytopeSphere);

void BM_ContainsPoint3d(benchmark::State& state) {
  util::Random rng(5);
  Hypersphere cone = RandomCone(rng);
  std::vector<Point> points;
  for (int i = 0; i < 1024; ++i) {
    points.push_back(
        RaDecToUnitVector(rng.NextDouble(130, 230), rng.NextDouble(0, 60)));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cone.ContainsPoint(points[i & 1023]));
    ++i;
  }
}
BENCHMARK(BM_ContainsPoint3d);

void BM_ConeToHypersphere(benchmark::State& state) {
  util::Random rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ConeToHypersphere(
        rng.NextDouble(130, 230), rng.NextDouble(0, 60), rng.NextDouble(4, 30)));
  }
}
BENCHMARK(BM_ConeToHypersphere);

void BM_SubtractRects(benchmark::State& state) {
  util::Random rng(7);
  Hyperrectangle base({0, 0}, {10, 10});
  std::vector<Hyperrectangle> holes;
  for (int i = 0; i < state.range(0); ++i) {
    double x = rng.NextDouble(0, 8), y = rng.NextDouble(0, 8);
    holes.push_back(Hyperrectangle({x, y}, {x + 1.5, y + 1.5}));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(SubtractRects(base, holes));
  }
}
BENCHMARK(BM_SubtractRects)->Arg(1)->Arg(4)->Arg(16);

}  // namespace
}  // namespace fnproxy::geometry
