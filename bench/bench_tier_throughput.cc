// Cooperative-tier throughput sweep: replays the Radial trace through a
// ProxyTier of 1..8 proxies behind a round-robin router, 8 closed-loop
// client threads throughout. Each proxy owns a consistent-hash slice of the
// template/region key space; a local miss probes the owning sibling over
// the (cheap) peer link before paying the WAN round trip, so the aggregate
// throughput should scale with the tier size while peer-served lookups stay
// well under the origin round-trip latency.
//
//   bench_tier_throughput [num-queries] [pacing] [--smoke] [--json[=path]]
//
// Defaults: 600 queries, pacing 0.02, proxies swept over {1, 2, 4, 8}.
// --smoke shrinks the sweep to {1, 4} proxies and 200 queries — the
// CI/TSan-soak configuration.
//
// Each sweep point runs twice: an unpaced calibration replay (virtual time
// only, client-latency histogram silent — TierRunOptions::calibration) that
// checks the tier answers the whole trace cleanly, then the paced measured
// replay the numbers come from. With --json, each point appends one record
// (docs/FORMATS.md): aggregate requests/s plus the peer-hit ratio, the
// peer-vs-origin p95 latency split (phase_peer_lookup_p95_us vs
// phase_origin_roundtrip_p95_us) and per-phase columns.
//
// Expected shape: req/s grows from 1 -> 4 proxies (the router spreads the
// closed-loop clients while peer lookups keep the shared working set hot),
// and peer_lookup p95 sits far below origin_roundtrip p95.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "workload/multi_proxy.h"

using namespace fnproxy;

int main(int argc, char** argv) {
  bench::BenchJson json =
      bench::BenchJson::FromArgs(&argc, argv, "bench_tier_throughput");
  bool smoke = false;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  size_t num_queries = argc > 1 ? static_cast<size_t>(std::atoll(argv[1]))
                                : (smoke ? 200 : 600);
  double pacing = argc > 2 ? std::atof(argv[2]) : 0.02;
  const std::vector<size_t> tier_sizes =
      smoke ? std::vector<size_t>{1, 4} : std::vector<size_t>{1, 2, 4, 8};

  std::printf("=== Cooperative tier throughput (%zu queries, pacing %.3f%s) "
              "===\n", num_queries, pacing, smoke ? ", smoke" : "");
  workload::SkyExperiment experiment(bench::PaperOptions(num_queries));
  bench::PrintTraceMix(experiment.trace());

  std::printf("\n%-8s %10s %10s %8s %9s %9s %11s %11s %9s\n", "proxies",
              "wall ms", "req/s", "speedup", "peer-hit", "origin",
              "peer p95us", "orig p95us", "errors");
  double base_rps = 0.0;
  for (size_t proxies : tier_sizes) {
    workload::ProxyTierOptions tier_options;
    tier_options.num_proxies = proxies;
    tier_options.proxy = bench::MakeProxyConfig(core::CachingMode::kActiveFull);
    tier_options.proxy.cache_shards = 8;
    // Each proxy box services two requests at a time — the finite capacity
    // the tier multiplies (sibling probes bypass the pool).
    tier_options.proxy_workers = 2;

    // Calibration: unpaced single-client replay through a fresh tier. Errors
    // here mean the topology is broken, not that the machine is slow, and
    // with one client the virtual clock only ever advances for the request
    // being measured, so this pass yields the clean modeled peer-vs-origin
    // per-phase latency split (under the measured pass's concurrency, phase
    // timers absorb every other thread's clock advances).
    workload::TierRunOptions calibrate;
    calibrate.num_threads = 1;
    calibrate.real_time_scale = 0.0;
    calibrate.calibration = true;
    workload::TierRunOutput dry =
        workload::RunTraceTier(experiment, experiment.trace(), tier_options,
                               calibrate);
    if (dry.driver.errors != 0) {
      std::printf("  !! calibration replay at %zu proxies saw %lu errors\n",
                  proxies, static_cast<unsigned long>(dry.driver.errors));
      return 1;
    }
    int64_t peer_p95 = 0, origin_p95 = 0;
    for (const obs::PhaseBreakdown& row : dry.phases) {
      if (row.phase == "peer_lookup") peer_p95 = row.p95_micros;
      if (row.phase == "origin_roundtrip") origin_p95 = row.p95_micros;
    }

    workload::TierRunOptions measured;
    measured.num_threads = 8;
    measured.real_time_scale = pacing;
    workload::TierRunOutput output =
        workload::RunTraceTier(experiment, experiment.trace(), tier_options,
                               measured);
    const workload::ConcurrentRunResult& run = output.driver;
    const core::ProxyStats& stats = output.aggregate;
    if (proxies == tier_sizes.front()) base_rps = run.requests_per_second;
    double speedup = base_rps > 0.0 ? run.requests_per_second / base_rps : 0.0;
    double peer_hit_ratio =
        stats.template_requests > 0
            ? static_cast<double>(stats.peer_hits) /
                  static_cast<double>(stats.template_requests)
            : 0.0;
    std::printf("%-8zu %10.1f %10.0f %7.2fx %8.1f%% %9lu %11lld %11lld %9lu\n",
                proxies, run.wall_millis, run.requests_per_second, speedup,
                100.0 * peer_hit_ratio,
                static_cast<unsigned long>(output.origin_form_queries),
                static_cast<long long>(peer_p95),
                static_cast<long long>(origin_p95),
                static_cast<unsigned long>(run.errors));

    std::vector<std::pair<std::string, double>> extras = {
        {"proxies", static_cast<double>(proxies)},
        {"threads", static_cast<double>(measured.num_threads)},
        {"wall_ms", run.wall_millis},
        {"p50_ms", static_cast<double>(run.p50_micros) / 1000.0},
        {"p95_ms", static_cast<double>(run.p95_micros) / 1000.0},
        {"p99_ms", static_cast<double>(run.p99_micros) / 1000.0},
        {"errors", static_cast<double>(run.errors)},
        {"peer_hit_ratio", peer_hit_ratio},
        {"peer_lookups", static_cast<double>(stats.peer_lookups)},
        {"peer_hits", static_cast<double>(stats.peer_hits)},
        {"peer_failures", static_cast<double>(stats.peer_failures)},
        {"origin_queries", static_cast<double>(output.origin_form_queries)},
        {"cache_entries", static_cast<double>(output.cache_entries_final)},
        // Modeled latency split from the single-client calibration pass.
        {"peer_lookup_p95_us", static_cast<double>(peer_p95)},
        {"origin_roundtrip_p95_us", static_cast<double>(origin_p95)},
    };
    for (const obs::PhaseBreakdown& row : output.phases) {
      extras.emplace_back("phase_" + row.phase + "_total_us",
                          static_cast<double>(row.total_micros));
      extras.emplace_back("phase_" + row.phase + "_p95_us",
                          static_cast<double>(row.p95_micros));
    }
    json.Record("tier_throughput/p" + std::to_string(proxies),
                run.requests_per_second, "req/s", extras);
  }
  std::printf("\nPeer-served lookups ride the %s peer link; expected: req/s "
              "grows 1 -> 4 proxies and peer_lookup p95 << origin_roundtrip "
              "p95.\n", "0.3 ms");
  return 0;
}
