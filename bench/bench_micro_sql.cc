// Micro-benchmarks for the SQL substrate: parsing the paper's Radial query
// template, printing remainder queries, parameter substitution, predicate
// evaluation and XML (de)serialization of result tables.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "sql/eval.h"
#include "sql/parser.h"
#include "sql/printer.h"
#include "sql/table_xml.h"
#include "util/random.h"
#include "workload/experiment.h"

namespace fnproxy::sql {
namespace {

void BM_ParseRadialTemplate(benchmark::State& state) {
  for (auto _ : state) {
    auto stmt = ParseSelect(workload::kRadialTemplateSql);
    benchmark::DoNotOptimize(stmt);
  }
}
BENCHMARK(BM_ParseRadialTemplate);

void BM_PrintStatement(benchmark::State& state) {
  auto stmt = ParseSelect(workload::kRadialTemplateSql);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SelectToSql(*stmt));
  }
}
BENCHMARK(BM_PrintStatement);

void BM_SubstituteParameters(benchmark::State& state) {
  auto stmt = ParseSelect(workload::kRadialTemplateSql);
  std::map<std::string, Value> params = {{"ra", Value::Double(195.1)},
                                         {"dec", Value::Double(2.5)},
                                         {"radius", Value::Double(10.0)}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(SubstituteParameters(*stmt, params));
  }
}
BENCHMARK(BM_SubstituteParameters);

void BM_EvalPredicate(benchmark::State& state) {
  ScalarFunctionRegistry registry = ScalarFunctionRegistry::WithBuiltins();
  ExprEvaluator evaluator(&registry);
  auto expr = ParseExpression(
      "((cx - 0.5) * (cx - 0.5) + (cy - 0.5) * (cy - 0.5)) <= 0.04 AND "
      "(flags & 64) = 0");
  Schema schema({{"cx", ValueType::kDouble},
                 {"cy", ValueType::kDouble},
                 {"flags", ValueType::kInt}});
  util::Random rng(1);
  std::vector<Row> rows;
  for (int i = 0; i < 256; ++i) {
    rows.push_back({Value::Double(rng.NextDouble()), Value::Double(rng.NextDouble()),
                    Value::Int(static_cast<int64_t>(rng.NextUint64(256)))});
  }
  size_t i = 0;
  for (auto _ : state) {
    RowBinding binding;
    binding.AddSource("t", &schema, &rows[i & 255]);
    benchmark::DoNotOptimize(evaluator.EvalPredicate(**expr, binding));
    ++i;
  }
}
BENCHMARK(BM_EvalPredicate);

Table MakeTable(size_t rows) {
  Table table(Schema({{"objID", ValueType::kInt},
                      {"ra", ValueType::kDouble},
                      {"dec", ValueType::kDouble},
                      {"cx", ValueType::kDouble},
                      {"cy", ValueType::kDouble},
                      {"cz", ValueType::kDouble}}));
  util::Random rng(2);
  for (size_t i = 0; i < rows; ++i) {
    table.AddRow({Value::Int(static_cast<int64_t>(i)),
                  Value::Double(rng.NextDouble(130, 230)),
                  Value::Double(rng.NextDouble(0, 60)),
                  Value::Double(rng.NextDouble()), Value::Double(rng.NextDouble()),
                  Value::Double(rng.NextDouble())});
  }
  return table;
}

void BM_TableToXml(benchmark::State& state) {
  Table table = MakeTable(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(TableToXml(table));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TableToXml)->Arg(50)->Arg(500);

void BM_TableFromXml(benchmark::State& state) {
  std::string xml_text = TableToXml(MakeTable(static_cast<size_t>(state.range(0))));
  for (auto _ : state) {
    benchmark::DoNotOptimize(TableFromXml(xml_text));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TableFromXml)->Arg(50)->Arg(500);

/// Console reporter that mirrors every finished run into the shared
/// JSON-lines file when --json is active.
class JsonMirrorReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonMirrorReporter(const fnproxy::bench::BenchJson* json)
      : json_(json) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      json_->Record(
          run.benchmark_name(), run.GetAdjustedRealTime(),
          benchmark::GetTimeUnitString(run.time_unit),
          {{"iterations", static_cast<double>(run.iterations)},
           {"cpu_time", run.GetAdjustedCPUTime()}});
    }
    ConsoleReporter::ReportRuns(reports);
  }

 private:
  const fnproxy::bench::BenchJson* json_;
};

}  // namespace
}  // namespace fnproxy::sql

int main(int argc, char** argv) {
  fnproxy::bench::BenchJson json =
      fnproxy::bench::BenchJson::FromArgs(&argc, argv, "bench_micro_sql");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  fnproxy::sql::JsonMirrorReporter reporter(&json);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
