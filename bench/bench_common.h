#ifndef FNPROXY_BENCH_BENCH_COMMON_H_
#define FNPROXY_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>
#include <vector>

#include "core/proxy.h"
#include "workload/experiment.h"

namespace fnproxy::bench {

/// The paper-scale experiment: 11,323-query Radial trace over the synthetic
/// SkyServer. Shared by the Table 1 / Figure 5 / Figure 6 benches so their
/// numbers are directly comparable. `num_queries` can be reduced for the
/// parameter-sweep ablations.
inline workload::SkyExperiment::Options PaperOptions(
    size_t num_queries = 11323) {
  workload::SkyExperiment::Options options;
  options.trace.num_queries = num_queries;
  return options;
}

inline core::ProxyConfig MakeProxyConfig(core::CachingMode mode,
                                         bool rtree = false,
                                         size_t max_bytes = 0) {
  core::ProxyConfig config;
  config.mode = mode;
  config.use_rtree_description = rtree;
  config.max_cache_bytes = max_bytes;
  return config;
}

/// Prints the achieved relationship mix of the trace (compare with the
/// paper's 17% exact / 34% containment / ~9% overlap).
inline void PrintTraceMix(const workload::Trace& trace) {
  using geometry::RegionRelation;
  std::printf(
      "Trace: %zu queries | intended mix: exact %.1f%%  containment %.1f%%  "
      "region-containment %.1f%%  overlap %.1f%%  disjoint %.1f%%\n",
      trace.queries.size(),
      100 * trace.IntendedFraction(RegionRelation::kEqual),
      100 * trace.IntendedFraction(RegionRelation::kContainedBy),
      100 * trace.IntendedFraction(RegionRelation::kContains),
      100 * trace.IntendedFraction(RegionRelation::kOverlap),
      100 * trace.IntendedFraction(RegionRelation::kDisjoint));
}

/// One row of a response-time/efficiency report.
struct RunSummary {
  std::string label;
  double avg_response_ms_first_10000 = 0;
  double avg_response_ms_all = 0;
  double avg_cache_efficiency = 0;
  uint64_t origin_requests = 0;
  uint64_t origin_mb_received = 0;
  size_t cache_entries_final = 0;
};

inline RunSummary Summarize(const std::string& label,
                            const workload::SkyExperiment::RunResult& result) {
  RunSummary summary;
  summary.label = label;
  summary.avg_response_ms_first_10000 =
      result.rbe.AverageResponseMillis(10000);
  summary.avg_response_ms_all = result.rbe.AverageResponseMillis();
  summary.avg_cache_efficiency = result.proxy_stats.AverageCacheEfficiency();
  summary.origin_requests = result.origin_requests;
  summary.origin_mb_received = result.origin_bytes_received / (1024 * 1024);
  summary.cache_entries_final = result.cache_entries_final;
  return summary;
}

inline void PrintSummaryTable(const std::vector<RunSummary>& rows) {
  std::printf("%-28s %14s %12s %12s %10s %10s %9s\n", "config",
              "avg ms (10k)", "avg ms (all)", "cache eff.", "origin rq",
              "origin MB", "entries");
  for (const RunSummary& row : rows) {
    std::printf("%-28s %14.0f %12.0f %12.3f %10lu %10lu %9zu\n",
                row.label.c_str(), row.avg_response_ms_first_10000,
                row.avg_response_ms_all, row.avg_cache_efficiency,
                static_cast<unsigned long>(row.origin_requests),
                static_cast<unsigned long>(row.origin_mb_received),
                row.cache_entries_final);
  }
}

/// Per-relationship-status response-time breakdown (diagnostic aid).
inline void PrintStatusBreakdown(
    const workload::SkyExperiment::RunResult& result) {
  using geometry::RegionRelation;
  const auto& records = result.proxy_stats.records;
  const auto& times = result.rbe.response_micros;
  for (RegionRelation status :
       {RegionRelation::kEqual, RegionRelation::kContainedBy,
        RegionRelation::kContains, RegionRelation::kOverlap,
        RegionRelation::kDisjoint}) {
    double sum = 0;
    size_t count = 0;
    for (size_t i = 0; i < records.size() && i < times.size(); ++i) {
      if (records[i].status == status && records[i].handled_by_template) {
        sum += static_cast<double>(times[i]);
        ++count;
      }
    }
    std::printf("    %-14s n=%6zu  avg=%8.0f ms\n",
                geometry::RegionRelationName(status), count,
                count ? sum / static_cast<double>(count) / 1000.0 : 0.0);
  }
}

}  // namespace fnproxy::bench

#endif  // FNPROXY_BENCH_BENCH_COMMON_H_
