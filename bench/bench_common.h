#ifndef FNPROXY_BENCH_BENCH_COMMON_H_
#define FNPROXY_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "core/proxy.h"
#include "util/simd.h"
#include "util/string_util.h"
#include "workload/experiment.h"

namespace fnproxy::bench {

/// Machine-readable bench output (docs/FORMATS.md). Benches accept
/// `--json` / `--json=<path>`; when present, every recorded measurement is
/// appended to the file (default BENCH_results.json) as one JSON object per
/// line, so several bench binaries in a CI step can share one file:
///
///   {"bench":"bench_columnar_scan","name":"scan_100k/columnar",
///    "value":12.5,"unit":"ms","tuples":100000}
///
/// Without the flag, Record() is a no-op and benches print their usual
/// human-readable tables only.
class BenchJson {
 public:
  /// Scans argv for `--json[=path]` and strips it so downstream flag parsers
  /// (google-benchmark rejects unknown flags) never see it.
  static BenchJson FromArgs(int* argc, char** argv, std::string bench) {
    BenchJson json;
    json.bench_ = std::move(bench);
    int out = 1;
    for (int i = 1; i < *argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--json") {
        json.enabled_ = true;
      } else if (arg.rfind("--json=", 0) == 0) {
        json.enabled_ = true;
        json.path_ = arg.substr(7);
      } else {
        argv[out++] = argv[i];
      }
    }
    *argc = out;
    return json;
  }

  bool enabled() const { return enabled_; }
  const std::string& path() const { return path_; }

  /// Appends one JSON-lines record. `extras` are numeric fields merged into
  /// the object (e.g. {"tuples", 100000}).
  void Record(const std::string& name, double value, const std::string& unit,
              const std::vector<std::pair<std::string, double>>& extras = {})
      const {
    if (!enabled_) return;
    std::FILE* f = std::fopen(path_.c_str(), "a");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot open %s for append\n",
                   path_.c_str());
      return;
    }
    std::string line = "{\"bench\":\"";
    AppendJsonEscaped(&line, bench_);
    line += "\",\"name\":\"";
    AppendJsonEscaped(&line, name);
    line += "\",\"value\":";
    AppendJsonNumber(&line, value);
    line += ",\"unit\":\"";
    AppendJsonEscaped(&line, unit);
    line += "\"";
    for (const auto& [key, number] : extras) {
      line += ",\"";
      AppendJsonEscaped(&line, key);
      line += "\":";
      AppendJsonNumber(&line, number);
    }
    // Every record carries the CPU capability it ran under, so regressions
    // can be compared within one dispatch path (an AVX2 baseline against a
    // scalar fresh run is not a regression, it is a different machine).
    line += ",\"simd_width\":";
    AppendJsonNumber(&line, static_cast<double>(util::simd::SimdWidth()));
    line += ",\"dispatch\":\"";
    AppendJsonEscaped(&line, util::simd::DispatchPathName());
    line += "\"";
    line += "}\n";
    std::fwrite(line.data(), 1, line.size(), f);
    std::fclose(f);
  }

 private:
  static void AppendJsonEscaped(std::string* out, const std::string& s) {
    for (char c : s) {
      if (c == '"' || c == '\\') {
        out->push_back('\\');
        out->push_back(c);
      } else if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "\\u%04x", c);
        out->append(buf);
      } else {
        out->push_back(c);
      }
    }
  }

  /// JSON has no NaN/Inf literals; clamp them to null.
  static void AppendJsonNumber(std::string* out, double value) {
    if (value != value || value > 1.7976931348623157e308 ||
        value < -1.7976931348623157e308) {
      out->append("null");
    } else {
      out->append(util::FormatDouble(value));
    }
  }

  bool enabled_ = false;
  std::string bench_;
  std::string path_ = "BENCH_results.json";
};

/// The paper-scale experiment: 11,323-query Radial trace over the synthetic
/// SkyServer. Shared by the Table 1 / Figure 5 / Figure 6 benches so their
/// numbers are directly comparable. `num_queries` can be reduced for the
/// parameter-sweep ablations.
inline workload::SkyExperiment::Options PaperOptions(
    size_t num_queries = 11323) {
  workload::SkyExperiment::Options options;
  options.trace.num_queries = num_queries;
  return options;
}

inline core::ProxyConfig MakeProxyConfig(core::CachingMode mode,
                                         bool rtree = false,
                                         size_t max_bytes = 0) {
  core::ProxyConfig config;
  config.mode = mode;
  config.use_rtree_description = rtree;
  config.max_cache_bytes = max_bytes;
  return config;
}

/// Prints the achieved relationship mix of the trace (compare with the
/// paper's 17% exact / 34% containment / ~9% overlap).
inline void PrintTraceMix(const workload::Trace& trace) {
  using geometry::RegionRelation;
  std::printf(
      "Trace: %zu queries | intended mix: exact %.1f%%  containment %.1f%%  "
      "region-containment %.1f%%  overlap %.1f%%  disjoint %.1f%%\n",
      trace.queries.size(),
      100 * trace.IntendedFraction(RegionRelation::kEqual),
      100 * trace.IntendedFraction(RegionRelation::kContainedBy),
      100 * trace.IntendedFraction(RegionRelation::kContains),
      100 * trace.IntendedFraction(RegionRelation::kOverlap),
      100 * trace.IntendedFraction(RegionRelation::kDisjoint));
}

/// One row of a response-time/efficiency report.
struct RunSummary {
  std::string label;
  double avg_response_ms_first_10000 = 0;
  double avg_response_ms_all = 0;
  double avg_cache_efficiency = 0;
  uint64_t origin_requests = 0;
  uint64_t origin_mb_received = 0;
  size_t cache_entries_final = 0;
};

inline RunSummary Summarize(const std::string& label,
                            const workload::SkyExperiment::RunResult& result) {
  RunSummary summary;
  summary.label = label;
  summary.avg_response_ms_first_10000 =
      result.rbe.AverageResponseMillis(10000);
  summary.avg_response_ms_all = result.rbe.AverageResponseMillis();
  summary.avg_cache_efficiency = result.proxy_stats.AverageCacheEfficiency();
  summary.origin_requests = result.origin_requests;
  summary.origin_mb_received = result.origin_bytes_received / (1024 * 1024);
  summary.cache_entries_final = result.cache_entries_final;
  return summary;
}

inline void PrintSummaryTable(const std::vector<RunSummary>& rows) {
  std::printf("%-28s %14s %12s %12s %10s %10s %9s\n", "config",
              "avg ms (10k)", "avg ms (all)", "cache eff.", "origin rq",
              "origin MB", "entries");
  for (const RunSummary& row : rows) {
    std::printf("%-28s %14.0f %12.0f %12.3f %10lu %10lu %9zu\n",
                row.label.c_str(), row.avg_response_ms_first_10000,
                row.avg_response_ms_all, row.avg_cache_efficiency,
                static_cast<unsigned long>(row.origin_requests),
                static_cast<unsigned long>(row.origin_mb_received),
                row.cache_entries_final);
  }
}

/// Per-relationship-status response-time breakdown (diagnostic aid).
inline void PrintStatusBreakdown(
    const workload::SkyExperiment::RunResult& result) {
  using geometry::RegionRelation;
  const auto& records = result.proxy_stats.records;
  const auto& times = result.rbe.response_micros;
  for (RegionRelation status :
       {RegionRelation::kEqual, RegionRelation::kContainedBy,
        RegionRelation::kContains, RegionRelation::kOverlap,
        RegionRelation::kDisjoint}) {
    double sum = 0;
    size_t count = 0;
    for (size_t i = 0; i < records.size() && i < times.size(); ++i) {
      if (records[i].status == status && records[i].handled_by_template) {
        sum += static_cast<double>(times[i]);
        ++count;
      }
    }
    std::printf("    %-14s n=%6zu  avg=%8.0f ms\n",
                geometry::RegionRelationName(status), count,
                count ? sum / static_cast<double>(count) / 1000.0 : 0.0);
  }
}

}  // namespace fnproxy::bench

#endif  // FNPROXY_BENCH_BENCH_COMMON_H_
