// Reproduces Table 1 of the paper: average cache efficiency of active
// caching (full semantic) and passive caching as the cache size varies over
// {1/6, 1/3, 1/2, 1} of the total result size of the query trace.
//
// Paper reference values (real SkyServer trace):
//   AC: 0.531  0.565  0.582  0.593
//   PC: 0.290  0.305  0.311  0.313

#include <cstdio>

#include "bench_common.h"

using namespace fnproxy;

int main() {
  std::printf("=== Table 1: Average cache efficiency of AC and PC ===\n");
  workload::SkyExperiment experiment(bench::PaperOptions());
  bench::PrintTraceMix(experiment.trace());

  size_t total_bytes = experiment.TotalDistinctResultBytes();
  std::printf("Total distinct trace result size: %.1f MB\n",
              static_cast<double>(total_bytes) / (1024 * 1024));

  const double fractions[] = {1.0 / 6, 1.0 / 3, 1.0 / 2, 1.0};
  const char* fraction_names[] = {"1/6", "1/3", "1/2", "1"};

  double ac_eff[4], pc_eff[4];
  for (int i = 0; i < 4; ++i) {
    size_t budget = static_cast<size_t>(static_cast<double>(total_bytes) *
                                        fractions[i]);
    auto ac = experiment.Run(bench::MakeProxyConfig(
        core::CachingMode::kActiveFull, false, budget));
    auto pc = experiment.Run(
        bench::MakeProxyConfig(core::CachingMode::kPassive, false, budget));
    ac_eff[i] = ac.proxy_stats.AverageCacheEfficiency();
    pc_eff[i] = pc.proxy_stats.AverageCacheEfficiency();
    std::printf("  [cache=%s done]\n", fraction_names[i]);
  }

  std::printf("\nCache Size   1/6     1/3     1/2     1\n");
  std::printf("AC         %.3f   %.3f   %.3f   %.3f\n", ac_eff[0], ac_eff[1],
              ac_eff[2], ac_eff[3]);
  std::printf("PC         %.3f   %.3f   %.3f   %.3f\n", pc_eff[0], pc_eff[1],
              pc_eff[2], pc_eff[3]);
  std::printf(
      "\nPaper:     AC 0.531/0.565/0.582/0.593   PC 0.290/0.305/0.311/0.313\n"
      "Expected shape: AC well above PC at every size; AC gains more from "
      "extra cache than PC.\n");
  return 0;
}
