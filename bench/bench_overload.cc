// Overload-resilience sweep: replays a flash-crowd trace (background Radial
// mix with a burst window where ~85% of queries slam one hot cone) through
// one shared proxy while the closed-loop client count climbs past the
// proxy's admission bound. Measures what the overload controls buy:
//
//   - single-flight collapsing: concurrent identical/subsumed misses on the
//     hot cone share one origin fetch (collapse ratio = hot client requests
//     per hot origin fetch);
//   - admission control: past `max_queue_depth` in-flight requests the proxy
//     answers 503 + Retry-After instead of queueing unboundedly, so goodput
//     holds near its peak and p99 stays bounded;
//   - deadline propagation: a tight X-Deadline-Micros budget short-circuits
//     origin-bound work that cannot fit a WAN trip.
//
//   bench_overload [num-queries] [max-threads] [pacing] [--smoke]
//                  [--json[=path]]
//
// Defaults: 2400 queries, threads swept over {1, 4, 16, 64}, pacing 0.02.
// --smoke shrinks to 500 queries / {4, 16} threads for CI. With --json each
// sweep point appends one JSON-lines record (see docs/FORMATS.md); the
// regression gate watches overload/goodput.
//
// Expected shape: collapse ratio >= 10x at 64 threads (one origin fetch
// serves the whole crowd), goodput at 64 threads within 20% of the peak
// sweep point, nonzero shed count once threads exceed the admission bound.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"

using namespace fnproxy;

namespace {

/// Origin-side tap: counts requests whose URL (form query or instantiated
/// SQL) mentions the hot cone's center — every fetch the flash crowd forced
/// past the cache and the in-flight table.
class CountingOriginHandler final : public net::HttpHandler {
 public:
  CountingOriginHandler(net::HttpHandler* inner, std::string hot_marker)
      : inner_(inner), hot_marker_(std::move(hot_marker)) {}

  net::HttpResponse Handle(const net::HttpRequest& request) override {
    requests_.fetch_add(1, std::memory_order_relaxed);
    if (request.ToUrl().find(hot_marker_) != std::string::npos) {
      hot_requests_.fetch_add(1, std::memory_order_relaxed);
    }
    return inner_->Handle(request);
  }

  uint64_t requests() const {
    return requests_.load(std::memory_order_relaxed);
  }
  uint64_t hot_requests() const {
    return hot_requests_.load(std::memory_order_relaxed);
  }

 private:
  net::HttpHandler* inner_;
  std::string hot_marker_;
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> hot_requests_{0};
};

struct OverloadPoint {
  workload::ConcurrentRunResult run;
  core::ProxyStats stats;
  uint64_t origin_requests = 0;
  uint64_t origin_hot_requests = 0;
};

OverloadPoint RunPoint(workload::SkyExperiment& experiment,
                       const workload::Trace& trace,
                       const core::ProxyConfig& config, size_t threads,
                       double pacing, int64_t deadline_budget_micros,
                       const std::string& hot_marker) {
  util::SimulatedClock clock;
  clock.set_real_time_scale(pacing);
  server::OriginWebApp app(experiment.database(), &clock,
                           experiment.options().server_costs);
  if (!app.RegisterForm("/radial", workload::kRadialTemplateSql).ok()) {
    std::abort();
  }
  CountingOriginHandler origin(&app, hot_marker);
  net::SimulatedChannel wan(&origin, experiment.options().wan, &clock);
  core::FunctionProxy proxy(config, &experiment.templates(), &wan, &clock);
  net::SimulatedChannel lan(&proxy, experiment.options().lan, &clock);
  workload::ConcurrentDriver driver(&lan, &clock);

  OverloadPoint point;
  point.run = driver.Replay(trace, threads, deadline_budget_micros);
  point.stats = proxy.stats();
  point.origin_requests = wan.total_requests();
  point.origin_hot_requests = origin.hot_requests();
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchJson json =
      bench::BenchJson::FromArgs(&argc, argv, "bench_overload");
  bool smoke = false;
  {
    int out = 1;
    for (int i = 1; i < argc; ++i) {
      if (std::string(argv[i]) == "--smoke") {
        smoke = true;
      } else {
        argv[out++] = argv[i];
      }
    }
    argc = out;
  }
  size_t num_queries =
      argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : (smoke ? 500 : 2400);
  size_t max_threads =
      argc > 2 ? static_cast<size_t>(std::atoll(argv[2])) : (smoke ? 16 : 64);
  double pacing = argc > 3 ? std::atof(argv[3]) : 0.02;

  std::printf("=== Overload resilience: flash crowd (%zu queries, up to %zu "
              "clients, pacing %.3f) ===\n",
              num_queries, max_threads, pacing);

  workload::SkyExperiment experiment(bench::PaperOptions(num_queries));

  workload::FlashCrowdTraceConfig crowd;
  crowd.base = experiment.options().trace;
  crowd.base.num_queries = num_queries;
  // Keep the hot cone inside the catalog's populated footprint.
  crowd.hot_ra = 180.0;
  crowd.hot_dec = 30.0;
  crowd.hot_radius_arcmin = 20.0;
  workload::Trace trace = workload::GenerateFlashCrowdTrace(crowd);
  const std::string hot_marker = "180.0000";
  uint64_t hot_client_requests = 0;
  for (const workload::TraceQuery& query : trace.queries) {
    auto it = query.params.find("ra");
    if (it != query.params.end() && it->second == hot_marker) {
      ++hot_client_requests;
    }
  }
  std::printf("Flash crowd: %zu queries, %llu on the hot cone (ra=%s)\n",
              trace.queries.size(),
              static_cast<unsigned long long>(hot_client_requests),
              hot_marker.c_str());

  core::ProxyConfig config =
      bench::MakeProxyConfig(core::CachingMode::kActiveFull);
  config.cache_shards = 8;
  config.collapse_inflight = true;
  // Admit at most 48 in-flight requests; past that, shed. The watermark sits
  // at the bound so only the hard limit fires in this closed-loop sweep
  // (the soft origin-backlog lane is exercised by the unit tests).
  config.max_queue_depth = 48;
  config.origin_shed_watermark = 1.0;

  // A generous budget: several WAN round trips fit, so only pathological
  // waits are cut short. Virtual micros.
  const int64_t kDeadlineBudgetMicros = 120'000'000;

  std::vector<size_t> sweep;
  for (size_t t = smoke ? 4 : 1; t <= max_threads; t *= 4) sweep.push_back(t);
  if (sweep.empty() || sweep.back() != max_threads)
    sweep.push_back(max_threads);

  std::printf("\n%8s %10s %10s %9s %9s %9s %10s %9s %9s\n", "threads",
              "goodput/s", "shed", "shed %", "collapsed", "hot org",
              "ratio", "p50 ms", "p99 ms");
  double peak_goodput = 0.0;
  double final_goodput = 0.0;
  for (size_t threads : sweep) {
    OverloadPoint point = RunPoint(experiment, trace, config, threads, pacing,
                                   kDeadlineBudgetMicros, hot_marker);
    const workload::ConcurrentRunResult& run = point.run;
    double wall_seconds = run.wall_millis / 1000.0;
    double goodput_rps = wall_seconds > 0.0
                             ? static_cast<double>(run.goodput_requests) /
                                   wall_seconds
                             : 0.0;
    peak_goodput = std::max(peak_goodput, goodput_rps);
    final_goodput = goodput_rps;
    double shed_pct = run.requests > 0
                          ? 100.0 * static_cast<double>(run.shed) /
                                static_cast<double>(run.requests)
                          : 0.0;
    double collapse_ratio =
        point.origin_hot_requests > 0
            ? static_cast<double>(hot_client_requests) /
                  static_cast<double>(point.origin_hot_requests)
            : static_cast<double>(hot_client_requests);
    std::printf("%8zu %10.0f %10llu %8.1f%% %9llu %9llu %9.0fx %9.2f %9.2f\n",
                threads, goodput_rps,
                static_cast<unsigned long long>(run.shed), shed_pct,
                static_cast<unsigned long long>(point.stats.collapsed),
                static_cast<unsigned long long>(point.origin_hot_requests),
                collapse_ratio,
                static_cast<double>(run.p50_micros) / 1000.0,
                static_cast<double>(run.p99_micros) / 1000.0);
    json.Record(
        "overload/t" + std::to_string(threads), goodput_rps, "req/s",
        {{"threads", static_cast<double>(threads)},
         {"goodput_rps", goodput_rps},
         {"requests", static_cast<double>(run.requests)},
         {"errors", static_cast<double>(run.errors)},
         {"shed", static_cast<double>(run.shed)},
         {"shed_pct", shed_pct},
         {"partials", static_cast<double>(run.partials)},
         {"collapsed", static_cast<double>(point.stats.collapsed)},
         {"deadline_exceeded",
          static_cast<double>(point.stats.deadline_exceeded)},
         {"origin_requests", static_cast<double>(point.origin_requests)},
         {"origin_hot_requests",
          static_cast<double>(point.origin_hot_requests)},
         {"collapse_ratio", collapse_ratio},
         {"p50_ms", static_cast<double>(run.p50_micros) / 1000.0},
         {"p99_ms", static_cast<double>(run.p99_micros) / 1000.0}});
  }
  // The regression-gate headline: goodput at the highest client count,
  // normalized by the sweep's peak — stays near 1.0 when shedding works,
  // collapses toward 0 if overload degrades goodput.
  double goodput_retention =
      peak_goodput > 0.0 ? final_goodput / peak_goodput : 0.0;
  json.Record("overload/goodput_retention", goodput_retention, "fraction",
              {{"peak_goodput_rps", peak_goodput},
               {"final_goodput_rps", final_goodput}});
  std::printf("\nGoodput retention at %zu clients: %.2f of peak\n",
              max_threads, goodput_retention);

  // Contrast run: collapsing disabled at the top client count. Every
  // concurrent hot-cone miss pays its own origin fetch.
  core::ProxyConfig solo = config;
  solo.collapse_inflight = false;
  OverloadPoint no_collapse = RunPoint(experiment, trace, solo, max_threads,
                                       pacing, kDeadlineBudgetMicros,
                                       hot_marker);
  std::printf("No-collapse contrast at %zu threads: %llu hot origin fetches "
              "(vs collapsed sweep above)\n",
              max_threads,
              static_cast<unsigned long long>(
                  no_collapse.origin_hot_requests));
  json.Record("overload/no_collapse_hot_fetches",
              static_cast<double>(no_collapse.origin_hot_requests), "requests",
              {{"threads", static_cast<double>(max_threads)},
               {"origin_requests",
                static_cast<double>(no_collapse.origin_requests)}});

  // Tight-deadline run: a budget smaller than one WAN round trip. Misses are
  // short-circuited as deadline-exceeded (503 or degraded partial); cache
  // hits still answer.
  const int64_t kTightBudgetMicros = 50'000;  // < 2 x 150 ms WAN latency.
  OverloadPoint tight = RunPoint(experiment, trace, config,
                                 smoke ? 4 : 16, pacing, kTightBudgetMicros,
                                 hot_marker);
  std::printf("Tight deadline (%lld us budget): %llu shed, %llu partials, "
              "%llu deadline-exceeded, %llu origin requests\n",
              static_cast<long long>(kTightBudgetMicros),
              static_cast<unsigned long long>(tight.run.shed),
              static_cast<unsigned long long>(tight.run.partials),
              static_cast<unsigned long long>(tight.stats.deadline_exceeded),
              static_cast<unsigned long long>(tight.origin_requests));
  json.Record("overload/tight_deadline_exceeded",
              static_cast<double>(tight.stats.deadline_exceeded), "requests",
              {{"budget_us", static_cast<double>(kTightBudgetMicros)},
               {"shed", static_cast<double>(tight.run.shed)},
               {"partials", static_cast<double>(tight.run.partials)},
               {"origin_requests",
                static_cast<double>(tight.origin_requests)}});

  std::printf("\nExpected: collapse ratio >= 10x at the top client count; "
              "goodput retention >= 0.8; nonzero shed once clients exceed "
              "the admission bound.\n");
  return 0;
}
