// Ablation C: cache replacement policy under limited cache sizes.
//
// The paper varies cache size (Table 1 / Figure 5) but does not name its
// replacement policy. This ablation compares LRU, LFU, and size-adjusted
// (benefit-per-byte) eviction at tight cache budgets, reporting cache
// efficiency and response time for the full-semantic scheme.

#include <cstdio>

#include "bench_common.h"

using namespace fnproxy;

int main() {
  std::printf("=== Ablation C: replacement policy x cache size ===\n");
  workload::SkyExperiment experiment(bench::PaperOptions(6000));
  bench::PrintTraceMix(experiment.trace());
  size_t total_bytes = experiment.TotalDistinctResultBytes();
  std::printf("Total distinct trace result size: %.1f MB\n\n",
              static_cast<double>(total_bytes) / (1024 * 1024));

  const double fractions[] = {1.0 / 12, 1.0 / 6, 1.0 / 3};
  const char* fraction_names[] = {"1/12", "1/6", "1/3"};
  const core::ReplacementPolicy policies[] = {
      core::ReplacementPolicy::kLru, core::ReplacementPolicy::kLfu,
      core::ReplacementPolicy::kSizeAdjusted};

  std::printf("%8s %15s | %12s %12s %10s\n", "cache", "policy", "cache eff.",
              "avg ms", "evictions");
  for (int i = 0; i < 3; ++i) {
    size_t budget = static_cast<size_t>(static_cast<double>(total_bytes) *
                                        fractions[i]);
    for (core::ReplacementPolicy policy : policies) {
      core::ProxyConfig config =
          bench::MakeProxyConfig(core::CachingMode::kActiveFull, false, budget);
      config.replacement = policy;
      auto result = experiment.Run(config);
      std::printf("%8s %15s | %12.3f %12.0f %10zu\n", fraction_names[i],
                  core::ReplacementPolicyName(policy),
                  result.proxy_stats.AverageCacheEfficiency(),
                  result.rbe.AverageResponseMillis(),
                  static_cast<size_t>(result.proxy_stats.misses));
    }
  }
  std::printf(
      "\nExpected shape: efficiency rises with cache size for every policy; "
      "at tight\nbudgets the policies separate (frequency- and size-aware "
      "eviction retain hot\nsmall regions better than pure recency).\n");
  return 0;
}
