// Concurrent-proxy throughput sweep: replays the Radial trace through one
// shared proxy from 1..16 closed-loop client threads, for each of the five
// caching schemes. The proxy uses a sharded cache (8 shards) with
// reader-writer locking; origin SQL execution, fault-free WAN transfers and
// relationship checks all overlap across threads.
//
//   bench_concurrent_throughput [num-queries] [max-threads] [pacing]
//                               [--smoke] [--json[=path]]
//
// Defaults: 600 queries, threads swept over {1, 2, 4, 8, 16}, pacing 0.02.
// --smoke runs the CI async-pipelining check instead of the full sweep:
// full-semantic scheme only, threads {1, 8}, once with the async origin
// channel on and once serialized, recording async_overlap/t8_speedup
// (async 8-thread vs async 1-thread) and async_overlap/async_vs_sync_t8
// (async vs serialized at 8 threads).
// With --json, each sweep point appends one JSON-lines record carrying the
// throughput plus per-phase latency fields (phase_<name>_total_us /
// phase_<name>_p95_us, from the proxy's fnproxy_phase_duration_micros
// histograms); see docs/FORMATS.md.
// The shared clock is real-time paced: every modeled microsecond (WAN
// transfer, server work) also sleeps `pacing` real microseconds on the
// calling thread, so modeled waits occupy real time and overlap across
// threads — exactly how a real proxy overlaps network waits. Latencies are
// wall-clock; the headline number is the speedup of requests/s at each
// thread count over the same scheme's single-thread run.
//
// Expected shape: >= 3x throughput at 8 threads for the full-semantic
// scheme — cache hits parallelize and misses overlap their (paced) origin
// round trips.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"

using namespace fnproxy;

int main(int argc, char** argv) {
  bench::BenchJson json =
      bench::BenchJson::FromArgs(&argc, argv, "bench_concurrent_throughput");
  bool smoke = false;
  {
    int out = 1;
    for (int i = 1; i < argc; ++i) {
      if (std::string(argv[i]) == "--smoke") {
        smoke = true;
      } else {
        argv[out++] = argv[i];
      }
    }
    argc = out;
  }
  size_t num_queries = argc > 1 ? static_cast<size_t>(std::atoll(argv[1]))
                                : (smoke ? 400 : 600);
  size_t max_threads = argc > 2 ? static_cast<size_t>(std::atoll(argv[2]))
                                : 16;
  double pacing = argc > 3 ? std::atof(argv[3]) : 0.02;

  if (smoke) {
    std::printf("=== Async origin pipelining (full-semantic, %zu queries, "
                "pacing %.3f) ===\n", num_queries, pacing);
    workload::SkyExperiment experiment(bench::PaperOptions(num_queries));
    bench::PrintTraceMix(experiment.trace());

    auto run_point = [&](bool async_origin, size_t threads) {
      core::ProxyConfig config =
          bench::MakeProxyConfig(core::CachingMode::kActiveFull);
      config.cache_shards = 8;
      config.async_origin = async_origin;
      workload::SkyExperiment::ConcurrentRunOutput output =
          experiment.RunTraceConcurrent(experiment.trace(), config, threads,
                                        pacing);
      const workload::ConcurrentRunResult& run = output.driver;
      std::printf("  %-10s t=%zu  %10.1f ms  %8.0f req/s  (errors %lu)\n",
                  async_origin ? "async" : "serialized", threads,
                  run.wall_millis, run.requests_per_second,
                  static_cast<unsigned long>(run.errors));
      return run.requests_per_second;
    };
    double async_t1 = run_point(/*async_origin=*/true, 1);
    double async_t8 = run_point(/*async_origin=*/true, 8);
    double sync_t8 = run_point(/*async_origin=*/false, 8);
    double t8_speedup = async_t1 > 0 ? async_t8 / async_t1 : 0;
    double async_vs_sync = sync_t8 > 0 ? async_t8 / sync_t8 : 0;
    std::printf("  async t8 vs t1: %.2fx   async vs serialized at t8: "
                "%.2fx\n", t8_speedup, async_vs_sync);
    json.Record("async_overlap/t1", async_t1, "req/s");
    json.Record("async_overlap/t8", async_t8, "req/s");
    json.Record("async_overlap/sync_t8", sync_t8, "req/s");
    json.Record("async_overlap/t8_speedup", t8_speedup, "x");
    json.Record("async_overlap/async_vs_sync_t8", async_vs_sync, "x");
    return 0;
  }
  std::printf("=== Concurrent proxy throughput (sharded cache, %zu queries, "
              "pacing %.3f) ===\n", num_queries, pacing);
  workload::SkyExperiment experiment(bench::PaperOptions(num_queries));
  bench::PrintTraceMix(experiment.trace());

  struct Scheme {
    const char* name;
    core::CachingMode mode;
  };
  const Scheme schemes[] = {
      {"no-cache", core::CachingMode::kNoCache},
      {"passive", core::CachingMode::kPassive},
      {"full-semantic", core::CachingMode::kActiveFull},
      {"region-containment", core::CachingMode::kActiveRegionContainment},
      {"containment-only", core::CachingMode::kActiveContainmentOnly},
  };

  std::printf("\n%-20s %8s %10s %10s %8s %9s %9s %9s\n", "scheme", "threads",
              "wall ms", "req/s", "speedup", "p50 ms", "p95 ms", "p99 ms");
  for (const Scheme& scheme : schemes) {
    core::ProxyConfig config = bench::MakeProxyConfig(scheme.mode);
    config.cache_shards = 8;  // Constant across the sweep: measure threading.
    double base_rps = 0.0;
    for (size_t threads = 1; threads <= max_threads; threads *= 2) {
      workload::SkyExperiment::ConcurrentRunOutput output =
          experiment.RunTraceConcurrent(experiment.trace(), config, threads,
                                        pacing);
      const workload::ConcurrentRunResult& run = output.driver;
      if (threads == 1) base_rps = run.requests_per_second;
      double speedup =
          base_rps > 0.0 ? run.requests_per_second / base_rps : 0.0;
      std::printf("%-20s %8zu %10.1f %10.0f %7.2fx %9.2f %9.2f %9.2f\n",
                  scheme.name, threads, run.wall_millis,
                  run.requests_per_second, speedup,
                  static_cast<double>(run.p50_micros) / 1000.0,
                  static_cast<double>(run.p95_micros) / 1000.0,
                  static_cast<double>(run.p99_micros) / 1000.0);
      if (run.errors != 0) {
        std::printf("  !! %lu errors\n",
                    static_cast<unsigned long>(run.errors));
      }
      std::vector<std::pair<std::string, double>> extras = {
          {"threads", static_cast<double>(threads)},
          {"wall_ms", run.wall_millis},
          {"p50_ms", static_cast<double>(run.p50_micros) / 1000.0},
          {"p95_ms", static_cast<double>(run.p95_micros) / 1000.0},
          {"p99_ms", static_cast<double>(run.p99_micros) / 1000.0},
          {"errors", static_cast<double>(run.errors)},
      };
      for (const obs::PhaseBreakdown& row : output.phases) {
        extras.emplace_back("phase_" + row.phase + "_total_us",
                            static_cast<double>(row.total_micros));
        extras.emplace_back("phase_" + row.phase + "_p95_us",
                            static_cast<double>(row.p95_micros));
      }
      json.Record(std::string(scheme.name) + "/t" + std::to_string(threads),
                  run.requests_per_second, "req/s", extras);
    }
  }
  std::printf("\nLatencies are wall-clock against the paced clock; modeled "
              "time is unchanged by threading.\nExpected: >= 3x req/s at 8 "
              "threads vs 1 for full-semantic.\n");
  return 0;
}
