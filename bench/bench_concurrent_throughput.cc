// Concurrent-proxy throughput sweep: replays the Radial trace through one
// shared proxy from 1..16 closed-loop client threads, for each of the five
// caching schemes. The proxy uses a sharded cache (8 shards) with
// reader-writer locking; origin SQL execution, fault-free WAN transfers and
// relationship checks all overlap across threads.
//
//   bench_concurrent_throughput [num-queries] [max-threads] [pacing]
//                               [--json[=path]]
//
// Defaults: 600 queries, threads swept over {1, 2, 4, 8, 16}, pacing 0.02.
// With --json, each sweep point appends one JSON-lines record carrying the
// throughput plus per-phase latency fields (phase_<name>_total_us /
// phase_<name>_p95_us, from the proxy's fnproxy_phase_duration_micros
// histograms); see docs/FORMATS.md.
// The shared clock is real-time paced: every modeled microsecond (WAN
// transfer, server work) also sleeps `pacing` real microseconds on the
// calling thread, so modeled waits occupy real time and overlap across
// threads — exactly how a real proxy overlaps network waits. Latencies are
// wall-clock; the headline number is the speedup of requests/s at each
// thread count over the same scheme's single-thread run.
//
// Expected shape: >= 3x throughput at 8 threads for the full-semantic
// scheme — cache hits parallelize and misses overlap their (paced) origin
// round trips.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"

using namespace fnproxy;

int main(int argc, char** argv) {
  bench::BenchJson json =
      bench::BenchJson::FromArgs(&argc, argv, "bench_concurrent_throughput");
  size_t num_queries = argc > 1 ? static_cast<size_t>(std::atoll(argv[1]))
                                : 600;
  size_t max_threads = argc > 2 ? static_cast<size_t>(std::atoll(argv[2]))
                                : 16;
  double pacing = argc > 3 ? std::atof(argv[3]) : 0.02;
  std::printf("=== Concurrent proxy throughput (sharded cache, %zu queries, "
              "pacing %.3f) ===\n", num_queries, pacing);
  workload::SkyExperiment experiment(bench::PaperOptions(num_queries));
  bench::PrintTraceMix(experiment.trace());

  struct Scheme {
    const char* name;
    core::CachingMode mode;
  };
  const Scheme schemes[] = {
      {"no-cache", core::CachingMode::kNoCache},
      {"passive", core::CachingMode::kPassive},
      {"full-semantic", core::CachingMode::kActiveFull},
      {"region-containment", core::CachingMode::kActiveRegionContainment},
      {"containment-only", core::CachingMode::kActiveContainmentOnly},
  };

  std::printf("\n%-20s %8s %10s %10s %8s %9s %9s %9s\n", "scheme", "threads",
              "wall ms", "req/s", "speedup", "p50 ms", "p95 ms", "p99 ms");
  for (const Scheme& scheme : schemes) {
    core::ProxyConfig config = bench::MakeProxyConfig(scheme.mode);
    config.cache_shards = 8;  // Constant across the sweep: measure threading.
    double base_rps = 0.0;
    for (size_t threads = 1; threads <= max_threads; threads *= 2) {
      workload::SkyExperiment::ConcurrentRunOutput output =
          experiment.RunTraceConcurrent(experiment.trace(), config, threads,
                                        pacing);
      const workload::ConcurrentRunResult& run = output.driver;
      if (threads == 1) base_rps = run.requests_per_second;
      double speedup =
          base_rps > 0.0 ? run.requests_per_second / base_rps : 0.0;
      std::printf("%-20s %8zu %10.1f %10.0f %7.2fx %9.2f %9.2f %9.2f\n",
                  scheme.name, threads, run.wall_millis,
                  run.requests_per_second, speedup,
                  static_cast<double>(run.p50_micros) / 1000.0,
                  static_cast<double>(run.p95_micros) / 1000.0,
                  static_cast<double>(run.p99_micros) / 1000.0);
      if (run.errors != 0) {
        std::printf("  !! %lu errors\n",
                    static_cast<unsigned long>(run.errors));
      }
      std::vector<std::pair<std::string, double>> extras = {
          {"threads", static_cast<double>(threads)},
          {"wall_ms", run.wall_millis},
          {"p50_ms", static_cast<double>(run.p50_micros) / 1000.0},
          {"p95_ms", static_cast<double>(run.p95_micros) / 1000.0},
          {"p99_ms", static_cast<double>(run.p99_micros) / 1000.0},
          {"errors", static_cast<double>(run.errors)},
      };
      for (const obs::PhaseBreakdown& row : output.phases) {
        extras.emplace_back("phase_" + row.phase + "_total_us",
                            static_cast<double>(row.total_micros));
        extras.emplace_back("phase_" + row.phase + "_p95_us",
                            static_cast<double>(row.p95_micros));
      }
      json.Record(std::string(scheme.name) + "/t" + std::to_string(threads),
                  run.requests_per_second, "req/s", extras);
    }
  }
  std::printf("\nLatencies are wall-clock against the paced clock; modeled "
              "time is unchanged by threading.\nExpected: >= 3x req/s at 8 "
              "threads vs 1 for full-semantic.\n");
  return 0;
}
