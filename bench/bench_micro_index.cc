// Micro-benchmarks for the cache-description structures (array vs R-tree),
// underlying the paper's ACR/ACNR comparison in Figure 5.

#include <benchmark/benchmark.h>

#include "geometry/celestial.h"
#include "index/array_index.h"
#include "index/rtree.h"
#include "util/random.h"

namespace fnproxy::index {
namespace {

geometry::Hyperrectangle RandomBox(util::Random& rng) {
  return geometry::ConeToHypersphere(rng.NextDouble(130, 230),
                                     rng.NextDouble(0, 60),
                                     rng.NextDouble(4, 30))
      .BoundingBox();
}

template <typename Index>
void BM_Search(benchmark::State& state) {
  util::Random rng(1);
  Index index;
  for (EntryId id = 0; id < static_cast<EntryId>(state.range(0)); ++id) {
    index.Insert(id, RandomBox(rng));
  }
  std::vector<geometry::Hyperrectangle> probes;
  for (int i = 0; i < 256; ++i) probes.push_back(RandomBox(rng));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.SearchIntersecting(probes[i & 255]));
    ++i;
  }
}
BENCHMARK_TEMPLATE(BM_Search, ArrayRegionIndex)->Arg(1000)->Arg(10000);
BENCHMARK_TEMPLATE(BM_Search, RTreeIndex)->Arg(1000)->Arg(10000);

template <typename Index>
void BM_InsertRemoveCycle(benchmark::State& state) {
  util::Random rng(2);
  Index index;
  std::vector<geometry::Hyperrectangle> boxes;
  for (EntryId id = 0; id < static_cast<EntryId>(state.range(0)); ++id) {
    boxes.push_back(RandomBox(rng));
    index.Insert(id, boxes.back());
  }
  EntryId next = static_cast<EntryId>(state.range(0));
  size_t victim = 0;
  for (auto _ : state) {
    index.Remove(victim % boxes.size());
    index.Insert(victim % boxes.size(), boxes[victim % boxes.size()]);
    ++victim;
    benchmark::DoNotOptimize(next);
  }
}
BENCHMARK_TEMPLATE(BM_InsertRemoveCycle, ArrayRegionIndex)->Arg(1000)->Arg(10000);
BENCHMARK_TEMPLATE(BM_InsertRemoveCycle, RTreeIndex)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace fnproxy::index
