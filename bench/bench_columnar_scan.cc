// Subsumed-query scan throughput: row-wise vs columnar cached-result layout.
//
// Reproduces the proxy's hot path for a subsumed query probing two
// overlapping cached entries (paper §3.2 case b): region selection over the
// cached tuples, duplicate-removing merge, and XML serialization of the
// response. The row pipeline materializes row objects at every stage; the
// columnar pipeline runs the batched membership kernel over pre-resolved
// coordinate arrays, merges by row hash, and serializes straight from
// column storage.
//
//   bench_columnar_scan [--layout=row|columnar|both] [--tuples=N]
//                       [--radius=R] [--reps=K] [--smoke] [--json[=path]]
//                       [--encoding=auto|raw|decimal|shuffle]
//
// --smoke shrinks the workload for CI (also verifies the two layouts emit
// byte-identical XML). --json appends machine-readable records to
// BENCH_results.json (see docs/FORMATS.md).
//
// The tier section freezes a photometric sky table (the paper's SDSS
// workload shape: sequential ids, small imaging-run ints, 1e-3-quantized
// magnitudes, a low-cardinality class column) through the storage layer and
// reports the compression ratio plus scan-on-compressed cost next to the
// raw scan. --encoding forces the double-column policy so individual
// encodings are measurable; the default auto policy is what the proxy runs.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/local_eval.h"
#include "core/simd_kernels.h"
#include "geometry/hypersphere.h"
#include "sql/columnar.h"
#include "sql/table_xml.h"
#include "storage/segment.h"
#include "util/arena.h"
#include "util/random.h"
#include "util/simd.h"

namespace fnproxy {
namespace {

using core::ColumnarSlice;

const std::vector<std::string> kCoordinateColumns = {"ra", "dec"};

sql::Table MakeSkyTable(size_t rows, size_t first_id, util::Random* rng) {
  sql::Table table(sql::Schema({{"objID", sql::ValueType::kInt},
                                {"ra", sql::ValueType::kDouble},
                                {"dec", sql::ValueType::kDouble},
                                {"cx", sql::ValueType::kDouble},
                                {"cy", sql::ValueType::kDouble},
                                {"cz", sql::ValueType::kDouble}}));
  for (size_t i = 0; i < rows; ++i) {
    table.AddRow({sql::Value::Int(static_cast<int64_t>(first_id + i)),
                  sql::Value::Double(rng->NextDouble(130, 230)),
                  sql::Value::Double(rng->NextDouble(0, 60)),
                  sql::Value::Double(rng->NextDouble()),
                  sql::Value::Double(rng->NextDouble()),
                  sql::Value::Double(rng->NextDouble())});
  }
  return table;
}

/// The photometric catalog shape the proxy actually caches: identifiers and
/// imaging-run metadata (small ints), scan-hot coordinates (view-prepared),
/// magnitudes quantized to millimags by the pipeline, and a low-cardinality
/// classification string.
sql::Table MakePhotoTable(size_t rows, util::Random* rng) {
  sql::Table table(sql::Schema({{"objID", sql::ValueType::kInt},
                                {"run", sql::ValueType::kInt},
                                {"camcol", sql::ValueType::kInt},
                                {"field", sql::ValueType::kInt},
                                {"type", sql::ValueType::kInt},
                                {"flags", sql::ValueType::kInt},
                                {"ra", sql::ValueType::kDouble},
                                {"dec", sql::ValueType::kDouble},
                                {"u", sql::ValueType::kDouble},
                                {"g", sql::ValueType::kDouble},
                                {"r", sql::ValueType::kDouble},
                                {"i", sql::ValueType::kDouble},
                                {"z", sql::ValueType::kDouble},
                                {"class", sql::ValueType::kString}}));
  const char* kClasses[4] = {"STAR", "GALAXY", "QSO", "UNKNOWN"};
  auto mag = [&] {  // millimag-quantized magnitude, the survey's precision
    return std::round(rng->NextDouble(14.0, 25.0) * 1000.0) / 1000.0;
  };
  for (size_t i = 0; i < rows; ++i) {
    table.AddRow({sql::Value::Int(static_cast<int64_t>(1237650000000 + i)),
                  sql::Value::Int(752 + static_cast<int64_t>(i / 4096)),
                  sql::Value::Int(static_cast<int64_t>(
                      rng->NextDouble(1, 6.999))),
                  sql::Value::Int(static_cast<int64_t>(
                      rng->NextDouble(11, 800))),
                  sql::Value::Int(static_cast<int64_t>(
                      rng->NextDouble(0, 9.999))),
                  sql::Value::Int(static_cast<int64_t>(
                                      rng->NextDouble(0, 255.999))
                                  << 16),
                  sql::Value::Double(rng->NextDouble(130, 230)),
                  sql::Value::Double(rng->NextDouble(0, 60)),
                  sql::Value::Double(mag()), sql::Value::Double(mag()),
                  sql::Value::Double(mag()), sql::Value::Double(mag()),
                  sql::Value::Double(mag()),
                  sql::Value::String(kClasses[static_cast<size_t>(
                      rng->NextDouble(0, 3.999))])});
  }
  return table;
}

/// Appends `count` rows of `src` starting at `first`, duplicating cached
/// tuples across entries the way overlapping query regions do.
void CopyRows(const sql::Table& src, size_t first, size_t count,
              sql::Table* dst) {
  for (size_t i = 0; i < count; ++i) dst->AddRow(src.row(first + i));
}

std::string RunRowPipeline(const sql::Table& a, const sql::Table& b,
                           const geometry::Region& region) {
  auto sel_a = core::SelectInRegion(a, region, kCoordinateColumns);
  auto sel_b = core::SelectInRegion(b, region, kCoordinateColumns);
  if (!sel_a.ok() || !sel_b.ok()) {
    std::fprintf(stderr, "row SelectInRegion failed\n");
    std::exit(1);
  }
  auto merged = core::MergeDistinct({&sel_a->table, &sel_b->table});
  if (!merged.ok()) {
    std::fprintf(stderr, "row MergeDistinct failed\n");
    std::exit(1);
  }
  return sql::TableToXml(*merged);
}

std::string RunColumnarPipeline(const sql::ColumnarTable& a,
                                const sql::ColumnarTable& b,
                                const geometry::Region& region) {
  auto sel_a = core::SelectInRegion(a, region, kCoordinateColumns);
  auto sel_b = core::SelectInRegion(b, region, kCoordinateColumns);
  if (!sel_a.ok() || !sel_b.ok()) {
    std::fprintf(stderr, "columnar SelectInRegion failed\n");
    std::exit(1);
  }
  auto merged = core::MergeDistinctColumnar(
      {{&a, &sel_a->selection}, {&b, &sel_b->selection}});
  if (!merged.ok()) {
    std::fprintf(stderr, "columnar MergeDistinct failed\n");
    std::exit(1);
  }
  return sql::TableToXml(*merged);
}

template <typename Fn>
double BestMillis(size_t reps, const Fn& fn) {
  double best = 0;
  for (size_t i = 0; i < reps + 1; ++i) {  // +1 warmup, not recorded
    auto start = std::chrono::steady_clock::now();
    std::string xml = fn();
    auto stop = std::chrono::steady_clock::now();
    double ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    if (xml.empty()) std::exit(1);  // keep the result observable
    if (i > 0 && (best == 0 || ms < best)) best = ms;
  }
  return best;
}

}  // namespace
}  // namespace fnproxy

int main(int argc, char** argv) {
  using namespace fnproxy;  // NOLINT

  bench::BenchJson json =
      bench::BenchJson::FromArgs(&argc, argv, "bench_columnar_scan");
  std::string layout = "both";
  size_t tuples = 100000;
  // A subsumed query's region is small relative to the cached result it
  // probes (the paper's trace shrinks radii over time); radius 8 selects
  // ~3% of the 100x60-degree cached sky.
  double radius = 8.0;
  size_t reps = 5;
  bool smoke = false;
  std::string encoding = "auto";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--layout=", 0) == 0) {
      layout = arg.substr(9);
    } else if (arg.rfind("--tuples=", 0) == 0) {
      tuples = static_cast<size_t>(std::atoll(arg.c_str() + 9));
    } else if (arg.rfind("--radius=", 0) == 0) {
      radius = std::atof(arg.c_str() + 9);
    } else if (arg.rfind("--reps=", 0) == 0) {
      reps = static_cast<size_t>(std::atoll(arg.c_str() + 7));
    } else if (arg.rfind("--encoding=", 0) == 0) {
      encoding = arg.substr(11);
    } else if (arg == "--smoke") {
      smoke = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 1;
    }
  }
  storage::DoubleEncodingPolicy double_policy;
  if (encoding == "auto") {
    double_policy = storage::DoubleEncodingPolicy::kAuto;
  } else if (encoding == "raw") {
    double_policy = storage::DoubleEncodingPolicy::kRaw;
  } else if (encoding == "decimal") {
    double_policy = storage::DoubleEncodingPolicy::kDecimal;
  } else if (encoding == "shuffle") {
    double_policy = storage::DoubleEncodingPolicy::kShuffle;
  } else {
    std::fprintf(stderr, "--encoding must be auto, raw, decimal or shuffle\n");
    return 1;
  }
  if (smoke) {
    tuples = std::min<size_t>(tuples, 2000);
    reps = std::min<size_t>(reps, 2);
  }
  if (layout != "row" && layout != "columnar" && layout != "both") {
    std::fprintf(stderr, "--layout must be row, columnar or both\n");
    return 1;
  }

  // Two cached entries over the same sky: entry A holds the first 60% of the
  // tuples, entry B the last 50%, so 10% of the tuples are duplicated across
  // entries (regions overlapped). The probe region covers ~half the sky.
  util::Random rng(7);
  sql::Table all = MakeSkyTable(tuples, 0, &rng);
  sql::Table row_a(all.schema());
  sql::Table row_b(all.schema());
  CopyRows(all, 0, tuples * 6 / 10, &row_a);
  CopyRows(all, tuples / 2, tuples - tuples / 2, &row_b);
  geometry::Hypersphere region({180.0, 30.0}, radius);

  sql::ColumnarTable col_a(row_a);
  sql::ColumnarTable col_b(row_b);
  // The proxy prepares coordinate views at admission; mirror that here.
  for (size_t c : {size_t{1}, size_t{2}}) {
    (void)col_a.PrepareNumericView(c);
    (void)col_b.PrepareNumericView(c);
  }

  std::printf(
      "subsumed-query scan: %zu cached tuples (A=%zu B=%zu, 10%% dup), "
      "radius=%.1f, reps=%zu%s\n",
      tuples, row_a.num_rows(), row_b.num_rows(), radius, reps,
      smoke ? " [smoke]" : "");

  // The two layouts must produce byte-identical responses.
  std::string row_xml = RunRowPipeline(row_a, row_b, region);
  std::string col_xml = RunColumnarPipeline(col_a, col_b, region);
  if (row_xml != col_xml) {
    std::fprintf(stderr,
                 "FAIL: row and columnar pipelines disagree "
                 "(%zu vs %zu bytes)\n",
                 row_xml.size(), col_xml.size());
    return 1;
  }
  std::printf("layouts agree: %zu-byte response\n", row_xml.size());

  double row_ms = 0;
  double col_ms = 0;
  if (layout == "row" || layout == "both") {
    row_ms = BestMillis(
        reps, [&] { return RunRowPipeline(row_a, row_b, region); });
    double tuples_per_sec =
        static_cast<double>(row_a.num_rows() + row_b.num_rows()) /
        (row_ms / 1000.0);
    std::printf("  %-9s %10.2f ms   %12.0f tuples/s\n", "row", row_ms,
                tuples_per_sec);
    json.Record("subsumed_scan/row", row_ms, "ms",
                {{"tuples", static_cast<double>(tuples)},
                 {"tuples_per_sec", tuples_per_sec}});
  }
  if (layout == "columnar" || layout == "both") {
    col_ms = BestMillis(
        reps, [&] { return RunColumnarPipeline(col_a, col_b, region); });
    double tuples_per_sec =
        static_cast<double>(row_a.num_rows() + row_b.num_rows()) /
        (col_ms / 1000.0);
    std::printf("  %-9s %10.2f ms   %12.0f tuples/s\n", "columnar", col_ms,
                tuples_per_sec);
    json.Record("subsumed_scan/columnar", col_ms, "ms",
                {{"tuples", static_cast<double>(tuples)},
                 {"tuples_per_sec", tuples_per_sec}});
  }
  if (layout == "both" && col_ms > 0) {
    double speedup = row_ms / col_ms;
    std::printf("  speedup: %.2fx (columnar over row)\n", speedup);
    json.Record("subsumed_scan/speedup", speedup, "x",
                {{"tuples", static_cast<double>(tuples)}});
  }
  // Kernel microbench: the raw sphere-membership scan (no merge, no XML)
  // through the runtime-dispatched kernel vs the scalar reference, over the
  // same prepared coordinate views the pipeline uses. This isolates the
  // SIMD win from the serialization-dominated end-to-end numbers above.
  {
    auto ra_view = col_a.numeric_view(1);
    auto dec_view = col_a.numeric_view(2);
    if (ra_view.has_value() && dec_view.has_value()) {
      const size_t rows = col_a.num_rows();
      core::kernels::Column cols[2] = {
          {ra_view->data, ra_view->valid},
          {dec_view->data, dec_view->valid},
      };
      const double center[2] = {180.0, 30.0};
      const double limit = (radius + geometry::kGeomEpsilon) *
                           (radius + geometry::kGeomEpsilon);
      std::vector<uint32_t> out(rows);
      // Enough inner iterations that even the smoke config measures
      // milliseconds, not timer noise.
      const size_t iters = std::max<size_t>(1, 2'000'000 / (rows + 1));
      auto best_of = [&](auto&& kernel) {
        double best = 0;
        size_t count = 0;
        for (size_t rep = 0; rep < reps + 1; ++rep) {  // +1 warmup
          auto start = std::chrono::steady_clock::now();
          for (size_t i = 0; i < iters; ++i) {
            count = kernel(cols, 2, rows, center, limit, out.data());
          }
          auto stop = std::chrono::steady_clock::now();
          double ms =
              std::chrono::duration<double, std::milli>(stop - start).count();
          if (rep > 0 && (best == 0 || ms < best)) best = ms;
        }
        if (count > rows) std::exit(1);  // keep the result observable
        return best;
      };
      double simd_ms = best_of(core::kernels::SelectSphere);
      double scalar_ms = best_of(core::kernels::SelectSphereScalar);
      double kernel_speedup = simd_ms > 0 ? scalar_ms / simd_ms : 0;
      double scanned = static_cast<double>(rows) * static_cast<double>(iters);
      std::printf(
          "  kernel (%s): simd %.2f ms, scalar %.2f ms over %zux%zu rows "
          "-> %.2fx\n",
          util::simd::DispatchPathName(), simd_ms, scalar_ms, iters, rows,
          kernel_speedup);
      json.Record("kernel_scan/simd_ms", simd_ms, "ms", {{"rows", scanned}});
      json.Record("kernel_scan/scalar_ms", scalar_ms, "ms",
                  {{"rows", scanned}});
      json.Record("kernel_scan/simd_speedup", kernel_speedup, "x",
                  {{"rows", scanned}});
    }
  }
  // Tier section: freeze the photometric catalog through the storage layer,
  // verify losslessness, and measure compression plus scan-on-compressed
  // cost (docs/STORAGE.md). The auto policy pins the view-prepared ra/dec
  // columns raw, so the frozen scan reads the same zero-copy layout as the
  // hot one; forced modes lift the pin to expose each encoding's decode
  // cost.
  {
    util::Random photo_rng(11);
    sql::Table photo_rows = MakePhotoTable(tuples, &photo_rng);
    sql::ColumnarTable photo(photo_rows);
    const size_t kRa = 6;
    const size_t kDec = 7;
    (void)photo.PrepareNumericView(kRa);
    (void)photo.PrepareNumericView(kDec);

    storage::FreezeOptions freeze_options;
    freeze_options.double_policy = double_policy;
    freeze_options.pin_view_columns =
        double_policy == storage::DoubleEncodingPolicy::kAuto;

    auto time_ms = [&](auto&& fn) {
      double best = 0;
      for (size_t rep = 0; rep < reps + 1; ++rep) {  // +1 warmup
        auto start = std::chrono::steady_clock::now();
        fn();
        auto stop = std::chrono::steady_clock::now();
        double ms =
            std::chrono::duration<double, std::milli>(stop - start).count();
        if (rep > 0 && (best == 0 || ms < best)) best = ms;
      }
      return best;
    };

    storage::FrozenSegment segment =
        storage::FrozenSegment::Freeze(photo, freeze_options);
    double freeze_ms = time_ms([&] {
      storage::FrozenSegment s =
          storage::FrozenSegment::Freeze(photo, freeze_options);
      if (s.num_rows() != photo.num_rows()) std::exit(1);
    });
    sql::ColumnarTable thawed = segment.Thaw();
    double thaw_ms = time_ms([&] {
      sql::ColumnarTable t = segment.Thaw();
      if (t.num_rows() != photo.num_rows()) std::exit(1);
    });
    // Freezing must be lossless: the thawed table serializes
    // byte-identically, so responses cannot observe an entry's tier.
    if (sql::TableToXml(thawed) != sql::TableToXml(photo)) {
      std::fprintf(stderr, "FAIL: thawed table differs from source\n");
      return 1;
    }
    const double raw_bytes = static_cast<double>(photo.ByteSize());
    const double encoded_bytes = static_cast<double>(segment.ByteSize());
    const double ratio = raw_bytes / encoded_bytes;
    std::printf(
        "  freeze (%s): %zu rows x %zu cols, %.1f KB -> %.1f KB (%.2fx), "
        "freeze %.2f ms, thaw %.2f ms\n",
        encoding.c_str(), photo.num_rows(), photo.num_columns(),
        raw_bytes / 1024.0, encoded_bytes / 1024.0, ratio, freeze_ms,
        thaw_ms);
    for (size_t c = 0; c < segment.num_columns(); ++c) {
      std::printf("    col %-8s %s\n",
                  segment.schema().column(c).name.c_str(),
                  storage::ColumnEncodingName(segment.encoding(c)));
    }
    json.Record("columnar_scan/compression_ratio", ratio, "x",
                {{"tuples", static_cast<double>(tuples)},
                 {"raw_bytes", raw_bytes},
                 {"encoded_bytes", encoded_bytes}});
    json.Record("columnar_scan/freeze_ms", freeze_ms, "ms",
                {{"tuples", static_cast<double>(tuples)}});
    json.Record("columnar_scan/thaw_ms", thaw_ms, "ms",
                {{"tuples", static_cast<double>(tuples)}});

    // Scan-on-compressed: the sphere-membership kernel over ra/dec against
    // the hot table's prepared views vs views obtained from the frozen
    // segment (decoded fresh each rep, the cost a probe actually pays).
    auto hot_ra = photo.numeric_view(kRa);
    auto hot_dec = photo.numeric_view(kDec);
    if (hot_ra.has_value() && hot_dec.has_value()) {
      const size_t rows = photo.num_rows();
      const double center[2] = {180.0, 30.0};
      const double limit = (radius + geometry::kGeomEpsilon) *
                           (radius + geometry::kGeomEpsilon);
      std::vector<uint32_t> out(rows);
      const size_t iters = std::max<size_t>(1, 2'000'000 / (rows + 1));
      util::Arena arena;
      auto scan_best = [&](auto&& make_views) {
        double best = 0;
        size_t count = 0;
        for (size_t rep = 0; rep < reps + 1; ++rep) {  // +1 warmup
          auto start = std::chrono::steady_clock::now();
          auto views = make_views();
          core::kernels::Column cols[2] = {
              {views.first.data, views.first.valid},
              {views.second.data, views.second.valid},
          };
          for (size_t i = 0; i < iters; ++i) {
            count = core::kernels::SelectSphere(cols, 2, rows, center, limit,
                                                out.data());
          }
          auto stop = std::chrono::steady_clock::now();
          double ms =
              std::chrono::duration<double, std::milli>(stop - start).count();
          if (rep > 0 && (best == 0 || ms < best)) best = ms;
        }
        if (count > rows) std::exit(1);  // keep the result observable
        return best;
      };
      double raw_scan_ms =
          scan_best([&] { return std::make_pair(*hot_ra, *hot_dec); });
      double frozen_scan_ms = scan_best([&] {
        arena.Reset();
        return std::make_pair(segment.DecodeNumericView(kRa, &arena),
                              segment.DecodeNumericView(kDec, &arena));
      });
      double penalty = raw_scan_ms > 0 ? frozen_scan_ms / raw_scan_ms : 0;
      std::printf(
          "  scan-on-compressed: raw %.2f ms, frozen %.2f ms over %zux%zu "
          "rows -> %.2fx penalty\n",
          raw_scan_ms, frozen_scan_ms, iters, rows, penalty);
      json.Record("columnar_scan/raw_scan_ms", raw_scan_ms, "ms",
                  {{"rows", static_cast<double>(rows) *
                                static_cast<double>(iters)}});
      json.Record("columnar_scan/frozen_scan_ms", frozen_scan_ms, "ms",
                  {{"rows", static_cast<double>(rows) *
                                static_cast<double>(iters)}});
      json.Record("columnar_scan/frozen_scan_penalty", penalty, "x",
                  {{"rows", static_cast<double>(rows)}});
    }
  }
  if (json.enabled()) {
    std::printf("JSON records appended to %s\n", json.path().c_str());
  }
  return 0;
}
