// Reproduces Figure 6 of the paper: average response time of the three
// active caching schemes with an unlimited cache and an array-based cache
// description.
//
//   First  — full semantic caching (exact + containment + overlap via
//            remainder queries + region containment)             paper: 1236 ms
//   Second — exact + containment + region containment            paper: 1044 ms
//   Third  — pure containment-based caching                      paper: 1081 ms
//
// Expected shape: Second < Third < First, with cache efficiencies
// First 0.593, Second 0.544, Third 0.511 — i.e. handling cache-intersecting
// queries buys efficiency but costs response time (the paper's headline
// finding), while region-containment coalescing pays off.

#include <cstdio>

#include "bench_common.h"

using namespace fnproxy;

int main() {
  std::printf("=== Figure 6: Average response time of active caching schemes ===\n");
  workload::SkyExperiment experiment(bench::PaperOptions());
  bench::PrintTraceMix(experiment.trace());

  struct Scheme {
    const char* name;
    core::CachingMode mode;
    double paper_ms;
  };
  const Scheme schemes[] = {
      {"First (full semantic)", core::CachingMode::kActiveFull, 1236},
      {"Second (region containment)", core::CachingMode::kActiveRegionContainment,
       1044},
      {"Third (containment only)", core::CachingMode::kActiveContainmentOnly,
       1081},
  };

  std::vector<bench::RunSummary> rows;
  for (const Scheme& scheme : schemes) {
    auto result = experiment.Run(bench::MakeProxyConfig(scheme.mode));
    rows.push_back(bench::Summarize(scheme.name, result));
    std::printf("  %s breakdown:\n", scheme.name);
    bench::PrintStatusBreakdown(result);
  }
  PrintSummaryTable(rows);

  std::printf("\n%-28s %12s %12s\n", "scheme", "measured ms", "paper ms");
  for (size_t i = 0; i < rows.size(); ++i) {
    std::printf("%-28s %12.0f %12.0f\n", rows[i].label.c_str(),
                rows[i].avg_response_ms_first_10000, schemes[i].paper_ms);
  }
  std::printf(
      "\nExpected shape: Second fastest, Third close behind, First slowest; "
      "First has the\nhighest cache efficiency (overlap handling answers part "
      "of overlapping queries).\n");
  return 0;
}
