#include <gtest/gtest.h>

#include "geometry/rect_difference.h"
#include "util/random.h"

namespace fnproxy::geometry {
namespace {

Hyperrectangle Rect2(double x0, double y0, double x1, double y1) {
  return Hyperrectangle({x0, y0}, {x1, y1});
}

double TotalVolume(const std::vector<Hyperrectangle>& rects) {
  double v = 0;
  for (const auto& r : rects) v += r.Volume();
  return v;
}

TEST(SubtractRectTest, DisjointHoleLeavesBase) {
  auto pieces = SubtractRect(Rect2(0, 0, 1, 1), Rect2(5, 5, 6, 6));
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_DOUBLE_EQ(pieces[0].Volume(), 1.0);
}

TEST(SubtractRectTest, FullCoverLeavesNothing) {
  auto pieces = SubtractRect(Rect2(0, 0, 1, 1), Rect2(-1, -1, 2, 2));
  EXPECT_TRUE(pieces.empty());
}

TEST(SubtractRectTest, CenteredHoleMakesFrame) {
  auto pieces = SubtractRect(Rect2(0, 0, 3, 3), Rect2(1, 1, 2, 2));
  EXPECT_EQ(pieces.size(), 4u);
  EXPECT_NEAR(TotalVolume(pieces), 8.0, 1e-12);
}

TEST(SubtractRectTest, CornerHole) {
  auto pieces = SubtractRect(Rect2(0, 0, 2, 2), Rect2(1, 1, 3, 3));
  EXPECT_NEAR(TotalVolume(pieces), 3.0, 1e-12);
}

TEST(SubtractRectTest, PiecesAreDisjointAndCoverExactly) {
  util::Random rng(31);
  for (int iter = 0; iter < 200; ++iter) {
    auto random_rect = [&]() {
      double x0 = rng.NextDouble(0, 10), x1 = rng.NextDouble(0, 10);
      double y0 = rng.NextDouble(0, 10), y1 = rng.NextDouble(0, 10);
      return Rect2(std::min(x0, x1), std::min(y0, y1), std::max(x0, x1) + 0.1,
                   std::max(y0, y1) + 0.1);
    };
    Hyperrectangle base = random_rect();
    Hyperrectangle hole = random_rect();
    auto pieces = SubtractRect(base, hole);

    // Volume conservation: |base \ hole| = |base| - |base ∩ hole|.
    double expected = base.Volume() - base.IntersectionVolume(hole);
    EXPECT_NEAR(TotalVolume(pieces), expected, 1e-9);

    // Pairwise disjoint (zero-volume intersections allowed at edges).
    for (size_t i = 0; i < pieces.size(); ++i) {
      for (size_t j = i + 1; j < pieces.size(); ++j) {
        EXPECT_NEAR(pieces[i].IntersectionVolume(pieces[j]), 0.0, 1e-9);
      }
    }

    // Point membership: sampled points of base are in exactly the right set.
    for (int s = 0; s < 50; ++s) {
      Point p = {rng.NextDouble(base.lo()[0], base.hi()[0]),
                 rng.NextDouble(base.lo()[1], base.hi()[1])};
      bool in_hole = hole.ContainsPoint(p);
      int covering = 0;
      for (const auto& piece : pieces) {
        if (piece.ContainsPoint(p)) ++covering;
      }
      if (in_hole) {
        // Boundary points may brush a piece; interior hole points must not.
        if (hole.MinDistanceSquared(p) == 0.0 &&
            p[0] > hole.lo()[0] + 1e-6 && p[0] < hole.hi()[0] - 1e-6 &&
            p[1] > hole.lo()[1] + 1e-6 && p[1] < hole.hi()[1] - 1e-6) {
          EXPECT_EQ(covering, 0);
        }
      } else {
        EXPECT_GE(covering, 1) << "uncovered point of base \\ hole";
      }
    }
  }
}

TEST(SubtractRectsTest, MultipleHolesVolume) {
  util::Random rng(32);
  Hyperrectangle base = Rect2(0, 0, 10, 10);
  std::vector<Hyperrectangle> holes;
  for (int i = 0; i < 5; ++i) {
    double x = rng.NextDouble(0, 8), y = rng.NextDouble(0, 8);
    holes.push_back(Rect2(x, y, x + 1.5, y + 1.5));
  }
  auto pieces = SubtractRects(base, holes);
  // Monte-Carlo volume estimate.
  int inside = 0;
  const int n = 20000;
  for (int s = 0; s < n; ++s) {
    Point p = {rng.NextDouble(0, 10), rng.NextDouble(0, 10)};
    bool in_hole = false;
    for (const auto& hole : holes) {
      if (hole.ContainsPoint(p)) {
        in_hole = true;
        break;
      }
    }
    if (in_hole) continue;
    for (const auto& piece : pieces) {
      if (piece.ContainsPoint(p)) {
        ++inside;
        break;
      }
    }
  }
  double covered = TotalVolume(pieces);
  EXPECT_NEAR(static_cast<double>(inside) / n * 100.0, covered, 2.0);
}

TEST(SubtractRectsTest, ThreeDimensional) {
  Hyperrectangle base({0, 0, 0}, {2, 2, 2});
  Hyperrectangle hole({0, 0, 0}, {1, 1, 1});
  auto pieces = SubtractRects(base, {hole});
  EXPECT_NEAR(TotalVolume(pieces), 7.0, 1e-12);
}

}  // namespace
}  // namespace fnproxy::geometry
