// Concurrency suite for the sharded proxy core: K threads with
// deterministic per-thread seeds hammer one shared CacheStore / one shared
// FunctionProxy with overlapping, subsumed and disjoint queries. The
// assertions are bookkeeping invariants that any lost admission, double
// eviction or torn counter update would break. Run under
// -fsanitize=thread in CI to also prove data-race freedom.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "catalog/sky_catalog.h"
#include "core/cache_store.h"
#include "core/proxy.h"
#include "geometry/hypersphere.h"
#include "index/array_index.h"
#include "net/network.h"
#include "server/sky_functions.h"
#include "server/web_app.h"
#include "sql/table_xml.h"
#include "util/random.h"
#include "workload/experiment.h"

namespace fnproxy::core {
namespace {

using geometry::Hypersphere;
using net::HttpRequest;
using net::HttpResponse;
using sql::Schema;
using sql::Table;
using sql::Value;
using sql::ValueType;

constexpr size_t kThreads = 8;

CacheEntry MakeEntry(double x, double y, size_t rows) {
  CacheEntry entry;
  entry.template_id = "radial";
  entry.region = std::make_unique<Hypersphere>(geometry::Point{x, y}, 0.5);
  Table result(Schema({{"v", ValueType::kDouble}}));
  for (size_t i = 0; i < rows; ++i) {
    result.AddRow({Value::Double(static_cast<double>(i))});
  }
  entry.result = std::move(result);
  return entry;
}

std::unique_ptr<CacheStore> MakeShardedStore(size_t max_bytes) {
  return std::make_unique<CacheStore>(
      [] { return std::make_unique<index::ArrayRegionIndex>(); },
      /*num_shards=*/8, max_bytes, ReplacementPolicy::kLru);
}

/// Recomputes the store's byte usage entry by entry and checks it against
/// the atomic accounting, along with the entry count.
void ExpectConsistentAccounting(const CacheStore& store) {
  std::vector<uint64_t> ids = store.AllIds();
  EXPECT_EQ(ids.size(), store.num_entries());
  size_t bytes = 0;
  for (uint64_t id : ids) {
    std::shared_ptr<const CacheEntry> entry = store.Find(id);
    ASSERT_NE(entry, nullptr);
    bytes += entry->bytes;
  }
  EXPECT_EQ(bytes, store.bytes_used());
}

TEST(ConcurrentCacheStoreTest, UnlimitedStoreLosesNoAdmissions) {
  std::unique_ptr<CacheStore> store = MakeShardedStore(/*max_bytes=*/0);
  std::atomic<uint64_t> admitted{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      util::Random rng(1000 + t);  // Deterministic per-thread stream.
      std::vector<uint64_t> my_ids;
      for (int i = 0; i < 200; ++i) {
        double x = rng.NextDouble(-50, 50);
        double y = rng.NextDouble(-50, 50);
        size_t comparisons = 0;
        uint64_t id = store->Insert(MakeEntry(x, y, 4), &comparisons);
        ASSERT_NE(id, 0u);
        admitted.fetch_add(1);
        my_ids.push_back(id);
        // Interleave reads: my own earlier entries must still be there
        // (nothing evicts in an unlimited store).
        uint64_t probe = my_ids[rng.NextUint64(my_ids.size())];
        ASSERT_NE(store->Find(probe), nullptr);
        size_t scan = 0;
        store->Candidates(Hypersphere({x, y}, 2.0).BoundingBox(), &scan);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(admitted.load(), kThreads * 200);
  EXPECT_EQ(store->num_entries(), kThreads * 200);
  EXPECT_EQ(store->evictions(), 0u);
  ExpectConsistentAccounting(*store);
}

TEST(ConcurrentCacheStoreTest, EvictionStormBalancesBooks) {
  // A budget of ~40 entries under 1600 concurrent admissions: every insert
  // evicts, often racing with other inserters picking the same victim.
  std::unique_ptr<CacheStore> store = MakeShardedStore(/*max_bytes=*/0);
  size_t entry_bytes = 0;
  {
    size_t comparisons = 0;
    uint64_t probe_id = store->Insert(MakeEntry(0, 0, 4), &comparisons);
    entry_bytes = store->Find(probe_id)->bytes;
    store->Remove(probe_id, &comparisons);
  }
  store = MakeShardedStore(/*max_bytes=*/entry_bytes * 40);

  std::atomic<uint64_t> admitted{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      util::Random rng(2000 + t);
      for (int i = 0; i < 200; ++i) {
        size_t comparisons = 0;
        uint64_t id = store->Insert(
            MakeEntry(rng.NextDouble(-50, 50), rng.NextDouble(-50, 50), 4),
            &comparisons);
        ASSERT_NE(id, 0u);  // Entries are far smaller than the budget.
        admitted.fetch_add(1);
        store->Find(id);  // May already be evicted; must not crash.
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Every admitted entry either is still resident or was evicted exactly
  // once: lost admissions or double-counted evictions break this balance.
  EXPECT_EQ(admitted.load(), kThreads * 200);
  EXPECT_EQ(store->num_entries() + store->evictions(), admitted.load());
  EXPECT_LE(store->bytes_used(), entry_bytes * 40);
  ExpectConsistentAccounting(*store);
}

TEST(ConcurrentCacheStoreTest, RacingRemovesDeleteExactlyOnce) {
  std::unique_ptr<CacheStore> store = MakeShardedStore(/*max_bytes=*/0);
  std::vector<uint64_t> ids;
  for (int i = 0; i < 400; ++i) {
    ids.push_back(store->Insert(MakeEntry(i, 0, 2)));
  }
  std::atomic<uint64_t> removed{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      // All threads race over the same id list; each id must be removed by
      // exactly one winner.
      for (uint64_t id : ids) {
        size_t comparisons = 0;
        if (store->Remove(id, &comparisons)) removed.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(removed.load(), ids.size());
  EXPECT_EQ(store->num_entries(), 0u);
  EXPECT_EQ(store->bytes_used(), 0u);
}

/// Proxy-level storm: shared origin environment, one proxy, K clients.
class ConcurrentProxyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog::SkyCatalogConfig config;
    config.num_objects = 12000;
    config.num_clusters = 5;
    config.seed = 7;
    config.ra_min = 175.0;
    config.ra_max = 205.0;
    config.dec_min = 25.0;
    config.dec_max = 50.0;
    db_ = new server::Database();
    db_->AddTable("PhotoPrimary", catalog::GenerateSkyCatalog(config));
    grid_ = new server::SkyGrid(db_->FindTable("PhotoPrimary"));
    db_->RegisterTableFunction(server::MakeGetNearbyObjEq(grid_));
    db_->scalar_functions()->Register(
        "fPhotoFlags",
        [](const std::vector<Value>& args) -> util::StatusOr<Value> {
          FNPROXY_ASSIGN_OR_RETURN(
              int64_t bit, catalog::PhotoFlagValue(args.at(0).AsString()));
          return Value::Int(bit);
        });
    templates_ = new TemplateRegistry();
    ASSERT_TRUE(
        templates_
            ->RegisterFunctionTemplateXml(workload::kNearbyObjEqTemplateXml)
            .ok());
    auto qt = QueryTemplate::Create("radial", "/radial",
                                    workload::kRadialTemplateSql);
    ASSERT_TRUE(qt.ok());
    ASSERT_TRUE(templates_->RegisterQueryTemplate(std::move(*qt)).ok());
  }
  static void TearDownTestSuite() {
    delete templates_;
    delete grid_;
    delete db_;
    templates_ = nullptr;
    grid_ = nullptr;
    db_ = nullptr;
  }

  static HttpRequest Radial(double ra, double dec, double radius) {
    HttpRequest request;
    request.path = "/radial";
    request.query_params["ra"] = std::to_string(ra);
    request.query_params["dec"] = std::to_string(dec);
    request.query_params["radius"] = std::to_string(radius);
    return request;
  }

  static server::Database* db_;
  static server::SkyGrid* grid_;
  static TemplateRegistry* templates_;
};

server::Database* ConcurrentProxyTest::db_ = nullptr;
server::SkyGrid* ConcurrentProxyTest::grid_ = nullptr;
TemplateRegistry* ConcurrentProxyTest::templates_ = nullptr;

TEST_F(ConcurrentProxyTest, StatsTotalsEqualPerThreadSums) {
  util::SimulatedClock clock;
  server::OriginWebApp app(db_, &clock);
  ASSERT_TRUE(app.RegisterForm("/radial", workload::kRadialTemplateSql).ok());
  net::SimulatedChannel channel(&app, net::LinkConfig{0.0, 1e9}, &clock);
  ProxyConfig config;
  config.mode = CachingMode::kActiveFull;
  config.cache_shards = 8;
  FunctionProxy proxy(config, templates_, &channel, &clock);

  // A small pool of distinct queries so threads collide on exact repeats,
  // subsumptions (same center, smaller radius) and partial overlaps.
  struct Cone {
    double ra, dec, radius;
  };
  std::vector<Cone> cones;
  for (int i = 0; i < 4; ++i) {
    double ra = 180.0 + 6.0 * i;
    cones.push_back({ra, 35.0, 30.0});
    cones.push_back({ra, 35.0, 15.0});        // Subsumed by the first.
    cones.push_back({ra + 0.3, 35.2, 25.0});  // Overlaps the first.
  }
  // Ground truth row counts from a proxy-free origin.
  std::vector<size_t> expected_rows;
  {
    util::SimulatedClock scratch;
    server::OriginWebApp reference(db_, &scratch);
    ASSERT_TRUE(
        reference.RegisterForm("/radial", workload::kRadialTemplateSql).ok());
    for (const Cone& cone : cones) {
      HttpResponse response =
          reference.Handle(Radial(cone.ra, cone.dec, cone.radius));
      ASSERT_TRUE(response.ok()) << response.body;
      auto table = sql::TableFromXml(response.body);
      ASSERT_TRUE(table.ok());
      expected_rows.push_back(table->num_rows());
    }
  }

  constexpr int kPerThread = 30;
  std::vector<uint64_t> per_thread_requests(kThreads, 0);
  std::atomic<uint64_t> wrong_answers{0};
  std::atomic<uint64_t> stats_polls_ok{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      util::Random rng(3000 + t);  // Deterministic per-thread schedule.
      for (int i = 0; i < kPerThread; ++i) {
        size_t pick = rng.NextUint64(cones.size());
        const Cone& cone = cones[pick];
        HttpResponse response =
            proxy.Handle(Radial(cone.ra, cone.dec, cone.radius));
        ++per_thread_requests[t];
        auto table = sql::TableFromXml(response.body);
        if (!response.ok() || !table.ok() ||
            table->num_rows() != expected_rows[pick]) {
          wrong_answers.fetch_add(1);
        }
      }
    });
  }
  // One extra client polls the admin endpoint mid-storm: each snapshot must
  // be well-formed (a torn render would lose the trailing Cache line).
  std::thread poller([&] {
    for (int i = 0; i < 20; ++i) {
      HttpRequest request;
      request.path = "/proxy/stats";
      HttpResponse response = proxy.Handle(request);
      if (response.ok() &&
          response.body.find("<Cache ") != std::string::npos &&
          response.body.find("<CircuitBreaker ") != std::string::npos) {
        stats_polls_ok.fetch_add(1);
      }
      std::this_thread::yield();
    }
  });
  for (std::thread& thread : threads) thread.join();
  poller.join();

  uint64_t issued = 0;
  for (uint64_t n : per_thread_requests) issued += n;
  ASSERT_EQ(issued, kThreads * kPerThread);
  EXPECT_EQ(wrong_answers.load(), 0u);
  EXPECT_EQ(stats_polls_ok.load(), 20u);

  ProxyStats stats = proxy.stats();
  // No request lost, none double-counted, and every template request was
  // classified exactly once.
  EXPECT_EQ(stats.requests, issued);
  EXPECT_EQ(stats.template_requests, issued);
  EXPECT_EQ(stats.records.size(), issued);
  EXPECT_EQ(stats.exact_hits + stats.containment_hits +
                stats.region_containments + stats.overlaps_handled +
                stats.misses + stats.collapsed,
            stats.template_requests);
  EXPECT_EQ(stats.origin_failures, 0u);
  // The cache saw real concurrency and stayed balanced.
  EXPECT_GT(stats.exact_hits + stats.containment_hits, 0u);
  std::vector<uint64_t> ids = proxy.cache().AllIds();
  EXPECT_EQ(ids.size(), proxy.cache().num_entries());
  size_t bytes = 0;
  for (uint64_t id : ids) {
    std::shared_ptr<const CacheEntry> entry = proxy.cache().Find(id);
    ASSERT_NE(entry, nullptr);
    bytes += entry->bytes;
  }
  EXPECT_EQ(bytes, proxy.cache().bytes_used());
}

TEST_F(ConcurrentProxyTest, BoundedCacheUnderStormKeepsBalance) {
  util::SimulatedClock clock;
  server::OriginWebApp app(db_, &clock);
  ASSERT_TRUE(app.RegisterForm("/radial", workload::kRadialTemplateSql).ok());
  net::SimulatedChannel channel(&app, net::LinkConfig{0.0, 1e9}, &clock);
  ProxyConfig config;
  config.mode = CachingMode::kActiveFull;
  config.cache_shards = 8;
  config.max_cache_bytes = 64 * 1024;  // Tiny: constant eviction pressure.
  FunctionProxy proxy(config, templates_, &channel, &clock);

  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      util::Random rng(4000 + t);
      for (int i = 0; i < 25; ++i) {
        HttpResponse response = proxy.Handle(
            Radial(rng.NextDouble(178, 202), rng.NextDouble(28, 47),
                   rng.NextDouble(10, 35)));
        ASSERT_TRUE(response.ok()) << response.body;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_LE(proxy.cache().bytes_used(), config.max_cache_bytes);
  std::vector<uint64_t> ids = proxy.cache().AllIds();
  EXPECT_EQ(ids.size(), proxy.cache().num_entries());
  size_t bytes = 0;
  for (uint64_t id : ids) {
    std::shared_ptr<const CacheEntry> entry = proxy.cache().Find(id);
    ASSERT_NE(entry, nullptr);
    bytes += entry->bytes;
  }
  EXPECT_EQ(bytes, proxy.cache().bytes_used());
}

}  // namespace
}  // namespace fnproxy::core
