#include <gtest/gtest.h>

#include "sql/parser.h"
#include "sql/printer.h"

namespace fnproxy::sql {
namespace {

SelectStatement MustParse(std::string_view sql) {
  auto stmt = ParseSelect(sql);
  EXPECT_TRUE(stmt.ok()) << stmt.status().ToString() << " for: " << sql;
  return std::move(stmt).value();
}

std::unique_ptr<Expr> MustParseExpr(std::string_view text) {
  auto expr = ParseExpression(text);
  EXPECT_TRUE(expr.ok()) << expr.status().ToString() << " for: " << text;
  return std::move(expr).value();
}

TEST(ParserTest, MinimalSelect) {
  SelectStatement stmt = MustParse("SELECT * FROM T");
  EXPECT_EQ(stmt.items.size(), 1u);
  EXPECT_TRUE(stmt.items[0].star);
  EXPECT_EQ(stmt.from.name, "T");
  EXPECT_EQ(stmt.from.kind, TableRef::Kind::kTable);
  EXPECT_EQ(stmt.where, nullptr);
}

TEST(ParserTest, PaperRadialTemplate) {
  SelectStatement stmt = MustParse(
      "SELECT p.objID, p.ra, p.dec FROM fGetNearbyObjEq($ra, $dec, $radius) "
      "AS n JOIN PhotoPrimary AS p ON n.objID = p.objID "
      "WHERE p.r < 20 AND (p.flags & fPhotoFlags('SATURATED')) = 0");
  EXPECT_EQ(stmt.from.kind, TableRef::Kind::kFunctionCall);
  EXPECT_EQ(stmt.from.name, "fGetNearbyObjEq");
  EXPECT_EQ(stmt.from.alias, "n");
  ASSERT_EQ(stmt.from.args.size(), 3u);
  EXPECT_EQ(stmt.from.args[0]->kind, Expr::Kind::kParameter);
  ASSERT_EQ(stmt.joins.size(), 1u);
  EXPECT_EQ(stmt.joins[0].table.name, "PhotoPrimary");
  EXPECT_EQ(stmt.joins[0].table.alias, "p");
  ASSERT_NE(stmt.where, nullptr);
  EXPECT_TRUE(stmt.HasParameters());
}

TEST(ParserTest, DboQualifiedFunctionName) {
  SelectStatement stmt = MustParse("SELECT * FROM dbo.fGetObjFromRect(1,2,3,4)");
  EXPECT_EQ(stmt.from.name, "dbo.fGetObjFromRect");
  EXPECT_EQ(stmt.from.args.size(), 4u);
}

TEST(ParserTest, TopN) {
  SelectStatement stmt = MustParse("SELECT TOP 10 * FROM T");
  ASSERT_TRUE(stmt.top_n.has_value());
  EXPECT_EQ(*stmt.top_n, 10);
  EXPECT_FALSE(ParseSelect("SELECT TOP x * FROM T").ok());
}

TEST(ParserTest, OrderBy) {
  SelectStatement stmt = MustParse("SELECT a, b FROM T ORDER BY a DESC, b ASC");
  ASSERT_EQ(stmt.order_by.size(), 2u);
  EXPECT_TRUE(stmt.order_by[0].descending);
  EXPECT_FALSE(stmt.order_by[1].descending);
}

TEST(ParserTest, QualifiedStar) {
  SelectStatement stmt = MustParse("SELECT p.*, n.objID FROM T n JOIN U p ON n.x = p.x");
  ASSERT_EQ(stmt.items.size(), 2u);
  EXPECT_TRUE(stmt.items[0].star);
  EXPECT_EQ(stmt.items[0].star_qualifier, "p");
  EXPECT_FALSE(stmt.items[1].star);
}

TEST(ParserTest, AliasesWithAndWithoutAs) {
  SelectStatement stmt = MustParse("SELECT a AS x, b y FROM T AS t1");
  EXPECT_EQ(stmt.items[0].alias, "x");
  EXPECT_EQ(stmt.items[1].alias, "y");
  EXPECT_EQ(stmt.from.alias, "t1");
}

TEST(ParserTest, OperatorPrecedence) {
  // a + b * c parses as a + (b * c).
  auto expr = MustParseExpr("a + b * c");
  EXPECT_EQ(expr->op, BinaryOp::kAdd);
  EXPECT_EQ(expr->children[1]->op, BinaryOp::kMul);

  // Comparison binds looser than arithmetic; AND looser than comparison.
  auto pred = MustParseExpr("a + 1 < b AND c = 2");
  EXPECT_EQ(pred->op, BinaryOp::kAnd);
  EXPECT_EQ(pred->children[0]->op, BinaryOp::kLt);
}

TEST(ParserTest, OrLooserThanAnd) {
  auto expr = MustParseExpr("a = 1 OR b = 2 AND c = 3");
  EXPECT_EQ(expr->op, BinaryOp::kOr);
  EXPECT_EQ(expr->children[1]->op, BinaryOp::kAnd);
}

TEST(ParserTest, NotBetweenInIsNull) {
  auto between = MustParseExpr("x BETWEEN 1 AND 2");
  EXPECT_EQ(between->kind, Expr::Kind::kBetween);
  EXPECT_FALSE(between->negated);

  auto not_between = MustParseExpr("x NOT BETWEEN 1 AND 2");
  EXPECT_TRUE(not_between->negated);

  auto in_list = MustParseExpr("x IN (1, 2, 3)");
  EXPECT_EQ(in_list->kind, Expr::Kind::kInList);
  EXPECT_EQ(in_list->children.size(), 4u);

  auto is_null = MustParseExpr("x IS NULL");
  EXPECT_EQ(is_null->kind, Expr::Kind::kIsNull);
  auto is_not_null = MustParseExpr("x IS NOT NULL");
  EXPECT_TRUE(is_not_null->negated);
}

TEST(ParserTest, UnaryOperators) {
  auto neg = MustParseExpr("-x");
  EXPECT_EQ(neg->kind, Expr::Kind::kUnary);
  EXPECT_EQ(neg->uop, UnaryOp::kNeg);
  auto nt = MustParseExpr("NOT x = 1");
  EXPECT_EQ(nt->uop, UnaryOp::kNot);
  auto bn = MustParseExpr("~flags");
  EXPECT_EQ(bn->uop, UnaryOp::kBitNot);
}

TEST(ParserTest, LiteralsTyped) {
  EXPECT_EQ(MustParseExpr("42")->literal.type(), ValueType::kInt);
  EXPECT_EQ(MustParseExpr("4.2")->literal.type(), ValueType::kDouble);
  EXPECT_EQ(MustParseExpr("1e2")->literal.type(), ValueType::kDouble);
  EXPECT_EQ(MustParseExpr("'s'")->literal.type(), ValueType::kString);
  EXPECT_EQ(MustParseExpr("TRUE")->literal.type(), ValueType::kBool);
  EXPECT_EQ(MustParseExpr("NULL")->literal.type(), ValueType::kNull);
}

TEST(ParserTest, ErrorsAreReported) {
  EXPECT_FALSE(ParseSelect("SELECT").ok());
  EXPECT_FALSE(ParseSelect("SELECT * FROM").ok());
  EXPECT_FALSE(ParseSelect("SELECT * FROM T WHERE").ok());
  EXPECT_FALSE(ParseSelect("SELECT * FROM T JOIN U").ok());        // No ON.
  EXPECT_FALSE(ParseSelect("SELECT * FROM T trailing junk (").ok());
  EXPECT_FALSE(ParseSelect("FROM T").ok());
  EXPECT_FALSE(ParseExpression("a +").ok());
  EXPECT_FALSE(ParseExpression("(a").ok());
  EXPECT_FALSE(ParseExpression("x NOT 5").ok());
}

TEST(ParserTest, PrintedSqlReparsesToSameShape) {
  const char* samples[] = {
      "SELECT * FROM T",
      "SELECT TOP 5 a, b AS c FROM fGetNearbyObjEq(1.5, -2.5, 3) AS n JOIN P AS p ON n.id = p.id WHERE (a < 1 AND b >= 2) OR NOT (c = 3) ORDER BY a DESC",
      "SELECT x FROM T WHERE x BETWEEN 1 AND 2 AND y IN (1, 2) AND z IS NOT NULL",
      "SELECT x FROM T WHERE (f & 64) = 0 AND g(x, 'lit''eral') > 1.25",
  };
  for (const char* sql : samples) {
    SelectStatement stmt = MustParse(sql);
    std::string printed = SelectToSql(stmt);
    SelectStatement reparsed = MustParse(printed);
    EXPECT_EQ(SelectToSql(reparsed), printed) << "not a fixpoint: " << sql;
  }
}

TEST(ParserTest, ParameterizedPrintedSqlRoundTrips) {
  SelectStatement stmt = MustParse(
      "SELECT a FROM f($p, $q) WHERE a > $p");
  std::string printed = SelectToSql(stmt);
  EXPECT_NE(printed.find("$p"), std::string::npos);
  SelectStatement reparsed = MustParse(printed);
  EXPECT_TRUE(reparsed.HasParameters());
}

TEST(ParserTest, CloneIsDeep) {
  SelectStatement stmt = MustParse(
      "SELECT a FROM f(1) AS n JOIN T AS p ON n.x = p.x WHERE a < 3 ORDER BY a");
  SelectStatement clone = stmt.Clone();
  EXPECT_EQ(SelectToSql(stmt), SelectToSql(clone));
  // Mutating the clone leaves the original untouched.
  clone.where = nullptr;
  clone.from.args.clear();
  EXPECT_NE(stmt.where, nullptr);
  EXPECT_EQ(stmt.from.args.size(), 1u);
}

}  // namespace
}  // namespace fnproxy::sql
