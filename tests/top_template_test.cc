// End-to-end behaviour of templates with a TOP clause (paper Fig. 2 shows
// the optional top-N). A TOP-cut result may be missing in-region tuples, so
// the proxy marks such entries truncated: they may serve exact repeats but
// never containment or region-containment reasoning — correctness over
// cleverness.

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "catalog/sky_catalog.h"
#include "core/proxy.h"
#include "net/network.h"
#include "server/sky_functions.h"
#include "server/web_app.h"
#include "sql/table_xml.h"
#include "workload/experiment.h"

namespace fnproxy {
namespace {

constexpr char kTopRadialSql[] =
    "SELECT TOP 10 p.objID, p.ra, p.dec, p.cx, p.cy, p.cz, n.distance "
    "FROM fGetNearbyObjEq($ra, $dec, $radius) AS n "
    "JOIN PhotoPrimary AS p ON n.objID = p.objID "
    "ORDER BY n.distance";

// Same TOP shape but with no function-computed values in the projection or
// order: cache reuse beyond exact matches is sound for complete entries.
constexpr char kTopMagnitudeSql[] =
    "SELECT TOP 10 p.objID, p.ra, p.dec, p.cx, p.cy, p.cz, p.r "
    "FROM fGetNearbyObjEq($ra, $dec, $radius) AS n "
    "JOIN PhotoPrimary AS p ON n.objID = p.objID "
    "ORDER BY p.r";

class TopTemplateTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog::SkyCatalogConfig config;
    config.num_objects = 20000;
    config.num_clusters = 4;
    config.seed = 777;
    config.ra_min = 178.0;
    config.ra_max = 192.0;
    config.dec_min = 28.0;
    config.dec_max = 40.0;
    db_ = new server::Database();
    db_->AddTable("PhotoPrimary", catalog::GenerateSkyCatalog(config));
    grid_ = new server::SkyGrid(db_->FindTable("PhotoPrimary"));
    db_->RegisterTableFunction(server::MakeGetNearbyObjEq(grid_));
    templates_ = new core::TemplateRegistry();
    ASSERT_TRUE(templates_
                    ->RegisterFunctionTemplateXml(
                        workload::kNearbyObjEqTemplateXml)
                    .ok());
    auto qt =
        core::QueryTemplate::Create("top_radial", "/top_radial", kTopRadialSql);
    ASSERT_TRUE(qt.ok()) << qt.status().ToString();
    EXPECT_TRUE(qt->has_top());
    // Projects and orders by n.distance: function-dependent.
    EXPECT_TRUE(qt->function_dependent_projection());
    ASSERT_TRUE(templates_->RegisterQueryTemplate(std::move(*qt)).ok());

    auto mag = core::QueryTemplate::Create("top_magnitude", "/top_magnitude",
                                           kTopMagnitudeSql);
    ASSERT_TRUE(mag.ok()) << mag.status().ToString();
    EXPECT_FALSE(mag->function_dependent_projection());
    ASSERT_TRUE(templates_->RegisterQueryTemplate(std::move(*mag)).ok());
  }
  static void TearDownTestSuite() {
    delete templates_;
    delete grid_;
    delete db_;
    templates_ = nullptr;
    grid_ = nullptr;
    db_ = nullptr;
  }

  void SetUp() override {
    clock_ = std::make_unique<util::SimulatedClock>();
    app_ = std::make_unique<server::OriginWebApp>(db_, clock_.get());
    ASSERT_TRUE(app_->RegisterForm("/top_radial", kTopRadialSql).ok());
    ASSERT_TRUE(app_->RegisterForm("/top_magnitude", kTopMagnitudeSql).ok());
    channel_ = std::make_unique<net::SimulatedChannel>(
        app_.get(), net::LinkConfig{0.0, 1e9}, clock_.get());
    core::ProxyConfig config;  // Full semantic caching.
    proxy_ = std::make_unique<core::FunctionProxy>(config, templates_,
                                                   channel_.get(), clock_.get());
  }

  static net::HttpRequest Request(double ra, double dec, double radius,
                                  const char* path = "/top_radial") {
    net::HttpRequest request;
    request.path = path;
    request.query_params["ra"] = std::to_string(ra);
    request.query_params["dec"] = std::to_string(dec);
    request.query_params["radius"] = std::to_string(radius);
    return request;
  }

  sql::Table Ask(const net::HttpRequest& request) {
    net::HttpResponse response = proxy_->Handle(request);
    EXPECT_TRUE(response.ok()) << response.body;
    auto table = sql::TableFromXml(response.body);
    EXPECT_TRUE(table.ok());
    return std::move(table).value();
  }

  sql::Table Direct(const net::HttpRequest& request) {
    util::SimulatedClock scratch;
    server::OriginWebApp app(db_, &scratch);
    EXPECT_TRUE(app.RegisterForm("/top_radial", kTopRadialSql).ok());
    EXPECT_TRUE(app.RegisterForm("/top_magnitude", kTopMagnitudeSql).ok());
    net::HttpResponse response = app.Handle(request);
    EXPECT_TRUE(response.ok());
    auto table = sql::TableFromXml(response.body);
    EXPECT_TRUE(table.ok());
    return std::move(table).value();
  }

  static std::multiset<int64_t> Ids(const sql::Table& table) {
    std::multiset<int64_t> ids;
    for (const auto& row : table.rows()) ids.insert(row[0].AsInt());
    return ids;
  }

  static server::Database* db_;
  static server::SkyGrid* grid_;
  static core::TemplateRegistry* templates_;

  std::unique_ptr<util::SimulatedClock> clock_;
  std::unique_ptr<server::OriginWebApp> app_;
  std::unique_ptr<net::SimulatedChannel> channel_;
  std::unique_ptr<core::FunctionProxy> proxy_;
};

server::Database* TopTemplateTest::db_ = nullptr;
server::SkyGrid* TopTemplateTest::grid_ = nullptr;
core::TemplateRegistry* TopTemplateTest::templates_ = nullptr;

TEST_F(TopTemplateTest, TopCutResultsAreOrderedAndCapped) {
  // A wide cone certainly has more than 10 objects.
  sql::Table table = Ask(Request(185.0, 34.0, 40.0));
  ASSERT_EQ(table.num_rows(), 10u);
  size_t dist_col = *table.schema().FindColumn("distance");
  for (size_t i = 1; i < table.num_rows(); ++i) {
    EXPECT_LE(table.row(i - 1)[dist_col].AsDouble(),
              table.row(i)[dist_col].AsDouble());
  }
}

TEST_F(TopTemplateTest, ExactRepeatOfTruncatedEntryIsServed) {
  net::HttpRequest request = Request(185.0, 34.0, 40.0);
  sql::Table first = Ask(request);
  uint64_t before = channel_->total_requests();
  sql::Table second = Ask(request);
  EXPECT_EQ(channel_->total_requests(), before);
  EXPECT_EQ(Ids(first), Ids(second));
  EXPECT_EQ(proxy_->stats().exact_hits, 1u);
}

TEST_F(TopTemplateTest, ContainedQueryNeverUsesTruncatedEntry) {
  Ask(Request(185.0, 34.0, 40.0));  // Truncated (10 of many).
  uint64_t before = channel_->total_requests();
  net::HttpRequest contained = Request(185.0, 34.0, 15.0);
  sql::Table via_proxy = Ask(contained);
  // Correctness requires going back to the origin: the truncated cache
  // entry may be missing this cone's nearest objects.
  EXPECT_GT(channel_->total_requests(), before);
  EXPECT_EQ(Ids(via_proxy), Ids(Direct(contained)));
  EXPECT_EQ(proxy_->stats().containment_hits, 0u);
}

TEST_F(TopTemplateTest, FunctionDependentProjectionRestrictedToExactMatch) {
  // The distance column's values depend on the query center: a contained
  // query with a *different* center would read stale distances from the
  // cached entry. The proxy must go back to the origin — and the answer
  // (including the distance values) must match a direct execution.
  net::HttpRequest small = Request(185.0, 34.0, 2.5);
  sql::Table small_result = Ask(small);
  ASSERT_LT(small_result.num_rows(), 10u);  // Complete (non-truncated) entry.
  uint64_t before = channel_->total_requests();
  net::HttpRequest shifted = Request(185.01, 34.0, 1.5);  // Inside, new center.
  sql::Table via_proxy = Ask(shifted);
  EXPECT_GT(channel_->total_requests(), before);
  EXPECT_EQ(proxy_->stats().containment_hits, 0u);
  sql::Table direct = Direct(shifted);
  ASSERT_EQ(via_proxy.num_rows(), direct.num_rows());
  // Compare full rows, not just ids: distances must be to the new center.
  size_t dist_col = *via_proxy.schema().FindColumn("distance");
  for (size_t i = 0; i < via_proxy.num_rows(); ++i) {
    EXPECT_TRUE(
        via_proxy.row(i)[dist_col].EqualsValue(direct.row(i)[dist_col]));
  }
}

TEST_F(TopTemplateTest, CleanTopTemplateServesContainmentWhenComplete) {
  // The magnitude-ordered template has no function-computed projection, so
  // a complete (below-TOP) entry may answer contained queries locally.
  net::HttpRequest small = Request(185.0, 34.0, 2.5, "/top_magnitude");
  sql::Table small_result = Ask(small);
  ASSERT_LT(small_result.num_rows(), 10u);
  uint64_t before = channel_->total_requests();
  net::HttpRequest inner = Request(185.0, 34.0, 1.0, "/top_magnitude");
  sql::Table via_proxy = Ask(inner);
  EXPECT_EQ(channel_->total_requests(), before);
  EXPECT_EQ(proxy_->stats().containment_hits, 1u);
  EXPECT_EQ(Ids(via_proxy), Ids(Direct(inner)));
}

TEST_F(TopTemplateTest, CleanTopTemplateTruncatedEntryBlocksContainment) {
  net::HttpRequest wide = Request(185.0, 34.0, 40.0, "/top_magnitude");
  sql::Table wide_result = Ask(wide);
  ASSERT_EQ(wide_result.num_rows(), 10u);  // Hit the TOP cutoff.
  uint64_t before = channel_->total_requests();
  net::HttpRequest inner = Request(185.0, 34.0, 15.0, "/top_magnitude");
  sql::Table via_proxy = Ask(inner);
  EXPECT_GT(channel_->total_requests(), before);
  EXPECT_EQ(Ids(via_proxy), Ids(Direct(inner)));
}

TEST_F(TopTemplateTest, TransparencyAcrossSequence) {
  for (const auto& request :
       {Request(185.0, 34.0, 40.0), Request(185.0, 34.0, 40.0),
        Request(185.0, 34.0, 15.0), Request(185.2, 34.0, 40.0),
        Request(188.0, 36.0, 3.0), Request(188.0, 36.0, 1.5)}) {
    EXPECT_EQ(Ids(Ask(request)), Ids(Direct(request))) << request.ToUrl();
  }
}

}  // namespace
}  // namespace fnproxy
