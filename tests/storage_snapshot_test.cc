// Warm-restart snapshot tests (docs/FORMATS.md §13, docs/STORAGE.md):
// the checksummed container detects a corrupted byte in any section, and a
// proxy restored from a snapshot is observationally identical to the proxy
// that wrote it — /proxy/stats renders byte-identically, and subsequent
// queries serve from the restored cache with responses matching a
// never-restarted oracle, without an origin round trip.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "catalog/sky_catalog.h"
#include "core/proxy.h"
#include "net/network.h"
#include "server/sky_functions.h"
#include "server/web_app.h"
#include "sql/table_xml.h"
#include "storage/wire.h"
#include "workload/experiment.h"

namespace fnproxy::core {
namespace {

using net::HttpRequest;
using net::HttpResponse;

// --- Container-level properties --------------------------------------------

TEST(SnapshotContainerTest, RoundTripsSections) {
  std::string file = storage::BuildSnapshotFile(
      {{storage::kSectionMeta, "meta-bytes"},
       {storage::kSectionEntries, std::string("entry\0payload", 13)},
       {storage::kSectionStats, ""}});
  auto sections = storage::ParseSnapshotFile(file);
  ASSERT_TRUE(sections.ok()) << sections.status().ToString();
  ASSERT_EQ(sections->size(), 3u);
  EXPECT_EQ((*sections)[0].id, storage::kSectionMeta);
  EXPECT_EQ((*sections)[0].payload, "meta-bytes");
  EXPECT_EQ((*sections)[1].payload, std::string("entry\0payload", 13));
  EXPECT_EQ((*sections)[2].payload, "");
}

TEST(SnapshotContainerTest, DetectsOneCorruptByteInEverySection) {
  const std::string file = storage::BuildSnapshotFile(
      {{storage::kSectionMeta, "0123456789"},
       {storage::kSectionEntries, std::string(300, 'e')},
       {storage::kSectionStats, "stats-payload"}});
  // Flip one byte inside each section's payload region; the per-section
  // checksum must catch each one.
  for (const std::string& needle :
       {std::string("0123456789"), std::string(300, 'e'),
        std::string("stats-payload")}) {
    std::string corrupt = file;
    size_t pos = corrupt.find(needle);
    ASSERT_NE(pos, std::string::npos);
    corrupt[pos + needle.size() / 2] ^= 0x40;
    auto sections = storage::ParseSnapshotFile(corrupt);
    EXPECT_FALSE(sections.ok());
  }
}

TEST(SnapshotContainerTest, RejectsTruncationAndBadMagic) {
  const std::string file = storage::BuildSnapshotFile(
      {{storage::kSectionEntries, std::string(100, 'x')}});
  for (size_t keep : {size_t{0}, size_t{4}, size_t{12}, file.size() - 1}) {
    EXPECT_FALSE(storage::ParseSnapshotFile(file.substr(0, keep)).ok())
        << "kept " << keep << " bytes";
  }
  std::string bad_magic = file;
  bad_magic[0] = 'X';
  EXPECT_FALSE(storage::ParseSnapshotFile(bad_magic).ok());
}

TEST(SnapshotContainerTest, SkipsUnknownSections) {
  // Forward compatibility: a newer writer may add sections; an older reader
  // must still see the ones it knows.
  std::string file = storage::BuildSnapshotFile(
      {{storage::kSectionMeta, "m"}, {uint32_t{999}, "future bytes"}});
  auto sections = storage::ParseSnapshotFile(file);
  ASSERT_TRUE(sections.ok());
  ASSERT_EQ(sections->size(), 2u);
  EXPECT_EQ((*sections)[1].id, 999u);
}

// --- Proxy warm restart -----------------------------------------------------

HttpRequest RadialRequest(double ra, double dec, double radius) {
  HttpRequest request;
  request.path = "/radial";
  request.query_params["ra"] = std::to_string(ra);
  request.query_params["dec"] = std::to_string(dec);
  request.query_params["radius"] = std::to_string(radius);
  return request;
}

/// Origin environment shared by every proxy in a test; each proxy gets its
/// own simulated channel so origin-traffic counters are per proxy.
class SnapshotProxyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog::SkyCatalogConfig config;
    config.num_objects = 8000;
    config.num_clusters = 5;
    config.seed = 42;
    config.ra_min = 175.0;
    config.ra_max = 205.0;
    config.dec_min = 25.0;
    config.dec_max = 50.0;
    db_ = new server::Database();
    db_->AddTable("PhotoPrimary", catalog::GenerateSkyCatalog(config));
    grid_ = new server::SkyGrid(db_->FindTable("PhotoPrimary"));
    db_->RegisterTableFunction(server::MakeGetNearbyObjEq(grid_));
    db_->scalar_functions()->Register(
        "fPhotoFlags",
        [](const std::vector<sql::Value>& args)
            -> util::StatusOr<sql::Value> {
          FNPROXY_ASSIGN_OR_RETURN(
              int64_t bit, catalog::PhotoFlagValue(args.at(0).AsString()));
          return sql::Value::Int(bit);
        });
    templates_ = new TemplateRegistry();
    ASSERT_TRUE(templates_
                    ->RegisterFunctionTemplateXml(
                        workload::kNearbyObjEqTemplateXml)
                    .ok());
    auto qt = QueryTemplate::Create("radial", "/radial",
                                    workload::kRadialTemplateSql);
    ASSERT_TRUE(qt.ok());
    ASSERT_TRUE(templates_->RegisterQueryTemplate(std::move(*qt)).ok());
  }
  static void TearDownTestSuite() {
    delete templates_;
    delete grid_;
    delete db_;
    templates_ = nullptr;
    grid_ = nullptr;
    db_ = nullptr;
  }

  void SetUp() override {
    clock_ = std::make_unique<util::SimulatedClock>();
    app_ = std::make_unique<server::OriginWebApp>(db_, clock_.get());
    ASSERT_TRUE(
        app_->RegisterForm("/radial", workload::kRadialTemplateSql).ok());
    snapshot_path_ = ::testing::TempDir() + "/fnproxy_snapshot_test_" +
                     ::testing::UnitTest::GetInstance()
                         ->current_test_info()
                         ->name() +
                     ".bin";
    std::remove(snapshot_path_.c_str());
  }
  void TearDown() override { std::remove(snapshot_path_.c_str()); }

  /// A proxy over its own channel; storage enabled, deterministic inline
  /// maintenance, snapshot at `snapshot_path_`.
  struct Node {
    std::unique_ptr<net::SimulatedChannel> channel;
    std::unique_ptr<FunctionProxy> proxy;
  };

  Node MakeNode(bool restore, bool enable_storage = true) {
    Node node;
    node.channel = std::make_unique<net::SimulatedChannel>(
        app_.get(), net::LinkConfig{0.0, 1e9}, clock_.get());
    ProxyConfig config;
    config.mode = CachingMode::kActiveFull;
    config.storage.enable = enable_storage;
    config.storage.background_maintenance = false;
    config.storage.snapshot_path = snapshot_path_;
    config.storage.restore_on_start = restore;
    node.proxy = std::make_unique<FunctionProxy>(config, templates_,
                                                 node.channel.get(),
                                                 clock_.get());
    return node;
  }

  static server::Database* db_;
  static server::SkyGrid* grid_;
  static TemplateRegistry* templates_;

  std::unique_ptr<util::SimulatedClock> clock_;
  std::unique_ptr<server::OriginWebApp> app_;
  std::string snapshot_path_;
};

server::Database* SnapshotProxyTest::db_ = nullptr;
server::SkyGrid* SnapshotProxyTest::grid_ = nullptr;
TemplateRegistry* SnapshotProxyTest::templates_ = nullptr;

std::vector<HttpRequest> WarmupSequence() {
  return {
      RadialRequest(180.0, 30.0, 20.0),  // Miss (fills cache).
      RadialRequest(180.0, 30.0, 20.0),  // Exact repeat.
      RadialRequest(180.05, 30.0, 8.0),  // Contained.
      RadialRequest(195.0, 40.0, 15.0),  // Second region.
      RadialRequest(195.0, 40.0, 25.0),  // Contains (region containment).
  };
}

TEST_F(SnapshotProxyTest, RestoredProxyRendersIdenticalStats) {
  Node writer = MakeNode(/*restore=*/false);
  for (const HttpRequest& request : WarmupSequence()) {
    HttpResponse response = writer.proxy->Handle(request);
    ASSERT_TRUE(response.ok()) << response.body;
  }
  const std::string want_stats = writer.proxy->stats().ToXml();
  ASSERT_TRUE(writer.proxy->WriteSnapshot(snapshot_path_).ok());

  Node restored = MakeNode(/*restore=*/true);
  // The restored process continues the writer's statistics series: the
  // /proxy/stats rendering must be byte-identical before any new traffic.
  EXPECT_EQ(restored.proxy->stats().ToXml(), want_stats);
}

TEST_F(SnapshotProxyTest, RestoredProxyServesWarmWithoutOrigin) {
  std::vector<HttpRequest> warmup = WarmupSequence();
  std::vector<HttpRequest> probes = {
      RadialRequest(180.0, 30.0, 20.0),   // Exact vs restored entry.
      RadialRequest(180.02, 30.0, 6.0),   // Contained in restored entry.
      RadialRequest(195.0, 40.0, 25.0),   // Exact vs second entry.
  };

  // Oracle: one proxy sees warmup + probes with no restart.
  Node oracle = MakeNode(/*restore=*/false, /*enable_storage=*/false);
  std::vector<std::string> want;
  for (const HttpRequest& request : warmup) {
    ASSERT_TRUE(oracle.proxy->Handle(request).ok());
  }
  for (const HttpRequest& request : probes) {
    HttpResponse response = oracle.proxy->Handle(request);
    ASSERT_TRUE(response.ok());
    want.push_back(response.body);
  }

  // Writer runs the warmup and snapshots.
  Node writer = MakeNode(/*restore=*/false);
  for (const HttpRequest& request : warmup) {
    ASSERT_TRUE(writer.proxy->Handle(request).ok());
  }
  ASSERT_TRUE(writer.proxy->WriteSnapshot(snapshot_path_).ok());

  // The restored proxy must answer every probe byte-identically to the
  // oracle without contacting the origin.
  Node restored = MakeNode(/*restore=*/true);
  const uint64_t origin_before =
      restored.proxy->stats().origin_form_requests +
      restored.proxy->stats().origin_sql_requests;
  for (size_t i = 0; i < probes.size(); ++i) {
    HttpResponse response = restored.proxy->Handle(probes[i]);
    ASSERT_TRUE(response.ok()) << response.body;
    EXPECT_EQ(response.body, want[i]) << "probe " << i;
  }
  ProxyStats after = restored.proxy->stats();
  EXPECT_EQ(after.origin_form_requests + after.origin_sql_requests,
            origin_before)
      << "restored proxy contacted the origin";
}

TEST_F(SnapshotProxyTest, CorruptSnapshotIsRejectedAndProxyStartsCold) {
  Node writer = MakeNode(/*restore=*/false);
  for (const HttpRequest& request : WarmupSequence()) {
    ASSERT_TRUE(writer.proxy->Handle(request).ok());
  }
  ASSERT_TRUE(writer.proxy->WriteSnapshot(snapshot_path_).ok());

  // Corrupt one byte in the middle of the file (inside a section payload).
  {
    std::fstream file(snapshot_path_,
                      std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(file.good());
    file.seekg(0, std::ios::end);
    const std::streamoff size = file.tellg();
    ASSERT_GT(size, 64);
    file.seekp(size / 2);
    char byte = 0;
    file.seekg(size / 2);
    file.read(&byte, 1);
    byte ^= 0x10;
    file.seekp(size / 2);
    file.write(&byte, 1);
  }

  // Startup restore fails closed: the proxy logs, starts cold, and still
  // serves correctly from the origin.
  Node restored = MakeNode(/*restore=*/true);
  EXPECT_EQ(restored.proxy->stats().requests, 0u);
  HttpResponse response = restored.proxy->Handle(RadialRequest(180, 30, 20));
  EXPECT_TRUE(response.ok()) << response.body;
  ProxyStats stats = restored.proxy->stats();
  EXPECT_EQ(stats.misses, 1u);
}

TEST_F(SnapshotProxyTest, DestructorWritesCleanShutdownSnapshot) {
  {
    Node writer = MakeNode(/*restore=*/false);
    for (const HttpRequest& request : WarmupSequence()) {
      ASSERT_TRUE(writer.proxy->Handle(request).ok());
    }
    // No explicit WriteSnapshot: the proxy's destructor writes it.
  }
  auto contents = storage::ReadFileToString(snapshot_path_);
  ASSERT_TRUE(contents.ok()) << contents.status().ToString();
  auto sections = storage::ParseSnapshotFile(*contents);
  ASSERT_TRUE(sections.ok()) << sections.status().ToString();
  EXPECT_EQ(sections->size(), 3u);

  Node restored = MakeNode(/*restore=*/true);
  EXPECT_GT(restored.proxy->stats().requests, 0u);
}

}  // namespace
}  // namespace fnproxy::core
