#include <gtest/gtest.h>

#include "net/http.h"
#include "net/network.h"
#include "util/clock.h"

namespace fnproxy::net {
namespace {

TEST(UrlCodecTest, EncodeDecodesRoundTrip) {
  const char* samples[] = {"plain", "a b&c=d", "SELECT * FROM T WHERE x<1",
                           "100% $value", "ünïcødé"};
  for (const char* s : samples) {
    auto decoded = UrlDecode(UrlEncode(s));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, s);
  }
}

TEST(UrlCodecTest, SpaceAsPlus) {
  EXPECT_EQ(UrlEncode("a b"), "a+b");
  EXPECT_EQ(*UrlDecode("a+b"), "a b");
  EXPECT_EQ(*UrlDecode("a%20b"), "a b");
}

TEST(UrlCodecTest, BadEscapesRejected) {
  EXPECT_FALSE(UrlDecode("%").ok());
  EXPECT_FALSE(UrlDecode("%2").ok());
  EXPECT_FALSE(UrlDecode("%zz").ok());
}

TEST(QueryStringTest, ParseAndBuild) {
  auto params = ParseQueryString("ra=195.1&dec=2.5&radius=1.0");
  ASSERT_TRUE(params.ok());
  EXPECT_EQ(params->at("ra"), "195.1");
  EXPECT_EQ(params->at("radius"), "1.0");
  EXPECT_EQ(BuildQueryString(*params), "dec=2.5&ra=195.1&radius=1.0");
}

TEST(QueryStringTest, EncodedValues) {
  auto params = ParseQueryString("q=SELECT+*+FROM%20T");
  ASSERT_TRUE(params.ok());
  EXPECT_EQ(params->at("q"), "SELECT * FROM T");
}

TEST(QueryStringTest, EmptyAndValuelessKeys) {
  auto params = ParseQueryString("a=&b&c=3");
  ASSERT_TRUE(params.ok());
  EXPECT_EQ(params->at("a"), "");
  EXPECT_EQ(params->at("b"), "");
  EXPECT_EQ(params->at("c"), "3");
  EXPECT_TRUE(ParseQueryString("")->empty());
}

TEST(HttpRequestTest, GetParsesUrl) {
  auto request = HttpRequest::Get("/radial?ra=195.1&dec=2.5");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->path, "/radial");
  EXPECT_EQ(request->query_params.at("ra"), "195.1");
  std::string url = request->ToUrl();
  auto reparsed = HttpRequest::Get(url);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->query_params, request->query_params);
}

TEST(HttpRequestTest, NoQuery) {
  auto request = HttpRequest::Get("/index.html");
  ASSERT_TRUE(request.ok());
  EXPECT_TRUE(request->query_params.empty());
  EXPECT_EQ(request->ToUrl(), "/index.html");
}

TEST(HttpResponseTest, ErrorHelper) {
  HttpResponse response = HttpResponse::MakeError(404, "nope");
  EXPECT_FALSE(response.ok());
  EXPECT_EQ(response.status_code, 404);
  EXPECT_EQ(response.body, "nope");
}

TEST(LinkConfigTest, TransferTimeComposition) {
  LinkConfig link{10.0, 100.0};  // 10 ms latency, 100 KB/s.
  // 1000 bytes -> 10 ms transfer + 10 ms latency = 20 ms.
  EXPECT_EQ(link.TransferMicros(1000), 20000);
  EXPECT_EQ(link.TransferMicros(0), 10000);
}

class EchoHandler : public HttpHandler {
 public:
  explicit EchoHandler(util::SimulatedClock* clock, int64_t cost_micros)
      : clock_(clock), cost_micros_(cost_micros) {}
  HttpResponse Handle(const HttpRequest& request) override {
    clock_->Advance(cost_micros_);
    HttpResponse response;
    response.body = "echo:" + request.ToUrl();
    return response;
  }

 private:
  util::SimulatedClock* clock_;
  int64_t cost_micros_;
};

TEST(SimulatedChannelTest, RoundTripChargesLinkAndHandler) {
  util::SimulatedClock clock;
  EchoHandler handler(&clock, 5000);
  SimulatedChannel channel(&handler, LinkConfig{1.0, 1e9}, &clock);
  auto request = HttpRequest::Get("/x?a=1");
  ASSERT_TRUE(request.ok());
  HttpResponse response = channel.RoundTrip(*request);
  EXPECT_TRUE(response.ok());
  // 1 ms out + 5 ms handler + 1 ms back (+ negligible bandwidth).
  EXPECT_NEAR(static_cast<double>(clock.NowMicros()), 7000.0, 10.0);
  EXPECT_EQ(channel.total_requests(), 1u);
  EXPECT_GT(channel.total_bytes_sent(), 0u);
  EXPECT_GT(channel.total_bytes_received(), 0u);
}

TEST(SimulatedChannelTest, BandwidthMatters) {
  util::SimulatedClock clock;
  EchoHandler handler(&clock, 0);
  SimulatedChannel slow(&handler, LinkConfig{0.0, 1.0}, &clock);  // 1 KB/s.
  auto request = HttpRequest::Get("/x");
  ASSERT_TRUE(request.ok());
  slow.RoundTrip(*request);
  // Request ~130 B and response ~130 B at 1 KB/s ≈ 260 ms total.
  EXPECT_GT(clock.NowMicros(), 200000);
}

}  // namespace
}  // namespace fnproxy::net
