// Failure injection: the origin site misbehaves (intermittent 500s, SQL
// facility outages, malformed payloads) and the proxy must degrade cleanly —
// propagate errors without caching garbage, and recover on the next healthy
// response.

#include <gtest/gtest.h>

#include <memory>

#include "catalog/sky_catalog.h"
#include "core/proxy.h"
#include "net/fault.h"
#include "net/network.h"
#include "server/sky_functions.h"
#include "server/web_app.h"
#include "sql/table_xml.h"
#include "workload/experiment.h"

namespace fnproxy {
namespace {

using net::HttpRequest;
using net::HttpResponse;

/// Wraps the origin app, failing requests on demand.
class FlakyOrigin final : public net::HttpHandler {
 public:
  explicit FlakyOrigin(net::HttpHandler* inner) : inner_(inner) {}

  HttpResponse Handle(const HttpRequest& request) override {
    ++requests_;
    switch (mode_) {
      case Mode::kHealthy:
        return inner_->Handle(request);
      case Mode::kServerError:
        return HttpResponse::MakeError(500, "injected failure");
      case Mode::kGarbageBody: {
        HttpResponse response;
        response.body = "this is not XML at all <<<";
        return response;
      }
      case Mode::kConnectionDrop:
        return net::FaultInjector::MakeDrop();
      case Mode::kTimeout:
        return net::FaultInjector::MakeTimeout();
      case Mode::kOutage:
        // A scripted hard outage: drops until the window closes.
        if (clock_ != nullptr && clock_->NowMicros() >= outage_end_micros_) {
          return inner_->Handle(request);
        }
        return net::FaultInjector::MakeDrop();
      case Mode::kSqlOnlyFails:
        if (request.path == "/sql") {
          return HttpResponse::MakeError(500, "sql facility down");
        }
        return inner_->Handle(request);
    }
    return HttpResponse::MakeError(500, "unreachable");
  }

  enum class Mode {
    kHealthy,
    kServerError,
    kGarbageBody,
    kConnectionDrop,
    kTimeout,
    kOutage,
    kSqlOnlyFails,
  };
  /// Enters kOutage mode: every request before `end_micros` on `clock` is
  /// dropped, later ones are healthy again.
  void StartOutage(util::SimulatedClock* clock, int64_t end_micros) {
    mode_ = Mode::kOutage;
    clock_ = clock;
    outage_end_micros_ = end_micros;
  }
  void set_mode(Mode mode) { mode_ = mode; }
  uint64_t requests() const { return requests_; }

 private:
  net::HttpHandler* inner_;
  Mode mode_ = Mode::kHealthy;
  util::SimulatedClock* clock_ = nullptr;
  int64_t outage_end_micros_ = 0;
  uint64_t requests_ = 0;
};

class FailureInjectionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog::SkyCatalogConfig config;
    config.num_objects = 10000;
    config.seed = 4711;
    config.ra_min = 178.0;
    config.ra_max = 192.0;
    config.dec_min = 28.0;
    config.dec_max = 40.0;
    db_ = new server::Database();
    db_->AddTable("PhotoPrimary", catalog::GenerateSkyCatalog(config));
    grid_ = new server::SkyGrid(db_->FindTable("PhotoPrimary"));
    db_->RegisterTableFunction(server::MakeGetNearbyObjEq(grid_));
    db_->scalar_functions()->Register(
        "fPhotoFlags",
        [](const std::vector<sql::Value>& args)
            -> util::StatusOr<sql::Value> {
          FNPROXY_ASSIGN_OR_RETURN(
              int64_t bit, catalog::PhotoFlagValue(args.at(0).AsString()));
          return sql::Value::Int(bit);
        });
    templates_ = new core::TemplateRegistry();
    ASSERT_TRUE(templates_
                    ->RegisterFunctionTemplateXml(
                        workload::kNearbyObjEqTemplateXml)
                    .ok());
    auto qt = core::QueryTemplate::Create("radial", "/radial",
                                          workload::kRadialTemplateSql);
    ASSERT_TRUE(qt.ok());
    ASSERT_TRUE(templates_->RegisterQueryTemplate(std::move(*qt)).ok());
  }
  static void TearDownTestSuite() {
    delete templates_;
    delete grid_;
    delete db_;
    templates_ = nullptr;
    grid_ = nullptr;
    db_ = nullptr;
  }

  void SetUp() override {
    clock_ = std::make_unique<util::SimulatedClock>();
    app_ = std::make_unique<server::OriginWebApp>(db_, clock_.get());
    ASSERT_TRUE(app_->RegisterForm("/radial", workload::kRadialTemplateSql).ok());
    flaky_ = std::make_unique<FlakyOrigin>(app_.get());
    channel_ = std::make_unique<net::SimulatedChannel>(
        flaky_.get(), net::LinkConfig{0.0, 1e9}, clock_.get());
    proxy_ = std::make_unique<core::FunctionProxy>(
        core::ProxyConfig{}, templates_, channel_.get(), clock_.get());
  }

  static HttpRequest Radial(double ra, double dec, double radius) {
    HttpRequest request;
    request.path = "/radial";
    request.query_params["ra"] = std::to_string(ra);
    request.query_params["dec"] = std::to_string(dec);
    request.query_params["radius"] = std::to_string(radius);
    return request;
  }

  static server::Database* db_;
  static server::SkyGrid* grid_;
  static core::TemplateRegistry* templates_;

  std::unique_ptr<util::SimulatedClock> clock_;
  std::unique_ptr<server::OriginWebApp> app_;
  std::unique_ptr<FlakyOrigin> flaky_;
  std::unique_ptr<net::SimulatedChannel> channel_;
  std::unique_ptr<core::FunctionProxy> proxy_;
};

server::Database* FailureInjectionTest::db_ = nullptr;
server::SkyGrid* FailureInjectionTest::grid_ = nullptr;
core::TemplateRegistry* FailureInjectionTest::templates_ = nullptr;

TEST_F(FailureInjectionTest, OriginErrorPropagatedAndNotCached) {
  flaky_->set_mode(FlakyOrigin::Mode::kServerError);
  HttpResponse response = proxy_->Handle(Radial(185, 33, 20));
  EXPECT_FALSE(response.ok());
  EXPECT_EQ(proxy_->cache().num_entries(), 0u);

  // Recovery: next healthy response is served and cached.
  flaky_->set_mode(FlakyOrigin::Mode::kHealthy);
  HttpResponse healthy = proxy_->Handle(Radial(185, 33, 20));
  EXPECT_TRUE(healthy.ok());
  EXPECT_EQ(proxy_->cache().num_entries(), 1u);
  EXPECT_TRUE(sql::TableFromXml(healthy.body).ok());
}

TEST_F(FailureInjectionTest, GarbageBodyNotCached) {
  flaky_->set_mode(FlakyOrigin::Mode::kGarbageBody);
  HttpResponse response = proxy_->Handle(Radial(185, 33, 20));
  EXPECT_FALSE(response.ok());  // Surfaced as a gateway error.
  EXPECT_EQ(proxy_->cache().num_entries(), 0u);
}

TEST_F(FailureInjectionTest, PassiveModeDoesNotCacheErrors) {
  core::ProxyConfig config;
  config.mode = core::CachingMode::kPassive;
  core::FunctionProxy passive(config, templates_, channel_.get(), clock_.get());
  flaky_->set_mode(FlakyOrigin::Mode::kServerError);
  EXPECT_FALSE(passive.Handle(Radial(185, 33, 20)).ok());
  flaky_->set_mode(FlakyOrigin::Mode::kHealthy);
  // The error was not cached: the healthy retry reaches the origin and
  // returns real data.
  HttpResponse healthy = passive.Handle(Radial(185, 33, 20));
  EXPECT_TRUE(healthy.ok());
  EXPECT_TRUE(sql::TableFromXml(healthy.body).ok());
}

TEST_F(FailureInjectionTest, SqlOutageFallsBackToOriginalQuery) {
  proxy_->Handle(Radial(185, 33, 20));
  ASSERT_EQ(proxy_->cache().num_entries(), 1u);
  flaky_->set_mode(FlakyOrigin::Mode::kSqlOnlyFails);
  // Overlap would normally use /sql; with it failing, the proxy falls back
  // to forwarding the original form query and the answer is still correct.
  HttpRequest overlapping = Radial(185.5, 33, 20);
  HttpResponse response = proxy_->Handle(overlapping);
  EXPECT_TRUE(response.ok()) << response.body;
  EXPECT_EQ(proxy_->stats().overlaps_handled, 0u);

  util::SimulatedClock scratch;
  server::OriginWebApp reference(db_, &scratch);
  ASSERT_TRUE(
      reference.RegisterForm("/radial", workload::kRadialTemplateSql).ok());
  HttpResponse expected = reference.Handle(overlapping);
  auto got = sql::TableFromXml(response.body);
  auto want = sql::TableFromXml(expected.body);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(got->num_rows(), want->num_rows());
}

TEST_F(FailureInjectionTest, ConnectionDropSurfacedAndNotCached) {
  flaky_->set_mode(FlakyOrigin::Mode::kConnectionDrop);
  HttpResponse response = proxy_->Handle(Radial(185, 33, 20));
  EXPECT_FALSE(response.ok());
  // Degraded mode turns an unreachable origin with an empty cache into a
  // 503 with retry guidance, not a bare gateway error.
  EXPECT_EQ(response.status_code, 503);
  EXPECT_EQ(response.headers.count("Retry-After"), 1u);
  EXPECT_EQ(proxy_->cache().num_entries(), 0u);
  EXPECT_EQ(proxy_->stats().origin_failures, 1u);

  flaky_->set_mode(FlakyOrigin::Mode::kHealthy);
  HttpResponse healthy = proxy_->Handle(Radial(185, 33, 20));
  EXPECT_TRUE(healthy.ok());
  EXPECT_EQ(proxy_->cache().num_entries(), 1u);
}

TEST_F(FailureInjectionTest, TimeoutSurfacedAndNotCached) {
  flaky_->set_mode(FlakyOrigin::Mode::kTimeout);
  HttpResponse response = proxy_->Handle(Radial(185, 33, 20));
  EXPECT_FALSE(response.ok());
  EXPECT_EQ(proxy_->cache().num_entries(), 0u);
  const auto record = proxy_->stats().records.back();
  EXPECT_TRUE(record.failed);
  EXPECT_DOUBLE_EQ(record.CacheEfficiency(), 0.0);
}

TEST_F(FailureInjectionTest, PassiveModeDoesNotCacheGarbage) {
  core::ProxyConfig config;
  config.mode = core::CachingMode::kPassive;
  core::FunctionProxy passive(config, templates_, channel_.get(), clock_.get());
  flaky_->set_mode(FlakyOrigin::Mode::kGarbageBody);
  // PC is transparent: the 200 tunnels through to the browser...
  HttpResponse garbage = passive.Handle(Radial(185, 33, 20));
  EXPECT_TRUE(garbage.ok());
  EXPECT_FALSE(sql::TableFromXml(garbage.body).ok());

  // ...but the unparseable body must not be admitted to the passive cache:
  // the same URL goes back to the (now healthy) origin instead of replaying
  // the garbage.
  flaky_->set_mode(FlakyOrigin::Mode::kHealthy);
  uint64_t before = channel_->total_requests();
  HttpResponse healthy = passive.Handle(Radial(185, 33, 20));
  EXPECT_TRUE(healthy.ok());
  EXPECT_EQ(channel_->total_requests(), before + 1);
  EXPECT_TRUE(sql::TableFromXml(healthy.body).ok());
}

TEST_F(FailureInjectionTest, RetriesExhaustedSurfaceAsUnavailable) {
  net::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_backoff_micros = 100'000;
  policy.jitter_seed = 5;
  channel_->set_retry_policy(policy);
  flaky_->set_mode(FlakyOrigin::Mode::kConnectionDrop);

  HttpResponse response = proxy_->Handle(Radial(185, 33, 20));
  EXPECT_FALSE(response.ok());
  EXPECT_EQ(channel_->retry_stats().retries, 2u);
  EXPECT_EQ(proxy_->stats().origin_retries, 2u);
  EXPECT_EQ(proxy_->stats().origin_failures, 1u);
  EXPECT_EQ(proxy_->cache().num_entries(), 0u);
}

// The acceptance scenario: during a scripted outage the full semantic proxy
// keeps serving subsumed queries from the cache, answers overlapping queries
// partially with an honest coverage fraction, refuses disjoint queries with
// 503 + Retry-After — and the tunneling/passive proxies fail all of them.
TEST_F(FailureInjectionTest, DegradedModeServesFromCacheDuringOutage) {
  core::ProxyConfig config;
  config.mode = core::CachingMode::kActiveFull;
  config.breaker.enabled = true;
  config.breaker.window_size = 4;
  config.breaker.min_samples = 4;
  config.breaker.failure_threshold = 0.5;
  config.breaker.open_cooldown_micros = 60'000'000;
  config.breaker.half_open_successes = 1;
  core::FunctionProxy active(config, templates_, channel_.get(), clock_.get());

  // Warm the cache, then the origin goes dark.
  ASSERT_TRUE(active.Handle(Radial(185, 33, 20)).ok());
  ASSERT_EQ(active.cache().num_entries(), 1u);
  flaky_->StartOutage(clock_.get(), clock_->NowMicros() + 300'000'000);

  // Failing misses trip the breaker: the warm success plus three failures
  // fill the 4-wide window at 75% >= 50%, so the fourth miss is already
  // rejected without a round trip.
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(active.Handle(Radial(179.0 + 0.5 * i, 29, 5)).ok());
  }
  ASSERT_EQ(active.breaker().state(), net::BreakerState::kOpen);
  EXPECT_EQ(active.stats().origin_failures, 3u);
  EXPECT_GE(active.stats().breaker_open_rejections, 1u);

  // Subsumed query: answered fully from the cache, no origin round trip.
  uint64_t wire_before = channel_->total_requests();
  HttpResponse subsumed = active.Handle(Radial(185, 33, 10));
  EXPECT_TRUE(subsumed.ok());
  EXPECT_EQ(channel_->total_requests(), wire_before);
  auto subsumed_attrs = sql::ResultAttrsFromXml(subsumed.body);
  ASSERT_TRUE(subsumed_attrs.ok());
  EXPECT_FALSE(subsumed_attrs->partial);
  EXPECT_GE(active.stats().degraded_full, 1u);

  // Overlapping query: the cached portion is served, marked partial with a
  // coverage fraction strictly between 0 and 1.
  HttpResponse overlap = active.Handle(Radial(185.4, 33, 20));
  EXPECT_TRUE(overlap.ok()) << overlap.body;
  auto overlap_attrs = sql::ResultAttrsFromXml(overlap.body);
  ASSERT_TRUE(overlap_attrs.ok());
  EXPECT_TRUE(overlap_attrs->partial);
  EXPECT_GT(overlap_attrs->coverage, 0.0);
  EXPECT_LT(overlap_attrs->coverage, 1.0);
  EXPECT_EQ(overlap_attrs->degraded_reason, "origin-unreachable");
  EXPECT_EQ(active.stats().degraded_partial, 1u);
  const auto partial_record = active.stats().records.back();
  EXPECT_TRUE(partial_record.degraded);
  // The XML attribute is printed with 4 decimals.
  EXPECT_NEAR(partial_record.coverage, overlap_attrs->coverage, 1e-4);
  EXPECT_LE(partial_record.CacheEfficiency(), overlap_attrs->coverage);

  // Disjoint query: the cache contributes nothing — 503 with Retry-After.
  HttpResponse refused = active.Handle(Radial(190.5, 38, 10));
  EXPECT_EQ(refused.status_code, 503);
  ASSERT_EQ(refused.headers.count("Retry-After"), 1u);
  EXPECT_GT(std::stoll(refused.headers.at("Retry-After")), 0);

  // Nothing faulty was admitted: still just the warm entry.
  EXPECT_EQ(active.cache().num_entries(), 1u);

  // The tunneling and passive proxies fail the very queries the active
  // proxy still answers.
  core::ProxyConfig nc_config;
  nc_config.mode = core::CachingMode::kNoCache;
  core::FunctionProxy nc(nc_config, templates_, channel_.get(), clock_.get());
  core::ProxyConfig pc_config;
  pc_config.mode = core::CachingMode::kPassive;
  core::FunctionProxy pc(pc_config, templates_, channel_.get(), clock_.get());
  EXPECT_FALSE(nc.Handle(Radial(185, 33, 10)).ok());
  EXPECT_FALSE(pc.Handle(Radial(185, 33, 10)).ok());

  // Outage over, breaker cooldown elapsed: the next request probes
  // (half-open), succeeds, and full service resumes.
  clock_->Advance(400'000'000);
  HttpResponse recovered = active.Handle(Radial(190.5, 38, 10));
  EXPECT_TRUE(recovered.ok());
  EXPECT_EQ(active.breaker().state(), net::BreakerState::kClosed);
  EXPECT_EQ(active.cache().num_entries(), 2u);
  EXPECT_GE(active.stats().breaker_transitions, 3u);
}

TEST_F(FailureInjectionTest, CacheSurvivesFailureBurst) {
  proxy_->Handle(Radial(185, 33, 20));
  flaky_->set_mode(FlakyOrigin::Mode::kServerError);
  for (int i = 0; i < 5; ++i) {
    proxy_->Handle(Radial(186 + i, 35, 10));  // All fail.
  }
  EXPECT_EQ(proxy_->cache().num_entries(), 1u);
  // The surviving entry still serves hits during the outage.
  uint64_t before = channel_->total_requests();
  HttpResponse hit = proxy_->Handle(Radial(185, 33, 20));
  EXPECT_TRUE(hit.ok());
  EXPECT_EQ(channel_->total_requests(), before);
}

}  // namespace
}  // namespace fnproxy
