// Failure injection: the origin site misbehaves (intermittent 500s, SQL
// facility outages, malformed payloads) and the proxy must degrade cleanly —
// propagate errors without caching garbage, and recover on the next healthy
// response.

#include <gtest/gtest.h>

#include <memory>

#include "catalog/sky_catalog.h"
#include "core/proxy.h"
#include "net/network.h"
#include "server/sky_functions.h"
#include "server/web_app.h"
#include "sql/table_xml.h"
#include "workload/experiment.h"

namespace fnproxy {
namespace {

using net::HttpRequest;
using net::HttpResponse;

/// Wraps the origin app, failing requests on demand.
class FlakyOrigin final : public net::HttpHandler {
 public:
  explicit FlakyOrigin(net::HttpHandler* inner) : inner_(inner) {}

  HttpResponse Handle(const HttpRequest& request) override {
    ++requests_;
    switch (mode_) {
      case Mode::kHealthy:
        return inner_->Handle(request);
      case Mode::kServerError:
        return HttpResponse::MakeError(500, "injected failure");
      case Mode::kGarbageBody: {
        HttpResponse response;
        response.body = "this is not XML at all <<<";
        return response;
      }
      case Mode::kSqlOnlyFails:
        if (request.path == "/sql") {
          return HttpResponse::MakeError(500, "sql facility down");
        }
        return inner_->Handle(request);
    }
    return HttpResponse::MakeError(500, "unreachable");
  }

  enum class Mode { kHealthy, kServerError, kGarbageBody, kSqlOnlyFails };
  void set_mode(Mode mode) { mode_ = mode; }
  uint64_t requests() const { return requests_; }

 private:
  net::HttpHandler* inner_;
  Mode mode_ = Mode::kHealthy;
  uint64_t requests_ = 0;
};

class FailureInjectionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog::SkyCatalogConfig config;
    config.num_objects = 10000;
    config.seed = 4711;
    config.ra_min = 178.0;
    config.ra_max = 192.0;
    config.dec_min = 28.0;
    config.dec_max = 40.0;
    db_ = new server::Database();
    db_->AddTable("PhotoPrimary", catalog::GenerateSkyCatalog(config));
    grid_ = new server::SkyGrid(db_->FindTable("PhotoPrimary"));
    db_->RegisterTableFunction(server::MakeGetNearbyObjEq(grid_));
    db_->scalar_functions()->Register(
        "fPhotoFlags",
        [](const std::vector<sql::Value>& args)
            -> util::StatusOr<sql::Value> {
          FNPROXY_ASSIGN_OR_RETURN(
              int64_t bit, catalog::PhotoFlagValue(args.at(0).AsString()));
          return sql::Value::Int(bit);
        });
    templates_ = new core::TemplateRegistry();
    ASSERT_TRUE(templates_
                    ->RegisterFunctionTemplateXml(
                        workload::kNearbyObjEqTemplateXml)
                    .ok());
    auto qt = core::QueryTemplate::Create("radial", "/radial",
                                          workload::kRadialTemplateSql);
    ASSERT_TRUE(qt.ok());
    ASSERT_TRUE(templates_->RegisterQueryTemplate(std::move(*qt)).ok());
  }
  static void TearDownTestSuite() {
    delete templates_;
    delete grid_;
    delete db_;
    templates_ = nullptr;
    grid_ = nullptr;
    db_ = nullptr;
  }

  void SetUp() override {
    clock_ = std::make_unique<util::SimulatedClock>();
    app_ = std::make_unique<server::OriginWebApp>(db_, clock_.get());
    ASSERT_TRUE(app_->RegisterForm("/radial", workload::kRadialTemplateSql).ok());
    flaky_ = std::make_unique<FlakyOrigin>(app_.get());
    channel_ = std::make_unique<net::SimulatedChannel>(
        flaky_.get(), net::LinkConfig{0.0, 1e9}, clock_.get());
    proxy_ = std::make_unique<core::FunctionProxy>(
        core::ProxyConfig{}, templates_, channel_.get(), clock_.get());
  }

  static HttpRequest Radial(double ra, double dec, double radius) {
    HttpRequest request;
    request.path = "/radial";
    request.query_params["ra"] = std::to_string(ra);
    request.query_params["dec"] = std::to_string(dec);
    request.query_params["radius"] = std::to_string(radius);
    return request;
  }

  static server::Database* db_;
  static server::SkyGrid* grid_;
  static core::TemplateRegistry* templates_;

  std::unique_ptr<util::SimulatedClock> clock_;
  std::unique_ptr<server::OriginWebApp> app_;
  std::unique_ptr<FlakyOrigin> flaky_;
  std::unique_ptr<net::SimulatedChannel> channel_;
  std::unique_ptr<core::FunctionProxy> proxy_;
};

server::Database* FailureInjectionTest::db_ = nullptr;
server::SkyGrid* FailureInjectionTest::grid_ = nullptr;
core::TemplateRegistry* FailureInjectionTest::templates_ = nullptr;

TEST_F(FailureInjectionTest, OriginErrorPropagatedAndNotCached) {
  flaky_->set_mode(FlakyOrigin::Mode::kServerError);
  HttpResponse response = proxy_->Handle(Radial(185, 33, 20));
  EXPECT_FALSE(response.ok());
  EXPECT_EQ(proxy_->cache().num_entries(), 0u);

  // Recovery: next healthy response is served and cached.
  flaky_->set_mode(FlakyOrigin::Mode::kHealthy);
  HttpResponse healthy = proxy_->Handle(Radial(185, 33, 20));
  EXPECT_TRUE(healthy.ok());
  EXPECT_EQ(proxy_->cache().num_entries(), 1u);
  EXPECT_TRUE(sql::TableFromXml(healthy.body).ok());
}

TEST_F(FailureInjectionTest, GarbageBodyNotCached) {
  flaky_->set_mode(FlakyOrigin::Mode::kGarbageBody);
  HttpResponse response = proxy_->Handle(Radial(185, 33, 20));
  EXPECT_FALSE(response.ok());  // Surfaced as a gateway error.
  EXPECT_EQ(proxy_->cache().num_entries(), 0u);
}

TEST_F(FailureInjectionTest, PassiveModeDoesNotCacheErrors) {
  core::ProxyConfig config;
  config.mode = core::CachingMode::kPassive;
  core::FunctionProxy passive(config, templates_, channel_.get(), clock_.get());
  flaky_->set_mode(FlakyOrigin::Mode::kServerError);
  EXPECT_FALSE(passive.Handle(Radial(185, 33, 20)).ok());
  flaky_->set_mode(FlakyOrigin::Mode::kHealthy);
  // The error was not cached: the healthy retry reaches the origin and
  // returns real data.
  HttpResponse healthy = passive.Handle(Radial(185, 33, 20));
  EXPECT_TRUE(healthy.ok());
  EXPECT_TRUE(sql::TableFromXml(healthy.body).ok());
}

TEST_F(FailureInjectionTest, SqlOutageFallsBackToOriginalQuery) {
  proxy_->Handle(Radial(185, 33, 20));
  ASSERT_EQ(proxy_->cache().num_entries(), 1u);
  flaky_->set_mode(FlakyOrigin::Mode::kSqlOnlyFails);
  // Overlap would normally use /sql; with it failing, the proxy falls back
  // to forwarding the original form query and the answer is still correct.
  HttpRequest overlapping = Radial(185.5, 33, 20);
  HttpResponse response = proxy_->Handle(overlapping);
  EXPECT_TRUE(response.ok()) << response.body;
  EXPECT_EQ(proxy_->stats().overlaps_handled, 0u);

  util::SimulatedClock scratch;
  server::OriginWebApp reference(db_, &scratch);
  ASSERT_TRUE(
      reference.RegisterForm("/radial", workload::kRadialTemplateSql).ok());
  HttpResponse expected = reference.Handle(overlapping);
  auto got = sql::TableFromXml(response.body);
  auto want = sql::TableFromXml(expected.body);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(got->num_rows(), want->num_rows());
}

TEST_F(FailureInjectionTest, CacheSurvivesFailureBurst) {
  proxy_->Handle(Radial(185, 33, 20));
  flaky_->set_mode(FlakyOrigin::Mode::kServerError);
  for (int i = 0; i < 5; ++i) {
    proxy_->Handle(Radial(186 + i, 35, 10));  // All fail.
  }
  EXPECT_EQ(proxy_->cache().num_entries(), 1u);
  // The surviving entry still serves hits during the outage.
  uint64_t before = channel_->total_requests();
  HttpResponse hit = proxy_->Handle(Radial(185, 33, 20));
  EXPECT_TRUE(hit.ok());
  EXPECT_EQ(channel_->total_requests(), before);
}

}  // namespace
}  // namespace fnproxy
