#include <gtest/gtest.h>

#include "xml/xml.h"

namespace fnproxy::xml {
namespace {

TEST(XmlParseTest, SimpleElementWithText) {
  auto root = ParseXml("<Name>fGetNearbyObjEq</Name>");
  ASSERT_TRUE(root.ok()) << root.status().ToString();
  EXPECT_EQ((*root)->name(), "Name");
  EXPECT_EQ((*root)->text(), "fGetNearbyObjEq");
}

TEST(XmlParseTest, NestedChildrenInOrder) {
  auto root = ParseXml("<Params><P>$ra</P><P>$dec</P><P>$radius</P></Params>");
  ASSERT_TRUE(root.ok());
  ASSERT_EQ((*root)->children().size(), 3u);
  EXPECT_EQ((*root)->children()[0]->text(), "$ra");
  EXPECT_EQ((*root)->children()[2]->text(), "$radius");
}

TEST(XmlParseTest, Attributes) {
  auto root = ParseXml(R"(<Column name="objID" type="INT"/>)");
  ASSERT_TRUE(root.ok());
  ASSERT_NE((*root)->FindAttribute("name"), nullptr);
  EXPECT_EQ(*(*root)->FindAttribute("name"), "objID");
  EXPECT_EQ(*(*root)->FindAttribute("type"), "INT");
  EXPECT_EQ((*root)->FindAttribute("missing"), nullptr);
}

TEST(XmlParseTest, SingleQuotedAttributes) {
  auto root = ParseXml("<A x='1'/>");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(*(*root)->FindAttribute("x"), "1");
}

TEST(XmlParseTest, EntitiesDecoded) {
  auto root = ParseXml("<T>a &lt; b &amp;&amp; c &gt; d &quot;&apos;</T>");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ((*root)->text(), "a < b && c > d \"'");
}

TEST(XmlParseTest, NumericEntities) {
  auto root = ParseXml("<T>&#65;&#x42;</T>");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ((*root)->text(), "AB");
}

TEST(XmlParseTest, DeclarationAndCommentsSkipped) {
  auto root = ParseXml(
      "<?xml version=\"1.0\"?>\n<!-- header -->\n<A><!-- inner -->"
      "<B>x</B></A>\n<!-- trailer -->");
  ASSERT_TRUE(root.ok()) << root.status().ToString();
  EXPECT_EQ((*root)->name(), "A");
  ASSERT_EQ((*root)->children().size(), 1u);
}

TEST(XmlParseTest, WhitespaceTextTrimmed) {
  auto root = ParseXml("<A>\n   spaced out   \n</A>");
  ASSERT_TRUE(root.ok());
  EXPECT_EQ((*root)->text(), "spaced out");
}

TEST(XmlParseTest, MismatchedTagRejected) {
  EXPECT_FALSE(ParseXml("<A><B></A></B>").ok());
}

TEST(XmlParseTest, UnterminatedRejected) {
  EXPECT_FALSE(ParseXml("<A><B>").ok());
  EXPECT_FALSE(ParseXml("<A attr=>").ok());
  EXPECT_FALSE(ParseXml("<A attr=\"x>").ok());
}

TEST(XmlParseTest, TrailingContentRejected) {
  EXPECT_FALSE(ParseXml("<A/>junk").ok());
  EXPECT_FALSE(ParseXml("<A/><B/>").ok());
}

TEST(XmlParseTest, UnknownEntityRejected) {
  EXPECT_FALSE(ParseXml("<A>&bogus;</A>").ok());
}

TEST(XmlParseTest, EmptyDocumentRejected) {
  EXPECT_FALSE(ParseXml("").ok());
  EXPECT_FALSE(ParseXml("   ").ok());
}

TEST(XmlNavigationTest, FindChildAndChildren) {
  auto root = ParseXml("<R><A>1</A><B>2</B><A>3</A></R>");
  ASSERT_TRUE(root.ok());
  ASSERT_NE((*root)->FindChild("A"), nullptr);
  EXPECT_EQ((*root)->FindChild("A")->text(), "1");
  EXPECT_EQ((*root)->FindChildren("A").size(), 2u);
  EXPECT_EQ((*root)->FindChild("C"), nullptr);
  auto text = (*root)->ChildText("B");
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "2");
  EXPECT_FALSE((*root)->ChildText("C").ok());
}

TEST(XmlPrintTest, RoundTripsThroughParse) {
  XmlElement root("FunctionTemplate");
  root.AddChild("Name")->set_text("f<&>");
  XmlElement* params = root.AddChild("Params");
  params->AddChild("P")->set_text("$ra");
  params->AddChild("P")->set_text("$dec");
  root.SetAttribute("version", "1 & 2");

  std::string printed = root.ToString();
  auto reparsed = ParseXml(printed);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ((*reparsed)->name(), "FunctionTemplate");
  EXPECT_EQ(*(*reparsed)->FindAttribute("version"), "1 & 2");
  EXPECT_EQ((*reparsed)->FindChild("Name")->text(), "f<&>");
  EXPECT_EQ((*reparsed)->FindChild("Params")->children().size(), 2u);
}

TEST(XmlEscapeTest, EscapesAllFive) {
  EXPECT_EQ(EscapeXml("<>&\"'"), "&lt;&gt;&amp;&quot;&apos;");
  EXPECT_EQ(EscapeXml("plain"), "plain");
}

}  // namespace
}  // namespace fnproxy::xml
