#include <gtest/gtest.h>

#include "sql/lexer.h"

namespace fnproxy::sql {
namespace {

std::vector<Token> MustTokenize(std::string_view input) {
  auto tokens = Tokenize(input);
  EXPECT_TRUE(tokens.ok()) << tokens.status().ToString();
  return std::move(tokens).value();
}

TEST(LexerTest, EmptyInputYieldsEnd) {
  auto tokens = MustTokenize("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, TokenType::kEnd);
}

TEST(LexerTest, IdentifiersAndKeywords) {
  auto tokens = MustTokenize("SELECT objID FROM PhotoPrimary");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_TRUE(tokens[0].IsKeyword("select"));
  EXPECT_EQ(tokens[1].text, "objID");
  EXPECT_TRUE(tokens[2].IsKeyword("FROM"));
}

TEST(LexerTest, NumbersIntegerAndDecimal) {
  auto tokens = MustTokenize("42 3.14 .5 1e3 2.5E-2");
  ASSERT_EQ(tokens.size(), 6u);
  EXPECT_EQ(tokens[0].text, "42");
  EXPECT_EQ(tokens[1].text, "3.14");
  EXPECT_EQ(tokens[2].text, ".5");
  EXPECT_EQ(tokens[3].text, "1e3");
  EXPECT_EQ(tokens[4].text, "2.5E-2");
  for (int i = 0; i < 5; ++i) EXPECT_EQ(tokens[i].type, TokenType::kNumber);
}

TEST(LexerTest, StringLiteralWithEscapedQuote) {
  auto tokens = MustTokenize("'it''s a test'");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].type, TokenType::kString);
  EXPECT_EQ(tokens[0].text, "it's a test");
}

TEST(LexerTest, UnterminatedStringRejected) {
  EXPECT_FALSE(Tokenize("'oops").ok());
}

TEST(LexerTest, Parameters) {
  auto tokens = MustTokenize("$ra $dec_min");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].type, TokenType::kParameter);
  EXPECT_EQ(tokens[0].text, "ra");
  EXPECT_EQ(tokens[1].text, "dec_min");
}

TEST(LexerTest, BareDollarRejected) {
  EXPECT_FALSE(Tokenize("$ ra").ok());
}

TEST(LexerTest, TwoCharOperators) {
  auto tokens = MustTokenize("<= >= <> !=");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_TRUE(tokens[0].IsOperator("<="));
  EXPECT_TRUE(tokens[1].IsOperator(">="));
  EXPECT_TRUE(tokens[2].IsOperator("<>"));
  EXPECT_TRUE(tokens[3].IsOperator("!="));
}

TEST(LexerTest, SingleCharOperators) {
  auto tokens = MustTokenize("( ) , . = < > + - * / % & | ~");
  EXPECT_EQ(tokens.size(), 16u);
  EXPECT_TRUE(tokens[0].IsOperator("("));
  EXPECT_TRUE(tokens[14].IsOperator("~"));
}

TEST(LexerTest, LineCommentsSkipped) {
  auto tokens = MustTokenize("a -- comment here\n b");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "b");
}

TEST(LexerTest, MinusVsComment) {
  auto tokens = MustTokenize("1 - 2");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_TRUE(tokens[1].IsOperator("-"));
}

TEST(LexerTest, OffsetsRecorded) {
  auto tokens = MustTokenize("ab cd");
  EXPECT_EQ(tokens[0].offset, 0u);
  EXPECT_EQ(tokens[1].offset, 3u);
}

TEST(LexerTest, UnexpectedCharacterRejected) {
  EXPECT_FALSE(Tokenize("a # b").ok());
  EXPECT_FALSE(Tokenize("a ? b").ok());
}

}  // namespace
}  // namespace fnproxy::sql
