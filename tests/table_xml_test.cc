#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

#include "sql/columnar.h"
#include "sql/table_xml.h"

namespace fnproxy::sql {
namespace {

Table SampleTable() {
  Schema schema({{"objID", ValueType::kInt},
                 {"ra", ValueType::kDouble},
                 {"name", ValueType::kString},
                 {"seen", ValueType::kBool}});
  Table table(schema);
  table.AddRow({Value::Int(1000001), Value::Double(195.2625),
                Value::String("<ngc & m31>"), Value::Bool(true)});
  table.AddRow({Value::Int(1000002), Value::Double(-2.5), Value::Null(),
                Value::Bool(false)});
  return table;
}

TEST(TableXmlTest, RoundTripPreservesEverything) {
  Table original = SampleTable();
  std::string xml_text = TableToXml(original);
  auto parsed = TableFromXml(xml_text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->schema().SameColumns(original.schema()));
  ASSERT_EQ(parsed->num_rows(), 2u);
  EXPECT_EQ(parsed->row(0)[0].AsInt(), 1000001);
  EXPECT_DOUBLE_EQ(parsed->row(0)[1].AsDouble(), 195.2625);
  EXPECT_EQ(parsed->row(0)[2].AsString(), "<ngc & m31>");
  EXPECT_TRUE(parsed->row(0)[3].AsBool());
  EXPECT_TRUE(parsed->row(1)[2].is_null());
  EXPECT_FALSE(parsed->row(1)[3].AsBool());
}

TEST(TableXmlTest, EmptyTableRoundTrips) {
  Table empty(Schema({{"x", ValueType::kInt}}));
  auto parsed = TableFromXml(TableToXml(empty));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_rows(), 0u);
  EXPECT_EQ(parsed->schema().num_columns(), 1u);
}

TEST(TableXmlTest, RowsAttributeMatchesCount) {
  std::string xml_text = TableToXml(SampleTable());
  EXPECT_NE(xml_text.find("rows=\"2\""), std::string::npos);
}

TEST(TableXmlTest, DoublePrecisionSurvives) {
  Schema schema({{"v", ValueType::kDouble}});
  Table table(schema);
  double tricky = 0.1 + 0.2;
  table.AddRow({Value::Double(tricky)});
  table.AddRow({Value::Double(1e-17)});
  table.AddRow({Value::Double(-123456789.123456)});
  auto parsed = TableFromXml(TableToXml(table));
  ASSERT_TRUE(parsed.ok());
  for (size_t i = 0; i < table.num_rows(); ++i) {
    EXPECT_DOUBLE_EQ(parsed->row(i)[0].AsDouble(), table.row(i)[0].AsDouble());
  }
}

TEST(TableXmlTest, RejectsWrongRoot) {
  EXPECT_FALSE(TableFromXml("<NotResult/>").ok());
}

TEST(TableXmlTest, RejectsMissingSchema) {
  EXPECT_FALSE(TableFromXml("<Result rows=\"0\"></Result>").ok());
}

TEST(TableXmlTest, RejectsBadColumnType) {
  EXPECT_FALSE(TableFromXml("<Result><Schema><Column name=\"x\" "
                            "type=\"BLOB\"/></Schema></Result>")
                   .ok());
}

TEST(TableXmlTest, RejectsRowWidthMismatch) {
  const char* doc =
      "<Result><Schema><Column name=\"x\" type=\"INT\"/>"
      "<Column name=\"y\" type=\"INT\"/></Schema>"
      "<Row><V>1</V></Row></Result>";
  EXPECT_FALSE(TableFromXml(doc).ok());
}

TEST(TableXmlTest, RejectsMalformedCellValue) {
  const char* doc =
      "<Result><Schema><Column name=\"x\" type=\"INT\"/></Schema>"
      "<Row><V>notanint</V></Row></Result>";
  EXPECT_FALSE(TableFromXml(doc).ok());
}

// Large-table fidelity check for the reserve + fast-formatter serializer:
// 10k rows mixing NULLs, markup-escaping strings, and extreme doubles must
// survive a serialize/parse round trip bit-for-bit (doubles compared by
// representation, not epsilon).
TEST(TableXmlTest, LargeTableRoundTripIsLossless) {
  Schema schema({{"id", ValueType::kInt},
                 {"x", ValueType::kDouble},
                 {"tag", ValueType::kString},
                 {"flag", ValueType::kBool}});
  const double weird_doubles[] = {
      1e308,  -1e308, 5e-324,  -5e-324, 0.0,       -0.0,     1e6,
      1e-7,   123456.789, 0.1, 1.0 / 3.0, 9007199254740993.0, 2.5e-15};
  const char* weird_strings[] = {
      "",       "plain",  "<tag>&amp;</tag>", "quote\"'quote",
      // Leading/trailing whitespace is trimmed by the XML parser by design,
      // so only interior whitespace is round-trippable.
      "white\tspace\ninside", "unit\x1fsep", "1e+06"};
  Table original(schema);
  uint64_t state = 0x243f6a8885a308d3ull;
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int i = 0; i < 10000; ++i) {
    std::vector<Value> row;
    row.push_back(next() % 11 == 0 ? Value::Null()
                                   : Value::Int(static_cast<int64_t>(next())));
    if (next() % 13 == 0) {
      row.push_back(Value::Null());
    } else if (next() % 3 == 0) {
      row.push_back(Value::Double(weird_doubles[next() % 13]));
    } else {
      // Full-precision random doubles exercise the shortest-digits path.
      row.push_back(Value::Double(
          static_cast<double>(next()) / 1.8446744073709552e19 * 360.0 - 180.0));
    }
    row.push_back(next() % 7 == 0 ? Value::Null()
                                  : Value::String(weird_strings[next() % 7]));
    row.push_back(next() % 5 == 0 ? Value::Null()
                                  : Value::Bool(next() % 2 == 0));
    original.AddRow(std::move(row));
  }

  std::string xml_text = TableToXml(original);
  auto parsed = TableFromXml(xml_text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->num_rows(), original.num_rows());
  for (size_t r = 0; r < original.num_rows(); ++r) {
    for (size_t c = 0; c < 4; ++c) {
      const Value& want = original.row(r)[c];
      const Value& got = parsed->row(r)[c];
      ASSERT_EQ(want.is_null(), got.is_null()) << "row " << r << " col " << c;
      if (want.is_null()) continue;
      ASSERT_EQ(want.type(), got.type()) << "row " << r << " col " << c;
      if (want.type() == ValueType::kDouble) {
        uint64_t want_bits, got_bits;
        double want_d = want.AsDouble(), got_d = got.AsDouble();
        std::memcpy(&want_bits, &want_d, sizeof want_bits);
        std::memcpy(&got_bits, &got_d, sizeof got_bits);
        ASSERT_EQ(want_bits, got_bits) << "row " << r << " col " << c;
      } else {
        ASSERT_EQ(want.ToSqlLiteral(), got.ToSqlLiteral())
            << "row " << r << " col " << c;
      }
    }
  }

  // The columnar serializer must emit byte-identical XML for the same data.
  ColumnarTable columnar(original);
  EXPECT_EQ(TableToXml(columnar), xml_text);
}

}  // namespace
}  // namespace fnproxy::sql
