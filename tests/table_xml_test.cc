#include <gtest/gtest.h>

#include "sql/table_xml.h"

namespace fnproxy::sql {
namespace {

Table SampleTable() {
  Schema schema({{"objID", ValueType::kInt},
                 {"ra", ValueType::kDouble},
                 {"name", ValueType::kString},
                 {"seen", ValueType::kBool}});
  Table table(schema);
  table.AddRow({Value::Int(1000001), Value::Double(195.2625),
                Value::String("<ngc & m31>"), Value::Bool(true)});
  table.AddRow({Value::Int(1000002), Value::Double(-2.5), Value::Null(),
                Value::Bool(false)});
  return table;
}

TEST(TableXmlTest, RoundTripPreservesEverything) {
  Table original = SampleTable();
  std::string xml_text = TableToXml(original);
  auto parsed = TableFromXml(xml_text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->schema().SameColumns(original.schema()));
  ASSERT_EQ(parsed->num_rows(), 2u);
  EXPECT_EQ(parsed->row(0)[0].AsInt(), 1000001);
  EXPECT_DOUBLE_EQ(parsed->row(0)[1].AsDouble(), 195.2625);
  EXPECT_EQ(parsed->row(0)[2].AsString(), "<ngc & m31>");
  EXPECT_TRUE(parsed->row(0)[3].AsBool());
  EXPECT_TRUE(parsed->row(1)[2].is_null());
  EXPECT_FALSE(parsed->row(1)[3].AsBool());
}

TEST(TableXmlTest, EmptyTableRoundTrips) {
  Table empty(Schema({{"x", ValueType::kInt}}));
  auto parsed = TableFromXml(TableToXml(empty));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_rows(), 0u);
  EXPECT_EQ(parsed->schema().num_columns(), 1u);
}

TEST(TableXmlTest, RowsAttributeMatchesCount) {
  std::string xml_text = TableToXml(SampleTable());
  EXPECT_NE(xml_text.find("rows=\"2\""), std::string::npos);
}

TEST(TableXmlTest, DoublePrecisionSurvives) {
  Schema schema({{"v", ValueType::kDouble}});
  Table table(schema);
  double tricky = 0.1 + 0.2;
  table.AddRow({Value::Double(tricky)});
  table.AddRow({Value::Double(1e-17)});
  table.AddRow({Value::Double(-123456789.123456)});
  auto parsed = TableFromXml(TableToXml(table));
  ASSERT_TRUE(parsed.ok());
  for (size_t i = 0; i < table.num_rows(); ++i) {
    EXPECT_DOUBLE_EQ(parsed->row(i)[0].AsDouble(), table.row(i)[0].AsDouble());
  }
}

TEST(TableXmlTest, RejectsWrongRoot) {
  EXPECT_FALSE(TableFromXml("<NotResult/>").ok());
}

TEST(TableXmlTest, RejectsMissingSchema) {
  EXPECT_FALSE(TableFromXml("<Result rows=\"0\"></Result>").ok());
}

TEST(TableXmlTest, RejectsBadColumnType) {
  EXPECT_FALSE(TableFromXml("<Result><Schema><Column name=\"x\" "
                            "type=\"BLOB\"/></Schema></Result>")
                   .ok());
}

TEST(TableXmlTest, RejectsRowWidthMismatch) {
  const char* doc =
      "<Result><Schema><Column name=\"x\" type=\"INT\"/>"
      "<Column name=\"y\" type=\"INT\"/></Schema>"
      "<Row><V>1</V></Row></Result>";
  EXPECT_FALSE(TableFromXml(doc).ok());
}

TEST(TableXmlTest, RejectsMalformedCellValue) {
  const char* doc =
      "<Result><Schema><Column name=\"x\" type=\"INT\"/></Schema>"
      "<Row><V>notanint</V></Row></Result>";
  EXPECT_FALSE(TableFromXml(doc).ok());
}

}  // namespace
}  // namespace fnproxy::sql
