#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "catalog/sky_catalog.h"
#include "core/proxy.h"
#include "net/network.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/sky_functions.h"
#include "server/web_app.h"
#include "workload/experiment.h"

namespace fnproxy::obs {
namespace {

using Histogram = obs::Histogram;

// ---------------------------------------------------------------------------
// Histogram bucket boundaries.
// ---------------------------------------------------------------------------

TEST(HistogramBucketsTest, BoundariesArePowersOfTwo) {
  for (size_t i = 0; i < Histogram::kNumFiniteBuckets; ++i) {
    EXPECT_EQ(Histogram::BucketUpperBoundMicros(i), int64_t{1} << i);
  }
  EXPECT_EQ(Histogram::BucketUpperBoundMicros(0), 1);
  EXPECT_EQ(Histogram::BucketUpperBoundMicros(24), 16'777'216);
}

TEST(HistogramBucketsTest, IndexMatchesHalfOpenIntervals) {
  // Bucket i covers (2^(i-1), 2^i]; values <= 1 land in bucket 0 and values
  // beyond the top finite bound in the overflow bucket.
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 0u);
  EXPECT_EQ(Histogram::BucketIndex(2), 1u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 2u);
  EXPECT_EQ(Histogram::BucketIndex(5), 3u);
  for (size_t i = 1; i < Histogram::kNumFiniteBuckets; ++i) {
    int64_t bound = Histogram::BucketUpperBoundMicros(i);
    EXPECT_EQ(Histogram::BucketIndex(bound), i) << "at bound " << bound;
    EXPECT_EQ(Histogram::BucketIndex(bound + 1), i + 1)
        << "just past bound " << bound;
  }
  // Far past the largest finite bound: overflow bucket.
  EXPECT_EQ(Histogram::BucketIndex(int64_t{1} << 40),
            Histogram::kNumFiniteBuckets);
}

TEST(HistogramBucketsTest, EveryObservationLandsInExactlyOneBucket) {
  Histogram h;
  h.Observe(0);
  h.Observe(1);
  h.Observe(17);
  h.Observe(-5);  // Clamped to 0.
  h.Observe(int64_t{1} << 30);
  Histogram::Snapshot snap = h.snapshot();
  uint64_t total = 0;
  for (uint64_t b : snap.buckets) total += b;
  EXPECT_EQ(total, snap.count);
  EXPECT_EQ(snap.count, 5u);
  EXPECT_EQ(snap.buckets[0], 3u);  // 0, 1 and the clamped -5.
  EXPECT_EQ(snap.buckets[Histogram::BucketIndex(17)], 1u);
  EXPECT_EQ(snap.buckets[Histogram::kNumFiniteBuckets], 1u);
}

// ---------------------------------------------------------------------------
// Quantile extraction against a sorted-vector oracle.
// ---------------------------------------------------------------------------

/// Nearest-rank quantile of `sorted`, resolved to the bucket upper bound the
/// histogram must report: the smallest bound >= the oracle value.
int64_t OracleQuantileBound(const std::vector<int64_t>& sorted, double q) {
  size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  if (rank == 0) rank = 1;
  int64_t value = sorted[rank - 1];
  return Histogram::BucketUpperBoundMicros(Histogram::BucketIndex(value));
}

TEST(HistogramQuantileTest, MatchesSortedVectorOracle) {
  Histogram h;
  std::vector<int64_t> values;
  // Deterministic LCG spanning several decades of microseconds.
  uint64_t state = 12345;
  for (int i = 0; i < 5000; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    int64_t v = static_cast<int64_t>((state >> 33) % 2'000'000);
    values.push_back(v);
    h.Observe(v);
  }
  std::sort(values.begin(), values.end());
  Histogram::Snapshot snap = h.snapshot();
  for (double q : {0.0, 0.25, 0.50, 0.90, 0.95, 0.99, 1.0}) {
    EXPECT_EQ(snap.QuantileUpperBoundMicros(q), OracleQuantileBound(values, q))
        << "at q=" << q;
  }
}

TEST(HistogramQuantileTest, ExactSmallDistribution) {
  Histogram h;
  // Ten observations: eight fast (<= 4 us), two slow (~1 ms).
  for (int i = 0; i < 8; ++i) h.Observe(3);
  h.Observe(900);
  h.Observe(1000);
  Histogram::Snapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 10u);
  EXPECT_EQ(snap.QuantileUpperBoundMicros(0.50), 4);     // rank 5 -> bucket (2,4]
  EXPECT_EQ(snap.QuantileUpperBoundMicros(0.80), 4);     // rank 8
  EXPECT_EQ(snap.QuantileUpperBoundMicros(0.90), 1024);  // rank 9 -> (512,1024]
  EXPECT_EQ(snap.QuantileUpperBoundMicros(0.99), 1024);  // rank 10
}

TEST(HistogramQuantileTest, OverflowReportsOneDoubingPastScale) {
  Histogram h;
  h.Observe(int64_t{1} << 30);  // Beyond the 2^29 top finite bound.
  Histogram::Snapshot snap = h.snapshot();
  EXPECT_EQ(snap.QuantileUpperBoundMicros(1.0),
            Histogram::BucketUpperBoundMicros(Histogram::kNumFiniteBuckets));
}

TEST(HistogramQuantileTest, EmptyHistogramReportsZero) {
  Histogram h;
  EXPECT_EQ(h.snapshot().QuantileUpperBoundMicros(0.99), 0);
}

// ---------------------------------------------------------------------------
// Concurrent recording.
// ---------------------------------------------------------------------------

TEST(MetricsConcurrencyTest, EightThreadsPreserveSumInvariants) {
  MetricsRegistry registry;
  Counter* counter = registry.AddCounter("test_ops_total", "ops");
  Histogram* histogram = registry.AddHistogram("test_latency_micros", "lat");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Increment();
        histogram->Observe((t * kPerThread + i) % 4096);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(counter->Value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  Histogram::Snapshot snap = histogram->snapshot();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads) * kPerThread);
  uint64_t bucket_total = 0;
  for (uint64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, snap.count);
  // Every thread observed each residue of 0..4095 the same number of times,
  // so the exact sum is computable.
  int64_t expected_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      expected_sum += (t * kPerThread + i) % 4096;
    }
  }
  EXPECT_EQ(snap.sum_micros, expected_sum);
}

// ---------------------------------------------------------------------------
// Prometheus text format (golden).
// ---------------------------------------------------------------------------

TEST(PrometheusRenderTest, GoldenOutput) {
  MetricsRegistry registry;
  Counter* hits = registry.AddCounter("test_hits_total", "Cache hits",
                                      {{"kind", "exact"}});
  hits->Increment(3);
  Gauge* depth = registry.AddGauge("test_queue_depth", "Queue depth");
  depth->Set(2.5);
  Histogram* lat = registry.AddHistogram("test_lat_micros", "Latency");
  lat->Observe(1);
  lat->Observe(3);
  lat->Observe(int64_t{1} << 30);
  registry.AddCallback("test_cb_total", "Callback counter",
                       /*is_counter=*/true, {{"src", "a\\b\"c\nd"}},
                       [] { return 7.0; });

  std::string expected =
      "# HELP test_hits_total Cache hits\n"
      "# TYPE test_hits_total counter\n"
      "test_hits_total{kind=\"exact\"} 3\n"
      "# HELP test_queue_depth Queue depth\n"
      "# TYPE test_queue_depth gauge\n"
      "test_queue_depth 2.5\n"
      "# HELP test_lat_micros Latency\n"
      "# TYPE test_lat_micros histogram\n";
  // 30 finite buckets: cumulative 1 at le=1, 2 from le=4 on, then +Inf 3.
  uint64_t cumulative = 0;
  for (size_t i = 0; i < Histogram::kNumFiniteBuckets; ++i) {
    if (i == 0) cumulative = 1;
    if (i == 2) cumulative = 2;
    expected += "test_lat_micros_bucket{le=\"" +
                std::to_string(Histogram::BucketUpperBoundMicros(i)) + "\"} " +
                std::to_string(cumulative) + "\n";
  }
  expected += "test_lat_micros_bucket{le=\"+Inf\"} 3\n";
  expected += "test_lat_micros_sum " + std::to_string(4 + (int64_t{1} << 30)) +
              "\n";
  expected += "test_lat_micros_count 3\n";
  expected +=
      "# HELP test_cb_total Callback counter\n"
      "# TYPE test_cb_total counter\n"
      "test_cb_total{src=\"a\\\\b\\\"c\\nd\"} 7\n";

  EXPECT_EQ(registry.RenderPrometheus(), expected);
}

TEST(PrometheusRenderTest, FamiliesShareOneHeader) {
  MetricsRegistry registry;
  registry.AddCounter("test_family_total", "Family", {{"k", "a"}});
  registry.AddCounter("test_family_total", "Family", {{"k", "b"}});
  std::string text = registry.RenderPrometheus();
  EXPECT_EQ(text.find("# TYPE test_family_total counter"),
            text.rfind("# TYPE test_family_total counter"));
  EXPECT_NE(text.find("test_family_total{k=\"a\"} 0"), std::string::npos);
  EXPECT_NE(text.find("test_family_total{k=\"b\"} 0"), std::string::npos);
}

TEST(PhaseBreakdownTest, SummarizesLabelledFamily) {
  MetricsRegistry registry;
  Histogram* a = registry.AddHistogram("test_phase_micros", "Phases",
                                       {{"phase", "parse"}});
  Histogram* b = registry.AddHistogram("test_phase_micros", "Phases",
                                       {{"phase", "merge"}});
  a->Observe(10);
  a->Observe(20);
  b->Observe(1000);
  auto rows = PhaseBreakdownFromRegistry(registry, "test_phase_micros");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].phase, "parse");
  EXPECT_EQ(rows[0].count, 2u);
  EXPECT_EQ(rows[0].total_micros, 30);
  EXPECT_EQ(rows[1].phase, "merge");
  EXPECT_EQ(rows[1].p99_micros, 1024);
}

// ---------------------------------------------------------------------------
// Traces: span nesting, JSON shape, ring wraparound.
// ---------------------------------------------------------------------------

TEST(QueryTraceTest, SpansNestViaParentIndices) {
  QueryTrace trace(7, "/radial");
  size_t root = trace.BeginSpan("request", 100);
  size_t child = trace.BeginSpan("cache_lookup", 110);
  trace.EndSpan(child, 150);
  size_t sibling = trace.BeginSpan("serialize", 160);
  trace.EndSpan(sibling, 170);
  trace.EndSpan(root, 200);

  ASSERT_EQ(trace.spans().size(), 3u);
  EXPECT_EQ(trace.spans()[0].parent, -1);
  EXPECT_EQ(trace.spans()[1].parent, 0);
  EXPECT_EQ(trace.spans()[2].parent, 0);
  EXPECT_EQ(trace.spans()[1].virtual_start_micros, 110);
  EXPECT_EQ(trace.spans()[1].virtual_end_micros, 150);
}

TEST(QueryTraceTest, JsonShape) {
  QueryTrace trace(42, "/radial");
  trace.AddAttr("mode", "AC-full");
  size_t root = trace.BeginSpan("request", 0);
  trace.AddSpanAttr(root, "status", "200");
  trace.EndSpan(root, 50);
  std::string json;
  trace.AppendJson(&json);
  EXPECT_NE(json.find("\"trace_id\":42"), std::string::npos);
  EXPECT_NE(json.find("\"path\":\"/radial\""), std::string::npos);
  EXPECT_NE(json.find("\"mode\":\"AC-full\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"request\""), std::string::npos);
  EXPECT_NE(json.find("\"parent\":-1"), std::string::npos);
  EXPECT_NE(json.find("\"virtual_start_us\":0"), std::string::npos);
  EXPECT_NE(json.find("\"virtual_end_us\":50"), std::string::npos);
  EXPECT_NE(json.find("\"status\":\"200\""), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(ScopedSpanTest, NullTraceStillFeedsHistogram) {
  Histogram h;
  util::SimulatedClock clock;
  {
    ScopedSpan span(nullptr, "work", &clock, &h);
    clock.Advance(500);
  }
  Histogram::Snapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.sum_micros, 500);
}

TEST(TraceRingTest, WrapsAroundKeepingNewestOldestFirst) {
  TraceRing ring(4);
  for (uint64_t i = 0; i < 10; ++i) {
    ring.Push(std::make_shared<QueryTrace>(i, "/q"));
  }
  EXPECT_EQ(ring.total_pushed(), 10u);
  auto last = ring.Last(100);
  ASSERT_EQ(last.size(), 4u);
  EXPECT_EQ(last[0]->id(), 6u);
  EXPECT_EQ(last[1]->id(), 7u);
  EXPECT_EQ(last[2]->id(), 8u);
  EXPECT_EQ(last[3]->id(), 9u);
  auto last_two = ring.Last(2);
  ASSERT_EQ(last_two.size(), 2u);
  EXPECT_EQ(last_two[0]->id(), 8u);
  EXPECT_EQ(last_two[1]->id(), 9u);
}

TEST(TraceRingTest, PartialFillAndZeroCapacity) {
  TraceRing ring(8);
  ring.Push(std::make_shared<QueryTrace>(0, "/q"));
  ring.Push(std::make_shared<QueryTrace>(1, "/q"));
  auto last = ring.Last(5);
  ASSERT_EQ(last.size(), 2u);
  EXPECT_EQ(last[0]->id(), 0u);
  EXPECT_EQ(last[1]->id(), 1u);

  TraceRing disabled(0);
  disabled.Push(std::make_shared<QueryTrace>(9, "/q"));
  EXPECT_EQ(disabled.total_pushed(), 0u);
  EXPECT_TRUE(disabled.Last(4).empty());
}

// ---------------------------------------------------------------------------
// Proxy endpoints: /metrics and /proxy/trace.
// ---------------------------------------------------------------------------

class ObsEndpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog::SkyCatalogConfig config;
    config.num_objects = 4000;
    config.num_clusters = 4;
    config.seed = 7;
    config.ra_min = 175.0;
    config.ra_max = 205.0;
    config.dec_min = 25.0;
    config.dec_max = 50.0;
    db_ = std::make_unique<server::Database>();
    db_->AddTable("PhotoPrimary", catalog::GenerateSkyCatalog(config));
    grid_ = std::make_unique<server::SkyGrid>(db_->FindTable("PhotoPrimary"));
    db_->RegisterTableFunction(server::MakeGetNearbyObjEq(grid_.get()));
    db_->scalar_functions()->Register(
        "fPhotoFlags",
        [](const std::vector<sql::Value>& args)
            -> util::StatusOr<sql::Value> {
          FNPROXY_ASSIGN_OR_RETURN(
              int64_t bit, catalog::PhotoFlagValue(args.at(0).AsString()));
          return sql::Value::Int(bit);
        });
    templates_ = std::make_unique<core::TemplateRegistry>();
    ASSERT_TRUE(templates_
                    ->RegisterFunctionTemplateXml(
                        workload::kNearbyObjEqTemplateXml)
                    .ok());
    auto qt = core::QueryTemplate::Create("radial", "/radial",
                                          workload::kRadialTemplateSql);
    ASSERT_TRUE(qt.ok());
    ASSERT_TRUE(templates_->RegisterQueryTemplate(std::move(*qt)).ok());
    clock_ = std::make_unique<util::SimulatedClock>();
    app_ = std::make_unique<server::OriginWebApp>(db_.get(), clock_.get());
    ASSERT_TRUE(
        app_->RegisterForm("/radial", workload::kRadialTemplateSql).ok());
    channel_ = std::make_unique<net::SimulatedChannel>(
        app_.get(), net::LinkConfig{0.0, 1e9}, clock_.get());
    core::ProxyConfig proxy_config;
    proxy_config.mode = core::CachingMode::kActiveFull;
    proxy_config.trace_ring_capacity = 8;
    proxy_ = std::make_unique<core::FunctionProxy>(
        proxy_config, templates_.get(), channel_.get(), clock_.get());
  }

  net::HttpRequest Radial(double ra, double dec, double radius) {
    net::HttpRequest request;
    request.path = "/radial";
    request.query_params["ra"] = std::to_string(ra);
    request.query_params["dec"] = std::to_string(dec);
    request.query_params["radius"] = std::to_string(radius);
    return request;
  }

  std::unique_ptr<server::Database> db_;
  std::unique_ptr<server::SkyGrid> grid_;
  std::unique_ptr<core::TemplateRegistry> templates_;
  std::unique_ptr<util::SimulatedClock> clock_;
  std::unique_ptr<server::OriginWebApp> app_;
  std::unique_ptr<net::SimulatedChannel> channel_;
  std::unique_ptr<core::FunctionProxy> proxy_;
};

TEST_F(ObsEndpointTest, MetricsEndpointRendersPrometheusText) {
  ASSERT_TRUE(proxy_->Handle(Radial(190.0, 35.0, 20.0)).ok());  // miss
  ASSERT_TRUE(proxy_->Handle(Radial(190.0, 35.0, 20.0)).ok());  // exact hit

  net::HttpRequest scrape;
  scrape.path = "/metrics";
  net::HttpResponse response = proxy_->Handle(scrape);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.content_type, "text/plain; version=0.0.4");
  const std::string& text = response.body;
  EXPECT_NE(text.find("# TYPE fnproxy_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("fnproxy_requests_total 2"), std::string::npos);
  EXPECT_NE(text.find("fnproxy_cache_outcomes_total{outcome=\"exact_hit\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("fnproxy_cache_outcomes_total{outcome=\"miss\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE fnproxy_request_duration_micros histogram"),
            std::string::npos);
  EXPECT_NE(text.find("fnproxy_request_duration_micros_count 2"),
            std::string::npos);
  EXPECT_NE(
      text.find(
          "fnproxy_phase_duration_micros_count{phase=\"cache_lookup\"} 2"),
      std::string::npos);
  EXPECT_NE(text.find("fnproxy_region_compare_micros"), std::string::npos);
  EXPECT_NE(text.find("fnproxy_cache_entries 1"), std::string::npos);
  // The scrape itself is not counted as query traffic.
  EXPECT_EQ(proxy_->stats().requests, 2u);
}

TEST_F(ObsEndpointTest, StatsAndMetricsAgree) {
  for (int i = 0; i < 3; ++i) {
    net::HttpResponse r = proxy_->Handle(Radial(190.0 + i, 35.0, 15.0));
    ASSERT_TRUE(r.ok()) << r.status_code << " " << r.body;
  }
  core::ProxyStats stats = proxy_->stats();
  net::HttpRequest scrape;
  scrape.path = "/metrics";
  std::string text = proxy_->Handle(scrape).body;
  EXPECT_NE(text.find("fnproxy_requests_total " +
                      std::to_string(stats.requests)),
            std::string::npos);
  EXPECT_NE(text.find("fnproxy_cache_outcomes_total{outcome=\"miss\"} " +
                      std::to_string(stats.misses)),
            std::string::npos);
  EXPECT_NE(text.find("fnproxy_origin_requests_total{endpoint=\"form\"} " +
                      std::to_string(stats.origin_form_requests)),
            std::string::npos);
}

TEST_F(ObsEndpointTest, TraceEndpointReturnsSpanTrees) {
  ASSERT_TRUE(proxy_->Handle(Radial(190.0, 35.0, 20.0)).ok());
  ASSERT_TRUE(proxy_->Handle(Radial(190.0, 35.0, 20.0)).ok());

  net::HttpRequest get_traces;
  get_traces.path = "/proxy/trace";
  get_traces.query_params["last"] = "1";
  net::HttpResponse response = proxy_->Handle(get_traces);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.content_type, "application/json");
  const std::string& body = response.body;
  EXPECT_EQ(body.front(), '[');
  // The newest trace is the exact hit: cache_lookup but no origin trip.
  EXPECT_NE(body.find("\"trace_id\":1"), std::string::npos);
  EXPECT_EQ(body.find("\"trace_id\":0"), std::string::npos);
  EXPECT_NE(body.find("\"name\":\"request\""), std::string::npos);
  EXPECT_NE(body.find("\"name\":\"template_match\""), std::string::npos);
  EXPECT_NE(body.find("\"name\":\"cache_lookup\""), std::string::npos);
  EXPECT_NE(body.find("\"relation\":\"equal\""), std::string::npos);
  EXPECT_EQ(body.find("\"name\":\"origin_roundtrip\""), std::string::npos);

  net::HttpRequest bad;
  bad.path = "/proxy/trace";
  bad.query_params["last"] = "nope";
  EXPECT_EQ(proxy_->Handle(bad).status_code, 400);
}

TEST_F(ObsEndpointTest, TraceSinkReceivesCompletedTraces) {
  class CountingSink : public TraceSink {
   public:
    void Consume(const QueryTrace& trace) override {
      ++consumed;
      last_spans = trace.spans().size();
    }
    int consumed = 0;
    size_t last_spans = 0;
  };
  CountingSink sink;
  core::ProxyConfig proxy_config;
  proxy_config.mode = core::CachingMode::kActiveFull;
  proxy_config.trace_sink = &sink;
  auto proxy = std::make_unique<core::FunctionProxy>(
      proxy_config, templates_.get(), channel_.get(), clock_.get());
  ASSERT_TRUE(proxy->Handle(Radial(191.0, 36.0, 18.0)).ok());
  EXPECT_EQ(sink.consumed, 1);
  EXPECT_GE(sink.last_spans, 3u);  // request, template_match, cache_lookup...
}

}  // namespace
}  // namespace fnproxy::obs
