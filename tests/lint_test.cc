// Golden-diagnostic tests for the template linter: one fixture per check-id
// under tests/lint_fixtures/, plus the guarantee that every shipped example
// template in examples/templates/ lints clean.
#include "lint/lint.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace fnproxy::lint {
namespace {

#ifndef FNPROXY_LINT_FIXTURE_DIR
#error "FNPROXY_LINT_FIXTURE_DIR must be defined by the build"
#endif
#ifndef FNPROXY_EXAMPLE_TEMPLATE_DIR
#error "FNPROXY_EXAMPLE_TEMPLATE_DIR must be defined by the build"
#endif

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

LintResult LintFixture(const std::string& name) {
  const std::string path =
      std::string(FNPROXY_LINT_FIXTURE_DIR) + "/" + name;
  return LintTemplateFile(name, ReadFileOrDie(path));
}

/// One expected diagnostic: exact line, severity and check-id, plus a
/// substring the message must contain.
struct Expected {
  size_t line;
  Severity severity;
  std::string check_id;
  std::string message_part;
};

void ExpectDiagnostics(const std::string& fixture,
                       const std::vector<Expected>& expected) {
  SCOPED_TRACE(fixture);
  const LintResult result = LintFixture(fixture);
  ASSERT_EQ(result.diagnostics.size(), expected.size())
      << result.FormatDiagnostics();
  for (size_t i = 0; i < expected.size(); ++i) {
    SCOPED_TRACE("diagnostic #" + std::to_string(i));
    const Diagnostic& got = result.diagnostics[i];
    EXPECT_EQ(got.line, expected[i].line);
    EXPECT_EQ(got.severity, expected[i].severity);
    EXPECT_EQ(got.check_id, expected[i].check_id);
    EXPECT_NE(got.message.find(expected[i].message_part), std::string::npos)
        << "message '" << got.message << "' does not contain '"
        << expected[i].message_part << "'";
  }
}

TEST(LintDiagnosticTest, ToStringFormat) {
  Diagnostic d;
  d.file = "templates/radial.xml";
  d.line = 7;
  d.severity = Severity::kError;
  d.check_id = "unbound-param";
  d.message = "geometry expression references $r";
  EXPECT_EQ(d.ToString(),
            "templates/radial.xml:7: error [unbound-param] geometry "
            "expression references $r");
  d.severity = Severity::kWarning;
  EXPECT_EQ(d.ToString(),
            "templates/radial.xml:7: warning [unbound-param] geometry "
            "expression references $r");
}

TEST(LintDiagnosticTest, HasErrorsDistinguishesSeverity) {
  LintResult result;
  EXPECT_FALSE(result.HasErrors());
  result.diagnostics.push_back({"f", 1, 0, Severity::kWarning, "x", "m"});
  EXPECT_FALSE(result.HasErrors());
  result.diagnostics.push_back({"f", 1, 0, Severity::kError, "x", "m"});
  EXPECT_TRUE(result.HasErrors());
}

TEST(LintFixtureTest, ParseError) {
  ExpectDiagnostics(
      "parse_error.xml",
      {{6, Severity::kError, "parse-error", "<CenterCoordinate> expression"},
       // The malformed expression contributes no parameter uses, so $ra is
       // also reported as unused.
       {3, Severity::kWarning, "unused-param", "$ra"}});
}

TEST(LintFixtureTest, ShapeDims) {
  ExpectDiagnostics("shape_dims.xml",
                    {{6, Severity::kError, "shape-dims",
                      "lists 2 expressions but <NumDimensions> is 3"}});
}

TEST(LintFixtureTest, UnboundParam) {
  ExpectDiagnostics(
      "unbound_param.xml",
      {{7, Severity::kError, "unbound-param", "$radius_arcmin"},
       {3, Severity::kWarning, "unused-param", "$radius"}});
}

TEST(LintFixtureTest, UnusedParam) {
  ExpectDiagnostics("unused_param.xml",
                    {{3, Severity::kWarning, "unused-param", "$magnitude"}});
}

TEST(LintFixtureTest, RadiusNonpositive) {
  ExpectDiagnostics("radius_nonpositive.xml",
                    {{7, Severity::kError, "radius-nonpositive",
                      "negative constant"}});
}

TEST(LintFixtureTest, SqlParamUndeclared) {
  ExpectDiagnostics("sql_param_undeclared.xml",
                    {{5, Severity::kError, "sql-param-undeclared", "$radius"}});
}

TEST(LintFixtureTest, SqlParamUnused) {
  ExpectDiagnostics("sql_param_unused.xml",
                    {{4, Severity::kWarning, "sql-param-unused", "$limit"}});
}

TEST(LintFixtureTest, CallArity) {
  ExpectDiagnostics("call_arity.xml",
                    {{15, Severity::kError, "call-arity",
                      "called with 2 arguments but its function template "
                      "declares 3 parameters"}});
}

TEST(LintFixtureTest, DisjointRegions) {
  const LintResult result = LintFixture("disjoint_regions.xml");
  ASSERT_EQ(result.diagnostics.size(), 1u) << result.FormatDiagnostics();
  const Diagnostic& got = result.diagnostics[0];
  EXPECT_EQ(got.severity, Severity::kWarning);
  EXPECT_EQ(got.check_id, "disjoint-regions");
  EXPECT_NE(got.message.find("pairwise disjoint"), std::string::npos);
  EXPECT_FALSE(result.HasErrors());
}

TEST(LintFixtureTest, CleanTemplateSetHasNoDiagnostics) {
  const LintResult result = LintFixture("clean.xml");
  EXPECT_TRUE(result.diagnostics.empty()) << result.FormatDiagnostics();
}

TEST(LintFixtureTest, NonXmlContentIsOneParseError) {
  const LintResult result = LintTemplateFile("garbage.xml", "not xml at all");
  ASSERT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(result.diagnostics[0].check_id, "parse-error");
  EXPECT_TRUE(result.HasErrors());
}

TEST(LintFixtureTest, UnexpectedRootIsOneParseError) {
  const LintResult result =
      LintTemplateFile("table.xml", "<Table><Row/></Table>");
  ASSERT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(result.diagnostics[0].check_id, "parse-error");
  EXPECT_NE(result.diagnostics[0].message.find("unexpected root element"),
            std::string::npos);
}

/// Every template file shipped under examples/templates/ must lint clean —
/// they are the reference forms users copy, and CI runs fnproxy_lint over
/// the same directory.
TEST(LintExamplesTest, ShippedExampleTemplatesLintClean) {
  size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(
           FNPROXY_EXAMPLE_TEMPLATE_DIR)) {
    if (entry.path().extension() != ".xml") continue;
    ++files;
    SCOPED_TRACE(entry.path().string());
    const LintResult result = LintTemplateFile(
        entry.path().filename().string(), ReadFileOrDie(entry.path().string()));
    EXPECT_TRUE(result.diagnostics.empty()) << result.FormatDiagnostics();
  }
  EXPECT_GE(files, 4u) << "expected the shipped example templates";
}

}  // namespace
}  // namespace fnproxy::lint
