#include <gtest/gtest.h>

#include "core/cache_store.h"
#include "geometry/hypersphere.h"
#include "index/array_index.h"
#include "index/rtree.h"

namespace fnproxy::core {
namespace {

using geometry::Hypersphere;
using sql::Schema;
using sql::Table;
using sql::Value;
using sql::ValueType;

Table MakeResult(size_t rows) {
  Table table(Schema({{"objID", ValueType::kInt}, {"x", ValueType::kDouble}}));
  for (size_t i = 0; i < rows; ++i) {
    table.AddRow({Value::Int(static_cast<int64_t>(i)),
                  Value::Double(static_cast<double>(i) * 0.5)});
  }
  return table;
}

CacheEntry MakeEntry(double center, double radius, size_t rows,
                     const std::string& template_id = "radial") {
  CacheEntry entry;
  entry.template_id = template_id;
  entry.nonspatial_fingerprint = "";
  entry.param_fingerprint = "c=" + std::to_string(center);
  entry.region =
      std::make_unique<Hypersphere>(geometry::Point{center, 0.0}, radius);
  entry.result = MakeResult(rows);
  return entry;
}

std::unique_ptr<CacheStore> MakeStore(size_t max_bytes,
                                      ReplacementPolicy policy =
                                          ReplacementPolicy::kLru) {
  return std::make_unique<CacheStore>(
      std::make_unique<index::ArrayRegionIndex>(), max_bytes, policy);
}

TEST(CacheStoreTest, InsertFindRemove) {
  auto store = MakeStore(0);
  uint64_t id = store->Insert(MakeEntry(0, 1, 10));
  ASSERT_NE(id, 0u);
  std::shared_ptr<const CacheEntry> entry = store->Find(id);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->result.num_rows(), 10u);
  EXPECT_EQ(store->num_entries(), 1u);
  EXPECT_GT(store->bytes_used(), 0u);
  EXPECT_TRUE(store->Remove(id));
  EXPECT_FALSE(store->Remove(id));
  EXPECT_EQ(store->num_entries(), 0u);
  EXPECT_EQ(store->bytes_used(), 0u);
}

TEST(CacheStoreTest, CandidatesUseBoundingBoxes) {
  auto store = MakeStore(0);
  uint64_t near = store->Insert(MakeEntry(0, 1, 5));
  uint64_t far = store->Insert(MakeEntry(100, 1, 5));
  auto hits = store->Candidates(
      geometry::Hyperrectangle({-2.0, -2.0}, {2.0, 2.0}));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], near);
  (void)far;
}

TEST(CacheStoreTest, ByteBudgetEnforced) {
  auto store = MakeStore(0);
  uint64_t id = store->Insert(MakeEntry(0, 1, 100));
  size_t one_entry_bytes = store->Find(id)->bytes;
  store->Remove(id);

  auto limited = MakeStore(one_entry_bytes * 3);
  for (int i = 0; i < 10; ++i) {
    limited->Insert(MakeEntry(i * 10.0, 1, 100));
    EXPECT_LE(limited->bytes_used(), limited->max_bytes());
  }
  EXPECT_LE(limited->num_entries(), 3u);
  EXPECT_GT(limited->evictions(), 0u);
}

TEST(CacheStoreTest, OversizedEntryNotCached) {
  auto store = MakeStore(100);  // Tiny budget.
  uint64_t id = store->Insert(MakeEntry(0, 1, 1000));
  EXPECT_EQ(id, 0u);
  EXPECT_EQ(store->num_entries(), 0u);
}

TEST(CacheStoreTest, LruEvictsLeastRecentlyTouched) {
  auto probe = MakeStore(0);
  uint64_t probe_id = probe->Insert(MakeEntry(0, 1, 50));
  size_t entry_bytes = probe->Find(probe_id)->bytes;

  auto store = MakeStore(entry_bytes * 2 + entry_bytes / 2);
  uint64_t a = store->Insert(MakeEntry(0, 1, 50));
  uint64_t b = store->Insert(MakeEntry(10, 1, 50));
  store->Touch(a, 100);
  store->Touch(b, 200);
  store->Touch(a, 300);  // a is now more recent than b.
  store->Insert(MakeEntry(20, 1, 50));
  EXPECT_NE(store->Find(a), nullptr);
  EXPECT_EQ(store->Find(b), nullptr);  // b evicted.
}

TEST(CacheStoreTest, LfuEvictsLeastFrequentlyUsed) {
  auto probe = MakeStore(0);
  size_t entry_bytes = probe->Find(probe->Insert(MakeEntry(0, 1, 50)))->bytes;

  auto store = MakeStore(entry_bytes * 2 + entry_bytes / 2,
                         ReplacementPolicy::kLfu);
  uint64_t a = store->Insert(MakeEntry(0, 1, 50));
  uint64_t b = store->Insert(MakeEntry(10, 1, 50));
  for (int i = 0; i < 5; ++i) store->Touch(a, i);
  store->Touch(b, 10);
  store->Insert(MakeEntry(20, 1, 50));
  EXPECT_NE(store->Find(a), nullptr);
  EXPECT_EQ(store->Find(b), nullptr);
}

TEST(CacheStoreTest, SizeAdjustedPrefersEvictingLargeColdEntries) {
  auto probe = MakeStore(0);
  size_t small_bytes = probe->Find(probe->Insert(MakeEntry(0, 1, 10)))->bytes;
  size_t large_bytes =
      probe->Find(probe->Insert(MakeEntry(50, 1, 500)))->bytes;

  auto store = MakeStore(small_bytes + large_bytes + small_bytes / 2,
                         ReplacementPolicy::kSizeAdjusted);
  uint64_t small_id = store->Insert(MakeEntry(0, 1, 10));
  uint64_t large_id = store->Insert(MakeEntry(10, 1, 500));
  store->Touch(small_id, 1);
  store->Touch(large_id, 1);
  store->Insert(MakeEntry(20, 1, 10));
  EXPECT_NE(store->Find(small_id), nullptr);
  EXPECT_EQ(store->Find(large_id), nullptr);
}

TEST(CacheStoreTest, DescriptionStaysInSyncThroughEviction) {
  auto probe = MakeStore(0);
  size_t entry_bytes = probe->Find(probe->Insert(MakeEntry(0, 1, 20)))->bytes;
  auto store = MakeStore(entry_bytes * 4);
  for (int i = 0; i < 20; ++i) {
    store->Insert(MakeEntry(i * 10.0, 1, 20));
  }
  // Every candidate returned by the description must still exist.
  auto hits = store->Candidates(
      geometry::Hyperrectangle({-1000.0, -1000.0}, {1000.0, 1000.0}));
  EXPECT_EQ(hits.size(), store->num_entries());
  for (uint64_t id : hits) {
    EXPECT_NE(store->Find(id), nullptr);
  }
}

TEST(CacheStoreTest, WorksWithRTreeDescription) {
  CacheStore store(std::make_unique<index::RTreeIndex>(), 0,
                   ReplacementPolicy::kLru);
  std::vector<uint64_t> ids;
  for (int i = 0; i < 50; ++i) {
    ids.push_back(store.Insert(MakeEntry(i * 5.0, 1, 5)));
  }
  auto hits = store.Candidates(geometry::Hyperrectangle({-1.5, -1.5}, {6.0, 1.5}));
  EXPECT_EQ(hits.size(), 2u);  // Centers 0 and 5.
  for (uint64_t id : ids) EXPECT_TRUE(store.Remove(id));
  EXPECT_EQ(store.num_entries(), 0u);
}

TEST(CacheStoreTest, AllIdsEnumerates) {
  auto store = MakeStore(0);
  store->Insert(MakeEntry(0, 1, 5));
  store->Insert(MakeEntry(10, 1, 5));
  EXPECT_EQ(store->AllIds().size(), 2u);
}

TEST(ReplacementPolicyTest, Names) {
  EXPECT_STREQ(ReplacementPolicyName(ReplacementPolicy::kLru), "LRU");
  EXPECT_STREQ(ReplacementPolicyName(ReplacementPolicy::kLfu), "LFU");
  EXPECT_STREQ(ReplacementPolicyName(ReplacementPolicy::kSizeAdjusted),
               "size-adjusted");
}

}  // namespace
}  // namespace fnproxy::core
