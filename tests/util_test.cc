#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/clock.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/status.h"
#include "util/string_util.h"

namespace fnproxy::util {
namespace {

TEST(StatusTest, OkByDefault) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad input");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad input");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kOutOfRange,
        StatusCode::kParseError, StatusCode::kUnsupported,
        StatusCode::kInternal, StatusCode::kResourceExhausted}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result = Status::NotFound("nope");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

StatusOr<int> ParsePositive(std::string_view s) {
  FNPROXY_ASSIGN_OR_RETURN(int64_t v, ParseInt64(s));
  if (v <= 0) return Status::OutOfRange("not positive");
  return static_cast<int>(v);
}

TEST(StatusOrTest, AssignOrReturnPropagates) {
  EXPECT_TRUE(ParsePositive("5").ok());
  EXPECT_EQ(ParsePositive("x").status().code(), StatusCode::kParseError);
  EXPECT_EQ(ParsePositive("-3").status().code(), StatusCode::kOutOfRange);
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, TrimRemovesEdgesOnly) {
  EXPECT_EQ(Trim("  a b  "), "a b");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \t\n"), "");
}

TEST(StringUtilTest, JoinRoundTripsSplit) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, "-"), "x-y-z");
  EXPECT_EQ(Join({}, "-"), "");
}

TEST(StringUtilTest, CaseHelpers) {
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_EQ(ToUpper("AbC"), "ABC");
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_FALSE(EqualsIgnoreCase("SELECT", "selec"));
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("dbo.fGet", "dbo."));
  EXPECT_FALSE(StartsWith("db", "dbo."));
  EXPECT_TRUE(EndsWith("result.xml", ".xml"));
  EXPECT_FALSE(EndsWith("xml", ".xml"));
}

TEST(StringUtilTest, ParseInt64Strict) {
  EXPECT_EQ(*ParseInt64("123"), 123);
  EXPECT_EQ(*ParseInt64(" -7 "), -7);
  EXPECT_FALSE(ParseInt64("12x").ok());
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("1.5").ok());
}

TEST(StringUtilTest, ParseDoubleStrict) {
  EXPECT_DOUBLE_EQ(*ParseDouble("1.5"), 1.5);
  EXPECT_DOUBLE_EQ(*ParseDouble("-2e3"), -2000.0);
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.5x").ok());
}

TEST(StringUtilTest, FormatDoubleRoundTrips) {
  for (double v : {0.0, 1.0, -1.5, 3.141592653589793, 1e-9, 123456.789,
                   0.1 + 0.2}) {
    EXPECT_DOUBLE_EQ(*ParseDouble(FormatDouble(v)), v) << v;
  }
}

TEST(RandomTest, DeterministicForSeed) {
  Random a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1), b(2);
  bool differs = false;
  for (int i = 0; i < 10 && !differs; ++i) {
    differs = a.NextUint64() != b.NextUint64();
  }
  EXPECT_TRUE(differs);
}

TEST(RandomTest, BoundedDrawsInRange) {
  Random rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextUint64(10), 10u);
    double d = rng.NextDouble(2.0, 5.0);
    EXPECT_GE(d, 2.0);
    EXPECT_LT(d, 5.0);
  }
}

TEST(RandomTest, GaussianMomentsPlausible) {
  Random rng(11);
  double sum = 0, sum_sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(ZipfTest, RankZeroMostPopular) {
  Random rng(5);
  ZipfDistribution zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[99]);
}

TEST(ZipfTest, ThetaZeroIsUniformish) {
  Random rng(6);
  ZipfDistribution zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(rng)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.02);
  }
}

TEST(SimulatedClockTest, AdvancesMonotonically) {
  SimulatedClock clock;
  EXPECT_EQ(clock.NowMicros(), 0);
  clock.Advance(100);
  clock.Advance(0);
  clock.Advance(-5);  // Negative advances are ignored.
  EXPECT_EQ(clock.NowMicros(), 100);
  clock.Reset();
  EXPECT_EQ(clock.NowMicros(), 0);
}

TEST(StopwatchTest, MeasuresNonNegative) {
  Stopwatch sw;
  EXPECT_GE(sw.ElapsedMicros(), 0);
}

TEST(LoggingTest, SinkReceivesMessagesAtOrAboveLevel) {
  static std::vector<std::string> captured;
  captured.clear();
  SetLogSink([](LogLevel, const std::string& msg) { captured.push_back(msg); });
  SetLogLevel(LogLevel::kWarning);
  FNPROXY_LOG(kInfo) << "dropped";
  FNPROXY_LOG(kError) << "kept " << 42;
  SetLogSink(nullptr);
  SetLogLevel(LogLevel::kWarning);
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0], "kept 42");
}

}  // namespace
}  // namespace fnproxy::util
