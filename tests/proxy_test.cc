#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "catalog/sky_catalog.h"
#include "core/proxy.h"
#include "net/network.h"
#include "server/sky_functions.h"
#include "server/web_app.h"
#include "sql/table_xml.h"
#include "workload/experiment.h"

namespace fnproxy::core {
namespace {

using geometry::RegionRelation;
using net::HttpRequest;
using net::HttpResponse;
using sql::Table;
using sql::Value;

/// Canonical multiset representation of a result table for comparisons that
/// ignore row order.
std::multiset<std::string> RowSet(const Table& table) {
  std::multiset<std::string> rows;
  for (const auto& row : table.rows()) {
    std::string key;
    for (const Value& v : row) {
      key += v.ToSqlLiteral();
      key += '|';
    }
    rows.insert(std::move(key));
  }
  return rows;
}

HttpRequest RadialRequest(double ra, double dec, double radius) {
  HttpRequest request;
  request.path = "/radial";
  request.query_params["ra"] = std::to_string(ra);
  request.query_params["dec"] = std::to_string(dec);
  request.query_params["radius"] = std::to_string(radius);
  return request;
}

/// Shared origin environment (catalog + database + templates), fresh
/// proxy per test.
class ProxyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog::SkyCatalogConfig config;
    config.num_objects = 15000;
    config.num_clusters = 6;
    config.seed = 99;
    // Small dense footprint so 10-40 arcmin cones return tens of tuples.
    config.ra_min = 175.0;
    config.ra_max = 205.0;
    config.dec_min = 25.0;
    config.dec_max = 50.0;
    db_ = new server::Database();
    db_->AddTable("PhotoPrimary", catalog::GenerateSkyCatalog(config));
    grid_ = new server::SkyGrid(db_->FindTable("PhotoPrimary"));
    db_->RegisterTableFunction(server::MakeGetNearbyObjEq(grid_));
    db_->scalar_functions()->Register(
        "fPhotoFlags",
        [](const std::vector<Value>& args) -> util::StatusOr<Value> {
          FNPROXY_ASSIGN_OR_RETURN(
              int64_t bit, catalog::PhotoFlagValue(args.at(0).AsString()));
          return Value::Int(bit);
        });
    templates_ = new TemplateRegistry();
    ASSERT_TRUE(templates_
                    ->RegisterFunctionTemplateXml(
                        workload::kNearbyObjEqTemplateXml)
                    .ok());
    auto qt = QueryTemplate::Create("radial", "/radial",
                                    workload::kRadialTemplateSql);
    ASSERT_TRUE(qt.ok());
    ASSERT_TRUE(templates_->RegisterQueryTemplate(std::move(*qt)).ok());
  }
  static void TearDownTestSuite() {
    delete templates_;
    delete grid_;
    delete db_;
    templates_ = nullptr;
    grid_ = nullptr;
    db_ = nullptr;
  }

  void SetUp() override {
    clock_ = std::make_unique<util::SimulatedClock>();
    app_ = std::make_unique<server::OriginWebApp>(db_, clock_.get());
    ASSERT_TRUE(app_->RegisterForm("/radial", workload::kRadialTemplateSql).ok());
    channel_ = std::make_unique<net::SimulatedChannel>(
        app_.get(), net::LinkConfig{0.0, 1e9}, clock_.get());
  }

  void MakeProxy(CachingMode mode, bool rtree = false, size_t max_bytes = 0) {
    ProxyConfig config;
    config.mode = mode;
    config.use_rtree_description = rtree;
    config.max_cache_bytes = max_bytes;
    proxy_ = std::make_unique<FunctionProxy>(config, templates_,
                                             channel_.get(), clock_.get());
  }

  /// Expected result straight from the origin (separate app so statistics
  /// of the proxy's channel are unaffected).
  Table Direct(const HttpRequest& request) {
    util::SimulatedClock scratch;
    server::OriginWebApp app(db_, &scratch);
    EXPECT_TRUE(app.RegisterForm("/radial", workload::kRadialTemplateSql).ok());
    HttpResponse response = app.Handle(request);
    EXPECT_TRUE(response.ok()) << response.body;
    auto table = sql::TableFromXml(response.body);
    EXPECT_TRUE(table.ok());
    return std::move(table).value();
  }

  Table ThroughProxy(const HttpRequest& request) {
    HttpResponse response = proxy_->Handle(request);
    EXPECT_TRUE(response.ok()) << response.body;
    auto table = sql::TableFromXml(response.body);
    EXPECT_TRUE(table.ok()) << table.status().ToString();
    return std::move(table).value();
  }

  static server::Database* db_;
  static server::SkyGrid* grid_;
  static TemplateRegistry* templates_;

  std::unique_ptr<util::SimulatedClock> clock_;
  std::unique_ptr<server::OriginWebApp> app_;
  std::unique_ptr<net::SimulatedChannel> channel_;
  std::unique_ptr<FunctionProxy> proxy_;
};

server::Database* ProxyTest::db_ = nullptr;
server::SkyGrid* ProxyTest::grid_ = nullptr;
TemplateRegistry* ProxyTest::templates_ = nullptr;

/// The canonical probe set: base query, exact repeat, contained, zoom-out
/// (contains), overlapping, disjoint.
std::vector<HttpRequest> ProbeSequence() {
  return {
      RadialRequest(180.0, 30.0, 20.0),  // Miss (fills cache).
      RadialRequest(180.0, 30.0, 20.0),  // Exact repeat.
      RadialRequest(180.05, 30.0, 8.0),  // Contained.
      RadialRequest(180.0, 30.0, 35.0),  // Contains the first (zoom out).
      RadialRequest(180.4, 30.0, 20.0),  // Overlaps.
      RadialRequest(200.0, 45.0, 15.0),  // Disjoint.
      RadialRequest(180.0, 30.0, 20.0),  // Exact repeat again.
  };
}

/// Transparency: every scheme returns exactly the origin's answer.
class ProxyTransparencyTest
    : public ProxyTest,
      public ::testing::WithParamInterface<CachingMode> {};

TEST_P(ProxyTransparencyTest, ResultsMatchOriginForAllRelationships) {
  MakeProxy(GetParam());
  for (const HttpRequest& request : ProbeSequence()) {
    Table expected = Direct(request);
    Table actual = ThroughProxy(request);
    EXPECT_EQ(RowSet(actual), RowSet(expected))
        << "mode=" << CachingModeName(GetParam())
        << " url=" << request.ToUrl() << " (expected " << expected.num_rows()
        << " rows, got " << actual.num_rows() << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, ProxyTransparencyTest,
    ::testing::Values(CachingMode::kNoCache, CachingMode::kPassive,
                      CachingMode::kActiveFull,
                      CachingMode::kActiveRegionContainment,
                      CachingMode::kActiveContainmentOnly),
    [](const ::testing::TestParamInfo<CachingMode>& info) {
      std::string name = CachingModeName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST_F(ProxyTest, TransparencyWithRTreeDescription) {
  MakeProxy(CachingMode::kActiveFull, /*rtree=*/true);
  for (const HttpRequest& request : ProbeSequence()) {
    EXPECT_EQ(RowSet(ThroughProxy(request)), RowSet(Direct(request)))
        << request.ToUrl();
  }
}

TEST_F(ProxyTest, ExactHitAvoidsOrigin) {
  MakeProxy(CachingMode::kActiveFull);
  HttpRequest request = RadialRequest(180.0, 30.0, 20.0);
  ThroughProxy(request);
  uint64_t origin_before = channel_->total_requests();
  ThroughProxy(request);
  EXPECT_EQ(channel_->total_requests(), origin_before);
  EXPECT_EQ(proxy_->stats().exact_hits, 1u);
  EXPECT_EQ(proxy_->stats().records.back().status, RegionRelation::kEqual);
  EXPECT_EQ(proxy_->stats().records.back().CacheEfficiency(), 1.0);
}

TEST_F(ProxyTest, ContainedQueryAnsweredLocally) {
  MakeProxy(CachingMode::kActiveFull);
  ThroughProxy(RadialRequest(180.0, 30.0, 20.0));
  uint64_t origin_before = channel_->total_requests();
  Table result = ThroughProxy(RadialRequest(180.05, 30.0, 8.0));
  EXPECT_EQ(channel_->total_requests(), origin_before);
  EXPECT_EQ(proxy_->stats().containment_hits, 1u);
  // The contained result is not cached again (paper §3.2 case b).
  EXPECT_EQ(proxy_->cache().num_entries(), 1u);
}

TEST_F(ProxyTest, RegionContainmentCoalescesCache) {
  MakeProxy(CachingMode::kActiveRegionContainment);
  ThroughProxy(RadialRequest(180.0, 30.0, 10.0));
  ThroughProxy(RadialRequest(180.3, 30.0, 10.0));
  EXPECT_EQ(proxy_->cache().num_entries(), 2u);
  uint64_t sql_before = proxy_->stats().origin_sql_requests;
  // Zoom out over both cached cones.
  ThroughProxy(RadialRequest(180.15, 30.0, 40.0));
  EXPECT_EQ(proxy_->stats().origin_sql_requests, sql_before + 1);
  EXPECT_EQ(proxy_->stats().region_containments, 1u);
  // Subsumed entries removed, merged entry cached.
  EXPECT_EQ(proxy_->cache().num_entries(), 1u);
  // The merged entry now serves exact repeats of the big query.
  uint64_t origin_before = channel_->total_requests();
  ThroughProxy(RadialRequest(180.15, 30.0, 40.0));
  EXPECT_EQ(channel_->total_requests(), origin_before);
}

TEST_F(ProxyTest, OverlapHandledOnlyInFullMode) {
  // Full semantic caching ships a remainder query for partial overlap.
  MakeProxy(CachingMode::kActiveFull);
  ThroughProxy(RadialRequest(180.0, 30.0, 20.0));
  ThroughProxy(RadialRequest(180.4, 30.0, 20.0));
  EXPECT_EQ(proxy_->stats().overlaps_handled, 1u);
  EXPECT_EQ(proxy_->stats().origin_sql_requests, 1u);
  EXPECT_GT(proxy_->stats().records.back().tuples_from_cache, 0u);

  // The region-containment variant does not.
  SetUp();
  MakeProxy(CachingMode::kActiveRegionContainment);
  ThroughProxy(RadialRequest(180.0, 30.0, 20.0));
  ThroughProxy(RadialRequest(180.4, 30.0, 20.0));
  EXPECT_EQ(proxy_->stats().overlaps_handled, 0u);
  EXPECT_EQ(proxy_->stats().origin_sql_requests, 0u);
  EXPECT_EQ(proxy_->stats().misses, 2u);
}

TEST_F(ProxyTest, ContainmentOnlyModeSkipsRegionContainment) {
  MakeProxy(CachingMode::kActiveContainmentOnly);
  ThroughProxy(RadialRequest(180.0, 30.0, 10.0));
  ThroughProxy(RadialRequest(180.0, 30.0, 35.0));  // Contains the cached one.
  EXPECT_EQ(proxy_->stats().region_containments, 0u);
  EXPECT_EQ(proxy_->stats().origin_sql_requests, 0u);
  // Both results cached; the subsumed one is not evicted.
  EXPECT_EQ(proxy_->cache().num_entries(), 2u);
  // But plain containment still works.
  uint64_t origin_before = channel_->total_requests();
  ThroughProxy(RadialRequest(180.0, 30.0, 8.0));
  EXPECT_EQ(channel_->total_requests(), origin_before);
  EXPECT_EQ(proxy_->stats().containment_hits, 1u);
}

TEST_F(ProxyTest, PassiveCacheExactUrlOnly) {
  MakeProxy(CachingMode::kPassive);
  ThroughProxy(RadialRequest(180.0, 30.0, 20.0));
  uint64_t origin_before = channel_->total_requests();
  // Exact repeat: hit.
  ThroughProxy(RadialRequest(180.0, 30.0, 20.0));
  EXPECT_EQ(channel_->total_requests(), origin_before);
  // Contained query: passive caching cannot use it.
  ThroughProxy(RadialRequest(180.05, 30.0, 8.0));
  EXPECT_EQ(channel_->total_requests(), origin_before + 1);
}

TEST_F(ProxyTest, NoCacheModeAlwaysForwards) {
  MakeProxy(CachingMode::kNoCache);
  HttpRequest request = RadialRequest(180.0, 30.0, 20.0);
  ThroughProxy(request);
  ThroughProxy(request);
  EXPECT_EQ(channel_->total_requests(), 2u);
  EXPECT_EQ(proxy_->stats().records.back().CacheEfficiency(), 0.0);
}

TEST_F(ProxyTest, NonTemplatePathTunneled) {
  MakeProxy(CachingMode::kActiveFull);
  HttpRequest request;
  request.path = "/sql";
  request.query_params["q"] =
      "SELECT objID FROM fGetNearbyObjEq(180.0, 30.0, 5.0)";
  HttpResponse response = proxy_->Handle(request);
  EXPECT_TRUE(response.ok());
  EXPECT_EQ(channel_->total_requests(), 1u);
  EXPECT_FALSE(proxy_->stats().records.back().handled_by_template);
}

TEST_F(ProxyTest, SqlFacilityDisabledFallsBackToOriginalQuery) {
  app_->set_sql_endpoint_enabled(false);
  MakeProxy(CachingMode::kActiveFull);
  ThroughProxy(RadialRequest(180.0, 30.0, 20.0));
  HttpRequest overlapping = RadialRequest(180.4, 30.0, 20.0);
  Table expected = Direct(overlapping);
  Table actual = ThroughProxy(overlapping);
  EXPECT_EQ(RowSet(actual), RowSet(expected));
  EXPECT_EQ(proxy_->stats().overlaps_handled, 0u);
}

TEST_F(ProxyTest, CacheByteLimitRespected) {
  MakeProxy(CachingMode::kActiveFull, false, 64 * 1024);
  for (int i = 0; i < 8; ++i) {
    ThroughProxy(RadialRequest(170.0 + i * 3.0, 30.0, 20.0));
    EXPECT_LE(proxy_->cache().bytes_used(), 64u * 1024u);
  }
}

TEST_F(ProxyTest, CacheEfficiencyAccountsPartialAnswers) {
  MakeProxy(CachingMode::kActiveFull);
  ThroughProxy(RadialRequest(180.0, 30.0, 20.0));
  ThroughProxy(RadialRequest(180.4, 30.0, 20.0));  // Overlap.
  const QueryRecord record = proxy_->stats().records.back();
  ASSERT_GT(record.tuples_total, 0u);
  EXPECT_GT(record.tuples_from_cache, 0u);
  EXPECT_LT(record.tuples_from_cache, record.tuples_total);
  double eff = record.CacheEfficiency();
  EXPECT_GT(eff, 0.0);
  EXPECT_LT(eff, 1.0);
}

TEST_F(ProxyTest, StatsAverageCacheEfficiency) {
  MakeProxy(CachingMode::kActiveFull);
  ThroughProxy(RadialRequest(180.0, 30.0, 20.0));  // Miss -> 0.
  ThroughProxy(RadialRequest(180.0, 30.0, 20.0));  // Exact -> 1.
  double avg = proxy_->stats().AverageCacheEfficiency();
  EXPECT_NEAR(avg, 0.5, 1e-9);
}

TEST_F(ProxyTest, VirtualClockAdvancesMoreOnMissThanHit) {
  MakeProxy(CachingMode::kActiveFull);
  int64_t t0 = clock_->NowMicros();
  ThroughProxy(RadialRequest(180.0, 30.0, 20.0));
  int64_t miss_cost = clock_->NowMicros() - t0;
  t0 = clock_->NowMicros();
  ThroughProxy(RadialRequest(180.0, 30.0, 20.0));
  int64_t hit_cost = clock_->NowMicros() - t0;
  EXPECT_LT(hit_cost, miss_cost / 2);
}

}  // namespace
}  // namespace fnproxy::core
