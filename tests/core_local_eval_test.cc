#include <gtest/gtest.h>

#include <unordered_set>

#include "core/local_eval.h"
#include "core/region_predicate.h"
#include "geometry/hyperrectangle.h"
#include "geometry/hypersphere.h"
#include "geometry/polytope.h"
#include "sql/eval.h"
#include "sql/parser.h"
#include "sql/printer.h"
#include "util/random.h"

namespace fnproxy::core {
namespace {

using geometry::Hyperrectangle;
using geometry::Hypersphere;
using sql::Row;
using sql::Schema;
using sql::Table;
using sql::Value;
using sql::ValueType;

Table PointsTable(const std::vector<std::pair<double, double>>& points) {
  Table table(Schema({{"id", ValueType::kInt},
                      {"x", ValueType::kDouble},
                      {"y", ValueType::kDouble}}));
  int64_t id = 0;
  for (const auto& [x, y] : points) {
    table.AddRow({Value::Int(id++), Value::Double(x), Value::Double(y)});
  }
  return table;
}

TEST(SelectInRegionTest, FiltersBySphere) {
  Table cached = PointsTable({{0, 0}, {0.5, 0.5}, {3, 3}, {-0.9, 0}});
  Hypersphere region({0, 0}, 1.0);
  auto result = SelectInRegion(cached, region, {"x", "y"});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->table.num_rows(), 3u);
  EXPECT_EQ(result->tuples_scanned, 4u);
}

TEST(SelectInRegionTest, MissingCoordinateColumnIsError) {
  Table cached = PointsTable({{0, 0}});
  Hypersphere region({0, 0}, 1.0);
  EXPECT_FALSE(SelectInRegion(cached, region, {"x", "nope"}).ok());
}

TEST(SelectInRegionTest, EmptyInputEmptyOutput) {
  Table cached = PointsTable({});
  Hypersphere region({0, 0}, 1.0);
  auto result = SelectInRegion(cached, region, {"x", "y"});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->table.num_rows(), 0u);
}

TEST(SelectInRegionTest, SchemaPreserved) {
  Table cached = PointsTable({{0, 0}});
  Hypersphere region({0, 0}, 1.0);
  auto result = SelectInRegion(cached, region, {"x", "y"});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->table.schema().SameColumns(cached.schema()));
}

TEST(MergeDistinctTest, RemovesDuplicates) {
  Table a = PointsTable({{0, 0}, {1, 1}});
  Table b = PointsTable({{1, 1}, {2, 2}});
  // Note: PointsTable assigns ids 0,1 in both, so (1,1) rows differ in id.
  // Use tables with identical full rows instead.
  Table c(a.schema());
  c.AddRow(a.row(0));
  c.AddRow(a.row(1));
  auto merged = MergeDistinct({&a, &c});
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->num_rows(), 2u);
  (void)b;
}

TEST(MergeDistinctTest, DifferentSchemasRejected) {
  Table a = PointsTable({{0, 0}});
  Table b(Schema({{"z", ValueType::kInt}}));
  EXPECT_FALSE(MergeDistinct({&a, &b}).ok());
  EXPECT_FALSE(MergeDistinct({}).ok());
}

TEST(MergeDistinctTest, NearDuplicateRowsKept) {
  Table a = PointsTable({{0, 0}});
  Table b = PointsTable({{0, 1e-12}});
  auto merged = MergeDistinct({&a, &b});
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->num_rows(), 2u);  // Distinct values stay distinct.
}

// Regression for the hash-based dedup rewrite: a duplicate-heavy merge must
// keep exactly the rows the seed's per-row key strings (ToSqlLiteral joined
// on 0x1f) kept, in the same first-occurrence order — including the dedup
// corner cases that identity implies: Int(100000) merges with
// Double(100000.0) (both rendered "100000") while Int(1000000) stays
// distinct from Double(1e6) ("1000000" vs "1e+06"), and +0.0 stays distinct
// from -0.0 ("0" vs "-0").
TEST(MergeDistinctTest, DuplicateHeavyMergeMatchesSeedKeyOracle) {
  Schema schema({{"k", ValueType::kInt}, {"v", ValueType::kDouble}});
  util::Random rng(42);
  Table a(schema);
  Table b(schema);
  // ~70% duplication across parts, plus intra-part repeats.
  for (int i = 0; i < 400; ++i) {
    Row row = {Value::Int(static_cast<int64_t>(rng.NextUint64(50))),
               Value::Double(static_cast<double>(rng.NextUint64(10)))};
    a.AddRow(row);
    if (rng.NextUint64(10) < 7) b.AddRow(row);
    if (rng.NextUint64(4) == 0) a.AddRow(row);
  }
  // Cross-type and signed-zero corner cases.
  a.AddRow({Value::Int(100000), Value::Double(0.0)});
  b.AddRow({Value::Double(100000.0), Value::Double(0.0)});   // Same keys.
  a.AddRow({Value::Int(1000000), Value::Double(1.0)});
  b.AddRow({Value::Double(1e6), Value::Double(1.0)});        // Distinct keys.
  a.AddRow({Value::Int(7), Value::Double(0.0)});
  b.AddRow({Value::Int(7), Value::Double(-0.0)});            // Distinct keys.

  std::unordered_set<std::string> seen;
  Table expected(schema);
  for (const Table* part : {&a, &b}) {
    for (const Row& row : part->rows()) {
      std::string key;
      for (const Value& v : row) {
        key += v.ToSqlLiteral();
        key += '\x1f';
      }
      if (seen.insert(key).second) expected.AddRow(row);
    }
  }

  auto merged = MergeDistinct({&a, &b});
  ASSERT_TRUE(merged.ok());
  ASSERT_EQ(merged->num_rows(), expected.num_rows());
  for (size_t r = 0; r < expected.num_rows(); ++r) {
    for (size_t c = 0; c < 2; ++c) {
      EXPECT_EQ(merged->row(r)[c].ToSqlLiteral(),
                expected.row(r)[c].ToSqlLiteral())
          << "row " << r << " col " << c;
    }
  }
}

TEST(ApplyOrderAndTopTest, SortsAndLimits) {
  Table table = PointsTable({{3, 0}, {1, 0}, {2, 0}});
  auto stmt = sql::ParseSelect("SELECT TOP 2 id, x, y FROM f(1) ORDER BY x");
  ASSERT_TRUE(stmt.ok());
  auto out = ApplyOrderAndTop(table, *stmt);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->num_rows(), 2u);
  EXPECT_DOUBLE_EQ(out->row(0)[1].AsDouble(), 1.0);
  EXPECT_DOUBLE_EQ(out->row(1)[1].AsDouble(), 2.0);
}

TEST(ApplyOrderAndTopTest, DescendingAndNoTop) {
  Table table = PointsTable({{3, 0}, {1, 0}, {2, 0}});
  auto stmt = sql::ParseSelect("SELECT id, x, y FROM f(1) ORDER BY x DESC");
  ASSERT_TRUE(stmt.ok());
  auto out = ApplyOrderAndTop(table, *stmt);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->num_rows(), 3u);
  EXPECT_DOUBLE_EQ(out->row(0)[1].AsDouble(), 3.0);
}

TEST(ApplyOrderAndTopTest, NoOrderNoTopIsIdentity) {
  Table table = PointsTable({{3, 0}, {1, 0}});
  auto stmt = sql::ParseSelect("SELECT id, x, y FROM f(1)");
  ASSERT_TRUE(stmt.ok());
  auto out = ApplyOrderAndTop(table, *stmt);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->num_rows(), 2u);
  EXPECT_DOUBLE_EQ(out->row(0)[1].AsDouble(), 3.0);
}

TEST(ApplyOrderAndTopTest, UnknownOrderColumnRejected) {
  Table table = PointsTable({{1, 0}});
  auto stmt = sql::ParseSelect("SELECT id FROM f(1) ORDER BY zzz");
  ASSERT_TRUE(stmt.ok());
  EXPECT_FALSE(ApplyOrderAndTop(table, *stmt).ok());
}

/// Property: RegionToPredicate agrees with Region::ContainsPoint for random
/// points and all three shapes.
class RegionPredicateTest : public ::testing::TestWithParam<int> {};

TEST_P(RegionPredicateTest, PredicateMatchesGeometry) {
  int shape = GetParam();
  util::Random rng(static_cast<uint64_t>(500 + shape));
  std::unique_ptr<geometry::Region> region;
  switch (shape) {
    case 0:
      region = std::make_unique<Hypersphere>(geometry::Point{0.3, -0.2}, 1.1);
      break;
    case 1:
      region = std::make_unique<Hyperrectangle>(geometry::Point{-1.0, -0.5},
                                                geometry::Point{0.5, 1.5});
      break;
    default: {
      std::vector<geometry::Halfspace> halfspaces = {
          {{-1, 0}, 0.5}, {{0, -1}, 0.5}, {{1, 1}, 1.5}};
      std::vector<geometry::Point> vertices = {
          {-0.5, -0.5}, {2.0, -0.5}, {-0.5, 2.0}};
      region = std::make_unique<geometry::Polytope>(halfspaces, vertices);
    }
  }

  auto predicate = RegionToPredicate(*region, {"x", "y"});
  ASSERT_TRUE(predicate.ok()) << predicate.status().ToString();

  // The printed predicate must also survive a parse round trip (it is
  // shipped inside remainder queries).
  std::string printed = sql::ExprToSql(**predicate);
  auto reparsed = sql::ParseExpression(printed);
  ASSERT_TRUE(reparsed.ok()) << printed;

  sql::ScalarFunctionRegistry registry =
      sql::ScalarFunctionRegistry::WithBuiltins();
  sql::ExprEvaluator evaluator(&registry);
  Schema schema({{"x", ValueType::kDouble}, {"y", ValueType::kDouble}});

  int boundary_skips = 0;
  for (int i = 0; i < 1000; ++i) {
    geometry::Point p = {rng.NextDouble(-3, 3), rng.NextDouble(-3, 3)};
    Row row = {Value::Double(p[0]), Value::Double(p[1])};
    sql::RowBinding binding;
    binding.AddSource("t", &schema, &row);
    auto from_sql = evaluator.EvalPredicate(**reparsed, binding);
    ASSERT_TRUE(from_sql.ok());
    bool from_geometry = region->ContainsPoint(p);
    if (*from_sql != from_geometry) {
      // Allowed only within the geometric epsilon of the boundary.
      ++boundary_skips;
      continue;
    }
  }
  EXPECT_LE(boundary_skips, 2);
}

INSTANTIATE_TEST_SUITE_P(Shapes, RegionPredicateTest,
                         ::testing::Values(0, 1, 2));

TEST(BuildRemainderQueryTest, AppendsNegatedRegionsAndStripsTop) {
  auto stmt = sql::ParseSelect(
      "SELECT TOP 10 id, x, y FROM f(1, 2) WHERE id > 0 ORDER BY x");
  ASSERT_TRUE(stmt.ok());
  Hypersphere hole({0, 0}, 1.0);
  std::vector<const geometry::Region*> excluded = {&hole};
  auto remainder = BuildRemainderQuery(*stmt, excluded, {"x", "y"});
  ASSERT_TRUE(remainder.ok());
  EXPECT_FALSE(remainder->top_n.has_value());
  EXPECT_TRUE(remainder->order_by.empty());
  std::string printed = sql::SelectToSql(*remainder);
  EXPECT_NE(printed.find("NOT"), std::string::npos);
  EXPECT_NE(printed.find("id > 0"), std::string::npos);
  // Re-parses cleanly.
  EXPECT_TRUE(sql::ParseSelect(printed).ok()) << printed;
}

TEST(BuildRemainderQueryTest, NoWhereNoExclusions) {
  auto stmt = sql::ParseSelect("SELECT x FROM f(1)");
  ASSERT_TRUE(stmt.ok());
  auto remainder = BuildRemainderQuery(*stmt, {}, {"x"});
  ASSERT_TRUE(remainder.ok());
  EXPECT_EQ(remainder->where, nullptr);
}

TEST(BuildRemainderQueryTest, DimensionMismatchRejected) {
  auto stmt = sql::ParseSelect("SELECT x FROM f(1)");
  ASSERT_TRUE(stmt.ok());
  Hypersphere hole({0, 0}, 1.0);
  std::vector<const geometry::Region*> excluded = {&hole};
  EXPECT_FALSE(BuildRemainderQuery(*stmt, excluded, {"x"}).ok());
}

}  // namespace
}  // namespace fnproxy::core
