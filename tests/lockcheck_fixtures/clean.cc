// Fixture: the reference locking discipline — every guarded member
// annotated, public entry points EXCLUDES, private helpers REQUIRES, waits
// in predicate loops. Must produce zero diagnostics. Scanned by
// lockcheck_test, never compiled.
#include <condition_variable>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace demo {

class Worker {
 public:
  void Push(int v) EXCLUDES(mu_);
  int Pop() EXCLUDES(mu_);

 private:
  void Drain() REQUIRES(mu_);

  util::Mutex mu_;
  std::condition_variable_any cv_;
  std::vector<int> items_ GUARDED_BY(mu_);
};

void Worker::Push(int v) {
  util::MutexLock lock(mu_);
  items_.push_back(v);
  cv_.notify_one();
}

int Worker::Pop() {
  util::MutexLock lock(mu_);
  while (items_.empty()) {
    cv_.wait(lock);
  }
  int v = items_.back();
  items_.pop_back();
  return v;
}

void Worker::Drain() { items_.clear(); }

}  // namespace demo
