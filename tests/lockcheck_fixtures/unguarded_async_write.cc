// Fixture: a non-atomic member is written inside a lambda handed to
// ThreadPool::Submit without holding any mutex and without a guarding
// capability. Scanned by lockcheck_test, never compiled.
#include "util/thread_pool.h"

namespace demo {

class Publisher {
 public:
  void Start();

 private:
  util::ThreadPool* pool_ = nullptr;
  long published_ = 0;
};

void Publisher::Start() {
  pool_->Submit([this] { published_ += 1; });
}

}  // namespace demo
