// Fixture: two components acquire each other's mutexes in opposite orders
// through cross-component calls — the lock-order graph has the cycle
// A::a_mu_ -> B::b_mu_ -> A::a_mu_. Scanned by lockcheck_test, never
// compiled.
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace demo {

class B;

class A {
 public:
  void Alpha() EXCLUDES(a_mu_);

 private:
  util::Mutex a_mu_;
  int value_ GUARDED_BY(a_mu_) = 0;
  B* peer_ = nullptr;
};

class B {
 public:
  void Beta() EXCLUDES(b_mu_);
  void Gamma() EXCLUDES(b_mu_);

 private:
  util::Mutex b_mu_;
  A* peer_ = nullptr;
};

void A::Alpha() {
  util::MutexLock lock(a_mu_);
  value_ = 1;
  peer_->Beta();
}

void B::Beta() {
  util::MutexLock lock(b_mu_);
}

void B::Gamma() {
  util::MutexLock lock(b_mu_);
  peer_->Alpha();
}

}  // namespace demo
