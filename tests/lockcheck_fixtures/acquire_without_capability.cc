// Fixture: an ACQUIRE() annotation with no capability argument on a type
// that is neither CAPABILITY nor SCOPED_CAPABILITY — the annotation binds
// to `this`, which names no capability, so it is silently meaningless.
// Scanned by lockcheck_test, never compiled.
#include "util/thread_annotations.h"

namespace demo {

class Gate {
 public:
  void Enter() ACQUIRE();
  void Leave();
};

}  // namespace demo
