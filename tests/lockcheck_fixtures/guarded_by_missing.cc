// Fixture: `total_` is written while Counter's own mutex is held but
// carries no GUARDED_BY, so Clang's per-function pass cannot defend its
// other access sites. Scanned by lockcheck_test, never compiled.
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace demo {

class Counter {
 public:
  void Increment() EXCLUDES(mu_);

 private:
  util::Mutex mu_;
  long total_ = 0;
};

void Counter::Increment() {
  util::MutexLock lock(mu_);
  total_ += 1;
}

}  // namespace demo
