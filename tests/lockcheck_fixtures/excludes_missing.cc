// Fixture: a public entry point takes its own mutex but is not annotated
// EXCLUDES(mu_), so a caller already holding the lock deadlocks silently
// instead of failing the build. Scanned by lockcheck_test, never compiled.
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace demo {

class Registry {
 public:
  void Add(int v);

 private:
  util::Mutex mu_;
  int count_ GUARDED_BY(mu_) = 0;
};

void Registry::Add(int v) {
  util::MutexLock lock(mu_);
  count_ += v;
}

}  // namespace demo
