// Fixture: a condition-variable wait with no predicate argument and no
// enclosing loop — a spurious wakeup proceeds with the condition unchecked.
// Scanned by lockcheck_test, never compiled.
#include <condition_variable>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace demo {

class Queue {
 public:
  void WaitNotEmpty() EXCLUDES(mu_);

 private:
  util::Mutex mu_;
  std::condition_variable_any cv_;
  int depth_ GUARDED_BY(mu_) = 0;
};

void Queue::WaitNotEmpty() {
  util::MutexLock lock(mu_);
  cv_.wait(lock);
}

}  // namespace demo
