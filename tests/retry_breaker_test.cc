// Deterministic fault-tolerance machinery: the retry schedule's exact
// virtual-time backoff sequence, the per-attempt timeout clamp, the overall
// deadline cutoff, the circuit breaker's state transitions on the virtual
// clock, and the fault injector's seed-reproducible schedule.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "net/circuit_breaker.h"
#include "net/fault.h"
#include "net/http.h"
#include "net/network.h"
#include "util/clock.h"
#include "util/random.h"

namespace fnproxy {
namespace {

using net::HttpRequest;
using net::HttpResponse;

/// Instant link: zero latency, effectively infinite bandwidth, so the only
/// time charged is what the handler and the retry machinery charge.
net::LinkConfig InstantLink() { return net::LinkConfig{0.0, 1e9}; }

/// Always fails with a 500; optionally charges fixed handler time.
class FailingHandler final : public net::HttpHandler {
 public:
  explicit FailingHandler(util::SimulatedClock* clock,
                          int64_t handler_micros = 0)
      : clock_(clock), handler_micros_(handler_micros) {}

  HttpResponse Handle(const HttpRequest&) override {
    ++calls_;
    if (handler_micros_ > 0) clock_->Advance(handler_micros_);
    return HttpResponse::MakeError(500, "down");
  }

  int calls() const { return calls_; }

 private:
  util::SimulatedClock* clock_;
  int64_t handler_micros_;
  int calls_ = 0;
};

/// Always succeeds; optionally charges fixed handler time.
class HealthyHandler final : public net::HttpHandler {
 public:
  explicit HealthyHandler(util::SimulatedClock* clock,
                          int64_t handler_micros = 0)
      : clock_(clock), handler_micros_(handler_micros) {}

  HttpResponse Handle(const HttpRequest&) override {
    ++calls_;
    if (handler_micros_ > 0) clock_->Advance(handler_micros_);
    HttpResponse response;
    response.body = "<Result rows=\"0\"><Schema/></Result>";
    return response;
  }

  int calls() const { return calls_; }

 private:
  util::SimulatedClock* clock_;
  int64_t handler_micros_;
  int calls_ = 0;
};

/// Replicates SimulatedChannel's decorrelated-jitter draw so the test can
/// predict the exact backoff sequence for a given seed.
int64_t ExpectedBackoff(util::Random& rng, const net::RetryPolicy& policy,
                        int64_t prev) {
  int64_t base = std::max<int64_t>(1, policy.base_backoff_micros);
  int64_t cap = std::max<int64_t>(base, policy.max_backoff_micros);
  int64_t hi = std::max(base, prev * 3);
  uint64_t span = static_cast<uint64_t>(hi - base) + 1;
  int64_t draw = base + static_cast<int64_t>(rng.NextUint64(span));
  return std::min(draw, cap);
}

TEST(RetryPolicyTest, RetryableClassification) {
  EXPECT_TRUE(net::RetryPolicy::Retryable(net::FaultInjector::MakeDrop()));
  EXPECT_TRUE(net::RetryPolicy::Retryable(net::FaultInjector::MakeTimeout()));
  EXPECT_TRUE(
      net::RetryPolicy::Retryable(HttpResponse::MakeError(500, "boom")));
  EXPECT_TRUE(
      net::RetryPolicy::Retryable(HttpResponse::MakeError(503, "busy")));
  EXPECT_FALSE(
      net::RetryPolicy::Retryable(HttpResponse::MakeError(404, "no")));
  HttpResponse ok;
  EXPECT_FALSE(net::RetryPolicy::Retryable(ok));
}

TEST(RetryPolicyTest, ExactBackoffSequenceOnVirtualClock) {
  util::SimulatedClock clock;
  FailingHandler origin(&clock);
  net::SimulatedChannel channel(&origin, InstantLink(), &clock);

  net::RetryPolicy policy;
  policy.max_attempts = 4;
  policy.base_backoff_micros = 100'000;
  policy.max_backoff_micros = 5'000'000;
  policy.jitter_seed = 7;
  channel.set_retry_policy(policy);

  HttpResponse response = channel.RoundTrip(HttpRequest{});
  EXPECT_FALSE(response.ok());
  EXPECT_EQ(origin.calls(), 4);

  // Replay the jitter stream: three backoffs, decorrelated from each other.
  util::Random rng(policy.jitter_seed);
  int64_t prev = policy.base_backoff_micros;
  int64_t expected_total = 0;
  std::vector<int64_t> expected;
  for (int i = 0; i < 3; ++i) {
    prev = ExpectedBackoff(rng, policy, prev);
    expected.push_back(prev);
    expected_total += prev;
  }
  for (int64_t backoff : expected) {
    EXPECT_GE(backoff, policy.base_backoff_micros);
    EXPECT_LE(backoff, policy.max_backoff_micros);
  }
  // The handler and link charge nothing, so the clock moved by exactly the
  // backoff sequence.
  EXPECT_EQ(clock.NowMicros(), expected_total);
  EXPECT_EQ(channel.retry_stats().attempts, 4u);
  EXPECT_EQ(channel.retry_stats().retries, 3u);
  EXPECT_EQ(channel.retry_stats().backoff_micros_total, expected_total);
  EXPECT_EQ(channel.retry_stats().failed_round_trips, 1u);

  // Same seed, fresh channel: bit-for-bit the same schedule.
  util::SimulatedClock clock2;
  FailingHandler origin2(&clock2);
  net::SimulatedChannel channel2(&origin2, InstantLink(), &clock2);
  channel2.set_retry_policy(policy);
  channel2.RoundTrip(HttpRequest{});
  EXPECT_EQ(clock2.NowMicros(), expected_total);
}

TEST(RetryPolicyTest, OverallDeadlineCutsRetriesShort) {
  util::SimulatedClock clock;
  FailingHandler origin(&clock);
  net::SimulatedChannel channel(&origin, InstantLink(), &clock);

  // base == cap pins every backoff to exactly 200 ms.
  net::RetryPolicy policy;
  policy.max_attempts = 10;
  policy.base_backoff_micros = 200'000;
  policy.max_backoff_micros = 200'000;
  policy.overall_deadline_micros = 500'000;
  channel.set_retry_policy(policy);

  HttpResponse response = channel.RoundTrip(HttpRequest{});
  EXPECT_FALSE(response.ok());
  // Attempts at t=0, 200ms, 400ms; the next backoff would land at 600 ms,
  // past the 500 ms deadline, so the round trip gives up.
  EXPECT_EQ(origin.calls(), 3);
  EXPECT_EQ(clock.NowMicros(), 400'000);
  EXPECT_EQ(channel.retry_stats().deadline_exhausted, 1u);
  EXPECT_EQ(channel.retry_stats().retries, 2u);
}

TEST(RetryPolicyTest, PerAttemptTimeoutClampsChargeAndReportsTransportError) {
  util::SimulatedClock clock;
  HealthyHandler origin(&clock, /*handler_micros=*/3'000'000);
  net::SimulatedChannel channel(&origin, InstantLink(), &clock);

  net::RetryPolicy policy;
  policy.max_attempts = 1;
  policy.per_attempt_timeout_micros = 1'000'000;
  channel.set_retry_policy(policy);

  HttpResponse response = channel.RoundTrip(HttpRequest{});
  EXPECT_TRUE(response.transport_error());
  EXPECT_EQ(response.content_type, "x-fnproxy/timeout");
  // The client stopped waiting at the timeout: exactly 1 s charged, not 3.
  EXPECT_EQ(clock.NowMicros(), 1'000'000);
  EXPECT_EQ(channel.retry_stats().timeouts, 1u);
}

TEST(RetryPolicyTest, SuccessNeedsNoRetries) {
  util::SimulatedClock clock;
  HealthyHandler origin(&clock);
  net::SimulatedChannel channel(&origin, InstantLink(), &clock);
  net::RetryPolicy policy;
  policy.max_attempts = 5;
  channel.set_retry_policy(policy);

  EXPECT_TRUE(channel.RoundTrip(HttpRequest{}).ok());
  EXPECT_EQ(origin.calls(), 1);
  EXPECT_EQ(channel.retry_stats().retries, 0u);
  EXPECT_EQ(clock.NowMicros(), 0);
}

net::CircuitBreakerConfig TestBreakerConfig() {
  net::CircuitBreakerConfig config;
  config.enabled = true;
  config.window_size = 4;
  config.min_samples = 4;
  config.failure_threshold = 0.5;
  config.open_cooldown_micros = 10'000'000;
  config.half_open_successes = 2;
  return config;
}

TEST(CircuitBreakerTest, FullTransitionCycleWithTimestamps) {
  util::SimulatedClock clock;
  net::CircuitBreaker breaker(TestBreakerConfig(), &clock);

  EXPECT_EQ(breaker.state(), net::BreakerState::kClosed);
  EXPECT_TRUE(breaker.Allow());

  // Three failures: under min_samples, still closed.
  for (int i = 0; i < 3; ++i) breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), net::BreakerState::kClosed);
  EXPECT_TRUE(breaker.Allow());

  // Fourth failure fills the window at 100% failure rate: open.
  clock.Advance(1'000'000);
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), net::BreakerState::kOpen);
  EXPECT_FALSE(breaker.Allow());
  EXPECT_EQ(breaker.CooldownRemainingMicros(), 10'000'000);

  // Half the cooldown: still open.
  clock.Advance(5'000'000);
  EXPECT_FALSE(breaker.Allow());
  EXPECT_EQ(breaker.CooldownRemainingMicros(), 5'000'000);

  // Cooldown elapsed: the next admission check flips to half-open.
  clock.Advance(5'000'000);
  EXPECT_TRUE(breaker.Allow());
  EXPECT_EQ(breaker.state(), net::BreakerState::kHalfOpen);

  // The probe fails: trip again, cooldown restarts from now.
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), net::BreakerState::kOpen);
  EXPECT_EQ(breaker.CooldownRemainingMicros(), 10'000'000);

  clock.Advance(10'000'000);
  EXPECT_TRUE(breaker.Allow());
  EXPECT_EQ(breaker.state(), net::BreakerState::kHalfOpen);

  // Two probe successes close the breaker.
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), net::BreakerState::kHalfOpen);
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), net::BreakerState::kClosed);

  // History: open@1s, half-open@11s, open@11s, half-open@21s, closed@21s.
  const auto history = breaker.HistorySnapshot();
  ASSERT_EQ(history.size(), 5u);
  EXPECT_EQ(history[0],
            std::make_pair<int64_t>(1'000'000, net::BreakerState::kOpen));
  EXPECT_EQ(history[1], std::make_pair<int64_t>(11'000'000,
                                                net::BreakerState::kHalfOpen));
  EXPECT_EQ(history[2],
            std::make_pair<int64_t>(11'000'000, net::BreakerState::kOpen));
  EXPECT_EQ(history[3], std::make_pair<int64_t>(21'000'000,
                                                net::BreakerState::kHalfOpen));
  EXPECT_EQ(history[4],
            std::make_pair<int64_t>(21'000'000, net::BreakerState::kClosed));
  EXPECT_EQ(breaker.transitions(), 5u);
}

TEST(CircuitBreakerTest, StaysClosedBelowThreshold) {
  util::SimulatedClock clock;
  net::CircuitBreaker breaker(TestBreakerConfig(), &clock);
  // Alternating success/failure keeps the rate at 50%... threshold is >=,
  // so push it just below with one extra success per window.
  breaker.RecordSuccess();
  breaker.RecordSuccess();
  breaker.RecordSuccess();
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), net::BreakerState::kClosed);
  EXPECT_DOUBLE_EQ(breaker.FailureRate(), 0.25);

  // Two failures push the 4-wide window to {S, F, F, F}: 75% >= 50%, open.
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), net::BreakerState::kOpen);
}

TEST(CircuitBreakerTest, DisabledBreakerNeverBlocks) {
  util::SimulatedClock clock;
  net::CircuitBreakerConfig config;  // enabled = false
  net::CircuitBreaker breaker(config, &clock);
  for (int i = 0; i < 100; ++i) breaker.RecordFailure();
  EXPECT_TRUE(breaker.Allow());
  EXPECT_EQ(breaker.state(), net::BreakerState::kClosed);
  EXPECT_EQ(breaker.transitions(), 0u);
}

TEST(FaultInjectorTest, SeededScheduleIsReproducible) {
  net::FaultProfile profile = net::FlakyProfile(/*seed=*/99);

  auto run = [&profile]() {
    util::SimulatedClock clock;
    HealthyHandler origin(&clock);
    net::FaultInjector injector(&origin, profile, &clock);
    std::vector<int> codes;
    for (int i = 0; i < 200; ++i) {
      codes.push_back(injector.Handle(HttpRequest{}).status_code);
    }
    return std::make_pair(codes, injector.stats());
  };

  auto [codes_a, stats_a] = run();
  auto [codes_b, stats_b] = run();
  EXPECT_EQ(codes_a, codes_b);
  EXPECT_EQ(stats_a.injected_drops, stats_b.injected_drops);
  EXPECT_EQ(stats_a.injected_errors, stats_b.injected_errors);
  EXPECT_EQ(stats_a.injected_garbage, stats_b.injected_garbage);
  EXPECT_EQ(stats_a.injected_truncations, stats_b.injected_truncations);
  EXPECT_EQ(stats_a.injected_spikes, stats_b.injected_spikes);
  EXPECT_EQ(stats_a.injected_trickles, stats_b.injected_trickles);
  // At these rates 200 requests see some of everything.
  EXPECT_GT(stats_a.total_faults(), 0u);
  EXPECT_GT(stats_a.injected_errors, 0u);
  EXPECT_GT(stats_a.injected_drops, 0u);
}

TEST(FaultInjectorTest, OutageWindowDropsEveryRequestInside) {
  util::SimulatedClock clock;
  HealthyHandler origin(&clock);
  net::FaultProfile profile =
      net::OutageProfile(/*start=*/1'000'000, /*end=*/5'000'000);
  net::FaultInjector injector(&origin, profile, &clock);

  // Before the window: healthy (the handler charges no time, so the clock
  // is still at 0).
  EXPECT_TRUE(injector.Handle(HttpRequest{}).ok());
  ASSERT_EQ(clock.NowMicros(), 0);

  // Inside: dropped after the detection delay.
  clock.Advance(2'000'000);
  HttpResponse dropped = injector.Handle(HttpRequest{});
  EXPECT_TRUE(dropped.transport_error());
  EXPECT_EQ(dropped.content_type, "x-fnproxy/connection-drop");
  EXPECT_EQ(clock.NowMicros(), 2'000'000 + profile.drop_detect_micros);

  // After: healthy again, no origin call was made during the outage.
  clock.Advance(6'000'000 - clock.NowMicros());
  EXPECT_TRUE(injector.Handle(HttpRequest{}).ok());
  EXPECT_EQ(origin.calls(), 2);
  EXPECT_EQ(injector.stats().outage_drops, 1u);
}

}  // namespace
}  // namespace fnproxy
