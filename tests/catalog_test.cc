#include <gtest/gtest.h>

#include <cmath>

#include "catalog/book_catalog.h"
#include "catalog/sky_catalog.h"
#include "geometry/celestial.h"

namespace fnproxy::catalog {
namespace {

using sql::Table;
using sql::Value;

SkyCatalogConfig SmallSky() {
  SkyCatalogConfig config;
  config.num_objects = 5000;
  config.num_clusters = 8;
  config.seed = 123;
  return config;
}

TEST(SkyCatalogTest, SchemaMatchesDeclared) {
  Table table = GenerateSkyCatalog(SmallSky());
  EXPECT_TRUE(table.schema().SameColumns(SkyCatalogSchema()));
  EXPECT_EQ(table.num_rows(), 5000u);
}

TEST(SkyCatalogTest, DeterministicInSeed) {
  Table a = GenerateSkyCatalog(SmallSky());
  Table b = GenerateSkyCatalog(SmallSky());
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_TRUE(a.row(i)[1].EqualsValue(b.row(i)[1]));
    EXPECT_TRUE(a.row(i)[12].EqualsValue(b.row(i)[12]));
  }
  SkyCatalogConfig other = SmallSky();
  other.seed = 124;
  Table c = GenerateSkyCatalog(other);
  bool differs = false;
  for (size_t i = 0; i < 100 && !differs; ++i) {
    differs = !a.row(i)[1].EqualsValue(c.row(i)[1]);
  }
  EXPECT_TRUE(differs);
}

TEST(SkyCatalogTest, ObjectsInsideFootprint) {
  SkyCatalogConfig config = SmallSky();
  Table table = GenerateSkyCatalog(config);
  auto ra_idx = *table.schema().FindColumn("ra");
  auto dec_idx = *table.schema().FindColumn("dec");
  for (const auto& row : table.rows()) {
    double ra = row[ra_idx].AsDouble();
    double dec = row[dec_idx].AsDouble();
    EXPECT_GE(ra, config.ra_min);
    EXPECT_LE(ra, config.ra_max);
    EXPECT_GE(dec, config.dec_min);
    EXPECT_LE(dec, config.dec_max);
  }
}

TEST(SkyCatalogTest, UnitVectorsMatchRaDec) {
  Table table = GenerateSkyCatalog(SmallSky());
  const auto& schema = table.schema();
  size_t ra = *schema.FindColumn("ra"), dec = *schema.FindColumn("dec");
  size_t cx = *schema.FindColumn("cx"), cy = *schema.FindColumn("cy"),
         cz = *schema.FindColumn("cz");
  for (size_t i = 0; i < 200; ++i) {
    geometry::Point expected = geometry::RaDecToUnitVector(
        table.row(i)[ra].AsDouble(), table.row(i)[dec].AsDouble());
    EXPECT_NEAR(table.row(i)[cx].AsDouble(), expected[0], 1e-12);
    EXPECT_NEAR(table.row(i)[cy].AsDouble(), expected[1], 1e-12);
    EXPECT_NEAR(table.row(i)[cz].AsDouble(), expected[2], 1e-12);
  }
}

TEST(SkyCatalogTest, ClusteringConcentratesObjects) {
  SkyCatalogConfig config = SmallSky();
  config.num_objects = 20000;
  std::vector<std::pair<double, double>> centers;
  Table table = GenerateSkyCatalog(config, &centers);
  ASSERT_EQ(centers.size(), config.num_clusters);
  // Count objects within 2 sigma of any cluster center; with 70% clustered
  // this should be far above the uniform expectation.
  size_t ra = *table.schema().FindColumn("ra");
  size_t dec = *table.schema().FindColumn("dec");
  size_t near_cluster = 0;
  for (const auto& row : table.rows()) {
    for (const auto& [cra, cdec] : centers) {
      double dr = row[ra].AsDouble() - cra;
      double dd = row[dec].AsDouble() - cdec;
      if (std::sqrt(dr * dr + dd * dd) < 2 * config.cluster_sigma_deg) {
        ++near_cluster;
        break;
      }
    }
  }
  double fraction = static_cast<double>(near_cluster) /
                    static_cast<double>(table.num_rows());
  EXPECT_GT(fraction, 0.5);
}

TEST(SkyCatalogTest, TypesAreGalaxyOrStar) {
  Table table = GenerateSkyCatalog(SmallSky());
  size_t type = *table.schema().FindColumn("type");
  for (const auto& row : table.rows()) {
    int64_t t = row[type].AsInt();
    EXPECT_TRUE(t == 3 || t == 6);
  }
}

TEST(PhotoFlagTest, KnownFlagsResolve) {
  EXPECT_EQ(*PhotoFlagValue("SATURATED"), 0x40000);
  EXPECT_EQ(*PhotoFlagValue("saturated"), 0x40000);  // Case-insensitive.
  EXPECT_EQ(*PhotoFlagValue("BRIGHT"), 0x2);
  EXPECT_FALSE(PhotoFlagValue("NOT_A_FLAG").ok());
}

TEST(PhotoFlagTest, SomeObjectsSaturated) {
  Table table = GenerateSkyCatalog(SmallSky());
  size_t flags = *table.schema().FindColumn("flags");
  size_t saturated = 0;
  for (const auto& row : table.rows()) {
    if (row[flags].AsInt() & 0x40000) ++saturated;
  }
  // ~5% expected.
  EXPECT_GT(saturated, 100u);
  EXPECT_LT(saturated, 600u);
}

TEST(BookCatalogTest, SchemaAndDeterminism) {
  BookCatalogConfig config;
  config.num_books = 2000;
  Table a = GenerateBookCatalog(config);
  Table b = GenerateBookCatalog(config);
  EXPECT_TRUE(a.schema().SameColumns(BookCatalogSchema()));
  EXPECT_EQ(a.num_rows(), 2000u);
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_TRUE(a.row(i)[3].EqualsValue(b.row(i)[3]));
  }
}

TEST(BookCatalogTest, FeatureCoordinatesNormalized) {
  BookCatalogConfig config;
  config.num_books = 3000;
  Table table = GenerateBookCatalog(config);
  for (const char* col : {"f1", "f2", "f3"}) {
    size_t idx = *table.schema().FindColumn(col);
    for (const auto& row : table.rows()) {
      EXPECT_GE(row[idx].AsDouble(), 0.0);
      EXPECT_LE(row[idx].AsDouble(), 1.0);
    }
  }
}

TEST(BookCatalogTest, GenresWithinRange) {
  BookCatalogConfig config;
  config.num_books = 1000;
  config.num_genres = 5;
  Table table = GenerateBookCatalog(config);
  size_t genre = *table.schema().FindColumn("genre");
  for (const auto& row : table.rows()) {
    EXPECT_LT(row[genre].AsInt(), 5);
    EXPECT_GE(row[genre].AsInt(), 0);
  }
}

}  // namespace
}  // namespace fnproxy::catalog
