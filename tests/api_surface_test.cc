// Coverage for small public-API surfaces not central to other suites:
// name/ToString helpers, support functions, debug rendering, statement
// printing of every operator, and assorted edge cases.

#include <gtest/gtest.h>

#include "core/cache_store.h"
#include "core/proxy.h"
#include "geometry/hyperrectangle.h"
#include "geometry/hypersphere.h"
#include "geometry/polytope.h"
#include "geometry/region.h"
#include "sql/parser.h"
#include "sql/printer.h"
#include "sql/schema.h"

namespace fnproxy {
namespace {

TEST(NamesTest, ShapeKindNames) {
  EXPECT_STREQ(geometry::ShapeKindName(geometry::ShapeKind::kHypersphere),
               "hypersphere");
  EXPECT_STREQ(geometry::ShapeKindName(geometry::ShapeKind::kHyperrectangle),
               "hyperrectangle");
  EXPECT_STREQ(geometry::ShapeKindName(geometry::ShapeKind::kPolytope),
               "polytope");
}

TEST(NamesTest, RegionRelationNames) {
  using geometry::RegionRelation;
  EXPECT_STREQ(geometry::RegionRelationName(RegionRelation::kEqual), "equal");
  EXPECT_STREQ(geometry::RegionRelationName(RegionRelation::kContainedBy),
               "contained-by");
  EXPECT_STREQ(geometry::RegionRelationName(RegionRelation::kContains),
               "contains");
  EXPECT_STREQ(geometry::RegionRelationName(RegionRelation::kOverlap),
               "overlap");
  EXPECT_STREQ(geometry::RegionRelationName(RegionRelation::kDisjoint),
               "disjoint");
}

TEST(NamesTest, CachingModeNames) {
  using core::CachingMode;
  EXPECT_STREQ(core::CachingModeName(CachingMode::kNoCache), "NC");
  EXPECT_STREQ(core::CachingModeName(CachingMode::kPassive), "PC");
  EXPECT_STREQ(core::CachingModeName(CachingMode::kActiveFull), "AC-full");
  EXPECT_STREQ(core::CachingModeName(CachingMode::kActiveRegionContainment),
               "AC-region-containment");
  EXPECT_STREQ(core::CachingModeName(CachingMode::kActiveContainmentOnly),
               "AC-containment-only");
}

TEST(RegionToStringTest, AllShapesRender) {
  geometry::Hypersphere sphere({1, 2}, 0.5);
  EXPECT_NE(sphere.ToString().find("Sphere"), std::string::npos);
  geometry::Hyperrectangle rect({0, 0}, {1, 1});
  EXPECT_NE(rect.ToString().find("Rect"), std::string::npos);
  geometry::Polytope poly = geometry::Polytope::FromRectangle(rect);
  EXPECT_NE(poly.ToString().find("Polytope"), std::string::npos);
}

TEST(SupportFunctionTest, SphereSupportOnSurface) {
  geometry::Hypersphere sphere({1, 1}, 2.0);
  geometry::Point s = sphere.Support({1, 0});
  EXPECT_DOUBLE_EQ(s[0], 3.0);
  EXPECT_DOUBLE_EQ(s[1], 1.0);
  // Zero direction degrades to the center.
  geometry::Point c = sphere.Support({0, 0});
  EXPECT_DOUBLE_EQ(c[0], 1.0);
}

TEST(SupportFunctionTest, RectSupportPicksCorner) {
  geometry::Hyperrectangle rect({0, 0}, {2, 3});
  geometry::Point s = rect.Support({1, -1});
  EXPECT_DOUBLE_EQ(s[0], 2.0);
  EXPECT_DOUBLE_EQ(s[1], 0.0);
}

TEST(SupportFunctionTest, PolytopeSupportPicksVertex) {
  geometry::Polytope poly = geometry::Polytope::FromRectangle(
      geometry::Hyperrectangle({0, 0}, {2, 3}));
  geometry::Point s = poly.Support({1, 1});
  EXPECT_DOUBLE_EQ(s[0], 2.0);
  EXPECT_DOUBLE_EQ(s[1], 3.0);
}

TEST(RegionCloneTest, ClonesAreIndependentAndEqual) {
  geometry::Hypersphere sphere({1, 2, 3}, 0.25);
  auto clone = sphere.Clone();
  EXPECT_TRUE(geometry::Equals(sphere, *clone));
  EXPECT_EQ(clone->dimensions(), 3u);
  EXPECT_EQ(clone->kind(), geometry::ShapeKind::kHypersphere);
}

TEST(TableDebugTest, ToDebugStringBounded) {
  sql::Table table(sql::Schema({{"x", sql::ValueType::kInt}}));
  for (int i = 0; i < 30; ++i) table.AddRow({sql::Value::Int(i)});
  std::string text = table.ToDebugString(5);
  EXPECT_NE(text.find("30 rows"), std::string::npos);
  EXPECT_NE(text.find("more"), std::string::npos);
}

TEST(PrinterTest, EveryOperatorRoundTrips) {
  const char* expressions[] = {
      "a + b", "a - b", "a * b", "a / b", "a % b",
      "a = b", "a <> b", "a < b", "a <= b", "a > b", "a >= b",
      "a AND b", "a OR b", "a & b", "a | b",
      "-a", "~a", "NOT a",
      "a BETWEEN 1 AND 2", "a NOT BETWEEN 1 AND 2",
      "a IN (1, 2)", "a NOT IN (1, 2)", "a IS NULL", "a IS NOT NULL",
      "f(a, b, 1.5)", "t.col", "'str''ing'", "TRUE", "FALSE", "NULL",
  };
  for (const char* text : expressions) {
    auto expr = sql::ParseExpression(text);
    ASSERT_TRUE(expr.ok()) << text;
    std::string printed = sql::ExprToSql(**expr);
    auto reparsed = sql::ParseExpression(printed);
    ASSERT_TRUE(reparsed.ok()) << printed;
    EXPECT_EQ(sql::ExprToSql(**reparsed), printed) << text;
  }
}

TEST(ExprCloneTest, AllKindsDeepCloned) {
  auto expr = sql::ParseExpression(
      "f(a) + $p * 2 BETWEEN t.x AND 5 AND (y IN (1, 'two') OR z IS NOT NULL)");
  ASSERT_TRUE(expr.ok());
  auto clone = (*expr)->Clone();
  EXPECT_EQ(sql::ExprToSql(**expr), sql::ExprToSql(*clone));
  EXPECT_TRUE(clone->HasParameters());
}

TEST(QueryRecordTest, CacheEfficiencyEdgeCases) {
  core::QueryRecord record;
  record.tuples_total = 0;
  record.contacted_origin = false;
  EXPECT_EQ(record.CacheEfficiency(), 1.0);  // Empty answer from cache.
  record.contacted_origin = true;
  EXPECT_EQ(record.CacheEfficiency(), 0.0);  // Empty answer from origin.
  record.tuples_total = 10;
  record.tuples_from_cache = 4;
  EXPECT_DOUBLE_EQ(record.CacheEfficiency(), 0.4);
}

TEST(SchemaTest, ConcatPreservesOrder) {
  sql::Schema left({{"a", sql::ValueType::kInt}});
  sql::Schema right({{"b", sql::ValueType::kDouble},
                     {"c", sql::ValueType::kString}});
  sql::Schema joined = sql::Schema::Concat(left, right);
  ASSERT_EQ(joined.num_columns(), 3u);
  EXPECT_EQ(joined.column(0).name, "a");
  EXPECT_EQ(joined.column(2).name, "c");
}

TEST(ConjoinTest, HandlesEmptyAndSingle) {
  EXPECT_EQ(sql::ConjoinAll({}), nullptr);
  std::vector<std::unique_ptr<sql::Expr>> one;
  one.push_back(sql::Expr::Literal(sql::Value::Bool(true)));
  auto conjoined = sql::ConjoinAll(std::move(one));
  ASSERT_NE(conjoined, nullptr);
  EXPECT_EQ(conjoined->kind, sql::Expr::Kind::kLiteral);
}

TEST(ProxyStatsXmlTest, RendersAllCounters) {
  core::ProxyStats stats;
  stats.requests = 10;
  stats.template_requests = 8;
  stats.exact_hits = 3;
  stats.containment_hits = 2;
  stats.misses = 3;
  stats.check_micros = 1234;
  core::QueryRecord record;
  record.tuples_total = 4;
  record.tuples_from_cache = 4;
  stats.records.push_back(record);
  std::string xml_text = stats.ToXml();
  EXPECT_NE(xml_text.find("requests=\"10\""), std::string::npos);
  EXPECT_NE(xml_text.find("exact=\"3\""), std::string::npos);
  EXPECT_NE(xml_text.find("check=\"1234\""), std::string::npos);
  EXPECT_NE(xml_text.find("<AverageCacheEfficiency>1.0000"),
            std::string::npos);
}

}  // namespace
}  // namespace fnproxy
