#include <gtest/gtest.h>

#include "core/relationship.h"
#include "geometry/hypersphere.h"
#include "index/array_index.h"

namespace fnproxy::core {
namespace {

using geometry::Hypersphere;
using geometry::RegionRelation;
using sql::Schema;
using sql::Table;
using sql::Value;
using sql::ValueType;

CacheEntry MakeEntry(double x, double radius,
                     const std::string& template_id = "radial",
                     const std::string& nonspatial = "",
                     bool truncated = false) {
  CacheEntry entry;
  entry.template_id = template_id;
  entry.nonspatial_fingerprint = nonspatial;
  entry.region =
      std::make_unique<Hypersphere>(geometry::Point{x, 0.0}, radius);
  entry.result = Table(Schema({{"x", ValueType::kDouble}}));
  entry.truncated = truncated;
  return entry;
}

class RelationshipTest : public ::testing::Test {
 protected:
  RelationshipTest()
      : store_(std::make_unique<index::ArrayRegionIndex>(), 0,
               ReplacementPolicy::kLru) {}

  RelationshipResult Check(double x, double radius,
                           const std::string& nonspatial = "") {
    Hypersphere query({x, 0.0}, radius);
    return CheckRelationship(store_, "radial", nonspatial, query);
  }

  CacheStore store_;
};

TEST_F(RelationshipTest, EmptyCacheIsDisjoint) {
  RelationshipResult result = Check(0, 1);
  EXPECT_EQ(result.status, RegionRelation::kDisjoint);
  EXPECT_EQ(result.regions_checked, 0u);
}

TEST_F(RelationshipTest, ExactMatchWins) {
  store_.Insert(MakeEntry(0, 1));
  store_.Insert(MakeEntry(0, 2));  // Contains the query too.
  RelationshipResult result = Check(0, 1);
  EXPECT_EQ(result.status, RegionRelation::kEqual);
  EXPECT_NE(result.matched, nullptr);
}

TEST_F(RelationshipTest, ContainmentDetected) {
  store_.Insert(MakeEntry(0, 2));
  RelationshipResult result = Check(0.5, 1);
  EXPECT_EQ(result.status, RegionRelation::kContainedBy);
  ASSERT_NE(result.matched, nullptr);
  EXPECT_NE(store_.Find(result.matched->id), nullptr);
}

TEST_F(RelationshipTest, RegionContainmentCollectsAllContained) {
  store_.Insert(MakeEntry(-2, 0.5));
  store_.Insert(MakeEntry(2, 0.5));
  store_.Insert(MakeEntry(50, 0.5));  // Far away.
  RelationshipResult result = Check(0, 4);
  EXPECT_EQ(result.status, RegionRelation::kContains);
  EXPECT_EQ(result.contained.size(), 2u);
}

TEST_F(RelationshipTest, OverlapCollected) {
  store_.Insert(MakeEntry(1.5, 1));
  RelationshipResult result = Check(0, 1);
  EXPECT_EQ(result.status, RegionRelation::kOverlap);
  EXPECT_EQ(result.overlapping.size(), 1u);
}

TEST_F(RelationshipTest, MixedContainsAndOverlapReportsContains) {
  store_.Insert(MakeEntry(0.5, 0.5));  // Inside the query.
  store_.Insert(MakeEntry(3.5, 1.0));  // Partially overlapping.
  RelationshipResult result = Check(0, 3);
  EXPECT_EQ(result.status, RegionRelation::kContains);
  EXPECT_EQ(result.contained.size(), 1u);
  EXPECT_EQ(result.overlapping.size(), 1u);
}

TEST_F(RelationshipTest, DifferentTemplateIgnored) {
  store_.Insert(MakeEntry(0, 1, "rect"));
  RelationshipResult result = Check(0, 1);
  EXPECT_EQ(result.status, RegionRelation::kDisjoint);
}

TEST_F(RelationshipTest, DifferentNonSpatialFingerprintIgnored) {
  store_.Insert(MakeEntry(0, 1, "radial", "maxmag=20;"));
  RelationshipResult result = Check(0, 1, "maxmag=21;");
  EXPECT_EQ(result.status, RegionRelation::kDisjoint);
  RelationshipResult matching = Check(0, 1, "maxmag=20;");
  EXPECT_EQ(matching.status, RegionRelation::kEqual);
}

TEST_F(RelationshipTest, TruncatedEntriesOnlyServeExactMatches) {
  store_.Insert(MakeEntry(0, 2, "radial", "", /*truncated=*/true));
  // Containment in a truncated entry must not be claimed.
  EXPECT_EQ(Check(0.5, 1).status, RegionRelation::kDisjoint);
  // Region containment over truncated entries must not be claimed.
  EXPECT_EQ(Check(0, 5).status, RegionRelation::kDisjoint);
  // Exact match is still fine (same query, same deterministic result).
  EXPECT_EQ(Check(0, 2).status, RegionRelation::kEqual);
}

TEST_F(RelationshipTest, WorkAccountingReported) {
  for (int i = 0; i < 10; ++i) {
    store_.Insert(MakeEntry(i * 1.5, 1.0));
  }
  RelationshipResult result = Check(5, 1);
  EXPECT_GT(result.description_comparisons, 0u);
  EXPECT_GT(result.regions_checked, 0u);
  EXPECT_LE(result.regions_checked, 10u);
}

TEST_F(RelationshipTest, DisjointWhenCandidateBoxesOverlapButRegionsDoNot) {
  // Bounding boxes of spheres at distance sqrt(2) with radius ~1 overlap in
  // the corner, the spheres themselves don't.
  store_.Insert(MakeEntry(0, 1));
  // Query bbox [0.85, 2.35]^2 overlaps the entry bbox [-1, 1]^2 at the
  // corner; the spheres are sqrt(2)*1.6 ~ 2.26 apart > 1.75.
  Hypersphere query({1.6, 1.6}, 0.75);
  RelationshipResult result =
      CheckRelationship(store_, "radial", "", query);
  EXPECT_EQ(result.status, RegionRelation::kDisjoint);
  EXPECT_GE(result.regions_checked, 1u);  // The box probe found a candidate.
}

}  // namespace
}  // namespace fnproxy::core
