// Cache persistence: region XML round trips for all shapes, snapshot save/
// load, and proxy warm restart serving hits without contacting the origin.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "catalog/sky_catalog.h"
#include "core/cache_snapshot.h"
#include "core/proxy.h"
#include "geometry/celestial.h"
#include "geometry/hyperrectangle.h"
#include "geometry/hypersphere.h"
#include "geometry/polytope.h"
#include "index/array_index.h"
#include "net/network.h"
#include "server/sky_functions.h"
#include "server/web_app.h"
#include "sql/table_xml.h"
#include "workload/experiment.h"

namespace fnproxy::core {
namespace {

using sql::Value;

std::string MakeTempDir() {
  char pattern[] = "/tmp/fnproxy_snapshot_XXXXXX";
  char* dir = mkdtemp(pattern);
  EXPECT_NE(dir, nullptr);
  return dir;
}

TEST(RegionXmlTest, SphereRoundTrip) {
  geometry::Hypersphere sphere({0.123456789012345, -2.5, 3.75}, 0.5);
  auto restored = RegionFromXml(RegionToXml(sphere));
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_TRUE(geometry::Equals(sphere, **restored));
}

TEST(RegionXmlTest, RectRoundTrip) {
  geometry::Hyperrectangle rect({-1.0, 2.0}, {3.5, 4.25});
  auto restored = RegionFromXml(RegionToXml(rect));
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(geometry::Equals(rect, **restored));
}

TEST(RegionXmlTest, PolytopeRoundTrip) {
  std::vector<geometry::Halfspace> halfspaces = {
      {{-1, 0}, 0}, {{0, -1}, 0}, {{1, 1}, 4}};
  std::vector<geometry::Point> vertices = {{0, 0}, {4, 0}, {0, 4}};
  geometry::Polytope triangle(halfspaces, vertices);
  auto restored = RegionFromXml(RegionToXml(triangle));
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_TRUE(geometry::Equals(triangle, **restored));
}

TEST(RegionXmlTest, CelestialConePreservedExactly) {
  geometry::Hypersphere cone = geometry::ConeToHypersphere(195.1234, 2.5678, 17.89);
  auto restored = RegionFromXml(RegionToXml(cone));
  ASSERT_TRUE(restored.ok());
  const auto& sphere = static_cast<const geometry::Hypersphere&>(**restored);
  // FormatDouble round-trips bit-exactly.
  EXPECT_EQ(sphere.radius(), cone.radius());
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(sphere.center()[static_cast<size_t>(i)],
              cone.center()[static_cast<size_t>(i)]);
  }
}

TEST(RegionXmlTest, MalformedRejected) {
  EXPECT_FALSE(RegionFromXml("<NotRegion/>").ok());
  EXPECT_FALSE(RegionFromXml("<Region shape=\"donut\" dims=\"2\"/>").ok());
  EXPECT_FALSE(
      RegionFromXml("<Region shape=\"hypersphere\" dims=\"3\"><Center>1 2"
                    "</Center><Radius>1</Radius></Region>")
          .ok());  // Dim mismatch.
  EXPECT_FALSE(
      RegionFromXml("<Region shape=\"hypersphere\" dims=\"2\"><Center>0 0"
                    "</Center><Radius>-1</Radius></Region>")
          .ok());
}

CacheEntry MakeEntry(double x, double radius, size_t rows) {
  CacheEntry entry;
  entry.template_id = "radial";
  entry.nonspatial_fingerprint = "flag=1;";
  entry.param_fingerprint = "x=" + std::to_string(x);
  entry.region = std::make_unique<geometry::Hypersphere>(
      geometry::Point{x, 0.0}, radius);
  sql::Table table(sql::Schema(
      {{"objID", sql::ValueType::kInt}, {"x", sql::ValueType::kDouble}}));
  for (size_t i = 0; i < rows; ++i) {
    table.AddRow({Value::Int(static_cast<int64_t>(i)),
                  Value::Double(x + static_cast<double>(i) * 0.001)});
  }
  entry.result = std::move(table);
  entry.truncated = (rows == 7);  // One truncated entry in the fixture.
  return entry;
}

TEST(CacheSnapshotTest, SaveLoadRoundTrip) {
  std::string dir = MakeTempDir();
  CacheStore original(std::make_unique<index::ArrayRegionIndex>(), 0,
                      ReplacementPolicy::kLru);
  original.Insert(MakeEntry(0, 1, 5));
  original.Insert(MakeEntry(10, 2, 7));   // Truncated.
  original.Insert(MakeEntry(20, 0.5, 0));  // Empty result.
  ASSERT_TRUE(SaveCacheSnapshot(original, dir).ok());

  CacheStore restored(std::make_unique<index::ArrayRegionIndex>(), 0,
                      ReplacementPolicy::kLru);
  auto count = LoadCacheSnapshot(dir, &restored);
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(*count, 3u);
  EXPECT_EQ(restored.num_entries(), 3u);

  // Every restored entry matches an original by param fingerprint.
  for (uint64_t id : restored.AllIds()) {
    std::shared_ptr<const CacheEntry> entry = restored.Find(id);
    bool matched = false;
    for (uint64_t original_id : original.AllIds()) {
      std::shared_ptr<const CacheEntry> orig = original.Find(original_id);
      if (orig->param_fingerprint != entry->param_fingerprint) continue;
      matched = true;
      EXPECT_EQ(entry->template_id, orig->template_id);
      EXPECT_EQ(entry->nonspatial_fingerprint, orig->nonspatial_fingerprint);
      EXPECT_EQ(entry->truncated, orig->truncated);
      EXPECT_EQ(entry->result.num_rows(), orig->result.num_rows());
      EXPECT_TRUE(geometry::Equals(*entry->region, *orig->region));
    }
    EXPECT_TRUE(matched);
  }
}

TEST(CacheSnapshotTest, LoadFromMissingDirectoryFails) {
  CacheStore cache(std::make_unique<index::ArrayRegionIndex>(), 0,
                   ReplacementPolicy::kLru);
  EXPECT_FALSE(LoadCacheSnapshot("/tmp/fnproxy_no_such_dir_12345", &cache).ok());
}

TEST(CacheSnapshotTest, ProxyWarmRestartServesFromRestoredCache) {
  // Build a small pipeline, run queries, snapshot, restart, verify hits.
  catalog::SkyCatalogConfig config;
  config.num_objects = 10000;
  config.seed = 888;
  config.ra_min = 178.0;
  config.ra_max = 192.0;
  config.dec_min = 28.0;
  config.dec_max = 40.0;
  server::Database db;
  db.AddTable("PhotoPrimary", catalog::GenerateSkyCatalog(config));
  server::SkyGrid grid(db.FindTable("PhotoPrimary"));
  db.RegisterTableFunction(server::MakeGetNearbyObjEq(&grid));
  db.scalar_functions()->Register(
      "fPhotoFlags",
      [](const std::vector<Value>& args) -> util::StatusOr<Value> {
        FNPROXY_ASSIGN_OR_RETURN(int64_t bit,
                                 catalog::PhotoFlagValue(args.at(0).AsString()));
        return Value::Int(bit);
      });
  core::TemplateRegistry templates;
  ASSERT_TRUE(templates
                  .RegisterFunctionTemplateXml(workload::kNearbyObjEqTemplateXml)
                  .ok());
  auto qt = core::QueryTemplate::Create("radial", "/radial",
                                        workload::kRadialTemplateSql);
  ASSERT_TRUE(qt.ok());
  ASSERT_TRUE(templates.RegisterQueryTemplate(std::move(*qt)).ok());

  util::SimulatedClock clock;
  server::OriginWebApp app(&db, &clock);
  ASSERT_TRUE(app.RegisterForm("/radial", workload::kRadialTemplateSql).ok());
  net::SimulatedChannel channel(&app, net::LinkConfig{0.0, 1e9}, &clock);

  net::HttpRequest request;
  request.path = "/radial";
  request.query_params["ra"] = "185.0";
  request.query_params["dec"] = "33.0";
  request.query_params["radius"] = "25.0";

  std::string dir = MakeTempDir();
  std::string first_body;
  {
    core::FunctionProxy proxy(core::ProxyConfig{}, &templates, &channel, &clock);
    first_body = proxy.Handle(request).body;
    ASSERT_EQ(proxy.cache().num_entries(), 1u);
    ASSERT_TRUE(proxy.SaveCache(dir).ok());
  }
  {
    core::FunctionProxy proxy(core::ProxyConfig{}, &templates, &channel, &clock);
    auto restored = proxy.LoadCache(dir);
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    EXPECT_EQ(*restored, 1u);

    uint64_t before = channel.total_requests();
    net::HttpResponse repeat = proxy.Handle(request);
    EXPECT_EQ(channel.total_requests(), before);  // Served from snapshot.
    EXPECT_EQ(proxy.stats().exact_hits, 1u);
    auto t1 = sql::TableFromXml(first_body);
    auto t2 = sql::TableFromXml(repeat.body);
    ASSERT_TRUE(t1.ok());
    ASSERT_TRUE(t2.ok());
    EXPECT_EQ(t1->num_rows(), t2->num_rows());

    // Contained query also answered locally from the restored entry.
    request.query_params["radius"] = "10.0";
    proxy.Handle(request);
    EXPECT_EQ(channel.total_requests(), before);
    EXPECT_EQ(proxy.stats().containment_hits, 1u);
  }
}

}  // namespace
}  // namespace fnproxy::core
