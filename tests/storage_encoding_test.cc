// Encoding oracle tests for the frozen-segment layer (docs/STORAGE.md):
// every encoder is checked against the raw hot table it came from. Freezing
// must be lossless and bit-exact — the thawed table serializes to the same
// XML bytes, numeric views agree value-for-value, and the wire form
// round-trips through Serialize/Parse — for randomized tables and for the
// corner shapes (all-NULL columns, empty tables, degenerate dictionaries,
// mixed-type fallback columns) that each encoder handles specially.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "sql/columnar.h"
#include "sql/table_xml.h"
#include "storage/segment.h"
#include "util/arena.h"
#include "util/random.h"

namespace fnproxy::storage {
namespace {

using sql::ColumnarTable;
using sql::Schema;
using sql::Table;
using sql::Value;
using sql::ValueType;

/// Asserts the full lossless contract for one table under one option set:
/// thaw identity, wire round trip, and numeric-view agreement.
void ExpectLossless(const ColumnarTable& source, const FreezeOptions& options,
                    const char* label) {
  SCOPED_TRACE(label);
  FrozenSegment segment = FrozenSegment::Freeze(source, options);
  ASSERT_EQ(segment.num_rows(), source.num_rows());
  ASSERT_EQ(segment.num_columns(), source.num_columns());

  ColumnarTable thawed = segment.Thaw();
  EXPECT_EQ(sql::TableToXml(thawed), sql::TableToXml(source));

  auto parsed = FrozenSegment::Parse(segment.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(sql::TableToXml(parsed->Thaw()), sql::TableToXml(source));

  // Decoded numeric views must agree bit-for-bit with the hot column's
  // (NaN compares by payload here: both sides decode the same stored bits).
  util::Arena arena;
  for (size_t c = 0; c < source.num_columns(); ++c) {
    if (source.schema().column(c).type != ValueType::kDouble) continue;
    ColumnarTable hot_copy = source;
    if (!hot_copy.PrepareNumericView(c).ok()) continue;
    auto hot = hot_copy.numeric_view(c);
    ASSERT_TRUE(hot.has_value());
    ColumnarTable::NumericView frozen = segment.DecodeNumericView(c, &arena);
    // A null validity pointer means the column is dense (all rows valid).
    const auto valid_bit = [](const uint64_t* valid, size_t row) {
      return valid == nullptr || ((valid[row / 64] >> (row % 64)) & 1) != 0;
    };
    for (size_t row = 0; row < source.num_rows(); ++row) {
      const bool frozen_valid = valid_bit(frozen.valid, row);
      const bool hot_valid = valid_bit(hot->valid, row);
      ASSERT_EQ(frozen_valid, hot_valid) << "row " << row;
      if (!hot_valid) continue;
      ASSERT_EQ(std::memcmp(&frozen.data[row], &hot->data[row],
                            sizeof(double)),
                0)
          << "row " << row << ": " << frozen.data[row] << " vs "
          << hot->data[row];
    }
  }
}

void ExpectLosslessUnderAllPolicies(const Table& rows, const char* label) {
  ColumnarTable source(rows);
  for (DoubleEncodingPolicy policy :
       {DoubleEncodingPolicy::kAuto, DoubleEncodingPolicy::kRaw,
        DoubleEncodingPolicy::kDecimal, DoubleEncodingPolicy::kShuffle}) {
    FreezeOptions options;
    options.double_policy = policy;
    options.pin_view_columns = false;
    ExpectLossless(source, options, label);
  }
}

TEST(StorageEncodingTest, SequentialIntsPickDelta) {
  Table rows(Schema({{"objID", ValueType::kInt}}));
  for (int64_t i = 0; i < 500; ++i) {
    rows.AddRow({Value::Int(1237650000000 + i)});
  }
  ColumnarTable source(rows);
  FrozenSegment segment = FrozenSegment::Freeze(source);
  EXPECT_EQ(segment.encoding(0), ColumnEncoding::kDeltaInt);
  EXPECT_LT(segment.ByteSize(), source.ByteSize());
  ExpectLosslessUnderAllPolicies(rows, "sequential ints");
}

TEST(StorageEncodingTest, QuantizedDoublesPickDecimal) {
  util::Random rng(3);
  Table rows(Schema({{"mag", ValueType::kDouble}}));
  for (size_t i = 0; i < 500; ++i) {
    rows.AddRow({Value::Double(
        std::round(rng.NextDouble(14.0, 25.0) * 1000.0) / 1000.0)});
  }
  ColumnarTable source(rows);
  FrozenSegment segment = FrozenSegment::Freeze(source);
  EXPECT_EQ(segment.encoding(0), ColumnEncoding::kDecimalDouble);
  EXPECT_LT(segment.ByteSize(), source.ByteSize());
  ExpectLosslessUnderAllPolicies(rows, "quantized doubles");
}

TEST(StorageEncodingTest, ViewColumnsStayRawUnderAutoPin) {
  util::Random rng(4);
  Table rows(Schema({{"ra", ValueType::kDouble}}));
  for (size_t i = 0; i < 200; ++i) {
    rows.AddRow({Value::Double(
        std::round(rng.NextDouble(130, 230) * 100.0) / 100.0)});
  }
  ColumnarTable source(rows);
  ASSERT_TRUE(source.PrepareNumericView(0).ok());
  FrozenSegment pinned = FrozenSegment::Freeze(source);
  EXPECT_EQ(pinned.encoding(0), ColumnEncoding::kRawDouble);
  // The pinned raw column scans zero-copy.
  EXPECT_TRUE(pinned.numeric_view(0).has_value());

  FreezeOptions unpinned;
  unpinned.pin_view_columns = false;
  FrozenSegment packed = FrozenSegment::Freeze(source, unpinned);
  EXPECT_EQ(packed.encoding(0), ColumnEncoding::kDecimalDouble);
  EXPECT_EQ(sql::TableToXml(packed.Thaw()), sql::TableToXml(source));
}

TEST(StorageEncodingTest, DictStringsRoundTrip) {
  Table rows(Schema({{"class", ValueType::kString}}));
  // Degenerate dictionary shapes: empties, duplicates of "", a single
  // dominant code, XML-hostile bytes.
  const char* kValues[] = {"STAR", "", "STAR", "GALAXY", "", "<&>\"'",
                           "STAR", "line\nbreak", "STAR", "STAR"};
  for (int rep = 0; rep < 40; ++rep) {
    for (const char* v : kValues) rows.AddRow({Value::String(v)});
  }
  ColumnarTable source(rows);
  FrozenSegment segment = FrozenSegment::Freeze(source);
  EXPECT_EQ(segment.encoding(0), ColumnEncoding::kDictString);
  EXPECT_LT(segment.ByteSize(), source.ByteSize());
  ExpectLosslessUnderAllPolicies(rows, "dict strings");
}

TEST(StorageEncodingTest, AllNullColumnHasNoPayload) {
  Table rows(Schema({{"a", ValueType::kDouble}, {"b", ValueType::kString}}));
  for (size_t i = 0; i < 100; ++i) rows.AddRow({Value::Null(), Value::Null()});
  ColumnarTable source(rows);
  FrozenSegment segment = FrozenSegment::Freeze(source);
  EXPECT_EQ(segment.encoding(0), ColumnEncoding::kAllNull);
  EXPECT_EQ(segment.encoding(1), ColumnEncoding::kAllNull);
  ExpectLosslessUnderAllPolicies(rows, "all-null");
}

TEST(StorageEncodingTest, EmptyTableRoundTrips) {
  Table rows(Schema({{"objID", ValueType::kInt}, {"ra", ValueType::kDouble}}));
  ExpectLosslessUnderAllPolicies(rows, "empty table");
  ColumnarTable source(rows);
  FrozenSegment segment = FrozenSegment::Freeze(source);
  EXPECT_EQ(segment.num_rows(), 0u);
  auto parsed = FrozenSegment::Parse(segment.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_columns(), 2u);
}

TEST(StorageEncodingTest, BoolsPackToBits) {
  util::Random rng(5);
  Table rows(Schema({{"flag", ValueType::kBool}}));
  for (size_t i = 0; i < 300; ++i) {
    rows.AddRow({rng.NextUint64(10) == 0
                     ? Value::Null()
                     : Value::Bool(rng.NextUint64(2) == 0)});
  }
  ColumnarTable source(rows);
  FrozenSegment segment = FrozenSegment::Freeze(source);
  EXPECT_EQ(segment.encoding(0), ColumnEncoding::kPackedBool);
  ExpectLosslessUnderAllPolicies(rows, "packed bools");
}

TEST(StorageEncodingTest, MixedColumnsUseTaggedFallback) {
  Table rows(Schema({{"m", ValueType::kInt}}));
  rows.AddRow({Value::Int(7)});
  rows.AddRow({Value::String("not an int")});
  rows.AddRow({Value::Double(2.5)});
  rows.AddRow({Value::Null()});
  rows.AddRow({Value::Bool(true)});
  ColumnarTable source(rows);
  FrozenSegment segment = FrozenSegment::Freeze(source);
  EXPECT_EQ(segment.encoding(0), ColumnEncoding::kTaggedMixed);
  ExpectLosslessUnderAllPolicies(rows, "mixed fallback");
}

TEST(StorageEncodingTest, AdversarialDoublesStayBitExact) {
  // Values the decimal encoder must either represent exactly or route
  // through its exception list / a different encoding: NaNs, signed zeros,
  // denormals, huge magnitudes, 2^53 neighbors.
  Table rows(Schema({{"x", ValueType::kDouble}}));
  const double kDoubles[] = {
      0.0, -0.0, 1.0, -1.0, 0.5, 1e6, 1e-7, 123456.789, 1e15, 1e308, 5e-324,
      -2.5e-10, std::numeric_limits<double>::quiet_NaN(),
      -std::numeric_limits<double>::quiet_NaN(), 9007199254740992.0,
      9007199254740993.0, std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity()};
  util::Random rng(6);
  for (int rep = 0; rep < 30; ++rep) {
    for (double v : kDoubles) rows.AddRow({Value::Double(v)});
    rows.AddRow({Value::Null()});
    rows.AddRow({Value::Double(rng.NextDouble(-1e3, 1e3))});
  }
  ExpectLosslessUnderAllPolicies(rows, "adversarial doubles");
}

TEST(StorageEncodingTest, RandomizedTablesAcrossAllPolicies) {
  util::Random rng(99);
  static const ValueType kTypes[] = {ValueType::kInt, ValueType::kDouble,
                                     ValueType::kBool, ValueType::kString};
  for (int iter = 0; iter < 25; ++iter) {
    const size_t num_cols = 1 + rng.NextUint64(5);
    std::vector<sql::Column> cols;
    for (size_t c = 0; c < num_cols; ++c) {
      cols.push_back(
          {"c" + std::to_string(c), kTypes[rng.NextUint64(4)]});
    }
    Table rows((Schema(cols)));
    const size_t num_rows = rng.NextUint64(200);
    for (size_t r = 0; r < num_rows; ++r) {
      std::vector<Value> row;
      for (size_t c = 0; c < num_cols; ++c) {
        const uint64_t roll = rng.NextUint64(10);
        if (roll == 0) {
          row.push_back(Value::Null());
          continue;
        }
        switch (cols[c].type) {
          case ValueType::kInt:
            row.push_back(Value::Int(
                static_cast<int64_t>(rng.NextUint64(1000000)) - 500000));
            break;
          case ValueType::kDouble:
            row.push_back(
                roll == 1
                    ? Value::Double(rng.NextDouble(-1e12, 1e12))
                    : Value::Double(std::round(rng.NextDouble(-100, 100) *
                                               1000.0) /
                                    1000.0));
            break;
          case ValueType::kBool:
            row.push_back(Value::Bool(rng.NextUint64(2) == 0));
            break;
          case ValueType::kString:
            row.push_back(Value::String(
                rng.NextUint64(3) == 0 ? ""
                                       : "s" + std::to_string(
                                                   rng.NextUint64(8))));
            break;
          default:
            row.push_back(Value::Null());
        }
      }
      rows.AddRow(std::move(row));
    }
    ExpectLosslessUnderAllPolicies(
        rows, ("random iter " + std::to_string(iter)).c_str());
  }
}

TEST(StorageEncodingTest, ParseRejectsCorruptSegments) {
  Table rows(Schema({{"objID", ValueType::kInt}}));
  for (int64_t i = 0; i < 50; ++i) rows.AddRow({Value::Int(i)});
  FrozenSegment segment = FrozenSegment::Freeze(ColumnarTable(rows));
  std::string wire = segment.Serialize();
  EXPECT_FALSE(FrozenSegment::Parse(wire.substr(0, wire.size() / 2)).ok());
  EXPECT_FALSE(FrozenSegment::Parse("").ok());
}

}  // namespace
}  // namespace fnproxy::storage
