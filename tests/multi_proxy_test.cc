// Tier-wide oracle and invariant suite for the cooperative proxy tier:
// a 4-proxy tier answers byte-for-byte what a single proxy answers, the
// aggregated statistics respect the stats-sum invariant, a cross-proxy
// thundering herd fetches the origin exactly once, and a scripted peer
// outage trips the prober's per-peer breaker, falls back to the origin
// (never serving garbage), and recovers through half-open.

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/proxy.h"
#include "net/circuit_breaker.h"
#include "net/fault.h"
#include "net/http.h"
#include "server/web_app.h"
#include "util/clock.h"
#include "workload/experiment.h"
#include "workload/multi_proxy.h"
#include "workload/rbe.h"
#include "workload/trace.h"

namespace fnproxy {
namespace {

using workload::ProxyTier;
using workload::ProxyTierOptions;

std::string Fixed(double value, int decimals) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

workload::TraceQuery MakeQuery(double ra, double dec, double radius_arcmin) {
  workload::TraceQuery query;
  query.params["ra"] = Fixed(ra, 4);
  query.params["dec"] = Fixed(dec, 4);
  query.params["radius"] = Fixed(radius_arcmin, 2);
  return query;
}

/// Sum the ISSUE's tier-wide stats invariant terms: every template request
/// is accounted for by exactly one outcome.
uint64_t OutcomeSum(const core::ProxyStats& s) {
  return s.exact_hits + s.containment_hits + s.region_containments +
         s.overlaps_handled + s.peer_hits + s.misses + s.collapsed + s.shed;
}

/// One self-contained pipeline: origin web app + tier, on a private clock.
struct TierStack {
  util::SimulatedClock clock;
  std::unique_ptr<server::OriginWebApp> app;
  std::unique_ptr<ProxyTier> tier;

  TierStack(workload::SkyExperiment& sky, const ProxyTierOptions& options) {
    app = std::make_unique<server::OriginWebApp>(sky.database(), &clock,
                                                 sky.options().server_costs);
    EXPECT_TRUE(app->RegisterForm("/radial", workload::kRadialTemplateSql).ok());
    tier = std::make_unique<ProxyTier>(options, &sky.templates(), app.get(),
                                       &clock);
  }
};

/// Bases are mutually disjoint cones inside the synthetic catalog footprint
/// (ra 120..250, dec -5..65); each base is followed by an exact repeat and a
/// concentric smaller-radius (contained) variant, the relations the tier
/// serves from peers.
workload::Trace OracleTrace() {
  workload::Trace trace;
  trace.form_path = "/radial";
  constexpr int kBases = 6;
  std::vector<workload::TraceQuery> variants;
  for (int i = 0; i < kBases; ++i) {
    const double ra = 130.0 + 18.0 * i;
    const double dec = 10.0 + 6.0 * i;
    trace.queries.push_back(MakeQuery(ra, dec, 24.0));
    variants.push_back(MakeQuery(ra, dec, 24.0));        // Exact repeat.
    variants.push_back(MakeQuery(ra, dec, 9.0));         // Concentric subset.
  }
  for (auto& v : variants) trace.queries.push_back(std::move(v));
  return trace;
}

ProxyTierOptions TierOptions(size_t num_proxies) {
  ProxyTierOptions options;
  options.num_proxies = num_proxies;
  options.proxy.mode = core::CachingMode::kActiveFull;
  return options;
}

// The oracle: replaying the same trace sequentially through a 4-proxy tier
// and through a single proxy yields byte-identical XML answers per query,
// with the same number of origin executions.
TEST(MultiProxyTier, FourProxyTierMatchesSingleProxyByteForByte) {
  workload::SkyExperiment::Options sky_options;
  sky_options.trace.num_queries = 1;  // Placeholder; queries are hand-built.
  workload::SkyExperiment sky(sky_options);
  const workload::Trace trace = OracleTrace();

  TierStack quad(sky, TierOptions(4));
  TierStack solo(sky, TierOptions(1));
  for (size_t i = 0; i < trace.queries.size(); ++i) {
    net::HttpRequest request = workload::MakeRequest(trace, trace.queries[i]);
    net::HttpResponse from_quad = quad.tier->Handle(request);
    net::HttpResponse from_solo = solo.tier->Handle(request);
    ASSERT_EQ(from_quad.status_code, 200) << "query " << i;
    ASSERT_EQ(from_solo.status_code, 200) << "query " << i;
    // Headers legitimately differ (X-Peer-Served); the answer must not.
    ASSERT_EQ(from_quad.body, from_solo.body) << "query " << i;
  }

  const core::ProxyStats quad_stats = quad.tier->AggregateStats();
  const core::ProxyStats solo_stats = solo.tier->AggregateStats();
  // Same origin workload: cooperation must not cost extra origin fetches.
  EXPECT_EQ(quad.app->form_queries_served(), solo.app->form_queries_served());
  EXPECT_EQ(quad.app->form_queries_served(), 6u);
  // The tier actually cooperated (repeat/variant queries landing on a proxy
  // other than their base's were served by the owning sibling).
  EXPECT_GT(quad_stats.peer_hits, 0u);
  EXPECT_EQ(solo_stats.peer_hits, 0u);
  // Stats-sum invariant on the aggregate.
  EXPECT_EQ(OutcomeSum(quad_stats), quad_stats.template_requests);
  EXPECT_EQ(quad_stats.template_requests, trace.queries.size());
  EXPECT_EQ(OutcomeSum(solo_stats), solo_stats.template_requests);
}

// The invariant holds under a concurrent replay of a generated trace with
// the full relationship mix, and the replay is error-free.
TEST(MultiProxyTier, StatsSumInvariantUnderConcurrentReplay) {
  workload::SkyExperiment::Options sky_options;
  sky_options.trace.num_queries = 200;
  workload::SkyExperiment sky(sky_options);

  workload::TierRunOptions run;
  run.num_threads = 4;
  workload::TierRunOutput output =
      workload::RunTraceTier(sky, sky.trace(), TierOptions(4), run);

  EXPECT_EQ(output.driver.errors, 0u);
  const core::ProxyStats& stats = output.aggregate;
  EXPECT_EQ(stats.template_requests, 200u);
  EXPECT_EQ(OutcomeSum(stats), stats.template_requests);
  // Peer accounting consistency: every peer hit came from some probe, and
  // per-proxy stats sum to the aggregate.
  EXPECT_GE(stats.peer_lookups, stats.peer_hits);
  uint64_t per_proxy_requests = 0;
  for (const core::ProxyStats& p : output.per_proxy) {
    per_proxy_requests += p.template_requests;
    EXPECT_EQ(OutcomeSum(p), p.template_requests);
  }
  EXPECT_EQ(per_proxy_requests, stats.template_requests);
}

// Cross-proxy thundering herd: eight concurrent clients ask four proxies
// for the same cold region; the tier elects exactly one origin fetch and
// everyone else rides it (local single-flight followers or peer-flight
// joins on the owning sibling).
TEST(MultiProxyTier, CrossProxyThunderingHerdFetchesOriginOnce) {
  workload::SkyExperiment::Options sky_options;
  sky_options.trace.num_queries = 1;
  workload::SkyExperiment sky(sky_options);

  workload::Trace herd;
  herd.form_path = "/radial";
  for (int i = 0; i < 8; ++i) {
    herd.queries.push_back(MakeQuery(187.0, 31.0, 12.0));
  }
  workload::TierRunOptions run;
  run.num_threads = 8;
  workload::TierRunOutput output =
      workload::RunTraceTier(sky, herd, TierOptions(4), run);

  EXPECT_EQ(output.driver.errors, 0u);
  EXPECT_EQ(output.origin_form_queries, 1u)
      << "the herd must collapse onto one origin fetch";
  const core::ProxyStats& stats = output.aggregate;
  EXPECT_EQ(stats.template_requests, 8u);
  EXPECT_EQ(OutcomeSum(stats), 8u);
  EXPECT_EQ(stats.misses, 1u) << "only the tier-wide leader misses";
}

// --- Peer-fault suite -------------------------------------------------------

/// Sends `query` through proxy `prober` and returns the index of the sibling
/// it probed (or `prober` itself when it owned the key locally), by diffing
/// the per-peer wire counters around the call.
size_t ProbeTarget(ProxyTier& tier, size_t prober,
                   const workload::Trace& trace,
                   const workload::TraceQuery& query) {
  const size_t n = tier.num_proxies();
  std::vector<uint64_t> before(n, 0);
  for (size_t to = 0; to < n; ++to) {
    if (to != prober) before[to] = tier.peer_channel(prober, to).requests();
  }
  net::HttpResponse response =
      tier.proxy(prober).Handle(workload::MakeRequest(trace, query));
  EXPECT_EQ(response.status_code, 200);
  for (size_t to = 0; to < n; ++to) {
    if (to != prober &&
        tier.peer_channel(prober, to).requests() > before[to]) {
      return to;
    }
  }
  return prober;
}

/// Finds >= `want` fresh disjoint queries all owned by the same sibling of
/// proxy 0, using a throwaway discovery tier (ring placement is a pure
/// function of the node ids, so the result transfers to any equal-size
/// tier). Returns {owner, queries}.
std::pair<size_t, std::vector<workload::TraceQuery>> QueriesOwnedBySibling(
    workload::SkyExperiment& sky, const workload::Trace& trace, size_t want) {
  TierStack discovery(sky, TierOptions(4));
  std::map<size_t, std::vector<workload::TraceQuery>> by_owner;
  for (int i = 0; i < 40; ++i) {
    workload::TraceQuery query =
        MakeQuery(125.0 + 3.0 * i, -2.0 + 1.5 * i, 8.0);
    size_t owner = ProbeTarget(*discovery.tier, 0, trace, query);
    if (owner == 0) continue;  // Proxy 0 owns it: no peer involved.
    by_owner[owner].push_back(query);
    if (by_owner[owner].size() >= want) return {owner, by_owner[owner]};
  }
  ADD_FAILURE() << "discovery did not find enough sibling-owned queries";
  return {1, {}};
}

TEST(MultiProxyTier, PeerOutageTripsBreakerFallsBackAndRecovers) {
  workload::SkyExperiment::Options sky_options;
  sky_options.trace.num_queries = 1;
  workload::SkyExperiment sky(sky_options);
  workload::Trace shape;  // Only provides the form path for MakeRequest.
  shape.form_path = "/radial";

  auto [owner, owned] = QueriesOwnedBySibling(sky, shape, 4);
  ASSERT_GE(owned.size(), 4u);

  ProxyTierOptions options = TierOptions(4);
  options.peer_breaker.enabled = true;
  options.peer_breaker.window_size = 8;
  options.peer_breaker.min_samples = 2;
  options.peer_breaker.failure_threshold = 0.5;
  options.peer_breaker.open_cooldown_micros = 5'000'000;
  options.peer_breaker.half_open_successes = 1;
  const int64_t outage_end = 120'000'000;  // Virtual two minutes.
  options.peer_faults[owner] = net::OutageProfile(0, outage_end);
  TierStack stack(sky, options);
  ProxyTier& tier = *stack.tier;
  const net::CircuitBreaker& breaker = tier.peer_channel(0, owner).breaker();

  // During the outage every probe to the owner fails; the request falls
  // back to the origin with the degraded marker, and the per-peer breaker
  // accumulates failures until it opens.
  uint64_t origin_before = stack.app->form_queries_served();
  for (size_t i = 0; i < 2; ++i) {
    net::HttpResponse response =
        tier.proxy(0).Handle(workload::MakeRequest(shape, owned[i]));
    ASSERT_EQ(response.status_code, 200) << "fallback must still answer";
    EXPECT_NE(response.body.find("<Result"), std::string::npos);
    EXPECT_EQ(response.headers.at("X-Peer-Degraded"), "1");
    EXPECT_EQ(response.headers.count("X-Peer-Served"), 0u);
  }
  EXPECT_EQ(breaker.state(), net::BreakerState::kOpen);
  EXPECT_GE(tier.proxy(0).stats().peer_failures, 2u);
  EXPECT_EQ(stack.app->form_queries_served(), origin_before + 2)
      << "every degraded request was answered by the origin";

  // Open breaker: the next owned query is refused locally — no wire traffic
  // to the sick peer — and still answered from the origin.
  const uint64_t wire_before = tier.peer_channel(0, owner).requests();
  net::HttpResponse shortcut =
      tier.proxy(0).Handle(workload::MakeRequest(shape, owned[2]));
  ASSERT_EQ(shortcut.status_code, 200);
  EXPECT_EQ(shortcut.headers.at("X-Peer-Degraded"), "1");
  EXPECT_EQ(tier.peer_channel(0, owner).requests(), wire_before);

  // Past the outage and the cooldown, the half-open trial probe goes
  // through, succeeds (a clean miss is a healthy answer), closes the
  // breaker, and the tier cooperates again.
  stack.clock.Advance(outage_end + options.peer_breaker.open_cooldown_micros);
  net::HttpResponse trial =
      tier.proxy(0).Handle(workload::MakeRequest(shape, owned[3]));
  ASSERT_EQ(trial.status_code, 200);
  EXPECT_EQ(breaker.state(), net::BreakerState::kClosed);
  EXPECT_GT(tier.peer_channel(0, owner).requests(), wire_before);

  // The recovered path serves peer hits again: proxy 0 fetched owned[3]
  // from the origin as tier leader and pushed the entry to the owner, so a
  // different prober now gets it from the owner without an origin trip.
  const size_t other = owner == 1 ? 2 : 1;
  const uint64_t origin_mid = stack.app->form_queries_served();
  net::HttpResponse peer_served =
      tier.proxy(other).Handle(workload::MakeRequest(shape, owned[3]));
  ASSERT_EQ(peer_served.status_code, 200);
  EXPECT_EQ(peer_served.headers.at("X-Peer-Served"), "1");
  EXPECT_EQ(stack.app->form_queries_served(), origin_mid);
  EXPECT_GT(tier.proxy(other).stats().peer_hits, 0u);
}

// A sibling that answers 200s full of garbage must never poison the
// requester: the probe is counted as a peer failure, the request falls back
// to the origin, and the answer matches a tier that never spoke to a peer.
TEST(MultiProxyTier, GarbagePeerResponsesAreNeverServed) {
  workload::SkyExperiment::Options sky_options;
  sky_options.trace.num_queries = 1;
  workload::SkyExperiment sky(sky_options);
  workload::Trace shape;
  shape.form_path = "/radial";

  auto [owner, owned] = QueriesOwnedBySibling(sky, shape, 2);
  ASSERT_GE(owned.size(), 2u);

  ProxyTierOptions options = TierOptions(4);
  net::FaultProfile garbage;
  garbage.garbage_rate = 1.0;
  options.peer_faults[owner] = garbage;
  TierStack faulty(sky, options);
  TierStack clean(sky, TierOptions(1));

  // Seed the owner so probes are answered with a 200 entry — the response
  // the injector then corrupts. A direct client request to the owning proxy
  // bypasses the inbound-peer fault layer, like router traffic does.
  for (size_t i = 0; i < 2; ++i) {
    ASSERT_EQ(faulty.tier->proxy(owner)
                  .Handle(workload::MakeRequest(shape, owned[i]))
                  .status_code,
              200);
  }

  for (size_t i = 0; i < 2; ++i) {
    net::HttpRequest request = workload::MakeRequest(shape, owned[i]);
    net::HttpResponse from_faulty = faulty.tier->proxy(0).Handle(request);
    net::HttpResponse reference = clean.tier->Handle(request);
    ASSERT_EQ(from_faulty.status_code, 200);
    EXPECT_EQ(from_faulty.body, reference.body)
        << "garbage from the peer must not reach the client";
    std::string header_dump;
    for (const auto& [k, v] : from_faulty.headers) {
      header_dump += k + "=" + v + " ";
    }
    ASSERT_EQ(from_faulty.headers.count("X-Peer-Degraded"), 1u)
        << "headers: " << header_dump;
    EXPECT_EQ(from_faulty.headers.at("X-Peer-Degraded"), "1");
  }
  EXPECT_GE(faulty.tier->proxy(0).stats().peer_failures, 1u);
  EXPECT_EQ(faulty.tier->AggregateStats().peer_hits, 0u);
  // Repeats are served from the requester's own (clean) cache.
  net::HttpResponse repeat =
      faulty.tier->proxy(0).Handle(workload::MakeRequest(shape, owned[0]));
  EXPECT_EQ(repeat.status_code, 200);
  EXPECT_EQ(repeat.body, clean.tier->Handle(
                             workload::MakeRequest(shape, owned[0])).body);
}

}  // namespace
}  // namespace fnproxy
