// Tests for the runtime lock-order validator: the engine is driven
// directly with fake mutex addresses (it always compiles), and — when the
// build enables FNPROXY_LOCK_ORDER_VALIDATOR — through real util::Mutex
// hooks with a deliberately inverted acquisition.
#include "util/lock_order.h"

#include <gtest/gtest.h>

#include "util/mutex.h"

namespace fnproxy::util {
namespace {

int g_violations_seen = 0;
const char* g_last_held = nullptr;
const char* g_last_acquired = nullptr;

void CountingHandler(const char* held_name, const char* acquired_name) {
  ++g_violations_seen;
  g_last_held = held_name;
  g_last_acquired = acquired_name;
}

/// Installs the counting handler for the test's scope and restores the
/// previous one (the default abort handler) afterwards.
class HandlerScope {
 public:
  HandlerScope() : prev_(LockOrderValidator::SetViolationHandler(
                       &CountingHandler)) {
    g_violations_seen = 0;
    g_last_held = g_last_acquired = nullptr;
  }
  ~HandlerScope() { LockOrderValidator::SetViolationHandler(prev_); }

 private:
  LockOrderValidator::ViolationHandler prev_;
};

TEST(LockOrderValidatorTest, ConsistentOrderIsQuiet) {
  HandlerScope scope;
  int a = 0, b = 0;
  for (int round = 0; round < 3; ++round) {
    LockOrderValidator::OnAcquire(&a, "A");
    LockOrderValidator::OnAcquire(&b, "B");
    LockOrderValidator::OnRelease(&b);
    LockOrderValidator::OnRelease(&a);
  }
  EXPECT_EQ(g_violations_seen, 0);
  LockOrderValidator::OnDestroy(&a);
  LockOrderValidator::OnDestroy(&b);
}

TEST(LockOrderValidatorTest, DetectsInversion) {
  HandlerScope scope;
  const size_t before = LockOrderValidator::violation_count();
  int a = 0, b = 0;
  LockOrderValidator::OnAcquire(&a, "A");
  LockOrderValidator::OnAcquire(&b, "B");  // records A-before-B
  LockOrderValidator::OnRelease(&b);
  LockOrderValidator::OnRelease(&a);
  EXPECT_EQ(g_violations_seen, 0);
  LockOrderValidator::OnAcquire(&b, "B");
  LockOrderValidator::OnAcquire(&a, "A");  // inversion
  EXPECT_EQ(g_violations_seen, 1);
  EXPECT_STREQ(g_last_held, "B");
  EXPECT_STREQ(g_last_acquired, "A");
  EXPECT_EQ(LockOrderValidator::violation_count(), before + 1);
  LockOrderValidator::OnRelease(&a);
  LockOrderValidator::OnRelease(&b);
  LockOrderValidator::OnDestroy(&a);
  LockOrderValidator::OnDestroy(&b);
}

TEST(LockOrderValidatorTest, ReacquiringSameMutexIsIgnored) {
  // Re-entry on one instance is Clang TSA's job, not the order validator's.
  HandlerScope scope;
  int a = 0;
  LockOrderValidator::OnAcquire(&a, "A");
  LockOrderValidator::OnAcquire(&a, "A");
  EXPECT_EQ(g_violations_seen, 0);
  LockOrderValidator::OnRelease(&a);
  LockOrderValidator::OnRelease(&a);
  LockOrderValidator::OnDestroy(&a);
}

TEST(LockOrderValidatorTest, DestroyPurgesInstanceEdges) {
  // A recycled address must not inherit a dead mutex's ordering. After
  // destroying both, the opposite order is a fresh first observation.
  HandlerScope scope;
  int a = 0, b = 0;
  LockOrderValidator::OnAcquire(&a, "A");
  LockOrderValidator::OnAcquire(&b, "B");
  LockOrderValidator::OnRelease(&b);
  LockOrderValidator::OnRelease(&a);
  LockOrderValidator::OnDestroy(&a);
  LockOrderValidator::OnDestroy(&b);
  LockOrderValidator::OnAcquire(&b, "B2");
  LockOrderValidator::OnAcquire(&a, "A2");
  EXPECT_EQ(g_violations_seen, 0);
  LockOrderValidator::OnRelease(&a);
  LockOrderValidator::OnRelease(&b);
  LockOrderValidator::OnDestroy(&a);
  LockOrderValidator::OnDestroy(&b);
}

#if defined(FNPROXY_LOCK_ORDER_VALIDATOR)
/// End-to-end through the real mutex hooks: a deliberately inverted
/// acquisition pair must fire the handler exactly once.
TEST(LockOrderValidatorTest, MutexHooksCatchDeliberateInversion) {
  HandlerScope scope;
  Mutex first("lock_order_test.first");
  Mutex second("lock_order_test.second");
  {
    MutexLock outer(first);
    MutexLock inner(second);
  }
  EXPECT_EQ(g_violations_seen, 0);
  {
    MutexLock outer(second);
    MutexLock inner(first);  // deliberate inversion
  }
  EXPECT_EQ(g_violations_seen, 1);
  EXPECT_STREQ(g_last_acquired, "lock_order_test.first");
}
#endif  // FNPROXY_LOCK_ORDER_VALIDATOR

}  // namespace
}  // namespace fnproxy::util
