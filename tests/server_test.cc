#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "catalog/book_catalog.h"
#include "catalog/sky_catalog.h"
#include "geometry/celestial.h"
#include "net/http.h"
#include "server/book_functions.h"
#include "server/database.h"
#include "server/sky_functions.h"
#include "server/web_app.h"
#include "sql/parser.h"
#include "sql/table_xml.h"
#include "util/clock.h"

namespace fnproxy::server {
namespace {

using sql::Table;
using sql::Value;

class SkyServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog::SkyCatalogConfig config;
    config.num_objects = 20000;
    config.num_clusters = 10;
    config.seed = 321;
    db_ = new Database();
    db_->AddTable("PhotoPrimary", catalog::GenerateSkyCatalog(config));
    grid_ = new SkyGrid(db_->FindTable("PhotoPrimary"));
    db_->RegisterTableFunction(MakeGetNearbyObjEq(grid_));
    db_->RegisterTableFunction(MakeGetObjFromRect(grid_));
    db_->scalar_functions()->Register(
        "fPhotoFlags",
        [](const std::vector<Value>& args) -> util::StatusOr<Value> {
          FNPROXY_ASSIGN_OR_RETURN(int64_t bit,
                                   catalog::PhotoFlagValue(args.at(0).AsString()));
          return Value::Int(bit);
        });
  }
  static void TearDownTestSuite() {
    delete grid_;
    delete db_;
    grid_ = nullptr;
    db_ = nullptr;
  }

  static Database* db_;
  static SkyGrid* grid_;
};

Database* SkyServerTest::db_ = nullptr;
SkyGrid* SkyServerTest::grid_ = nullptr;

/// Brute-force reference for fGetNearbyObjEq.
std::set<int64_t> BruteForceCone(const Table& catalog_table, double ra,
                                 double dec, double radius_arcmin) {
  std::set<int64_t> ids;
  size_t id_col = *catalog_table.schema().FindColumn("objID");
  size_t ra_col = *catalog_table.schema().FindColumn("ra");
  size_t dec_col = *catalog_table.schema().FindColumn("dec");
  for (const auto& row : catalog_table.rows()) {
    double sep = geometry::AngularSeparationDeg(
                     ra, dec, row[ra_col].AsDouble(), row[dec_col].AsDouble()) *
                 60.0;
    if (sep <= radius_arcmin) ids.insert(row[id_col].AsInt());
  }
  return ids;
}

TEST_F(SkyServerTest, NearbyObjEqMatchesBruteForce) {
  const TableValuedFunction* fn = db_->FindTableFunction("fGetNearbyObjEq");
  ASSERT_NE(fn, nullptr);
  const Table& catalog_table = *db_->FindTable("PhotoPrimary");
  struct Probe {
    double ra, dec, radius;
  };
  for (const Probe& p : {Probe{180.0, 30.0, 20.0}, Probe{150.5, 10.25, 45.0},
                         Probe{220.0, 55.0, 5.0}, Probe{180.0, 30.0, 0.0}}) {
    auto result = fn->Execute(
        {Value::Double(p.ra), Value::Double(p.dec), Value::Double(p.radius)});
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    std::set<int64_t> got;
    for (const auto& row : result->table.rows()) got.insert(row[0].AsInt());
    EXPECT_EQ(got, BruteForceCone(catalog_table, p.ra, p.dec, p.radius))
        << "ra=" << p.ra << " dec=" << p.dec << " r=" << p.radius;
    EXPECT_LE(result->table.num_rows(), result->tuples_examined);
  }
}

TEST_F(SkyServerTest, NearbyObjEqDistancesCorrect) {
  const TableValuedFunction* fn = db_->FindTableFunction("fGetNearbyObjEq");
  auto result = fn->Execute(
      {Value::Double(180.0), Value::Double(30.0), Value::Double(30.0)});
  ASSERT_TRUE(result.ok());
  for (const auto& row : result->table.rows()) {
    double d = row[1].AsDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 30.0 + 1e-6);
  }
}

TEST_F(SkyServerTest, NearbyObjEqRejectsBadArgs) {
  const TableValuedFunction* fn = db_->FindTableFunction("fGetNearbyObjEq");
  EXPECT_FALSE(fn->Execute({Value::Double(1)}).ok());
  EXPECT_FALSE(fn->Execute({Value::Double(1), Value::Double(2),
                            Value::Double(-5)})
                   .ok());
}

TEST_F(SkyServerTest, ObjFromRectMatchesBruteForce) {
  const TableValuedFunction* fn = db_->FindTableFunction("fGetObjFromRect");
  ASSERT_NE(fn, nullptr);
  const Table& catalog_table = *db_->FindTable("PhotoPrimary");
  auto result =
      fn->Execute({Value::Double(170.0), Value::Double(175.0),
                   Value::Double(20.0), Value::Double(28.0)});
  ASSERT_TRUE(result.ok());
  std::set<int64_t> got;
  for (const auto& row : result->table.rows()) got.insert(row[0].AsInt());

  std::set<int64_t> expected;
  size_t id_col = *catalog_table.schema().FindColumn("objID");
  size_t ra_col = *catalog_table.schema().FindColumn("ra");
  size_t dec_col = *catalog_table.schema().FindColumn("dec");
  for (const auto& row : catalog_table.rows()) {
    double ra = row[ra_col].AsDouble();
    double dec = row[dec_col].AsDouble();
    if (ra >= 170 && ra <= 175 && dec >= 20 && dec <= 28) {
      expected.insert(row[id_col].AsInt());
    }
  }
  EXPECT_EQ(got, expected);
  EXPECT_FALSE(got.empty());
}

TEST_F(SkyServerTest, FunctionLookupNormalizesName) {
  EXPECT_NE(db_->FindTableFunction("fgetnearbyobjeq"), nullptr);
  EXPECT_NE(db_->FindTableFunction("dbo.fGetNearbyObjEq"), nullptr);
  EXPECT_EQ(db_->FindTableFunction("fNoSuch"), nullptr);
}

sql::SelectStatement MustParse(std::string_view sql) {
  auto stmt = sql::ParseSelect(sql);
  EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
  return std::move(stmt).value();
}

TEST_F(SkyServerTest, ExecuteJoinQuery) {
  auto result = db_->ExecuteSelect(MustParse(
      "SELECT p.objID, p.ra, p.dec, n.distance "
      "FROM fGetNearbyObjEq(180.0, 30.0, 30.0) AS n "
      "JOIN PhotoPrimary AS p ON n.objID = p.objID"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->table.schema().num_columns(), 4u);
  // Join keeps every function tuple exactly once (objID is a key).
  auto fn_only = db_->FindTableFunction("fGetNearbyObjEq")
                     ->Execute({Value::Double(180.0), Value::Double(30.0),
                                Value::Double(30.0)});
  ASSERT_TRUE(fn_only.ok());
  EXPECT_EQ(result->table.num_rows(), fn_only->table.num_rows());
}

TEST_F(SkyServerTest, ExecuteWhereFilters) {
  auto all = db_->ExecuteSelect(MustParse(
      "SELECT p.objID, p.type FROM fGetNearbyObjEq(180.0, 30.0, 40.0) AS n "
      "JOIN PhotoPrimary AS p ON n.objID = p.objID"));
  auto galaxies = db_->ExecuteSelect(MustParse(
      "SELECT p.objID, p.type FROM fGetNearbyObjEq(180.0, 30.0, 40.0) AS n "
      "JOIN PhotoPrimary AS p ON n.objID = p.objID WHERE p.type = 3"));
  ASSERT_TRUE(all.ok());
  ASSERT_TRUE(galaxies.ok());
  EXPECT_LT(galaxies->table.num_rows(), all->table.num_rows());
  for (const auto& row : galaxies->table.rows()) {
    EXPECT_EQ(row[1].AsInt(), 3);
  }
}

TEST_F(SkyServerTest, ExecuteScalarFunctionInWhere) {
  auto result = db_->ExecuteSelect(MustParse(
      "SELECT p.objID, p.flags FROM fGetNearbyObjEq(180.0, 30.0, 40.0) AS n "
      "JOIN PhotoPrimary AS p ON n.objID = p.objID "
      "WHERE (p.flags & fPhotoFlags('SATURATED')) = 0"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (const auto& row : result->table.rows()) {
    EXPECT_EQ(row[1].AsInt() & 0x40000, 0);
  }
}

TEST_F(SkyServerTest, ExecuteTopAndOrderBy) {
  auto result = db_->ExecuteSelect(MustParse(
      "SELECT TOP 5 p.objID, n.distance "
      "FROM fGetNearbyObjEq(180.0, 30.0, 60.0) AS n "
      "JOIN PhotoPrimary AS p ON n.objID = p.objID ORDER BY n.distance"));
  ASSERT_TRUE(result.ok());
  ASSERT_LE(result->table.num_rows(), 5u);
  for (size_t i = 1; i < result->table.num_rows(); ++i) {
    EXPECT_LE(result->table.row(i - 1)[1].AsDouble(),
              result->table.row(i)[1].AsDouble());
  }
}

TEST_F(SkyServerTest, ExecuteStarProjection) {
  auto result = db_->ExecuteSelect(
      MustParse("SELECT * FROM fGetNearbyObjEq(180.0, 30.0, 10.0)"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->table.schema().num_columns(), 2u);  // objID, distance.
}

TEST_F(SkyServerTest, ExecuteExpressionProjection) {
  auto result = db_->ExecuteSelect(MustParse(
      "SELECT p.g - p.r AS color FROM fGetNearbyObjEq(180.0, 30.0, 20.0) AS n "
      "JOIN PhotoPrimary AS p ON n.objID = p.objID"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->table.schema().column(0).name, "color");
}

TEST_F(SkyServerTest, ExecuteErrorsSurfaced) {
  EXPECT_FALSE(db_->ExecuteSelect(MustParse("SELECT * FROM NoTable")).ok());
  EXPECT_FALSE(db_->ExecuteSelect(MustParse("SELECT * FROM fNoFn(1)")).ok());
  EXPECT_FALSE(
      db_->ExecuteSelect(MustParse("SELECT * FROM f($unbound)")).ok());
  EXPECT_FALSE(db_->ExecuteSelect(
                      MustParse("SELECT zzz FROM fGetNearbyObjEq(1, 2, 3)"))
                   .ok());
}

TEST_F(SkyServerTest, RemainderStyleQueryWithNotRegion) {
  // The kind of statement the proxy ships to /sql: original query plus a
  // negated sphere predicate over the coordinate columns.
  geometry::Point c = geometry::RaDecToUnitVector(180.0, 30.0);
  double chord = geometry::ArcminToChord(15.0);
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "SELECT p.objID, p.cx, p.cy, p.cz "
      "FROM fGetNearbyObjEq(180.0, 30.0, 30.0) AS n "
      "JOIN PhotoPrimary AS p ON n.objID = p.objID "
      "WHERE NOT (((p.cx - %.17g) * (p.cx - %.17g) + (p.cy - %.17g) * "
      "(p.cy - %.17g) + (p.cz - %.17g) * (p.cz - %.17g)) <= %.17g)",
      c[0], c[0], c[1], c[1], c[2], c[2], chord * chord);
  auto remainder = db_->ExecuteSelect(MustParse(buf));
  ASSERT_TRUE(remainder.ok()) << remainder.status().ToString();
  auto inner = db_->ExecuteSelect(MustParse(
      "SELECT p.objID FROM fGetNearbyObjEq(180.0, 30.0, 15.0) AS n "
      "JOIN PhotoPrimary AS p ON n.objID = p.objID"));
  auto outer = db_->ExecuteSelect(MustParse(
      "SELECT p.objID FROM fGetNearbyObjEq(180.0, 30.0, 30.0) AS n "
      "JOIN PhotoPrimary AS p ON n.objID = p.objID"));
  ASSERT_TRUE(inner.ok());
  ASSERT_TRUE(outer.ok());
  EXPECT_EQ(remainder->table.num_rows() + inner->table.num_rows(),
            outer->table.num_rows());
}

TEST_F(SkyServerTest, WebAppFormEndpoint) {
  util::SimulatedClock clock;
  ServerCostModel costs;
  costs.base_query_ms = 100.0;
  OriginWebApp app(db_, &clock, costs);
  ASSERT_TRUE(app.RegisterForm(
                     "/radial",
                     "SELECT p.objID, p.ra, p.dec "
                     "FROM fGetNearbyObjEq($ra, $dec, $radius) AS n "
                     "JOIN PhotoPrimary AS p ON n.objID = p.objID")
                  .ok());
  auto request = net::HttpRequest::Get("/radial?ra=180.0&dec=30.0&radius=20.0");
  ASSERT_TRUE(request.ok());
  net::HttpResponse response = app.Handle(*request);
  ASSERT_TRUE(response.ok()) << response.body;
  auto table = sql::TableFromXml(response.body);
  ASSERT_TRUE(table.ok());
  EXPECT_GT(clock.NowMicros(), 100000);  // At least the base cost.
  EXPECT_EQ(app.form_queries_served(), 1u);
}

TEST_F(SkyServerTest, WebAppSqlEndpoint) {
  util::SimulatedClock clock;
  OriginWebApp app(db_, &clock);
  net::HttpRequest request;
  request.path = "/sql";
  request.query_params["q"] =
      "SELECT TOP 3 objID FROM fGetNearbyObjEq(180.0, 30.0, 60.0)";
  net::HttpResponse response = app.Handle(request);
  ASSERT_TRUE(response.ok()) << response.body;
  auto table = sql::TableFromXml(response.body);
  ASSERT_TRUE(table.ok());
  EXPECT_LE(table->num_rows(), 3u);
  EXPECT_EQ(app.sql_queries_served(), 1u);
}

TEST_F(SkyServerTest, WebAppRemainderCostsMore) {
  ServerCostModel costs;
  const char* sql_text = "SELECT objID FROM fGetNearbyObjEq(180.0, 30.0, 30.0)";
  util::SimulatedClock clock_form;
  OriginWebApp form_app(db_, &clock_form, costs);
  ASSERT_TRUE(form_app.RegisterForm("/q", sql_text).ok());
  auto form_request = net::HttpRequest::Get("/q");
  ASSERT_TRUE(form_request.ok());
  form_app.Handle(*form_request);

  util::SimulatedClock clock_sql;
  OriginWebApp sql_app(db_, &clock_sql, costs);
  net::HttpRequest sql_request;
  sql_request.path = "/sql";
  sql_request.query_params["q"] = sql_text;
  sql_app.Handle(sql_request);

  EXPECT_GT(clock_sql.NowMicros(), clock_form.NowMicros());
}

TEST_F(SkyServerTest, WebAppErrors) {
  util::SimulatedClock clock;
  OriginWebApp app(db_, &clock);
  auto bad_path = net::HttpRequest::Get("/nope");
  EXPECT_EQ(app.Handle(*bad_path).status_code, 404);

  net::HttpRequest bad_sql;
  bad_sql.path = "/sql";
  bad_sql.query_params["q"] = "NOT SQL AT ALL";
  EXPECT_EQ(app.Handle(bad_sql).status_code, 400);

  net::HttpRequest no_q;
  no_q.path = "/sql";
  EXPECT_EQ(app.Handle(no_q).status_code, 400);

  app.set_sql_endpoint_enabled(false);
  net::HttpRequest disabled;
  disabled.path = "/sql";
  disabled.query_params["q"] = "SELECT * FROM PhotoPrimary";
  EXPECT_EQ(app.Handle(disabled).status_code, 403);
}

TEST_F(SkyServerTest, WebAppMissingFormParam) {
  util::SimulatedClock clock;
  OriginWebApp app(db_, &clock);
  ASSERT_TRUE(app.RegisterForm("/radial",
                               "SELECT objID FROM fGetNearbyObjEq($ra, $dec, "
                               "$radius)")
                  .ok());
  auto request = net::HttpRequest::Get("/radial?ra=180.0");  // Missing params.
  EXPECT_EQ(app.Handle(*request).status_code, 400);
}

TEST(BookServerTest, SimilarBooksMatchesBruteForce) {
  catalog::BookCatalogConfig config;
  config.num_books = 5000;
  Database db;
  db.AddTable("Books", catalog::GenerateBookCatalog(config));
  const Table& books = *db.FindTable("Books");
  db.RegisterTableFunction(MakeGetSimilarBooks(&books));

  const TableValuedFunction* fn = db.FindTableFunction("fGetSimilarBooks");
  ASSERT_NE(fn, nullptr);
  auto result = fn->Execute({Value::Double(0.4), Value::Double(0.5),
                             Value::Double(0.6), Value::Double(0.15)});
  ASSERT_TRUE(result.ok());

  size_t f1 = *books.schema().FindColumn("f1");
  size_t f2 = *books.schema().FindColumn("f2");
  size_t f3 = *books.schema().FindColumn("f3");
  size_t expected = 0;
  for (const auto& row : books.rows()) {
    double d1 = row[f1].AsDouble() - 0.4;
    double d2 = row[f2].AsDouble() - 0.5;
    double d3 = row[f3].AsDouble() - 0.6;
    if (d1 * d1 + d2 * d2 + d3 * d3 <= 0.15 * 0.15) ++expected;
  }
  EXPECT_EQ(result->table.num_rows(), expected);
  EXPECT_GT(expected, 0u);
}

TEST(CostModelTest, RemainderMultiplierAppliesToCompute) {
  ServerCostModel costs;
  costs.base_query_ms = 100;
  costs.per_candidate_us = 10;
  costs.per_result_us = 5;
  costs.remainder_multiplier = 2.0;
  int64_t normal = costs.ProcessingMicros(1000, 100, false);
  int64_t remainder = costs.ProcessingMicros(1000, 100, true);
  EXPECT_EQ(normal, 100000 + 10000 + 500);
  EXPECT_EQ(remainder, 2 * (100000 + 10000) + 500);
}

}  // namespace
}  // namespace fnproxy::server
