// Randomized property tests for the columnar storage layer, with the
// row-wise implementations as oracles: the columnar representation must
// round-trip arbitrary tables losslessly, and the columnar subsumed-query
// pipeline (SelectInRegion / MergeDistinct / ApplyOrderAndTop / TableToXml)
// must agree with the row-wise path to the byte, including the historical
// dedup identity (ToSqlLiteral key strings) and Region::ContainsPoint float
// semantics.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <thread>
#include <unordered_set>

#include "core/local_eval.h"
#include "geometry/hyperrectangle.h"
#include "geometry/hypersphere.h"
#include "geometry/polytope.h"
#include "sql/columnar.h"
#include "sql/parser.h"
#include "sql/table_xml.h"
#include "util/random.h"

namespace fnproxy {
namespace {

using sql::ColumnarTable;
using sql::Row;
using sql::Schema;
using sql::Table;
using sql::Value;
using sql::ValueType;

// --- Adversarial value generation ------------------------------------------

double WeirdDouble(util::Random& rng) {
  static const double kDoubles[] = {
      0.0,
      -0.0,
      1.0,
      -1.0,
      0.5,
      1e6,      // Renders as "1e+06": dedup-distinct from Int(1000000).
      100000.0,  // Renders as "100000": dedup-equal to Int(100000).
      1e-7,
      123456.789,
      1e15,
      1e308,
      5e-324,
      -2.5e-10,
      std::numeric_limits<double>::quiet_NaN(),
      -std::numeric_limits<double>::quiet_NaN(),
      9007199254740992.0,  // 2^53.
  };
  if (rng.NextUint64(2) == 0) {
    return kDoubles[rng.NextUint64(sizeof(kDoubles) / sizeof(kDoubles[0]))];
  }
  return rng.NextDouble(-1e3, 1e3);
}

int64_t WeirdInt(util::Random& rng) {
  static const int64_t kInts[] = {
      0,
      1,
      -1,
      999999,
      1000000,   // Historical key "1000000" != FormatDouble(1e6) = "1e+06".
      10000000,
      12345,
      (int64_t{1} << 53),
      (int64_t{1} << 53) + 1,  // Not exactly representable as double.
      std::numeric_limits<int64_t>::min(),
      std::numeric_limits<int64_t>::max(),
  };
  if (rng.NextUint64(2) == 0) {
    return kInts[rng.NextUint64(sizeof(kInts) / sizeof(kInts[0]))];
  }
  return static_cast<int64_t>(rng.NextUint64(1000)) - 500;
}

std::string WeirdString(util::Random& rng) {
  static const char* kStrings[] = {
      "", "a", "hello world", "<&>\"'", "line\nbreak", "tab\there",
      "it's quoted", "x\x1fy",  // Embedded historical key separator.
      "0", "1e+06", "nan",      // Strings shadowing numeric renderings.
  };
  return kStrings[rng.NextUint64(sizeof(kStrings) / sizeof(kStrings[0]))];
}

Value RandomValueOfType(util::Random& rng, ValueType type) {
  switch (type) {
    case ValueType::kInt:
      return Value::Int(WeirdInt(rng));
    case ValueType::kDouble:
      return Value::Double(WeirdDouble(rng));
    case ValueType::kBool:
      return Value::Bool(rng.NextUint64(2) == 0);
    case ValueType::kString:
      return Value::String(WeirdString(rng));
    case ValueType::kNull:
      return Value::Null();
  }
  return Value::Null();
}

/// 80% a value of the declared type, 10% NULL, 10% a value of a random other
/// type (degrading the column to the kMixed fallback).
Value RandomCell(util::Random& rng, ValueType declared) {
  uint64_t roll = rng.NextUint64(10);
  if (roll == 0) return Value::Null();
  if (roll == 1) {
    static const ValueType kTypes[] = {ValueType::kInt, ValueType::kDouble,
                                       ValueType::kBool, ValueType::kString};
    return RandomValueOfType(rng, kTypes[rng.NextUint64(4)]);
  }
  return RandomValueOfType(rng, declared);
}

Table RandomTable(util::Random& rng, size_t max_rows) {
  static const ValueType kTypes[] = {ValueType::kInt, ValueType::kDouble,
                                     ValueType::kBool, ValueType::kString,
                                     ValueType::kNull};
  size_t num_cols = 1 + rng.NextUint64(5);
  std::vector<sql::Column> columns;
  for (size_t c = 0; c < num_cols; ++c) {
    std::string name = "c";
    name += std::to_string(c);
    columns.push_back({std::move(name), kTypes[rng.NextUint64(5)]});
  }
  Table table((Schema(columns)));
  size_t rows = rng.NextUint64(max_rows + 1);
  for (size_t r = 0; r < rows; ++r) {
    Row row;
    for (size_t c = 0; c < num_cols; ++c) {
      row.push_back(RandomCell(rng, columns[c].type));
    }
    table.AddRow(std::move(row));
  }
  return table;
}

// --- Exact comparison (bit-level for doubles, unlike SQL equality) ----------

bool CellsBitEqual(const Value& a, const Value& b) {
  if (a.type() != b.type()) return false;
  switch (a.type()) {
    case ValueType::kNull:
      return true;
    case ValueType::kInt:
      return a.AsInt() == b.AsInt();
    case ValueType::kDouble: {
      double x = a.AsDouble();
      double y = b.AsDouble();
      return std::memcmp(&x, &y, sizeof(x)) == 0;
    }
    case ValueType::kBool:
      return a.AsBool() == b.AsBool();
    case ValueType::kString:
      return a.AsString() == b.AsString();
  }
  return false;
}

::testing::AssertionResult TablesBitEqual(const Table& a, const Table& b) {
  if (!a.schema().SameColumns(b.schema())) {
    return ::testing::AssertionFailure() << "schemas differ";
  }
  if (a.num_rows() != b.num_rows()) {
    return ::testing::AssertionFailure()
           << "row counts differ: " << a.num_rows() << " vs " << b.num_rows();
  }
  for (size_t r = 0; r < a.num_rows(); ++r) {
    for (size_t c = 0; c < a.schema().columns().size(); ++c) {
      if (!CellsBitEqual(a.row(r)[c], b.row(r)[c])) {
        return ::testing::AssertionFailure()
               << "cell (" << r << "," << c << ") differs: "
               << a.row(r)[c].ToSqlLiteral() << " vs "
               << b.row(r)[c].ToSqlLiteral();
      }
    }
  }
  return ::testing::AssertionSuccess();
}

// --- Properties -------------------------------------------------------------

TEST(ColumnarPropertyTest, RoundTripIsLossless) {
  util::Random rng(11);
  for (int iter = 0; iter < 200; ++iter) {
    Table table = RandomTable(rng, 40);
    ColumnarTable columnar(table);
    ASSERT_EQ(columnar.num_rows(), table.num_rows());
    EXPECT_TRUE(TablesBitEqual(columnar.ToTable(), table))
        << "iteration " << iter;
  }
}

TEST(ColumnarPropertyTest, AppendRowsFromMatchesPerRowAppend) {
  util::Random rng(12);
  for (int iter = 0; iter < 100; ++iter) {
    Table table = RandomTable(rng, 40);
    ColumnarTable src(table);
    std::vector<uint32_t> picks;
    for (size_t r = 0; r < src.num_rows(); ++r) {
      size_t copies = rng.NextUint64(3);  // 0, 1 or 2 copies per row.
      for (size_t k = 0; k < copies; ++k) {
        picks.push_back(static_cast<uint32_t>(r));
      }
    }
    ColumnarTable batch(table.schema());
    batch.AppendRowsFrom(src, picks.data(), picks.size());
    ColumnarTable scalar(table.schema());
    for (uint32_t r : picks) scalar.AppendRowFrom(src, r);
    EXPECT_TRUE(TablesBitEqual(batch.ToTable(), scalar.ToTable()))
        << "iteration " << iter;
  }
}

TEST(ColumnarPropertyTest, BatchRowHashesMatchScalarHashes) {
  util::Random rng(13);
  for (int iter = 0; iter < 100; ++iter) {
    Table table = RandomTable(rng, 40);
    ColumnarTable columnar(table);
    size_t n = columnar.num_rows();
    std::vector<uint64_t> batch(n);
    columnar.RowDedupHashes(nullptr, n, batch.data());
    for (size_t r = 0; r < n; ++r) {
      ASSERT_EQ(batch[r], columnar.RowDedupHash(r)) << "row " << r;
      // And both agree with the row-wise hash of the materialized row.
      ASSERT_EQ(batch[r], sql::DedupHashRow(table.row(r))) << "row " << r;
    }
  }
}

/// Coordinate tables: x/y declared DOUBLE but occasionally NULL or a
/// non-numeric string (degrading to kMixed), exercising the validity-bitmap
/// path of the membership kernels.
Table RandomPointsTable(util::Random& rng, size_t rows) {
  Table table(Schema({{"id", ValueType::kInt},
                      {"x", ValueType::kDouble},
                      {"y", ValueType::kDouble}}));
  for (size_t r = 0; r < rows; ++r) {
    Row row;
    row.push_back(Value::Int(static_cast<int64_t>(r)));
    for (int c = 0; c < 2; ++c) {
      uint64_t roll = rng.NextUint64(20);
      if (roll == 0) {
        row.push_back(Value::Null());
      } else if (roll == 1) {
        row.push_back(Value::String("not-a-number"));
      } else if (roll == 2) {
        row.push_back(Value::Int(static_cast<int64_t>(rng.NextUint64(10))));
      } else {
        row.push_back(Value::Double(rng.NextDouble(0, 10)));
      }
    }
    table.AddRow(std::move(row));
  }
  return table;
}

std::unique_ptr<geometry::Region> RandomRegion(util::Random& rng) {
  switch (rng.NextUint64(3)) {
    case 0: {
      geometry::Point center{rng.NextDouble(0, 10), rng.NextDouble(0, 10)};
      return std::make_unique<geometry::Hypersphere>(center,
                                                     rng.NextDouble(0.5, 6));
    }
    case 1: {
      double x0 = rng.NextDouble(0, 10), x1 = rng.NextDouble(0, 10);
      double y0 = rng.NextDouble(0, 10), y1 = rng.NextDouble(0, 10);
      return std::make_unique<geometry::Hyperrectangle>(
          geometry::Point{std::min(x0, x1), std::min(y0, y1)},
          geometry::Point{std::max(x0, x1), std::max(y0, y1)});
    }
    default: {
      double x0 = rng.NextDouble(0, 10), x1 = rng.NextDouble(0, 10);
      double y0 = rng.NextDouble(0, 10), y1 = rng.NextDouble(0, 10);
      geometry::Hyperrectangle rect(
          geometry::Point{std::min(x0, x1), std::min(y0, y1)},
          geometry::Point{std::max(x0, x1), std::max(y0, y1)});
      return std::make_unique<geometry::Polytope>(
          geometry::Polytope::FromRectangle(rect));
    }
  }
}

TEST(ColumnarPropertyTest, SelectInRegionMatchesRowWiseAllShapes) {
  util::Random rng(14);
  const std::vector<std::string> coords = {"x", "y"};
  for (int iter = 0; iter < 150; ++iter) {
    Table table = RandomPointsTable(rng, 1 + rng.NextUint64(60));
    ColumnarTable columnar(table);
    if (rng.NextUint64(2) == 0) {
      // Half the time scan through admission-prepared views.
      ASSERT_TRUE(columnar.PrepareNumericView(1).ok());
      ASSERT_TRUE(columnar.PrepareNumericView(2).ok());
    }
    auto region = RandomRegion(rng);
    auto row_result = core::SelectInRegion(table, *region, coords);
    auto col_result = core::SelectInRegion(columnar, *region, coords);
    ASSERT_TRUE(row_result.ok());
    ASSERT_TRUE(col_result.ok());
    EXPECT_EQ(col_result->tuples_scanned, row_result->tuples_scanned);
    Table materialized(table.schema());
    for (uint32_t r : col_result->selection) {
      materialized.AddRow(table.row(r));
    }
    EXPECT_TRUE(TablesBitEqual(materialized, row_result->table))
        << "iteration " << iter << " shape "
        << static_cast<int>(region->kind());
  }
}

TEST(ColumnarPropertyTest, SelectInRegionMissingCoordinateColumn) {
  Table table = RandomPointsTable(*std::make_unique<util::Random>(1), 5);
  ColumnarTable columnar(table);
  geometry::Hypersphere region({0, 0}, 1.0);
  auto row_result = core::SelectInRegion(table, region, {"x", "missing"});
  auto col_result = core::SelectInRegion(columnar, region, {"x", "missing"});
  ASSERT_FALSE(row_result.ok());
  ASSERT_FALSE(col_result.ok());
  EXPECT_EQ(col_result.status().message(), row_result.status().message());
}

/// The seed's dedup identity: one key string per row, cells rendered with
/// ToSqlLiteral and joined on 0x1f. MergeDistinct (both layouts) must keep
/// exactly the first row per distinct key, in input order.
Table OracleMergeDistinct(const std::vector<const Table*>& parts) {
  Table merged(parts[0]->schema());
  std::unordered_set<std::string> seen;
  for (const Table* part : parts) {
    for (const Row& row : part->rows()) {
      std::string key;
      for (const Value& v : row) {
        key += v.ToSqlLiteral();
        key += '\x1f';
      }
      if (seen.insert(key).second) merged.AddRow(row);
    }
  }
  return merged;
}

TEST(ColumnarPropertyTest, MergeDistinctMatchesSeedKeyOracle) {
  util::Random rng(15);
  for (int iter = 0; iter < 100; ++iter) {
    Table base = RandomTable(rng, 30);
    // Build 2-3 parts over the same schema with heavy cross-part duplication.
    size_t num_parts = 2 + rng.NextUint64(2);
    std::vector<Table> parts;
    for (size_t p = 0; p < num_parts; ++p) {
      Table part(base.schema());
      for (size_t r = 0; r < base.num_rows(); ++r) {
        if (rng.NextUint64(3) != 0) part.AddRow(base.row(r));
        if (rng.NextUint64(4) == 0) part.AddRow(base.row(r));  // Intra-part dup.
      }
      parts.push_back(std::move(part));
    }
    std::vector<const Table*> part_ptrs;
    std::vector<core::ColumnarSlice> slices;
    std::vector<std::unique_ptr<ColumnarTable>> columnar_parts;
    for (const Table& part : parts) {
      part_ptrs.push_back(&part);
      columnar_parts.push_back(std::make_unique<ColumnarTable>(part));
      slices.push_back({columnar_parts.back().get(), nullptr});
    }
    Table expected = OracleMergeDistinct(part_ptrs);
    auto row_merged = core::MergeDistinct(part_ptrs);
    ASSERT_TRUE(row_merged.ok());
    EXPECT_TRUE(TablesBitEqual(*row_merged, expected)) << "iteration " << iter;
    auto col_merged = core::MergeDistinctColumnar(slices);
    ASSERT_TRUE(col_merged.ok());
    EXPECT_TRUE(TablesBitEqual(col_merged->ToTable(), expected))
        << "iteration " << iter;
  }
}

TEST(ColumnarPropertyTest, XmlSerializationByteIdentical) {
  util::Random rng(16);
  for (int iter = 0; iter < 100; ++iter) {
    Table table = RandomTable(rng, 30);
    ColumnarTable columnar(table);
    EXPECT_EQ(sql::TableToXml(columnar), sql::TableToXml(table))
        << "iteration " << iter;
    // Selection overload vs a row-wise table materialized from the same
    // selection.
    std::vector<uint32_t> selection;
    Table subset(table.schema());
    for (size_t r = 0; r < table.num_rows(); ++r) {
      if (rng.NextUint64(2) == 0) {
        selection.push_back(static_cast<uint32_t>(r));
        subset.AddRow(table.row(r));
      }
    }
    EXPECT_EQ(sql::TableToXml(columnar, sql::ResultXmlAttrs{},
                              selection.data(), selection.size()),
              sql::TableToXml(subset))
        << "iteration " << iter;
  }
}

TEST(ColumnarPropertyTest, XmlRoundTripThroughParser) {
  util::Random rng(17);
  for (int iter = 0; iter < 50; ++iter) {
    Table table = RandomTable(rng, 20);
    // The XML parser re-types cells from the schema's declared types; NaN
    // has no parseable rendering, and mixed-type cells legitimately change
    // type. Restrict to well-typed tables for the parse-back check.
    bool parseable = true;
    for (size_t r = 0; r < table.num_rows() && parseable; ++r) {
      for (size_t c = 0; c < table.schema().columns().size(); ++c) {
        const Value& v = table.row(r)[c];
        if (!v.is_null() &&
            v.type() != table.schema().columns()[c].type) {
          parseable = false;
          break;
        }
        if (v.type() == ValueType::kDouble && std::isnan(v.AsDouble())) {
          parseable = false;
          break;
        }
      }
    }
    if (!parseable) continue;
    auto reparsed = sql::TableFromXml(sql::TableToXml(ColumnarTable(table)));
    ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
    EXPECT_TRUE(TablesBitEqual(*reparsed, table)) << "iteration " << iter;
  }
}

TEST(ColumnarPropertyTest, OrderAndTopMatchesRowWise) {
  util::Random rng(18);
  auto stmt = sql::ParseSelect(
      "SELECT TOP 7 id, x, y FROM f(1) ORDER BY x DESC, id");
  ASSERT_TRUE(stmt.ok());
  for (int iter = 0; iter < 100; ++iter) {
    Table table = RandomPointsTable(rng, 1 + rng.NextUint64(40));
    ColumnarTable columnar(table);
    auto row_result = core::ApplyOrderAndTop(table, *stmt);
    ASSERT_TRUE(row_result.ok());
    std::vector<uint32_t> identity(table.num_rows());
    for (size_t r = 0; r < identity.size(); ++r) {
      identity[r] = static_cast<uint32_t>(r);
    }
    auto col_result = core::ApplyOrderAndTop(columnar, identity, *stmt);
    ASSERT_TRUE(col_result.ok());
    Table materialized(table.schema());
    for (uint32_t r : *col_result) materialized.AddRow(table.row(r));
    EXPECT_TRUE(TablesBitEqual(materialized, *row_result))
        << "iteration " << iter;
  }
}

/// Frozen-entry concurrency: after PrepareNumericView, concurrent readers
/// may scan, merge, hash and serialize the same table with no synchronization
/// (this is the CacheStore's shared_ptr<const CacheEntry> contract). Run
/// under TSan to prove it.
TEST(ColumnarPropertyTest, FrozenTableSupportsConcurrentReaders) {
  util::Random rng(19);
  Table table = RandomPointsTable(rng, 500);
  auto columnar = std::make_shared<const ColumnarTable>([&] {
    ColumnarTable t(table);
    EXPECT_TRUE(t.PrepareNumericView(1).ok());
    EXPECT_TRUE(t.PrepareNumericView(2).ok());
    return t;
  }());
  geometry::Hypersphere region({5, 5}, 3.0);
  const std::vector<std::string> coords = {"x", "y"};

  auto reference = core::SelectInRegion(*columnar, region, coords);
  ASSERT_TRUE(reference.ok());
  std::string reference_xml = sql::TableToXml(
      *columnar, sql::ResultXmlAttrs{}, reference->selection.data(),
      reference->selection.size());

  std::vector<std::thread> threads;
  std::vector<int> failures(8, 0);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 20; ++i) {
        auto selected = core::SelectInRegion(*columnar, region, coords);
        if (!selected.ok() ||
            selected->selection != reference->selection) {
          ++failures[t];
          continue;
        }
        auto merged = core::MergeDistinctColumnar(
            {{columnar.get(), &selected->selection},
             {columnar.get(), &selected->selection}});
        if (!merged.ok() ||
            merged->num_rows() > selected->selection.size()) {
          ++failures[t];
          continue;
        }
        std::string xml = sql::TableToXml(*columnar, sql::ResultXmlAttrs{},
                                          selected->selection.data(),
                                          selected->selection.size());
        if (xml != reference_xml) ++failures[t];
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 0; t < 8; ++t) {
    EXPECT_EQ(failures[t], 0) << "thread " << t;
  }
}

}  // namespace
}  // namespace fnproxy
