#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "geometry/celestial.h"
#include "geometry/hyperrectangle.h"
#include "geometry/hypersphere.h"
#include "geometry/polytope.h"
#include "geometry/region.h"
#include "util/random.h"

namespace fnproxy::geometry {
namespace {

Hyperrectangle Rect2(double x0, double y0, double x1, double y1) {
  return Hyperrectangle({x0, y0}, {x1, y1});
}

TEST(HyperrectangleTest, VolumeMarginCorners) {
  Hyperrectangle rect = Rect2(0, 0, 2, 3);
  EXPECT_DOUBLE_EQ(rect.Volume(), 6.0);
  EXPECT_DOUBLE_EQ(rect.Margin(), 5.0);
  EXPECT_EQ(rect.Corners().size(), 4u);
}

TEST(HyperrectangleTest, ContainsPointBoundaryInclusive) {
  Hyperrectangle rect = Rect2(0, 0, 1, 1);
  EXPECT_TRUE(rect.ContainsPoint({0.5, 0.5}));
  EXPECT_TRUE(rect.ContainsPoint({0.0, 1.0}));
  EXPECT_FALSE(rect.ContainsPoint({1.1, 0.5}));
}

TEST(HyperrectangleTest, IntersectAndContainRects) {
  Hyperrectangle a = Rect2(0, 0, 2, 2);
  Hyperrectangle b = Rect2(1, 1, 3, 3);
  Hyperrectangle c = Rect2(0.5, 0.5, 1.5, 1.5);
  Hyperrectangle d = Rect2(5, 5, 6, 6);
  EXPECT_TRUE(a.IntersectsRect(b));
  EXPECT_FALSE(a.ContainsRect(b));
  EXPECT_TRUE(a.ContainsRect(c));
  EXPECT_FALSE(a.IntersectsRect(d));
  EXPECT_DOUBLE_EQ(a.IntersectionVolume(b), 1.0);
  EXPECT_DOUBLE_EQ(a.IntersectionVolume(d), 0.0);
}

TEST(HyperrectangleTest, UnionCoversBoth) {
  Hyperrectangle u = Hyperrectangle::Union(Rect2(0, 0, 1, 1), Rect2(2, -1, 3, 0.5));
  EXPECT_TRUE(u.ContainsRect(Rect2(0, 0, 1, 1)));
  EXPECT_TRUE(u.ContainsRect(Rect2(2, -1, 3, 0.5)));
  EXPECT_DOUBLE_EQ(u.lo()[0], 0.0);
  EXPECT_DOUBLE_EQ(u.hi()[0], 3.0);
}

TEST(HyperrectangleTest, MinDistanceSquared) {
  Hyperrectangle rect = Rect2(0, 0, 1, 1);
  EXPECT_DOUBLE_EQ(rect.MinDistanceSquared({0.5, 0.5}), 0.0);
  EXPECT_DOUBLE_EQ(rect.MinDistanceSquared({2.0, 0.5}), 1.0);
  EXPECT_DOUBLE_EQ(rect.MinDistanceSquared({2.0, 2.0}), 2.0);
}

TEST(HypersphereTest, ContainsPointAndBBox) {
  Hypersphere sphere({0, 0, 0}, 1.0);
  EXPECT_TRUE(sphere.ContainsPoint({0.5, 0.5, 0.5}));
  EXPECT_TRUE(sphere.ContainsPoint({1.0, 0, 0}));
  EXPECT_FALSE(sphere.ContainsPoint({1.0, 0.1, 0}));
  Hyperrectangle bbox = sphere.BoundingBox();
  EXPECT_DOUBLE_EQ(bbox.lo()[0], -1.0);
  EXPECT_DOUBLE_EQ(bbox.hi()[2], 1.0);
}

TEST(RelateTest, SphereSphereCases) {
  Hypersphere big({0, 0}, 2.0);
  Hypersphere inner({0.5, 0}, 1.0);
  Hypersphere overlapping({2.5, 0}, 1.0);
  Hypersphere far({10, 0}, 1.0);
  EXPECT_EQ(Relate(inner, big), RegionRelation::kContainedBy);
  EXPECT_EQ(Relate(big, inner), RegionRelation::kContains);
  EXPECT_EQ(Relate(overlapping, big), RegionRelation::kOverlap);
  EXPECT_EQ(Relate(far, big), RegionRelation::kDisjoint);
  EXPECT_EQ(Relate(big, big), RegionRelation::kEqual);
}

TEST(RelateTest, TangentSpheresIntersect) {
  // Exactly touching spheres count as overlapping (closed regions).
  Hypersphere a({0, 0}, 1.0);
  Hypersphere b({2, 0}, 1.0);
  EXPECT_TRUE(Intersects(a, b));
}

TEST(RelateTest, RectRectCases) {
  Hyperrectangle big = Rect2(0, 0, 10, 10);
  Hyperrectangle inner = Rect2(2, 2, 4, 4);
  Hyperrectangle overlapping = Rect2(8, 8, 12, 12);
  Hyperrectangle far = Rect2(20, 20, 21, 21);
  EXPECT_EQ(Relate(inner, big), RegionRelation::kContainedBy);
  EXPECT_EQ(Relate(big, inner), RegionRelation::kContains);
  EXPECT_EQ(Relate(overlapping, big), RegionRelation::kOverlap);
  EXPECT_EQ(Relate(far, big), RegionRelation::kDisjoint);
}

TEST(RelateTest, SphereRectMixed) {
  Hyperrectangle rect = Rect2(-2, -2, 2, 2);
  Hypersphere inside({0, 0}, 1.0);
  Hypersphere around({0, 0}, 4.0);  // Contains the rect's corners.
  Hypersphere cornering({3, 3}, 1.5);
  EXPECT_EQ(Relate(inside, rect), RegionRelation::kContainedBy);
  EXPECT_EQ(Relate(around, rect), RegionRelation::kContains);
  EXPECT_EQ(Relate(cornering, rect), RegionRelation::kOverlap);
  // Sphere near the corner but missing it: bounding boxes intersect, the
  // shapes do not (distance from corner (2,2) to (3.4,3.4) ~ 1.98 > 1.5).
  Hypersphere near_corner({3.4, 3.4}, 1.5);
  EXPECT_EQ(Relate(near_corner, rect), RegionRelation::kDisjoint);
}

TEST(RelateTest, RectInSphereRequiresCorners) {
  // Rect fits in the sphere's bbox but its corners poke out of the ball.
  Hypersphere sphere({0, 0}, 1.0);
  Hyperrectangle rect = Rect2(-0.9, -0.9, 0.9, 0.9);
  EXPECT_FALSE(Contains(sphere, rect));
  EXPECT_TRUE(Contains(sphere, Rect2(-0.7, -0.7, 0.7, 0.7)));
}

TEST(EqualsTest, ToleratesTinyPerturbation) {
  Hypersphere a({1.0, 2.0, 3.0}, 0.5);
  Hypersphere b({1.0 + 1e-13, 2.0, 3.0}, 0.5);
  EXPECT_TRUE(Equals(a, b));
  Hypersphere c({1.0 + 1e-6, 2.0, 3.0}, 0.5);
  EXPECT_FALSE(Equals(a, c));
}

TEST(PolytopeTest, FromRectangleMatchesRect) {
  Hyperrectangle rect = Rect2(0, 0, 2, 1);
  Polytope poly = Polytope::FromRectangle(rect);
  ASSERT_TRUE(poly.Validate().ok());
  EXPECT_TRUE(Equals(poly, rect));
  EXPECT_TRUE(Contains(poly, Rect2(0.5, 0.2, 1.5, 0.8)));
  EXPECT_TRUE(Contains(rect, poly));
}

TEST(PolytopeTest, TriangleContainment) {
  // Triangle (0,0) (4,0) (0,4): x >= 0, y >= 0, x + y <= 4.
  std::vector<Halfspace> halfspaces = {
      {{-1, 0}, 0}, {{0, -1}, 0}, {{1, 1}, 4}};
  std::vector<Point> vertices = {{0, 0}, {4, 0}, {0, 4}};
  Polytope triangle(halfspaces, vertices);
  ASSERT_TRUE(triangle.Validate().ok());
  EXPECT_TRUE(triangle.ContainsPoint({1, 1}));
  EXPECT_FALSE(triangle.ContainsPoint({3, 3}));
  EXPECT_TRUE(Contains(triangle, Hypersphere({1, 1}, 0.5)));
  EXPECT_FALSE(Contains(triangle, Hypersphere({1, 1}, 2.0)));
  EXPECT_EQ(Relate(Hypersphere({5, 5}, 1.0), triangle),
            RegionRelation::kDisjoint);
  EXPECT_EQ(Relate(Hypersphere({4, 4}, 3.0), triangle),
            RegionRelation::kOverlap);
}

TEST(PolytopeTest, ValidateCatchesInconsistentReps) {
  std::vector<Halfspace> halfspaces = {{{1, 0}, 1}, {{-1, 0}, 0},
                                       {{0, 1}, 1}, {{0, -1}, 0}};
  std::vector<Point> vertices = {{0, 0}, {5, 0}};  // 5 > 1 violates x <= 1.
  Polytope bad(halfspaces, vertices);
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(CelestialTest, UnitVectorIsUnit) {
  for (double ra : {0.0, 90.0, 180.0, 271.5}) {
    for (double dec : {-45.0, 0.0, 30.0, 89.0}) {
      Point v = RaDecToUnitVector(ra, dec);
      EXPECT_NEAR(Norm(v), 1.0, 1e-12);
    }
  }
}

TEST(CelestialTest, KnownDirections) {
  Point x = RaDecToUnitVector(0, 0);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  Point z = RaDecToUnitVector(123, 90);
  EXPECT_NEAR(z[2], 1.0, 1e-12);
}

TEST(CelestialTest, ChordMatchesAngle) {
  // 60 arcmin = 1 degree; chord = 2 sin(0.5 deg).
  double chord = ArcminToChord(60.0);
  EXPECT_NEAR(chord, 2.0 * std::sin(M_PI / 360.0), 1e-15);
}

TEST(CelestialTest, ConeMembershipMatchesAngularSeparation) {
  // A point is in the cone hypersphere iff its angular separation is within
  // the radius.
  double ra = 195.0, dec = 2.5, radius_arcmin = 30.0;
  Hypersphere cone = ConeToHypersphere(ra, dec, radius_arcmin);
  util::Random rng(17);
  for (int i = 0; i < 500; ++i) {
    double ra2 = ra + rng.NextDouble(-2, 2);
    double dec2 = dec + rng.NextDouble(-2, 2);
    double sep_arcmin = AngularSeparationDeg(ra, dec, ra2, dec2) * 60.0;
    if (std::abs(sep_arcmin - radius_arcmin) < 0.01) continue;  // Boundary.
    bool inside = cone.ContainsPoint(RaDecToUnitVector(ra2, dec2));
    EXPECT_EQ(inside, sep_arcmin < radius_arcmin)
        << "sep=" << sep_arcmin << " at (" << ra2 << ", " << dec2 << ")";
  }
}

TEST(CelestialTest, ConeContainmentMatchesAngularGeometry) {
  // Cone A contains cone B iff sep(A,B) + rB <= rA (on the sphere surface;
  // chord geometry must agree for small radii).
  util::Random rng(23);
  for (int i = 0; i < 300; ++i) {
    double ra1 = rng.NextDouble(100, 110), dec1 = rng.NextDouble(10, 20);
    double r1 = rng.NextDouble(5, 60);
    double sep = rng.NextDouble(0, 90);  // arcmin
    double angle = rng.NextDouble(0, 2 * M_PI);
    double ra2 = ra1 + sep / 60.0 * std::cos(angle) /
                           std::cos(DegreesToRadians(dec1));
    double dec2 = dec1 + sep / 60.0 * std::sin(angle);
    double r2 = rng.NextDouble(2, 60);
    double actual_sep = AngularSeparationDeg(ra1, dec1, ra2, dec2) * 60.0;
    if (std::abs(actual_sep + r2 - r1) < 0.05) continue;  // Near-boundary.
    bool expected = actual_sep + r2 < r1;
    bool got = Contains(ConeToHypersphere(ra1, dec1, r1),
                        ConeToHypersphere(ra2, dec2, r2));
    EXPECT_EQ(got, expected) << "sep=" << actual_sep << " r1=" << r1
                             << " r2=" << r2;
  }
}

/// Property sweep: Relate is consistent with its defining predicates for
/// random sphere/rect pairs in several dimensions.
class RelatePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(RelatePropertyTest, RelationConsistency) {
  int dims = GetParam();
  util::Random rng(static_cast<uint64_t>(100 + dims));
  for (int iter = 0; iter < 400; ++iter) {
    // Random pair of regions (sphere or rect).
    auto random_region = [&]() -> std::unique_ptr<Region> {
      if (rng.NextBool(0.5)) {
        Point center(dims);
        for (auto& c : center) c = rng.NextDouble(-5, 5);
        return std::make_unique<Hypersphere>(center, rng.NextDouble(0.1, 3));
      }
      Point lo(dims), hi(dims);
      for (int d = 0; d < dims; ++d) {
        double a = rng.NextDouble(-5, 5), b = rng.NextDouble(-5, 5);
        lo[d] = std::min(a, b);
        hi[d] = std::max(a, b) + 0.01;
      }
      return std::make_unique<Hyperrectangle>(lo, hi);
    };
    auto a = random_region();
    auto b = random_region();
    RegionRelation ab = Relate(*a, *b);
    RegionRelation ba = Relate(*b, *a);

    // Symmetry of the derived relations.
    switch (ab) {
      case RegionRelation::kEqual:
        EXPECT_EQ(ba, RegionRelation::kEqual);
        break;
      case RegionRelation::kContainedBy:
        EXPECT_EQ(ba, RegionRelation::kContains);
        break;
      case RegionRelation::kContains:
        EXPECT_EQ(ba, RegionRelation::kContainedBy);
        break;
      case RegionRelation::kOverlap:
        EXPECT_EQ(ba, RegionRelation::kOverlap);
        break;
      case RegionRelation::kDisjoint:
        EXPECT_EQ(ba, RegionRelation::kDisjoint);
        break;
    }

    // Monte-Carlo check against point membership: containment claims imply
    // every sampled point of the inner region lies in the outer.
    for (int s = 0; s < 40; ++s) {
      Point p(dims);
      Hyperrectangle bbox = a->BoundingBox();
      for (int d = 0; d < dims; ++d) {
        p[static_cast<size_t>(d)] =
            rng.NextDouble(bbox.lo()[static_cast<size_t>(d)],
                           bbox.hi()[static_cast<size_t>(d)]);
      }
      if (!a->ContainsPoint(p)) continue;
      if (ab == RegionRelation::kContainedBy || ab == RegionRelation::kEqual) {
        EXPECT_TRUE(b->ContainsPoint(p))
            << "point of contained region escapes container";
      }
      if (ab == RegionRelation::kDisjoint) {
        EXPECT_FALSE(b->ContainsPoint(p)) << "disjoint regions share a point";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, RelatePropertyTest, ::testing::Values(2, 3, 4));

}  // namespace
}  // namespace fnproxy::geometry
