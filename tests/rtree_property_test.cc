// Property test for the R-tree cache description: random hyperrectangle
// workloads (insert / erase / window query) are replayed side by side
// against the brute-force ArrayRegionIndex as an oracle; after every
// mutation batch the structural invariants are validated and query results
// must match the oracle exactly. A final section freezes the tree and runs
// concurrent readers — with the comparison counts reported through
// out-parameters, const searches share no mutable state and are race-free
// (proved under -fsanitize=thread in CI).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "geometry/hyperrectangle.h"
#include "index/array_index.h"
#include "index/rtree.h"
#include "util/random.h"

namespace fnproxy::index {
namespace {

using geometry::Hyperrectangle;
using geometry::Point;

Hyperrectangle RandomBox(util::Random& rng, size_t dimensions,
                         double extent, double max_side) {
  Point lo(dimensions), hi(dimensions);
  for (size_t d = 0; d < dimensions; ++d) {
    double a = rng.NextDouble(-extent, extent);
    double side = rng.NextDouble(0.0, max_side);
    lo[d] = a;
    hi[d] = a + side;
  }
  return Hyperrectangle(lo, hi);
}

std::vector<EntryId> Sorted(std::vector<EntryId> ids) {
  std::sort(ids.begin(), ids.end());
  return ids;
}

/// One randomized insert/erase/query replay at the given dimensionality and
/// node capacity.
void RunWorkload(size_t dimensions, size_t max_entries, uint64_t seed) {
  SCOPED_TRACE("dims=" + std::to_string(dimensions) +
               " M=" + std::to_string(max_entries) +
               " seed=" + std::to_string(seed));
  util::Random rng(seed);
  RTreeIndex rtree(max_entries);
  ArrayRegionIndex oracle;
  std::map<EntryId, Hyperrectangle> live;
  EntryId next_id = 1;

  for (int step = 0; step < 600; ++step) {
    double op = rng.NextDouble();
    if (op < 0.55 || live.empty()) {
      Hyperrectangle box = RandomBox(rng, dimensions, 100.0, 12.0);
      EntryId id = next_id++;
      size_t comparisons = 0;
      rtree.Insert(id, box, &comparisons);
      oracle.Insert(id, box);
      live.emplace(id, box);
    } else if (op < 0.8) {
      // Erase a pseudo-random live id (and occasionally a dead one, which
      // both structures must refuse identically).
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.NextUint64(live.size())));
      EntryId id = it->first;
      if (rng.NextDouble() < 0.1) id = next_id + 1000;  // Unknown id.
      size_t comparisons = 0;
      bool removed_rtree = rtree.Remove(id, &comparisons);
      bool removed_oracle = oracle.Remove(id);
      ASSERT_EQ(removed_rtree, removed_oracle);
      if (removed_rtree) live.erase(id);
    } else {
      Hyperrectangle query = RandomBox(rng, dimensions, 110.0, 30.0);
      size_t comparisons = 0;
      std::vector<EntryId> got =
          Sorted(rtree.SearchIntersecting(query, &comparisons));
      std::vector<EntryId> want = Sorted(oracle.SearchIntersecting(query));
      ASSERT_EQ(got, want);
    }
    ASSERT_EQ(rtree.size(), live.size());
    if (step % 100 == 99) {
      util::Status status = rtree.Validate();
      ASSERT_TRUE(status.ok()) << status.ToString();
    }
  }
  util::Status status = rtree.Validate();
  ASSERT_TRUE(status.ok()) << status.ToString();
}

TEST(RTreePropertyTest, MatchesArrayOracle2D) {
  RunWorkload(/*dimensions=*/2, /*max_entries=*/8, /*seed=*/11);
  RunWorkload(/*dimensions=*/2, /*max_entries=*/4, /*seed=*/12);
}

TEST(RTreePropertyTest, MatchesArrayOracle3D) {
  RunWorkload(/*dimensions=*/3, /*max_entries=*/8, /*seed=*/21);
  RunWorkload(/*dimensions=*/3, /*max_entries=*/16, /*seed=*/22);
}

TEST(RTreePropertyTest, DegenerateBoxesAndRepeatedRegions) {
  // Zero-volume boxes (points, segments) and many duplicates of one box
  // stress ChooseLeaf/Split tie-breaking.
  RTreeIndex rtree(4);
  ArrayRegionIndex oracle;
  Hyperrectangle dup(Point{1.0, 2.0}, Point{3.0, 4.0});
  for (EntryId id = 1; id <= 40; ++id) {
    size_t comparisons = 0;
    if (id % 2 == 0) {
      rtree.Insert(id, dup, &comparisons);
      oracle.Insert(id, dup);
    } else {
      double v = static_cast<double>(id);
      Hyperrectangle pt(Point{v, v}, Point{v, v});
      rtree.Insert(id, pt, &comparisons);
      oracle.Insert(id, pt);
    }
  }
  util::Status status = rtree.Validate();
  ASSERT_TRUE(status.ok()) << status.ToString();
  for (double x = 0.0; x < 45.0; x += 2.5) {
    Hyperrectangle query(Point{x, x}, Point{x + 4.0, x + 4.0});
    size_t comparisons = 0;
    EXPECT_EQ(Sorted(rtree.SearchIntersecting(query, &comparisons)),
              Sorted(oracle.SearchIntersecting(query)));
  }
}

TEST(RTreePropertyTest, ConcurrentReadersOnFrozenIndex) {
  // Build a frozen tree, then hammer it with parallel window queries while
  // comparing against the oracle: const searches must be bitwise-repeatable
  // and engage no shared mutable state.
  util::Random rng(31);
  RTreeIndex rtree(8);
  ArrayRegionIndex oracle;
  for (EntryId id = 1; id <= 500; ++id) {
    Hyperrectangle box = RandomBox(rng, 2, 100.0, 10.0);
    size_t comparisons = 0;
    rtree.Insert(id, box, &comparisons);
    oracle.Insert(id, box);
  }
  util::Status status = rtree.Validate();
  ASSERT_TRUE(status.ok()) << status.ToString();

  constexpr size_t kReaders = 8;
  std::atomic<uint64_t> mismatches{0};
  std::vector<std::thread> readers;
  for (size_t t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      util::Random thread_rng(100 + t);  // Deterministic per-thread queries.
      for (int i = 0; i < 300; ++i) {
        Hyperrectangle query = RandomBox(thread_rng, 2, 110.0, 25.0);
        size_t rtree_comparisons = 0, oracle_comparisons = 0;
        std::vector<EntryId> got =
            Sorted(rtree.SearchIntersecting(query, &rtree_comparisons));
        std::vector<EntryId> want =
            Sorted(oracle.SearchIntersecting(query, &oracle_comparisons));
        if (got != want || rtree_comparisons == 0 ||
            oracle_comparisons != 500) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(mismatches.load(), 0u);
}

}  // namespace
}  // namespace fnproxy::index
