#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>

#include "index/array_index.h"
#include "index/rtree.h"
#include "util/random.h"

namespace fnproxy::index {
namespace {

using geometry::Hyperrectangle;

Hyperrectangle RandomBox(util::Random& rng, int dims) {
  geometry::Point lo(static_cast<size_t>(dims)), hi(static_cast<size_t>(dims));
  for (int d = 0; d < dims; ++d) {
    double a = rng.NextDouble(0, 100);
    double w = rng.NextDouble(0.1, 5);
    lo[static_cast<size_t>(d)] = a;
    hi[static_cast<size_t>(d)] = a + w;
  }
  return Hyperrectangle(lo, hi);
}

std::set<EntryId> Sorted(std::vector<EntryId> ids) {
  return std::set<EntryId>(ids.begin(), ids.end());
}

/// Both index implementations run the same behavioural suite.
class RegionIndexTest : public ::testing::TestWithParam<bool> {
 protected:
  std::unique_ptr<RegionIndex> MakeIndex() const {
    if (GetParam()) return std::make_unique<RTreeIndex>();
    return std::make_unique<ArrayRegionIndex>();
  }
};

TEST_P(RegionIndexTest, EmptySearch) {
  auto index = MakeIndex();
  EXPECT_EQ(index->size(), 0u);
  EXPECT_TRUE(index->SearchIntersecting(Hyperrectangle({0, 0}, {1, 1})).empty());
}

TEST_P(RegionIndexTest, InsertAndFind) {
  auto index = MakeIndex();
  index->Insert(1, Hyperrectangle({0, 0}, {1, 1}));
  index->Insert(2, Hyperrectangle({5, 5}, {6, 6}));
  EXPECT_EQ(index->size(), 2u);
  auto hits = Sorted(index->SearchIntersecting(Hyperrectangle({0.5, 0.5}, {5.5, 5.5})));
  EXPECT_EQ(hits, (std::set<EntryId>{1, 2}));
  hits = Sorted(index->SearchIntersecting(Hyperrectangle({2, 2}, {3, 3})));
  EXPECT_TRUE(hits.empty());
}

TEST_P(RegionIndexTest, RemoveExistingAndMissing) {
  auto index = MakeIndex();
  index->Insert(1, Hyperrectangle({0, 0}, {1, 1}));
  EXPECT_TRUE(index->Remove(1));
  EXPECT_FALSE(index->Remove(1));
  EXPECT_FALSE(index->Remove(99));
  EXPECT_EQ(index->size(), 0u);
}

TEST_P(RegionIndexTest, TouchingBoxesIntersect) {
  auto index = MakeIndex();
  index->Insert(1, Hyperrectangle({0, 0}, {1, 1}));
  auto hits = index->SearchIntersecting(Hyperrectangle({1, 1}, {2, 2}));
  EXPECT_EQ(hits.size(), 1u);
}

TEST_P(RegionIndexTest, ManyEntriesAllFound) {
  auto index = MakeIndex();
  for (EntryId id = 0; id < 500; ++id) {
    double x = static_cast<double>(id % 25) * 10;
    double y = static_cast<double>(id / 25) * 10;
    index->Insert(id, Hyperrectangle({x, y}, {x + 1, y + 1}));
  }
  EXPECT_EQ(index->size(), 500u);
  auto all = index->SearchIntersecting(Hyperrectangle({-1, -1}, {300, 300}));
  EXPECT_EQ(all.size(), 500u);
}

INSTANTIATE_TEST_SUITE_P(ArrayAndRTree, RegionIndexTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "RTree" : "Array";
                         });

/// Property test: random insert/remove/search streams on the R-tree agree
/// with the trivially correct array index, and invariants hold throughout.
class RTreeEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(RTreeEquivalenceTest, MatchesArrayReference) {
  int dims = GetParam();
  util::Random rng(static_cast<uint64_t>(900 + dims));
  RTreeIndex rtree(8);
  ArrayRegionIndex reference;
  std::map<EntryId, Hyperrectangle> live;
  EntryId next_id = 1;

  for (int step = 0; step < 3000; ++step) {
    double action = rng.NextDouble();
    if (action < 0.55 || live.empty()) {
      Hyperrectangle box = RandomBox(rng, dims);
      EntryId id = next_id++;
      rtree.Insert(id, box);
      reference.Insert(id, box);
      live.emplace(id, box);
    } else if (action < 0.8) {
      // Remove a random live entry.
      auto it = live.begin();
      std::advance(it, static_cast<ptrdiff_t>(rng.NextUint64(live.size())));
      EXPECT_TRUE(rtree.Remove(it->first));
      EXPECT_TRUE(reference.Remove(it->first));
      live.erase(it);
    } else {
      Hyperrectangle query = RandomBox(rng, dims);
      EXPECT_EQ(Sorted(rtree.SearchIntersecting(query)),
                Sorted(reference.SearchIntersecting(query)))
          << "diverged at step " << step;
    }
    if (step % 250 == 0) {
      auto status = rtree.Validate();
      EXPECT_TRUE(status.ok()) << status.ToString() << " at step " << step;
      EXPECT_EQ(rtree.size(), live.size());
    }
  }
  auto status = rtree.Validate();
  EXPECT_TRUE(status.ok()) << status.ToString();
}

INSTANTIATE_TEST_SUITE_P(Dims, RTreeEquivalenceTest, ::testing::Values(2, 3));

TEST(RTreeTest, HeightGrowsLogarithmically) {
  RTreeIndex rtree(8);
  util::Random rng(42);
  for (EntryId id = 0; id < 2000; ++id) {
    rtree.Insert(id, RandomBox(rng, 2));
  }
  EXPECT_TRUE(rtree.Validate().ok());
  // 2000 entries with fanout >= 3 must fit in few levels.
  EXPECT_LE(rtree.Height(), 8u);
  EXPECT_GE(rtree.Height(), 3u);
}

TEST(RTreeTest, DrainToEmptyAndReuse) {
  RTreeIndex rtree(8);
  util::Random rng(43);
  std::vector<Hyperrectangle> boxes;
  for (EntryId id = 0; id < 300; ++id) {
    boxes.push_back(RandomBox(rng, 2));
    rtree.Insert(id, boxes.back());
  }
  for (EntryId id = 0; id < 300; ++id) {
    EXPECT_TRUE(rtree.Remove(id)) << id;
  }
  EXPECT_EQ(rtree.size(), 0u);
  EXPECT_TRUE(rtree.Validate().ok());
  rtree.Insert(999, boxes[0]);
  EXPECT_EQ(rtree.SearchIntersecting(boxes[0]).size(), 1u);
}

TEST(RTreeTest, SearchVisitsFewerBoxesThanArrayOnClusteredData) {
  RTreeIndex rtree(8);
  ArrayRegionIndex array;
  // Well-separated clusters: the R-tree should prune whole subtrees.
  for (EntryId id = 0; id < 400; ++id) {
    double cx = static_cast<double>(id % 4) * 1000;
    double cy = static_cast<double>(id / 4);
    Hyperrectangle box({cx, cy}, {cx + 1, cy + 1});
    rtree.Insert(id, box);
    array.Insert(id, box);
  }
  Hyperrectangle probe({-10.0, -10.0}, {50.0, 120.0});
  auto rtree_hits = rtree.SearchIntersecting(probe);
  size_t rtree_comparisons = rtree.last_op_comparisons();
  auto array_hits = array.SearchIntersecting(probe);
  size_t array_comparisons = array.last_op_comparisons();
  EXPECT_EQ(Sorted(rtree_hits), Sorted(array_hits));
  EXPECT_LT(rtree_comparisons, array_comparisons);
}

TEST(ArrayIndexTest, ComparisonAccountingIsLinear) {
  ArrayRegionIndex array;
  for (EntryId id = 0; id < 100; ++id) {
    array.Insert(id, Hyperrectangle({static_cast<double>(id), 0},
                                    {static_cast<double>(id) + 1, 1}));
  }
  array.SearchIntersecting(Hyperrectangle({0, 0}, {5, 5}));
  EXPECT_EQ(array.last_op_comparisons(), 100u);
}

}  // namespace
}  // namespace fnproxy::index
