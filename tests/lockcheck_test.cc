// Golden-diagnostic tests for the whole-program concurrency checker: one
// fixture per check-id under tests/lockcheck_fixtures/, plus the guarantee
// that the repository's own source tree checks clean (CI runs
// fnproxy_lockcheck --werror over the same files).
#include "analysis/lockcheck.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace fnproxy::analysis {
namespace {

using lint::Severity;

#ifndef FNPROXY_LOCKCHECK_FIXTURE_DIR
#error "FNPROXY_LOCKCHECK_FIXTURE_DIR must be defined by the build"
#endif
#ifndef FNPROXY_SOURCE_DIR
#error "FNPROXY_SOURCE_DIR must be defined by the build"
#endif

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

LockcheckResult CheckFixture(const std::string& name) {
  const std::string path =
      std::string(FNPROXY_LOCKCHECK_FIXTURE_DIR) + "/" + name;
  return RunLockcheck({{name, ReadFileOrDie(path)}});
}

/// One expected diagnostic: exact line, severity and check-id, plus a
/// substring the message must contain.
struct Expected {
  size_t line;
  Severity severity;
  std::string check_id;
  std::string message_part;
};

void ExpectDiagnostics(const std::string& fixture,
                       const std::vector<Expected>& expected) {
  SCOPED_TRACE(fixture);
  const LockcheckResult result = CheckFixture(fixture);
  ASSERT_EQ(result.diagnostics.size(), expected.size())
      << result.FormatDiagnostics();
  for (size_t i = 0; i < expected.size(); ++i) {
    SCOPED_TRACE("diagnostic #" + std::to_string(i));
    const lint::Diagnostic& got = result.diagnostics[i];
    EXPECT_EQ(got.line, expected[i].line);
    EXPECT_EQ(got.severity, expected[i].severity);
    EXPECT_EQ(got.check_id, expected[i].check_id);
    EXPECT_NE(got.message.find(expected[i].message_part), std::string::npos)
        << "message '" << got.message << "' does not contain '"
        << expected[i].message_part << "'";
  }
}

TEST(LockcheckFixtureTest, LockOrderCycle) {
  // Anchored at the first edge of the cycle: the cross-component call in
  // A::Alpha made while A::a_mu_ is held.
  ExpectDiagnostics("lock_order_cycle.cc",
                    {{35, Severity::kError, "lock-order-cycle",
                      "lock-order cycle"}});
}

TEST(LockcheckFixtureTest, GuardedByMissing) {
  // Anchored at the member declaration, where the annotation belongs.
  ExpectDiagnostics("guarded_by_missing.cc",
                    {{15, Severity::kError, "guarded-by-missing",
                      "has no GUARDED_BY annotation"}});
}

TEST(LockcheckFixtureTest, UnguardedAsyncWrite) {
  ExpectDiagnostics("unguarded_async_write.cc",
                    {{18, Severity::kError, "unguarded-async-write",
                      "written from a detached task"}});
}

TEST(LockcheckFixtureTest, CvWaitNoPredicate) {
  ExpectDiagnostics("cv_wait_no_predicate.cc",
                    {{23, Severity::kError, "cv-wait-no-predicate",
                      "no predicate"}});
}

TEST(LockcheckFixtureTest, ExcludesMissing) {
  ExpectDiagnostics("excludes_missing.cc",
                    {{11, Severity::kWarning, "excludes-missing",
                      "not annotated EXCLUDES(mu_)"}});
}

TEST(LockcheckFixtureTest, AcquireWithoutCapability) {
  ExpectDiagnostics("acquire_without_capability.cc",
                    {{11, Severity::kError, "acquire-without-capability",
                      "not declared CAPABILITY"}});
}

TEST(LockcheckFixtureTest, CleanFixtureHasNoDiagnostics) {
  const LockcheckResult result = CheckFixture("clean.cc");
  EXPECT_TRUE(result.diagnostics.empty()) << result.FormatDiagnostics();
  EXPECT_FALSE(result.HasErrors());
}

TEST(LockcheckSuppressionTest, LockcheckOkCommentSuppressesFinding) {
  // The cv-wait fixture's defect, with a justified suppression comment on
  // the flagged line.
  std::string content = ReadFileOrDie(
      std::string(FNPROXY_LOCKCHECK_FIXTURE_DIR) + "/cv_wait_no_predicate.cc");
  const std::string flagged = "cv_.wait(lock);";
  const size_t at = content.find(flagged);
  ASSERT_NE(at, std::string::npos);
  content.insert(at + flagged.size(),
                 "  // lockcheck-ok(cv-wait-no-predicate) woken exactly once");
  const LockcheckResult result = RunLockcheck({{"inline.cc", content}});
  EXPECT_TRUE(result.diagnostics.empty()) << result.FormatDiagnostics();
}

TEST(LockcheckSuppressionTest, UnrelatedSuppressionDoesNotHide) {
  std::string content = ReadFileOrDie(
      std::string(FNPROXY_LOCKCHECK_FIXTURE_DIR) + "/cv_wait_no_predicate.cc");
  const std::string flagged = "cv_.wait(lock);";
  const size_t at = content.find(flagged);
  ASSERT_NE(at, std::string::npos);
  content.insert(at + flagged.size(), "  // lockcheck-ok(excludes-missing)");
  const LockcheckResult result = RunLockcheck({{"inline.cc", content}});
  ASSERT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(result.diagnostics[0].check_id, "cv-wait-no-predicate");
}

TEST(LockcheckRunTest, EmptyInputIsClean) {
  const LockcheckResult result = RunLockcheck({});
  EXPECT_TRUE(result.diagnostics.empty());
  EXPECT_FALSE(result.HasErrors());
}

/// The repository's own source tree must check clean — the same invariant
/// CI enforces with `fnproxy_lockcheck --werror src/`. A regression here
/// means a new component broke the locking conventions of DESIGN.md §11.
TEST(LockcheckRealSourceTest, RepositorySourceTreeChecksClean) {
  std::vector<std::string> paths;
  for (const auto& entry : std::filesystem::recursive_directory_iterator(
           FNPROXY_SOURCE_DIR)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext != ".h" && ext != ".cc") continue;
    paths.push_back(entry.path().string());
  }
  std::sort(paths.begin(), paths.end());
  std::vector<SourceFile> files;
  files.reserve(paths.size());
  for (const std::string& path : paths) {
    files.push_back({path, ReadFileOrDie(path)});
  }
  EXPECT_GE(files.size(), 100u) << "expected the full src/ tree";
  const LockcheckResult result = RunLockcheck(files);
  EXPECT_TRUE(result.diagnostics.empty()) << result.FormatDiagnostics();
}

}  // namespace
}  // namespace fnproxy::analysis
