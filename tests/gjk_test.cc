#include <gtest/gtest.h>

#include <cmath>

#include "geometry/gjk.h"
#include "geometry/hyperrectangle.h"
#include "geometry/hypersphere.h"
#include "geometry/polytope.h"
#include "util/random.h"

namespace fnproxy::geometry {
namespace {

TEST(ClosestPointTest, SinglePoint) {
  Point p = ClosestPointOnHull({{3, 4}}, nullptr);
  EXPECT_DOUBLE_EQ(p[0], 3);
  EXPECT_DOUBLE_EQ(p[1], 4);
}

TEST(ClosestPointTest, SegmentProjection) {
  // Closest point to origin on segment (1,-1)-(1,1) is (1,0).
  std::vector<size_t> support;
  Point p = ClosestPointOnHull({{1, -1}, {1, 1}}, &support);
  EXPECT_NEAR(p[0], 1.0, 1e-12);
  EXPECT_NEAR(p[1], 0.0, 1e-12);
  EXPECT_EQ(support.size(), 2u);
}

TEST(ClosestPointTest, SegmentEndpoint) {
  // Closest point on segment (1,1)-(2,3) is the endpoint (1,1).
  std::vector<size_t> support;
  Point p = ClosestPointOnHull({{1, 1}, {2, 3}}, &support);
  EXPECT_NEAR(p[0], 1.0, 1e-12);
  EXPECT_NEAR(p[1], 1.0, 1e-12);
  EXPECT_EQ(support.size(), 1u);
}

TEST(ClosestPointTest, TriangleContainingOrigin) {
  Point p = ClosestPointOnHull({{-1, -1}, {2, -1}, {0, 2}}, nullptr);
  EXPECT_NEAR(Norm(p), 0.0, 1e-12);
}

TEST(GjkDistanceTest, DisjointSpheres) {
  Hypersphere a({0, 0}, 1.0);
  Hypersphere b({5, 0}, 1.0);
  EXPECT_NEAR(GjkDistance(a, b), 3.0, 1e-6);
}

TEST(GjkDistanceTest, OverlappingSpheresZero) {
  Hypersphere a({0, 0}, 1.0);
  Hypersphere b({1.5, 0}, 1.0);
  EXPECT_NEAR(GjkDistance(a, b), 0.0, 1e-8);
}

TEST(GjkDistanceTest, RectRectGap) {
  Hyperrectangle a({0, 0}, {1, 1});
  Hyperrectangle b({3, 0}, {4, 1});
  EXPECT_NEAR(GjkDistance(a, b), 2.0, 1e-6);
}

TEST(GjkDistanceTest, RectRectDiagonalGap) {
  Hyperrectangle a({0, 0}, {1, 1});
  Hyperrectangle b({2, 2}, {3, 3});
  EXPECT_NEAR(GjkDistance(a, b), std::sqrt(2.0), 1e-6);
}

TEST(GjkDistanceTest, SphereRect) {
  Hypersphere s({0, 0}, 1.0);
  Hyperrectangle r({2, -1}, {3, 1});
  EXPECT_NEAR(GjkDistance(s, r), 1.0, 1e-6);
}

TEST(GjkDistanceTest, PolytopeTriangleVsSphere) {
  std::vector<Halfspace> halfspaces = {{{-1, 0}, 0}, {{0, -1}, 0}, {{1, 1}, 4}};
  std::vector<Point> vertices = {{0, 0}, {4, 0}, {0, 4}};
  Polytope triangle(halfspaces, vertices);
  Hypersphere sphere({6, 0}, 1.0);
  EXPECT_NEAR(GjkDistance(triangle, sphere), 1.0, 1e-6);
  EXPECT_FALSE(GjkIntersects(triangle, sphere));
  Hypersphere close({4.5, 0}, 1.0);
  EXPECT_TRUE(GjkIntersects(triangle, close));
}

TEST(GjkDistanceTest, MatchesAnalyticSphereSphere3d) {
  util::Random rng(77);
  for (int i = 0; i < 200; ++i) {
    Point c1 = {rng.NextDouble(-5, 5), rng.NextDouble(-5, 5),
                rng.NextDouble(-5, 5)};
    Point c2 = {rng.NextDouble(-5, 5), rng.NextDouble(-5, 5),
                rng.NextDouble(-5, 5)};
    double r1 = rng.NextDouble(0.1, 2.0);
    double r2 = rng.NextDouble(0.1, 2.0);
    Hypersphere a(c1, r1), b(c2, r2);
    double expected = std::max(0.0, Distance(c1, c2) - r1 - r2);
    EXPECT_NEAR(GjkDistance(a, b), expected, 1e-5);
  }
}

TEST(GjkDistanceTest, MatchesAnalyticRectRect2d) {
  util::Random rng(78);
  for (int i = 0; i < 200; ++i) {
    auto random_rect = [&]() {
      double x0 = rng.NextDouble(-5, 5), x1 = rng.NextDouble(-5, 5);
      double y0 = rng.NextDouble(-5, 5), y1 = rng.NextDouble(-5, 5);
      return Hyperrectangle({std::min(x0, x1), std::min(y0, y1)},
                            {std::max(x0, x1), std::max(y0, y1)});
    };
    Hyperrectangle a = random_rect();
    Hyperrectangle b = random_rect();
    double dx = std::max({a.lo()[0] - b.hi()[0], b.lo()[0] - a.hi()[0], 0.0});
    double dy = std::max({a.lo()[1] - b.hi()[1], b.lo()[1] - a.hi()[1], 0.0});
    double expected = std::hypot(dx, dy);
    EXPECT_NEAR(GjkDistance(a, b), expected, 1e-5);
  }
}

TEST(GjkIntersectsTest, AgreesWithExactSphereTest) {
  util::Random rng(79);
  int checked = 0;
  for (int i = 0; i < 300; ++i) {
    Point c1 = {rng.NextDouble(-3, 3), rng.NextDouble(-3, 3)};
    Point c2 = {rng.NextDouble(-3, 3), rng.NextDouble(-3, 3)};
    double r1 = rng.NextDouble(0.2, 2.0), r2 = rng.NextDouble(0.2, 2.0);
    double gap = Distance(c1, c2) - r1 - r2;
    if (std::abs(gap) < 1e-3) continue;  // Skip knife-edge cases.
    ++checked;
    EXPECT_EQ(GjkIntersects(Hypersphere(c1, r1), Hypersphere(c2, r2)), gap < 0);
  }
  EXPECT_GT(checked, 200);
}

}  // namespace
}  // namespace fnproxy::geometry
