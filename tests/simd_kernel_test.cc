#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/simd_kernels.h"
#include "geometry/hyperrectangle.h"
#include "geometry/hypersphere.h"
#include "geometry/point.h"
#include "geometry/polytope.h"
#include "util/simd.h"

namespace fnproxy::core::kernels {
namespace {

// Property suite for the membership kernels: for every shape, on every
// input (bitmapped or not, any tail length), the runtime-dispatched kernel,
// the scalar reference, and the geometry::Region::ContainsPoint oracle must
// select the exact same row set. Run once natively and once under
// FNPROXY_FORCE_SCALAR=1 in CI, this pins SIMD output to the scalar
// semantics bit for bit.

/// Deterministic LCG doubles in [lo, hi).
class Lcg {
 public:
  explicit Lcg(uint64_t seed) : state_(seed) {}
  double Uniform(double lo, double hi) {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    double unit = static_cast<double>(state_ >> 11) / 9007199254740992.0;
    return lo + unit * (hi - lo);
  }
  uint64_t Next() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return state_;
  }

 private:
  uint64_t state_;
};

struct TestColumns {
  std::vector<std::vector<double>> values;     // [dim][row]
  std::vector<std::vector<uint64_t>> bitmaps;  // [dim][word], empty = all valid
  std::vector<Column> cols;

  size_t num_rows() const { return values.empty() ? 0 : values[0].size(); }

  bool RowValid(size_t r) const {
    for (size_t d = 0; d < cols.size(); ++d) {
      if (cols[d].valid != nullptr &&
          ((cols[d].valid[r >> 6] >> (r & 63)) & 1) == 0) {
        return false;
      }
    }
    return true;
  }

  geometry::Point RowPoint(size_t r) const {
    geometry::Point p(values.size());
    for (size_t d = 0; d < values.size(); ++d) p[d] = values[d][r];
    return p;
  }
};

/// Rows clustered around the origin so shapes anchored there select a
/// nontrivial subset. `with_bitmaps` marks ~1/4 of the rows NULL in some
/// column.
TestColumns MakeColumns(size_t dims, size_t rows, bool with_bitmaps,
                        uint64_t seed) {
  TestColumns tc;
  Lcg rng(seed);
  tc.values.resize(dims);
  tc.bitmaps.resize(dims);
  for (size_t d = 0; d < dims; ++d) {
    tc.values[d].resize(rows);
    for (size_t r = 0; r < rows; ++r) {
      tc.values[d][r] = rng.Uniform(-10.0, 10.0);
    }
  }
  tc.cols.resize(dims);
  for (size_t d = 0; d < dims; ++d) {
    if (with_bitmaps && d % 2 == 0) {
      size_t words = (rows + 63) / 64;
      tc.bitmaps[d].assign(words, 0);
      for (size_t r = 0; r < rows; ++r) {
        if (rng.Next() % 4 != 0) {
          tc.bitmaps[d][r >> 6] |= uint64_t{1} << (r & 63);
        }
      }
      tc.cols[d] = Column{tc.values[d].data(), tc.bitmaps[d].data()};
    } else {
      tc.cols[d] = Column{tc.values[d].data(), nullptr};
    }
  }
  return tc;
}

void ExpectSameSelection(const std::vector<uint32_t>& expected,
                         const std::vector<uint32_t>& actual,
                         const char* label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i], actual[i]) << label << " at position " << i;
  }
}

/// Tail lengths 0–7 around several vector-width multiples, plus larger runs.
const size_t kRowCounts[] = {0,  1,  2,  3,  4,  5,  6,  7,  8,   9,
                             10, 13, 15, 16, 17, 63, 64, 65, 127, 500};

TEST(SimdKernelTest, SphereMatchesScalarAndOracle) {
  for (size_t dims : {2u, 3u, 5u}) {
    for (bool bitmapped : {false, true}) {
      for (size_t rows : kRowCounts) {
        TestColumns tc = MakeColumns(dims, rows, bitmapped,
                                     /*seed=*/rows * 31 + dims);
        geometry::Point center(dims);
        for (size_t d = 0; d < dims; ++d) center[d] = 0.5 * (d + 1);
        double radius = 6.0;
        geometry::Hypersphere sphere(center, radius);
        double limit = radius + geometry::kGeomEpsilon;
        limit *= limit;
        std::vector<double> c(center.begin(), center.end());

        std::vector<uint32_t> oracle;
        for (size_t r = 0; r < rows; ++r) {
          if (tc.RowValid(r) && sphere.ContainsPoint(tc.RowPoint(r))) {
            oracle.push_back(static_cast<uint32_t>(r));
          }
        }
        std::vector<uint32_t> scalar(rows), dispatched(rows);
        scalar.resize(SelectSphereScalar(tc.cols.data(), dims, rows, c.data(),
                                         limit, scalar.data()));
        dispatched.resize(SelectSphere(tc.cols.data(), dims, rows, c.data(),
                                       limit, dispatched.data()));
        ExpectSameSelection(oracle, scalar, "sphere scalar vs oracle");
        ExpectSameSelection(oracle, dispatched, "sphere dispatch vs oracle");
      }
    }
  }
}

TEST(SimdKernelTest, RectMatchesScalarAndOracle) {
  for (size_t dims : {2u, 3u}) {
    // rect_dims < dims exercises validity-over-all-dims with bounds over a
    // prefix (the columnar SelectInRegion contract).
    for (size_t rect_dims = 1; rect_dims <= dims; ++rect_dims) {
      for (bool bitmapped : {false, true}) {
        for (size_t rows : kRowCounts) {
          TestColumns tc = MakeColumns(dims, rows, bitmapped,
                                       /*seed=*/rows * 97 + dims);
          std::vector<double> lo(rect_dims), hi(rect_dims);
          geometry::Point plo(rect_dims), phi(rect_dims);
          for (size_t d = 0; d < rect_dims; ++d) {
            plo[d] = -4.0 + d;
            phi[d] = 5.0 - d;
            lo[d] = plo[d] - geometry::kGeomEpsilon;
            hi[d] = phi[d] + geometry::kGeomEpsilon;
          }
          geometry::Hyperrectangle rect(plo, phi);

          std::vector<uint32_t> oracle;
          for (size_t r = 0; r < rows; ++r) {
            if (!tc.RowValid(r)) continue;
            geometry::Point sub(rect_dims);
            for (size_t d = 0; d < rect_dims; ++d) sub[d] = tc.values[d][r];
            if (rect.ContainsPoint(sub)) {
              oracle.push_back(static_cast<uint32_t>(r));
            }
          }
          std::vector<uint32_t> scalar(rows), dispatched(rows);
          scalar.resize(SelectRectScalar(tc.cols.data(), dims, rect_dims, rows,
                                         lo.data(), hi.data(), scalar.data()));
          dispatched.resize(SelectRect(tc.cols.data(), dims, rect_dims, rows,
                                       lo.data(), hi.data(),
                                       dispatched.data()));
          ExpectSameSelection(oracle, scalar, "rect scalar vs oracle");
          ExpectSameSelection(oracle, dispatched, "rect dispatch vs oracle");
        }
      }
    }
  }
}

TEST(SimdKernelTest, PolytopeMatchesScalarAndOracle) {
  for (size_t dims : {2u, 3u}) {
    for (bool bitmapped : {false, true}) {
      for (size_t rows : kRowCounts) {
        TestColumns tc = MakeColumns(dims, rows, bitmapped,
                                     /*seed=*/rows * 7 + dims);
        // An axis-aligned box as halfspaces plus one diagonal cut, built
        // exactly like the columnar scan flattens a polytope.
        std::vector<geometry::Halfspace> halfspaces;
        for (size_t d = 0; d < dims; ++d) {
          geometry::Point up(dims), down(dims);
          up[d] = 1.0;
          down[d] = -1.0;
          halfspaces.push_back({up, 5.0});
          halfspaces.push_back({down, 4.0});
        }
        geometry::Point diag(dims);
        for (size_t d = 0; d < dims; ++d) diag[d] = 1.0;
        halfspaces.push_back({diag, 3.5});
        // The oracle only needs ContainsPoint (H-representation); an empty
        // vertex set is fine for that.
        geometry::Polytope poly(halfspaces, {});

        std::vector<double> normals(halfspaces.size() * dims);
        std::vector<double> thresholds(halfspaces.size());
        for (size_t h = 0; h < halfspaces.size(); ++h) {
          for (size_t d = 0; d < dims; ++d) {
            normals[h * dims + d] = halfspaces[h].normal[d];
          }
          thresholds[h] = halfspaces[h].offset +
                          geometry::kGeomEpsilon *
                              geometry::Norm(halfspaces[h].normal);
        }

        std::vector<uint32_t> oracle;
        for (size_t r = 0; r < rows; ++r) {
          if (tc.RowValid(r) && poly.ContainsPoint(tc.RowPoint(r))) {
            oracle.push_back(static_cast<uint32_t>(r));
          }
        }
        std::vector<uint32_t> scalar(rows), dispatched(rows);
        scalar.resize(SelectPolytopeScalar(tc.cols.data(), dims, rows,
                                           normals.data(), thresholds.data(),
                                           halfspaces.size(), scalar.data()));
        dispatched.resize(SelectPolytope(tc.cols.data(), dims, rows,
                                         normals.data(), thresholds.data(),
                                         halfspaces.size(),
                                         dispatched.data()));
        ExpectSameSelection(oracle, scalar, "polytope scalar vs oracle");
        ExpectSameSelection(oracle, dispatched, "polytope dispatch vs oracle");
      }
    }
  }
}

TEST(SimdKernelTest, EmptyAndFullSelections) {
  const size_t dims = 2;
  for (size_t rows : {8u, 13u, 500u}) {
    TestColumns tc = MakeColumns(dims, rows, /*with_bitmaps=*/false,
                                 /*seed=*/rows);
    double center[] = {0.0, 0.0};
    std::vector<uint32_t> out(rows);
    // Radius so small nothing matches.
    size_t none = SelectSphere(tc.cols.data(), dims, rows, center,
                               /*limit_sq=*/1e-30, out.data());
    EXPECT_EQ(none, 0u);
    // Radius so large everything matches, indices dense ascending.
    size_t all = SelectSphere(tc.cols.data(), dims, rows, center,
                              /*limit_sq=*/1e12, out.data());
    ASSERT_EQ(all, rows);
    for (size_t r = 0; r < rows; ++r) {
      EXPECT_EQ(out[r], static_cast<uint32_t>(r));
    }
  }
}

TEST(SimdKernelTest, AllNullColumnSelectsNothing) {
  const size_t dims = 2;
  const size_t rows = 70;
  TestColumns tc = MakeColumns(dims, rows, /*with_bitmaps=*/false,
                               /*seed=*/3);
  std::vector<uint64_t> none((rows + 63) / 64, 0);
  tc.cols[1].valid = none.data();
  double center[] = {0.0, 0.0};
  std::vector<uint32_t> out(rows);
  EXPECT_EQ(SelectSphere(tc.cols.data(), dims, rows, center, 1e12, out.data()),
            0u);
  EXPECT_EQ(SelectSphereScalar(tc.cols.data(), dims, rows, center, 1e12,
                               out.data()),
            0u);
}

TEST(SimdKernelTest, DispatchPathIsConsistent) {
  // Whatever path Resolve() picked, it must be stable across calls and
  // consistent with the reported width.
  auto path = util::simd::ActivePath();
  EXPECT_EQ(path, util::simd::ActivePath());
  if (path == util::simd::DispatchPath::kScalar) {
    EXPECT_EQ(util::simd::SimdWidth(), 1u);
  } else {
    EXPECT_EQ(util::simd::SimdWidth(), 8u);
  }
}

}  // namespace
}  // namespace fnproxy::core::kernels
