#include <gtest/gtest.h>

#include <map>

#include "geometry/celestial.h"
#include "geometry/hypersphere.h"
#include "geometry/region.h"
#include "net/network.h"
#include "obs/metrics.h"
#include "server/web_app.h"
#include "util/clock.h"
#include "util/string_util.h"
#include "workload/concurrent_driver.h"
#include "workload/experiment.h"
#include "workload/rbe.h"
#include "workload/trace.h"
#include "workload/trace_generator.h"

namespace fnproxy::workload {
namespace {

using geometry::RegionRelation;

RadialTraceConfig SmallTrace(size_t n = 1500) {
  RadialTraceConfig config;
  config.num_queries = n;
  config.seed = 7;
  return config;
}

TEST(RadialTraceGeneratorTest, SizeAndParams) {
  Trace trace = GenerateRadialTrace(SmallTrace());
  EXPECT_EQ(trace.form_path, "/radial");
  ASSERT_EQ(trace.queries.size(), 1500u);
  for (const TraceQuery& q : trace.queries) {
    ASSERT_EQ(q.params.size(), 3u);
    EXPECT_TRUE(util::ParseDouble(q.params.at("ra")).ok());
    EXPECT_TRUE(util::ParseDouble(q.params.at("dec")).ok());
    auto radius = util::ParseDouble(q.params.at("radius"));
    ASSERT_TRUE(radius.ok());
    EXPECT_GT(*radius, 0.0);
  }
}

TEST(RadialTraceGeneratorTest, MixApproximatesConfig) {
  RadialTraceConfig config = SmallTrace(4000);
  Trace trace = GenerateRadialTrace(config);
  EXPECT_NEAR(trace.IntendedFraction(RegionRelation::kEqual),
              config.exact_fraction, 0.03);
  EXPECT_NEAR(trace.IntendedFraction(RegionRelation::kContainedBy),
              config.containment_fraction, 0.04);
  EXPECT_NEAR(trace.IntendedFraction(RegionRelation::kContains),
              config.region_containment_fraction, 0.02);
  EXPECT_NEAR(trace.IntendedFraction(RegionRelation::kOverlap),
              config.overlap_fraction, 0.03);
}

TEST(RadialTraceGeneratorTest, DeterministicInSeed) {
  Trace a = GenerateRadialTrace(SmallTrace());
  Trace b = GenerateRadialTrace(SmallTrace());
  ASSERT_EQ(a.queries.size(), b.queries.size());
  for (size_t i = 0; i < a.queries.size(); ++i) {
    EXPECT_EQ(a.queries[i].params, b.queries[i].params);
  }
}

TEST(RadialTraceGeneratorTest, LabelsAreGeometricallySound) {
  // Every non-disjoint label must be realizable against the set of earlier
  // queries: an exact label has an identical earlier query; containment has
  // an earlier container; etc.
  Trace trace = GenerateRadialTrace(SmallTrace(800));
  std::vector<geometry::Hypersphere> history;
  for (const TraceQuery& q : trace.queries) {
    double ra = *util::ParseDouble(q.params.at("ra"));
    double dec = *util::ParseDouble(q.params.at("dec"));
    double radius = *util::ParseDouble(q.params.at("radius"));
    geometry::Hypersphere sphere = geometry::ConeToHypersphere(ra, dec, radius);

    bool found = false;
    for (const auto& prev : history) {
      switch (q.intended) {
        case RegionRelation::kEqual:
          found = geometry::Equals(sphere, prev);
          break;
        case RegionRelation::kContainedBy:
          found = geometry::Contains(prev, sphere) &&
                  !geometry::Equals(prev, sphere);
          break;
        case RegionRelation::kContains:
          found = geometry::Contains(sphere, prev) &&
                  !geometry::Equals(prev, sphere);
          break;
        case RegionRelation::kOverlap:
          found = geometry::Relate(sphere, prev) == RegionRelation::kOverlap;
          break;
        case RegionRelation::kDisjoint:
          found = true;  // Nothing to verify against history.
          break;
      }
      if (found) break;
    }
    EXPECT_TRUE(found || history.empty())
        << "label " << geometry::RegionRelationName(q.intended)
        << " unrealizable for ra=" << ra << " dec=" << dec
        << " radius=" << radius;
    history.push_back(sphere);
  }
}

TEST(RadialTraceGeneratorTest, QueriesInsideFootprint) {
  RadialTraceConfig config = SmallTrace();
  Trace trace = GenerateRadialTrace(config);
  for (const TraceQuery& q : trace.queries) {
    double ra = *util::ParseDouble(q.params.at("ra"));
    double dec = *util::ParseDouble(q.params.at("dec"));
    EXPECT_GE(ra, config.ra_min - 2.0);
    EXPECT_LE(ra, config.ra_max + 2.0);
    EXPECT_GE(dec, config.dec_min - 2.0);
    EXPECT_LE(dec, config.dec_max + 2.0);
  }
}

TEST(FlashCrowdTraceTest, BurstWindowSlamsHotCone) {
  FlashCrowdTraceConfig config;
  config.base = SmallTrace(2000);
  Trace trace = GenerateFlashCrowdTrace(config);
  ASSERT_EQ(trace.queries.size(), 2000u);
  EXPECT_EQ(trace.form_path, "/radial");

  const std::string hot_ra = "185.0000";
  const std::string hot_dec = "30.0000";
  size_t burst_start = static_cast<size_t>(2000 * config.burst_start_fraction);
  size_t burst_end = static_cast<size_t>(2000 * config.burst_end_fraction);
  size_t hot_in_burst = 0;
  size_t hot_outside = 0;
  for (size_t i = 0; i < trace.queries.size(); ++i) {
    const TraceQuery& q = trace.queries[i];
    bool hot = q.params.at("ra") == hot_ra && q.params.at("dec") == hot_dec;
    if (i >= burst_start && i < burst_end) {
      hot_in_burst += hot ? 1 : 0;
    } else {
      hot_outside += hot ? 1 : 0;
    }
  }
  // ~85% of the burst window hits the hot cone; outside it, background
  // traffic essentially never lands on that exact center.
  double window = static_cast<double>(burst_end - burst_start);
  EXPECT_GT(static_cast<double>(hot_in_burst) / window, 0.7);
  EXPECT_LT(hot_outside, 5u);
}

TEST(FlashCrowdTraceTest, HotVariantsContainedInHotCone) {
  FlashCrowdTraceConfig config;
  config.base = SmallTrace(2000);
  Trace trace = GenerateFlashCrowdTrace(config);
  geometry::Hypersphere hot = geometry::ConeToHypersphere(
      config.hot_ra, config.hot_dec, config.hot_radius_arcmin);
  size_t exact = 0;
  size_t contained = 0;
  for (const TraceQuery& q : trace.queries) {
    if (q.params.at("ra") != "185.0000" || q.params.at("dec") != "30.0000") {
      continue;
    }
    double radius = *util::ParseDouble(q.params.at("radius"));
    geometry::Hypersphere sphere =
        geometry::ConeToHypersphere(config.hot_ra, config.hot_dec, radius);
    if (q.intended == RegionRelation::kContainedBy) {
      EXPECT_TRUE(geometry::Contains(hot, sphere));
      EXPECT_FALSE(geometry::Equals(hot, sphere));
      ++contained;
    } else {
      EXPECT_TRUE(geometry::Equals(hot, sphere));
      ++exact;
    }
  }
  // Both flavors are present: exact repeats dominate, shrunken variants are
  // a meaningful minority (hot_subsumed_fraction = 0.3).
  EXPECT_GT(exact, contained);
  EXPECT_GT(contained, 50u);
}

TEST(FlashCrowdTraceTest, DeterministicInSeed) {
  FlashCrowdTraceConfig config;
  config.base = SmallTrace(500);
  Trace a = GenerateFlashCrowdTrace(config);
  Trace b = GenerateFlashCrowdTrace(config);
  ASSERT_EQ(a.queries.size(), b.queries.size());
  for (size_t i = 0; i < a.queries.size(); ++i) {
    EXPECT_EQ(a.queries[i].params, b.queries[i].params);
  }
}

TEST(RectTraceGeneratorTest, GeneratesValidBoxes) {
  RectTraceConfig config;
  config.num_queries = 500;
  Trace trace = GenerateRectTrace(config);
  EXPECT_EQ(trace.queries.size(), 500u);
  for (const TraceQuery& q : trace.queries) {
    double ra_min = *util::ParseDouble(q.params.at("ra_min"));
    double ra_max = *util::ParseDouble(q.params.at("ra_max"));
    double dec_min = *util::ParseDouble(q.params.at("dec_min"));
    double dec_max = *util::ParseDouble(q.params.at("dec_max"));
    EXPECT_LT(ra_min, ra_max);
    EXPECT_LT(dec_min, dec_max);
  }
  EXPECT_GT(trace.IntendedFraction(RegionRelation::kEqual), 0.05);
  EXPECT_GT(trace.IntendedFraction(RegionRelation::kContainedBy), 0.15);
}

TEST(TraceSerializationTest, RoundTrips) {
  Trace trace = GenerateRadialTrace(SmallTrace(100));
  auto parsed = Trace::Deserialize(trace.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->form_path, trace.form_path);
  ASSERT_EQ(parsed->queries.size(), trace.queries.size());
  for (size_t i = 0; i < trace.queries.size(); ++i) {
    EXPECT_EQ(parsed->queries[i].params, trace.queries[i].params);
    EXPECT_EQ(parsed->queries[i].intended, trace.queries[i].intended);
  }
}

TEST(TraceSerializationTest, RejectsGarbage) {
  EXPECT_FALSE(Trace::Deserialize("").ok());
  EXPECT_FALSE(Trace::Deserialize("/radial\nnotabbedline\n").ok());
  EXPECT_FALSE(Trace::Deserialize("/radial\nZ\tra=1\n").ok());
}

TEST(RbeResultTest, AverageOverPrefix) {
  RbeResult result;
  result.response_micros = {1000, 2000, 3000, 10000};
  EXPECT_DOUBLE_EQ(result.AverageResponseMillis(), 4.0);
  EXPECT_DOUBLE_EQ(result.AverageResponseMillis(2), 1.5);
  EXPECT_DOUBLE_EQ(result.AverageResponseMillis(100), 4.0);
  EXPECT_DOUBLE_EQ(RbeResult().AverageResponseMillis(), 0.0);
}

/// End-to-end smoke over a small experiment: schemes behave sanely relative
/// to each other.
class ExperimentSmokeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SkyExperiment::Options options;
    options.catalog.num_objects = 30000;
    options.catalog.num_clusters = 10;
    options.trace.num_queries = 400;
    options.trace.seed = 5;
    experiment_ = new SkyExperiment(options);
  }
  static void TearDownTestSuite() {
    delete experiment_;
    experiment_ = nullptr;
  }
  static SkyExperiment* experiment_;
};

SkyExperiment* ExperimentSmokeTest::experiment_ = nullptr;

TEST_F(ExperimentSmokeTest, NoCacheSlowerThanActive) {
  core::ProxyConfig nc;
  nc.mode = core::CachingMode::kNoCache;
  core::ProxyConfig ac;
  ac.mode = core::CachingMode::kActiveFull;
  auto nc_result = experiment_->Run(nc);
  auto ac_result = experiment_->Run(ac);
  EXPECT_EQ(nc_result.rbe.errors, 0u);
  EXPECT_EQ(ac_result.rbe.errors, 0u);
  EXPECT_LT(ac_result.rbe.AverageResponseMillis(),
            nc_result.rbe.AverageResponseMillis());
  EXPECT_GT(ac_result.proxy_stats.AverageCacheEfficiency(), 0.3);
  EXPECT_EQ(nc_result.proxy_stats.AverageCacheEfficiency(), 0.0);
}

TEST_F(ExperimentSmokeTest, ActiveBeatsPassiveEfficiency) {
  core::ProxyConfig pc;
  pc.mode = core::CachingMode::kPassive;
  core::ProxyConfig ac;
  ac.mode = core::CachingMode::kActiveFull;
  auto pc_result = experiment_->Run(pc);
  auto ac_result = experiment_->Run(ac);
  EXPECT_GT(ac_result.proxy_stats.AverageCacheEfficiency(),
            pc_result.proxy_stats.AverageCacheEfficiency() + 0.1);
}

TEST_F(ExperimentSmokeTest, TotalDistinctResultBytesStable) {
  size_t a = experiment_->TotalDistinctResultBytes();
  size_t b = experiment_->TotalDistinctResultBytes();
  EXPECT_EQ(a, b);
  EXPECT_GT(a, 0u);
}

TEST_F(ExperimentSmokeTest, RunsAreDeterministic) {
  core::ProxyConfig ac;
  ac.mode = core::CachingMode::kActiveFull;
  auto r1 = experiment_->Run(ac);
  auto r2 = experiment_->Run(ac);
  EXPECT_EQ(r1.rbe.AverageResponseMillis(), r2.rbe.AverageResponseMillis());
  EXPECT_EQ(r1.proxy_stats.AverageCacheEfficiency(),
            r2.proxy_stats.AverageCacheEfficiency());
  EXPECT_EQ(r1.origin_bytes_received, r2.origin_bytes_received);
}

// Regression: calibration replays must leave the client-latency histogram
// untouched — the hook used to observe every sample, so warm-up passes
// polluted the measured fnproxy_client_latency_micros distribution.
TEST_F(ExperimentSmokeTest, CalibrationReplayKeepsLatencyHistogramSilent) {
  util::SimulatedClock clock;
  server::OriginWebApp app(experiment_->database(), &clock,
                           experiment_->options().server_costs);
  ASSERT_TRUE(app.RegisterForm("/radial", kRadialTemplateSql).ok());
  net::SimulatedChannel lan(&app, experiment_->options().lan, &clock);
  ConcurrentDriver driver(&lan, &clock);
  obs::MetricsRegistry registry;
  obs::Histogram* histogram = registry.AddHistogram(
      "fnproxy_client_latency_micros", "client latency");
  driver.set_latency_histogram(histogram);

  driver.set_calibration(true);
  ConcurrentRunResult calibration = driver.Replay(experiment_->trace(), 2);
  EXPECT_EQ(calibration.errors, 0u);
  // The run still measures its own percentiles...
  EXPECT_EQ(calibration.latencies_micros.size(),
            experiment_->trace().queries.size());
  // ...but the shared histogram stays silent.
  EXPECT_EQ(histogram->snapshot().count, 0u);

  driver.set_calibration(false);
  ConcurrentRunResult measured = driver.Replay(experiment_->trace(), 2);
  EXPECT_EQ(measured.errors, 0u);
  EXPECT_EQ(histogram->snapshot().count,
            experiment_->trace().queries.size());
}

}  // namespace
}  // namespace fnproxy::workload
