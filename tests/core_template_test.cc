#include <gtest/gtest.h>

#include "core/function_template.h"
#include "core/query_template.h"
#include "core/template_registry.h"
#include "geometry/celestial.h"
#include "geometry/hyperrectangle.h"
#include "geometry/hypersphere.h"
#include "geometry/region.h"
#include "workload/experiment.h"

namespace fnproxy::core {
namespace {

using sql::Value;

TEST(FunctionTemplateTest, ParsesPaperStyleSphereTemplate) {
  auto tmpl = FunctionTemplate::FromXml(workload::kNearbyObjEqTemplateXml);
  ASSERT_TRUE(tmpl.ok()) << tmpl.status().ToString();
  EXPECT_EQ(tmpl->name(), "fGetNearbyObjEq");
  EXPECT_EQ(tmpl->shape(), geometry::ShapeKind::kHypersphere);
  EXPECT_EQ(tmpl->num_dimensions(), 3u);
  ASSERT_EQ(tmpl->params().size(), 3u);
  EXPECT_EQ(tmpl->params()[0], "ra");
  EXPECT_EQ(tmpl->coordinate_columns(),
            (std::vector<std::string>{"cx", "cy", "cz"}));
}

TEST(FunctionTemplateTest, BuiltRegionMatchesCelestialCone) {
  auto tmpl = FunctionTemplate::FromXml(workload::kNearbyObjEqTemplateXml);
  ASSERT_TRUE(tmpl.ok());
  auto region = tmpl->BuildRegion(
      {Value::Double(195.1), Value::Double(2.5), Value::Double(12.0)});
  ASSERT_TRUE(region.ok()) << region.status().ToString();
  ASSERT_EQ((*region)->kind(), geometry::ShapeKind::kHypersphere);
  geometry::Hypersphere expected =
      geometry::ConeToHypersphere(195.1, 2.5, 12.0);
  EXPECT_TRUE(geometry::Equals(**region, expected));
}

TEST(FunctionTemplateTest, BuildRegionChecksArity) {
  auto tmpl = FunctionTemplate::FromXml(workload::kNearbyObjEqTemplateXml);
  ASSERT_TRUE(tmpl.ok());
  EXPECT_FALSE(tmpl->BuildRegion({Value::Double(1.0)}).ok());
}

TEST(FunctionTemplateTest, NegativeRadiusRejected) {
  auto tmpl = FunctionTemplate::FromXml(workload::kNearbyObjEqTemplateXml);
  ASSERT_TRUE(tmpl.ok());
  EXPECT_FALSE(tmpl->BuildRegion({Value::Double(1.0), Value::Double(2.0),
                                  Value::Double(-3.0)})
                   .ok());
}

TEST(FunctionTemplateTest, RectangleTemplate) {
  auto tmpl = FunctionTemplate::FromXml(workload::kObjFromRectTemplateXml);
  ASSERT_TRUE(tmpl.ok()) << tmpl.status().ToString();
  EXPECT_EQ(tmpl->shape(), geometry::ShapeKind::kHyperrectangle);
  auto region = tmpl->BuildRegion({Value::Double(10.0), Value::Double(20.0),
                                   Value::Double(-5.0), Value::Double(5.0)});
  ASSERT_TRUE(region.ok());
  geometry::Hyperrectangle expected({10.0, -5.0}, {20.0, 5.0});
  EXPECT_TRUE(geometry::Equals(**region, expected));
}

TEST(FunctionTemplateTest, RectangleLoAboveHiRejectedAtBuild) {
  auto tmpl = FunctionTemplate::FromXml(workload::kObjFromRectTemplateXml);
  ASSERT_TRUE(tmpl.ok());
  EXPECT_FALSE(tmpl->BuildRegion({Value::Double(20.0), Value::Double(10.0),
                                  Value::Double(-5.0), Value::Double(5.0)})
                   .ok());
}

TEST(FunctionTemplateTest, PolytopeTemplate) {
  const char* xml_text = R"(<FunctionTemplate>
    <Name>fTriangle</Name>
    <Params><P>$size</P></Params>
    <Shape>polytope</Shape>
    <NumDimensions>2</NumDimensions>
    <Halfspaces>
      <H><Normal><C>-1</C><C>0</C></Normal><Offset>0</Offset></H>
      <H><Normal><C>0</C><C>-1</C></Normal><Offset>0</Offset></H>
      <H><Normal><C>1</C><C>1</C></Normal><Offset>$size</Offset></H>
    </Halfspaces>
    <Vertices>
      <V><C>0</C><C>0</C></V>
      <V><C>$size</C><C>0</C></V>
      <V><C>0</C><C>$size</C></V>
    </Vertices>
    <CoordinateColumns><C>x</C><C>y</C></CoordinateColumns>
  </FunctionTemplate>)";
  auto tmpl = FunctionTemplate::FromXml(xml_text);
  ASSERT_TRUE(tmpl.ok()) << tmpl.status().ToString();
  auto region = tmpl->BuildRegion({Value::Double(4.0)});
  ASSERT_TRUE(region.ok()) << region.status().ToString();
  EXPECT_TRUE((*region)->ContainsPoint({1.0, 1.0}));
  EXPECT_FALSE((*region)->ContainsPoint({3.0, 3.0}));
}

TEST(FunctionTemplateTest, XmlRoundTrip) {
  auto tmpl = FunctionTemplate::FromXml(workload::kNearbyObjEqTemplateXml);
  ASSERT_TRUE(tmpl.ok());
  auto reparsed = FunctionTemplate::FromXml(tmpl->ToXml());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->name(), tmpl->name());
  EXPECT_EQ(reparsed->params(), tmpl->params());
  // Regions built by both agree.
  auto a = tmpl->BuildRegion(
      {Value::Double(10.0), Value::Double(20.0), Value::Double(5.0)});
  auto b = reparsed->BuildRegion(
      {Value::Double(10.0), Value::Double(20.0), Value::Double(5.0)});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(geometry::Equals(**a, **b));
}

TEST(FunctionTemplateTest, RejectsMalformedTemplates) {
  EXPECT_FALSE(FunctionTemplate::FromXml("<Wrong/>").ok());
  EXPECT_FALSE(FunctionTemplate::FromXml(
                   "<FunctionTemplate><Name>f</Name></FunctionTemplate>")
                   .ok());
  // Dimension mismatch between CenterCoordinate and NumDimensions.
  const char* bad_dims = R"(<FunctionTemplate>
    <Name>f</Name><Params><P>$r</P></Params>
    <Shape>hypersphere</Shape><NumDimensions>3</NumDimensions>
    <CenterCoordinate><C>0</C><C>0</C></CenterCoordinate>
    <Radius>$r</Radius>
    <CoordinateColumns><C>x</C><C>y</C><C>z</C></CoordinateColumns>
  </FunctionTemplate>)";
  EXPECT_FALSE(FunctionTemplate::FromXml(bad_dims).ok());
  // Missing coordinate columns.
  const char* no_coords = R"(<FunctionTemplate>
    <Name>f</Name><Params><P>$r</P></Params>
    <Shape>hypersphere</Shape><NumDimensions>1</NumDimensions>
    <CenterCoordinate><C>0</C></CenterCoordinate>
    <Radius>$r</Radius>
  </FunctionTemplate>)";
  EXPECT_FALSE(FunctionTemplate::FromXml(no_coords).ok());
  // Unknown shape.
  const char* bad_shape = R"(<FunctionTemplate>
    <Name>f</Name><Params><P>$r</P></Params>
    <Shape>donut</Shape><NumDimensions>1</NumDimensions>
    <CoordinateColumns><C>x</C></CoordinateColumns>
  </FunctionTemplate>)";
  EXPECT_FALSE(FunctionTemplate::FromXml(bad_shape).ok());
}

TEST(QueryTemplateTest, SplitsSpatialAndNonSpatialParams) {
  auto qt = QueryTemplate::Create(
      "radial", "/radial",
      "SELECT p.objID, p.cx FROM fGetNearbyObjEq($ra, $dec, $radius) AS n "
      "JOIN PhotoPrimary AS p ON n.objID = p.objID WHERE p.r < $maxmag");
  ASSERT_TRUE(qt.ok()) << qt.status().ToString();
  EXPECT_EQ(qt->function_name(), "fGetNearbyObjEq");
  EXPECT_EQ(qt->spatial_params(),
            (std::set<std::string>{"ra", "dec", "radius"}));
  EXPECT_EQ(qt->nonspatial_params(), (std::set<std::string>{"maxmag"}));
  EXPECT_FALSE(qt->has_top());
}

TEST(QueryTemplateTest, RequiresFunctionCallInFrom) {
  EXPECT_FALSE(
      QueryTemplate::Create("t", "/t", "SELECT * FROM PhotoPrimary").ok());
  EXPECT_FALSE(QueryTemplate::Create("t", "/t", "NOT SQL").ok());
}

TEST(QueryTemplateTest, FunctionArgsEvaluated) {
  auto qt = QueryTemplate::Create(
      "t", "/t", "SELECT x FROM f($a, $b * 2, 7)");
  ASSERT_TRUE(qt.ok());
  std::map<std::string, Value> params = {{"a", Value::Double(1.5)},
                                         {"b", Value::Int(3)}};
  auto args = qt->FunctionArgs(params);
  ASSERT_TRUE(args.ok()) << args.status().ToString();
  ASSERT_EQ(args->size(), 3u);
  EXPECT_DOUBLE_EQ((*args)[0].AsDouble(), 1.5);
  EXPECT_EQ((*args)[1].AsInt(), 6);
  EXPECT_EQ((*args)[2].AsInt(), 7);
}

TEST(QueryTemplateTest, NonSpatialFingerprint) {
  auto qt = QueryTemplate::Create(
      "t", "/t", "SELECT x FROM f($a) WHERE y = $b AND z = $c");
  ASSERT_TRUE(qt.ok());
  std::map<std::string, Value> p1 = {{"a", Value::Int(1)},
                                     {"b", Value::Int(2)},
                                     {"c", Value::Int(3)}};
  std::map<std::string, Value> p2 = {{"a", Value::Int(99)},
                                     {"b", Value::Int(2)},
                                     {"c", Value::Int(3)}};
  std::map<std::string, Value> p3 = {{"a", Value::Int(1)},
                                     {"b", Value::Int(2)},
                                     {"c", Value::Int(4)}};
  // Same non-spatial params -> same fingerprint even with different spatial.
  EXPECT_EQ(*qt->NonSpatialFingerprint(p1), *qt->NonSpatialFingerprint(p2));
  EXPECT_NE(*qt->NonSpatialFingerprint(p1), *qt->NonSpatialFingerprint(p3));
  // Missing parameter -> error.
  EXPECT_FALSE(qt->NonSpatialFingerprint({{"a", Value::Int(1)}}).ok());
}

TEST(QueryTemplateTest, InstantiateProducesExecutableStatement) {
  auto qt = QueryTemplate::Create(
      "t", "/t", "SELECT x FROM f($a) WHERE y < $b");
  ASSERT_TRUE(qt.ok());
  auto stmt = qt->Instantiate(
      {{"a", Value::Double(2.0)}, {"b", Value::Int(10)}});
  ASSERT_TRUE(stmt.ok());
  EXPECT_FALSE(stmt->HasParameters());
}

TEST(TemplateRegistryTest, RegisterAndLookup) {
  TemplateRegistry registry;
  ASSERT_TRUE(registry
                  .RegisterFunctionTemplateXml(workload::kNearbyObjEqTemplateXml)
                  .ok());
  auto qt = QueryTemplate::Create("radial", "/radial",
                                  workload::kRadialTemplateSql);
  ASSERT_TRUE(qt.ok());
  ASSERT_TRUE(registry.RegisterQueryTemplate(std::move(*qt)).ok());

  EXPECT_NE(registry.FindByPath("/radial"), nullptr);
  EXPECT_EQ(registry.FindByPath("/nope"), nullptr);
  EXPECT_NE(registry.FindById("radial"), nullptr);
  EXPECT_NE(registry.FindFunctionTemplate("fGetNearbyObjEq"), nullptr);
  EXPECT_NE(registry.FindFunctionTemplate("DBO.fgetnearbyobjeq"), nullptr);
  EXPECT_EQ(registry.FindFunctionTemplate("fOther"), nullptr);
  EXPECT_EQ(registry.num_query_templates(), 1u);
  EXPECT_EQ(registry.num_function_templates(), 1u);
}

TEST(TemplateRegistryTest, DuplicateQueryTemplateRejected) {
  TemplateRegistry registry;
  auto qt1 = QueryTemplate::Create("radial", "/radial",
                                   workload::kRadialTemplateSql);
  auto qt2 = QueryTemplate::Create("radial", "/radial2",
                                   workload::kRadialTemplateSql);
  ASSERT_TRUE(qt1.ok());
  ASSERT_TRUE(qt2.ok());
  EXPECT_TRUE(registry.RegisterQueryTemplate(std::move(*qt1)).ok());
  EXPECT_FALSE(registry.RegisterQueryTemplate(std::move(*qt2)).ok());
}

TEST(TemplateRegistryTest, InfoFileAssociation) {
  TemplateRegistry registry;
  std::string info = std::string("<TemplateInfo><Id>radial</Id>") +
                     "<FormPath>/radial</FormPath><QueryTemplate>" +
                     "SELECT p.objID FROM fGetNearbyObjEq($ra, $dec, $radius) "
                     "AS n JOIN PhotoPrimary AS p ON n.objID = p.objID" +
                     "</QueryTemplate></TemplateInfo>";
  ASSERT_TRUE(registry.RegisterInfoXml(info).ok());
  const QueryTemplate* qt = registry.FindByPath("/radial");
  ASSERT_NE(qt, nullptr);
  EXPECT_EQ(qt->function_name(), "fGetNearbyObjEq");

  EXPECT_FALSE(registry.RegisterInfoXml("<Nope/>").ok());
  EXPECT_FALSE(
      registry.RegisterInfoXml("<TemplateInfo><Id>x</Id></TemplateInfo>").ok());
}

}  // namespace
}  // namespace fnproxy::core
