// Overload resilience: single-flight collapsing of concurrent identical or
// subsumed misses, admission control (hard bound + origin-backlog
// watermark), and end-to-end deadline propagation. The origin here can be
// gated (requests block in wall time until released) so tests control
// exactly which requests overlap in flight.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "catalog/sky_catalog.h"
#include "core/proxy.h"
#include "core/single_flight.h"
#include "geometry/hypersphere.h"
#include "net/fault.h"
#include "net/http.h"
#include "net/network.h"
#include "server/sky_functions.h"
#include "server/web_app.h"
#include "sql/table_xml.h"
#include "util/thread_pool.h"
#include "workload/experiment.h"

namespace fnproxy {
namespace {

using net::HttpRequest;
using net::HttpResponse;

/// Wraps the origin app behind a wall-clock gate: while closed, requests
/// block inside the handler until OpenGate(). Optionally fails the first
/// request (leader-failure scenarios).
class GatedOrigin final : public net::HttpHandler {
 public:
  explicit GatedOrigin(net::HttpHandler* inner) : inner_(inner) {}

  HttpResponse Handle(const HttpRequest& request) override {
    requests_.fetch_add(1, std::memory_order_relaxed);
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return !gate_closed_; });
    }
    if (fail_first_.exchange(false)) {
      return HttpResponse::MakeError(500, "injected leader failure");
    }
    return inner_->Handle(request);
  }

  void CloseGate() {
    std::lock_guard<std::mutex> lock(mu_);
    gate_closed_ = true;
  }
  void OpenGate() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      gate_closed_ = false;
    }
    cv_.notify_all();
  }
  void FailFirst() { fail_first_.store(true); }

  uint64_t requests() const {
    return requests_.load(std::memory_order_relaxed);
  }

  /// Spins until `count` requests have entered the handler (they may still
  /// be blocked on the gate).
  void AwaitRequests(uint64_t count) {
    while (requests() < count) std::this_thread::yield();
  }

 private:
  net::HttpHandler* inner_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool gate_closed_ = false;
  std::atomic<bool> fail_first_{false};
  std::atomic<uint64_t> requests_{0};
};

class OverloadTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog::SkyCatalogConfig config;
    config.num_objects = 10000;
    config.seed = 4711;
    config.ra_min = 178.0;
    config.ra_max = 192.0;
    config.dec_min = 28.0;
    config.dec_max = 40.0;
    db_ = new server::Database();
    db_->AddTable("PhotoPrimary", catalog::GenerateSkyCatalog(config));
    grid_ = new server::SkyGrid(db_->FindTable("PhotoPrimary"));
    db_->RegisterTableFunction(server::MakeGetNearbyObjEq(grid_));
    db_->scalar_functions()->Register(
        "fPhotoFlags",
        [](const std::vector<sql::Value>& args)
            -> util::StatusOr<sql::Value> {
          FNPROXY_ASSIGN_OR_RETURN(
              int64_t bit, catalog::PhotoFlagValue(args.at(0).AsString()));
          return sql::Value::Int(bit);
        });
    templates_ = new core::TemplateRegistry();
    ASSERT_TRUE(templates_
                    ->RegisterFunctionTemplateXml(
                        workload::kNearbyObjEqTemplateXml)
                    .ok());
    auto qt = core::QueryTemplate::Create("radial", "/radial",
                                          workload::kRadialTemplateSql);
    ASSERT_TRUE(qt.ok());
    ASSERT_TRUE(templates_->RegisterQueryTemplate(std::move(*qt)).ok());
  }
  static void TearDownTestSuite() {
    delete templates_;
    delete grid_;
    delete db_;
    templates_ = nullptr;
    grid_ = nullptr;
    db_ = nullptr;
  }

  /// Builds the per-test pipeline; tests that need a non-default config or
  /// link call this explicitly, the rest get the default from SetUp.
  void Build(const core::ProxyConfig& config,
             net::LinkConfig link = net::LinkConfig{0.0, 1e9}) {
    proxy_.reset();
    channel_.reset();
    gated_.reset();
    app_.reset();
    clock_ = std::make_unique<util::SimulatedClock>();
    app_ = std::make_unique<server::OriginWebApp>(db_, clock_.get());
    ASSERT_TRUE(
        app_->RegisterForm("/radial", workload::kRadialTemplateSql).ok());
    gated_ = std::make_unique<GatedOrigin>(app_.get());
    channel_ = std::make_unique<net::SimulatedChannel>(gated_.get(), link,
                                                       clock_.get());
    proxy_ = std::make_unique<core::FunctionProxy>(config, templates_,
                                                   channel_.get(),
                                                   clock_.get());
  }

  void SetUp() override { Build(core::ProxyConfig{}); }

  static HttpRequest Radial(double ra, double dec, double radius) {
    HttpRequest request;
    request.path = "/radial";
    request.query_params["ra"] = std::to_string(ra);
    request.query_params["dec"] = std::to_string(dec);
    request.query_params["radius"] = std::to_string(radius);
    return request;
  }

  static HttpRequest WithDeadline(HttpRequest request, int64_t budget_micros) {
    request.headers[net::kDeadlineBudgetHeader] =
        std::to_string(budget_micros);
    return request;
  }

  static server::Database* db_;
  static server::SkyGrid* grid_;
  static core::TemplateRegistry* templates_;

  std::unique_ptr<util::SimulatedClock> clock_;
  std::unique_ptr<server::OriginWebApp> app_;
  std::unique_ptr<GatedOrigin> gated_;
  std::unique_ptr<net::SimulatedChannel> channel_;
  std::unique_ptr<core::FunctionProxy> proxy_;
};

server::Database* OverloadTest::db_ = nullptr;
server::SkyGrid* OverloadTest::grid_ = nullptr;
core::TemplateRegistry* OverloadTest::templates_ = nullptr;

// --- Single-flight collapsing -------------------------------------------

TEST_F(OverloadTest, ThunderingHerdSharesOneOriginFetch) {
  gated_->CloseGate();
  const HttpRequest hot = Radial(185, 33, 20);

  std::thread leader([&] { proxy_->Handle(hot); });
  gated_->AwaitRequests(1);  // Leader's flight is registered and in flight.

  constexpr int kFollowers = 7;
  std::vector<std::thread> followers;
  std::mutex mu;
  std::vector<HttpResponse> responses;
  for (int i = 0; i < kFollowers; ++i) {
    followers.emplace_back([&] {
      HttpResponse response = proxy_->Handle(hot);
      std::lock_guard<std::mutex> lock(mu);
      responses.push_back(std::move(response));
    });
  }
  // Give the followers time to join the flight, then release the origin.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  gated_->OpenGate();
  leader.join();
  for (std::thread& thread : followers) thread.join();

  // Exactly one origin fetch served the whole herd.
  EXPECT_EQ(gated_->requests(), 1u);
  ASSERT_EQ(responses.size(), static_cast<size_t>(kFollowers));
  for (const HttpResponse& response : responses) {
    EXPECT_TRUE(response.ok());
  }
  for (size_t i = 1; i < responses.size(); ++i) {
    EXPECT_EQ(responses[i].body, responses[0].body);
  }
  core::ProxyStats stats = proxy_->stats();
  EXPECT_EQ(stats.misses, 1u);
  // Followers that raced past the flight's completion land as exact hits;
  // either way no one paid a second origin trip.
  EXPECT_EQ(stats.collapsed + stats.exact_hits,
            static_cast<uint64_t>(kFollowers));
  EXPECT_GE(stats.collapsed, 1u);
}

TEST_F(OverloadTest, SubsumedFollowerServedFromLeadersFlight) {
  gated_->CloseGate();
  std::thread leader([&] { proxy_->Handle(Radial(185, 33, 20)); });
  gated_->AwaitRequests(1);

  // Strictly contained in the leader's cone (same center, smaller radius):
  // joins the flight and is answered by local selection over the admitted
  // entry.
  HttpResponse follower_response;
  std::thread follower([&] {
    follower_response = proxy_->Handle(Radial(185, 33, 8));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  gated_->OpenGate();
  leader.join();
  follower.join();

  EXPECT_EQ(gated_->requests(), 1u);
  ASSERT_TRUE(follower_response.ok());

  // The collapsed answer matches a direct origin evaluation.
  util::SimulatedClock scratch;
  server::OriginWebApp reference(db_, &scratch);
  ASSERT_TRUE(
      reference.RegisterForm("/radial", workload::kRadialTemplateSql).ok());
  HttpResponse expected = reference.Handle(Radial(185, 33, 8));
  auto got = sql::TableFromXml(follower_response.body);
  auto want = sql::TableFromXml(expected.body);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(got->num_rows(), want->num_rows());
}

TEST_F(OverloadTest, LeaderFailureWakesFollowersWithoutFanout) {
  gated_->CloseGate();
  gated_->FailFirst();
  const HttpRequest hot = Radial(185, 33, 20);

  HttpResponse leader_response;
  std::thread leader([&] { leader_response = proxy_->Handle(hot); });
  gated_->AwaitRequests(1);

  constexpr int kFollowers = 4;
  std::vector<std::thread> followers;
  std::mutex mu;
  std::vector<HttpResponse> responses;
  for (int i = 0; i < kFollowers; ++i) {
    followers.emplace_back([&] {
      HttpResponse response = proxy_->Handle(hot);
      std::lock_guard<std::mutex> lock(mu);
      responses.push_back(std::move(response));
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  gated_->OpenGate();  // Leader's request fails; followers must not hang.
  leader.join();
  for (std::thread& thread : followers) thread.join();

  EXPECT_FALSE(leader_response.ok());
  ASSERT_EQ(responses.size(), static_cast<size_t>(kFollowers));
  for (const HttpResponse& response : responses) {
    EXPECT_TRUE(response.ok()) << response.status_code;
  }
  // The failed flight wakes the herd one new leader at a time: far fewer
  // origin trips than one per follower.
  EXPECT_GE(gated_->requests(), 2u);
  EXPECT_LE(gated_->requests(), 1u + static_cast<uint64_t>(kFollowers));
}

// --- Admission control ---------------------------------------------------

TEST_F(OverloadTest, HardShedPastQueueBound) {
  core::ProxyConfig config;
  config.max_queue_depth = 1;
  // Soft origin-backlog lane off (watermark == bound): this test isolates
  // the hard bound.
  config.origin_shed_watermark = 1.0;
  Build(config);
  gated_->CloseGate();

  std::thread occupant([&] { proxy_->Handle(Radial(185, 33, 20)); });
  gated_->AwaitRequests(1);  // One request holds the only admission slot.

  HttpResponse shed = proxy_->Handle(Radial(186, 34, 10));
  EXPECT_EQ(shed.status_code, 503);
  EXPECT_EQ(shed.headers["X-Shed-Reason"], "overload");
  EXPECT_EQ(shed.headers.count("Retry-After"), 1u);
  EXPECT_NE(shed.body.find("overload"), std::string::npos);

  gated_->OpenGate();
  occupant.join();

  EXPECT_EQ(proxy_->stats().shed, 1u);
  // The shed is visible in the metrics endpoint with its reason label.
  HttpRequest metrics;
  metrics.path = "/metrics";
  HttpResponse scrape = proxy_->Handle(metrics);
  ASSERT_TRUE(scrape.ok());
  EXPECT_NE(
      scrape.body.find("fnproxy_shed_total{reason=\"overload\"} 1"),
      std::string::npos);
}

TEST_F(OverloadTest, OriginBacklogShedsMissesButServesHits) {
  core::ProxyConfig config;
  config.max_queue_depth = 4;
  config.origin_shed_watermark = 0.5;  // Backlog threshold: 2 in flight.
  Build(config);

  // Prime the cache while healthy.
  HttpResponse primed = proxy_->Handle(Radial(185, 33, 15));
  ASSERT_TRUE(primed.ok());

  gated_->CloseGate();
  std::thread miss1([&] { proxy_->Handle(Radial(181, 30, 10)); });
  std::thread miss2([&] { proxy_->Handle(Radial(189, 36, 10)); });
  gated_->AwaitRequests(3);  // Prime + the two blocked misses.

  // A third origin-bound request sees the backlog and is softly shed...
  HttpResponse shed = proxy_->Handle(Radial(183, 38, 10));
  EXPECT_EQ(shed.status_code, 503);
  EXPECT_EQ(shed.headers["X-Shed-Reason"], "origin-backlog");

  // ...while the cheap cache-hit lane keeps serving under the same load.
  HttpResponse hit = proxy_->Handle(Radial(185, 33, 15));
  EXPECT_TRUE(hit.ok());
  EXPECT_EQ(hit.body, primed.body);

  gated_->OpenGate();
  miss1.join();
  miss2.join();
  EXPECT_GE(proxy_->stats().shed, 1u);
}

// --- Deadline propagation ------------------------------------------------

TEST_F(OverloadTest, DeadlineTooTightForWanIsShedBeforeTheWire) {
  core::ProxyConfig config;
  Build(config, net::WanLink());  // 150 ms one-way: a trip costs >= 300 ms.

  HttpResponse shed =
      proxy_->Handle(WithDeadline(Radial(185, 33, 20), /*budget=*/50'000));
  EXPECT_EQ(shed.status_code, 503);
  EXPECT_EQ(shed.headers["X-Shed-Reason"], "deadline-exceeded");
  EXPECT_EQ(shed.headers.count("Retry-After"), 1u);
  EXPECT_EQ(gated_->requests(), 0u);  // Never touched the wire.
  EXPECT_EQ(proxy_->stats().deadline_exceeded, 1u);

  // Without a deadline the same query succeeds and is cached; an exact
  // repeat under the tight budget is then served locally just fine.
  ASSERT_TRUE(proxy_->Handle(Radial(185, 33, 20)).ok());
  HttpResponse hit =
      proxy_->Handle(WithDeadline(Radial(185, 33, 20), /*budget=*/50'000));
  EXPECT_TRUE(hit.ok());
}

TEST_F(OverloadTest, DeadlineBlockedRemainderServesDegradedPartial) {
  core::ProxyConfig config;
  Build(config, net::WanLink());

  // Cache a cone, then zoom out (region containment): the remainder fetch
  // cannot fit the tight budget, so the cached part is served as a partial.
  ASSERT_TRUE(proxy_->Handle(Radial(185, 33, 12)).ok());
  HttpResponse partial =
      proxy_->Handle(WithDeadline(Radial(185, 33, 20), /*budget=*/50'000));
  ASSERT_TRUE(partial.ok());
  EXPECT_NE(partial.body.find("partial=\"true\""), std::string::npos);
  EXPECT_NE(partial.body.find("degraded=\"deadline-exceeded\""),
            std::string::npos);
  EXPECT_EQ(proxy_->stats().deadline_exceeded, 1u);
  // Only the priming query reached the origin.
  EXPECT_EQ(gated_->requests(), 1u);
}

TEST_F(OverloadTest, ChannelDeadlineCapsRetriesAndBackoff) {
  util::SimulatedClock clock;
  class DroppingHandler final : public net::HttpHandler {
   public:
    HttpResponse Handle(const HttpRequest&) override {
      ++requests;
      return net::FaultInjector::MakeDrop();
    }
    int requests = 0;
  } handler;
  net::SimulatedChannel channel(&handler, net::LinkConfig{0.0, 1e9}, &clock);
  net::RetryPolicy policy;
  policy.max_attempts = 5;
  policy.base_backoff_micros = 1'000'000;
  channel.set_retry_policy(policy);

  // Budget fits one attempt but not the first backoff: exactly one attempt.
  HttpResponse response = channel.RoundTrip(
      net::HttpRequest{}, clock.NowMicros() + 100'000);
  EXPECT_TRUE(response.transport_error());
  EXPECT_EQ(handler.requests, 1);
  EXPECT_GE(channel.retry_stats().deadline_exhausted, 1u);

  // Budget already exhausted on arrival: fails without touching the wire.
  // (Advance first so the absolute deadline is nonzero — 0 means "none".)
  clock.Advance(1'000'000);
  handler.requests = 0;
  response = channel.RoundTrip(net::HttpRequest{}, clock.NowMicros());
  EXPECT_TRUE(response.transport_error());
  EXPECT_EQ(handler.requests, 0);
}

TEST_F(OverloadTest, MalformedDeadlineHeaderIgnored) {
  HttpRequest request = Radial(185, 33, 20);
  request.headers[net::kDeadlineBudgetHeader] = "not-a-number";
  EXPECT_EQ(net::DeadlineBudgetMicros(request), 0);
  HttpResponse response = proxy_->Handle(request);
  EXPECT_TRUE(response.ok());
}

// --- SingleFlightTable unit behavior ------------------------------------

TEST(SingleFlightTableTest, GuardFailsFlightOnEarlyExit) {
  core::SingleFlightTable table;
  geometry::Hypersphere region({0.0, 0.0, 1.0}, 0.1);
  auto leader = table.JoinOrLead("t", "fp", region);
  ASSERT_TRUE(leader.leader);
  auto follower = table.JoinOrLead("t", "fp", region);
  ASSERT_FALSE(follower.leader);
  {
    core::FlightGuard guard(&table, leader.token);
    // Dropped without Fulfill: the flight completes as failed.
  }
  ASSERT_EQ(follower.result.wait_for(std::chrono::seconds(5)),
            std::future_status::ready);
  EXPECT_FALSE(follower.result.get().ok);
  EXPECT_EQ(table.inflight(), 0u);
}

TEST(SingleFlightTableTest, DistinctKeysDoNotCollapse) {
  core::SingleFlightTable table;
  geometry::Hypersphere a({0.0, 0.0, 1.0}, 0.1);
  geometry::Hypersphere b({0.5, 0.5, 0.5}, 0.1);
  EXPECT_TRUE(table.JoinOrLead("t", "fp", a).leader);
  EXPECT_TRUE(table.JoinOrLead("t", "fp", b).leader);       // Disjoint region.
  EXPECT_TRUE(table.JoinOrLead("t", "other", a).leader);    // Other predicate.
  EXPECT_TRUE(table.JoinOrLead("u", "fp", a).leader);       // Other template.
  // A region contained in flight `a` joins it.
  geometry::Hypersphere inner({0.0, 0.0, 1.0}, 0.05);
  EXPECT_FALSE(table.JoinOrLead("t", "fp", inner).leader);
  EXPECT_EQ(table.flights_total(), 4u);
  EXPECT_EQ(table.joins_total(), 1u);
}

// --- ThreadPool admission + priority ------------------------------------

TEST(ThreadPoolTest, BoundedQueueRejectsWhenFull) {
  util::ThreadPool::Options options;
  options.num_threads = 1;
  options.max_queue_depth = 2;
  util::ThreadPool pool(options);

  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  // Occupy the single worker so subsequent submissions queue.
  ASSERT_TRUE(pool.Submit([&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  }));
  while (pool.queue_depth() > 0) std::this_thread::yield();

  std::atomic<int> ran{0};
  ASSERT_TRUE(pool.Submit([&] { ran.fetch_add(1); }));
  ASSERT_TRUE(pool.Submit([&] { ran.fetch_add(1); }));
  // Third queued task exceeds the bound.
  EXPECT_FALSE(pool.Submit([&] { ran.fetch_add(1); }));
  EXPECT_EQ(pool.rejected_total(), 1u);
  EXPECT_EQ(pool.queue_depth(), 2u);

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  pool.Wait();
  EXPECT_EQ(ran.load(), 2);
  EXPECT_EQ(pool.queue_depth(), 0u);
}

TEST(ThreadPoolTest, HighPriorityLaneDrainsFirst) {
  util::ThreadPool::Options options;
  options.num_threads = 1;
  util::ThreadPool pool(options);

  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  ASSERT_TRUE(pool.Submit([&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  }));

  std::mutex order_mu;
  std::vector<int> order;
  auto record = [&](int id) {
    return [&, id] {
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(id);
    };
  };
  ASSERT_TRUE(pool.Submit(record(1), util::TaskPriority::kNormal));
  ASSERT_TRUE(pool.Submit(record(2), util::TaskPriority::kNormal));
  ASSERT_TRUE(pool.Submit(record(3), util::TaskPriority::kHigh));
  ASSERT_TRUE(pool.Submit(record(4), util::TaskPriority::kHigh));

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  pool.Wait();
  ASSERT_EQ(order.size(), 4u);
  // Both high-priority tasks ran before either normal one; FIFO per lane.
  EXPECT_EQ(order[0], 3);
  EXPECT_EQ(order[1], 4);
  EXPECT_EQ(order[2], 1);
  EXPECT_EQ(order[3], 2);
}

TEST(ThreadPoolTest, RejectsAfterShutdownWithoutCountingAsLoadShed) {
  util::ThreadPool pool(1);
  pool.Shutdown();
  EXPECT_FALSE(pool.Submit([] {}));
  EXPECT_EQ(pool.rejected_total(), 0u);
}

}  // namespace
}  // namespace fnproxy
