// End-to-end exercise of polytope-shaped function templates (the paper's
// "more complex" region class, §3.1): a triangle-search TVF at the origin,
// a polytope function template whose halfspaces are *computed from the
// form parameters* by template expressions, and the full proxy pipeline
// answering containment/region-containment cases over triangles.

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "catalog/sky_catalog.h"
#include "core/proxy.h"
#include "net/network.h"
#include "server/sky_functions.h"
#include "server/web_app.h"
#include "sql/table_xml.h"

namespace fnproxy {
namespace {

using core::CachingMode;
using sql::Value;

// Halfspace for CCW edge (i -> j):
//   (dec_j - dec_i) * ra - (ra_j - ra_i) * dec
//     <= (dec_j - dec_i) * ra_i - (ra_j - ra_i) * dec_i
constexpr char kTriangleTemplateXml[] = R"(<FunctionTemplate>
  <Name>fGetObjInTriangle</Name>
  <Params><P>$ra1</P><P>$dec1</P><P>$ra2</P><P>$dec2</P><P>$ra3</P><P>$dec3</P></Params>
  <Shape>polytope</Shape>
  <NumDimensions>2</NumDimensions>
  <Halfspaces>
    <H><Normal><C>$dec2 - $dec1</C><C>0 - ($ra2 - $ra1)</C></Normal>
       <Offset>($dec2 - $dec1) * $ra1 - ($ra2 - $ra1) * $dec1</Offset></H>
    <H><Normal><C>$dec3 - $dec2</C><C>0 - ($ra3 - $ra2)</C></Normal>
       <Offset>($dec3 - $dec2) * $ra2 - ($ra3 - $ra2) * $dec2</Offset></H>
    <H><Normal><C>$dec1 - $dec3</C><C>0 - ($ra1 - $ra3)</C></Normal>
       <Offset>($dec1 - $dec3) * $ra3 - ($ra1 - $ra3) * $dec3</Offset></H>
  </Halfspaces>
  <Vertices>
    <V><C>$ra1</C><C>$dec1</C></V>
    <V><C>$ra2</C><C>$dec2</C></V>
    <V><C>$ra3</C><C>$dec3</C></V>
  </Vertices>
  <CoordinateColumns><C>ra</C><C>dec</C></CoordinateColumns>
</FunctionTemplate>)";

constexpr char kTriangleSql[] =
    "SELECT p.objID, p.ra, p.dec "
    "FROM fGetObjInTriangle($ra1, $dec1, $ra2, $dec2, $ra3, $dec3) AS n "
    "JOIN PhotoPrimary AS p ON n.objID = p.objID";

class PolytopeEndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog::SkyCatalogConfig config;
    config.num_objects = 20000;
    config.num_clusters = 5;
    config.seed = 4242;
    config.ra_min = 175.0;
    config.ra_max = 195.0;
    config.dec_min = 25.0;
    config.dec_max = 45.0;
    db_ = new server::Database();
    db_->AddTable("PhotoPrimary", catalog::GenerateSkyCatalog(config));
    grid_ = new server::SkyGrid(db_->FindTable("PhotoPrimary"));
    db_->RegisterTableFunction(server::MakeGetObjInTriangle(grid_));

    templates_ = new core::TemplateRegistry();
    ASSERT_TRUE(
        templates_->RegisterFunctionTemplateXml(kTriangleTemplateXml).ok());
    auto qt = core::QueryTemplate::Create("triangle", "/triangle", kTriangleSql);
    ASSERT_TRUE(qt.ok()) << qt.status().ToString();
    ASSERT_TRUE(templates_->RegisterQueryTemplate(std::move(*qt)).ok());
  }
  static void TearDownTestSuite() {
    delete templates_;
    delete grid_;
    delete db_;
    templates_ = nullptr;
    grid_ = nullptr;
    db_ = nullptr;
  }

  void SetUp() override {
    clock_ = std::make_unique<util::SimulatedClock>();
    app_ = std::make_unique<server::OriginWebApp>(db_, clock_.get());
    ASSERT_TRUE(app_->RegisterForm("/triangle", kTriangleSql).ok());
    channel_ = std::make_unique<net::SimulatedChannel>(
        app_.get(), net::LinkConfig{0.0, 1e9}, clock_.get());
    core::ProxyConfig config;
    config.mode = CachingMode::kActiveFull;
    proxy_ = std::make_unique<core::FunctionProxy>(config, templates_,
                                                   channel_.get(), clock_.get());
  }

  static net::HttpRequest TriangleRequest(double ra1, double dec1, double ra2,
                                          double dec2, double ra3,
                                          double dec3) {
    net::HttpRequest request;
    request.path = "/triangle";
    request.query_params["ra1"] = std::to_string(ra1);
    request.query_params["dec1"] = std::to_string(dec1);
    request.query_params["ra2"] = std::to_string(ra2);
    request.query_params["dec2"] = std::to_string(dec2);
    request.query_params["ra3"] = std::to_string(ra3);
    request.query_params["dec3"] = std::to_string(dec3);
    return request;
  }

  std::multiset<int64_t> Ask(const net::HttpRequest& request) {
    net::HttpResponse response = proxy_->Handle(request);
    EXPECT_TRUE(response.ok()) << response.body;
    auto table = sql::TableFromXml(response.body);
    EXPECT_TRUE(table.ok());
    std::multiset<int64_t> ids;
    for (const auto& row : table->rows()) ids.insert(row[0].AsInt());
    return ids;
  }

  std::multiset<int64_t> Direct(const net::HttpRequest& request) {
    util::SimulatedClock scratch;
    server::OriginWebApp app(db_, &scratch);
    EXPECT_TRUE(app.RegisterForm("/triangle", kTriangleSql).ok());
    net::HttpResponse response = app.Handle(request);
    EXPECT_TRUE(response.ok()) << response.body;
    auto table = sql::TableFromXml(response.body);
    EXPECT_TRUE(table.ok());
    std::multiset<int64_t> ids;
    for (const auto& row : table->rows()) ids.insert(row[0].AsInt());
    return ids;
  }

  static server::Database* db_;
  static server::SkyGrid* grid_;
  static core::TemplateRegistry* templates_;

  std::unique_ptr<util::SimulatedClock> clock_;
  std::unique_ptr<server::OriginWebApp> app_;
  std::unique_ptr<net::SimulatedChannel> channel_;
  std::unique_ptr<core::FunctionProxy> proxy_;
};

server::Database* PolytopeEndToEndTest::db_ = nullptr;
server::SkyGrid* PolytopeEndToEndTest::grid_ = nullptr;
core::TemplateRegistry* PolytopeEndToEndTest::templates_ = nullptr;

TEST_F(PolytopeEndToEndTest, TvfMatchesBruteForce) {
  const server::TableValuedFunction* fn =
      db_->FindTableFunction("fGetObjInTriangle");
  ASSERT_NE(fn, nullptr);
  // CCW triangle (180,30) (186,30) (183,36).
  auto result = fn->Execute({Value::Double(180), Value::Double(30),
                             Value::Double(186), Value::Double(30),
                             Value::Double(183), Value::Double(36)});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const sql::Table& cat = *db_->FindTable("PhotoPrimary");
  size_t ra_col = *cat.schema().FindColumn("ra");
  size_t dec_col = *cat.schema().FindColumn("dec");
  size_t id_col = *cat.schema().FindColumn("objID");
  std::set<int64_t> expected;
  for (const auto& row : cat.rows()) {
    double x = row[ra_col].AsDouble(), y = row[dec_col].AsDouble();
    // Inside the CCW triangle: all three cross products nonnegative.
    double c1 = (186 - 180) * (y - 30) - (30 - 30) * (x - 180);
    double c2 = (183 - 186) * (y - 30) - (36 - 30) * (x - 186);
    double c3 = (180 - 183) * (y - 36) - (30 - 36) * (x - 183);
    if (c1 >= 0 && c2 >= 0 && c3 >= 0) expected.insert(row[id_col].AsInt());
  }
  std::set<int64_t> got;
  for (const auto& row : result->table.rows()) got.insert(row[0].AsInt());
  EXPECT_EQ(got, expected);
  EXPECT_FALSE(got.empty());
}

TEST_F(PolytopeEndToEndTest, ClockwiseRejected) {
  const server::TableValuedFunction* fn =
      db_->FindTableFunction("fGetObjInTriangle");
  EXPECT_FALSE(fn->Execute({Value::Double(180), Value::Double(30),
                            Value::Double(183), Value::Double(36),
                            Value::Double(186), Value::Double(30)})
                   .ok());
}

TEST_F(PolytopeEndToEndTest, TemplateRegionMatchesServerSemantics) {
  const core::FunctionTemplate* tmpl =
      templates_->FindFunctionTemplate("fGetObjInTriangle");
  ASSERT_NE(tmpl, nullptr);
  EXPECT_EQ(tmpl->shape(), geometry::ShapeKind::kPolytope);
  auto region = tmpl->BuildRegion(
      {Value::Double(180), Value::Double(30), Value::Double(186),
       Value::Double(30), Value::Double(183), Value::Double(36)});
  ASSERT_TRUE(region.ok()) << region.status().ToString();
  EXPECT_TRUE((*region)->ContainsPoint({183.0, 31.0}));
  EXPECT_FALSE((*region)->ContainsPoint({183.0, 29.0}));
  EXPECT_FALSE((*region)->ContainsPoint({180.5, 35.0}));
}

TEST_F(PolytopeEndToEndTest, ProxyTransparencyAcrossRelationships) {
  std::vector<net::HttpRequest> sequence = {
      TriangleRequest(180, 30, 186, 30, 183, 36),   // Miss.
      TriangleRequest(180, 30, 186, 30, 183, 36),   // Exact.
      TriangleRequest(182, 31, 184, 31, 183, 33),   // Contained.
      TriangleRequest(178, 29, 188, 29, 183, 38),   // Contains (zoom out).
      TriangleRequest(184, 30, 190, 30, 187, 36),   // Overlap.
      TriangleRequest(176, 40, 179, 40, 177.5, 43), // Disjoint.
  };
  for (const auto& request : sequence) {
    EXPECT_EQ(Ask(request), Direct(request)) << request.ToUrl();
  }
  const core::ProxyStats& stats = proxy_->stats();
  EXPECT_EQ(stats.exact_hits, 1u);
  EXPECT_GE(stats.containment_hits, 1u);
  EXPECT_GE(stats.region_containments, 1u);
  EXPECT_GE(stats.overlaps_handled, 1u);
}

TEST_F(PolytopeEndToEndTest, ContainedTriangleAnsweredWithoutOrigin) {
  Ask(TriangleRequest(180, 30, 186, 30, 183, 36));
  uint64_t before = channel_->total_requests();
  auto ids = Ask(TriangleRequest(182, 31, 184, 31, 183, 33));
  EXPECT_EQ(channel_->total_requests(), before);
  EXPECT_EQ(ids, Direct(TriangleRequest(182, 31, 184, 31, 183, 33)));
}

}  // namespace
}  // namespace fnproxy
