// Wire-format and live-socket tests: the proxy deployed over real loopback
// HTTP, end to end.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "catalog/sky_catalog.h"
#include "core/proxy.h"
#include "net/http_server.h"
#include "net/http_wire.h"
#include "net/network.h"
#include "server/sky_functions.h"
#include "server/web_app.h"
#include "sql/table_xml.h"
#include "workload/experiment.h"

namespace fnproxy::net {
namespace {

TEST(HttpWireTest, RequestRoundTrip) {
  auto request = HttpRequest::Get("/radial?ra=195.1&dec=2.5&radius=1.0");
  ASSERT_TRUE(request.ok());
  std::string wire = SerializeRequest(*request, "example.org");
  EXPECT_NE(wire.find("GET /radial?"), std::string::npos);
  EXPECT_NE(wire.find("Host: example.org\r\n"), std::string::npos);
  auto parsed = ParseWireRequest(wire);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->path, "/radial");
  EXPECT_EQ(parsed->query_params.at("ra"), "195.1");
  EXPECT_EQ(parsed->method, "GET");
}

TEST(HttpWireTest, ResponseRoundTrip) {
  HttpResponse response;
  response.status_code = 200;
  response.content_type = "text/xml";
  response.body = "<Result rows=\"0\"><Schema/></Result>";
  std::string wire = SerializeResponse(response);
  EXPECT_NE(wire.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 35\r\n"), std::string::npos);
  auto parsed = ParseWireResponse(wire);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->status_code, 200);
  EXPECT_EQ(parsed->body, response.body);
  EXPECT_EQ(parsed->content_type, "text/xml");
}

TEST(HttpWireTest, ErrorResponseRoundTrip) {
  HttpResponse error = HttpResponse::MakeError(404, "no such endpoint");
  auto parsed = ParseWireResponse(SerializeResponse(error));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->status_code, 404);
  EXPECT_FALSE(parsed->ok());
}

TEST(HttpWireTest, BodyWithBinaryishContentPreserved) {
  HttpResponse response;
  response.body = std::string("line1\r\n\r\nline2\0tail", 19);
  auto parsed = ParseWireResponse(SerializeResponse(response));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->body, response.body);
}

TEST(HttpWireTest, IncompleteAndMalformedRejected) {
  EXPECT_FALSE(ParseWireRequest("GET / HTTP/1.1\r\n").ok());  // No blank line.
  EXPECT_FALSE(ParseWireRequest("BROKEN\r\n\r\n").ok());
  EXPECT_FALSE(ParseWireResponse("HTTP/1.1\r\n\r\n").ok());
  EXPECT_FALSE(
      ParseWireRequest("GET / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc").ok());
}

TEST(HttpWireTest, IsCompleteMessage) {
  std::string wire =
      "GET / HTTP/1.1\r\nContent-Length: 4\r\n\r\nbody";
  EXPECT_TRUE(IsCompleteMessage(wire));
  EXPECT_FALSE(IsCompleteMessage(wire.substr(0, wire.size() - 1)));
  EXPECT_FALSE(IsCompleteMessage("GET / HTTP/1.1\r\n"));
}

class EchoHandler : public HttpHandler {
 public:
  HttpResponse Handle(const HttpRequest& request) override {
    HttpResponse response;
    response.content_type = "text/plain";
    response.body = "echo:" + request.ToUrl();
    return response;
  }
};

TEST(HttpServerTest, LoopbackRoundTrip) {
  EchoHandler handler;
  HttpServer server(&handler);
  ASSERT_TRUE(server.Start(0).ok());
  ASSERT_NE(server.port(), 0);
  auto response = HttpGet(server.port(), "/x?a=1&b=two");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->body, "echo:/x?a=1&b=two");
  server.Stop();
}

TEST(HttpServerTest, SequentialRequests) {
  EchoHandler handler;
  HttpServer server(&handler);
  ASSERT_TRUE(server.Start(0).ok());
  for (int i = 0; i < 20; ++i) {
    auto response = HttpGet(server.port(), "/n?i=" + std::to_string(i));
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->body, "echo:/n?i=" + std::to_string(i));
  }
  server.Stop();
}

TEST(HttpServerTest, StopIsIdempotentAndRestartable) {
  EchoHandler handler;
  {
    HttpServer server(&handler);
    ASSERT_TRUE(server.Start(0).ok());
    server.Stop();
    server.Stop();
    ASSERT_TRUE(server.Start(0).ok());
    auto response = HttpGet(server.port(), "/again");
    ASSERT_TRUE(response.ok());
  }  // Destructor stops.
}

TEST(HttpServerTest, ConnectToClosedPortFails) {
  EchoHandler handler;
  HttpServer server(&handler);
  ASSERT_TRUE(server.Start(0).ok());
  uint16_t port = server.port();
  server.Stop();
  EXPECT_FALSE(HttpGet(port, "/gone").ok());
}

/// Saturating a bounded worker pool must never silently drop connections:
/// every client gets either its answer or an explicit 503 with shed headers.
TEST(HttpServerTest, SaturationShedsWith503) {
  class SlowHandler : public HttpHandler {
   public:
    HttpResponse Handle(const HttpRequest& request) override {
      std::this_thread::sleep_for(std::chrono::milliseconds(300));
      HttpResponse response;
      response.body = "slow:" + request.path;
      return response;
    }
  } handler;
  HttpServer server(&handler, /*worker_threads=*/1, /*max_queue_depth=*/1);
  ASSERT_TRUE(server.Start(0).ok());

  constexpr int kClients = 8;
  std::vector<std::thread> clients;
  std::mutex mu;
  std::vector<util::StatusOr<HttpResponse>> results;
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      auto result = HttpGet(server.port(), "/q" + std::to_string(i));
      std::lock_guard<std::mutex> lock(mu);
      results.push_back(std::move(result));
    });
  }
  for (std::thread& client : clients) client.join();
  server.Stop();

  int served = 0;
  int shed = 0;
  for (const auto& result : results) {
    // No transport-level failures: the server answered every connection.
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    if (result->ok()) {
      ++served;
    } else {
      ASSERT_EQ(result->status_code, 503);
      // Wire headers come back lowercased from the parser.
      EXPECT_EQ(result->headers.at("x-shed-reason"), "queue-full");
      EXPECT_EQ(result->headers.count("retry-after"), 1u);
      ++shed;
    }
  }
  EXPECT_EQ(served + shed, kClients);
  EXPECT_GT(served, 0);
  EXPECT_GT(shed, 0);
  EXPECT_EQ(server.shed_total(), static_cast<uint64_t>(shed));
}

/// Full live deployment: synthetic SkyServer behind one real socket server,
/// the function proxy behind another, queries issued as real HTTP GETs.
TEST(LiveProxyTest, EndToEndOverRealSockets) {
  catalog::SkyCatalogConfig config;
  config.num_objects = 10000;
  config.seed = 555;
  config.ra_min = 178.0;
  config.ra_max = 192.0;
  config.dec_min = 28.0;
  config.dec_max = 40.0;
  server::Database db;
  db.AddTable("PhotoPrimary", catalog::GenerateSkyCatalog(config));
  server::SkyGrid grid(db.FindTable("PhotoPrimary"));
  db.RegisterTableFunction(server::MakeGetNearbyObjEq(&grid));
  db.scalar_functions()->Register(
      "fPhotoFlags",
      [](const std::vector<sql::Value>& args)
          -> util::StatusOr<sql::Value> {
        FNPROXY_ASSIGN_OR_RETURN(int64_t bit,
                                 catalog::PhotoFlagValue(args.at(0).AsString()));
        return sql::Value::Int(bit);
      });

  util::SimulatedClock clock;
  server::OriginWebApp origin(&db, &clock);
  ASSERT_TRUE(origin.RegisterForm("/radial", workload::kRadialTemplateSql).ok());
  HttpServer origin_server(&origin);
  ASSERT_TRUE(origin_server.Start(0).ok());

  core::TemplateRegistry templates;
  ASSERT_TRUE(templates
                  .RegisterFunctionTemplateXml(workload::kNearbyObjEqTemplateXml)
                  .ok());
  auto qt = core::QueryTemplate::Create("radial", "/radial",
                                        workload::kRadialTemplateSql);
  ASSERT_TRUE(qt.ok());
  ASSERT_TRUE(templates.RegisterQueryTemplate(std::move(*qt)).ok());

  // The proxy reaches its origin through a real socket.
  RemoteHostHandler origin_remote(origin_server.port());
  SimulatedChannel origin_channel(&origin_remote, LinkConfig{0.0, 1e9}, &clock);
  core::FunctionProxy proxy(core::ProxyConfig{}, &templates, &origin_channel,
                            &clock);
  HttpServer proxy_server(&proxy);
  ASSERT_TRUE(proxy_server.Start(0).ok());

  const std::string url = "/radial?ra=185.0&dec=33.0&radius=25.0";
  auto first = HttpGet(proxy_server.port(), url);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(first->ok()) << first->body;
  auto table1 = sql::TableFromXml(first->body);
  ASSERT_TRUE(table1.ok());

  auto second = HttpGet(proxy_server.port(), url);  // Exact hit.
  ASSERT_TRUE(second.ok());
  auto table2 = sql::TableFromXml(second->body);
  ASSERT_TRUE(table2.ok());
  EXPECT_EQ(table1->num_rows(), table2->num_rows());
  EXPECT_EQ(proxy.stats().exact_hits, 1u);

  auto contained =
      HttpGet(proxy_server.port(), "/radial?ra=185.0&dec=33.0&radius=10.0");
  ASSERT_TRUE(contained.ok());
  EXPECT_EQ(proxy.stats().containment_hits, 1u);

  // The admin endpoint reports live statistics without touching the origin.
  auto stats = HttpGet(proxy_server.port(), "/proxy/stats");
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->body.find("<ProxyStats"), std::string::npos);
  EXPECT_NE(stats->body.find("exact=\"1\""), std::string::npos);
  EXPECT_NE(stats->body.find("mode=\"AC-full\""), std::string::npos);

  proxy_server.Stop();
  origin_server.Stop();
}

}  // namespace
}  // namespace fnproxy::net
