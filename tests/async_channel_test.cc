#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "catalog/sky_catalog.h"
#include "core/proxy.h"
#include "net/http.h"
#include "net/network.h"
#include "net/origin_channel.h"
#include "server/sky_functions.h"
#include "server/web_app.h"
#include "sql/table_xml.h"
#include "workload/experiment.h"

namespace fnproxy::core {
namespace {

using net::HttpRequest;
using net::HttpResponse;

// ---------------------------------------------------------------------------
// Batch framing round trip.
// ---------------------------------------------------------------------------

TEST(SqlBatchFramingTest, RequestRoundTrips) {
  std::vector<std::string> statements = {
      "SELECT * FROM t WHERE a = 1", "", "multi\nline\nsql"};
  std::string body = net::EncodeSqlBatchRequest(statements);
  std::vector<std::string> decoded;
  ASSERT_TRUE(net::DecodeSqlBatchRequest(body, &decoded));
  EXPECT_EQ(decoded, statements);
}

TEST(SqlBatchFramingTest, ResponseRoundTrips) {
  std::vector<HttpResponse> subs(3);
  subs[0].status_code = 200;
  subs[0].body = "<result rows=\"2\"/>";
  subs[1].status_code = 400;
  subs[1].body = "parse error: line 1\nnear WHERE";
  subs[2].status_code = 200;
  subs[2].body = "";
  std::string body = net::EncodeSqlBatchResponse(subs);
  std::vector<HttpResponse> decoded;
  ASSERT_TRUE(net::DecodeSqlBatchResponse(body, &decoded));
  ASSERT_EQ(decoded.size(), subs.size());
  for (size_t i = 0; i < subs.size(); ++i) {
    EXPECT_EQ(decoded[i].status_code, subs[i].status_code);
    EXPECT_EQ(decoded[i].body, subs[i].body);
  }
}

TEST(SqlBatchFramingTest, MalformedBodiesRejected) {
  std::vector<std::string> statements;
  EXPECT_FALSE(net::DecodeSqlBatchRequest("", &statements));
  EXPECT_FALSE(net::DecodeSqlBatchRequest("nonsense", &statements));
  EXPECT_FALSE(net::DecodeSqlBatchRequest("99\nshort", &statements));
  std::vector<HttpResponse> responses;
  EXPECT_FALSE(net::DecodeSqlBatchResponse("200\nmissing-len", &responses));
  EXPECT_FALSE(net::DecodeSqlBatchResponse("200 99\nshort", &responses));
}

// ---------------------------------------------------------------------------
// Origin environment shared by the pipeline tests.
// ---------------------------------------------------------------------------

HttpRequest RadialRequest(double ra, double dec, double radius) {
  HttpRequest request;
  request.path = "/radial";
  request.query_params["ra"] = std::to_string(ra);
  request.query_params["dec"] = std::to_string(dec);
  request.query_params["radius"] = std::to_string(radius);
  return request;
}

class AsyncChannelTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog::SkyCatalogConfig config;
    config.num_objects = 12000;
    config.num_clusters = 5;
    config.seed = 42;
    config.ra_min = 175.0;
    config.ra_max = 205.0;
    config.dec_min = 25.0;
    config.dec_max = 50.0;
    db_ = new server::Database();
    db_->AddTable("PhotoPrimary", catalog::GenerateSkyCatalog(config));
    grid_ = new server::SkyGrid(db_->FindTable("PhotoPrimary"));
    db_->RegisterTableFunction(server::MakeGetNearbyObjEq(grid_));
    db_->scalar_functions()->Register(
        "fPhotoFlags",
        [](const std::vector<sql::Value>& args) -> util::StatusOr<sql::Value> {
          FNPROXY_ASSIGN_OR_RETURN(
              int64_t bit, catalog::PhotoFlagValue(args.at(0).AsString()));
          return sql::Value::Int(bit);
        });
    templates_ = new TemplateRegistry();
    ASSERT_TRUE(templates_
                    ->RegisterFunctionTemplateXml(
                        workload::kNearbyObjEqTemplateXml)
                    .ok());
    auto qt = QueryTemplate::Create("radial", "/radial",
                                    workload::kRadialTemplateSql);
    ASSERT_TRUE(qt.ok());
    ASSERT_TRUE(templates_->RegisterQueryTemplate(std::move(*qt)).ok());
  }
  static void TearDownTestSuite() {
    delete templates_;
    delete grid_;
    delete db_;
    templates_ = nullptr;
    grid_ = nullptr;
    db_ = nullptr;
  }

  /// A complete proxy stack (own clock, origin app, channel) so async and
  /// serialized runs cannot perturb each other's accounting.
  struct Stack {
    std::unique_ptr<util::SimulatedClock> clock;
    std::unique_ptr<server::OriginWebApp> app;
    std::unique_ptr<net::SimulatedChannel> channel;
    std::unique_ptr<FunctionProxy> proxy;
  };

  Stack MakeStack(bool async_origin) {
    Stack s;
    s.clock = std::make_unique<util::SimulatedClock>();
    s.app = std::make_unique<server::OriginWebApp>(db_, s.clock.get());
    EXPECT_TRUE(
        s.app->RegisterForm("/radial", workload::kRadialTemplateSql).ok());
    s.channel = std::make_unique<net::SimulatedChannel>(
        s.app.get(), net::WanLink(), s.clock.get());
    ProxyConfig config;
    config.mode = CachingMode::kActiveFull;
    config.async_origin = async_origin;
    s.proxy = std::make_unique<FunctionProxy>(config, templates_,
                                              s.channel.get(), s.clock.get());
    return s;
  }

  static server::Database* db_;
  static server::SkyGrid* grid_;
  static TemplateRegistry* templates_;
};

server::Database* AsyncChannelTest::db_ = nullptr;
server::SkyGrid* AsyncChannelTest::grid_ = nullptr;
TemplateRegistry* AsyncChannelTest::templates_ = nullptr;

// The pipelined path (remainder fetch overlapping local probe evaluation)
// must produce byte-identical XML to the serialized fetch-after-eval order,
// for every request in a sequence covering miss, exact hit, containment,
// overlap (the async remainder path), and region containment.
TEST_F(AsyncChannelTest, PipelinedMatchesSerializedByteForByte) {
  Stack async_stack = MakeStack(/*async_origin=*/true);
  Stack sync_stack = MakeStack(/*async_origin=*/false);

  const std::vector<HttpRequest> sequence = {
      RadialRequest(195.0, 31.0, 25.0),  // Miss: fetched, cached.
      RadialRequest(195.0, 31.0, 25.0),  // Exact hit.
      RadialRequest(195.0, 31.0, 10.0),  // Contained in the first.
      RadialRequest(195.2, 31.1, 22.0),  // Overlap: probe + async remainder.
      RadialRequest(195.0, 31.0, 40.0),  // Region containment: contains both.
      RadialRequest(195.2, 31.1, 24.0),  // Contained again (merged entry).
  };
  for (size_t i = 0; i < sequence.size(); ++i) {
    HttpResponse async_response = async_stack.proxy->Handle(sequence[i]);
    HttpResponse sync_response = sync_stack.proxy->Handle(sequence[i]);
    EXPECT_EQ(async_response.status_code, sync_response.status_code)
        << "request " << i;
    EXPECT_EQ(async_response.body, sync_response.body) << "request " << i;
  }
  // The overlap and region-containment requests really took the pipelined
  // remainder path on the async stack.
  ProxyStats stats = async_stack.proxy->stats();
  EXPECT_GE(stats.overlaps_handled + stats.region_containments, 2u);
  EXPECT_GE(stats.origin_sql_requests, 2u);
  // And the virtual-clock totals agree: pipelining reorders work but every
  // modeled microsecond is still charged.
  EXPECT_EQ(async_stack.clock->NowMicros(), sync_stack.clock->NowMicros());
}

// ---------------------------------------------------------------------------
// Coalescing on the raw channel.
// ---------------------------------------------------------------------------

/// Wraps a handler, adding a real-time delay per request so the dispatcher
/// stays busy long enough for queued requests to coalesce deterministically.
class SlowHandler : public net::HttpHandler {
 public:
  SlowHandler(net::HttpHandler* inner, int delay_ms)
      : inner_(inner), delay_ms_(delay_ms) {}
  HttpResponse Handle(const HttpRequest& request) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms_));
    return inner_->Handle(request);
  }

 private:
  net::HttpHandler* inner_;
  int delay_ms_;
};

/// Refuses /sql/batch with 404 (an origin without the facility), forwarding
/// everything else.
class NoBatchHandler : public net::HttpHandler {
 public:
  explicit NoBatchHandler(net::HttpHandler* inner) : inner_(inner) {}
  HttpResponse Handle(const HttpRequest& request) override {
    if (request.path == "/sql/batch") {
      return HttpResponse::MakeError(404, "no such endpoint");
    }
    return inner_->Handle(request);
  }

 private:
  net::HttpHandler* inner_;
};

HttpRequest SqlRequest(const std::string& sql) {
  HttpRequest request;
  request.path = "/sql";
  request.query_params["q"] = sql;
  return request;
}

TEST_F(AsyncChannelTest, AdjacentRemaindersCoalesceIntoOneBatch) {
  util::SimulatedClock clock;
  server::OriginWebApp app(db_, &clock);
  SlowHandler slow(&app, /*delay_ms=*/100);
  net::SimulatedChannel channel(&slow, net::LanLink(), &clock);
  // One dispatcher: the first request occupies it while the rest queue, so
  // the second pop drains them as one batch.
  net::OriginChannelOptions options;
  options.num_dispatchers = 1;
  net::OriginChannel async_channel(&channel, options);

  const std::string sql =
      "SELECT objID, ra, dec FROM PhotoPrimary WHERE ra > 190 AND ra < 190.2";
  // Solo reference response for the same statement.
  util::SimulatedClock ref_clock;
  server::OriginWebApp ref_app(db_, &ref_clock);
  net::SimulatedChannel ref_channel(&ref_app, net::LanLink(), &ref_clock);
  HttpResponse reference = ref_channel.RoundTrip(SqlRequest(sql));
  ASSERT_TRUE(reference.ok());

  std::vector<std::future<HttpResponse>> futures;
  for (int i = 0; i < 5; ++i) {
    futures.push_back(async_channel.RoundTripAsync(SqlRequest(sql)));
  }
  for (auto& f : futures) {
    HttpResponse response = f.get();
    ASSERT_TRUE(response.ok()) << response.body;
    EXPECT_EQ(response.body, reference.body);
  }
  // The first request went solo (nothing else was queued yet); the rest
  // coalesced. Exact split can vary with scheduling, but at least one batch
  // must have formed and carried at least two requests.
  EXPECT_EQ(async_channel.async_requests(), 5u);
  EXPECT_GE(async_channel.batches_sent(), 1u);
  EXPECT_GE(async_channel.requests_batched(), 2u);
}

TEST_F(AsyncChannelTest, BatchUnsupportedOriginFallsBackSolo) {
  util::SimulatedClock clock;
  server::OriginWebApp app(db_, &clock);
  NoBatchHandler no_batch(&app);
  SlowHandler slow(&no_batch, /*delay_ms=*/50);
  net::SimulatedChannel channel(&slow, net::LanLink(), &clock);
  net::OriginChannelOptions options;
  options.num_dispatchers = 1;
  net::OriginChannel async_channel(&channel, options);

  const std::string sql =
      "SELECT objID FROM PhotoPrimary WHERE ra > 195 AND ra < 195.1";
  std::vector<std::future<HttpResponse>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(async_channel.RoundTripAsync(SqlRequest(sql)));
  }
  for (auto& f : futures) {
    HttpResponse response = f.get();
    EXPECT_TRUE(response.ok()) << response.body;
  }
  // The 404 disabled batching; every request still succeeded solo.
  EXPECT_EQ(async_channel.batches_sent(), 0u);
  EXPECT_EQ(async_channel.requests_batched(), 0u);
}

// Deadline-bearing requests bypass coalescing and carry their budget to the
// wire exactly as a synchronous RoundTrip would.
TEST_F(AsyncChannelTest, DeadlineRequestsAreNeverBatched) {
  util::SimulatedClock clock;
  server::OriginWebApp app(db_, &clock);
  SlowHandler slow(&app, /*delay_ms=*/50);
  net::SimulatedChannel channel(&slow, net::LanLink(), &clock);
  net::OriginChannelOptions options;
  options.num_dispatchers = 1;
  net::OriginChannel async_channel(&channel, options);

  const std::string sql =
      "SELECT objID FROM PhotoPrimary WHERE ra > 195 AND ra < 195.05";
  std::vector<std::future<HttpResponse>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(async_channel.RoundTripAsync(
        SqlRequest(sql), /*deadline_micros=*/clock.NowMicros() + 60'000'000));
  }
  for (auto& f : futures) {
    EXPECT_TRUE(f.get().ok());
  }
  EXPECT_EQ(async_channel.batches_sent(), 0u);
}

}  // namespace
}  // namespace fnproxy::core
