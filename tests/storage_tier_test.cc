// CacheStore storage-tier tests (docs/STORAGE.md): idle entries demote hot
// -> frozen -> spilled under the sweep, promotion restores bit-identical
// tuples, the spill budget is honored, a lost or corrupt spill file degrades
// to a counted miss (never wrong data), and the whole lifecycle survives
// concurrent promotion racing the sweep.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/cache_store.h"
#include "geometry/hypersphere.h"
#include "index/array_index.h"
#include "sql/table_xml.h"

namespace fnproxy::core {
namespace {

using geometry::Hypersphere;
using sql::Schema;
using sql::Table;
using sql::Value;
using sql::ValueType;

constexpr int64_t kSecond = 1'000'000;

Table MakeResult(size_t rows) {
  Table table(Schema({{"objID", ValueType::kInt},
                      {"ra", ValueType::kDouble},
                      {"class", ValueType::kString}}));
  for (size_t i = 0; i < rows; ++i) {
    table.AddRow({Value::Int(static_cast<int64_t>(1000 + i)),
                  Value::Double(static_cast<double>(i) * 0.25),
                  Value::String(i % 3 == 0 ? "STAR" : "GALAXY")});
  }
  return table;
}

CacheEntry MakeEntry(double center, size_t rows) {
  CacheEntry entry;
  entry.template_id = "radial";
  entry.param_fingerprint = "c=" + std::to_string(center);
  entry.region =
      std::make_unique<Hypersphere>(geometry::Point{center, 0.0}, 1.0);
  entry.result = MakeResult(rows);
  return entry;
}

std::unique_ptr<CacheStore> MakeStore(TierConfig config) {
  auto store = std::make_unique<CacheStore>(
      std::make_unique<index::ArrayRegionIndex>(), /*max_bytes=*/0,
      ReplacementPolicy::kLru);
  store->set_tier_config(std::move(config));
  return store;
}

std::string SpillDir(const char* name) {
  std::string dir = ::testing::TempDir() + "/fnproxy_tier_" + name;
  std::remove(dir.c_str());
  std::filesystem::create_directories(dir);
  return dir;
}

TEST(StorageTierTest, SweepFreezesIdleEntriesAndFindDoesNotPromote) {
  TierConfig config;
  config.freeze_idle_micros = 10 * kSecond;
  auto store = MakeStore(config);
  const std::string hot_xml =
      sql::TableToXml(sql::ColumnarTable(MakeResult(50)));

  uint64_t id = store->Insert(MakeEntry(0, 50));
  ASSERT_NE(id, 0u);
  // Young entry: the sweep leaves it hot.
  EXPECT_EQ(store->SweepColdEntries(5 * kSecond).frozen, 0u);
  EXPECT_EQ(store->frozen_entries(), 0u);

  TierSweepResult swept = store->SweepColdEntries(20 * kSecond);
  EXPECT_EQ(swept.frozen, 1u);
  EXPECT_EQ(store->frozen_entries(), 1u);
  EXPECT_EQ(store->freezes(), 1u);
  EXPECT_GT(store->frozen_raw_bytes(), store->frozen_encoded_bytes());

  // Find hands back the cold snapshot: schema intact, zero rows, segment
  // attached — schema checks must be possible without a thaw.
  std::shared_ptr<const CacheEntry> cold = store->Find(id);
  ASSERT_NE(cold, nullptr);
  EXPECT_EQ(cold->tier, EntryTier::kFrozen);
  EXPECT_EQ(cold->result.num_rows(), 0u);
  EXPECT_EQ(cold->result.num_columns(), 3u);
  ASSERT_NE(cold->segment, nullptr);
  EXPECT_EQ(cold->segment->num_rows(), 50u);
  EXPECT_EQ(store->thaws(), 0u);

  // FindHot promotes and restores the identical table.
  std::shared_ptr<const CacheEntry> hot = store->FindHot(id);
  ASSERT_NE(hot, nullptr);
  EXPECT_EQ(hot->tier, EntryTier::kHot);
  EXPECT_EQ(sql::TableToXml(hot->result), hot_xml);
  EXPECT_EQ(store->thaws(), 1u);
  EXPECT_EQ(store->frozen_entries(), 0u);
}

TEST(StorageTierTest, SpillAndFaultBack) {
  const std::string dir = SpillDir("spill");
  TierConfig config;
  config.freeze_idle_micros = 10 * kSecond;
  config.spill_idle_micros = 30 * kSecond;
  config.spill_dir = dir;
  auto store = MakeStore(config);
  const std::string hot_xml =
      sql::TableToXml(sql::ColumnarTable(MakeResult(80)));

  uint64_t id = store->Insert(MakeEntry(0, 80));
  ASSERT_NE(id, 0u);
  EXPECT_EQ(store->SweepColdEntries(15 * kSecond).frozen, 1u);
  TierSweepResult swept = store->SweepColdEntries(60 * kSecond);
  EXPECT_EQ(swept.spilled, 1u);
  EXPECT_EQ(store->spilled_entries(), 1u);
  EXPECT_GT(store->spill_bytes_used(), 0u);

  std::shared_ptr<const CacheEntry> cold = store->Find(id);
  ASSERT_NE(cold, nullptr);
  EXPECT_EQ(cold->tier, EntryTier::kSpilled);
  ASSERT_FALSE(cold->spill_file.empty());
  EXPECT_TRUE(std::filesystem::exists(cold->spill_file));

  std::shared_ptr<const CacheEntry> hot = store->FindHot(id);
  ASSERT_NE(hot, nullptr);
  EXPECT_EQ(hot->tier, EntryTier::kHot);
  EXPECT_EQ(sql::TableToXml(hot->result), hot_xml);
  EXPECT_EQ(store->spill_faults(), 1u);
  EXPECT_EQ(store->spilled_entries(), 0u);
  EXPECT_EQ(store->spill_bytes_used(), 0u);
  // The fault-back reclaimed the file.
  EXPECT_FALSE(std::filesystem::exists(cold->spill_file));
}

TEST(StorageTierTest, SpillBudgetStopsSpilling) {
  const std::string dir = SpillDir("budget");
  TierConfig config;
  config.freeze_idle_micros = 10 * kSecond;
  config.spill_idle_micros = 30 * kSecond;
  config.spill_dir = dir;
  config.spill_max_bytes = 1;  // Nothing fits.
  auto store = MakeStore(config);

  uint64_t id = store->Insert(MakeEntry(0, 80));
  ASSERT_NE(id, 0u);
  EXPECT_EQ(store->SweepColdEntries(15 * kSecond).frozen, 1u);
  EXPECT_EQ(store->SweepColdEntries(60 * kSecond).spilled, 0u);
  EXPECT_EQ(store->spilled_entries(), 0u);
  std::shared_ptr<const CacheEntry> cold = store->Find(id);
  ASSERT_NE(cold, nullptr);
  EXPECT_EQ(cold->tier, EntryTier::kFrozen);
}

TEST(StorageTierTest, CorruptSpillFileBecomesCountedMiss) {
  const std::string dir = SpillDir("corrupt");
  TierConfig config;
  config.freeze_idle_micros = 10 * kSecond;
  config.spill_idle_micros = 30 * kSecond;
  config.spill_dir = dir;
  auto store = MakeStore(config);

  uint64_t id = store->Insert(MakeEntry(0, 40));
  ASSERT_NE(id, 0u);
  store->SweepColdEntries(15 * kSecond);
  ASSERT_EQ(store->SweepColdEntries(60 * kSecond).spilled, 1u);
  std::shared_ptr<const CacheEntry> cold = store->Find(id);
  ASSERT_NE(cold, nullptr);
  {
    std::ofstream out(cold->spill_file,
                      std::ios::binary | std::ios::trunc);
    out << "garbage, not a snapshot container";
  }

  // Promotion must fail safe: null result, entry dropped, error counted —
  // the caller treats it as a miss and refetches from the origin.
  EXPECT_EQ(store->FindHot(id), nullptr);
  EXPECT_EQ(store->spill_io_errors(), 1u);
  EXPECT_EQ(store->Find(id), nullptr);
  EXPECT_EQ(store->num_entries(), 0u);
}

TEST(StorageTierTest, LostSpillFileBecomesCountedMiss) {
  const std::string dir = SpillDir("lost");
  TierConfig config;
  config.freeze_idle_micros = 10 * kSecond;
  config.spill_idle_micros = 30 * kSecond;
  config.spill_dir = dir;
  auto store = MakeStore(config);

  uint64_t id = store->Insert(MakeEntry(0, 40));
  ASSERT_NE(id, 0u);
  store->SweepColdEntries(15 * kSecond);
  ASSERT_EQ(store->SweepColdEntries(60 * kSecond).spilled, 1u);
  std::shared_ptr<const CacheEntry> cold = store->Find(id);
  ASSERT_NE(cold, nullptr);
  ASSERT_TRUE(std::filesystem::remove(cold->spill_file));

  EXPECT_EQ(store->FindHot(id), nullptr);
  EXPECT_EQ(store->spill_io_errors(), 1u);
  EXPECT_EQ(store->num_entries(), 0u);
}

// The TSan soak shape: readers promoting entries while a maintenance thread
// sweeps them cold again, over a store small enough that every entry keeps
// changing tier. Every successful lookup must return the full table.
TEST(StorageTierTest, ConcurrentPromotionRacesSweep) {
  const std::string dir = SpillDir("race");
  TierConfig config;
  config.freeze_idle_micros = 1;  // Everything is always idle.
  config.spill_idle_micros = 2;
  config.spill_dir = dir;
  auto store = std::make_unique<CacheStore>(
      [] { return std::make_unique<index::ArrayRegionIndex>(); },
      /*num_shards=*/4, /*max_bytes=*/0, ReplacementPolicy::kLru);
  store->set_tier_config(config);

  constexpr size_t kEntries = 16;
  constexpr size_t kRows = 30;
  std::vector<uint64_t> ids;
  for (size_t i = 0; i < kEntries; ++i) {
    size_t comparisons = 0;
    uint64_t id =
        store->Insert(MakeEntry(static_cast<double>(i) * 10, kRows),
                      &comparisons);
    ASSERT_NE(id, 0u);
    ids.push_back(id);
  }
  const std::string want_xml =
      sql::TableToXml(sql::ColumnarTable(MakeResult(kRows)));

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> promotions{0};
  std::thread sweeper([&] {
    int64_t now = 10;
    while (!stop.load(std::memory_order_relaxed)) {
      store->SweepColdEntries(now);
      now += 10;
    }
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      for (int iter = 0; iter < 200; ++iter) {
        uint64_t id = ids[(iter * 7 + t) % ids.size()];
        std::shared_ptr<const CacheEntry> hot = store->FindHot(id);
        ASSERT_NE(hot, nullptr);
        ASSERT_EQ(hot->tier, EntryTier::kHot);
        ASSERT_EQ(hot->result.num_rows(), kRows);
        ASSERT_EQ(sql::TableToXml(hot->result), want_xml);
        promotions.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& reader : readers) reader.join();
  stop.store(true, std::memory_order_relaxed);
  sweeper.join();

  EXPECT_EQ(promotions.load(), 4u * 200u);
  EXPECT_EQ(store->spill_io_errors(), 0u);
  EXPECT_EQ(store->num_entries(), kEntries);
  for (uint64_t id : ids) {
    std::shared_ptr<const CacheEntry> hot = store->FindHot(id);
    ASSERT_NE(hot, nullptr);
    EXPECT_EQ(sql::TableToXml(hot->result), want_xml);
  }
}

}  // namespace
}  // namespace fnproxy::core
