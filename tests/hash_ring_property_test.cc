// Property suite for the consistent-hash ring behind the cooperative tier:
// key distribution stays balanced across 2..8 nodes at 128 vnodes/node, and
// membership changes obey the minimal-remapping invariant — adding or
// removing one node only moves the keys that node gains or loses, roughly
// 1/N of the key space, while every other key keeps its owner.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "core/hash_ring.h"
#include "geometry/celestial.h"
#include "geometry/hypersphere.h"

namespace fnproxy {
namespace {

using core::HashRing;

constexpr size_t kSampleKeys = 100000;
constexpr size_t kVnodes = 128;

std::string SampleKey(size_t i) {
  return "radial|fp" + std::to_string(i % 7) + "|key-" + std::to_string(i);
}

std::string NodeId(size_t i) { return "proxy-" + std::to_string(i); }

std::map<std::string, size_t> OwnedCounts(const HashRing& ring) {
  std::map<std::string, size_t> counts;
  for (const std::string& node : ring.nodes()) counts[node] = 0;
  for (size_t i = 0; i < kSampleKeys; ++i) {
    const std::string* owner = ring.Owner(SampleKey(i));
    if (owner == nullptr) {
      ADD_FAILURE() << "ring with nodes must own every key";
      continue;
    }
    ++counts[*owner];
  }
  return counts;
}

TEST(HashRingProperty, EmptyRingOwnsNothing) {
  HashRing ring(kVnodes);
  EXPECT_EQ(ring.Owner("anything"), nullptr);
  EXPECT_EQ(ring.num_nodes(), 0u);
}

TEST(HashRingProperty, SingleNodeOwnsEverything) {
  HashRing ring(kVnodes);
  ring.AddNode("proxy-0");
  for (size_t i = 0; i < 1000; ++i) {
    ASSERT_EQ(*ring.Owner(SampleKey(i)), "proxy-0");
  }
}

// With 128 vnodes per node the owned shares stay within a modest factor of
// each other for every tier size the bench sweeps. The classic analysis
// bounds max/mean by O(log N / vnodes); empirically at 128 vnodes the
// max/min ratio sits well under 2, so 2.5 leaves deterministic headroom
// without letting real skew through.
TEST(HashRingProperty, BalancedDistributionAcrossTierSizes) {
  for (size_t n = 2; n <= 8; ++n) {
    HashRing ring(kVnodes);
    for (size_t i = 0; i < n; ++i) ring.AddNode(NodeId(i));
    std::map<std::string, size_t> counts;
    for (const auto& [node, count] : OwnedCounts(ring)) counts[node] = count;
    ASSERT_EQ(counts.size(), n);
    size_t min_owned = kSampleKeys, max_owned = 0;
    for (const auto& [node, count] : counts) {
      EXPECT_GT(count, 0u) << node << " owns nothing at n=" << n;
      min_owned = std::min(min_owned, count);
      max_owned = std::max(max_owned, count);
    }
    EXPECT_LT(static_cast<double>(max_owned),
              2.5 * static_cast<double>(min_owned))
        << "tier of " << n << ": max=" << max_owned << " min=" << min_owned;
    // Every node's share is within [0.4x, 2x] of the fair share.
    const double fair = static_cast<double>(kSampleKeys) / n;
    for (const auto& [node, count] : counts) {
      EXPECT_GT(static_cast<double>(count), 0.4 * fair) << node << " n=" << n;
      EXPECT_LT(static_cast<double>(count), 2.0 * fair) << node << " n=" << n;
    }
  }
}

// Adding one node moves exactly the keys the new node now owns — every key
// that changed owner changed TO the new node, and the moved fraction is
// about 1/(N+1) of the key space.
TEST(HashRingProperty, AddingNodeMovesOnlyItsShare) {
  for (size_t n = 2; n <= 8; ++n) {
    HashRing ring(kVnodes);
    for (size_t i = 0; i < n; ++i) ring.AddNode(NodeId(i));
    std::vector<std::string> before(kSampleKeys);
    for (size_t i = 0; i < kSampleKeys; ++i) {
      before[i] = *ring.Owner(SampleKey(i));
    }
    const std::string added = NodeId(n);
    ring.AddNode(added);
    size_t moved = 0;
    for (size_t i = 0; i < kSampleKeys; ++i) {
      const std::string& after = *ring.Owner(SampleKey(i));
      if (after != before[i]) {
        ++moved;
        ASSERT_EQ(after, added)
            << "key " << i << " moved between pre-existing nodes at n=" << n;
      }
    }
    const double expected = static_cast<double>(kSampleKeys) / (n + 1);
    EXPECT_GT(static_cast<double>(moved), 0.5 * expected) << "n=" << n;
    EXPECT_LT(static_cast<double>(moved), 2.0 * expected) << "n=" << n;
  }
}

// Removing one node moves exactly the keys it owned; everything else stays.
TEST(HashRingProperty, RemovingNodeMovesOnlyItsKeys) {
  for (size_t n = 3; n <= 8; ++n) {
    HashRing ring(kVnodes);
    for (size_t i = 0; i < n; ++i) ring.AddNode(NodeId(i));
    std::vector<std::string> before(kSampleKeys);
    for (size_t i = 0; i < kSampleKeys; ++i) {
      before[i] = *ring.Owner(SampleKey(i));
    }
    const std::string removed = NodeId(n / 2);
    ring.RemoveNode(removed);
    EXPECT_FALSE(ring.HasNode(removed));
    for (size_t i = 0; i < kSampleKeys; ++i) {
      const std::string& after = *ring.Owner(SampleKey(i));
      if (before[i] == removed) {
        ASSERT_NE(after, removed);
      } else {
        ASSERT_EQ(after, before[i])
            << "key " << i << " moved although its owner survived, n=" << n;
      }
    }
  }
}

// Round trip: removing the node just added restores every assignment.
TEST(HashRingProperty, AddThenRemoveRestoresOwnership) {
  HashRing ring(kVnodes);
  for (size_t i = 0; i < 4; ++i) ring.AddNode(NodeId(i));
  std::vector<std::string> before(kSampleKeys);
  for (size_t i = 0; i < kSampleKeys; ++i) {
    before[i] = *ring.Owner(SampleKey(i));
  }
  ring.AddNode(NodeId(4));
  ring.RemoveNode(NodeId(4));
  for (size_t i = 0; i < kSampleKeys; ++i) {
    ASSERT_EQ(*ring.Owner(SampleKey(i)), before[i]);
  }
}

TEST(HashRingProperty, OwnershipKeyQuantizesConcentricRegions) {
  geometry::Hypersphere big =
      geometry::ConeToHypersphere(180.0, 10.0, /*radius_arcmin=*/30.0);
  geometry::Hypersphere small =
      geometry::ConeToHypersphere(180.0, 10.0, /*radius_arcmin=*/5.0);
  geometry::Hypersphere far =
      geometry::ConeToHypersphere(90.0, -30.0, /*radius_arcmin=*/30.0);
  const std::string key_big = core::RegionOwnershipKey("radial", "fp", big,
                                                       /*cell_size=*/0.05);
  const std::string key_small = core::RegionOwnershipKey("radial", "fp", small,
                                                         /*cell_size=*/0.05);
  const std::string key_far = core::RegionOwnershipKey("radial", "fp", far,
                                                       /*cell_size=*/0.05);
  // Same center: a contained concentric variant shares its container's
  // owner, so a peer lookup lands where the covering entry was pushed.
  EXPECT_EQ(key_big, key_small);
  EXPECT_NE(key_big, key_far);
  // The non-spatial fingerprint partitions the key space.
  EXPECT_NE(key_big,
            core::RegionOwnershipKey("radial", "fp2", big, 0.05));
  EXPECT_NE(key_big, core::RegionOwnershipKey("rect", "fp", big, 0.05));
}

}  // namespace
}  // namespace fnproxy
