// The system's central correctness property (paper §3.2): whatever the
// caching scheme, cache size, or description structure, the proxy must
// return exactly the tuples the origin site would return — active caching is
// an optimization, never an approximation.
//
// These tests replay generated traces (with the full exact/containment/
// region-containment/overlap mix) through a proxy pipeline and compare every
// response against a direct origin execution.

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "catalog/sky_catalog.h"
#include "core/proxy.h"
#include "net/network.h"
#include "server/sky_functions.h"
#include "server/web_app.h"
#include "sql/table_xml.h"
#include "workload/experiment.h"
#include "workload/rbe.h"
#include "workload/trace_generator.h"

namespace fnproxy {
namespace {

using core::CachingMode;

std::multiset<std::string> RowSet(const sql::Table& table) {
  std::multiset<std::string> rows;
  for (const auto& row : table.rows()) {
    std::string key;
    for (const sql::Value& v : row) {
      key += v.ToSqlLiteral();
      key += '|';
    }
    rows.insert(std::move(key));
  }
  return rows;
}

struct TransparencyParam {
  CachingMode mode;
  bool rtree;
  size_t max_cache_bytes;  // 0 = unlimited.
  bool origin_sql_enabled;
};

class TransparencyTest : public ::testing::TestWithParam<TransparencyParam> {
 protected:
  static void SetUpTestSuite() {
    catalog::SkyCatalogConfig config;
    config.num_objects = 25000;
    config.num_clusters = 8;
    config.seed = 2024;
    config.ra_min = 170.0;
    config.ra_max = 210.0;
    config.dec_min = 20.0;
    config.dec_max = 50.0;
    std::vector<std::pair<double, double>> clusters;
    db_ = new server::Database();
    db_->AddTable("PhotoPrimary",
                  catalog::GenerateSkyCatalog(config, &clusters));
    grid_ = new server::SkyGrid(db_->FindTable("PhotoPrimary"));
    db_->RegisterTableFunction(server::MakeGetNearbyObjEq(grid_));
    db_->scalar_functions()->Register(
        "fPhotoFlags",
        [](const std::vector<sql::Value>& args)
            -> util::StatusOr<sql::Value> {
          FNPROXY_ASSIGN_OR_RETURN(
              int64_t bit, catalog::PhotoFlagValue(args.at(0).AsString()));
          return sql::Value::Int(bit);
        });

    templates_ = new core::TemplateRegistry();
    ASSERT_TRUE(
        templates_
            ->RegisterFunctionTemplateXml(workload::kNearbyObjEqTemplateXml)
            .ok());
    auto qt = core::QueryTemplate::Create("radial", "/radial",
                                          workload::kRadialTemplateSql);
    ASSERT_TRUE(qt.ok());
    ASSERT_TRUE(templates_->RegisterQueryTemplate(std::move(*qt)).ok());

    workload::RadialTraceConfig trace_config;
    trace_config.num_queries = 220;
    trace_config.seed = 31337;
    trace_config.ra_min = 172.0;
    trace_config.ra_max = 208.0;
    trace_config.dec_min = 22.0;
    trace_config.dec_max = 48.0;
    for (const auto& c : clusters) trace_config.hotspot_centers.push_back(c);
    trace_ = new workload::Trace(workload::GenerateRadialTrace(trace_config));
  }
  static void TearDownTestSuite() {
    delete trace_;
    delete templates_;
    delete grid_;
    delete db_;
    trace_ = nullptr;
    templates_ = nullptr;
    grid_ = nullptr;
    db_ = nullptr;
  }

  static server::Database* db_;
  static server::SkyGrid* grid_;
  static core::TemplateRegistry* templates_;
  static workload::Trace* trace_;
};

server::Database* TransparencyTest::db_ = nullptr;
server::SkyGrid* TransparencyTest::grid_ = nullptr;
core::TemplateRegistry* TransparencyTest::templates_ = nullptr;
workload::Trace* TransparencyTest::trace_ = nullptr;

TEST_P(TransparencyTest, ProxyResultsEqualOriginResults) {
  const TransparencyParam& param = GetParam();

  util::SimulatedClock clock;
  server::OriginWebApp origin(db_, &clock);
  ASSERT_TRUE(origin.RegisterForm("/radial", workload::kRadialTemplateSql).ok());
  origin.set_sql_endpoint_enabled(param.origin_sql_enabled);
  net::SimulatedChannel wan(&origin, net::LinkConfig{0.0, 1e9}, &clock);

  core::ProxyConfig config;
  config.mode = param.mode;
  config.use_rtree_description = param.rtree;
  config.max_cache_bytes = param.max_cache_bytes;
  core::FunctionProxy proxy(config, templates_, &wan, &clock);

  // The reference origin runs on its own clock so statistics don't mix.
  util::SimulatedClock reference_clock;
  server::OriginWebApp reference(db_, &reference_clock);
  ASSERT_TRUE(
      reference.RegisterForm("/radial", workload::kRadialTemplateSql).ok());

  size_t nonempty = 0;
  for (size_t i = 0; i < trace_->queries.size(); ++i) {
    net::HttpRequest request = MakeRequest(*trace_, trace_->queries[i]);
    net::HttpResponse via_proxy = proxy.Handle(request);
    net::HttpResponse direct = reference.Handle(request);
    ASSERT_TRUE(via_proxy.ok()) << "query " << i << ": " << via_proxy.body;
    ASSERT_TRUE(direct.ok());
    auto proxy_table = sql::TableFromXml(via_proxy.body);
    auto direct_table = sql::TableFromXml(direct.body);
    ASSERT_TRUE(proxy_table.ok());
    ASSERT_TRUE(direct_table.ok());
    if (direct_table->num_rows() > 0) ++nonempty;
    ASSERT_EQ(RowSet(*proxy_table), RowSet(*direct_table))
        << "divergence at query " << i << " (" << request.ToUrl() << "), "
        << "status "
        << geometry::RegionRelationName(proxy.stats().records.back().status);
  }
  // The trace must actually exercise data-carrying queries.
  EXPECT_GT(nonempty, trace_->queries.size() / 2);

  // And the cache must have been genuinely active for caching modes.
  if (param.mode != CachingMode::kNoCache &&
      param.mode != CachingMode::kPassive) {
    EXPECT_GT(proxy.stats().exact_hits + proxy.stats().containment_hits, 20u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigurations, TransparencyTest,
    ::testing::Values(
        TransparencyParam{CachingMode::kNoCache, false, 0, true},
        TransparencyParam{CachingMode::kPassive, false, 0, true},
        TransparencyParam{CachingMode::kActiveContainmentOnly, false, 0, true},
        TransparencyParam{CachingMode::kActiveRegionContainment, false, 0, true},
        TransparencyParam{CachingMode::kActiveFull, false, 0, true},
        TransparencyParam{CachingMode::kActiveFull, true, 0, true},
        TransparencyParam{CachingMode::kActiveRegionContainment, true, 0, true},
        TransparencyParam{CachingMode::kActiveFull, false, 256 * 1024, true},
        TransparencyParam{CachingMode::kActiveFull, false, 0, false},
        TransparencyParam{CachingMode::kActiveRegionContainment, false, 0,
                          false}),
    [](const ::testing::TestParamInfo<TransparencyParam>& info) {
      std::string name = core::CachingModeName(info.param.mode);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      if (info.param.rtree) name += "_rtree";
      if (info.param.max_cache_bytes != 0) name += "_limited";
      if (!info.param.origin_sql_enabled) name += "_nosql";
      return name;
    });

}  // namespace
}  // namespace fnproxy
