#include <gtest/gtest.h>

#include "sql/eval.h"
#include "sql/parser.h"
#include "sql/printer.h"

namespace fnproxy::sql {
namespace {

class EvalTest : public ::testing::Test {
 protected:
  EvalTest()
      : registry_(ScalarFunctionRegistry::WithBuiltins()),
        evaluator_(&registry_),
        schema_({{"a", ValueType::kInt},
                 {"b", ValueType::kDouble},
                 {"s", ValueType::kString},
                 {"n", ValueType::kNull},
                 {"flags", ValueType::kInt}}),
        row_({Value::Int(7), Value::Double(2.5), Value::String("hi"),
              Value::Null(), Value::Int(0x42)}) {
    binding_.AddSource("t", &schema_, &row_);
  }

  Value Eval(std::string_view text) {
    auto expr = ParseExpression(text);
    EXPECT_TRUE(expr.ok()) << expr.status().ToString();
    auto value = evaluator_.Eval(**expr, binding_);
    EXPECT_TRUE(value.ok()) << value.status().ToString() << " for " << text;
    return std::move(value).value();
  }

  bool Pred(std::string_view text) {
    auto expr = ParseExpression(text);
    EXPECT_TRUE(expr.ok()) << expr.status().ToString();
    auto value = evaluator_.EvalPredicate(**expr, binding_);
    EXPECT_TRUE(value.ok()) << value.status().ToString() << " for " << text;
    return *value;
  }

  util::Status EvalError(std::string_view text) {
    auto expr = ParseExpression(text);
    EXPECT_TRUE(expr.ok());
    return evaluator_.Eval(**expr, binding_).status();
  }

  ScalarFunctionRegistry registry_;
  ExprEvaluator evaluator_;
  Schema schema_;
  Row row_;
  RowBinding binding_;
};

TEST_F(EvalTest, ValueSemantics) {
  EXPECT_TRUE(Value::Int(3).EqualsValue(Value::Double(3.0)));
  EXPECT_FALSE(Value::Null().EqualsValue(Value::Null()));
  EXPECT_EQ(*Value::Int(2).Compare(Value::Double(2.5)), -1);
  EXPECT_EQ(*Value::String("a").Compare(Value::String("b")), -1);
  EXPECT_FALSE(Value::String("a").Compare(Value::Int(1)).ok());
  EXPECT_EQ(Value::String("o'x").ToSqlLiteral(), "'o''x'");
  EXPECT_EQ(Value::Null().ToSqlLiteral(), "NULL");
}

TEST_F(EvalTest, ParseValueFromText) {
  EXPECT_EQ(ParseValueFromText("42").type(), ValueType::kInt);
  EXPECT_EQ(ParseValueFromText("42.5").type(), ValueType::kDouble);
  EXPECT_EQ(ParseValueFromText("hello").type(), ValueType::kString);
}

TEST_F(EvalTest, Arithmetic) {
  EXPECT_EQ(Eval("1 + 2").AsInt(), 3);
  EXPECT_DOUBLE_EQ(Eval("1 + 2.5").AsDouble(), 3.5);
  EXPECT_EQ(Eval("7 % 3").AsInt(), 1);
  EXPECT_DOUBLE_EQ(Eval("7 / 2").AsDouble(), 3.5);
  EXPECT_EQ(Eval("-a").AsInt(), -7);
  EXPECT_DOUBLE_EQ(Eval("a * b").AsDouble(), 17.5);
}

TEST_F(EvalTest, DivisionByZeroIsError) {
  EXPECT_FALSE(EvalError("1 / 0").ok());
  EXPECT_FALSE(EvalError("1 % 0").ok());
}

TEST_F(EvalTest, Comparisons) {
  EXPECT_TRUE(Eval("a = 7").AsBool());
  EXPECT_TRUE(Eval("a <> 8").AsBool());
  EXPECT_TRUE(Eval("b <= 2.5").AsBool());
  EXPECT_TRUE(Eval("s = 'hi'").AsBool());
  EXPECT_FALSE(Eval("s = 'HI'").AsBool());
}

TEST_F(EvalTest, NullPropagation) {
  EXPECT_TRUE(Eval("n + 1").is_null());
  EXPECT_TRUE(Eval("n = n").is_null());
  EXPECT_FALSE(Pred("n = 0"));          // Unknown treated as not satisfied.
  EXPECT_TRUE(Pred("n IS NULL"));
  EXPECT_FALSE(Pred("a IS NULL"));
  EXPECT_TRUE(Pred("a IS NOT NULL"));
}

TEST_F(EvalTest, LogicalOperators) {
  EXPECT_TRUE(Pred("a = 7 AND b = 2.5"));
  EXPECT_FALSE(Pred("a = 7 AND b = 9"));
  EXPECT_TRUE(Pred("a = 0 OR b = 2.5"));
  EXPECT_TRUE(Pred("NOT a = 0"));
}

TEST_F(EvalTest, ShortCircuit) {
  // RHS would error (division by zero) but is never evaluated.
  EXPECT_FALSE(Pred("a = 0 AND 1 / 0 = 1"));
  EXPECT_TRUE(Pred("a = 7 OR 1 / 0 = 1"));
}

TEST_F(EvalTest, BetweenInList) {
  EXPECT_TRUE(Pred("a BETWEEN 5 AND 10"));
  EXPECT_FALSE(Pred("a BETWEEN 8 AND 10"));
  EXPECT_TRUE(Pred("a NOT BETWEEN 8 AND 10"));
  EXPECT_TRUE(Pred("a IN (1, 7, 9)"));
  EXPECT_TRUE(Pred("a NOT IN (1, 2)"));
  EXPECT_TRUE(Pred("s IN ('hi', 'there')"));
}

TEST_F(EvalTest, BitwiseFlags) {
  EXPECT_EQ(Eval("flags & 2").AsInt(), 2);
  EXPECT_EQ(Eval("flags | 1").AsInt(), 0x43);
  EXPECT_TRUE(Pred("(flags & 64) <> 0"));
  EXPECT_FALSE(EvalError("b & 1").ok());  // Bitwise needs integers.
}

TEST_F(EvalTest, ScalarFunctions) {
  EXPECT_DOUBLE_EQ(Eval("ABS(-3)").AsDouble(), 3.0);
  EXPECT_DOUBLE_EQ(Eval("SQRT(16)").AsDouble(), 4.0);
  EXPECT_DOUBLE_EQ(Eval("POWER(2, 10)").AsDouble(), 1024.0);
  EXPECT_NEAR(Eval("COS(RADIANS(60))").AsDouble(), 0.5, 1e-12);
  EXPECT_NEAR(Eval("DEGREES(RADIANS(45))").AsDouble(), 45.0, 1e-12);
  EXPECT_FALSE(EvalError("NoSuchFn(1)").ok());
  EXPECT_FALSE(EvalError("ABS(1, 2)").ok());
}

TEST_F(EvalTest, CustomFunctionRegistration) {
  registry_.Register("twice", [](const std::vector<Value>& args)
                                  -> util::StatusOr<Value> {
    FNPROXY_ASSIGN_OR_RETURN(double x, args.at(0).ToNumeric());
    return Value::Double(2 * x);
  });
  EXPECT_DOUBLE_EQ(Eval("TWICE(21)").AsDouble(), 42.0);  // Case-insensitive.
}

TEST_F(EvalTest, ColumnResolution) {
  EXPECT_EQ(Eval("t.a").AsInt(), 7);
  EXPECT_EQ(Eval("a").AsInt(), 7);
  EXPECT_FALSE(EvalError("t.zzz").ok());
  EXPECT_FALSE(EvalError("u.a").ok());
  EXPECT_FALSE(EvalError("zzz").ok());
}

TEST_F(EvalTest, AmbiguousUnqualifiedColumn) {
  Schema other({{"a", ValueType::kInt}});
  Row other_row = {Value::Int(1)};
  binding_.AddSource("u", &other, &other_row);
  EXPECT_FALSE(EvalError("a").ok());  // Ambiguous across t and u.
  EXPECT_EQ(Eval("u.a").AsInt(), 1);
}

TEST_F(EvalTest, UnboundParameterIsError) {
  EXPECT_FALSE(EvalError("$ra + 1").ok());
}

TEST_F(EvalTest, SubstituteParametersInExpr) {
  auto expr = ParseExpression("$x + a * $y");
  ASSERT_TRUE(expr.ok());
  std::map<std::string, Value> params = {{"x", Value::Int(10)},
                                         {"y", Value::Int(2)}};
  auto bound = SubstituteParameters(**expr, params);
  ASSERT_TRUE(bound.ok());
  auto value = evaluator_.Eval(**bound, binding_);
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value->AsInt(), 24);
}

TEST_F(EvalTest, SubstituteMissingParameterFails) {
  auto expr = ParseExpression("$x + 1");
  ASSERT_TRUE(expr.ok());
  EXPECT_FALSE(SubstituteParameters(**expr, {}).ok());
}

TEST_F(EvalTest, SubstituteParametersInStatement) {
  auto stmt = ParseSelect(
      "SELECT TOP 3 a FROM f($p, 2) AS n JOIN T AS t ON n.id = t.id "
      "WHERE a < $q ORDER BY a");
  ASSERT_TRUE(stmt.ok());
  std::map<std::string, Value> params = {{"p", Value::Double(1.5)},
                                         {"q", Value::Int(9)}};
  auto bound = SubstituteParameters(*stmt, params);
  ASSERT_TRUE(bound.ok());
  EXPECT_FALSE(bound->HasParameters());
  std::string printed = SelectToSql(*bound);
  EXPECT_EQ(printed.find('$'), std::string::npos);
  EXPECT_NE(printed.find("1.5"), std::string::npos);
}

TEST_F(EvalTest, SchemaLookupIsCaseInsensitive) {
  EXPECT_EQ(*schema_.FindColumn("A"), 0u);
  EXPECT_EQ(*schema_.FindColumn("FLAGS"), 4u);
  EXPECT_FALSE(schema_.FindColumn("nope").has_value());
}

TEST_F(EvalTest, TableByteSizeGrowsWithRows) {
  Table table(schema_);
  size_t empty = table.ByteSize();
  table.AddRow(row_);
  EXPECT_GT(table.ByteSize(), empty);
  auto v = table.GetValue(0, "s");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsString(), "hi");
  EXPECT_FALSE(table.GetValue(0, "zzz").ok());
}

}  // namespace
}  // namespace fnproxy::sql
