#include "workload/rbe.h"

namespace fnproxy::workload {

double RbeResult::AverageResponseMillis(size_t first_n) const {
  size_t count = response_micros.size();
  if (first_n != 0 && first_n < count) count = first_n;
  if (count == 0) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < count; ++i) {
    sum += static_cast<double>(response_micros[i]);
  }
  return sum / static_cast<double>(count) / 1000.0;
}

net::HttpRequest MakeRequest(const Trace& trace, const TraceQuery& query) {
  net::HttpRequest request;
  request.path = trace.form_path;
  request.query_params = query.params;
  return request;
}

RbeResult RemoteBrowserEmulator::Run(const Trace& trace) {
  RbeResult result;
  result.response_micros.reserve(trace.queries.size());
  for (const TraceQuery& query : trace.queries) {
    int64_t start = clock_->NowMicros();
    net::HttpResponse response = channel_->RoundTrip(MakeRequest(trace, query));
    result.response_micros.push_back(clock_->NowMicros() - start);
    if (!response.ok()) ++result.errors;
  }
  return result;
}

}  // namespace fnproxy::workload
