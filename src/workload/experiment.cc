#include "workload/experiment.h"

#include <set>

#include "catalog/sky_catalog.h"
#include "util/logging.h"

namespace fnproxy::workload {

const char kRadialTemplateSql[] =
    "SELECT p.objID, p.ra, p.dec, p.cx, p.cy, p.cz, p.u, p.g, p.r, p.i, p.z "
    "FROM fGetNearbyObjEq($ra, $dec, $radius) AS n "
    "JOIN PhotoPrimary AS p ON n.objID = p.objID "
    "WHERE (p.flags & fPhotoFlags('SATURATED')) = 0";

const char kNearbyObjEqTemplateXml[] = R"(<FunctionTemplate>
  <Name>fGetNearbyObjEq</Name>
  <Params><P>$ra</P><P>$dec</P><P>$radius</P></Params>
  <Shape>hypersphere</Shape>
  <NumDimensions>3</NumDimensions>
  <CenterCoordinate>
    <C>cos(radians($ra))*cos(radians($dec))</C>
    <C>sin(radians($ra))*cos(radians($dec))</C>
    <C>sin(radians($dec))</C>
  </CenterCoordinate>
  <Radius>2*sin(radians($radius/60.0)/2)</Radius>
  <CoordinateColumns><C>cx</C><C>cy</C><C>cz</C></CoordinateColumns>
</FunctionTemplate>)";

const char kRectTemplateSql[] =
    "SELECT p.objID, p.ra, p.dec, p.cx, p.cy, p.cz, p.r "
    "FROM fGetObjFromRect($ra_min, $ra_max, $dec_min, $dec_max) AS n "
    "JOIN PhotoPrimary AS p ON n.objID = p.objID";

const char kObjFromRectTemplateXml[] = R"(<FunctionTemplate>
  <Name>fGetObjFromRect</Name>
  <Params><P>$ra_min</P><P>$ra_max</P><P>$dec_min</P><P>$dec_max</P></Params>
  <Shape>hyperrectangle</Shape>
  <NumDimensions>2</NumDimensions>
  <Lo><C>$ra_min</C><C>$dec_min</C></Lo>
  <Hi><C>$ra_max</C><C>$dec_max</C></Hi>
  <CoordinateColumns><C>ra</C><C>dec</C></CoordinateColumns>
</FunctionTemplate>)";

namespace {

void Check(const util::Status& status, const char* what) {
  if (!status.ok()) {
    FNPROXY_LOG(kError) << what << ": " << status.ToString();
    std::abort();
  }
}

/// Registers origin-side serving counters into the proxy's registry so one
/// /metrics scrape covers the whole pipeline (the web app keeps the atomics;
/// callbacks read them at render time).
void RegisterOriginMetrics(core::FunctionProxy* proxy,
                           server::OriginWebApp* app) {
  obs::MetricsRegistry& registry = proxy->metrics();
  registry.AddCallback(
      "fnproxy_origin_queries_served_total",
      "Queries the origin web app answered, by endpoint kind",
      /*is_counter=*/true, {{"endpoint", "form"}},
      [app] { return static_cast<double>(app->form_queries_served()); });
  registry.AddCallback(
      "fnproxy_origin_queries_served_total",
      "Queries the origin web app answered, by endpoint kind",
      /*is_counter=*/true, {{"endpoint", "sql"}},
      [app] { return static_cast<double>(app->sql_queries_served()); });
  registry.AddCallback(
      "fnproxy_origin_processing_micros_total",
      "Virtual time the origin spent executing queries",
      /*is_counter=*/true, {},
      [app] { return static_cast<double>(app->total_processing_micros()); });
}

}  // namespace

SkyExperiment::SkyExperiment(Options options) : options_(std::move(options)) {
  // Catalog and origin database.
  std::vector<std::pair<double, double>> clusters;
  sql::Table photo = catalog::GenerateSkyCatalog(options_.catalog, &clusters);
  db_.AddTable("PhotoPrimary", std::move(photo));
  const sql::Table* stored = db_.FindTable("PhotoPrimary");
  grid_ = std::make_unique<server::SkyGrid>(stored);
  db_.RegisterTableFunction(server::MakeGetNearbyObjEq(grid_.get()));
  db_.RegisterTableFunction(server::MakeGetObjFromRect(grid_.get()));
  db_.RegisterTableFunction(server::MakeGetObjInTriangle(grid_.get()));
  db_.scalar_functions()->Register(
      "fPhotoFlags",
      [](const std::vector<sql::Value>& args)
          -> util::StatusOr<sql::Value> {
        if (args.size() != 1 ||
            args[0].type() != sql::ValueType::kString) {
          return util::Status::InvalidArgument(
              "fPhotoFlags expects one flag-name string");
        }
        FNPROXY_ASSIGN_OR_RETURN(int64_t bit,
                                 catalog::PhotoFlagValue(args[0].AsString()));
        return sql::Value::Int(bit);
      });

  // Templates shared by all proxy runs.
  Check(templates_.RegisterFunctionTemplateXml(kNearbyObjEqTemplateXml),
        "register fGetNearbyObjEq template");
  auto qt = core::QueryTemplate::Create("radial", "/radial", kRadialTemplateSql);
  Check(qt.status(), "parse radial query template");
  Check(templates_.RegisterQueryTemplate(std::move(*qt)),
        "register radial query template");
  Check(templates_.RegisterFunctionTemplateXml(kObjFromRectTemplateXml),
        "register fGetObjFromRect template");
  auto rect_qt = core::QueryTemplate::Create("rect", "/rect", kRectTemplateSql);
  Check(rect_qt.status(), "parse rect query template");
  Check(templates_.RegisterQueryTemplate(std::move(*rect_qt)),
        "register rect query template");

  // Trace hotspots follow the catalog's clusters (drop centers outside the
  // trace footprint).
  RadialTraceConfig trace_config = options_.trace;
  for (const auto& [ra, dec] : clusters) {
    if (ra >= trace_config.ra_min && ra <= trace_config.ra_max &&
        dec >= trace_config.dec_min && dec <= trace_config.dec_max) {
      trace_config.hotspot_centers.emplace_back(ra, dec);
    }
  }
  trace_ = GenerateRadialTrace(trace_config);
}

size_t SkyExperiment::TotalDistinctResultBytes() {
  if (total_bytes_computed_) return total_distinct_bytes_;
  util::SimulatedClock scratch_clock;
  server::OriginWebApp app(&db_, &scratch_clock, options_.server_costs);
  Check(app.RegisterForm("/radial", kRadialTemplateSql), "register /radial");
  std::set<std::string> seen;
  size_t total = 0;
  for (const TraceQuery& query : trace_.queries) {
    std::string key = net::BuildQueryString(query.params);
    if (!seen.insert(key).second) continue;
    net::HttpResponse response = app.Handle(MakeRequest(trace_, query));
    if (response.ok()) total += response.body.size();
  }
  total_distinct_bytes_ = total;
  total_bytes_computed_ = true;
  return total;
}

SkyExperiment::RunResult SkyExperiment::Run(
    const core::ProxyConfig& proxy_config) {
  return RunTrace(trace_, proxy_config);
}

SkyExperiment::RunResult SkyExperiment::RunTrace(
    const Trace& trace, const core::ProxyConfig& proxy_config) {
  util::SimulatedClock clock;
  server::OriginWebApp app(&db_, &clock, options_.server_costs);
  Check(app.RegisterForm("/radial", kRadialTemplateSql), "register /radial");
  Check(app.RegisterForm("/rect", kRectTemplateSql), "register /rect");
  net::SimulatedChannel wan_channel(&app, options_.wan, &clock);
  core::FunctionProxy proxy(proxy_config, &templates_, &wan_channel, &clock);
  RegisterOriginMetrics(&proxy, &app);
  net::SimulatedChannel lan_channel(&proxy, options_.lan, &clock);
  RemoteBrowserEmulator rbe(&lan_channel, &clock);

  RunResult result;
  result.rbe = rbe.Run(trace);
  result.proxy_stats = proxy.stats();
  result.origin_requests = wan_channel.total_requests();
  result.origin_bytes_received = wan_channel.total_bytes_received();
  result.cache_entries_final = proxy.cache().num_entries();
  result.cache_bytes_final = proxy.cache().bytes_used();
  result.phases = obs::PhaseBreakdownFromRegistry(
      proxy.metrics(), "fnproxy_phase_duration_micros");
  return result;
}

SkyExperiment::ConcurrentRunOutput SkyExperiment::RunTraceConcurrent(
    const Trace& trace, const core::ProxyConfig& proxy_config,
    size_t num_threads, double real_time_scale) {
  util::SimulatedClock clock;
  clock.set_real_time_scale(real_time_scale);
  server::OriginWebApp app(&db_, &clock, options_.server_costs);
  Check(app.RegisterForm("/radial", kRadialTemplateSql), "register /radial");
  Check(app.RegisterForm("/rect", kRectTemplateSql), "register /rect");
  net::SimulatedChannel wan_channel(&app, options_.wan, &clock);
  core::FunctionProxy proxy(proxy_config, &templates_, &wan_channel, &clock);
  RegisterOriginMetrics(&proxy, &app);
  net::SimulatedChannel lan_channel(&proxy, options_.lan, &clock);
  ConcurrentDriver driver(&lan_channel, &clock);
  driver.set_latency_histogram(proxy.metrics().AddHistogram(
      "fnproxy_client_latency_micros",
      "Client-observed wall-clock latency per request"));

  ConcurrentRunOutput result;
  result.driver = driver.Replay(trace, num_threads);
  result.proxy_stats = proxy.stats();
  result.origin_requests = wan_channel.total_requests();
  result.origin_bytes_received = wan_channel.total_bytes_received();
  result.cache_entries_final = proxy.cache().num_entries();
  result.cache_bytes_final = proxy.cache().bytes_used();
  result.phases = obs::PhaseBreakdownFromRegistry(
      proxy.metrics(), "fnproxy_phase_duration_micros");
  return result;
}

}  // namespace fnproxy::workload
