#ifndef FNPROXY_WORKLOAD_TRACE_H_
#define FNPROXY_WORKLOAD_TRACE_H_

#include <map>
#include <string>
#include <vector>

#include "geometry/region.h"
#include "util/status.h"

namespace fnproxy::workload {

/// One form request of a query trace.
struct TraceQuery {
  /// Form parameters, already formatted as the browser would submit them.
  std::map<std::string, std::string> params;
  /// The relationship the generator intended this query to have to the set
  /// of all earlier queries (ground truth for an unlimited cache).
  geometry::RegionRelation intended = geometry::RegionRelation::kDisjoint;
};

/// A replayable query trace against one search form.
struct Trace {
  std::string form_path;
  std::vector<TraceQuery> queries;

  /// Fraction of queries with the given intended relationship.
  double IntendedFraction(geometry::RegionRelation relation) const;

  /// Serializes to a simple line-oriented text format
  /// ("<relation>\t<k=v>&<k=v>..." per line, first line the form path).
  std::string Serialize() const;
  static util::StatusOr<Trace> Deserialize(std::string_view text);
};

}  // namespace fnproxy::workload

#endif  // FNPROXY_WORKLOAD_TRACE_H_
