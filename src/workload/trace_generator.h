#ifndef FNPROXY_WORKLOAD_TRACE_GENERATOR_H_
#define FNPROXY_WORKLOAD_TRACE_GENERATOR_H_

#include <cstdint>

#include "workload/trace.h"

namespace fnproxy::workload {

/// Configuration of the synthetic Radial-form trace, calibrated to the
/// SkyServer trace the paper replays (§4.1): 11,323 queries of which ~17%
/// are exact repeats of earlier queries, ~34% are contained in an earlier
/// query, and ~9% overlap one; the rest explore new sky (disjoint).
/// Queries concentrate on Zipf-popular hotspots, as real users' do.
struct RadialTraceConfig {
  size_t num_queries = 11323;
  double exact_fraction = 0.17;
  double containment_fraction = 0.34;
  /// Partial overlaps plus region containments together make the paper's
  /// "about 9% of the queries overlap" (region containment is "a special
  /// case in query overlapping", §3.2).
  double overlap_fraction = 0.06;
  /// Zoom-out queries that strictly contain an earlier query's region.
  double region_containment_fraction = 0.03;

  size_t num_hotspots = 80;
  double hotspot_zipf_theta = 0.8;
  /// Spread of fresh query centers around their hotspot, degrees.
  double hotspot_sigma_deg = 0.8;
  /// When non-empty, these positions are used as hotspots instead of random
  /// ones (the experiment harness passes the catalog's cluster centers).
  std::vector<std::pair<double, double>> hotspot_centers;

  double radius_min_arcmin = 4.0;
  double radius_max_arcmin = 30.0;

  /// Sky footprint; keep inside the catalog's so queries hit data.
  double ra_min = 125.0;
  double ra_max = 245.0;
  double dec_min = 0.0;
  double dec_max = 60.0;

  uint64_t seed = 2004;
};

/// Generates a Radial trace with parameters ra (deg), dec (deg), radius
/// (arcmin). Every emitted query's intended relationship is verified
/// against the actual cone geometry of the prior queries' regions it was
/// derived from, so the labels are sound for an unlimited cache.
Trace GenerateRadialTrace(const RadialTraceConfig& config);

/// Configuration for a rectangular (fGetObjFromRect) trace; same
/// relationship-mix machinery over 2-D ra/dec boxes.
struct RectTraceConfig {
  size_t num_queries = 2000;
  double exact_fraction = 0.17;
  double containment_fraction = 0.34;
  double overlap_fraction = 0.09;
  size_t num_hotspots = 40;
  double hotspot_zipf_theta = 0.8;
  double hotspot_sigma_deg = 0.8;
  double width_min_deg = 0.1;
  double width_max_deg = 0.8;
  double ra_min = 125.0;
  double ra_max = 245.0;
  double dec_min = 0.0;
  double dec_max = 60.0;
  uint64_t seed = 2005;
};

/// Generates a rectangle trace with parameters ra_min, ra_max, dec_min,
/// dec_max (degrees).
Trace GenerateRectTrace(const RectTraceConfig& config);

/// Flash-crowd variant of the Radial trace: a normal background mix, except
/// that inside a burst window most queries slam one hotspot cone — exact
/// repeats plus same-center shrunken variants (every variant's region is
/// contained in the hot cone, so a semantic cache needs exactly one origin
/// fetch to serve the whole crowd). This is the overload workload for the
/// single-flight / admission-control experiments: without collapsing, every
/// concurrent miss on the hot cone turns into its own origin round trip.
struct FlashCrowdTraceConfig {
  /// Background traffic (also sets footprint, seed does not apply).
  RadialTraceConfig base;
  /// Burst window as fractions of the trace, [start, end).
  double burst_start_fraction = 0.25;
  double burst_end_fraction = 0.85;
  /// Probability a burst-window query targets the hot cone.
  double burst_hot_fraction = 0.85;
  /// Of the hot queries, the fraction that are shrunken (contained)
  /// variants rather than exact repeats.
  double hot_subsumed_fraction = 0.30;
  /// The hot cone itself. Center defaults inside the standard footprint.
  double hot_ra = 185.0;
  double hot_dec = 30.0;
  double hot_radius_arcmin = 20.0;
  uint64_t seed = 2026;
};

/// Generates the flash-crowd trace. Hot-query labels are relative to the
/// hot cone: the first hot query is kDisjoint (first touch), later exact
/// repeats are kEqual and shrunken variants kContainedBy (verified with
/// geometry::Contains against the hot cone).
Trace GenerateFlashCrowdTrace(const FlashCrowdTraceConfig& config);

}  // namespace fnproxy::workload

#endif  // FNPROXY_WORKLOAD_TRACE_GENERATOR_H_
