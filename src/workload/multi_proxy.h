#ifndef FNPROXY_WORKLOAD_MULTI_PROXY_H_
#define FNPROXY_WORKLOAD_MULTI_PROXY_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/hash_ring.h"
#include "core/proxy.h"
#include "core/template_registry.h"
#include "net/fault.h"
#include "net/http.h"
#include "net/network.h"
#include "net/peer_channel.h"
#include "obs/metrics.h"
#include "util/clock.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "workload/concurrent_driver.h"
#include "workload/experiment.h"
#include "workload/trace.h"

namespace fnproxy::workload {

/// Topology knobs for a cooperative proxy tier.
struct ProxyTierOptions {
  size_t num_proxies = 4;
  /// Per-proxy configuration (every proxy gets a copy).
  core::ProxyConfig proxy;
  /// Each proxy's own link to the shared origin (the expensive hop).
  net::LinkConfig origin_link;
  /// Sibling-to-sibling link: same machine room, ~two orders of magnitude
  /// cheaper than the WAN — the whole point of probing a peer first.
  net::LinkConfig peer_link;
  /// Retry schedule on every peer channel (default: no retries — a failed
  /// probe falls back to the origin instead of waiting on a sick sibling).
  net::RetryPolicy peer_retry;
  /// Per-peer circuit breaker configuration (enabled by default).
  net::CircuitBreakerConfig peer_breaker;
  size_t ring_vnodes = 128;
  /// Closed worker pool per proxy: at most this many router requests are in
  /// service on one proxy at a time (0 = unlimited). Models the finite
  /// capacity of a single proxy box — the thing a tier multiplies — so the
  /// throughput bench sees real scaling instead of a free infinite server.
  /// Sibling /peer/* traffic bypasses the pool (a worker blocked on a full
  /// sibling must not be able to deadlock the tier).
  size_t proxy_workers = 0;
  /// Scripted faults on a proxy's *inbound* peer traffic, keyed by proxy
  /// index: every sibling probing that proxy goes through the injector
  /// (the prober's breaker sees the faults; the target stays healthy for
  /// its own clients). Used by the peer-outage fault tests.
  std::map<size_t, net::FaultProfile> peer_faults;

  ProxyTierOptions() : origin_link(net::WanLink()) {
    peer_link.latency_ms = 0.3;
    peer_link.bandwidth_kbps = 200000.0;
    peer_breaker.enabled = true;
  }
};

/// A cooperative tier of FunctionProxy instances behind a round-robin
/// router. Construction wires the whole topology: per-proxy origin channels
/// to the shared origin handler, the consistent-hash ring ("proxy-0" ..
/// "proxy-N-1"), and a breaker-guarded PeerChannel for every ordered sibling
/// pair (optionally through a FaultInjector on the target's inbound side).
///
/// The tier itself is an HttpHandler: Handle() dispatches each request to
/// the next proxy round-robin, so an unmodified ConcurrentDriver (or a LAN
/// SimulatedChannel) drives N proxies exactly like one.
class ProxyTier final : public net::HttpHandler {
 public:
  /// `templates`, `origin` and `clock` must outlive the tier.
  ProxyTier(const ProxyTierOptions& options,
            const core::TemplateRegistry* templates, net::HttpHandler* origin,
            util::SimulatedClock* clock);

  net::HttpResponse Handle(const net::HttpRequest& request) override;

  size_t num_proxies() const { return proxies_.size(); }
  core::FunctionProxy& proxy(size_t i) { return *proxies_[i]; }
  const core::FunctionProxy& proxy(size_t i) const { return *proxies_[i]; }
  const core::HashRing& ring() const { return ring_; }
  /// The channel proxy `from` uses to probe proxy `to` (from != to).
  net::PeerChannel& peer_channel(size_t from, size_t to) {
    return *peer_channels_[from * proxies_.size() + to];
  }
  /// Fault injector on proxy `i`'s inbound peer traffic (null when no
  /// profile was configured for it).
  net::FaultInjector* peer_fault_injector(size_t i) {
    return peer_inbound_faults_[i].get();
  }
  /// Proxy `i`'s private channel to the origin.
  net::SimulatedChannel& origin_channel(size_t i) {
    return *origin_channels_[i];
  }
  /// Wire requests the tier sent to the origin, across all proxies.
  uint64_t origin_requests_total() const;

  /// Field-wise sum of every proxy's statistics (records concatenated in
  /// proxy order) — the tier-wide view the invariant tests check.
  core::ProxyStats AggregateStats() const;

  static std::string NodeId(size_t index);

 private:
  ProxyTierOptions options_;
  core::HashRing ring_;
  std::vector<std::unique_ptr<net::SimulatedChannel>> origin_channels_;
  std::vector<std::unique_ptr<core::FunctionProxy>> proxies_;
  /// Inbound-side fault injectors, indexed by target proxy (may be null).
  std::vector<std::unique_ptr<net::FaultInjector>> peer_inbound_faults_;
  /// Dense N×N matrices indexed [from * N + to]; diagonal entries are null.
  std::vector<std::unique_ptr<net::SimulatedChannel>> peer_links_;
  std::vector<std::unique_ptr<net::PeerChannel>> peer_channels_;
  std::atomic<uint64_t> next_proxy_{0};

  /// Counting semaphore for the per-proxy worker pool (wall-clock).
  struct WorkerPool {
    util::Mutex mu;
    std::condition_variable_any cv;
    size_t free GUARDED_BY(mu) = 0;
  };
  std::vector<std::unique_ptr<WorkerPool>> worker_pools_;
};

/// Per-run knobs for RunTraceTier.
struct TierRunOptions {
  size_t num_threads = 8;
  /// See SkyExperiment::RunTraceConcurrent.
  double real_time_scale = 0.0;
  int64_t deadline_budget_micros = 0;
  /// Calibration replays keep the client-latency histogram silent (see
  /// ConcurrentDriver::set_calibration).
  bool calibration = false;
};

/// What one tier replay measured.
struct TierRunOutput {
  ConcurrentRunResult driver;
  core::ProxyStats aggregate;
  std::vector<core::ProxyStats> per_proxy;
  /// Queries the origin web app actually executed, by endpoint.
  uint64_t origin_form_queries = 0;
  uint64_t origin_sql_queries = 0;
  /// Wire requests on the tier's origin channels (each retry counts).
  uint64_t origin_requests = 0;
  size_t cache_entries_final = 0;
  /// Tier-wide per-phase breakdown: counts and totals are summed across
  /// proxies; the percentile columns carry the *worst* per-proxy value
  /// (histograms cannot be merged exactly, and the conservative bound is
  /// the right side to gate on).
  std::vector<obs::PhaseBreakdown> phases;
};

/// Replays `trace` through a fresh ProxyTier wired to `sky`'s catalog and
/// templates: origin web app → per-proxy origin channels → tier router →
/// one LAN channel → ConcurrentDriver. The single-proxy twin of
/// SkyExperiment::RunTraceConcurrent, for 1..N proxies.
TierRunOutput RunTraceTier(SkyExperiment& sky, const Trace& trace,
                           const ProxyTierOptions& options,
                           const TierRunOptions& run);

}  // namespace fnproxy::workload

#endif  // FNPROXY_WORKLOAD_MULTI_PROXY_H_
