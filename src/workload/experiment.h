#ifndef FNPROXY_WORKLOAD_EXPERIMENT_H_
#define FNPROXY_WORKLOAD_EXPERIMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/sky_catalog.h"
#include "core/proxy.h"
#include "core/template_registry.h"
#include "net/network.h"
#include "obs/metrics.h"
#include "server/cost_model.h"
#include "server/database.h"
#include "server/sky_functions.h"
#include "server/web_app.h"
#include "workload/concurrent_driver.h"
#include "workload/rbe.h"
#include "workload/trace.h"
#include "workload/trace_generator.h"

namespace fnproxy::workload {

/// The Radial query template the experiments register at both ends: the
/// origin site's /radial form and the proxy's template registry use the
/// same SQL (paper Fig. 2, with a photo-flags filter as the
/// "other_predicates").
extern const char kRadialTemplateSql[];

/// Function template XML for fGetNearbyObjEq (paper Fig. 3 plus coordinate
/// columns).
extern const char kNearbyObjEqTemplateXml[];

/// The rectangular-search template pair for fGetObjFromRect.
extern const char kRectTemplateSql[];
extern const char kObjFromRectTemplateXml[];

/// One fully wired sky experiment: synthetic catalog, origin site, trace,
/// and shared templates. Each `Run` builds a fresh proxy/clock pipeline
/// (RBE → LAN → proxy → WAN → origin) and replays the trace.
class SkyExperiment {
 public:
  struct Options {
    catalog::SkyCatalogConfig catalog;
    RadialTraceConfig trace;
    server::ServerCostModel server_costs;
    net::LinkConfig lan;
    net::LinkConfig wan;

    Options()
        : lan(net::LanLink()), wan(net::WanLink()) {
      // Moderate defaults so a full Figure-5 sweep stays laptop-friendly.
      catalog.num_objects = 300000;
      catalog.num_clusters = 40;
      catalog.cluster_fraction = 0.75;
      catalog.ra_min = 130.0;
      catalog.ra_max = 230.0;
      catalog.dec_min = 0.0;
      catalog.dec_max = 60.0;
      trace.ra_min = 132.0;
      trace.ra_max = 228.0;
      trace.dec_min = 2.0;
      trace.dec_max = 58.0;
    }
  };

  explicit SkyExperiment(Options options);

  const Trace& trace() const { return trace_; }
  const core::TemplateRegistry& templates() const { return templates_; }
  server::Database* database() { return &db_; }
  const Options& options() const { return options_; }

  /// Total XML bytes of the results of the trace's *distinct* queries — the
  /// paper's "total result size of the query trace" against which cache-size
  /// fractions are set (§4.2). Computed once on first use (no clock
  /// involved).
  size_t TotalDistinctResultBytes();

  struct RunResult {
    RbeResult rbe;
    core::ProxyStats proxy_stats;
    uint64_t origin_requests = 0;
    uint64_t origin_bytes_received = 0;
    size_t cache_entries_final = 0;
    size_t cache_bytes_final = 0;
    /// Per-phase latency breakdown (count/total/p50/p95/p99 in virtual µs)
    /// from the proxy's fnproxy_phase_duration_micros histograms.
    std::vector<obs::PhaseBreakdown> phases;
  };

  /// Replays the built-in Radial trace through a fresh proxy.
  RunResult Run(const core::ProxyConfig& proxy_config);

  /// Replays an arbitrary trace (e.g. a rect trace from GenerateRectTrace or
  /// a file) through a fresh proxy pipeline. The origin registers both the
  /// /radial and /rect forms, so either workload can be driven.
  RunResult RunTrace(const Trace& trace, const core::ProxyConfig& proxy_config);

  struct ConcurrentRunOutput {
    ConcurrentRunResult driver;
    core::ProxyStats proxy_stats;
    uint64_t origin_requests = 0;
    uint64_t origin_bytes_received = 0;
    size_t cache_entries_final = 0;
    size_t cache_bytes_final = 0;
    /// Per-phase latency breakdown, as in RunResult::phases.
    std::vector<obs::PhaseBreakdown> phases;
  };

  /// Replays a trace through a fresh proxy pipeline from `num_threads`
  /// closed-loop workers sharing one proxy (see ConcurrentDriver). With
  /// num_threads == 1 this issues the same requests as RunTrace, in order.
  /// `real_time_scale` > 0 paces the shared clock (every modeled
  /// microsecond also sleeps `scale` real microseconds) so modeled waits
  /// overlap across threads in wall-clock — the basis of the
  /// throughput-vs-threads measurement on any host (see SimulatedClock).
  ConcurrentRunOutput RunTraceConcurrent(const Trace& trace,
                                         const core::ProxyConfig& proxy_config,
                                         size_t num_threads,
                                         double real_time_scale = 0.0);

 private:
  Options options_;
  sql::Table* photo_primary_ = nullptr;  // Owned by db_.
  std::unique_ptr<server::SkyGrid> grid_;
  server::Database db_;
  core::TemplateRegistry templates_;
  Trace trace_;
  size_t total_distinct_bytes_ = 0;
  bool total_bytes_computed_ = false;
};

}  // namespace fnproxy::workload

#endif  // FNPROXY_WORKLOAD_EXPERIMENT_H_
