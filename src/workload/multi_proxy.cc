#include "workload/multi_proxy.h"

#include <algorithm>
#include <utility>

#include "server/web_app.h"
#include "util/logging.h"

namespace fnproxy::workload {

std::string ProxyTier::NodeId(size_t index) {
  return "proxy-" + std::to_string(index);
}

ProxyTier::ProxyTier(const ProxyTierOptions& options,
                     const core::TemplateRegistry* templates,
                     net::HttpHandler* origin, util::SimulatedClock* clock)
    : options_(options), ring_(options.ring_vnodes) {
  const size_t n = options_.num_proxies == 0 ? 1 : options_.num_proxies;
  for (size_t i = 0; i < n; ++i) {
    ring_.AddNode(NodeId(i));
  }
  // Proxies first: every proxy owns a private channel to the shared origin
  // handler, so per-proxy breaker state and retry accounting stay isolated.
  for (size_t i = 0; i < n; ++i) {
    origin_channels_.push_back(std::make_unique<net::SimulatedChannel>(
        origin, options_.origin_link, clock));
    proxies_.push_back(std::make_unique<core::FunctionProxy>(
        options_.proxy, templates, origin_channels_.back().get(), clock));
  }
  // Inbound fault layer: a sibling probing proxy `i` goes through the
  // injector, while proxy `i`'s own clients (the router) bypass it.
  peer_inbound_faults_.resize(n);
  for (const auto& [target, profile] : options_.peer_faults) {
    if (target < n) {
      peer_inbound_faults_[target] = std::make_unique<net::FaultInjector>(
          proxies_[target].get(), profile, clock);
    }
  }
  // One channel + breaker per ordered pair, so "A distrusts B" is
  // independent of "B distrusts A".
  peer_links_.resize(n * n);
  peer_channels_.resize(n * n);
  for (size_t from = 0; from < n; ++from) {
    for (size_t to = 0; to < n; ++to) {
      if (from == to) continue;
      net::HttpHandler* inbound =
          peer_inbound_faults_[to] != nullptr
              ? static_cast<net::HttpHandler*>(peer_inbound_faults_[to].get())
              : proxies_[to].get();
      auto link = std::make_unique<net::SimulatedChannel>(
          inbound, options_.peer_link, clock);
      link->set_retry_policy(options_.peer_retry);
      peer_channels_[from * n + to] = std::make_unique<net::PeerChannel>(
          NodeId(to), link.get(), options_.peer_breaker, clock);
      peer_links_[from * n + to] = std::move(link);
    }
  }
  if (options_.proxy_workers > 0) {
    worker_pools_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      auto pool = std::make_unique<WorkerPool>();
      {
        util::MutexLock lock(pool->mu);
        pool->free = options_.proxy_workers;
      }
      worker_pools_.push_back(std::move(pool));
    }
  }
  for (size_t from = 0; from < n; ++from) {
    core::PeerGroup group;
    group.self_id = NodeId(from);
    group.ring = &ring_;
    for (size_t to = 0; to < n; ++to) {
      if (from == to) continue;
      group.peers[NodeId(to)] = peer_channels_[from * n + to].get();
    }
    proxies_[from]->set_peer_group(std::move(group));
  }
}

net::HttpResponse ProxyTier::Handle(const net::HttpRequest& request) {
  const uint64_t turn =
      next_proxy_.fetch_add(1, std::memory_order_relaxed);
  const size_t index = turn % proxies_.size();
  if (worker_pools_.empty()) return proxies_[index]->Handle(request);
  // Finite worker pool: wait for a free slot on this proxy. Only router
  // traffic is gated; a worker probing a sibling enters it directly, so a
  // full tier cannot deadlock on its own peer lookups.
  WorkerPool& pool = *worker_pools_[index];
  {
    util::MutexLock lock(pool.mu);
    // Explicit wait loop so the thread-safety analysis sees `free` read
    // with the pool mutex held.
    while (pool.free == 0) {
      pool.cv.wait(lock);
    }
    --pool.free;
  }
  net::HttpResponse response = proxies_[index]->Handle(request);
  {
    util::MutexLock lock(pool.mu);
    ++pool.free;
  }
  pool.cv.notify_one();
  return response;
}

uint64_t ProxyTier::origin_requests_total() const {
  uint64_t total = 0;
  for (const auto& channel : origin_channels_) {
    total += channel->total_requests();
  }
  return total;
}

core::ProxyStats ProxyTier::AggregateStats() const {
  core::ProxyStats sum;
  for (const auto& proxy : proxies_) {
    core::ProxyStats s = proxy->stats();
    sum.requests += s.requests;
    sum.template_requests += s.template_requests;
    sum.exact_hits += s.exact_hits;
    sum.containment_hits += s.containment_hits;
    sum.region_containments += s.region_containments;
    sum.overlaps_handled += s.overlaps_handled;
    sum.misses += s.misses;
    sum.origin_form_requests += s.origin_form_requests;
    sum.origin_sql_requests += s.origin_sql_requests;
    sum.origin_failures += s.origin_failures;
    sum.origin_retries += s.origin_retries;
    sum.breaker_open_rejections += s.breaker_open_rejections;
    sum.breaker_transitions += s.breaker_transitions;
    sum.degraded_full += s.degraded_full;
    sum.degraded_partial += s.degraded_partial;
    sum.degraded_unavailable += s.degraded_unavailable;
    sum.collapsed += s.collapsed;
    sum.shed += s.shed;
    sum.deadline_exceeded += s.deadline_exceeded;
    sum.peer_lookups += s.peer_lookups;
    sum.peer_hits += s.peer_hits;
    sum.peer_failures += s.peer_failures;
    sum.coverage_served += s.coverage_served;
    sum.check_micros += s.check_micros;
    sum.local_eval_micros += s.local_eval_micros;
    sum.merge_micros += s.merge_micros;
    sum.records.insert(sum.records.end(), s.records.begin(), s.records.end());
  }
  return sum;
}

namespace {

void Check(const util::Status& status, const char* what) {
  if (!status.ok()) {
    FNPROXY_LOG(kError) << what << ": " << status.ToString();
    std::abort();
  }
}

}  // namespace

TierRunOutput RunTraceTier(SkyExperiment& sky, const Trace& trace,
                           const ProxyTierOptions& options,
                           const TierRunOptions& run) {
  util::SimulatedClock clock;
  clock.set_real_time_scale(run.real_time_scale);
  server::OriginWebApp app(sky.database(), &clock,
                           sky.options().server_costs);
  Check(app.RegisterForm("/radial", kRadialTemplateSql), "register /radial");
  Check(app.RegisterForm("/rect", kRectTemplateSql), "register /rect");
  ProxyTier tier(options, &sky.templates(), &app, &clock);
  net::SimulatedChannel lan_channel(&tier, sky.options().lan, &clock);
  ConcurrentDriver driver(&lan_channel, &clock);
  driver.set_calibration(run.calibration);
  driver.set_latency_histogram(tier.proxy(0).metrics().AddHistogram(
      "fnproxy_client_latency_micros",
      "Client-observed wall-clock latency per request"));

  TierRunOutput output;
  output.driver =
      driver.Replay(trace, run.num_threads, run.deadline_budget_micros);
  for (size_t i = 0; i < tier.num_proxies(); ++i) {
    output.per_proxy.push_back(tier.proxy(i).stats());
    output.cache_entries_final += tier.proxy(i).cache().num_entries();
  }
  output.aggregate = tier.AggregateStats();
  output.origin_form_queries = app.form_queries_served();
  output.origin_sql_queries = app.sql_queries_served();
  output.origin_requests = tier.origin_requests_total();

  // Tier-wide phase view: sum counts/totals, keep the worst per-proxy
  // percentile (conservative — see TierRunOutput::phases).
  std::vector<obs::PhaseBreakdown> merged;
  for (size_t i = 0; i < tier.num_proxies(); ++i) {
    for (const obs::PhaseBreakdown& phase : obs::PhaseBreakdownFromRegistry(
             tier.proxy(i).metrics(), "fnproxy_phase_duration_micros")) {
      auto it = std::find_if(
          merged.begin(), merged.end(),
          [&](const obs::PhaseBreakdown& m) { return m.phase == phase.phase; });
      if (it == merged.end()) {
        merged.push_back(phase);
        continue;
      }
      it->count += phase.count;
      it->total_micros += phase.total_micros;
      it->p50_micros = std::max(it->p50_micros, phase.p50_micros);
      it->p95_micros = std::max(it->p95_micros, phase.p95_micros);
      it->p99_micros = std::max(it->p99_micros, phase.p99_micros);
    }
  }
  output.phases = std::move(merged);
  return output;
}

}  // namespace fnproxy::workload
