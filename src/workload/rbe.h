#ifndef FNPROXY_WORKLOAD_RBE_H_
#define FNPROXY_WORKLOAD_RBE_H_

#include <cstdint>
#include <vector>

#include "net/network.h"
#include "util/clock.h"
#include "util/status.h"
#include "workload/trace.h"

namespace fnproxy::workload {

/// Per-trace timing collected at the browser emulator.
struct RbeResult {
  std::vector<int64_t> response_micros;
  uint64_t errors = 0;

  /// Mean response time in milliseconds over the first `first_n` queries
  /// (0 = all). The paper's Figure 5 reports the first 10,000.
  double AverageResponseMillis(size_t first_n = 0) const;
};

/// The Remote Browser Emulator (paper §4.1): replays a trace through a
/// channel (usually browser→proxy) and measures each query's response time
/// on the shared virtual clock.
class RemoteBrowserEmulator {
 public:
  /// `channel` and `clock` must outlive the emulator.
  RemoteBrowserEmulator(net::SimulatedChannel* channel,
                        util::SimulatedClock* clock)
      : channel_(channel), clock_(clock) {}

  RbeResult Run(const Trace& trace);

 private:
  net::SimulatedChannel* channel_;
  util::SimulatedClock* clock_;
};

/// Builds the form request for one trace query.
net::HttpRequest MakeRequest(const Trace& trace, const TraceQuery& query);

}  // namespace fnproxy::workload

#endif  // FNPROXY_WORKLOAD_RBE_H_
