#include "workload/concurrent_driver.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "workload/rbe.h"

namespace fnproxy::workload {

namespace {

/// Nearest-rank percentile over a sorted sample (p in [0, 100]).
int64_t Percentile(const std::vector<int64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  double rank = p / 100.0 * static_cast<double>(sorted.size());
  size_t index = static_cast<size_t>(rank);
  if (index >= sorted.size()) index = sorted.size() - 1;
  return sorted[index];
}

}  // namespace

ConcurrentRunResult ConcurrentDriver::Replay(const Trace& trace,
                                             size_t num_threads) {
  return Replay(trace, num_threads, /*deadline_budget_micros=*/0);
}

ConcurrentRunResult ConcurrentDriver::Replay(const Trace& trace,
                                             size_t num_threads,
                                             int64_t deadline_budget_micros) {
  if (num_threads == 0) num_threads = 1;
  ConcurrentRunResult result;
  result.num_threads = num_threads;
  result.requests = trace.queries.size();

  std::atomic<size_t> next_query{0};
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> shed{0};
  std::atomic<uint64_t> partials{0};
  std::vector<std::vector<int64_t>> per_thread_latencies(num_threads);

  const int64_t virtual_start =
      clock_ != nullptr ? clock_->NowMicros() : 0;
  util::Stopwatch wall;

  std::vector<std::thread> workers;
  workers.reserve(num_threads);
  for (size_t t = 0; t < num_threads; ++t) {
    workers.emplace_back([this, &trace, &next_query, &errors, &shed,
                          &partials, deadline_budget_micros,
                          &per_thread_latencies, t] {
      std::vector<int64_t>& latencies = per_thread_latencies[t];
      for (;;) {
        size_t i = next_query.fetch_add(1, std::memory_order_relaxed);
        if (i >= trace.queries.size()) break;
        net::HttpRequest request = MakeRequest(trace, trace.queries[i]);
        if (deadline_budget_micros > 0) {
          request.headers[net::kDeadlineBudgetHeader] =
              std::to_string(deadline_budget_micros);
        }
        util::Stopwatch stopwatch;
        net::HttpResponse response = channel_->RoundTrip(request);
        int64_t elapsed = stopwatch.ElapsedMicros();
        latencies.push_back(elapsed);
        if (latency_histogram_ != nullptr && !calibration_) {
          latency_histogram_->Observe(elapsed);
        }
        if (!response.ok()) {
          errors.fetch_add(1, std::memory_order_relaxed);
          if (response.status_code == 503) {
            shed.fetch_add(1, std::memory_order_relaxed);
          }
        } else if (response.body.find("partial=\"true\"") !=
                   std::string::npos) {
          partials.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  result.wall_millis = static_cast<double>(wall.ElapsedMicros()) / 1000.0;
  result.errors = errors.load();
  result.shed = shed.load();
  result.partials = partials.load();
  result.goodput_requests = result.requests - result.errors;
  if (clock_ != nullptr) {
    result.virtual_micros = clock_->NowMicros() - virtual_start;
  }
  for (const std::vector<int64_t>& latencies : per_thread_latencies) {
    result.latencies_micros.insert(result.latencies_micros.end(),
                                   latencies.begin(), latencies.end());
  }
  if (result.wall_millis > 0.0) {
    result.requests_per_second =
        static_cast<double>(result.latencies_micros.size()) /
        (result.wall_millis / 1000.0);
  }
  std::vector<int64_t> sorted = result.latencies_micros;
  std::sort(sorted.begin(), sorted.end());
  result.p50_micros = Percentile(sorted, 50.0);
  result.p95_micros = Percentile(sorted, 95.0);
  result.p99_micros = Percentile(sorted, 99.0);
  result.max_micros = sorted.empty() ? 0 : sorted.back();
  return result;
}

}  // namespace fnproxy::workload
