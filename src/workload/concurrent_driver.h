#ifndef FNPROXY_WORKLOAD_CONCURRENT_DRIVER_H_
#define FNPROXY_WORKLOAD_CONCURRENT_DRIVER_H_

#include <cstdint>
#include <vector>

#include "net/network.h"
#include "obs/metrics.h"
#include "util/clock.h"
#include "workload/trace.h"

namespace fnproxy::workload {

/// What one concurrent replay measured. Latencies are *wall-clock*
/// (util::Stopwatch): the shared SimulatedClock is a global virtual-time
/// accumulator, so under concurrency it measures total modeled work, not
/// per-request waiting — real elapsed time is the honest latency signal for
/// the threading experiments.
struct ConcurrentRunResult {
  size_t num_threads = 0;
  uint64_t requests = 0;
  uint64_t errors = 0;
  /// Requests answered 503 (admission control / circuit breaker sheds) —
  /// a subset of `errors`.
  uint64_t shed = 0;
  /// Requests answered with a degraded partial result (body marked
  /// partial="true"); these count as successes, not errors.
  uint64_t partials = 0;
  /// Successful full-or-partial answers (requests - errors): the goodput
  /// numerator for the overload experiments.
  uint64_t goodput_requests = 0;
  /// Wall-clock duration of the whole replay (start of first request to
  /// completion of the last) and the derived closed-loop throughput.
  double wall_millis = 0.0;
  double requests_per_second = 0.0;
  /// Wall-clock per-request latency percentiles, in microseconds.
  int64_t p50_micros = 0;
  int64_t p95_micros = 0;
  int64_t p99_micros = 0;
  int64_t max_micros = 0;
  /// Virtual time charged to the shared clock during the replay (total
  /// modeled network/server work across all threads).
  int64_t virtual_micros = 0;
  /// Every per-request wall latency, in completion order per thread
  /// (concatenated thread by thread — not globally ordered).
  std::vector<int64_t> latencies_micros;
};

/// Closed-loop concurrent trace replayer: `num_threads` workers pull the
/// next un-issued query from a shared atomic cursor and drive it through one
/// shared channel (browser → LAN → proxy), so exactly `num_threads` requests
/// are in flight until the trace drains. Each worker records wall-clock
/// latency per request; the merged result reports throughput and tail
/// latency.
class ConcurrentDriver {
 public:
  /// `channel` (and the clock, if given) must outlive the driver. `clock`
  /// may be null; it is only used to report `virtual_micros`.
  explicit ConcurrentDriver(net::SimulatedChannel* channel,
                            util::SimulatedClock* clock = nullptr)
      : channel_(channel), clock_(clock) {}

  /// Replays the trace from `num_threads` workers (at least 1) and blocks
  /// until every query has completed.
  ConcurrentRunResult Replay(const Trace& trace, size_t num_threads);

  /// Same, but every request carries an X-Deadline-Micros budget header
  /// (`deadline_budget_micros` > 0), exercising the proxy's end-to-end
  /// deadline propagation. 0 behaves exactly like the two-arg overload.
  ConcurrentRunResult Replay(const Trace& trace, size_t num_threads,
                             int64_t deadline_budget_micros);

  /// Optional histogram receiving every per-request wall latency as it is
  /// measured (not owned; must outlive Replay). The experiment harness
  /// registers fnproxy_client_latency_micros here so client-observed tail
  /// latency lands in the same registry as the proxy's phase histograms.
  void set_latency_histogram(obs::Histogram* histogram) {
    latency_histogram_ = histogram;
  }

  /// Calibration mode: replays still return their own ConcurrentRunResult
  /// (with per-run percentile arrays), but the latency-histogram hook stays
  /// silent, so warm-up/calibration samples never pollute the measured
  /// distribution behind fnproxy_client_latency_micros. PR 5 excluded
  /// calibration replays from sinks but not from this hook; benches run
  /// their calibration pass with this set and clear it for the measured
  /// pass.
  void set_calibration(bool calibration) { calibration_ = calibration; }
  bool calibration() const { return calibration_; }

 private:
  net::SimulatedChannel* channel_;
  util::SimulatedClock* clock_;
  obs::Histogram* latency_histogram_ = nullptr;
  bool calibration_ = false;
};

}  // namespace fnproxy::workload

#endif  // FNPROXY_WORKLOAD_CONCURRENT_DRIVER_H_
