#include "workload/trace_generator.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "geometry/celestial.h"
#include "geometry/hyperrectangle.h"
#include "geometry/hypersphere.h"
#include "util/random.h"

namespace fnproxy::workload {

using geometry::RegionRelation;

namespace {

std::string FormatFixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

double RoundTo(double value, int decimals) {
  double scale = std::pow(10.0, decimals);
  return std::round(value * scale) / scale;
}

/// A generated cone, kept in rounded form (exactly what the form request
/// will carry) so relationship verification matches what the proxy sees.
struct Cone {
  double ra;
  double dec;
  double radius_arcmin;

  geometry::Hypersphere Sphere() const {
    return geometry::ConeToHypersphere(ra, dec, radius_arcmin);
  }
};

/// Spatial hash over cone centers for fast disjointness checks.
class ConeGrid {
 public:
  explicit ConeGrid(double cell_deg) : cell_deg_(cell_deg) {}

  /// Takes the cone by value: callers may pass references into `cones_`
  /// itself (exact repeats), which the push_back below would invalidate.
  void Add(size_t index, Cone cone) {
    keys_.push_back(Key(cone));
    cones_.push_back(cone);
    grid_[keys_.back()].push_back(index);
  }

  /// Indexes of cones whose center lies within one cell of `cone`'s.
  std::vector<size_t> Nearby(const Cone& cone) const {
    std::vector<size_t> result;
    auto [kx, ky] = Key(cone);
    for (int64_t dx = -1; dx <= 1; ++dx) {
      for (int64_t dy = -1; dy <= 1; ++dy) {
        auto it = grid_.find({kx + dx, ky + dy});
        if (it == grid_.end()) continue;
        result.insert(result.end(), it->second.begin(), it->second.end());
      }
    }
    return result;
  }

  const Cone& cone(size_t index) const { return cones_[index]; }
  size_t size() const { return cones_.size(); }

 private:
  std::pair<int64_t, int64_t> Key(const Cone& cone) const {
    return {static_cast<int64_t>(std::floor(cone.ra / cell_deg_)),
            static_cast<int64_t>(std::floor(cone.dec / cell_deg_))};
  }

  double cell_deg_;
  std::vector<Cone> cones_;
  std::vector<std::pair<int64_t, int64_t>> keys_;
  std::map<std::pair<int64_t, int64_t>, std::vector<size_t>> grid_;
};

}  // namespace

Trace GenerateRadialTrace(const RadialTraceConfig& config) {
  util::Random rng(config.seed);
  util::ZipfDistribution hotspot_pick(config.num_hotspots,
                                      config.hotspot_zipf_theta);

  // Hotspot centers: supplied (catalog cluster centers) or random.
  std::vector<std::pair<double, double>> hotspots = config.hotspot_centers;
  double margin = 1.0;
  while (hotspots.size() < config.num_hotspots) {
    hotspots.emplace_back(
        rng.NextDouble(config.ra_min + margin, config.ra_max - margin),
        rng.NextDouble(config.dec_min + margin, config.dec_max - margin));
  }

  Trace trace;
  trace.form_path = "/radial";
  trace.queries.reserve(config.num_queries);

  // Grid cell must exceed twice the largest cone diameter so a 3x3
  // neighborhood covers every potentially intersecting cone.
  double max_radius_deg = config.radius_max_arcmin / 60.0;
  ConeGrid history(std::max(1.0, 4.0 * max_radius_deg));

  auto emit = [&](Cone cone, RegionRelation intended) {
    TraceQuery query;
    query.params["ra"] = FormatFixed(cone.ra, 4);
    query.params["dec"] = FormatFixed(cone.dec, 4);
    query.params["radius"] = FormatFixed(cone.radius_arcmin, 2);
    query.intended = intended;
    trace.queries.push_back(std::move(query));
    history.Add(history.size(), cone);
  };

  auto fresh_cone = [&]() {
    const auto& [hra, hdec] = hotspots[hotspot_pick.Sample(rng)];
    Cone cone;
    cone.ra = RoundTo(hra + rng.NextGaussian() * config.hotspot_sigma_deg, 4);
    cone.dec = RoundTo(hdec + rng.NextGaussian() * config.hotspot_sigma_deg, 4);
    cone.ra = std::clamp(cone.ra, config.ra_min, config.ra_max);
    cone.dec = std::clamp(cone.dec, config.dec_min, config.dec_max);
    cone.radius_arcmin = RoundTo(
        rng.NextDouble(config.radius_min_arcmin, config.radius_max_arcmin), 2);
    return cone;
  };

  /// Offsets `parent`'s center by `offset_arcmin` in a random direction.
  auto offset_center = [&](const Cone& parent, double offset_arcmin) {
    double angle = rng.NextDouble(0.0, 2.0 * M_PI);
    double offset_deg = offset_arcmin / 60.0;
    double cos_dec =
        std::max(0.2, std::cos(geometry::DegreesToRadians(parent.dec)));
    Cone cone;
    cone.dec = RoundTo(parent.dec + offset_deg * std::sin(angle), 4);
    cone.ra = RoundTo(parent.ra + offset_deg * std::cos(angle) / cos_dec, 4);
    return cone;
  };

  for (size_t n = 0; n < config.num_queries; ++n) {
    double pick = rng.NextDouble();
    bool have_history = history.size() > 0;

    if (have_history && pick < config.exact_fraction) {
      // Exact repeat of a previous query. Repeats are temporally local
      // (reloads, back-button, colleagues sharing a link), so most pick from
      // recent history.
      size_t index;
      if (history.size() > 500 && rng.NextBool(0.7)) {
        index = history.size() - 500 + rng.NextUint64(500);
      } else {
        index = rng.NextUint64(history.size());
      }
      emit(history.cone(index), RegionRelation::kEqual);
      continue;
    }

    if (have_history &&
        pick < config.exact_fraction + config.containment_fraction) {
      // A cone contained in a previous one: shrink the radius and keep the
      // center offset under (parent_r - child_r).
      bool emitted = false;
      for (int attempt = 0; attempt < 12 && !emitted; ++attempt) {
        const Cone& parent = history.cone(rng.NextUint64(history.size()));
        double child_r =
            RoundTo(parent.radius_arcmin * rng.NextDouble(0.35, 0.85), 2);
        if (child_r < 0.5) continue;
        double max_offset = (parent.radius_arcmin - child_r) * 0.85;
        Cone child = offset_center(parent, rng.NextDouble(0.0, max_offset));
        child.radius_arcmin = child_r;
        if (geometry::Contains(parent.Sphere(), child.Sphere()) &&
            !geometry::Equals(parent.Sphere(), child.Sphere())) {
          emit(child, RegionRelation::kContainedBy);
          emitted = true;
        }
      }
      if (emitted) continue;
      emit(fresh_cone(), RegionRelation::kDisjoint);
      continue;
    }

    if (have_history && pick < config.exact_fraction +
                                   config.containment_fraction +
                                   config.region_containment_fraction) {
      // Zoom-out: a cone strictly containing a previous one (the region
      // containment special case).
      bool emitted = false;
      for (int attempt = 0; attempt < 12 && !emitted; ++attempt) {
        const Cone& parent = history.cone(rng.NextUint64(history.size()));
        // Modest zoom-outs: the cached cone covers a sizable share of the
        // new region, so the remainder query has real transfer savings.
        double r2 = RoundTo(parent.radius_arcmin * rng.NextDouble(1.25, 1.8), 2);
        if (r2 > config.radius_max_arcmin * 1.8) continue;
        double max_offset = (r2 - parent.radius_arcmin) * 0.8;
        Cone cone = offset_center(parent, rng.NextDouble(0.0, max_offset));
        cone.radius_arcmin = r2;
        if (geometry::Contains(cone.Sphere(), parent.Sphere()) &&
            !geometry::Equals(cone.Sphere(), parent.Sphere())) {
          emit(cone, RegionRelation::kContains);
          emitted = true;
        }
      }
      if (emitted) continue;
      emit(fresh_cone(), RegionRelation::kDisjoint);
      continue;
    }

    if (have_history && pick < config.exact_fraction +
                                   config.containment_fraction +
                                   config.region_containment_fraction +
                                   config.overlap_fraction) {
      // Partial overlap: center offset strictly between |r1 - r2| and
      // r1 + r2, biased towards thin intersections — users panning a search
      // window mostly step outward, so cache-intersecting queries share only
      // a sliver with the cache (which is why the paper finds handling them
      // may not be worthwhile).
      bool emitted = false;
      for (int attempt = 0; attempt < 12 && !emitted; ++attempt) {
        const Cone& parent = history.cone(rng.NextUint64(history.size()));
        double r2 = RoundTo(
            std::clamp(parent.radius_arcmin * rng.NextDouble(0.6, 1.4),
                       config.radius_min_arcmin, config.radius_max_arcmin),
            2);
        double lo = std::max(std::abs(parent.radius_arcmin - r2) * 1.15 + 0.2,
                             (parent.radius_arcmin + r2) * 0.70);
        double hi = (parent.radius_arcmin + r2) * 0.92;
        if (lo >= hi) continue;
        Cone cone = offset_center(parent, rng.NextDouble(lo, hi));
        cone.radius_arcmin = r2;
        if (geometry::Relate(cone.Sphere(), parent.Sphere()) ==
            RegionRelation::kOverlap) {
          emit(cone, RegionRelation::kOverlap);
          emitted = true;
        }
      }
      if (emitted) continue;
      emit(fresh_cone(), RegionRelation::kDisjoint);
      continue;
    }

    // Fresh query; try to place it disjoint from all prior cones — first at
    // hotspots (users explore near popular sky), then uniformly over the
    // footprint once the hotspots are saturated.
    auto uniform_cone = [&]() {
      Cone cone;
      cone.ra = RoundTo(rng.NextDouble(config.ra_min, config.ra_max), 4);
      cone.dec = RoundTo(rng.NextDouble(config.dec_min, config.dec_max), 4);
      cone.radius_arcmin = RoundTo(
          rng.NextDouble(config.radius_min_arcmin, config.radius_max_arcmin),
          2);
      return cone;
    };
    auto is_disjoint = [&](const Cone& cone) {
      geometry::Hypersphere sphere = cone.Sphere();
      for (size_t idx : history.Nearby(cone)) {
        if (geometry::Intersects(sphere, history.cone(idx).Sphere())) {
          return false;
        }
      }
      return true;
    };
    Cone cone = fresh_cone();
    bool placed = is_disjoint(cone);
    for (int attempt = 0; attempt < 24 && !placed; ++attempt) {
      cone = attempt < 8 ? fresh_cone() : uniform_cone();
      placed = is_disjoint(cone);
    }
    RegionRelation label = RegionRelation::kDisjoint;
    if (!placed) {
      // Dense sky: accept the intersection and label it truthfully.
      geometry::Hypersphere sphere = cone.Sphere();
      for (size_t idx : history.Nearby(cone)) {
        RegionRelation rel =
            geometry::Relate(sphere, history.cone(idx).Sphere());
        if (rel != RegionRelation::kDisjoint) {
          label = rel;
          break;
        }
      }
    }
    emit(cone, label);
  }
  return trace;
}

namespace {

struct Box {
  double ra_min, ra_max, dec_min, dec_max;
  geometry::Hyperrectangle Rect() const {
    return geometry::Hyperrectangle({ra_min, dec_min}, {ra_max, dec_max});
  }
};

}  // namespace

Trace GenerateFlashCrowdTrace(const FlashCrowdTraceConfig& config) {
  Trace trace = GenerateRadialTrace(config.base);
  util::Random rng(config.seed);

  const size_t n = trace.queries.size();
  const size_t burst_start = static_cast<size_t>(
      static_cast<double>(n) * std::clamp(config.burst_start_fraction, 0.0, 1.0));
  const size_t burst_end = static_cast<size_t>(
      static_cast<double>(n) * std::clamp(config.burst_end_fraction, 0.0, 1.0));

  Cone hot;
  hot.ra = RoundTo(config.hot_ra, 4);
  hot.dec = RoundTo(config.hot_dec, 4);
  hot.radius_arcmin = RoundTo(config.hot_radius_arcmin, 2);

  auto hot_query = [&](const Cone& cone, RegionRelation intended) {
    TraceQuery query;
    query.params["ra"] = FormatFixed(cone.ra, 4);
    query.params["dec"] = FormatFixed(cone.dec, 4);
    query.params["radius"] = FormatFixed(cone.radius_arcmin, 2);
    query.intended = intended;
    return query;
  };

  bool hot_seen = false;
  for (size_t i = burst_start; i < burst_end && i < n; ++i) {
    if (!rng.NextBool(config.burst_hot_fraction)) continue;
    if (!hot_seen) {
      // First touch: the query that makes the hot cone cacheable.
      trace.queries[i] = hot_query(hot, RegionRelation::kDisjoint);
      hot_seen = true;
      continue;
    }
    if (rng.NextBool(config.hot_subsumed_fraction)) {
      // Same center, smaller radius: contained in the hot cone by
      // construction (verified anyway so the label stays ground truth).
      Cone child = hot;
      child.radius_arcmin =
          RoundTo(hot.radius_arcmin * rng.NextDouble(0.4, 0.9), 2);
      if (child.radius_arcmin >= 0.5 &&
          geometry::Contains(hot.Sphere(), child.Sphere()) &&
          !geometry::Equals(hot.Sphere(), child.Sphere())) {
        trace.queries[i] = hot_query(child, RegionRelation::kContainedBy);
        continue;
      }
    }
    trace.queries[i] = hot_query(hot, RegionRelation::kEqual);
  }
  return trace;
}

Trace GenerateRectTrace(const RectTraceConfig& config) {
  util::Random rng(config.seed);
  util::ZipfDistribution hotspot_pick(config.num_hotspots,
                                      config.hotspot_zipf_theta);
  std::vector<std::pair<double, double>> hotspots;
  for (size_t i = 0; i < config.num_hotspots; ++i) {
    hotspots.emplace_back(
        rng.NextDouble(config.ra_min + 1, config.ra_max - 1),
        rng.NextDouble(config.dec_min + 1, config.dec_max - 1));
  }

  Trace trace;
  trace.form_path = "/rect";
  trace.queries.reserve(config.num_queries);
  std::vector<Box> history;

  auto emit = [&](const Box& box, RegionRelation intended) {
    TraceQuery query;
    query.params["ra_min"] = FormatFixed(box.ra_min, 4);
    query.params["ra_max"] = FormatFixed(box.ra_max, 4);
    query.params["dec_min"] = FormatFixed(box.dec_min, 4);
    query.params["dec_max"] = FormatFixed(box.dec_max, 4);
    query.intended = intended;
    trace.queries.push_back(std::move(query));
    history.push_back(box);
  };

  auto fresh_box = [&]() {
    const auto& [hra, hdec] = hotspots[hotspot_pick.Sample(rng)];
    double cra = hra + rng.NextGaussian() * config.hotspot_sigma_deg;
    double cdec = hdec + rng.NextGaussian() * config.hotspot_sigma_deg;
    double w = rng.NextDouble(config.width_min_deg, config.width_max_deg);
    double h = rng.NextDouble(config.width_min_deg, config.width_max_deg);
    Box box;
    box.ra_min = RoundTo(cra - w / 2, 4);
    box.ra_max = RoundTo(cra + w / 2, 4);
    box.dec_min = RoundTo(cdec - h / 2, 4);
    box.dec_max = RoundTo(cdec + h / 2, 4);
    return box;
  };

  for (size_t n = 0; n < config.num_queries; ++n) {
    double pick = rng.NextDouble();
    bool have_history = !history.empty();

    if (have_history && pick < config.exact_fraction) {
      emit(history[rng.NextUint64(history.size())], RegionRelation::kEqual);
      continue;
    }
    if (have_history &&
        pick < config.exact_fraction + config.containment_fraction) {
      const Box& parent = history[rng.NextUint64(history.size())];
      double w = parent.ra_max - parent.ra_min;
      double h = parent.dec_max - parent.dec_min;
      Box child;
      double shrink_w = w * rng.NextDouble(0.2, 0.5);
      double shrink_h = h * rng.NextDouble(0.2, 0.5);
      double slide_w = rng.NextDouble(0.0, shrink_w);
      double slide_h = rng.NextDouble(0.0, shrink_h);
      child.ra_min = RoundTo(parent.ra_min + slide_w, 4);
      child.ra_max = RoundTo(parent.ra_max - (shrink_w - slide_w), 4);
      child.dec_min = RoundTo(parent.dec_min + slide_h, 4);
      child.dec_max = RoundTo(parent.dec_max - (shrink_h - slide_h), 4);
      if (child.ra_min < child.ra_max && child.dec_min < child.dec_max &&
          geometry::Contains(parent.Rect(), child.Rect()) &&
          !geometry::Equals(parent.Rect(), child.Rect())) {
        emit(child, RegionRelation::kContainedBy);
      } else {
        emit(fresh_box(), RegionRelation::kDisjoint);
      }
      continue;
    }
    if (have_history && pick < config.exact_fraction +
                                   config.containment_fraction +
                                   config.overlap_fraction) {
      const Box& parent = history[rng.NextUint64(history.size())];
      double w = parent.ra_max - parent.ra_min;
      Box shifted = parent;
      double shift = w * rng.NextDouble(0.3, 0.8);
      shifted.ra_min = RoundTo(shifted.ra_min + shift, 4);
      shifted.ra_max = RoundTo(shifted.ra_max + shift, 4);
      if (geometry::Relate(shifted.Rect(), parent.Rect()) ==
          RegionRelation::kOverlap) {
        emit(shifted, RegionRelation::kOverlap);
      } else {
        emit(fresh_box(), RegionRelation::kDisjoint);
      }
      continue;
    }
    emit(fresh_box(), RegionRelation::kDisjoint);
  }
  return trace;
}

}  // namespace fnproxy::workload
