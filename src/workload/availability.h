#ifndef FNPROXY_WORKLOAD_AVAILABILITY_H_
#define FNPROXY_WORKLOAD_AVAILABILITY_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/proxy.h"
#include "net/fault.h"
#include "net/network.h"
#include "workload/experiment.h"

namespace fnproxy::workload {

/// How one trace query ended at the browser during a fault run.
enum class QueryOutcome {
  /// A complete answer (from the cache, the origin, or both).
  kOk,
  /// A degraded partial answer: HTTP 200 with partial="true" and a coverage
  /// fraction on the result's root element.
  kPartial,
  /// An error reached the browser (503 origin-unreachable, 502, 500, ...).
  kFailed,
};

const char* QueryOutcomeName(QueryOutcome outcome);

/// One trace query's fate, placed on the virtual timeline so runs can be
/// aligned with the outage windows that caused the damage.
struct AvailabilityPoint {
  QueryOutcome outcome = QueryOutcome::kOk;
  /// Region-volume fraction the answer covers: 1 for full answers, the
  /// served fraction for partial ones, 0 for failures.
  double coverage = 0.0;
  int64_t sent_at_micros = 0;
  int64_t response_micros = 0;
};

struct AvailabilityOptions {
  core::ProxyConfig proxy;
  /// Faults injected between the WAN channel and the origin. Outage windows
  /// here use absolute virtual time; see `outage_fractions` for the usual
  /// duration-relative way to place them.
  net::FaultProfile faults;
  /// Retry schedule installed on the WAN (proxy→origin) channel.
  net::RetryPolicy retry;
  /// Virtual think time charged before each query. The RBE replays
  /// closed-loop (next query right after the previous response), so when the
  /// proxy fails fast — breaker open — the clock barely moves and a
  /// wall-clock outage window would swallow the rest of the trace. Think
  /// time anchors query arrivals to the timeline; make it dominate the
  /// per-query cost and an outage covering 30% of the timeline hits ~30% of
  /// the queries in every mode.
  int64_t think_time_micros = 0;
  /// Outage windows as (start, length) fractions of the run's virtual
  /// duration, e.g. {0.3, 0.3} = an outage covering the middle third. Since
  /// each proxy mode finishes the trace at a different virtual time, the
  /// experiment first replays the trace fault-free with the same proxy
  /// config to measure that duration, then converts the fractions into
  /// absolute windows — so "30% outage" hits every mode for the same share
  /// of its own timeline.
  std::vector<std::pair<double, double>> outage_fractions;
};

struct AvailabilityResult {
  std::vector<AvailabilityPoint> points;
  uint64_t ok = 0;
  uint64_t partial = 0;
  uint64_t failed = 0;

  /// Fraction of queries answered at all (fully or partially).
  double availability = 0.0;
  /// Availability weighted by coverage: a half-covered partial answer counts
  /// half. The honest number a degraded cache-only proxy should be judged by.
  double coverage_weighted_availability = 0.0;

  core::ProxyStats proxy_stats;
  net::FaultStats fault_stats;
  net::ChannelRetryStats wan_retry_stats;
  /// Wire requests the WAN channel actually carried (retries included).
  uint64_t wan_requests = 0;
  uint64_t wan_bytes_received = 0;
  size_t cache_entries_final = 0;
  size_t cache_bytes_final = 0;
  int64_t virtual_duration_micros = 0;
  /// Duration of the fault-free calibration run (0 when `outage_fractions`
  /// is empty and no calibration was needed).
  int64_t healthy_duration_micros = 0;
  /// The absolute outage windows the run actually used.
  std::vector<net::OutageWindow> outages;
  /// Per-phase latency breakdown from the proxy's
  /// fnproxy_phase_duration_micros histograms (run_trace prints this).
  std::vector<obs::PhaseBreakdown> phases;
};

/// Replays a SkyExperiment's trace through the full fault pipeline
///   RBE → LAN → proxy → WAN (retry policy) → FaultInjector → origin
/// and classifies every response at the browser. The availability
/// experiment behind the robustness claims: under an outage an active
/// semantic proxy keeps answering subsumed queries and parts of overlapping
/// ones, while a tunneling or passive proxy fails them.
class AvailabilityExperiment {
 public:
  /// `sky` must outlive the experiment; its catalog, templates and trace are
  /// shared across runs.
  explicit AvailabilityExperiment(SkyExperiment* sky) : sky_(sky) {}

  AvailabilityResult Run(const AvailabilityOptions& options);

  /// Run() over an arbitrary trace instead of the SkyExperiment's built-in
  /// one (e.g. a trace file replayed by the CLI tool).
  AvailabilityResult RunTrace(const Trace& trace,
                              const AvailabilityOptions& options);

  /// Virtual duration of a fault-free replay with the same proxy config,
  /// retry policy and think time (what outage fractions are measured
  /// against). Faults and outage windows in `options` are ignored.
  int64_t HealthyDurationMicros(const AvailabilityOptions& options);

 private:
  AvailabilityResult RunProfile(const Trace& trace,
                                const AvailabilityOptions& options,
                                const net::FaultProfile& faults);

  SkyExperiment* sky_;
};

}  // namespace fnproxy::workload

#endif  // FNPROXY_WORKLOAD_AVAILABILITY_H_
