#include "workload/availability.h"

#include "sql/table_xml.h"
#include "util/logging.h"

namespace fnproxy::workload {

namespace {

void Check(const util::Status& status, const char* what) {
  if (!status.ok()) {
    FNPROXY_LOG(kError) << what << ": " << status.ToString();
    std::abort();
  }
}

}  // namespace

const char* QueryOutcomeName(QueryOutcome outcome) {
  switch (outcome) {
    case QueryOutcome::kOk:
      return "ok";
    case QueryOutcome::kPartial:
      return "partial";
    case QueryOutcome::kFailed:
      return "failed";
  }
  return "?";
}

AvailabilityResult AvailabilityExperiment::RunProfile(
    const Trace& trace, const AvailabilityOptions& options,
    const net::FaultProfile& faults) {
  util::SimulatedClock clock;
  server::OriginWebApp app(sky_->database(), &clock,
                           sky_->options().server_costs);
  Check(app.RegisterForm("/radial", kRadialTemplateSql), "register /radial");
  Check(app.RegisterForm("/rect", kRectTemplateSql), "register /rect");
  net::FaultInjector injector(&app, faults, &clock);
  net::SimulatedChannel wan(&injector, sky_->options().wan, &clock);
  wan.set_retry_policy(options.retry);
  core::FunctionProxy proxy(options.proxy, &sky_->templates(), &wan, &clock);
  net::SimulatedChannel lan(&proxy, sky_->options().lan, &clock);

  AvailabilityResult result;
  result.points.reserve(trace.queries.size());
  for (const TraceQuery& query : trace.queries) {
    if (options.think_time_micros > 0) clock.Advance(options.think_time_micros);
    AvailabilityPoint point;
    point.sent_at_micros = clock.NowMicros();
    net::HttpResponse response = lan.RoundTrip(MakeRequest(trace, query));
    point.response_micros = clock.NowMicros() - point.sent_at_micros;
    if (!response.ok()) {
      point.outcome = QueryOutcome::kFailed;
      point.coverage = 0.0;
    } else {
      auto attrs = sql::ResultAttrsFromXml(response.body);
      if (!attrs.ok()) {
        // A 200 whose body is not a parseable <Result> document — garbage
        // or truncation that tunneled through to the browser.
        point.outcome = QueryOutcome::kFailed;
        point.coverage = 0.0;
      } else if (attrs->partial) {
        point.outcome = QueryOutcome::kPartial;
        point.coverage = attrs->coverage;
      } else {
        point.outcome = QueryOutcome::kOk;
        point.coverage = 1.0;
      }
    }
    result.points.push_back(point);
  }

  for (const AvailabilityPoint& point : result.points) {
    switch (point.outcome) {
      case QueryOutcome::kOk:
        ++result.ok;
        break;
      case QueryOutcome::kPartial:
        ++result.partial;
        break;
      case QueryOutcome::kFailed:
        ++result.failed;
        break;
    }
    result.coverage_weighted_availability += point.coverage;
  }
  if (!result.points.empty()) {
    double total = static_cast<double>(result.points.size());
    result.availability =
        static_cast<double>(result.ok + result.partial) / total;
    result.coverage_weighted_availability /= total;
  }

  result.proxy_stats = proxy.stats();
  result.fault_stats = injector.stats();
  result.wan_retry_stats = wan.retry_stats();
  result.wan_requests = wan.total_requests();
  result.wan_bytes_received = wan.total_bytes_received();
  result.cache_entries_final = proxy.cache().num_entries();
  result.cache_bytes_final = proxy.cache().bytes_used();
  result.virtual_duration_micros = clock.NowMicros();
  result.outages = faults.outages;
  result.phases = obs::PhaseBreakdownFromRegistry(
      proxy.metrics(), "fnproxy_phase_duration_micros");
  return result;
}

int64_t AvailabilityExperiment::HealthyDurationMicros(
    const AvailabilityOptions& options) {
  AvailabilityOptions healthy = options;
  healthy.faults = net::HealthyProfile();
  healthy.outage_fractions.clear();
  healthy.proxy.trace_sink = nullptr;  // Calibration is not user-visible.
  return RunProfile(sky_->trace(), healthy, healthy.faults)
      .virtual_duration_micros;
}

AvailabilityResult AvailabilityExperiment::Run(
    const AvailabilityOptions& options) {
  return RunTrace(sky_->trace(), options);
}

AvailabilityResult AvailabilityExperiment::RunTrace(
    const Trace& trace, const AvailabilityOptions& options) {
  net::FaultProfile faults = options.faults;
  int64_t healthy_micros = 0;
  if (!options.outage_fractions.empty()) {
    AvailabilityOptions healthy = options;
    healthy.faults = net::HealthyProfile();
    healthy.outage_fractions.clear();
    healthy.proxy.trace_sink = nullptr;  // Calibration is not user-visible.
    healthy_micros = RunProfile(trace, healthy, healthy.faults)
                         .virtual_duration_micros;
    for (const auto& [start_frac, length_frac] : options.outage_fractions) {
      net::OutageWindow window;
      window.start_micros =
          static_cast<int64_t>(start_frac * static_cast<double>(healthy_micros));
      window.end_micros = static_cast<int64_t>(
          (start_frac + length_frac) * static_cast<double>(healthy_micros));
      faults.outages.push_back(window);
    }
  }
  AvailabilityResult result = RunProfile(trace, options, faults);
  result.healthy_duration_micros = healthy_micros;
  return result;
}

}  // namespace fnproxy::workload
