#include "workload/trace.h"

#include "net/http.h"
#include "util/string_util.h"

namespace fnproxy::workload {

using geometry::RegionRelation;
using util::Status;
using util::StatusOr;

double Trace::IntendedFraction(RegionRelation relation) const {
  if (queries.empty()) return 0.0;
  size_t count = 0;
  for (const TraceQuery& q : queries) {
    if (q.intended == relation) ++count;
  }
  return static_cast<double>(count) / static_cast<double>(queries.size());
}

namespace {

const char* RelationCode(RegionRelation relation) {
  switch (relation) {
    case RegionRelation::kEqual:
      return "E";
    case RegionRelation::kContainedBy:
      return "C";
    case RegionRelation::kContains:
      return "R";
    case RegionRelation::kOverlap:
      return "O";
    case RegionRelation::kDisjoint:
      return "D";
  }
  return "?";
}

StatusOr<RegionRelation> ParseRelationCode(std::string_view code) {
  if (code == "E") return RegionRelation::kEqual;
  if (code == "C") return RegionRelation::kContainedBy;
  if (code == "R") return RegionRelation::kContains;
  if (code == "O") return RegionRelation::kOverlap;
  if (code == "D") return RegionRelation::kDisjoint;
  return Status::ParseError("bad relation code '" + std::string(code) + "'");
}

}  // namespace

std::string Trace::Serialize() const {
  std::string out = form_path + "\n";
  for (const TraceQuery& q : queries) {
    out += RelationCode(q.intended);
    out += '\t';
    out += net::BuildQueryString(q.params);
    out += '\n';
  }
  return out;
}

StatusOr<Trace> Trace::Deserialize(std::string_view text) {
  std::vector<std::string> lines = util::Split(text, '\n');
  if (lines.empty() || util::Trim(lines[0]).empty()) {
    return Status::ParseError("trace is missing the form-path header");
  }
  Trace trace;
  trace.form_path = std::string(util::Trim(lines[0]));
  for (size_t i = 1; i < lines.size(); ++i) {
    std::string_view line = util::Trim(lines[i]);
    if (line.empty()) continue;
    size_t tab = line.find('\t');
    if (tab == std::string_view::npos) {
      return Status::ParseError("trace line " + std::to_string(i) +
                                " lacks a tab separator");
    }
    TraceQuery query;
    FNPROXY_ASSIGN_OR_RETURN(query.intended,
                             ParseRelationCode(line.substr(0, tab)));
    FNPROXY_ASSIGN_OR_RETURN(query.params,
                             net::ParseQueryString(line.substr(tab + 1)));
    trace.queries.push_back(std::move(query));
  }
  return trace;
}

}  // namespace fnproxy::workload
