#include "lint/diagnostics.h"

#include <algorithm>
#include <map>
#include <tuple>
#include <utility>

namespace fnproxy::lint {

const char* SeverityName(Severity severity) {
  return severity == Severity::kError ? "error" : "warning";
}

std::string Diagnostic::ToString() const {
  std::string out = file;
  out += ":";
  out += std::to_string(line);
  out += ": ";
  out += SeverityName(severity);
  out += " [";
  out += check_id;
  out += "] ";
  out += message;
  return out;
}

void StabilizeDiagnosticOrder(std::vector<Diagnostic>& diagnostics) {
  // Group key: first appearance index of each distinct file:line, so sorting
  // by (group, column, ...) reorders only within a line and keeps the
  // checker's cross-line emission order (which golden tests pin) intact.
  std::map<std::pair<std::string, size_t>, size_t> group_of;
  std::vector<size_t> groups;
  groups.reserve(diagnostics.size());
  for (const Diagnostic& d : diagnostics) {
    auto [it, inserted] =
        group_of.try_emplace({d.file, d.line}, group_of.size());
    (void)inserted;
    groups.push_back(it->second);
  }
  std::vector<size_t> order(diagnostics.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const Diagnostic& da = diagnostics[a];
    const Diagnostic& db = diagnostics[b];
    return std::make_tuple(groups[a], da.column, da.check_id,
                           da.severity == Severity::kError ? 0 : 1,
                           da.message) <
           std::make_tuple(groups[b], db.column, db.check_id,
                           db.severity == Severity::kError ? 0 : 1,
                           db.message);
  });
  std::vector<Diagnostic> sorted;
  sorted.reserve(diagnostics.size());
  for (size_t i : order) sorted.push_back(std::move(diagnostics[i]));
  diagnostics = std::move(sorted);
}

bool HasErrors(const std::vector<Diagnostic>& diagnostics) {
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::kError) return true;
  }
  return false;
}

std::string FormatDiagnostics(const std::vector<Diagnostic>& diagnostics) {
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    if (!out.empty()) out += "\n";
    out += d.ToString();
  }
  return out;
}

}  // namespace fnproxy::lint
