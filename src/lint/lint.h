#ifndef FNPROXY_LINT_LINT_H_
#define FNPROXY_LINT_LINT_H_

#include <string>
#include <string_view>
#include <vector>

#include "lint/diagnostics.h"

namespace fnproxy::lint {

/// Static analysis of template files — the registration-time counterpart of
/// the compile-time thread-safety layer. A function template whose region
/// expressions are malformed makes the proxy silently serve wrong tuples
/// from cache (the semantic-caching premise: answers are *derived* from the
/// declared region algebra, never revalidated against the origin), so
/// template defects must be caught before registration, not in production.
///
/// The linter accepts three root elements:
///   <FunctionTemplate>  one function template (paper Fig. 3 form)
///   <TemplateInfo>      one query template + form binding (Id / FormPath /
///                       QueryTemplate, optionally a declared <Params> list)
///   <TemplateSet>       any number of the above two; cross-template checks
///                       (call arity) see every member of the set
///
/// Check-id catalog (see docs/FORMATS.md §9 for the diagnostic format):
///   parse-error          E  XML, SQL or expression syntax error; missing
///                           required elements; non-TVF FROM source
///   shape-dims           E  declared NumDimensions inconsistent with the
///                           center/lo/hi/normal/vertex/coordinate-column
///                           counts, or unknown <Shape>
///   unbound-param        E  geometry expression references a $parameter
///                           missing from <Params>, or a bare identifier
///                           (no '$') that can never be bound
///   unused-param         W  declared parameter feeds no geometry expression
///   radius-nonpositive   E  radius expression is a constant < 0
///                        W  radius expression is a constant == 0
///   sql-param-undeclared E  query SQL uses a $parameter missing from the
///                           declared <Params> list
///   sql-param-unused     W  declared <Params> entry unused by the SQL
///   call-arity           E  the SQL's TVF call passes a different number of
///                           arguments than the function template declares
///   disjoint-regions     W  sampled parameter bindings (including
///                           infinitesimally-perturbed twins) produce
///                           pairwise disjoint regions — no containment or
///                           overlap cache hit can ever occur
/// Severity / Diagnostic live in lint/diagnostics.h, shared with the
/// concurrency checker in src/analysis.
struct LintResult {
  std::vector<Diagnostic> diagnostics;

  bool HasErrors() const;
  /// Diagnostics joined with newlines (empty string when clean).
  std::string FormatDiagnostics() const;
};

/// Lints the content of one template file. `path` is used only to label
/// diagnostics. Never throws and never aborts on malformed input: every
/// problem becomes a diagnostic.
LintResult LintTemplateFile(const std::string& path, std::string_view content);

}  // namespace fnproxy::lint

#endif  // FNPROXY_LINT_LINT_H_
