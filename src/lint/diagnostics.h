#ifndef FNPROXY_LINT_DIAGNOSTICS_H_
#define FNPROXY_LINT_DIAGNOSTICS_H_

#include <string>
#include <vector>

namespace fnproxy::lint {

/// Shared diagnostic plumbing for the repo's static checkers. Both
/// `fnproxy_lint` (template files, src/lint) and `fnproxy_lockcheck`
/// (C++ concurrency discipline, src/analysis) emit the same wire contract:
///
///   file:line: severity [check-id] message
///
/// one diagnostic per line, exit 1 on any error (with --werror, warnings
/// fail too). See docs/FORMATS.md §9 (lint) and §12 (lockcheck).
enum class Severity { kWarning, kError };

const char* SeverityName(Severity severity);

struct Diagnostic {
  std::string file;
  /// 1-based line of the element the finding anchors to; 0 when the finding
  /// concerns the file as a whole.
  size_t line = 0;
  /// 1-based column of the anchor within its line; 0 when unknown. Never
  /// printed — it is the tie-break key that makes the emission order of
  /// multiple findings on one line deterministic (see
  /// StabilizeDiagnosticOrder).
  size_t column = 0;
  Severity severity = Severity::kError;
  std::string check_id;
  std::string message;

  /// "file:line: severity [check-id] message" (docs/FORMATS.md §9).
  std::string ToString() const;
};

/// Orders findings that share a file:line by (column, check-id, severity,
/// message) while leaving the relative order of findings on *different*
/// lines untouched. Checkers emit in analysis-pass order, which is stable
/// across runs but — for several findings anchored to one line — used to
/// depend on container iteration details that differ between standard
/// libraries; golden tests need one canonical order on every compiler.
void StabilizeDiagnosticOrder(std::vector<Diagnostic>& diagnostics);

/// True when any diagnostic has error severity.
bool HasErrors(const std::vector<Diagnostic>& diagnostics);

/// Diagnostics joined with newlines (empty string when the list is empty).
std::string FormatDiagnostics(const std::vector<Diagnostic>& diagnostics);

}  // namespace fnproxy::lint

#endif  // FNPROXY_LINT_DIAGNOSTICS_H_
