#include "lint/lint.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <optional>
#include <set>

#include "core/function_template.h"
#include "geometry/region.h"
#include "sql/ast.h"
#include "sql/eval.h"
#include "sql/parser.h"
#include "sql/value.h"
#include "util/status.h"
#include "xml/xml.h"

namespace fnproxy::lint {

bool LintResult::HasErrors() const { return lint::HasErrors(diagnostics); }

std::string LintResult::FormatDiagnostics() const {
  return lint::FormatDiagnostics(diagnostics);
}

namespace {

using sql::Expr;
using xml::XmlElement;

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
         c == ':' || c == '-' || c == '.';
}

/// Maps element occurrences in the raw text to 1-based line numbers. The XML
/// tree drops source positions, so diagnostics are anchored by re-finding the
/// n-th `<Tag` occurrence inside the byte range of the template being linted.
class Locator {
 public:
  explicit Locator(std::string_view text) : text_(text) {}

  size_t LineOfOffset(size_t offset) const {
    offset = std::min(offset, text_.size());
    return 1 + static_cast<size_t>(
                   std::count(text_.begin(), text_.begin() + offset, '\n'));
  }

  /// 1-based column of `offset` within its line.
  size_t ColumnOfOffset(size_t offset) const {
    offset = std::min(offset, text_.size());
    size_t line_start = text_.rfind('\n', offset == 0 ? 0 : offset - 1);
    if (offset == 0 || line_start == std::string_view::npos) line_start = 0;
    else ++line_start;
    return offset - line_start + 1;
  }

  /// Byte offset of the (skip+1)-th occurrence of the open tag `<tag` at or
  /// after `from`, or npos.
  size_t FindTag(std::string_view tag, size_t from, size_t skip = 0) const {
    std::string needle = "<";
    needle += tag;
    size_t pos = from;
    while (pos < text_.size()) {
      pos = text_.find(needle, pos);
      if (pos == std::string_view::npos) return std::string_view::npos;
      size_t after = pos + needle.size();
      if (after >= text_.size() || !IsNameChar(text_[after])) {
        if (skip == 0) return pos;
        --skip;
      }
      pos = after;
    }
    return std::string_view::npos;
  }

 private:
  std::string_view text_;
};

/// Line + column a diagnostic anchors to. Implicitly constructible from a
/// bare line number (column unknown) so whole-template findings can keep
/// passing `start_line`.
struct Anchor {
  size_t line = 0;
  size_t column = 0;

  // NOLINTNEXTLINE(google-explicit-constructor)
  Anchor(size_t l) : line(l) {}
  Anchor(size_t l, size_t c) : line(l), column(c) {}
};

/// One template element being linted: its byte range in the file plus the
/// diagnostic sink.
struct TemplateContext {
  const std::string* path = nullptr;
  const Locator* loc = nullptr;
  size_t start = 0;
  size_t end = 0;
  std::vector<Diagnostic>* diags = nullptr;

  /// Anchor of the (skip+1)-th `<tag` inside this template; falls back to
  /// the template's first line when the tag cannot be re-found in the raw
  /// text. The column feeds the deterministic same-line ordering of
  /// StabilizeDiagnosticOrder; it is never printed.
  Anchor TagLine(std::string_view tag, size_t skip = 0) const {
    size_t pos = loc->FindTag(tag, start, skip);
    if (pos == std::string_view::npos || pos >= end) {
      return Anchor(loc->LineOfOffset(start));
    }
    return Anchor(loc->LineOfOffset(pos), loc->ColumnOfOffset(pos));
  }

  void Add(Severity severity, std::string check_id, std::string message,
           Anchor anchor) const {
    Diagnostic d;
    d.file = *path;
    d.line = anchor.line;
    d.column = anchor.column;
    d.severity = severity;
    d.check_id = std::move(check_id);
    d.message = std::move(message);
    diags->push_back(std::move(d));
  }

  void Error(std::string check_id, std::string message, Anchor anchor) const {
    Add(Severity::kError, std::move(check_id), std::move(message), anchor);
  }
  void Warn(std::string check_id, std::string message, Anchor anchor) const {
    Add(Severity::kWarning, std::move(check_id), std::move(message), anchor);
  }
};

std::string Trimmed(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return std::string(s.substr(b, e - b));
}

/// Case-folded function name with any "dbo." prefix removed, mirroring the
/// registry's keying so call-arity matches what registration would match.
std::string NormalizeFnName(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (out.rfind("dbo.", 0) == 0) out.erase(0, 4);
  return out;
}

void CollectExprParams(const Expr& expr, std::set<std::string>& out) {
  if (expr.kind == Expr::Kind::kParameter) out.insert(expr.name);
  for (const auto& child : expr.children) CollectExprParams(*child, out);
}

void CollectExprColumns(const Expr& expr, std::set<std::string>& out) {
  if (expr.kind == Expr::Kind::kColumnRef) {
    out.insert(expr.qualifier.empty() ? expr.name
                                      : expr.qualifier + "." + expr.name);
  }
  for (const auto& child : expr.children) CollectExprColumns(*child, out);
}

void CollectStatementParams(const sql::SelectStatement& stmt,
                            std::set<std::string>& out) {
  for (const sql::SelectItem& item : stmt.items) {
    if (item.expr != nullptr) CollectExprParams(*item.expr, out);
  }
  for (const auto& arg : stmt.from.args) CollectExprParams(*arg, out);
  for (const sql::JoinClause& join : stmt.joins) {
    for (const auto& arg : join.table.args) CollectExprParams(*arg, out);
    if (join.condition != nullptr) CollectExprParams(*join.condition, out);
  }
  if (stmt.where != nullptr) CollectExprParams(*stmt.where, out);
  for (const sql::OrderItem& item : stmt.order_by) {
    CollectExprParams(*item.expr, out);
  }
}

/// Evaluates a parameter- and column-free expression to a number;
/// nullopt when the expression is not a foldable constant.
std::optional<double> FoldConstant(const Expr& expr) {
  std::set<std::string> params, columns;
  CollectExprParams(expr, params);
  CollectExprColumns(expr, columns);
  if (!params.empty() || !columns.empty()) return std::nullopt;
  sql::ScalarFunctionRegistry registry =
      sql::ScalarFunctionRegistry::WithBuiltins();
  sql::ExprEvaluator evaluator(&registry);
  sql::RowBinding no_rows;
  util::StatusOr<sql::Value> value = evaluator.Eval(expr, no_rows);
  if (!value.ok()) return std::nullopt;
  util::StatusOr<double> numeric = value->ToNumeric();
  if (!numeric.ok()) return std::nullopt;
  return *numeric;
}

/// All child elements of `parent`, in order (the template format allows any
/// child element name — <P>, <C>, <1>, <2>, ... — inside list containers).
std::vector<const XmlElement*> ListChildren(const XmlElement& parent) {
  std::vector<const XmlElement*> out;
  out.reserve(parent.children().size());
  for (const auto& child : parent.children()) out.push_back(child.get());
  return out;
}

/// Context accumulated while linting one geometry expression.
struct GeometryExprScope {
  const TemplateContext& ctx;
  const std::set<std::string>& declared;
  std::set<std::string>* used;
  std::set<std::string>* reported_unbound;
  std::set<std::string>* reported_columns;

  /// Parses and cross-checks one geometry expression; returns the parsed
  /// tree (nullptr after emitting parse-error).
  std::unique_ptr<Expr> Check(const std::string& text, std::string_view tag,
                              size_t tag_skip) const {
    util::StatusOr<std::unique_ptr<Expr>> parsed =
        sql::ParseExpression(Trimmed(text));
    const Anchor line = ctx.TagLine(tag, tag_skip);
    if (!parsed.ok()) {
      ctx.Error("parse-error",
                "cannot parse <" + std::string(tag) +
                    "> expression: " + parsed.status().message(),
                line);
      return nullptr;
    }
    std::set<std::string> params, columns;
    CollectExprParams(**parsed, params);
    CollectExprColumns(**parsed, columns);
    for (const std::string& p : params) {
      used->insert(p);
      if (declared.count(p) == 0 && reported_unbound->insert(p).second) {
        ctx.Error("unbound-param",
                  "geometry expression references $" + p +
                      ", which is not in <Params>",
                  line);
      }
    }
    for (const std::string& c : columns) {
      if (reported_columns->insert(c).second) {
        ctx.Error("unbound-param",
                  "geometry expression references identifier '" + c +
                      "', which is not a $-parameter and can never be bound",
                  line);
      }
    }
    return std::move(*parsed);
  }
};

/// Samples concrete parameter bindings for the (so far defect-free) template
/// and warns when every sampled region pair — including pairs whose bindings
/// differ only infinitesimally — is disjoint: such a template can never get a
/// containment or overlap cache hit, so every request becomes an origin miss.
void CheckDisjointRegions(const XmlElement& elem, const TemplateContext& ctx,
                          size_t num_params) {
  util::StatusOr<core::FunctionTemplate> tmpl =
      core::FunctionTemplate::FromXml(elem.ToString());
  if (!tmpl.ok() || num_params == 0) return;

  // Deterministic LCG so the lint output is stable across runs.
  uint64_t state = 0x9E3779B97F4A7C15ull;
  auto next_double = [&state]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    double unit = static_cast<double>((state >> 11) & ((1ull << 53) - 1)) /
                  static_cast<double>(1ull << 53);
    return 0.5 + 9.0 * unit;
  };

  std::vector<std::vector<sql::Value>> bindings;
  // An ascending binding first: templates binding (lo, hi) parameter pairs
  // in the conventional order get at least one lo < hi sample.
  std::vector<sql::Value> ascending;
  for (size_t i = 0; i < num_params; ++i) {
    ascending.push_back(sql::Value::Double(1.0 + 2.0 * static_cast<double>(i)));
  }
  bindings.push_back(std::move(ascending));
  for (int sample = 0; sample < 11; ++sample) {
    std::vector<sql::Value> binding;
    for (size_t i = 0; i < num_params; ++i) {
      binding.push_back(sql::Value::Double(next_double()));
    }
    bindings.push_back(std::move(binding));
  }

  std::vector<std::unique_ptr<geometry::Region>> regions;
  for (const std::vector<sql::Value>& binding : bindings) {
    util::StatusOr<std::unique_ptr<geometry::Region>> base =
        tmpl->BuildRegion(binding);
    if (!base.ok()) continue;  // Invalid sample (e.g. lo > hi); try others.
    regions.push_back(std::move(*base));
    // The perturbed twin: a minimally different binding. A healthy template
    // yields a region overlapping its twin's.
    std::vector<sql::Value> twin;
    for (const sql::Value& v : binding) {
      twin.push_back(sql::Value::Double(v.AsDouble() + 1e-3));
    }
    util::StatusOr<std::unique_ptr<geometry::Region>> shifted =
        tmpl->BuildRegion(twin);
    if (shifted.ok()) regions.push_back(std::move(*shifted));
  }
  if (regions.size() < 2) return;  // Not enough valid samples to judge.

  for (size_t i = 0; i < regions.size(); ++i) {
    for (size_t j = i + 1; j < regions.size(); ++j) {
      if (geometry::Intersects(*regions[i], *regions[j])) return;
    }
  }
  ctx.Warn("disjoint-regions",
           "all " + std::to_string(regions.size()) +
               " regions built from sampled parameter bindings (including "
               "minimally perturbed ones) are pairwise disjoint; no "
               "containment or overlap cache hit is possible",
           ctx.TagLine("Shape"));
}

/// Lints one <FunctionTemplate>. Records the template's arity in
/// `arities` for cross-template call-arity checking.
void LintFunctionTemplate(const XmlElement& elem, const TemplateContext& ctx,
                          std::map<std::string, size_t>& arities) {
  const size_t start_line = ctx.loc->LineOfOffset(ctx.start);
  bool has_errors = false;
  size_t diags_before = ctx.diags->size();

  // <Name>
  const XmlElement* name_elem = elem.FindChild("Name");
  std::string name = name_elem != nullptr ? Trimmed(name_elem->text()) : "";
  if (name.empty()) {
    ctx.Error("parse-error", "function template is missing a non-empty <Name>",
              start_line);
  }

  // <Params>
  std::set<std::string> declared;
  std::vector<std::string> declared_order;
  const XmlElement* params_elem = elem.FindChild("Params");
  if (params_elem == nullptr) {
    ctx.Error("parse-error", "function template is missing <Params>",
              start_line);
  } else {
    size_t index = 0;
    for (const XmlElement* p : ListChildren(*params_elem)) {
      std::string text = Trimmed(p->text());
      if (!text.empty() && text[0] == '$') text.erase(0, 1);
      const Anchor line = ctx.TagLine("P", index);
      if (text.empty()) {
        ctx.Error("parse-error", "empty parameter name in <Params>", line);
      } else if (!declared.insert(text).second) {
        ctx.Error("parse-error", "duplicate parameter $" + text + " in <Params>",
                  line);
      } else {
        declared_order.push_back(text);
      }
      ++index;
    }
  }
  if (!name.empty()) arities[NormalizeFnName(name)] = declared.size();

  // <Shape>
  geometry::ShapeKind shape = geometry::ShapeKind::kHypersphere;
  bool shape_known = false;
  const XmlElement* shape_elem = elem.FindChild("Shape");
  if (shape_elem == nullptr) {
    ctx.Error("parse-error", "function template is missing <Shape>",
              start_line);
  } else {
    std::string text = NormalizeFnName(Trimmed(shape_elem->text()));
    if (text == "hypersphere") {
      shape = geometry::ShapeKind::kHypersphere;
      shape_known = true;
    } else if (text == "hyperrectangle" || text == "hypercube") {
      shape = geometry::ShapeKind::kHyperrectangle;
      shape_known = true;
    } else if (text == "polytope") {
      shape = geometry::ShapeKind::kPolytope;
      shape_known = true;
    } else {
      ctx.Error("shape-dims",
                "unknown shape '" + Trimmed(shape_elem->text()) +
                    "' (expected hypersphere, hyperrectangle, hypercube or "
                    "polytope)",
                ctx.TagLine("Shape"));
    }
  }

  // <NumDimensions>
  size_t dims = 0;
  const XmlElement* dims_elem = elem.FindChild("NumDimensions");
  if (dims_elem == nullptr) {
    ctx.Error("parse-error", "function template is missing <NumDimensions>",
              start_line);
  } else {
    const std::string text = Trimmed(dims_elem->text());
    char* endp = nullptr;
    long value = std::strtol(text.c_str(), &endp, 10);
    if (text.empty() || endp == nullptr || *endp != '\0') {
      ctx.Error("parse-error",
                "<NumDimensions> is not an integer: '" + text + "'",
                ctx.TagLine("NumDimensions"));
    } else if (value < 1 || value > 16) {
      ctx.Error("shape-dims",
                "<NumDimensions> must be in [1, 16], got " + text,
                ctx.TagLine("NumDimensions"));
    } else {
      dims = static_cast<size_t>(value);
    }
  }

  // <CoordinateColumns>
  const XmlElement* coords_elem = elem.FindChild("CoordinateColumns");
  if (coords_elem == nullptr) {
    ctx.Error("parse-error",
              "function template is missing <CoordinateColumns>", start_line);
  } else if (dims != 0 && ListChildren(*coords_elem).size() != dims) {
    ctx.Error("shape-dims",
              "<CoordinateColumns> lists " +
                  std::to_string(ListChildren(*coords_elem).size()) +
                  " columns but <NumDimensions> is " + std::to_string(dims),
              ctx.TagLine("CoordinateColumns"));
  }

  // Geometry expressions.
  std::set<std::string> used, reported_unbound, reported_columns;
  GeometryExprScope scope{ctx, declared, &used, &reported_unbound,
                          &reported_columns};

  auto check_list = [&](const XmlElement& parent, std::string_view list_tag) {
    const std::vector<const XmlElement*> items = ListChildren(parent);
    if (dims != 0 && items.size() != dims) {
      ctx.Error("shape-dims",
                "<" + std::string(list_tag) + "> lists " +
                    std::to_string(items.size()) +
                    " expressions but <NumDimensions> is " +
                    std::to_string(dims),
                ctx.TagLine(list_tag));
    }
    for (const XmlElement* item : items) {
      scope.Check(item->text(), list_tag, 0);
    }
  };

  if (shape_known) {
    switch (shape) {
      case geometry::ShapeKind::kHypersphere: {
        const XmlElement* center = elem.FindChild("CenterCoordinate");
        if (center == nullptr) {
          ctx.Error("parse-error",
                    "hypersphere template is missing <CenterCoordinate>",
                    start_line);
        } else {
          check_list(*center, "CenterCoordinate");
        }
        const XmlElement* radius = elem.FindChild("Radius");
        if (radius == nullptr) {
          ctx.Error("parse-error", "hypersphere template is missing <Radius>",
                    start_line);
        } else {
          std::unique_ptr<Expr> expr = scope.Check(radius->text(), "Radius", 0);
          if (expr != nullptr) {
            std::optional<double> value = FoldConstant(*expr);
            if (value.has_value() && *value < -1e-12) {
              ctx.Error("radius-nonpositive",
                        "<Radius> is a negative constant; the region is "
                        "empty for every binding",
                        ctx.TagLine("Radius"));
            } else if (value.has_value() && *value < 1e-12) {
              ctx.Warn("radius-nonpositive",
                       "<Radius> is constant zero; the region is a single "
                       "point for every binding",
                       ctx.TagLine("Radius"));
            }
          }
        }
        break;
      }
      case geometry::ShapeKind::kHyperrectangle: {
        const XmlElement* lo = elem.FindChild("Lo");
        const XmlElement* hi = elem.FindChild("Hi");
        if (lo == nullptr || hi == nullptr) {
          ctx.Error("parse-error",
                    "hyperrectangle template needs both <Lo> and <Hi>",
                    start_line);
        } else {
          check_list(*lo, "Lo");
          check_list(*hi, "Hi");
        }
        break;
      }
      case geometry::ShapeKind::kPolytope: {
        const XmlElement* halfspaces = elem.FindChild("Halfspaces");
        const XmlElement* vertices = elem.FindChild("Vertices");
        if (halfspaces == nullptr || vertices == nullptr) {
          ctx.Error("parse-error",
                    "polytope template needs both <Halfspaces> and <Vertices>",
                    start_line);
          break;
        }
        if (ListChildren(*halfspaces).empty() ||
            ListChildren(*vertices).empty()) {
          ctx.Error("parse-error", "polytope template has empty geometry",
                    start_line);
        }
        size_t h_index = 0;
        for (const XmlElement* h : ListChildren(*halfspaces)) {
          const XmlElement* normal = h->FindChild("Normal");
          const XmlElement* offset = h->FindChild("Offset");
          const Anchor line = ctx.TagLine("H", h_index);
          if (normal == nullptr || offset == nullptr) {
            ctx.Error("parse-error",
                      "halfspace needs both <Normal> and <Offset>", line);
          } else {
            const std::vector<const XmlElement*> comps = ListChildren(*normal);
            if (dims != 0 && comps.size() != dims) {
              ctx.Error("shape-dims",
                        "halfspace <Normal> lists " +
                            std::to_string(comps.size()) +
                            " components but <NumDimensions> is " +
                            std::to_string(dims),
                        ctx.TagLine("Normal", h_index));
            }
            for (const XmlElement* c : comps) {
              scope.Check(c->text(), "Normal", h_index);
            }
            scope.Check(offset->text(), "Offset", h_index);
          }
          ++h_index;
        }
        size_t v_index = 0;
        for (const XmlElement* v : ListChildren(*vertices)) {
          const std::vector<const XmlElement*> comps = ListChildren(*v);
          if (dims != 0 && comps.size() != dims) {
            ctx.Error("shape-dims",
                      "vertex lists " + std::to_string(comps.size()) +
                          " coordinates but <NumDimensions> is " +
                          std::to_string(dims),
                      ctx.TagLine("V", v_index));
          }
          for (const XmlElement* c : comps) {
            scope.Check(c->text(), "V", v_index);
          }
          ++v_index;
        }
        break;
      }
    }
  }

  // unused-param: declared but feeding no geometry expression.
  for (size_t i = 0; i < declared_order.size(); ++i) {
    const std::string& p = declared_order[i];
    if (used.count(p) == 0) {
      ctx.Warn("unused-param",
               "parameter $" + p +
                   " is declared but not used by any geometry expression",
               ctx.TagLine("P", i));
    }
  }

  for (size_t i = diags_before; i < ctx.diags->size(); ++i) {
    if ((*ctx.diags)[i].severity == Severity::kError) has_errors = true;
  }
  if (!has_errors) {
    CheckDisjointRegions(elem, ctx, declared_order.size());
  }
}

/// Lints one <TemplateInfo>: the query template SQL plus its declared
/// parameter list, cross-checked against function templates in `arities`.
void LintTemplateInfo(const XmlElement& elem, const TemplateContext& ctx,
                      const std::map<std::string, size_t>& arities) {
  const size_t start_line = ctx.loc->LineOfOffset(ctx.start);

  for (const char* required : {"Id", "FormPath"}) {
    const XmlElement* child = elem.FindChild(required);
    if (child == nullptr || Trimmed(child->text()).empty()) {
      ctx.Error("parse-error",
                std::string("template info is missing a non-empty <") +
                    required + ">",
                start_line);
    }
  }

  const XmlElement* query = elem.FindChild("QueryTemplate");
  if (query == nullptr || Trimmed(query->text()).empty()) {
    ctx.Error("parse-error",
              "template info is missing a non-empty <QueryTemplate>",
              start_line);
    return;
  }
  const Anchor query_line = ctx.TagLine("QueryTemplate");

  util::StatusOr<sql::SelectStatement> stmt =
      sql::ParseSelect(Trimmed(query->text()));
  if (!stmt.ok()) {
    ctx.Error("parse-error",
              "cannot parse <QueryTemplate> SQL: " + stmt.status().message(),
              query_line);
    return;
  }

  if (stmt->from.kind != sql::TableRef::Kind::kFunctionCall) {
    ctx.Error("parse-error",
              "FROM source '" + stmt->from.name +
                  "' is not a table-valued function call; the template "
                  "cannot be proxied",
              query_line);
  } else {
    // call-arity against function templates declared in the same file.
    auto it = arities.find(NormalizeFnName(stmt->from.name));
    if (it != arities.end() && stmt->from.args.size() != it->second) {
      ctx.Error("call-arity",
                stmt->from.name + " is called with " +
                    std::to_string(stmt->from.args.size()) +
                    " arguments but its function template declares " +
                    std::to_string(it->second) + " parameters",
                query_line);
    }
  }

  std::set<std::string> used;
  CollectStatementParams(*stmt, used);

  // Declared parameter list (optional): cross-check both directions.
  const XmlElement* params_elem = elem.FindChild("Params");
  if (params_elem == nullptr) return;
  std::set<std::string> declared;
  std::vector<std::string> declared_order;
  for (const XmlElement* p : ListChildren(*params_elem)) {
    std::string text = Trimmed(p->text());
    if (!text.empty() && text[0] == '$') text.erase(0, 1);
    if (!text.empty() && declared.insert(text).second) {
      declared_order.push_back(text);
    }
  }
  for (const std::string& p : used) {
    if (declared.count(p) == 0) {
      ctx.Error("sql-param-undeclared",
                "query uses $" + p +
                    ", which is not in the declared <Params> list",
                query_line);
    }
  }
  for (size_t i = 0; i < declared_order.size(); ++i) {
    if (used.count(declared_order[i]) == 0) {
      ctx.Warn("sql-param-unused",
               "declared parameter $" + declared_order[i] +
                   " is not used by the query",
               ctx.TagLine("P", i));
    }
  }
}

}  // namespace

LintResult LintTemplateFile(const std::string& path,
                            std::string_view content) {
  LintResult result;
  Locator locator(content);

  auto file_error = [&](std::string message, size_t line) {
    Diagnostic d;
    d.file = path;
    d.line = line;
    d.severity = Severity::kError;
    d.check_id = "parse-error";
    d.message = std::move(message);
    result.diagnostics.push_back(std::move(d));
  };

  util::StatusOr<std::unique_ptr<XmlElement>> root = xml::ParseXml(content);
  if (!root.ok()) {
    file_error("cannot parse XML: " + root.status().message(), 1);
    return result;
  }

  // Flatten to the list of template elements to lint, locating each element's
  // byte range via the n-th occurrence of its open tag in the raw text.
  struct Item {
    const XmlElement* elem;
    size_t start;
    size_t end;
  };
  std::vector<Item> items;
  const std::string& root_name = (*root)->name();
  if (root_name == "FunctionTemplate" || root_name == "TemplateInfo") {
    size_t start = locator.FindTag(root_name, 0);
    if (start == std::string_view::npos) start = 0;
    items.push_back({root->get(), start, content.size()});
  } else if (root_name == "TemplateSet") {
    std::map<std::string, size_t> seen;
    for (const auto& child : (*root)->children()) {
      if (child->name() != "FunctionTemplate" &&
          child->name() != "TemplateInfo") {
        size_t pos = locator.FindTag(child->name(), 0, seen[child->name()]);
        seen[child->name()] += 1;
        file_error("unexpected <" + child->name() +
                       "> in <TemplateSet> (expected <FunctionTemplate> or "
                       "<TemplateInfo>)",
                   pos == std::string_view::npos ? 1
                                                 : locator.LineOfOffset(pos));
        continue;
      }
      size_t start = locator.FindTag(child->name(), 0, seen[child->name()]);
      seen[child->name()] += 1;
      if (start == std::string_view::npos) start = 0;
      items.push_back({child.get(), start, content.size()});
    }
    // Each element's range ends where the next one begins, so tag searches
    // never leak into a later template.
    std::vector<size_t> starts;
    starts.reserve(items.size());
    for (const Item& item : items) starts.push_back(item.start);
    for (Item& item : items) {
      for (size_t s : starts) {
        if (s > item.start && s < item.end) item.end = s;
      }
    }
  } else {
    file_error("unexpected root element <" + root_name +
                   "> (expected <FunctionTemplate>, <TemplateInfo> or "
                   "<TemplateSet>)",
               1);
    return result;
  }

  // First pass: collect function-template arities so a <TemplateInfo> can be
  // checked against a <FunctionTemplate> declared later in the same set.
  std::map<std::string, size_t> arities;
  for (const Item& item : items) {
    if (item.elem->name() != "FunctionTemplate") continue;
    const XmlElement* name_elem = item.elem->FindChild("Name");
    const XmlElement* params_elem = item.elem->FindChild("Params");
    if (name_elem == nullptr || params_elem == nullptr) continue;
    std::string name = Trimmed(name_elem->text());
    if (!name.empty()) {
      arities[NormalizeFnName(name)] = params_elem->children().size();
    }
  }

  for (const Item& item : items) {
    TemplateContext ctx;
    ctx.path = &path;
    ctx.loc = &locator;
    ctx.start = item.start;
    ctx.end = item.end;
    ctx.diags = &result.diagnostics;
    if (item.elem->name() == "FunctionTemplate") {
      LintFunctionTemplate(*item.elem, ctx, arities);
    } else {
      LintTemplateInfo(*item.elem, ctx, arities);
    }
  }
  // Several findings can anchor to one line (e.g. a parameter list on a
  // single line); canonicalize their relative order so the printed stream —
  // and the golden tests pinning it — are identical on every compiler.
  StabilizeDiagnosticOrder(result.diagnostics);
  return result;
}

}  // namespace fnproxy::lint
