#ifndef FNPROXY_CORE_SIMD_KERNELS_H_
#define FNPROXY_CORE_SIMD_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace fnproxy::core::kernels {

/// One coordinate column as the membership kernels consume it: a contiguous
/// double array plus an optional validity bitmap (bit i set = row i holds a
/// numeric value; nullptr = every row valid). Layout-identical to
/// sql::ColumnarTable::NumericView, so views convert without copying.
struct Column {
  const double* data = nullptr;
  const uint64_t* valid = nullptr;
};

/// Membership kernels over coordinate columns. Each writes the selected row
/// indices (ascending) into `out`, which must have capacity for `num_rows`
/// entries, and returns the count written. A row is selected when every
/// column's validity bit is set (missing bitmaps count as valid) and the
/// shape predicate holds; the float semantics replicate the corresponding
/// geometry::Region::ContainsPoint operation-for-operation (same operand
/// order, no fused multiply-add), so the SIMD and scalar paths select
/// bit-identical rows.
///
/// The unqualified entry points dispatch at runtime (AVX2 / NEON / scalar —
/// see util::simd::ActivePath); the *Scalar variants always run the scalar
/// reference and exist as the oracle for the SIMD property tests.

/// Hypersphere: sum over dims of (data[d][r] - center[d])^2, accumulated in
/// dimension order, compared <= limit_sq.
size_t SelectSphere(const Column* cols, size_t dims, size_t num_rows,
                    const double* center, double limit_sq, uint32_t* out);
size_t SelectSphereScalar(const Column* cols, size_t dims, size_t num_rows,
                          const double* center, double limit_sq,
                          uint32_t* out);

/// Hyperrectangle: validity over all `dims` columns, bounds (already
/// epsilon-widened by the caller) over the first `rect_dims` columns:
/// lo[d] <= x <= hi[d] for every d < rect_dims.
size_t SelectRect(const Column* cols, size_t dims, size_t rect_dims,
                  size_t num_rows, const double* lo, const double* hi,
                  uint32_t* out);
size_t SelectRectScalar(const Column* cols, size_t dims, size_t rect_dims,
                        size_t num_rows, const double* lo, const double* hi,
                        uint32_t* out);

/// Convex polytope: inside iff for every halfspace h,
/// sum over dims of normals[h * dims + d] * data[d][r]  <=  thresholds[h],
/// the dot accumulated in dimension order. `thresholds` carries the
/// precomputed offset + kGeomEpsilon * Norm(normal) slack.
size_t SelectPolytope(const Column* cols, size_t dims, size_t num_rows,
                      const double* normals, const double* thresholds,
                      size_t num_halfspaces, uint32_t* out);
size_t SelectPolytopeScalar(const Column* cols, size_t dims, size_t num_rows,
                            const double* normals, const double* thresholds,
                            size_t num_halfspaces, uint32_t* out);

}  // namespace fnproxy::core::kernels

#endif  // FNPROXY_CORE_SIMD_KERNELS_H_
