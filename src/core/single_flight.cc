#include "core/single_flight.h"

namespace fnproxy::core {

SingleFlightTable::Ticket SingleFlightTable::JoinOrLead(
    const std::string& template_id, const std::string& nonspatial_fingerprint,
    const geometry::Region& region) {
  util::MutexLock lock(mu_);
  for (auto& [token, flight] : flights_) {
    if (flight.template_id != template_id) continue;
    if (flight.nonspatial_fingerprint != nonspatial_fingerprint) continue;
    // Join only when the leader's answer is guaranteed to cover this query:
    // the in-flight region equals or contains ours.
    if (!geometry::Equals(*flight.region, region) &&
        !geometry::Contains(*flight.region, region)) {
      continue;
    }
    joins_total_.fetch_add(1, std::memory_order_relaxed);
    Ticket ticket;
    ticket.leader = false;
    ticket.result = flight.future;
    return ticket;
  }

  const uint64_t token = next_token_++;
  Flight& flight = flights_[token];
  flight.template_id = template_id;
  flight.nonspatial_fingerprint = nonspatial_fingerprint;
  flight.region = region.Clone();
  flight.future = flight.promise.get_future().share();
  flights_total_.fetch_add(1, std::memory_order_relaxed);

  Ticket ticket;
  ticket.leader = true;
  ticket.token = token;
  return ticket;
}

void SingleFlightTable::Complete(uint64_t token, FlightOutcome outcome) {
  std::promise<FlightOutcome> promise;
  {
    util::MutexLock lock(mu_);
    auto it = flights_.find(token);
    if (it == flights_.end()) return;
    promise = std::move(it->second.promise);
    flights_.erase(it);
  }
  // Fulfilled outside the lock: set_value wakes every follower, and none of
  // them should contend on mu_ just to be released.
  promise.set_value(std::move(outcome));
}

size_t SingleFlightTable::inflight() const {
  util::MutexLock lock(mu_);
  return flights_.size();
}

}  // namespace fnproxy::core
