#include "core/hash_ring.h"

#include <algorithm>
#include <cmath>

#include "geometry/hyperrectangle.h"
#include "geometry/point.h"

namespace fnproxy::core {

HashRing::HashRing(size_t vnodes_per_node)
    : vnodes_per_node_(vnodes_per_node == 0 ? 1 : vnodes_per_node) {}

uint64_t HashRing::HashKey(std::string_view key) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : key) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;
  return h;
}

void HashRing::AddNode(const std::string& node_id) {
  if (HasNode(node_id)) return;
  nodes_.push_back(node_id);
  std::sort(nodes_.begin(), nodes_.end());
  for (size_t i = 0; i < vnodes_per_node_; ++i) {
    std::string vnode = node_id;
    vnode += '#';
    vnode += std::to_string(i);
    ring_.emplace_back(HashKey(vnode), node_id);
  }
  std::sort(ring_.begin(), ring_.end());
}

void HashRing::RemoveNode(const std::string& node_id) {
  nodes_.erase(std::remove(nodes_.begin(), nodes_.end(), node_id),
               nodes_.end());
  ring_.erase(std::remove_if(ring_.begin(), ring_.end(),
                             [&](const auto& p) { return p.second == node_id; }),
              ring_.end());
}

bool HashRing::HasNode(std::string_view node_id) const {
  return std::find(nodes_.begin(), nodes_.end(), node_id) != nodes_.end();
}

const std::string* HashRing::OwnerForHash(uint64_t hash) const {
  if (ring_.empty()) return nullptr;
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), hash,
      [](const auto& p, uint64_t h) { return p.first < h; });
  if (it == ring_.end()) it = ring_.begin();
  return &it->second;
}

const std::string* HashRing::Owner(std::string_view key) const {
  return OwnerForHash(HashKey(key));
}

std::string RegionOwnershipKey(std::string_view template_id,
                               std::string_view nonspatial_fingerprint,
                               const geometry::Region& region,
                               double cell_size) {
  if (cell_size <= 0.0) cell_size = 1.0;
  geometry::Hyperrectangle box = region.BoundingBox();
  std::string key;
  key.reserve(template_id.size() + nonspatial_fingerprint.size() + 32);
  key.append(template_id);
  key += '|';
  key.append(nonspatial_fingerprint);
  for (size_t d = 0; d < box.lo().size(); ++d) {
    double center = 0.5 * (box.lo()[d] + box.hi()[d]);
    key += '|';
    key += std::to_string(
        static_cast<long long>(std::floor(center / cell_size)));
  }
  return key;
}

}  // namespace fnproxy::core
