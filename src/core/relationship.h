#ifndef FNPROXY_CORE_RELATIONSHIP_H_
#define FNPROXY_CORE_RELATIONSHIP_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/cache_store.h"
#include "geometry/region.h"

namespace fnproxy::core {

/// Outcome of checking a new query against the cache (paper §3.2 cases a-d
/// plus the region-containment special case). Also reports the work done so
/// the proxy can charge virtual time for it.
///
/// Matched entries are returned as shared snapshots, not bare ids: a
/// concurrent admission can evict any entry between the relationship check
/// and its use, and the snapshot keeps the probed data alive for the full
/// request regardless.
struct RelationshipResult {
  geometry::RegionRelation status = geometry::RegionRelation::kDisjoint;
  /// Entry serving an exact match or containing the new query.
  std::shared_ptr<const CacheEntry> matched;
  /// Cached entries whose regions the new query contains (non-truncated).
  std::vector<std::shared_ptr<const CacheEntry>> contained;
  /// Cached entries partially overlapping the new query (non-truncated).
  std::vector<std::shared_ptr<const CacheEntry>> overlapping;
  /// Number of Relate() region checks performed.
  size_t regions_checked = 0;
  /// Box comparisons inside the cache description structure.
  size_t description_comparisons = 0;
};

/// Probes the cache description, then classifies the new query's region
/// against every comparable candidate (same template, equal non-spatial
/// fingerprint). Resolution order: exact match wins, then containment in a
/// cached query; otherwise contained/overlapping candidate lists are
/// gathered and the overall status is kContains when any cached region is
/// inside the new query, kOverlap when only partial overlaps exist, else
/// kDisjoint. Truncated entries participate in exact matches only.
RelationshipResult CheckRelationship(const CacheStore& cache,
                                     const std::string& template_id,
                                     const std::string& nonspatial_fingerprint,
                                     const geometry::Region& region);

}  // namespace fnproxy::core

#endif  // FNPROXY_CORE_RELATIONSHIP_H_
