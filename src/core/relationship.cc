#include "core/relationship.h"

namespace fnproxy::core {

using geometry::RegionRelation;

RelationshipResult CheckRelationship(const CacheStore& cache,
                                     const std::string& template_id,
                                     const std::string& nonspatial_fingerprint,
                                     const geometry::Region& region) {
  RelationshipResult result;
  std::vector<uint64_t> candidates =
      cache.Candidates(region.BoundingBox(), &result.description_comparisons);

  for (uint64_t id : candidates) {
    std::shared_ptr<const CacheEntry> entry = cache.Find(id);
    if (entry == nullptr) continue;  // Evicted since the description probe.
    if (entry->template_id != template_id ||
        entry->nonspatial_fingerprint != nonspatial_fingerprint) {
      continue;
    }
    ++result.regions_checked;
    RegionRelation relation = geometry::Relate(region, *entry->region);
    switch (relation) {
      case RegionRelation::kEqual:
        // Exact match: same region, same non-spatial constants — the result
        // is identical even for truncated (TOP-cut) entries because the
        // origin is deterministic.
        result.status = RegionRelation::kEqual;
        result.matched = std::move(entry);
        result.contained.clear();
        result.overlapping.clear();
        return result;
      case RegionRelation::kContainedBy:
        if (entry->truncated) break;  // Unusable: may miss in-region tuples.
        result.status = RegionRelation::kContainedBy;
        result.matched = std::move(entry);
        result.contained.clear();
        result.overlapping.clear();
        return result;
      case RegionRelation::kContains:
        if (entry->truncated) break;
        result.contained.push_back(std::move(entry));
        break;
      case RegionRelation::kOverlap:
        if (entry->truncated) break;
        result.overlapping.push_back(std::move(entry));
        break;
      case RegionRelation::kDisjoint:
        break;
    }
  }

  if (!result.contained.empty()) {
    result.status = RegionRelation::kContains;
  } else if (!result.overlapping.empty()) {
    result.status = RegionRelation::kOverlap;
  } else {
    result.status = RegionRelation::kDisjoint;
  }
  return result;
}

}  // namespace fnproxy::core
