#ifndef FNPROXY_CORE_FUNCTION_TEMPLATE_H_
#define FNPROXY_CORE_FUNCTION_TEMPLATE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "geometry/region.h"
#include "sql/ast.h"
#include "sql/value.h"
#include "util/status.h"

namespace fnproxy::core {

/// A function template (paper Fig. 3): the registered abstraction of a
/// table-valued function as a spatial region selection. It names the
/// function's formal parameters and gives closed-form expressions — over
/// those parameters — for the region's geometry, plus the names of the
/// result columns that carry each tuple's Cartesian coordinates (the paper's
/// "result attribute availability" property, §3.1 #4).
///
/// XML form (extends Fig. 3 with <CoordinateColumns>, which the paper's
/// framework needs for relationship checking and local evaluation):
///
///   <FunctionTemplate>
///     <Name>fGetNearbyObjEq</Name>
///     <Params><P>$ra</P><P>$dec</P><P>$radius</P></Params>
///     <Shape>hypersphere</Shape>
///     <NumDimensions>3</NumDimensions>
///     <CenterCoordinate>
///       <C>cos(radians($ra))*cos(radians($dec))</C>
///       <C>sin(radians($ra))*cos(radians($dec))</C>
///       <C>sin(radians($dec))</C>
///     </CenterCoordinate>
///     <Radius>2*sin(radians($radius/60.0)/2)</Radius>
///     <CoordinateColumns><C>cx</C><C>cy</C><C>cz</C></CoordinateColumns>
///   </FunctionTemplate>
///
/// Numbered element names (<1>, <2>, ...) as printed in the paper are also
/// accepted wherever <P>/<C> appear.
///
/// Hyperrectangle templates use <Lo><C>expr</C>...</Lo> and <Hi>...</Hi>
/// instead of center/radius; polytope templates use
/// <Halfspaces><H><Normal><C>..</C>..</Normal><Offset>..</Offset></H>..</Halfspaces>
/// and <Vertices><V><C>..</C>..</V>..</Vertices>.
class FunctionTemplate {
 public:
  /// Parses the XML form. Validates dimension counts and expression syntax.
  static util::StatusOr<FunctionTemplate> FromXml(std::string_view xml_text);

  /// Serializes back to the XML form.
  std::string ToXml() const;

  const std::string& name() const { return name_; }
  geometry::ShapeKind shape() const { return shape_; }
  size_t num_dimensions() const { return num_dimensions_; }
  /// Formal parameter names in call order (without the '$').
  const std::vector<std::string>& params() const { return params_; }
  /// Result columns holding the point coordinates, one per dimension.
  const std::vector<std::string>& coordinate_columns() const {
    return coordinate_columns_;
  }

  /// Instantiates the region for concrete argument values, positionally
  /// matched against params(). All geometry expressions must evaluate to
  /// numbers.
  util::StatusOr<std::unique_ptr<geometry::Region>> BuildRegion(
      const std::vector<sql::Value>& args) const;

  FunctionTemplate(FunctionTemplate&&) = default;
  FunctionTemplate& operator=(FunctionTemplate&&) = default;

 private:
  FunctionTemplate() = default;

  std::string name_;
  geometry::ShapeKind shape_ = geometry::ShapeKind::kHypersphere;
  size_t num_dimensions_ = 0;
  std::vector<std::string> params_;
  std::vector<std::string> coordinate_columns_;

  // Hypersphere geometry.
  std::vector<std::unique_ptr<sql::Expr>> center_exprs_;
  std::unique_ptr<sql::Expr> radius_expr_;
  // Hyperrectangle geometry.
  std::vector<std::unique_ptr<sql::Expr>> lo_exprs_;
  std::vector<std::unique_ptr<sql::Expr>> hi_exprs_;
  // Polytope geometry.
  struct HalfspaceExprs {
    std::vector<std::unique_ptr<sql::Expr>> normal;
    std::unique_ptr<sql::Expr> offset;
  };
  std::vector<HalfspaceExprs> halfspace_exprs_;
  std::vector<std::vector<std::unique_ptr<sql::Expr>>> vertex_exprs_;
};

}  // namespace fnproxy::core

#endif  // FNPROXY_CORE_FUNCTION_TEMPLATE_H_
