#ifndef FNPROXY_CORE_REGION_PREDICATE_H_
#define FNPROXY_CORE_REGION_PREDICATE_H_

#include <memory>
#include <string>
#include <vector>

#include "geometry/region.h"
#include "sql/ast.h"
#include "util/status.h"

namespace fnproxy::core {

/// Builds a SQL predicate equivalent to "the tuple's point lies in
/// `region`", over the named coordinate columns:
///   hypersphere: (x1-c1)*(x1-c1) + ... <= r*r
///   hyperrectangle: x1 >= lo1 AND x1 <= hi1 AND ...
///   polytope: n11*x1 + ... <= b1 AND ... (one conjunct per halfspace)
/// These predicates appear negated in remainder queries shipped to the
/// origin's SQL facility.
util::StatusOr<std::unique_ptr<sql::Expr>> RegionToPredicate(
    const geometry::Region& region,
    const std::vector<std::string>& coordinate_columns);

/// Builds the remainder query (paper §3.2): the instantiated original
/// statement with "AND NOT(in region_i)" conjuncts appended for every cached
/// region already answered from the cache, and TOP/ORDER BY stripped (the
/// proxy applies them locally after merging). `base` must be fully
/// instantiated.
util::StatusOr<sql::SelectStatement> BuildRemainderQuery(
    const sql::SelectStatement& base,
    const std::vector<const geometry::Region*>& excluded_regions,
    const std::vector<std::string>& coordinate_columns);

}  // namespace fnproxy::core

#endif  // FNPROXY_CORE_REGION_PREDICATE_H_
