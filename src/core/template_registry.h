#ifndef FNPROXY_CORE_TEMPLATE_REGISTRY_H_
#define FNPROXY_CORE_TEMPLATE_REGISTRY_H_

#include <map>
#include <string>
#include <string_view>

#include "core/function_template.h"
#include "core/query_template.h"
#include "util/status.h"

namespace fnproxy::core {

/// The proxy's Template Manager (paper Fig. 4): holds registered function
/// templates, function-embedded query templates, and the information files
/// that associate an HTML search form (a request path) with its query
/// template. A query template is servable once the function template of the
/// TVF it calls is also registered.
class TemplateRegistry {
 public:
  /// Registers a function template (keyed case-insensitively by name,
  /// ignoring a "dbo." prefix).
  util::Status RegisterFunctionTemplate(FunctionTemplate tmpl);
  util::Status RegisterFunctionTemplateXml(std::string_view xml_text);

  util::Status RegisterQueryTemplate(QueryTemplate tmpl);

  /// Information file: associates a form path with a query template
  /// (paper §2: "we use information files to associate an HTML search form
  /// with a function-embedded query template").
  ///
  ///   <TemplateInfo>
  ///     <Id>radial</Id>
  ///     <FormPath>/radial</FormPath>
  ///     <QueryTemplate>SELECT ... FROM fGetNearbyObjEq($ra,$dec,$radius) ...
  ///     </QueryTemplate>
  ///   </TemplateInfo>
  util::Status RegisterInfoXml(std::string_view xml_text);

  /// Query template serving `path`, or nullptr.
  const QueryTemplate* FindByPath(std::string_view path) const;
  /// Query template by id, or nullptr.
  const QueryTemplate* FindById(std::string_view id) const;
  /// Function template by (normalized) function name, or nullptr.
  const FunctionTemplate* FindFunctionTemplate(std::string_view name) const;

  size_t num_query_templates() const { return by_id_.size(); }
  size_t num_function_templates() const { return function_templates_.size(); }

 private:
  static std::string NormalizeName(std::string_view name);

  std::map<std::string, FunctionTemplate> function_templates_;
  std::map<std::string, QueryTemplate> by_id_;
  std::map<std::string, std::string> path_to_id_;
};

}  // namespace fnproxy::core

#endif  // FNPROXY_CORE_TEMPLATE_REGISTRY_H_
