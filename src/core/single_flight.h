#ifndef FNPROXY_CORE_SINGLE_FLIGHT_H_
#define FNPROXY_CORE_SINGLE_FLIGHT_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "core/cache_store.h"
#include "geometry/region.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace fnproxy::core {

/// What a completed flight hands to its followers: the cache entry the
/// leader admitted (its region covers every follower's query region), or a
/// failure (`ok == false`, e.g. the origin was unreachable or the result was
/// too large to cache). Followers of a failed flight retry on their own.
struct FlightOutcome {
  bool ok = false;
  std::shared_ptr<const CacheEntry> entry;
};

/// The proxy's in-flight table for single-flight request collapsing: when
/// several origin-bound requests for the same (template, non-spatial
/// fingerprint) subsumption class arrive concurrently, exactly one — the
/// leader — performs the origin fetch; the rest — followers — block on a
/// shared future of the admitted cache entry and then serve locally. A
/// follower joins any in-flight leader whose region equals or contains its
/// own query region, so identical *and* subsumed misses collapse.
///
/// Thread-safe. The flight map is tiny (bounded by concurrent origin
/// fetches), so lookup is a linear scan under one mutex.
class SingleFlightTable {
 public:
  struct Ticket {
    /// True: the caller must perform the fetch and call Complete (or let a
    /// FlightGuard do it) — followers are blocked on this flight.
    bool leader = false;
    /// Leader-only completion token.
    uint64_t token = 0;
    /// Follower-only: resolves when the leader completes.
    std::shared_future<FlightOutcome> result;
  };

  SingleFlightTable() = default;
  SingleFlightTable(const SingleFlightTable&) = delete;
  SingleFlightTable& operator=(const SingleFlightTable&) = delete;

  /// Joins an in-flight leader whose region covers `region` (follower
  /// ticket), or registers a new flight for `region` (leader ticket).
  Ticket JoinOrLead(const std::string& template_id,
                    const std::string& nonspatial_fingerprint,
                    const geometry::Region& region) EXCLUDES(mu_);

  /// Leader completion: publishes `outcome` to every follower and retires
  /// the flight. Safe to call once per token; unknown tokens are ignored
  /// (the flight was already completed).
  void Complete(uint64_t token, FlightOutcome outcome) EXCLUDES(mu_);

  /// Flights currently in progress.
  size_t inflight() const EXCLUDES(mu_);
  /// Flights ever led (== origin fetches the table allowed).
  uint64_t flights_total() const {
    return flights_total_.load(std::memory_order_relaxed);
  }
  /// Requests that joined an existing flight instead of fetching.
  uint64_t joins_total() const {
    return joins_total_.load(std::memory_order_relaxed);
  }

 private:
  struct Flight {
    std::string template_id;
    std::string nonspatial_fingerprint;
    std::unique_ptr<geometry::Region> region;
    std::promise<FlightOutcome> promise;
    std::shared_future<FlightOutcome> future;
  };

  mutable util::Mutex mu_;
  std::map<uint64_t, Flight> flights_ GUARDED_BY(mu_);
  uint64_t next_token_ GUARDED_BY(mu_) = 1;
  std::atomic<uint64_t> flights_total_{0};
  std::atomic<uint64_t> joins_total_{0};
};

/// RAII completion for a leader ticket: unless Fulfill() ran, the destructor
/// completes the flight as failed — so no exit path (error return, fallback,
/// exception) can strand followers on a future that never resolves.
class FlightGuard {
 public:
  FlightGuard() = default;
  FlightGuard(SingleFlightTable* table, uint64_t token)
      : table_(table), token_(token) {}
  FlightGuard(FlightGuard&& other) noexcept
      : table_(other.table_), token_(other.token_) {
    other.table_ = nullptr;
    other.token_ = 0;
  }
  FlightGuard& operator=(FlightGuard&& other) noexcept {
    if (this != &other) {
      if (armed()) table_->Complete(token_, FlightOutcome{});
      table_ = other.table_;
      token_ = other.token_;
      other.table_ = nullptr;
      other.token_ = 0;
    }
    return *this;
  }
  FlightGuard(const FlightGuard&) = delete;
  FlightGuard& operator=(const FlightGuard&) = delete;
  ~FlightGuard() {
    if (armed()) table_->Complete(token_, FlightOutcome{});
  }

  bool armed() const { return table_ != nullptr; }

  /// Publishes the outcome and disarms the guard.
  void Fulfill(FlightOutcome outcome) {
    if (!armed()) return;
    table_->Complete(token_, std::move(outcome));
    table_ = nullptr;
    token_ = 0;
  }

 private:
  SingleFlightTable* table_ = nullptr;
  uint64_t token_ = 0;
};

}  // namespace fnproxy::core

#endif  // FNPROXY_CORE_SINGLE_FLIGHT_H_
