#ifndef FNPROXY_CORE_CACHE_STORE_H_
#define FNPROXY_CORE_CACHE_STORE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "geometry/region.h"
#include "index/region_index.h"
#include "sql/columnar.h"
#include "sql/schema.h"
#include "storage/segment.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace fnproxy::core {

/// Storage tier of a cached entry. Entries are admitted hot; the maintenance
/// sweep demotes idle entries to compressed frozen segments and the coldest
/// frozen segments to disk. Lookups that need tuples promote back to hot.
enum class EntryTier : uint8_t {
  kHot,     ///< Raw ColumnarTable in `result`; zero-cost scans.
  kFrozen,  ///< Compressed FrozenSegment in memory; `result` is schema-only.
  kSpilled, ///< Segment on disk at `spill_file`; faulted back on access.
};

const char* EntryTierName(EntryTier tier);

/// One cached query: its identifying template + parameters, the region its
/// embedded function selected, and the result tuples (the paper's "query
/// result file", kept as an in-memory table with byte accounting).
struct CacheEntry {
  uint64_t id = 0;
  std::string template_id;
  /// Fingerprint of the non-spatial parameters; entries are only comparable
  /// to queries with an equal fingerprint.
  std::string nonspatial_fingerprint;
  /// Canonical string of the full parameter binding (exact-match key for
  /// passive caching).
  std::string param_fingerprint;
  std::unique_ptr<geometry::Region> region;
  /// Result tuples in columnar form (assignable from a row-wise sql::Table).
  /// The proxy pre-resolves the template's coordinate columns to contiguous
  /// double arrays (PrepareNumericView) before the entry is frozen, so
  /// concurrent readers scan without conversion or locking.
  sql::ColumnarTable result;
  /// True when the origin applied a TOP cutoff, so `result` may be missing
  /// in-region tuples: such entries may serve exact matches only.
  bool truncated = false;
  /// Storage tier. A non-hot entry keeps `result` as a schema-only (zero
  /// row) table, so schema compatibility checks never promote; tuple access
  /// goes through CacheStore::FindHot, which promotes first.
  EntryTier tier = EntryTier::kHot;
  /// Compressed payload when tier == kFrozen (shared: a reader's snapshot
  /// stays valid after concurrent promotion or eviction).
  std::shared_ptr<const storage::FrozenSegment> segment;
  /// On-disk segment container when tier == kSpilled.
  std::string spill_file;
  /// Size of `spill_file` on disk (the spill-budget charge).
  size_t spill_file_bytes = 0;
  size_t bytes = 0;
  /// Access bookkeeping as of admission; live values are kept by the store
  /// (updated by Touch) so replacement works without mutating the shared
  /// immutable entry.
  int64_t last_access_micros = 0;
  uint64_t access_count = 0;
};

/// Cache replacement policies (Ablation C). The paper runs with fractional
/// cache sizes but does not name its policy; LRU is the default.
enum class ReplacementPolicy { kLru, kLfu, kSizeAdjusted };

const char* ReplacementPolicyName(ReplacementPolicy policy);

/// Builds one cache-description index instance; called once per shard.
using RegionIndexFactory =
    std::function<std::unique_ptr<index::RegionIndex>()>;

/// Storage-tier policy: idle thresholds for demotion and the disk budget for
/// the spill tier. Zero thresholds disable the corresponding demotion.
struct TierConfig {
  /// Hot entries idle at least this long are frozen by the sweep.
  int64_t freeze_idle_micros = 0;
  /// Frozen entries idle at least this long spill to disk.
  int64_t spill_idle_micros = 0;
  /// Directory for spilled segment files; spilling is disabled when empty.
  std::string spill_dir;
  /// Cap on total spilled bytes on disk (0 = unlimited). The sweep stops
  /// spilling when the next file would exceed it.
  size_t spill_max_bytes = 0;
};

/// What one maintenance sweep did (for observability counters).
struct TierSweepResult {
  size_t frozen = 0;
  size_t spilled = 0;
};

/// The proxy's Cache Manager: owns the entries, keeps the cache description
/// (a RegionIndex over entry bounding boxes) in sync, enforces the byte
/// budget by evicting per the policy, and tracks statistics.
///
/// Threading model: entries are partitioned into shards by id, each shard
/// guarded by its own shared_mutex — lookups, description probes and
/// relationship checks take shared (reader) locks; admission, eviction and
/// coalescing take the owning shard's exclusive lock. Byte/entry/eviction
/// accounting is atomic and global. `Find` hands out
/// shared_ptr<const CacheEntry> snapshots, so a reader's entry stays valid
/// even if another thread evicts it mid-use. No operation ever holds two
/// shard locks at once (the global victim scan visits shards one at a
/// time), which makes the locking trivially deadlock-free.
class CacheStore {
 public:
  /// Single-shard store (legacy convenience for tests/benches and
  /// single-threaded runs). `max_bytes == 0` means unlimited.
  CacheStore(std::unique_ptr<index::RegionIndex> description, size_t max_bytes,
             ReplacementPolicy policy);

  /// Sharded store: `factory` is invoked once per shard to build that
  /// shard's cache-description index. `num_shards` is clamped to >= 1.
  CacheStore(const RegionIndexFactory& factory, size_t num_shards,
             size_t max_bytes, ReplacementPolicy policy);

  CacheStore(const CacheStore&) = delete;
  CacheStore& operator=(const CacheStore&) = delete;

  /// Removes any remaining spill files.
  ~CacheStore();

  /// Installs the storage-tier policy. Call during setup, before concurrent
  /// use (the config itself is not lock-protected).
  void set_tier_config(TierConfig config) { tier_config_ = std::move(config); }
  const TierConfig& tier_config() const { return tier_config_; }

  /// Inserts a new entry (fields other than id/bytes filled by the caller);
  /// returns its id. May evict other entries to fit; an entry larger than
  /// the whole budget is not cached (returns 0). `comparisons` receives the
  /// box comparisons charged by the description insert (plus any evictions'
  /// description work).
  uint64_t Insert(CacheEntry entry, size_t* comparisons);

  /// As above, but also hands back the immutable admitted snapshot (null
  /// when the entry was not cacheable). Single-flight leaders use it to
  /// publish the admitted entry to followers without a racy re-lookup (the
  /// entry may already be evicted by the time a Find would run).
  uint64_t Insert(CacheEntry entry, size_t* comparisons,
                  std::shared_ptr<const CacheEntry>* snapshot);

  /// Removes an entry by id. `comparisons` receives description-removal
  /// comparisons.
  bool Remove(uint64_t id, size_t* comparisons);

  /// Snapshot lookup: the returned entry is immutable and stays valid after
  /// concurrent eviction. Null when the id is unknown. Does NOT promote: a
  /// cold entry comes back with a schema-only `result` (candidate probes and
  /// schema checks must not thaw entries they end up not serving from).
  std::shared_ptr<const CacheEntry> Find(uint64_t id) const;

  /// Lookup that guarantees tuples: promotes frozen/spilled entries back to
  /// the hot tier (thaw / disk fault-back) and returns a hot snapshot. Null
  /// when the id is unknown or a spill file is lost/corrupt (such entries
  /// are dropped from the cache and counted in spill_io_errors()).
  std::shared_ptr<const CacheEntry> FindHot(uint64_t id);

  /// Demotes idle entries per the tier config: hot -> frozen -> spilled.
  /// Encoding and disk I/O run outside the shard locks; the swap re-checks
  /// entry identity, so it is safe to call from a maintenance thread while
  /// requests are served.
  TierSweepResult SweepColdEntries(int64_t now_micros);

  /// Marks an access for replacement bookkeeping.
  void Touch(uint64_t id, int64_t now_micros);

  /// Ids of entries whose region bounding box intersects `bbox` — the cache
  /// description probe, across all shards. `comparisons` receives the total
  /// box comparisons performed.
  std::vector<uint64_t> Candidates(const geometry::Hyperrectangle& bbox,
                                   size_t* comparisons) const;

  // --- Legacy single-threaded conveniences. These forward to the
  // out-parameter overloads and record the count for
  // description_comparisons(); the counter is a best-effort atomic, so
  // concurrent callers should prefer the out-parameter forms. ---

  uint64_t Insert(CacheEntry entry) {
    size_t comparisons = 0;
    uint64_t id = Insert(std::move(entry), &comparisons);
    last_description_comparisons_.store(comparisons,
                                        std::memory_order_relaxed);
    return id;
  }

  bool Remove(uint64_t id) {
    size_t comparisons = 0;
    bool removed = Remove(id, &comparisons);
    last_description_comparisons_.store(comparisons,
                                        std::memory_order_relaxed);
    return removed;
  }

  std::vector<uint64_t> Candidates(const geometry::Hyperrectangle& bbox) const {
    size_t comparisons = 0;
    std::vector<uint64_t> ids = Candidates(bbox, &comparisons);
    last_description_comparisons_.store(comparisons,
                                        std::memory_order_relaxed);
    return ids;
  }

  /// Box comparisons performed by the most recent legacy-form Candidates /
  /// Insert / Remove call on the description structure.
  size_t description_comparisons() const {
    return last_description_comparisons_.load(std::memory_order_relaxed);
  }

  size_t num_entries() const {
    return num_entries_.load(std::memory_order_relaxed);
  }
  size_t bytes_used() const {
    return bytes_used_.load(std::memory_order_relaxed);
  }
  size_t max_bytes() const { return max_bytes_; }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  size_t num_shards() const { return shards_.size(); }

  // --- Storage-tier statistics (all monotonic except the gauges). ---
  size_t frozen_entries() const {
    return frozen_entries_.load(std::memory_order_relaxed);
  }
  size_t spilled_entries() const {
    return spilled_entries_.load(std::memory_order_relaxed);
  }
  size_t spill_bytes_used() const {
    return spill_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t freezes() const { return freezes_.load(std::memory_order_relaxed); }
  uint64_t thaws() const { return thaws_.load(std::memory_order_relaxed); }
  uint64_t spills() const { return spills_.load(std::memory_order_relaxed); }
  uint64_t spill_faults() const {
    return spill_faults_.load(std::memory_order_relaxed);
  }
  uint64_t spill_io_errors() const {
    return spill_io_errors_.load(std::memory_order_relaxed);
  }
  /// Cumulative raw bytes of tables frozen and the encoded bytes they became
  /// (a live compression-ratio signal for the metrics endpoint).
  uint64_t frozen_raw_bytes() const {
    return frozen_raw_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t frozen_encoded_bytes() const {
    return frozen_encoded_bytes_.load(std::memory_order_relaxed);
  }

  /// All entry ids (for iteration in tests/tools). Consistent per shard,
  /// not across shards under concurrent mutation.
  std::vector<uint64_t> AllIds() const;

 private:
  /// Live replacement bookkeeping beside the immutable entry snapshot.
  struct Stored {
    std::shared_ptr<const CacheEntry> entry;
    std::atomic<int64_t> last_access_micros{0};
    std::atomic<uint64_t> access_count{0};
  };

  /// Per-shard state. The lock-ordering invariant (enforced by the
  /// EXCLUDES annotations on every CacheStore entry point plus the fact
  /// that no method takes a shard reference argument): at most one shard's
  /// `mu` is ever held by a thread, so cross-shard deadlock is impossible
  /// by construction.
  struct Shard {
    mutable util::SharedMutex mu;
    std::unique_ptr<index::RegionIndex> description GUARDED_BY(mu);
    std::map<uint64_t, Stored> entries GUARDED_BY(mu);
  };

  Shard& ShardFor(uint64_t id) { return *shards_[id % shards_.size()]; }
  const Shard& ShardFor(uint64_t id) const {
    return *shards_[id % shards_.size()];
  }

  /// Picks the eviction victim per the policy across all shards; 0 when
  /// empty. Takes shared locks one shard at a time.
  uint64_t PickVictim() const;

  /// Replaces the stored snapshot for `id` with `replacement` iff the stored
  /// pointer still equals `expected` (nobody promoted/replaced it since the
  /// caller sampled it). Adjusts byte accounting and tier gauges; returns
  /// whether the swap happened.
  bool SwapEntry(uint64_t id, const std::shared_ptr<const CacheEntry>& expected,
                 std::shared_ptr<const CacheEntry> replacement);

  /// Builds the demoted/promoted twin of `entry` sharing the same identity.
  static CacheEntry CloneMeta(const CacheEntry& entry);

  std::string SpillPathFor(uint64_t id) const;

  std::vector<std::unique_ptr<Shard>> shards_;
  size_t max_bytes_;
  ReplacementPolicy policy_;
  TierConfig tier_config_;
  std::atomic<size_t> bytes_used_{0};
  std::atomic<size_t> num_entries_{0};
  std::atomic<uint64_t> next_id_{1};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<size_t> frozen_entries_{0};
  std::atomic<size_t> spilled_entries_{0};
  std::atomic<size_t> spill_bytes_{0};
  std::atomic<uint64_t> freezes_{0};
  std::atomic<uint64_t> thaws_{0};
  std::atomic<uint64_t> spills_{0};
  std::atomic<uint64_t> spill_faults_{0};
  std::atomic<uint64_t> spill_io_errors_{0};
  std::atomic<uint64_t> frozen_raw_bytes_{0};
  std::atomic<uint64_t> frozen_encoded_bytes_{0};
  mutable std::atomic<size_t> last_description_comparisons_{0};
};

}  // namespace fnproxy::core

#endif  // FNPROXY_CORE_CACHE_STORE_H_
