#ifndef FNPROXY_CORE_CACHE_STORE_H_
#define FNPROXY_CORE_CACHE_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "geometry/region.h"
#include "index/region_index.h"
#include "sql/schema.h"
#include "util/status.h"

namespace fnproxy::core {

/// One cached query: its identifying template + parameters, the region its
/// embedded function selected, and the result tuples (the paper's "query
/// result file", kept as an in-memory table with byte accounting).
struct CacheEntry {
  uint64_t id = 0;
  std::string template_id;
  /// Fingerprint of the non-spatial parameters; entries are only comparable
  /// to queries with an equal fingerprint.
  std::string nonspatial_fingerprint;
  /// Canonical string of the full parameter binding (exact-match key for
  /// passive caching).
  std::string param_fingerprint;
  std::unique_ptr<geometry::Region> region;
  sql::Table result;
  /// True when the origin applied a TOP cutoff, so `result` may be missing
  /// in-region tuples: such entries may serve exact matches only.
  bool truncated = false;
  size_t bytes = 0;
  int64_t last_access_micros = 0;
  uint64_t access_count = 0;
};

/// Cache replacement policies (Ablation C). The paper runs with fractional
/// cache sizes but does not name its policy; LRU is the default.
enum class ReplacementPolicy { kLru, kLfu, kSizeAdjusted };

const char* ReplacementPolicyName(ReplacementPolicy policy);

/// The proxy's Cache Manager: owns the entries, keeps the cache description
/// (a RegionIndex over entry bounding boxes) in sync, enforces the byte
/// budget by evicting per the policy, and tracks statistics.
class CacheStore {
 public:
  /// `max_bytes == 0` means unlimited.
  CacheStore(std::unique_ptr<index::RegionIndex> description, size_t max_bytes,
             ReplacementPolicy policy);

  /// Inserts a new entry (fields other than id/bytes filled by the caller);
  /// returns its id. May evict other entries to fit; an entry larger than
  /// the whole budget is not cached (returns 0).
  uint64_t Insert(CacheEntry entry);

  /// Removes an entry by id.
  bool Remove(uint64_t id);

  const CacheEntry* Find(uint64_t id) const;

  /// Marks an access for replacement bookkeeping.
  void Touch(uint64_t id, int64_t now_micros);

  /// Ids of entries whose region bounding box intersects `bbox` — the cache
  /// description probe. Box comparisons performed are reported through
  /// description_comparisons().
  std::vector<uint64_t> Candidates(const geometry::Hyperrectangle& bbox) const;

  /// Box comparisons performed by the most recent Candidates / Insert /
  /// Remove call on the description structure.
  size_t description_comparisons() const {
    return description_->last_op_comparisons();
  }

  size_t num_entries() const { return entries_.size(); }
  size_t bytes_used() const { return bytes_used_; }
  size_t max_bytes() const { return max_bytes_; }
  uint64_t evictions() const { return evictions_; }

  /// All entry ids (for iteration in tests/tools).
  std::vector<uint64_t> AllIds() const;

 private:
  /// Picks the eviction victim per the policy; 0 when empty.
  uint64_t PickVictim() const;

  std::unique_ptr<index::RegionIndex> description_;
  size_t max_bytes_;
  ReplacementPolicy policy_;
  std::map<uint64_t, CacheEntry> entries_;
  size_t bytes_used_ = 0;
  uint64_t next_id_ = 1;
  uint64_t evictions_ = 0;
};

}  // namespace fnproxy::core

#endif  // FNPROXY_CORE_CACHE_STORE_H_
