#include "core/proxy.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <future>
#include <numeric>
#include <optional>

#include "core/cache_snapshot.h"
#include "core/local_eval.h"
#include "core/region_predicate.h"
#include "core/relationship.h"
#include "geometry/coverage.h"
#include "index/array_index.h"
#include "index/rtree.h"
#include "sql/printer.h"
#include "sql/table_xml.h"
#include "storage/wire.h"
#include "util/logging.h"

namespace fnproxy::core {

using geometry::RegionRelation;
using net::HttpRequest;
using net::HttpResponse;
using sql::Table;
using sql::Value;
using util::Status;
using util::StatusOr;

const char* CachingModeName(CachingMode mode) {
  switch (mode) {
    case CachingMode::kNoCache:
      return "NC";
    case CachingMode::kPassive:
      return "PC";
    case CachingMode::kActiveFull:
      return "AC-full";
    case CachingMode::kActiveRegionContainment:
      return "AC-region-containment";
    case CachingMode::kActiveContainmentOnly:
      return "AC-containment-only";
  }
  return "?";
}

std::string ProxyStats::ToXml() const {
  char buffer[2048];
  std::snprintf(
      buffer, sizeof(buffer),
      "<ProxyStats requests=\"%llu\" templateRequests=\"%llu\">\n"
      "  <Hits exact=\"%llu\" containment=\"%llu\" regionContainment=\"%llu\""
      " overlap=\"%llu\"/>\n"
      "  <Misses count=\"%llu\"/>\n"
      "  <Origin formRequests=\"%llu\" sqlRequests=\"%llu\""
      " failures=\"%llu\" retries=\"%llu\"/>\n"
      "  <Breaker transitions=\"%llu\" openRejections=\"%llu\"/>\n"
      "  <Degraded full=\"%llu\" partial=\"%llu\" unavailable=\"%llu\""
      " coverageServed=\"%.4f\"/>\n"
      "  <Overload collapsed=\"%llu\" shed=\"%llu\""
      " deadlineExceeded=\"%llu\"/>\n"
      "  <Peer lookups=\"%llu\" hits=\"%llu\" failures=\"%llu\"/>\n"
      "  <TimingMicros check=\"%lld\" localEval=\"%lld\" merge=\"%lld\"/>\n"
      "  <AverageCacheEfficiency>%.4f</AverageCacheEfficiency>\n"
      "</ProxyStats>\n",
      static_cast<unsigned long long>(requests),
      static_cast<unsigned long long>(template_requests),
      static_cast<unsigned long long>(exact_hits),
      static_cast<unsigned long long>(containment_hits),
      static_cast<unsigned long long>(region_containments),
      static_cast<unsigned long long>(overlaps_handled),
      static_cast<unsigned long long>(misses),
      static_cast<unsigned long long>(origin_form_requests),
      static_cast<unsigned long long>(origin_sql_requests),
      static_cast<unsigned long long>(origin_failures),
      static_cast<unsigned long long>(origin_retries),
      static_cast<unsigned long long>(breaker_transitions),
      static_cast<unsigned long long>(breaker_open_rejections),
      static_cast<unsigned long long>(degraded_full),
      static_cast<unsigned long long>(degraded_partial),
      static_cast<unsigned long long>(degraded_unavailable), coverage_served,
      static_cast<unsigned long long>(collapsed),
      static_cast<unsigned long long>(shed),
      static_cast<unsigned long long>(deadline_exceeded),
      static_cast<unsigned long long>(peer_lookups),
      static_cast<unsigned long long>(peer_hits),
      static_cast<unsigned long long>(peer_failures),
      static_cast<long long>(check_micros),
      static_cast<long long>(local_eval_micros),
      static_cast<long long>(merge_micros), AverageCacheEfficiency());
  return buffer;
}

double ProxyStats::AverageCacheEfficiency() const {
  if (records.empty()) return 0.0;
  double sum = 0.0;
  for (const QueryRecord& record : records) {
    sum += record.CacheEfficiency();
  }
  return sum / static_cast<double>(records.size());
}

namespace {

constexpr auto kRelaxed = std::memory_order_relaxed;

/// Cheaply extracts the rows="N" attribute from a result document without a
/// full XML parse (used for pass-through responses where the proxy only
/// needs the tuple count for statistics).
size_t ExtractRowCount(const std::string& body) {
  size_t pos = body.find("rows=\"");
  if (pos == std::string::npos) return 0;
  pos += 6;
  size_t end = body.find('"', pos);
  if (end == std::string::npos) return 0;
  size_t rows = 0;
  for (size_t i = pos; i < end; ++i) {
    if (body[i] < '0' || body[i] > '9') return 0;
    rows = rows * 10 + static_cast<size_t>(body[i] - '0');
  }
  return rows;
}

std::string FullParamFingerprint(
    const std::map<std::string, std::string>& params) {
  std::string fingerprint;
  for (const auto& [key, value] : params) {
    fingerprint += key;
    fingerprint += '=';
    fingerprint += value;
    fingerprint += ';';
  }
  return fingerprint;
}

// --- Peer wire format helpers ----------------------------------------------
//
// Peer metadata travels in X-Peer-* headers; the body is the entry's region
// document followed by its result document, split at the first "<Result "
// (neither document nests the other, so the split is unambiguous).

/// Header lookup tolerant of the wire parser's lowercasing.
const std::string* PeerHeader(const std::map<std::string, std::string>& headers,
                              const std::string& name) {
  auto it = headers.find(name);
  if (it != headers.end()) return &it->second;
  std::string lower = name;
  for (char& c : lower) c = static_cast<char>(std::tolower(c));
  it = headers.find(lower);
  return it != headers.end() ? &it->second : nullptr;
}

std::string PeerHeaderOr(const std::map<std::string, std::string>& headers,
                         const std::string& name, const char* fallback) {
  const std::string* value = PeerHeader(headers, name);
  return value != nullptr ? *value : fallback;
}

bool SplitPeerBody(const std::string& body, std::string_view* region_xml,
                   std::string_view* result_xml) {
  size_t pos = body.find("<Result ");
  if (pos == std::string::npos) return false;
  std::string_view view(body);
  *region_xml = view.substr(0, pos);
  *result_xml = view.substr(pos);
  return true;
}

uint64_t ParsePeerToken(const std::string& text) {
  uint64_t token = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return 0;
    token = token * 10 + static_cast<uint64_t>(c - '0');
  }
  return token;
}

}  // namespace

FunctionProxy::FunctionProxy(ProxyConfig config,
                             const TemplateRegistry* templates,
                             net::SimulatedChannel* origin,
                             util::SimulatedClock* clock)
    : config_(config),
      templates_(templates),
      origin_(origin),
      clock_(clock),
      trace_ring_(config.trace_ring_capacity) {
  const bool rtree = config_.use_rtree_description;
  RegionIndexFactory factory = [rtree]() -> std::unique_ptr<index::RegionIndex> {
    if (rtree) return std::make_unique<index::RTreeIndex>();
    return std::make_unique<index::ArrayRegionIndex>();
  };
  cache_ = std::make_unique<CacheStore>(factory, config_.cache_shards,
                                        config_.max_cache_bytes,
                                        config_.replacement);
  breaker_ = std::make_unique<net::CircuitBreaker>(config_.breaker, clock_);
  if (config_.async_origin) {
    net::OriginChannelOptions async_options;
    async_options.num_dispatchers = config_.origin_dispatchers;
    async_options.coalesce = config_.coalesce_remainders;
    origin_async_ = std::make_unique<net::OriginChannel>(origin_, async_options);
  }
  channel_retries_baseline_ = origin_->retry_stats().retries;
  if (config_.storage.enable) {
    TierConfig tier;
    tier.freeze_idle_micros = config_.storage.freeze_idle_micros;
    tier.spill_idle_micros = config_.storage.spill_idle_micros;
    tier.spill_dir = config_.storage.spill_dir;
    tier.spill_max_bytes = config_.storage.spill_max_bytes;
    cache_->set_tier_config(tier);
    if (config_.storage.background_maintenance) {
      util::ThreadPool::Options pool_options;
      pool_options.num_threads = 1;
      maintenance_pool_ = std::make_unique<util::ThreadPool>(pool_options);
    }
  }
  RegisterInstruments();
  if (config_.storage.enable && config_.storage.restore_on_start &&
      !config_.storage.snapshot_path.empty()) {
    // A missing snapshot is a cold start, not an error; anything else
    // (corruption, bad version) is surfaced as a counter and logged, and
    // the proxy starts cold rather than half-restored.
    auto restored = RestoreSnapshot(config_.storage.snapshot_path);
    if (!restored.ok() &&
        restored.status().code() != util::StatusCode::kNotFound) {
      snapshot_errors_.fetch_add(1, kRelaxed);
      FNPROXY_LOG(kWarning) << "snapshot restore failed: "
                            << restored.status().ToString();
    }
  }
}

FunctionProxy::~FunctionProxy() {
  // Drain in-flight maintenance first so the shutdown snapshot sees a
  // quiescent cache and no sweep races the spill-directory teardown.
  maintenance_pool_.reset();
  if (config_.storage.enable && !config_.storage.snapshot_path.empty()) {
    WriteSnapshotAndCount();
  }
}

void FunctionProxy::RegisterInstruments() {
  // Counter families. Series of one family must be registered contiguously
  // so RenderPrometheus emits one HELP/TYPE header per family.
  ins_.requests =
      registry_.AddCounter("fnproxy_requests_total", "Requests handled");
  ins_.template_requests = registry_.AddCounter(
      "fnproxy_template_requests_total", "Requests matching a registered template");

  const char* outcome_help = "Template-request outcomes by relationship handling";
  ins_.exact_hits = registry_.AddCounter("fnproxy_cache_outcomes_total",
                                         outcome_help, {{"outcome", "exact_hit"}});
  ins_.containment_hits =
      registry_.AddCounter("fnproxy_cache_outcomes_total", outcome_help,
                           {{"outcome", "containment_hit"}});
  ins_.region_containments =
      registry_.AddCounter("fnproxy_cache_outcomes_total", outcome_help,
                           {{"outcome", "region_containment"}});
  ins_.overlaps_handled =
      registry_.AddCounter("fnproxy_cache_outcomes_total", outcome_help,
                           {{"outcome", "overlap"}});
  ins_.misses = registry_.AddCounter("fnproxy_cache_outcomes_total",
                                     outcome_help, {{"outcome", "miss"}});

  const char* origin_help = "Origin round trips initiated, by endpoint";
  ins_.origin_form_requests = registry_.AddCounter(
      "fnproxy_origin_requests_total", origin_help, {{"endpoint", "form"}});
  ins_.origin_sql_requests = registry_.AddCounter(
      "fnproxy_origin_requests_total", origin_help, {{"endpoint", "sql"}});
  ins_.origin_failures =
      registry_.AddCounter("fnproxy_origin_failures_total",
                           "Origin round trips failed after all retries");
  ins_.breaker_open_rejections = registry_.AddCounter(
      "fnproxy_breaker_open_rejections_total",
      "Requests short-circuited without a round trip by an open breaker");

  const char* degraded_help = "Answers served in degraded mode, by kind";
  ins_.degraded_full = registry_.AddCounter("fnproxy_degraded_answers_total",
                                            degraded_help, {{"kind", "full"}});
  ins_.degraded_partial = registry_.AddCounter(
      "fnproxy_degraded_answers_total", degraded_help, {{"kind", "partial"}});
  ins_.degraded_unavailable =
      registry_.AddCounter("fnproxy_degraded_answers_total", degraded_help,
                           {{"kind", "unavailable"}});

  ins_.inflight_collapsed = registry_.AddCounter(
      "fnproxy_inflight_collapsed_total",
      "Requests served off another request's in-flight origin fetch");
  const char* shed_help =
      "Requests shed by admission control, by reason";
  ins_.shed_overload = registry_.AddCounter("fnproxy_shed_total", shed_help,
                                            {{"reason", "overload"}});
  ins_.shed_origin_backlog = registry_.AddCounter(
      "fnproxy_shed_total", shed_help, {{"reason", "origin_backlog"}});
  ins_.shed_deadline = registry_.AddCounter("fnproxy_shed_total", shed_help,
                                            {{"reason", "deadline"}});
  ins_.deadline_exceeded = registry_.AddCounter(
      "fnproxy_deadline_exceeded_total",
      "Requests whose client deadline expired before an answer could fit");

  const char* peer_lookup_help =
      "Probes sent to the owning tier sibling on a local miss, by outcome";
  ins_.peer_lookup_hit = registry_.AddCounter(
      "fnproxy_peer_lookups_total", peer_lookup_help, {{"outcome", "hit"}});
  ins_.peer_lookup_flight = registry_.AddCounter(
      "fnproxy_peer_lookups_total", peer_lookup_help, {{"outcome", "flight"}});
  ins_.peer_lookup_lead = registry_.AddCounter(
      "fnproxy_peer_lookups_total", peer_lookup_help, {{"outcome", "lead"}});
  ins_.peer_lookup_miss = registry_.AddCounter(
      "fnproxy_peer_lookups_total", peer_lookup_help, {{"outcome", "miss"}});
  ins_.peer_lookup_error = registry_.AddCounter(
      "fnproxy_peer_lookups_total", peer_lookup_help, {{"outcome", "error"}});
  ins_.peer_lookup_breaker_open =
      registry_.AddCounter("fnproxy_peer_lookups_total", peer_lookup_help,
                           {{"outcome", "breaker_open"}});
  ins_.peer_failures = registry_.AddCounter(
      "fnproxy_peer_failures_total",
      "Peer round trips that failed or returned an unusable body");
  const char* peer_entries_help =
      "Cache entries exchanged with tier siblings, by direction";
  ins_.peer_entries_pushed = registry_.AddCounter(
      "fnproxy_peer_entries_total", peer_entries_help,
      {{"direction", "pushed"}});
  ins_.peer_entries_received = registry_.AddCounter(
      "fnproxy_peer_entries_total", peer_entries_help,
      {{"direction", "received"}});
  ins_.peer_flight_joins = registry_.AddCounter(
      "fnproxy_peer_flight_joins_total",
      "Remote probers served off this proxy's in-flight origin fetches");

  const char* busy_help =
      "Modeled virtual-time spent per phase (exact computed costs)";
  ins_.check_micros = registry_.AddCounter("fnproxy_phase_busy_micros_total",
                                           busy_help, {{"phase", "check"}});
  ins_.local_eval_micros = registry_.AddCounter(
      "fnproxy_phase_busy_micros_total", busy_help, {{"phase", "local_eval"}});
  ins_.merge_micros = registry_.AddCounter("fnproxy_phase_busy_micros_total",
                                           busy_help, {{"phase", "merge"}});

  // Latency histograms.
  ins_.request_duration = registry_.AddHistogram(
      "fnproxy_request_duration_micros",
      "End-to-end request latency on the simulated clock");
  ins_.request_wall =
      registry_.AddHistogram("fnproxy_request_wall_micros",
                             "End-to-end request latency on the wall clock");

  const char* phase_help =
      "Per-phase virtual-time latency through the proxy pipeline";
  struct PhaseSlot {
    const char* label;
    obs::Histogram** slot;
  } slots[] = {
      {"template_match", &ins_.phase_template_match},
      {"cache_lookup", &ins_.phase_cache_lookup},
      {"local_eval", &ins_.phase_local_eval},
      {"remainder_build", &ins_.phase_remainder_build},
      {"origin_roundtrip", &ins_.phase_origin_roundtrip},
      {"merge", &ins_.phase_merge},
      {"serialize", &ins_.phase_serialize},
      {"cache_admit", &ins_.phase_cache_admit},
      {"peer_lookup", &ins_.phase_peer_lookup},
      {"spill", &ins_.phase_spill},
      {"restore", &ins_.phase_restore},
  };
  for (const PhaseSlot& s : slots) {
    *s.slot = registry_.AddHistogram("fnproxy_phase_duration_micros",
                                     phase_help, {{"phase", s.label}});
  }
  for (size_t i = 0; i < 5; ++i) {
    ins_.region_compare[i] = registry_.AddHistogram(
        "fnproxy_region_compare_micros",
        "Relationship-check cost by resulting region relation",
        {{"relation",
          geometry::RegionRelationName(static_cast<RegionRelation>(i))}});
  }

  // Render-time callbacks: the source of truth stays with the owning
  // subsystem; /metrics reads it when scraped, so the two cannot diverge.
  CacheStore* cache = cache_.get();
  registry_.AddCallback("fnproxy_cache_entries", "Cached results currently held",
                        /*is_counter=*/false, {},
                        [cache] { return static_cast<double>(cache->num_entries()); });
  registry_.AddCallback("fnproxy_cache_bytes", "Bytes held by the result cache",
                        /*is_counter=*/false, {},
                        [cache] { return static_cast<double>(cache->bytes_used()); });
  registry_.AddCallback("fnproxy_cache_evictions_total",
                        "Entries evicted by the replacement policy",
                        /*is_counter=*/true, {},
                        [cache] { return static_cast<double>(cache->evictions()); });

  // Storage tier (docs/STORAGE.md): entry counts per tier, compression
  // ratio inputs, tier transitions, spill health, and snapshot lifecycle.
  const char* tier_help = "Cache entries currently resident per storage tier";
  registry_.AddCallback("fnproxy_storage_tier_entries", tier_help,
                        /*is_counter=*/false, {{"tier", "hot"}}, [cache] {
                          size_t total = cache->num_entries();
                          size_t cold = cache->frozen_entries() +
                                        cache->spilled_entries();
                          return static_cast<double>(total > cold ? total - cold
                                                                  : 0);
                        });
  registry_.AddCallback("fnproxy_storage_tier_entries", tier_help,
                        /*is_counter=*/false, {{"tier", "frozen"}}, [cache] {
                          return static_cast<double>(cache->frozen_entries());
                        });
  registry_.AddCallback("fnproxy_storage_tier_entries", tier_help,
                        /*is_counter=*/false, {{"tier", "spilled"}}, [cache] {
                          return static_cast<double>(cache->spilled_entries());
                        });
  const char* transition_help = "Entry tier transitions, by kind";
  registry_.AddCallback("fnproxy_storage_tier_transitions_total",
                        transition_help, /*is_counter=*/true,
                        {{"transition", "freeze"}}, [cache] {
                          return static_cast<double>(cache->freezes());
                        });
  registry_.AddCallback("fnproxy_storage_tier_transitions_total",
                        transition_help, /*is_counter=*/true,
                        {{"transition", "thaw"}}, [cache] {
                          return static_cast<double>(cache->thaws());
                        });
  registry_.AddCallback("fnproxy_storage_tier_transitions_total",
                        transition_help, /*is_counter=*/true,
                        {{"transition", "spill"}}, [cache] {
                          return static_cast<double>(cache->spills());
                        });
  registry_.AddCallback("fnproxy_storage_tier_transitions_total",
                        transition_help, /*is_counter=*/true,
                        {{"transition", "fault"}}, [cache] {
                          return static_cast<double>(cache->spill_faults());
                        });
  const char* frozen_bytes_help =
      "Bytes of frozen entries before and after columnar encoding";
  registry_.AddCallback("fnproxy_storage_frozen_bytes", frozen_bytes_help,
                        /*is_counter=*/false, {{"kind", "raw"}}, [cache] {
                          return static_cast<double>(cache->frozen_raw_bytes());
                        });
  registry_.AddCallback("fnproxy_storage_frozen_bytes", frozen_bytes_help,
                        /*is_counter=*/false, {{"kind", "encoded"}}, [cache] {
                          return static_cast<double>(
                              cache->frozen_encoded_bytes());
                        });
  registry_.AddCallback("fnproxy_storage_spill_bytes",
                        "Bytes of spilled segment files on disk",
                        /*is_counter=*/false, {}, [cache] {
                          return static_cast<double>(cache->spill_bytes_used());
                        });
  registry_.AddCallback(
      "fnproxy_storage_spill_io_errors_total",
      "Spill files that failed to write, read, or parse (entry dropped)",
      /*is_counter=*/true, {},
      [cache] { return static_cast<double>(cache->spill_io_errors()); });
  registry_.AddCallback("fnproxy_storage_sweeps_total",
                        "Tier maintenance sweeps (freeze + spill passes) run",
                        /*is_counter=*/true, {}, [this] {
                          return static_cast<double>(sweeps_run_.load(kRelaxed));
                        });
  const char* snapshot_help = "Warm-restart snapshot writes, by outcome";
  registry_.AddCallback("fnproxy_storage_snapshot_writes_total", snapshot_help,
                        /*is_counter=*/true, {{"outcome", "ok"}}, [this] {
                          return static_cast<double>(
                              snapshots_written_.load(kRelaxed));
                        });
  registry_.AddCallback("fnproxy_storage_snapshot_writes_total", snapshot_help,
                        /*is_counter=*/true, {{"outcome", "error"}}, [this] {
                          return static_cast<double>(
                              snapshot_errors_.load(kRelaxed));
                        });
  registry_.AddCallback("fnproxy_storage_restored_entries_total",
                        "Cache entries restored from a warm-restart snapshot",
                        /*is_counter=*/true, {}, [this] {
                          return static_cast<double>(
                              restored_entries_.load(kRelaxed));
                        });

  net::CircuitBreaker* breaker = breaker_.get();
  registry_.AddCallback(
      "fnproxy_breaker_state",
      "Circuit breaker state (0 closed, 1 open, 2 half-open)",
      /*is_counter=*/false, {},
      [breaker] { return static_cast<double>(breaker->state()); });
  registry_.AddCallback("fnproxy_breaker_transitions_total",
                        "Circuit breaker state transitions",
                        /*is_counter=*/true, {},
                        [breaker] { return static_cast<double>(breaker->transitions()); });
  registry_.AddCallback("fnproxy_breaker_failure_rate",
                        "Failure rate over the breaker's sliding window",
                        /*is_counter=*/false, {},
                        [breaker] { return breaker->FailureRate(); });

  net::SimulatedChannel* origin = origin_;
  registry_.AddCallback(
      "fnproxy_origin_channel_attempts_total",
      "Wire attempts on the origin channel (each retry counts)",
      /*is_counter=*/true, {},
      [origin] { return static_cast<double>(origin->retry_stats().attempts); });
  registry_.AddCallback(
      "fnproxy_origin_channel_retries_total",
      "Retry attempts on the origin channel", /*is_counter=*/true, {},
      [origin] { return static_cast<double>(origin->retry_stats().retries); });
  registry_.AddCallback(
      "fnproxy_origin_channel_timeouts_total",
      "Per-attempt timeouts on the origin channel", /*is_counter=*/true, {},
      [origin] { return static_cast<double>(origin->retry_stats().timeouts); });
  registry_.AddCallback(
      "fnproxy_origin_channel_backoff_micros_total",
      "Virtual time spent in retry backoff on the origin channel",
      /*is_counter=*/true, {},
      [origin] {
        return static_cast<double>(origin->retry_stats().backoff_micros_total);
      });
  registry_.AddCallback(
      "fnproxy_origin_channel_bytes_total", "Bytes moved on the origin channel",
      /*is_counter=*/true, {{"direction", "sent"}},
      [origin] { return static_cast<double>(origin->total_bytes_sent()); });
  registry_.AddCallback(
      "fnproxy_origin_channel_bytes_total", "Bytes moved on the origin channel",
      /*is_counter=*/true, {{"direction", "received"}},
      [origin] { return static_cast<double>(origin->total_bytes_received()); });

  // Async origin channel (remainder pipelining + batch coalescing). The
  // families render 0 when async_origin is off so the catalog is stable
  // across configurations.
  net::OriginChannel* async_channel = origin_async_.get();
  registry_.AddCallback(
      "fnproxy_origin_async_requests_total",
      "Remainder fetches issued through the async origin channel",
      /*is_counter=*/true, {}, [async_channel] {
        return async_channel == nullptr
                   ? 0.0
                   : static_cast<double>(async_channel->async_requests());
      });
  registry_.AddCallback(
      "fnproxy_origin_batches_total",
      "Coalesced /sql/batch wire requests sent to the origin",
      /*is_counter=*/true, {}, [async_channel] {
        return async_channel == nullptr
                   ? 0.0
                   : static_cast<double>(async_channel->batches_sent());
      });
  registry_.AddCallback(
      "fnproxy_origin_batched_requests_total",
      "Remainder fetches that travelled inside a coalesced batch",
      /*is_counter=*/true, {}, [async_channel] {
        return async_channel == nullptr
                   ? 0.0
                   : static_cast<double>(async_channel->requests_batched());
      });

  registry_.AddCallback(
      "fnproxy_degraded_coverage_served_total",
      "Sum of coverage fractions over degraded partial answers",
      /*is_counter=*/true, {}, [this] {
        util::MutexLock lock(records_mu_);
        return coverage_served_;
      });
  registry_.AddCallback(
      "fnproxy_traces_recorded_total", "Completed query traces recorded",
      /*is_counter=*/true, {},
      [this] { return static_cast<double>(trace_ring_.total_pushed()); });

  registry_.AddCallback(
      "fnproxy_queue_depth",
      "Requests concurrently admitted (admission-control gauge)",
      /*is_counter=*/false, {}, [this] {
        return static_cast<double>(inflight_requests_.load(kRelaxed));
      });
  registry_.AddCallback(
      "fnproxy_inflight_flights",
      "Origin fetches currently in flight in the single-flight table",
      /*is_counter=*/false, {},
      [this] { return static_cast<double>(inflight_.inflight()); });
}

ProxyStats FunctionProxy::stats() const {
  ProxyStats s;
  s.requests = ins_.requests->Value();
  s.template_requests = ins_.template_requests->Value();
  s.exact_hits = ins_.exact_hits->Value();
  s.containment_hits = ins_.containment_hits->Value();
  s.region_containments = ins_.region_containments->Value();
  s.overlaps_handled = ins_.overlaps_handled->Value();
  s.misses = ins_.misses->Value();
  s.origin_form_requests = ins_.origin_form_requests->Value();
  s.origin_sql_requests = ins_.origin_sql_requests->Value();
  s.origin_failures = ins_.origin_failures->Value();
  s.breaker_open_rejections = ins_.breaker_open_rejections->Value();
  s.degraded_full = ins_.degraded_full->Value();
  s.degraded_partial = ins_.degraded_partial->Value();
  s.degraded_unavailable = ins_.degraded_unavailable->Value();
  s.collapsed = ins_.inflight_collapsed->Value();
  s.shed = ins_.shed_overload->Value() + ins_.shed_origin_backlog->Value() +
           ins_.shed_deadline->Value();
  s.deadline_exceeded = ins_.deadline_exceeded->Value();
  s.peer_lookups = ins_.peer_lookup_hit->Value() +
                   ins_.peer_lookup_flight->Value() +
                   ins_.peer_lookup_lead->Value() +
                   ins_.peer_lookup_miss->Value() +
                   ins_.peer_lookup_error->Value() +
                   ins_.peer_lookup_breaker_open->Value();
  s.peer_hits =
      ins_.peer_lookup_hit->Value() + ins_.peer_lookup_flight->Value();
  s.peer_failures = ins_.peer_failures->Value();
  s.check_micros = static_cast<int64_t>(ins_.check_micros->Value());
  s.local_eval_micros = static_cast<int64_t>(ins_.local_eval_micros->Value());
  s.merge_micros = static_cast<int64_t>(ins_.merge_micros->Value());
  // transitions/retries are computed live from the breaker and channel; a
  // warm-restarted proxy adds the snapshotted baselines so the series
  // continues where the previous process left off.
  s.breaker_transitions =
      breaker_->transitions() + restored_breaker_transitions_.load(kRelaxed);
  s.origin_retries = origin_->retry_stats().retries -
                     channel_retries_baseline_ +
                     restored_origin_retries_.load(kRelaxed);
  {
    util::MutexLock lock(records_mu_);
    s.coverage_served = coverage_served_;
    s.records = records_;
  }
  return s;
}

bool FunctionProxy::OriginAllowed() {
  return !config_.breaker.enabled || breaker_->Allow();
}

bool FunctionProxy::BreakerOpen() const {
  return config_.breaker.enabled && breaker_->state() == net::BreakerState::kOpen;
}

void FunctionProxy::NoteOriginOutcome(bool usable) {
  if (usable) {
    breaker_->RecordSuccess();
  } else {
    ins_.origin_failures->Increment();
    breaker_->RecordFailure();
  }
}

bool FunctionProxy::OriginBacklogged() const {
  if (config_.max_queue_depth == 0) return false;
  double watermark = config_.origin_shed_watermark *
                     static_cast<double>(config_.max_queue_depth);
  return static_cast<double>(inflight_requests_.load(kRelaxed)) > watermark;
}

bool FunctionProxy::DeadlineTooTightForOrigin(int64_t deadline_micros,
                                              size_t request_bytes) const {
  if (deadline_micros == 0) return false;
  int64_t remaining = deadline_micros - clock_->NowMicros();
  if (remaining <= 0) return true;
  // The cheapest possible origin round trip: ship the request, get back a
  // minimal response. If even that cannot fit, the WAN trip is doomed and
  // the budget is better spent on a local degraded answer.
  const net::LinkConfig& link = origin_->link();
  int64_t floor = link.TransferMicros(request_bytes) + link.TransferMicros(64);
  return remaining < floor;
}

HttpResponse FunctionProxy::Unavailable(const std::string& reason) {
  HttpResponse response;
  response.status_code = 503;
  response.body = "<Error code=\"503\" reason=\"" + reason + "\"/>\n";
  int64_t cooldown = breaker_->CooldownRemainingMicros();
  int64_t seconds = cooldown > 0 ? (cooldown + 999'999) / 1'000'000
                                 : config_.retry_after_seconds;
  response.headers["Retry-After"] = std::to_string(seconds);
  response.headers["X-Shed-Reason"] = reason;
  return response;
}

HttpResponse FunctionProxy::Forward(const HttpRequest& request,
                                    int64_t deadline_micros,
                                    QueryRecord* record,
                                    obs::QueryTrace* trace) {
  if (!OriginAllowed()) {
    ins_.breaker_open_rejections->Increment();
    ins_.degraded_unavailable->Increment();
    record->degraded = true;
    return Unavailable("origin-unreachable");
  }
  if (OriginBacklogged()) {
    ins_.shed_origin_backlog->Increment();
    record->shed = true;
    return Unavailable("origin-backlog");
  }
  if (DeadlineTooTightForOrigin(deadline_micros, request.ByteSize())) {
    ins_.deadline_exceeded->Increment();
    ins_.shed_deadline->Increment();
    record->shed = true;
    return Unavailable("deadline-exceeded");
  }
  record->contacted_origin = true;
  ins_.origin_form_requests->Increment();
  obs::ScopedSpan span(trace, "origin_roundtrip", clock_,
                       ins_.phase_origin_roundtrip);
  span.AddAttr("endpoint", "form");
  HttpResponse response = origin_->RoundTrip(request, deadline_micros);
  span.AddAttr("status", std::to_string(response.status_code));
  NoteOriginOutcome(!net::RetryPolicy::Retryable(response));
  if (response.ok()) {
    record->tuples_total = ExtractRowCount(response.body);
  }
  return response;
}

StatusOr<Table> FunctionProxy::FetchFromOrigin(const HttpRequest& request,
                                               int64_t deadline_micros,
                                               QueryRecord* record,
                                               obs::QueryTrace* trace) {
  if (!OriginAllowed()) {
    ins_.breaker_open_rejections->Increment();
    return Status::Unavailable("circuit breaker open");
  }
  // kResourceExhausted is this layer's deadline marker: the caller turns it
  // into a deadline-reasoned degraded answer instead of blaming the origin.
  if (DeadlineTooTightForOrigin(deadline_micros, request.ByteSize())) {
    return Status::ResourceExhausted("deadline cannot fit an origin trip");
  }
  record->contacted_origin = true;
  ins_.origin_form_requests->Increment();
  obs::ScopedSpan span(trace, "origin_roundtrip", clock_,
                       ins_.phase_origin_roundtrip);
  span.AddAttr("endpoint", "form");
  HttpResponse response = origin_->RoundTrip(request, deadline_micros);
  span.AddAttr("status", std::to_string(response.status_code));
  if (!response.ok()) {
    bool origin_down = net::RetryPolicy::Retryable(response);
    NoteOriginOutcome(!origin_down);
    std::string message = "origin error " +
                          std::to_string(response.status_code) + ": " +
                          response.body;
    return origin_down ? Status::Unavailable(std::move(message))
                       : Status::Internal(std::move(message));
  }
  // A 200 whose body does not parse as a result table is as unusable as a
  // 500 — it must count against the origin and never reach the cache.
  auto table = sql::TableFromXml(response.body);
  NoteOriginOutcome(table.ok());
  if (!table.ok()) return table.status();
  ChargeMicros(config_.costs.per_origin_response_tuple_us *
               static_cast<double>(table->num_rows()));
  span.AddAttr("rows", std::to_string(table->num_rows()));
  return table;
}

StatusOr<Table> FunctionProxy::FetchRemainder(const sql::SelectStatement& stmt,
                                              int64_t deadline_micros,
                                              QueryRecord* record,
                                              obs::QueryTrace* trace) {
  if (!OriginAllowed()) {
    ins_.breaker_open_rejections->Increment();
    return Status::Unavailable("circuit breaker open");
  }
  HttpRequest request;
  request.path = "/sql";
  request.query_params["q"] = sql::SelectToSql(stmt);
  if (DeadlineTooTightForOrigin(deadline_micros, request.ByteSize())) {
    return Status::ResourceExhausted("deadline cannot fit an origin trip");
  }
  record->contacted_origin = true;
  ins_.origin_sql_requests->Increment();
  obs::ScopedSpan span(trace, "origin_roundtrip", clock_,
                       ins_.phase_origin_roundtrip);
  span.AddAttr("endpoint", "sql");
  HttpResponse response = origin_->RoundTrip(request, deadline_micros);
  span.AddAttr("status", std::to_string(response.status_code));
  if (!response.ok()) {
    bool origin_down = net::RetryPolicy::Retryable(response);
    NoteOriginOutcome(!origin_down);
    std::string message = "origin /sql error " +
                          std::to_string(response.status_code) + ": " +
                          response.body;
    return origin_down ? Status::Unavailable(std::move(message))
                       : Status::Internal(std::move(message));
  }
  auto table = sql::TableFromXml(response.body);
  NoteOriginOutcome(table.ok());
  if (!table.ok()) return table.status();
  ChargeMicros(config_.costs.per_origin_response_tuple_us *
               static_cast<double>(table->num_rows()));
  span.AddAttr("rows", std::to_string(table->num_rows()));
  return table;
}

StatusOr<FunctionProxy::RemainderFlight> FunctionProxy::StartRemainder(
    const sql::SelectStatement& stmt, int64_t deadline_micros,
    QueryRecord* record, obs::QueryTrace* trace,
    std::optional<obs::ScopedSpan>* origin_span) {
  if (!OriginAllowed()) {
    ins_.breaker_open_rejections->Increment();
    return Status::Unavailable("circuit breaker open");
  }
  HttpRequest request;
  request.path = "/sql";
  request.query_params["q"] = sql::SelectToSql(stmt);
  if (DeadlineTooTightForOrigin(deadline_micros, request.ByteSize())) {
    return Status::ResourceExhausted("deadline cannot fit an origin trip");
  }
  record->contacted_origin = true;
  ins_.origin_sql_requests->Increment();
  // Span first, then enqueue: the start stamp must be read before a
  // dispatcher thread can begin advancing the shared virtual clock.
  origin_span->emplace(trace, "origin_roundtrip", clock_,
                       ins_.phase_origin_roundtrip);
  (*origin_span)->AddAttr("endpoint", "sql");
  (*origin_span)->AddAttr("pipelined", "true");
  RemainderFlight flight;
  flight.response =
      origin_async_->RoundTripAsync(std::move(request), deadline_micros);
  return flight;
}

StatusOr<Table> FunctionProxy::AwaitRemainder(RemainderFlight flight,
                                              obs::ScopedSpan* span) {
  HttpResponse response = flight.response.get();
  if (span != nullptr) {
    span->AddAttr("status", std::to_string(response.status_code));
  }
  if (!response.ok()) {
    bool origin_down = net::RetryPolicy::Retryable(response);
    NoteOriginOutcome(!origin_down);
    std::string message = "origin /sql error " +
                          std::to_string(response.status_code) + ": " +
                          response.body;
    return origin_down ? Status::Unavailable(std::move(message))
                       : Status::Internal(std::move(message));
  }
  auto table = sql::TableFromXml(response.body);
  NoteOriginOutcome(table.ok());
  if (!table.ok()) return table.status();
  ChargeMicros(config_.costs.per_origin_response_tuple_us *
               static_cast<double>(table->num_rows()));
  if (span != nullptr) {
    span->AddAttr("rows", std::to_string(table->num_rows()));
  }
  return table;
}

HttpResponse FunctionProxy::Respond(const Table& table,
                                    obs::QueryTrace* trace) {
  obs::ScopedSpan span(trace, "serialize", clock_, ins_.phase_serialize);
  span.AddAttr("rows", std::to_string(table.num_rows()));
  ChargeMicros(config_.costs.per_response_tuple_us *
               static_cast<double>(table.num_rows()));
  HttpResponse response;
  response.body = sql::TableToXml(table);
  return response;
}

HttpResponse FunctionProxy::Respond(const sql::ColumnarTable& table,
                                    obs::QueryTrace* trace) {
  obs::ScopedSpan span(trace, "serialize", clock_, ins_.phase_serialize);
  span.AddAttr("rows", std::to_string(table.num_rows()));
  ChargeMicros(config_.costs.per_response_tuple_us *
               static_cast<double>(table.num_rows()));
  HttpResponse response;
  response.body = sql::TableToXml(table);
  return response;
}

HttpResponse FunctionProxy::Respond(const sql::ColumnarTable& table,
                                    const std::vector<uint32_t>& selection,
                                    obs::QueryTrace* trace) {
  obs::ScopedSpan span(trace, "serialize", clock_, ins_.phase_serialize);
  span.AddAttr("rows", std::to_string(selection.size()));
  ChargeMicros(config_.costs.per_response_tuple_us *
               static_cast<double>(selection.size()));
  HttpResponse response;
  response.body = sql::TableToXml(table, sql::ResultXmlAttrs{},
                                  selection.data(), selection.size());
  return response;
}

HttpResponse FunctionProxy::RespondPartial(
    const sql::ColumnarTable& table, const std::vector<uint32_t>& selection,
    double coverage, const std::string& reason, obs::QueryTrace* trace) {
  obs::ScopedSpan span(trace, "serialize", clock_, ins_.phase_serialize);
  span.AddAttr("rows", std::to_string(selection.size()));
  span.AddAttr("partial", "true");
  ChargeMicros(config_.costs.per_response_tuple_us *
               static_cast<double>(selection.size()));
  sql::ResultXmlAttrs attrs;
  attrs.partial = true;
  attrs.coverage = coverage;
  attrs.degraded_reason = reason;
  HttpResponse response;
  response.body =
      sql::TableToXml(table, attrs, selection.data(), selection.size());
  return response;
}

double FunctionProxy::DescriptionCostMicros(size_t comparisons) const {
  double factor = config_.use_rtree_description
                      ? config_.costs.rtree_comparison_factor
                      : 1.0;
  return config_.costs.per_description_comparison_us * factor *
         static_cast<double>(comparisons);
}

std::shared_ptr<const CacheEntry> FunctionProxy::CacheResult(
    const QueryTemplate& qt, const std::string& nonspatial_fp,
    const std::string& param_fp, const geometry::Region& region,
    sql::ColumnarTable result,
    const std::vector<std::string>& coordinate_columns, bool truncated,
    obs::QueryTrace* trace) {
  obs::ScopedSpan span(trace, "cache_admit", clock_, ins_.phase_cache_admit);
  span.AddAttr("rows", std::to_string(result.num_rows()));
  // Resolve coordinate columns to contiguous double arrays now, while the
  // entry is still private to this thread; after Insert the entry is frozen
  // behind shared_ptr<const CacheEntry> and scanned concurrently.
  for (const std::string& name : coordinate_columns) {
    auto idx = result.schema().FindColumn(name);
    if (idx.has_value()) {
      (void)result.PrepareNumericView(*idx);
    }
  }
  CacheEntry entry;
  entry.template_id = qt.id();
  entry.nonspatial_fingerprint = nonspatial_fp;
  entry.param_fingerprint = param_fp;
  entry.region = region.Clone();
  entry.result = std::move(result);
  entry.truncated = truncated;
  entry.last_access_micros = clock_->NowMicros();
  entry.access_count = 1;
  size_t comparisons = 0;
  std::shared_ptr<const CacheEntry> snapshot;
  cache_->Insert(std::move(entry), &comparisons, &snapshot);
  ChargeMicros(DescriptionCostMicros(comparisons));
  return snapshot;
}

HttpResponse FunctionProxy::HandlePassive(const HttpRequest& request,
                                          int64_t deadline_micros,
                                          QueryRecord* record,
                                          obs::QueryTrace* trace) {
  std::string key = request.path + "?" + FullParamFingerprint(request.query_params);
  {
    obs::ScopedSpan lookup(trace, "cache_lookup", clock_,
                           ins_.phase_cache_lookup);
    util::MutexLock lock(passive_mu_);
    auto it = passive_items_.find(key);
    if (it != passive_items_.end()) {
      lookup.AddAttr("outcome", "exact_hit");
      it->second.last_access = clock_->NowMicros();
      record->tuples_total = it->second.rows;
      record->tuples_from_cache = it->second.rows;
      ins_.exact_hits->Increment();
      ChargeMicros(config_.costs.per_response_tuple_us *
                   static_cast<double>(it->second.rows));
      HttpResponse response;
      response.body = it->second.body;
      return response;
    }
    lookup.AddAttr("outcome", "miss");
  }
  ins_.misses->Increment();
  HttpResponse response = Forward(request, deadline_micros, record, trace);
  // Admission control: only well-formed result documents from 2xx responses
  // enter the cache — a 200 carrying garbage must not poison future hits.
  if (response.ok() && sql::TableFromXml(response.body).ok()) {
    PassiveItem item;
    item.body = response.body;
    item.rows = record->tuples_total;
    item.bytes = response.body.size() + 128;
    item.last_access = clock_->NowMicros();
    if (config_.max_cache_bytes == 0 || item.bytes <= config_.max_cache_bytes) {
      util::MutexLock lock(passive_mu_);
      while (config_.max_cache_bytes != 0 &&
             passive_bytes_ + item.bytes > config_.max_cache_bytes &&
             !passive_items_.empty()) {
        auto victim = passive_items_.begin();
        for (auto iter = passive_items_.begin(); iter != passive_items_.end();
             ++iter) {
          if (iter->second.last_access < victim->second.last_access) {
            victim = iter;
          }
        }
        passive_bytes_ -= victim->second.bytes;
        passive_items_.erase(victim);
      }
      passive_bytes_ += item.bytes;
      passive_items_.emplace(std::move(key), std::move(item));
    }
  }
  return response;
}

std::optional<HttpResponse> FunctionProxy::CollapseOrLead(
    const QueryTemplate& qt, const FunctionTemplate& ft,
    const geometry::Region& region, const std::string& nonspatial_fp,
    const std::map<std::string, Value>& params, QueryRecord* record,
    obs::QueryTrace* trace, FlightGuard* guard) {
  const bool exact_only = qt.function_dependent_projection();
  // A few rounds: when a leader fails, one of its followers becomes the
  // next round's leader, so a transient leader error wakes the herd one
  // request at a time instead of fanning everyone out to the origin.
  for (int round = 0; round < 3; ++round) {
    SingleFlightTable::Ticket ticket =
        inflight_.JoinOrLead(qt.id(), nonspatial_fp, region);
    if (ticket.leader) {
      *guard = FlightGuard(&inflight_, ticket.token);
      return std::nullopt;
    }
    if (ticket.result.wait_for(std::chrono::milliseconds(
            config_.collapse_wait_millis)) != std::future_status::ready) {
      // Leader wedged past the bound: fetch solo rather than hang. The
      // flight stays registered; its own guard will complete it eventually.
      return std::nullopt;
    }
    FlightOutcome outcome = ticket.result.get();
    if (!outcome.ok || outcome.entry == nullptr) continue;
    const CacheEntry& entry = *outcome.entry;
    const bool equal = geometry::Equals(*entry.region, region);
    // Truncated (TOP-cut) entries serve exact regions only, and templates
    // with function-computed projections cannot reuse a larger region's
    // tuples (the computed values would be stale) — fetch solo instead.
    if (!equal && (exact_only || entry.truncated)) return std::nullopt;
    ins_.inflight_collapsed->Increment();
    record->collapsed = true;
    if (equal) {
      record->tuples_total = entry.result.num_rows();
      record->tuples_from_cache = entry.result.num_rows();
      return Respond(entry.result, trace);
    }
    // The leader's region strictly contains ours: local spatial selection
    // over the admitted entry, exactly the containment-hit path.
    obs::ScopedSpan eval(trace, "local_eval", clock_, ins_.phase_local_eval);
    auto selected =
        SelectInRegion(entry.result, region, ft.coordinate_columns());
    if (!selected.ok()) return std::nullopt;
    double eval_micros = config_.costs.per_cached_tuple_scan_us *
                         static_cast<double>(selected->tuples_scanned);
    ins_.local_eval_micros->Increment(static_cast<uint64_t>(eval_micros));
    ChargeMicros(eval_micros);
    eval.AddAttr("tuples_scanned", std::to_string(selected->tuples_scanned));
    auto stmt = qt.Instantiate(params);
    if (!stmt.ok()) return std::nullopt;
    auto final_selection =
        ApplyOrderAndTop(entry.result, std::move(selected->selection), *stmt);
    eval.Finish();
    if (!final_selection.ok()) return std::nullopt;
    record->tuples_total = final_selection->size();
    record->tuples_from_cache = final_selection->size();
    return Respond(entry.result, *final_selection, trace);
  }
  return std::nullopt;  // Rounds exhausted: fetch solo without leading.
}

HttpResponse FunctionProxy::HandleActive(const HttpRequest& request,
                                         const QueryTemplate& qt,
                                         const FunctionTemplate& ft,
                                         int64_t deadline_micros,
                                         QueryRecord* record,
                                         obs::QueryTrace* trace) {
  // --- Instantiate: parameters, region, fingerprints. ---
  std::map<std::string, Value> params;
  for (const auto& [key, text] : request.query_params) {
    params[key] = sql::ParseValueFromText(text);
  }
  auto args = qt.FunctionArgs(params);
  if (!args.ok()) {
    return Forward(request, deadline_micros, record, trace);
  }
  auto region_or = ft.BuildRegion(*args);
  if (!region_or.ok()) {
    return Forward(request, deadline_micros, record, trace);
  }
  std::unique_ptr<geometry::Region> region = std::move(*region_or);
  auto nonspatial_fp = qt.NonSpatialFingerprint(params);
  if (!nonspatial_fp.ok()) {
    return Forward(request, deadline_micros, record, trace);
  }
  std::string param_fp = FullParamFingerprint(request.query_params);

  // --- Relationship check against the cache description. The returned
  // snapshots stay valid even if a concurrent admission evicts the entries
  // before this request finishes using them. ---
  obs::ScopedSpan lookup(trace, "cache_lookup", clock_,
                         ins_.phase_cache_lookup);
  RelationshipResult rel =
      CheckRelationship(*cache_, qt.id(), *nonspatial_fp, *region);
  double check_micros =
      DescriptionCostMicros(rel.description_comparisons) +
      config_.costs.per_relation_check_us *
          static_cast<double>(rel.regions_checked);
  ins_.check_micros->Increment(static_cast<uint64_t>(check_micros));
  ChargeMicros(check_micros);
  record->status = rel.status;
  ins_.region_compare[static_cast<size_t>(rel.status)]->Observe(
      static_cast<int64_t>(check_micros));
  lookup.AddAttr("relation", geometry::RegionRelationName(rel.status));
  lookup.AddAttr("description_comparisons",
                 std::to_string(rel.description_comparisons));
  lookup.AddAttr("regions_checked", std::to_string(rel.regions_checked));
  lookup.Finish();

  // Templates whose projection carries function-computed values (e.g. a
  // distance to the query point) cannot reuse cached tuples for a different
  // query region: those values would be stale. Exact matches remain safe.
  const bool exact_only = qt.function_dependent_projection();
  const bool handle_region_containment =
      !exact_only && (config_.mode == CachingMode::kActiveFull ||
                      config_.mode == CachingMode::kActiveRegionContainment);
  const bool handle_overlap =
      !exact_only && config_.mode == CachingMode::kActiveFull;

  switch (rel.status) {
    case RegionRelation::kEqual: {
      // Case (a): serve the cached result directly. The matched snapshot
      // may be frozen or spilled; promote it back to the hot tier first
      // (a vanished entry degrades to the miss path below).
      auto entry = EnsureHot(rel.matched, trace);
      if (entry == nullptr) break;
      ins_.exact_hits->Increment();
      cache_->Touch(entry->id, clock_->NowMicros());
      record->tuples_total = entry->result.num_rows();
      record->tuples_from_cache = entry->result.num_rows();
      if (BreakerOpen()) {
        // Served entirely from cache while the origin is down: a degraded
        // answer that happens to be complete.
        ins_.degraded_full->Increment();
        record->degraded = true;
      }
      return Respond(entry->result, trace);
    }

    case RegionRelation::kContainedBy: {
      if (exact_only) break;  // Stale function-computed values; miss path.
      // Case (b): local spatial selection over the containing entry.
      auto entry = EnsureHot(rel.matched, trace);
      if (entry == nullptr) break;  // Entry vanished cold; miss path.
      ins_.containment_hits->Increment();
      cache_->Touch(entry->id, clock_->NowMicros());
      // Columnar scan: membership kernel over the entry's pre-resolved
      // coordinate arrays, yielding a selection vector that flows through
      // order/top and straight into serialization — no row materialization.
      obs::ScopedSpan eval(trace, "local_eval", clock_, ins_.phase_local_eval);
      auto selected =
          SelectInRegion(entry->result, *region, ft.coordinate_columns());
      if (!selected.ok()) {
        FNPROXY_LOG(kWarning) << "local evaluation failed: "
                              << selected.status().ToString();
        eval.Finish();
        return Forward(request, deadline_micros, record, trace);
      }
      double eval_micros = config_.costs.per_cached_tuple_scan_us *
                           static_cast<double>(selected->tuples_scanned);
      ins_.local_eval_micros->Increment(static_cast<uint64_t>(eval_micros));
      ChargeMicros(eval_micros);
      eval.AddAttr("tuples_scanned", std::to_string(selected->tuples_scanned));
      eval.AddAttr("selected", std::to_string(selected->selection.size()));
      auto stmt = qt.Instantiate(params);
      if (!stmt.ok()) {
        eval.Finish();
        return Forward(request, deadline_micros, record, trace);
      }
      auto final_selection = ApplyOrderAndTop(
          entry->result, std::move(selected->selection), *stmt);
      eval.Finish();
      if (!final_selection.ok()) return Forward(request, deadline_micros, record, trace);
      record->tuples_total = final_selection->size();
      record->tuples_from_cache = final_selection->size();
      if (BreakerOpen()) {
        ins_.degraded_full->Increment();
        record->degraded = true;
      }
      // Not cached: the result is already covered by the container (§3.2).
      return Respond(entry->result, *final_selection, trace);
    }

    case RegionRelation::kContains:
    case RegionRelation::kOverlap: {
      bool is_region_containment = rel.status == RegionRelation::kContains;
      bool handled = is_region_containment ? handle_region_containment
                                           : handle_overlap;
      if (!handled) break;  // Fall through to miss handling below.

      // Origin-bound from here: collapse onto an in-flight leader covering
      // this query, or become the leader — the guard completes the flight as
      // failed on every early exit, so followers are never stranded.
      FlightGuard flight;
      if (config_.collapse_inflight) {
        auto collapsed = CollapseOrLead(qt, ft, *region, *nonspatial_fp,
                                        params, record, trace, &flight);
        if (collapsed.has_value()) return *collapsed;
      }
      // Soft shed: past the watermark, new origin-bound work is refused
      // while the cheap cache-served lane above keeps draining.
      if (OriginBacklogged()) {
        ins_.shed_origin_backlog->Increment();
        record->shed = true;
        return Unavailable("origin-backlog");
      }

      // Cases (c) and the region-containment special case: assemble the
      // probe from cached entries, ship a remainder query, merge. `used`
      // keeps snapshots of every entry contributing tuples to the probe; the
      // probe itself is a list of zero-copy slices (cached table + optional
      // selection vector), never copied row tables.
      //
      // The probe's membership is decided here, before any scan runs: a
      // columnar SelectInRegion can only fail when the entry lacks a
      // coordinate column, so checking schemas up front fixes the
      // excluded-region list — and therefore the remainder SQL — without
      // evaluating anything. That is what lets the async path issue the
      // remainder first and scan during the WAN round trip with output
      // byte-identical to the serialized order.
      //
      // Contributing entries must be tier-hot before their tuples can be
      // sliced; promotion happens here so an unrecoverable (vanished-cold)
      // entry simply drops out of `used` — its region is then not excluded
      // from the remainder, and the origin supplies those tuples instead.
      std::vector<std::shared_ptr<const CacheEntry>> contained_hot;
      contained_hot.reserve(rel.contained.size());
      for (const auto& entry : rel.contained) {
        auto hot = EnsureHot(entry, trace);
        if (hot != nullptr) contained_hot.push_back(std::move(hot));
      }
      std::vector<std::shared_ptr<const CacheEntry>> used = contained_hot;
      std::vector<std::shared_ptr<const CacheEntry>> scan_entries;
      if (handle_overlap) {
        for (const auto& entry : rel.overlapping) {
          bool has_coords = true;
          for (const std::string& name : ft.coordinate_columns()) {
            // Schema survives freezing (cold entries keep a zero-row table
            // with the full schema), so this check needs no promotion.
            if (!entry->result.schema().FindColumn(name).has_value()) {
              has_coords = false;
              break;
            }
          }
          if (!has_coords) continue;  // Same skip the probe scan would take.
          auto hot = EnsureHot(entry, trace);
          if (hot == nullptr) continue;  // Vanished cold; remainder covers it.
          scan_entries.push_back(hot);
          used.push_back(std::move(hot));
        }
      }

      // Remainder query excludes every region whose tuples the probe holds.
      auto stmt = qt.Instantiate(params);
      if (!stmt.ok()) return Forward(request, deadline_micros, record, trace);
      obs::ScopedSpan build(trace, "remainder_build", clock_,
                            ins_.phase_remainder_build);
      std::vector<const geometry::Region*> excluded;
      for (const auto& entry : used) {
        excluded.push_back(entry->region.get());
      }
      build.AddAttr("excluded_regions", std::to_string(excluded.size()));
      auto remainder_stmt =
          BuildRemainderQuery(*stmt, excluded, ft.coordinate_columns());
      build.Finish();
      if (!remainder_stmt.ok()) return Forward(request, deadline_micros, record, trace);

      // Async pipelining: put the remainder on the wire now, scan the cached
      // portion while it is in flight, and merge on completion. The
      // origin_roundtrip span stays open across the overlapped scan (the
      // local_eval span nests inside it), which is exactly the overlap the
      // trace should show.
      const bool pipelined = origin_async_ != nullptr;
      util::Status start_status = util::Status::Ok();
      RemainderFlight rflight;
      std::optional<obs::ScopedSpan> origin_span;
      if (pipelined) {
        auto started = StartRemainder(*remainder_stmt, deadline_micros, record,
                                      trace, &origin_span);
        if (started.ok()) {
          rflight = std::move(*started);
        } else {
          start_status = started.status();
        }
      }

      std::vector<ColumnarSlice> probe_slices;
      std::vector<std::unique_ptr<std::vector<uint32_t>>> probe_selections;
      size_t scanned = 0;
      {
        // No histogram on the span: the dispatcher may be advancing the
        // shared clock during this window (the overlapped round trip), so a
        // clock-delta observation would be nondeterministic. The modeled
        // eval cost is observed directly below — the same value the
        // serialized path's clock delta yields.
        obs::ScopedSpan eval(trace, "local_eval", clock_);
        for (const auto& entry : contained_hot) {
          cache_->Touch(entry->id, clock_->NowMicros());
          // Contained regions lie fully inside the query: their result files
          // are merged wholesale, with no per-tuple spatial filtering.
          probe_slices.push_back({&entry->result, nullptr});
        }
        for (const auto& entry : scan_entries) {
          cache_->Touch(entry->id, clock_->NowMicros());
          auto selected =
              SelectInRegion(entry->result, *region, ft.coordinate_columns());
          if (!selected.ok()) continue;
          scanned += selected->tuples_scanned;
          probe_selections.push_back(std::make_unique<std::vector<uint32_t>>(
              std::move(selected->selection)));
          probe_slices.push_back(
              {&entry->result, probe_selections.back().get()});
        }
        double eval_micros = config_.costs.per_cached_tuple_scan_us *
                             static_cast<double>(scanned);
        ins_.local_eval_micros->Increment(static_cast<uint64_t>(eval_micros));
        ChargeMicros(eval_micros);
        ins_.phase_local_eval->Observe(static_cast<int64_t>(eval_micros));
        eval.AddAttr("tuples_scanned", std::to_string(scanned));
        eval.AddAttr("probe_slices", std::to_string(probe_slices.size()));
      }

      auto remainder_table = [&]() -> StatusOr<Table> {
        if (!pipelined) {
          return FetchRemainder(*remainder_stmt, deadline_micros, record,
                                trace);
        }
        if (!start_status.ok()) return start_status;
        auto table = AwaitRemainder(
            std::move(rflight),
            origin_span.has_value() ? &*origin_span : nullptr);
        if (origin_span.has_value()) origin_span->Finish();
        return table;
      }();
      if (!remainder_table.ok()) {
        // Origin without a remainder facility: fall back to the original
        // query (paper §3.2: "the proxy has no choice but always sends the
        // original query").
        auto full = remainder_table.status().code() ==
                            util::StatusCode::kResourceExhausted
                        ? StatusOr<Table>(remainder_table.status())
                        : FetchFromOrigin(request, deadline_micros, record,
                                          trace);
        if (!full.ok()) {
          // kResourceExhausted is the deadline marker from Fetch*: the
          // remaining client budget cannot fit any origin trip, so the probe
          // is all this request will ever get — serve it now.
          const bool deadline_blocked = full.status().code() ==
                                        util::StatusCode::kResourceExhausted;
          if (deadline_blocked) ins_.deadline_exceeded->Increment();
          // kInternal means the origin answered with a client error — that
          // is not unavailability, so it is not eligible for degradation.
          if (deadline_blocked ||
              (config_.degraded_mode &&
               full.status().code() != util::StatusCode::kInternal)) {
            // Degraded mode: the origin is unreachable, but the probe parts
            // are known-correct tuples for their regions — serve them as a
            // partial answer annotated with the covered volume fraction.
            obs::ScopedSpan merge(trace, "merge", clock_, ins_.phase_merge);
            auto probe_only = MergeDistinctColumnar(probe_slices);
            util::StatusOr<std::vector<uint32_t>> partial_selection =
                probe_only.status();
            if (probe_only.ok()) {
              std::vector<uint32_t> all_rows(probe_only->num_rows());
              std::iota(all_rows.begin(), all_rows.end(), 0u);
              partial_selection =
                  ApplyOrderAndTop(*probe_only, std::move(all_rows), *stmt);
            }
            if (partial_selection.ok()) {
              double partial_merge_micros =
                  config_.costs.per_merge_tuple_us *
                  static_cast<double>(probe_only->num_rows());
              ins_.merge_micros->Increment(
                  static_cast<uint64_t>(partial_merge_micros));
              ChargeMicros(partial_merge_micros);
              merge.AddAttr("rows", std::to_string(probe_only->num_rows()));
              merge.Finish();
              std::vector<const geometry::Region*> part_regions;
              for (const auto& entry : used) {
                part_regions.push_back(entry->region.get());
              }
              double coverage =
                  geometry::EstimateCoverageFraction(*region, part_regions);
              ins_.degraded_partial->Increment();
              {
                util::MutexLock lock(records_mu_);
                coverage_served_ += coverage;
              }
              record->degraded = true;
              record->coverage = coverage;
              record->tuples_total = partial_selection->size();
              record->tuples_from_cache = partial_selection->size();
              return RespondPartial(*probe_only, *partial_selection, coverage,
                                    deadline_blocked ? "deadline-exceeded"
                                                     : "origin-unreachable",
                                    trace);
            }
            merge.Finish();
            if (deadline_blocked) {
              ins_.shed_deadline->Increment();
              record->shed = true;
              return Unavailable("deadline-exceeded");
            }
            ins_.degraded_unavailable->Increment();
            record->degraded = true;
            return Unavailable("origin-unreachable");
          }
          return HttpResponse::MakeError(502, full.status().ToString());
        }
        record->tuples_total = full->num_rows();
        auto admitted = CacheResult(
            qt, *nonspatial_fp, param_fp, *region, *full,
            ft.coordinate_columns(),
            qt.has_top() && stmt->top_n.has_value() &&
                full->num_rows() == static_cast<size_t>(*stmt->top_n),
            trace);
        flight.Fulfill({admitted != nullptr, admitted});
        ins_.misses->Increment();
        return Respond(*full, trace);
      }

      if (is_region_containment) {
        ins_.region_containments->Increment();
      } else {
        ins_.overlaps_handled->Increment();
      }

      // Merge probe slices and the remainder (converted to columnar once).
      obs::ScopedSpan merge(trace, "merge", clock_, ins_.phase_merge);
      auto probe = MergeDistinctColumnar(probe_slices);
      if (!probe.ok()) {
        merge.Finish();
        return Forward(request, deadline_micros, record, trace);
      }
      sql::ColumnarTable remainder_columnar(std::move(*remainder_table));
      auto merged = MergeDistinctColumnar(std::vector<ColumnarSlice>{
          {&*probe, nullptr}, {&remainder_columnar, nullptr}});
      if (!merged.ok()) {
        merge.Finish();
        return Forward(request, deadline_micros, record, trace);
      }
      double merge_micros = config_.costs.per_merge_tuple_us *
                            static_cast<double>(merged->num_rows());
      ins_.merge_micros->Increment(static_cast<uint64_t>(merge_micros));
      ChargeMicros(merge_micros);
      merge.AddAttr("rows", std::to_string(merged->num_rows()));
      merge.Finish();

      record->tuples_total = merged->num_rows();
      record->tuples_from_cache = probe->num_rows();

      // Region containment housekeeping (§3.2): the merged result covers the
      // new, larger region — cache it and drop the subsumed entries.
      if (is_region_containment) {
        for (const auto& entry : rel.contained) {
          size_t removal_comparisons = 0;
          cache_->Remove(entry->id, &removal_comparisons);
          ChargeMicros(DescriptionCostMicros(removal_comparisons));
        }
      }
      // Both cases cache the full merged result (for general overlap the
      // overlapped entries remain — they are not subsumed); the admitted
      // snapshot is what single-flight followers get.
      auto admitted =
          CacheResult(qt, *nonspatial_fp, param_fp, *region, *merged,
                      ft.coordinate_columns(), /*truncated=*/false, trace);
      flight.Fulfill({admitted != nullptr, admitted});

      std::vector<uint32_t> all_rows(merged->num_rows());
      std::iota(all_rows.begin(), all_rows.end(), 0u);
      auto final_selection = ApplyOrderAndTop(*merged, std::move(all_rows), *stmt);
      if (!final_selection.ok()) return Forward(request, deadline_micros, record, trace);
      return Respond(*merged, *final_selection, trace);
    }

    case RegionRelation::kDisjoint:
      break;
  }

  // Case (d) or a case this scheme does not handle: fetch the original
  // query from the origin and cache the result. Origin-bound, so the same
  // overload controls apply: collapse, soft shed, deadline short-circuit.
  FlightGuard flight;
  if (config_.collapse_inflight) {
    auto collapsed = CollapseOrLead(qt, ft, *region, *nonspatial_fp, params,
                                    record, trace, &flight);
    if (collapsed.has_value()) return *collapsed;
  }
  if (OriginBacklogged()) {
    ins_.shed_origin_backlog->Increment();
    record->shed = true;
    return Unavailable("origin-backlog");
  }
  // Cooperative tier: before paying the WAN round trip, probe the sibling
  // owning this region's key space — it may hold a covering entry or an
  // in-flight fetch this request can ride. A "lead" outcome arms the guard:
  // this request is now the tier-wide leader and must push its origin
  // result (or failure) back to the owner on every exit path.
  PeerFlightGuard peer_flight;
  {
    auto peer_served = ProbePeer(qt, ft, *region, *nonspatial_fp, params,
                                 deadline_micros, record, trace, &flight,
                                 &peer_flight);
    if (peer_served.has_value()) return *peer_served;
  }
  ins_.misses->Increment();
  auto table = FetchFromOrigin(request, deadline_micros, record, trace);
  if (!table.ok()) {
    if (table.status().code() == util::StatusCode::kResourceExhausted) {
      // The remaining client budget cannot fit a WAN trip and the cache
      // holds nothing for this region: refuse within the budget.
      ins_.deadline_exceeded->Increment();
      ins_.shed_deadline->Increment();
      record->shed = true;
      return Unavailable("deadline-exceeded");
    }
    if (config_.degraded_mode &&
        table.status().code() != util::StatusCode::kInternal) {
      // The cache contributes nothing to this query: refuse honestly with a
      // Retry-After instead of a bare gateway error.
      ins_.degraded_unavailable->Increment();
      record->degraded = true;
      return Unavailable("origin-unreachable");
    }
    return HttpResponse::MakeError(502, table.status().ToString());
  }
  record->tuples_total = table->num_rows();
  record->tuples_from_cache = 0;
  bool truncated = false;
  if (qt.has_top()) {
    auto stmt = qt.Instantiate(params);
    truncated = stmt.ok() && stmt->top_n.has_value() &&
                table->num_rows() == static_cast<size_t>(*stmt->top_n);
  }
  auto admitted = CacheResult(qt, *nonspatial_fp, param_fp, *region, *table,
                              ft.coordinate_columns(), truncated, trace);
  flight.Fulfill({admitted != nullptr, admitted});
  peer_flight.Fulfill(admitted);
  return Respond(*table, trace);
}

util::Status FunctionProxy::SaveCache(const std::string& directory) const {
  return SaveCacheSnapshot(*cache_, directory);
}

util::StatusOr<size_t> FunctionProxy::LoadCache(const std::string& directory) {
  return LoadCacheSnapshot(directory, cache_.get());
}

HttpResponse FunctionProxy::HandleStats() {
  // Admin endpoint: one consistent snapshot (single pass over the atomics
  // and one lock acquisition), then rendered without re-reading live state.
  // The same registry instruments back GET /metrics, so the two endpoints
  // agree up to scrape-time skew.
  ProxyStats snapshot = stats();
  HttpResponse response;
  response.body = snapshot.ToXml();
  response.body += "<Cache entries=\"" +
                   std::to_string(cache_->num_entries()) + "\" bytes=\"" +
                   std::to_string(cache_->bytes_used()) + "\" evictions=\"" +
                   std::to_string(cache_->evictions()) + "\" description=\"" +
                   (config_.use_rtree_description ? "rtree" : "array") +
                   "\" shards=\"" + std::to_string(cache_->num_shards()) +
                   "\" mode=\"" + CachingModeName(config_.mode) + "\"/>\n";
  char breaker_line[160];
  std::snprintf(breaker_line, sizeof(breaker_line),
                "<CircuitBreaker enabled=\"%d\" state=\"%s\""
                " transitions=\"%llu\" failureRate=\"%.3f\"/>\n",
                config_.breaker.enabled ? 1 : 0,
                net::BreakerStateName(breaker_->state()),
                static_cast<unsigned long long>(snapshot.breaker_transitions),
                breaker_->FailureRate());
  response.body += breaker_line;
  return response;
}

HttpResponse FunctionProxy::HandleMetrics() {
  HttpResponse response;
  response.content_type = "text/plain; version=0.0.4";
  response.body = registry_.RenderPrometheus();
  return response;
}

HttpResponse FunctionProxy::HandleTrace(const HttpRequest& request) {
  size_t last = 16;
  auto it = request.query_params.find("last");
  if (it != request.query_params.end()) {
    last = 0;
    for (char c : it->second) {
      if (c < '0' || c > '9') {
        return HttpResponse::MakeError(400, "last must be a non-negative integer");
      }
      last = last * 10 + static_cast<size_t>(c - '0');
    }
  }
  HttpResponse response;
  response.content_type = "application/json";
  response.body.push_back('[');
  bool first = true;
  for (const auto& trace : trace_ring_.Last(last)) {
    if (!first) response.body.push_back(',');
    first = false;
    trace->AppendJson(&response.body);
  }
  response.body.append("]\n");
  return response;
}

// --- Cooperative tier -------------------------------------------------------

void FunctionProxy::ReapExpiredPeerFlights() {
  std::vector<uint64_t> expired;
  {
    util::MutexLock lock(peer_mu_);
    if (pending_peer_flights_.empty()) return;
    const int64_t now = clock_->NowMicros();
    for (auto it = pending_peer_flights_.begin();
         it != pending_peer_flights_.end();) {
      if (it->second <= now) {
        expired.push_back(it->first);
        it = pending_peer_flights_.erase(it);
      } else {
        ++it;
      }
    }
  }
  // Complete() on an already-completed token is a no-op, so racing with a
  // late /peer/entry push is safe: whichever side wins resolves the flight.
  for (uint64_t token : expired) {
    inflight_.Complete(token, FlightOutcome{});
  }
}

HttpResponse FunctionProxy::HandlePeerLookup(const HttpRequest& request) {
  ReapExpiredPeerFlights();
  const std::string* template_id = PeerHeader(request.headers, "X-Peer-Template");
  const std::string* fp = PeerHeader(request.headers, "X-Peer-Fp");
  if (template_id == nullptr || fp == nullptr) {
    return HttpResponse::MakeError(400, "missing X-Peer-Template / X-Peer-Fp");
  }
  const QueryTemplate* qt = templates_->FindById(*template_id);
  auto region_or = RegionFromXml(request.body);
  if (qt == nullptr || !region_or.ok()) {
    return HttpResponse::MakeError(400, "unknown template or bad region");
  }
  std::unique_ptr<geometry::Region> region = std::move(*region_or);
  const bool exact_only = qt->function_dependent_projection();

  // Serves a covering entry: the full entry (its region and result), never a
  // locally filtered subset — the prober runs its own spatial selection, so
  // this proxy pays serialization only, not the scan.
  auto serve = [&](const CacheEntry& entry,
                   const char* outcome) -> HttpResponse {
    ChargeMicros(config_.costs.per_response_tuple_us *
                 static_cast<double>(entry.result.num_rows()));
    HttpResponse response;
    response.headers["X-Peer-Outcome"] = outcome;
    response.headers["X-Peer-Truncated"] = entry.truncated ? "1" : "0";
    response.headers["X-Peer-Paramfp"] = entry.param_fingerprint;
    response.body = RegionToXml(*entry.region);
    response.body += sql::TableToXml(entry.result);
    return response;
  };
  auto miss = [](const char* outcome) -> HttpResponse {
    HttpResponse response;
    response.status_code = 404;
    response.headers["X-Peer-Outcome"] = outcome;
    response.body = "<PeerMiss/>\n";
    return response;
  };

  RelationshipResult rel =
      CheckRelationship(*cache_, qt->id(), *fp, *region);
  ChargeMicros(DescriptionCostMicros(rel.description_comparisons) +
               config_.costs.per_relation_check_us *
                   static_cast<double>(rel.regions_checked));
  // Peer serves hand the full entry body across the wire, so a frozen or
  // spilled match is promoted first; a vanished-cold entry falls through
  // to the flight/miss logic below (no peer hit, no wrong data).
  if (rel.status == RegionRelation::kEqual) {
    auto hot = EnsureHot(rel.matched, nullptr);
    if (hot != nullptr) {
      cache_->Touch(hot->id, clock_->NowMicros());
      return serve(*hot, "hit");
    }
  } else if (rel.status == RegionRelation::kContainedBy && !exact_only &&
             !rel.matched->truncated) {
    auto hot = EnsureHot(rel.matched, nullptr);
    if (hot != nullptr) {
      cache_->Touch(hot->id, clock_->NowMicros());
      return serve(*hot, "hit");
    }
  }

  // No covering entry. Fold the prober into this proxy's single-flight
  // table: join an in-flight fetch for a covering region, or hand the
  // prober a peer-flight ticket making it the tier-wide leader.
  SingleFlightTable::Ticket ticket =
      inflight_.JoinOrLead(qt->id(), *fp, *region);
  if (ticket.leader) {
    {
      util::MutexLock lock(peer_mu_);
      pending_peer_flights_[ticket.token] =
          clock_->NowMicros() + config_.collapse_wait_millis * 1000;
    }
    HttpResponse response = miss("lead");
    response.headers["X-Peer-Flight-Token"] = std::to_string(ticket.token);
    return response;
  }
  if (ticket.result.wait_for(std::chrono::milliseconds(
          config_.collapse_wait_millis)) == std::future_status::ready) {
    FlightOutcome outcome = ticket.result.get();
    if (outcome.ok && outcome.entry != nullptr) {
      const CacheEntry& entry = *outcome.entry;
      const bool equal = geometry::Equals(*entry.region, *region);
      const bool usable =
          equal || (!exact_only && !entry.truncated &&
                    geometry::Contains(*entry.region, *region));
      if (usable) {
        ins_.peer_flight_joins->Increment();
        return serve(entry, "flight");
      }
    }
  }
  return miss("miss");
}

HttpResponse FunctionProxy::HandlePeerEntry(const HttpRequest& request) {
  ReapExpiredPeerFlights();
  const uint64_t token =
      ParsePeerToken(PeerHeaderOr(request.headers, "X-Peer-Token", ""));
  if (token == 0) {
    return HttpResponse::MakeError(400, "missing X-Peer-Token");
  }
  {
    util::MutexLock lock(peer_mu_);
    pending_peer_flights_.erase(token);
  }
  if (PeerHeaderOr(request.headers, "X-Peer-Failed", "0") == "1") {
    inflight_.Complete(token, FlightOutcome{});
    HttpResponse response;
    response.body = "<PeerAck/>\n";
    return response;
  }
  const std::string* template_id = PeerHeader(request.headers, "X-Peer-Template");
  const std::string* fp = PeerHeader(request.headers, "X-Peer-Fp");
  const QueryTemplate* qt =
      template_id != nullptr ? templates_->FindById(*template_id) : nullptr;
  const FunctionTemplate* ft =
      qt != nullptr ? templates_->FindFunctionTemplate(qt->function_name())
                    : nullptr;
  std::string_view region_xml, result_xml;
  if (fp == nullptr || ft == nullptr ||
      !SplitPeerBody(request.body, &region_xml, &result_xml)) {
    inflight_.Complete(token, FlightOutcome{});
    return HttpResponse::MakeError(400, "malformed peer entry");
  }
  auto region_or = RegionFromXml(region_xml);
  auto table = sql::TableFromXml(result_xml);
  if (!region_or.ok() || !table.ok()) {
    inflight_.Complete(token, FlightOutcome{});
    return HttpResponse::MakeError(400, "unparseable peer entry");
  }
  ins_.peer_entries_received->Increment();
  auto admitted = CacheResult(
      *qt, *fp, PeerHeaderOr(request.headers, "X-Peer-Paramfp", ""),
      **region_or, std::move(*table), ft->coordinate_columns(),
      PeerHeaderOr(request.headers, "X-Peer-Truncated", "0") == "1",
      /*trace=*/nullptr);
  inflight_.Complete(token, FlightOutcome{admitted != nullptr, admitted});
  HttpResponse response;
  response.body = "<PeerAck/>\n";
  return response;
}

void FunctionProxy::PushPeerEntry(
    net::PeerChannel* peer, uint64_t token,
    const std::shared_ptr<const CacheEntry>& entry) {
  // A refused push is fine: the owner reaps the expired flight on its own
  // virtual deadline, so followers are delayed, never stranded.
  if (!peer->Allow()) return;
  HttpRequest push;
  push.method = "POST";
  push.path = "/peer/entry";
  push.headers["X-Peer-Token"] = std::to_string(token);
  if (entry == nullptr) {
    push.headers["X-Peer-Failed"] = "1";
  } else {
    push.headers["X-Peer-Template"] = entry->template_id;
    push.headers["X-Peer-Fp"] = entry->nonspatial_fingerprint;
    push.headers["X-Peer-Paramfp"] = entry->param_fingerprint;
    push.headers["X-Peer-Truncated"] = entry->truncated ? "1" : "0";
    push.body = RegionToXml(*entry->region);
    push.body += sql::TableToXml(entry->result);
  }
  ins_.peer_entries_pushed->Increment();
  HttpResponse response = peer->RoundTrip(push, /*deadline_micros=*/0);
  if (net::RetryPolicy::Retryable(response)) {
    ins_.peer_failures->Increment();
  }
}

std::optional<HttpResponse> FunctionProxy::ProbePeer(
    const QueryTemplate& qt, const FunctionTemplate& ft,
    const geometry::Region& region, const std::string& nonspatial_fp,
    const std::map<std::string, Value>& params, int64_t deadline_micros,
    QueryRecord* record, obs::QueryTrace* trace, FlightGuard* local_flight,
    PeerFlightGuard* peer_flight) {
  if (!has_peers_) return std::nullopt;
  const std::string key = RegionOwnershipKey(
      qt.id(), nonspatial_fp, region, config_.peer_ownership_cell);
  const std::string* owner = peer_group_.ring->Owner(key);
  if (owner == nullptr || *owner == peer_group_.self_id) return std::nullopt;
  auto peer_it = peer_group_.peers.find(*owner);
  if (peer_it == peer_group_.peers.end()) return std::nullopt;
  net::PeerChannel* peer = peer_it->second;
  if (!peer->Allow()) {
    ins_.peer_lookup_breaker_open->Increment();
    record->peer_degraded = true;
    return std::nullopt;
  }

  HttpRequest probe;
  probe.method = "POST";
  probe.path = "/peer/lookup";
  probe.headers["X-Peer-Template"] = qt.id();
  probe.headers["X-Peer-Fp"] = nonspatial_fp;
  probe.body = RegionToXml(region);
  obs::ScopedSpan span(trace, "peer_lookup", clock_, ins_.phase_peer_lookup);
  span.AddAttr("owner", *owner);
  HttpResponse response = peer->RoundTrip(probe, deadline_micros);
  span.AddAttr("status", std::to_string(response.status_code));
  if (net::RetryPolicy::Retryable(response)) {
    // Outage or overload on the sibling: fall back to the origin. The
    // channel already fed the per-peer breaker.
    ins_.peer_lookup_error->Increment();
    ins_.peer_failures->Increment();
    record->peer_degraded = true;
    return std::nullopt;
  }
  const std::string outcome =
      PeerHeaderOr(response.headers, "X-Peer-Outcome", "miss");
  span.AddAttr("outcome", outcome);
  if (!response.ok()) {
    if (outcome == "lead") {
      const uint64_t token = ParsePeerToken(
          PeerHeaderOr(response.headers, "X-Peer-Flight-Token", ""));
      if (token != 0) {
        // This request is now the tier-wide leader: remote followers block
        // on the owner's flight until the guard pushes our origin result.
        ins_.peer_lookup_lead->Increment();
        peer_flight->Arm(this, peer, token);
        return std::nullopt;
      }
    }
    ins_.peer_lookup_miss->Increment();
    return std::nullopt;
  }

  // 200 with a covering entry (direct hit or completed flight join).
  std::string_view region_xml, result_xml;
  auto garbage = [&]() -> std::optional<HttpResponse> {
    peer->NoteGarbage();
    ins_.peer_lookup_error->Increment();
    ins_.peer_failures->Increment();
    record->peer_degraded = true;
    return std::nullopt;
  };
  if (!SplitPeerBody(response.body, &region_xml, &result_xml)) {
    return garbage();
  }
  auto peer_region_or = RegionFromXml(region_xml);
  auto table = sql::TableFromXml(result_xml);
  if (!peer_region_or.ok() || !table.ok()) return garbage();
  std::unique_ptr<geometry::Region> peer_region = std::move(*peer_region_or);
  const bool truncated =
      PeerHeaderOr(response.headers, "X-Peer-Truncated", "0") == "1";
  const bool equal = geometry::Equals(*peer_region, region);
  const bool exact_only = qt.function_dependent_projection();
  if (!equal && (exact_only || truncated ||
                 !geometry::Contains(*peer_region, region))) {
    // Transport-clean but not usable for this query (e.g. the owner served
    // under rules a newer config disagrees with): treat as a miss, not as a
    // faulty peer.
    ins_.peer_lookup_miss->Increment();
    return std::nullopt;
  }
  ChargeMicros(config_.costs.per_origin_response_tuple_us *
               static_cast<double>(table->num_rows()));

  // Admit the sibling's entry locally — future queries in this region hit
  // without the hop, and local single-flight followers get the snapshot.
  sql::ColumnarTable columnar(std::move(*table));
  auto admitted = CacheResult(
      qt, nonspatial_fp, PeerHeaderOr(response.headers, "X-Peer-Paramfp", ""),
      *peer_region, columnar, ft.coordinate_columns(), truncated, trace);
  local_flight->Fulfill(FlightOutcome{admitted != nullptr, admitted});
  // Serve from the admitted snapshot when possible (its coordinate views
  // are pre-resolved); the local copy covers the not-cacheable case. The
  // outcome counter is bumped only once the response is certain, so every
  // probe lands in exactly one fnproxy_peer_lookups_total series.
  const sql::ColumnarTable& served =
      admitted != nullptr ? admitted->result : columnar;
  obs::Counter* outcome_counter =
      outcome == "flight" ? ins_.peer_lookup_flight : ins_.peer_lookup_hit;
  if (equal) {
    outcome_counter->Increment();
    record->peer_hit = true;
    record->tuples_total = served.num_rows();
    record->tuples_from_cache = served.num_rows();
    return Respond(served, trace);
  }
  // The sibling's region strictly contains ours: local spatial selection,
  // exactly the containment-hit path.
  obs::ScopedSpan eval(trace, "local_eval", clock_, ins_.phase_local_eval);
  auto selected = SelectInRegion(served, region, ft.coordinate_columns());
  auto stmt = qt.Instantiate(params);
  if (!selected.ok() || !stmt.ok()) {
    ins_.peer_lookup_miss->Increment();
    return std::nullopt;
  }
  double eval_micros = config_.costs.per_cached_tuple_scan_us *
                       static_cast<double>(selected->tuples_scanned);
  ins_.local_eval_micros->Increment(static_cast<uint64_t>(eval_micros));
  ChargeMicros(eval_micros);
  eval.AddAttr("tuples_scanned", std::to_string(selected->tuples_scanned));
  auto final_selection =
      ApplyOrderAndTop(served, std::move(selected->selection), *stmt);
  eval.Finish();
  if (!final_selection.ok()) {
    ins_.peer_lookup_miss->Increment();
    return std::nullopt;
  }
  outcome_counter->Increment();
  record->peer_hit = true;
  record->tuples_total = final_selection->size();
  record->tuples_from_cache = final_selection->size();
  return Respond(served, *final_selection, trace);
}

// --- Storage tier (docs/STORAGE.md) -----------------------------------------

std::shared_ptr<const CacheEntry> FunctionProxy::EnsureHot(
    const std::shared_ptr<const CacheEntry>& entry, obs::QueryTrace* trace) {
  if (entry == nullptr || entry->tier == EntryTier::kHot) return entry;
  obs::ScopedSpan span(trace, "restore", clock_, ins_.phase_restore);
  span.AddAttr("tier", EntryTierName(entry->tier));
  auto hot = cache_->FindHot(entry->id);
  if (hot == nullptr) return nullptr;
  // Decoding the frozen columns is the real work of a promotion; charge it
  // on the virtual clock like every other proxy-side computation.
  ChargeMicros(config_.costs.per_frozen_tuple_thaw_us *
               static_cast<double>(hot->result.num_rows()));
  span.AddAttr("rows", std::to_string(hot->result.num_rows()));
  return hot;
}

void FunctionProxy::MaybeRunMaintenance() {
  const StorageTierConfig& st = config_.storage;
  if (!st.enable) return;
  const uint64_t tick = maintenance_ticks_.fetch_add(1, kRelaxed) + 1;
  const bool want_sweep =
      st.sweep_every_requests > 0 && tick % st.sweep_every_requests == 0;
  const bool want_snapshot = st.snapshot_every_requests > 0 &&
                             !st.snapshot_path.empty() &&
                             tick % st.snapshot_every_requests == 0;
  if (!want_sweep && !want_snapshot) return;
  const int64_t now = clock_->NowMicros();
  if (maintenance_pool_ == nullptr) {
    if (want_sweep) RunTierSweep(now);
    if (want_snapshot) WriteSnapshotAndCount();
    return;
  }
  // Background lane: at most one sweep and one snapshot queued or running.
  // The tasks touch only atomics and internally locked state (cache_,
  // records_mu_), so they are safe off the request threads.
  if (want_sweep && !sweep_scheduled_.exchange(true, kRelaxed)) {
    bool queued = maintenance_pool_->Submit([this, now] {
      RunTierSweep(now);
      sweep_scheduled_.store(false, kRelaxed);
    });
    if (!queued) sweep_scheduled_.store(false, kRelaxed);
  }
  if (want_snapshot && !snapshot_scheduled_.exchange(true, kRelaxed)) {
    bool queued = maintenance_pool_->Submit([this] {
      WriteSnapshotAndCount();
      snapshot_scheduled_.store(false, kRelaxed);
    });
    if (!queued) snapshot_scheduled_.store(false, kRelaxed);
  }
}

void FunctionProxy::RunTierSweep(int64_t now_micros) {
  const auto wall_start = std::chrono::steady_clock::now();
  TierSweepResult swept = cache_->SweepColdEntries(now_micros);
  sweeps_run_.fetch_add(1, kRelaxed);
  if (swept.frozen > 0 || swept.spilled > 0) {
    // Wall time, not virtual: the sweep runs off the request lane, and its
    // cost is real compression/IO work rather than modeled latency.
    const auto wall_micros =
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - wall_start)
            .count();
    ins_.phase_spill->Observe(wall_micros);
  }
}

void FunctionProxy::WriteSnapshotAndCount() {
  util::Status status = WriteSnapshot(config_.storage.snapshot_path);
  if (status.ok()) {
    snapshots_written_.fetch_add(1, kRelaxed);
  } else {
    snapshot_errors_.fetch_add(1, kRelaxed);
    FNPROXY_LOG(kWarning) << "snapshot write failed: " << status.ToString();
  }
}

std::vector<obs::Counter*> FunctionProxy::SnapshotCounters() const {
  return {
      ins_.requests,
      ins_.template_requests,
      ins_.exact_hits,
      ins_.containment_hits,
      ins_.region_containments,
      ins_.overlaps_handled,
      ins_.misses,
      ins_.origin_form_requests,
      ins_.origin_sql_requests,
      ins_.origin_failures,
      ins_.breaker_open_rejections,
      ins_.degraded_full,
      ins_.degraded_partial,
      ins_.degraded_unavailable,
      ins_.inflight_collapsed,
      ins_.shed_overload,
      ins_.shed_origin_backlog,
      ins_.shed_deadline,
      ins_.deadline_exceeded,
      ins_.peer_lookup_hit,
      ins_.peer_lookup_flight,
      ins_.peer_lookup_lead,
      ins_.peer_lookup_miss,
      ins_.peer_lookup_error,
      ins_.peer_lookup_breaker_open,
      ins_.peer_failures,
      ins_.peer_entries_pushed,
      ins_.peer_entries_received,
      ins_.peer_flight_joins,
      ins_.check_micros,
      ins_.local_eval_micros,
      ins_.merge_micros,
  };
}

namespace {
/// Version written into the META section; readers reject newer majors.
constexpr uint32_t kProxySnapshotVersion = 2;

uint8_t PackRecordFlags(const QueryRecord& r) {
  uint8_t flags = 0;
  if (r.handled_by_template) flags |= 1u << 0;
  if (r.contacted_origin) flags |= 1u << 1;
  if (r.failed) flags |= 1u << 2;
  if (r.degraded) flags |= 1u << 3;
  if (r.collapsed) flags |= 1u << 4;
  if (r.shed) flags |= 1u << 5;
  if (r.peer_hit) flags |= 1u << 6;
  if (r.peer_degraded) flags |= 1u << 7;
  return flags;
}

void UnpackRecordFlags(uint8_t flags, QueryRecord* r) {
  r->handled_by_template = (flags & (1u << 0)) != 0;
  r->contacted_origin = (flags & (1u << 1)) != 0;
  r->failed = (flags & (1u << 2)) != 0;
  r->degraded = (flags & (1u << 3)) != 0;
  r->collapsed = (flags & (1u << 4)) != 0;
  r->shed = (flags & (1u << 5)) != 0;
  r->peer_hit = (flags & (1u << 6)) != 0;
  r->peer_degraded = (flags & (1u << 7)) != 0;
}
}  // namespace

util::Status FunctionProxy::WriteSnapshot(const std::string& path) const {
  storage::ByteWriter meta;
  meta.PutU32(kProxySnapshotVersion);
  meta.PutU8(static_cast<uint8_t>(config_.mode));
  meta.PutZigzag(clock_->NowMicros());

  // ENTRIES: every cache entry as a frozen segment. Hot entries are frozen
  // on the way out (view-prepared columns stay raw and are re-prepared on
  // restore); spilled entries contribute their on-disk segment payload.
  storage::ByteWriter bodies;
  uint64_t written = 0;
  for (uint64_t id : cache_->AllIds()) {
    auto entry = cache_->Find(id);
    if (entry == nullptr) continue;
    std::string segment_bytes;
    if (entry->tier == EntryTier::kHot) {
      segment_bytes = storage::FrozenSegment::Freeze(entry->result).Serialize();
    } else if (entry->segment != nullptr) {
      segment_bytes = entry->segment->Serialize();
    } else {
      auto file = storage::ReadFileToString(entry->spill_file);
      if (!file.ok()) continue;  // Lost spill file: drop from the snapshot.
      auto sections = storage::ParseSnapshotFile(*file);
      if (!sections.ok()) continue;
      for (const storage::Section& section : *sections) {
        if (section.id == storage::kSectionEntries) {
          segment_bytes.assign(section.payload);
          break;
        }
      }
      if (segment_bytes.empty()) continue;
    }
    bodies.PutString(entry->template_id);
    bodies.PutString(entry->nonspatial_fingerprint);
    bodies.PutString(entry->param_fingerprint);
    bodies.PutString(RegionToXml(*entry->region));
    bodies.PutU8(entry->truncated ? 1 : 0);
    bodies.PutZigzag(entry->last_access_micros);
    bodies.PutVarint(entry->access_count);
    bodies.PutString(segment_bytes);
    ++written;
  }
  storage::ByteWriter entries;
  entries.PutVarint(written);
  entries.PutBytes(bodies.bytes().data(), bodies.size());

  // STATS: instrument values plus the live-computed series and the
  // per-query records — everything /proxy/stats renders, so a restarted
  // proxy reproduces the writer's XML byte for byte.
  storage::ByteWriter stats_w;
  std::vector<obs::Counter*> counters = SnapshotCounters();
  stats_w.PutVarint(counters.size());
  for (obs::Counter* counter : counters) stats_w.PutVarint(counter->Value());
  stats_w.PutVarint(origin_->retry_stats().retries - channel_retries_baseline_ +
                    restored_origin_retries_.load(kRelaxed));
  stats_w.PutVarint(breaker_->transitions() +
                    restored_breaker_transitions_.load(kRelaxed));
  {
    util::MutexLock lock(records_mu_);
    stats_w.PutDouble(coverage_served_);
    stats_w.PutVarint(records_.size());
    for (const QueryRecord& record : records_) {
      stats_w.PutU8(static_cast<uint8_t>(record.status));
      stats_w.PutU8(PackRecordFlags(record));
      stats_w.PutDouble(record.coverage);
      stats_w.PutVarint(record.tuples_total);
      stats_w.PutVarint(record.tuples_from_cache);
    }
  }

  std::string file = storage::BuildSnapshotFile({
      {storage::kSectionMeta, meta.Release()},
      {storage::kSectionEntries, entries.Release()},
      {storage::kSectionStats, stats_w.Release()},
  });
  return storage::WriteFileAtomic(path, file);
}

util::StatusOr<size_t> FunctionProxy::RestoreSnapshot(const std::string& path) {
  auto file = storage::ReadFileToString(path);
  if (!file.ok()) return file.status();
  auto sections = storage::ParseSnapshotFile(*file);
  if (!sections.ok()) return sections.status();

  const storage::Section* meta = nullptr;
  const storage::Section* entries = nullptr;
  const storage::Section* stats = nullptr;
  for (const storage::Section& section : *sections) {
    if (section.id == storage::kSectionMeta) meta = &section;
    if (section.id == storage::kSectionEntries) entries = &section;
    if (section.id == storage::kSectionStats) stats = &section;
  }
  if (meta == nullptr) {
    return Status::InvalidArgument("snapshot has no META section");
  }
  storage::ByteReader meta_reader(meta->payload);
  const uint32_t version = meta_reader.GetU32();
  if (!meta_reader.ok() || version == 0 ||
      version > kProxySnapshotVersion) {
    return Status::InvalidArgument("unsupported snapshot version");
  }

  size_t restored = 0;
  if (entries != nullptr) {
    storage::ByteReader reader(entries->payload);
    const uint64_t count = reader.GetVarint();
    for (uint64_t i = 0; i < count && reader.ok(); ++i) {
      CacheEntry entry;
      entry.template_id = reader.GetString();
      entry.nonspatial_fingerprint = reader.GetString();
      entry.param_fingerprint = reader.GetString();
      const std::string region_xml = reader.GetString();
      entry.truncated = reader.GetU8() != 0;
      entry.last_access_micros = reader.GetZigzag();
      entry.access_count = reader.GetVarint();
      const std::string segment_bytes = reader.GetString();
      if (!reader.ok()) break;
      auto region = RegionFromXml(region_xml);
      if (!region.ok()) return region.status();
      auto segment = storage::FrozenSegment::Parse(segment_bytes);
      if (!segment.ok()) return segment.status();
      entry.region = std::move(*region);
      entry.segment = std::make_shared<const storage::FrozenSegment>(
          std::move(*segment));
      // Restored entries come up frozen — the schema is available for
      // relationship checks immediately, and the first serving access
      // thaws (and re-prepares coordinate views) through FindHot.
      entry.tier = EntryTier::kFrozen;
      entry.result = sql::ColumnarTable(entry.segment->schema());
      size_t comparisons = 0;
      if (cache_->Insert(std::move(entry), &comparisons) != 0) ++restored;
    }
    if (!reader.ok()) {
      return Status::ParseError("truncated snapshot ENTRIES section");
    }
  }

  if (stats != nullptr) {
    storage::ByteReader reader(stats->payload);
    std::vector<obs::Counter*> counters = SnapshotCounters();
    const uint64_t count = reader.GetVarint();
    for (uint64_t i = 0; i < count && reader.ok(); ++i) {
      const uint64_t value = reader.GetVarint();
      // Older snapshots carry fewer slots; newer ones carry slots this
      // build does not know, which are read and dropped.
      if (i < counters.size()) counters[i]->Increment(value);
    }
    restored_origin_retries_.fetch_add(reader.GetVarint(), kRelaxed);
    restored_breaker_transitions_.fetch_add(reader.GetVarint(), kRelaxed);
    const double coverage = reader.GetDouble();
    const uint64_t record_count = reader.GetVarint();
    std::vector<QueryRecord> restored_records;
    restored_records.reserve(record_count);
    for (uint64_t i = 0; i < record_count && reader.ok(); ++i) {
      QueryRecord record;
      record.status = static_cast<RegionRelation>(reader.GetU8());
      UnpackRecordFlags(reader.GetU8(), &record);
      record.coverage = reader.GetDouble();
      record.tuples_total = reader.GetVarint();
      record.tuples_from_cache = reader.GetVarint();
      restored_records.push_back(record);
    }
    if (!reader.ok()) {
      return Status::ParseError("truncated snapshot STATS section");
    }
    util::MutexLock lock(records_mu_);
    coverage_served_ += coverage;
    records_.insert(records_.end(), restored_records.begin(),
                    restored_records.end());
  }

  restored_entries_.fetch_add(restored, kRelaxed);
  return restored;
}

HttpResponse FunctionProxy::Handle(const HttpRequest& request) {
  // Reserved admin endpoints: answered from proxy state, never forwarded,
  // never counted as query traffic.
  if (request.path == "/proxy/stats") return HandleStats();
  if (request.path == "/metrics") return HandleMetrics();
  if (request.path == "/proxy/trace") return HandleTrace(request);
  // Cooperative-tier endpoints: sibling traffic, never counted as query
  // traffic and never subject to client admission control.
  if (request.path == "/peer/lookup") return HandlePeerLookup(request);
  if (request.path == "/peer/entry") return HandlePeerEntry(request);

  if (has_peers_) ReapExpiredPeerFlights();
  ins_.requests->Increment();
  MaybeRunMaintenance();

  // Admission control: hard shed above max_queue_depth, before any real
  // work — an overloaded proxy that answers 503 fast keeps its goodput.
  struct AdmissionGuard {
    std::atomic<int64_t>* counter;
    ~AdmissionGuard() { counter->fetch_sub(1, kRelaxed); }
  } admission{&inflight_requests_};
  const int64_t depth = inflight_requests_.fetch_add(1, kRelaxed) + 1;
  if (config_.max_queue_depth > 0 &&
      depth > static_cast<int64_t>(config_.max_queue_depth)) {
    ins_.shed_overload->Increment();
    QueryRecord record;
    record.shed = true;
    record.failed = true;
    {
      util::MutexLock lock(records_mu_);
      records_.push_back(record);
    }
    return Unavailable("overload");
  }

  // Client deadline: a relative budget header, pinned to an absolute
  // virtual-clock deadline at receipt.
  const int64_t deadline_budget = net::DeadlineBudgetMicros(request);
  const int64_t deadline_micros =
      deadline_budget > 0 ? clock_->NowMicros() + deadline_budget : 0;

  // Span recording is on whenever the ring or an external sink wants the
  // completed trace; histograms observe either way (null-trace spans).
  std::shared_ptr<obs::QueryTrace> owned_trace;
  obs::QueryTrace* trace = nullptr;
  if (config_.trace_ring_capacity > 0 || config_.trace_sink != nullptr) {
    owned_trace = std::make_shared<obs::QueryTrace>(
        next_trace_id_.fetch_add(1, kRelaxed), request.path);
    owned_trace->AddAttr("mode", CachingModeName(config_.mode));
    trace = owned_trace.get();
  }
  obs::ScopedSpan root(trace, "request", clock_, ins_.request_duration,
                       ins_.request_wall);

  ChargeMicros(config_.costs.request_parse_ms * 1000.0);

  QueryRecord record;
  const QueryTemplate* qt;
  const FunctionTemplate* ft;
  {
    obs::ScopedSpan match(trace, "template_match", clock_,
                          ins_.phase_template_match);
    qt = templates_->FindByPath(request.path);
    ft = qt == nullptr ? nullptr
                       : templates_->FindFunctionTemplate(qt->function_name());
    match.AddAttr("matched", ft != nullptr ? "true" : "false");
  }

  HttpResponse response;
  if (config_.mode == CachingMode::kNoCache || qt == nullptr ||
      ft == nullptr) {
    response = Forward(request, deadline_micros, &record, trace);
  } else {
    ins_.template_requests->Increment();
    record.handled_by_template = true;
    if (config_.mode == CachingMode::kPassive) {
      response = HandlePassive(request, deadline_micros, &record, trace);
    } else {
      response =
          HandleActive(request, *qt, *ft, deadline_micros, &record, trace);
    }
  }
  record.failed = !response.ok();
  // Tier-visible outcome headers: X-Peer-Served marks answers that avoided
  // an origin trip via a sibling; X-Peer-Degraded marks origin fallbacks
  // forced by a failed or breaker-opened peer path.
  if (record.peer_hit) response.headers["X-Peer-Served"] = "1";
  if (record.peer_degraded) response.headers["X-Peer-Degraded"] = "1";
  {
    util::MutexLock lock(records_mu_);
    records_.push_back(record);
  }
  root.Finish();
  if (owned_trace != nullptr) {
    owned_trace->AddAttr("status", std::to_string(response.status_code));
    if (record.handled_by_template) {
      owned_trace->AddAttr("relation",
                           geometry::RegionRelationName(record.status));
    }
    if (record.degraded) owned_trace->AddAttr("degraded", "true");
    if (record.peer_hit) owned_trace->AddAttr("peer", "served");
    if (record.peer_degraded) owned_trace->AddAttr("peer", "degraded");
    if (config_.trace_sink != nullptr) {
      config_.trace_sink->Consume(*owned_trace);
    }
    trace_ring_.Push(std::move(owned_trace));
  }
  return response;
}

}  // namespace fnproxy::core
