#include "core/proxy.h"

#include <algorithm>
#include <numeric>

#include "core/cache_snapshot.h"
#include "core/local_eval.h"
#include "core/region_predicate.h"
#include "core/relationship.h"
#include "geometry/coverage.h"
#include "index/array_index.h"
#include "index/rtree.h"
#include "sql/printer.h"
#include "sql/table_xml.h"
#include "util/logging.h"

namespace fnproxy::core {

using geometry::RegionRelation;
using net::HttpRequest;
using net::HttpResponse;
using sql::Table;
using sql::Value;
using util::Status;
using util::StatusOr;

const char* CachingModeName(CachingMode mode) {
  switch (mode) {
    case CachingMode::kNoCache:
      return "NC";
    case CachingMode::kPassive:
      return "PC";
    case CachingMode::kActiveFull:
      return "AC-full";
    case CachingMode::kActiveRegionContainment:
      return "AC-region-containment";
    case CachingMode::kActiveContainmentOnly:
      return "AC-containment-only";
  }
  return "?";
}

std::string ProxyStats::ToXml() const {
  char buffer[2048];
  std::snprintf(
      buffer, sizeof(buffer),
      "<ProxyStats requests=\"%llu\" templateRequests=\"%llu\">\n"
      "  <Hits exact=\"%llu\" containment=\"%llu\" regionContainment=\"%llu\""
      " overlap=\"%llu\"/>\n"
      "  <Misses count=\"%llu\"/>\n"
      "  <Origin formRequests=\"%llu\" sqlRequests=\"%llu\""
      " failures=\"%llu\" retries=\"%llu\"/>\n"
      "  <Breaker transitions=\"%llu\" openRejections=\"%llu\"/>\n"
      "  <Degraded full=\"%llu\" partial=\"%llu\" unavailable=\"%llu\""
      " coverageServed=\"%.4f\"/>\n"
      "  <TimingMicros check=\"%lld\" localEval=\"%lld\" merge=\"%lld\"/>\n"
      "  <AverageCacheEfficiency>%.4f</AverageCacheEfficiency>\n"
      "</ProxyStats>\n",
      static_cast<unsigned long long>(requests),
      static_cast<unsigned long long>(template_requests),
      static_cast<unsigned long long>(exact_hits),
      static_cast<unsigned long long>(containment_hits),
      static_cast<unsigned long long>(region_containments),
      static_cast<unsigned long long>(overlaps_handled),
      static_cast<unsigned long long>(misses),
      static_cast<unsigned long long>(origin_form_requests),
      static_cast<unsigned long long>(origin_sql_requests),
      static_cast<unsigned long long>(origin_failures),
      static_cast<unsigned long long>(origin_retries),
      static_cast<unsigned long long>(breaker_transitions),
      static_cast<unsigned long long>(breaker_open_rejections),
      static_cast<unsigned long long>(degraded_full),
      static_cast<unsigned long long>(degraded_partial),
      static_cast<unsigned long long>(degraded_unavailable), coverage_served,
      static_cast<long long>(check_micros),
      static_cast<long long>(local_eval_micros),
      static_cast<long long>(merge_micros), AverageCacheEfficiency());
  return buffer;
}

double ProxyStats::AverageCacheEfficiency() const {
  if (records.empty()) return 0.0;
  double sum = 0.0;
  for (const QueryRecord& record : records) {
    sum += record.CacheEfficiency();
  }
  return sum / static_cast<double>(records.size());
}

namespace {

constexpr auto kRelaxed = std::memory_order_relaxed;

/// Cheaply extracts the rows="N" attribute from a result document without a
/// full XML parse (used for pass-through responses where the proxy only
/// needs the tuple count for statistics).
size_t ExtractRowCount(const std::string& body) {
  size_t pos = body.find("rows=\"");
  if (pos == std::string::npos) return 0;
  pos += 6;
  size_t end = body.find('"', pos);
  if (end == std::string::npos) return 0;
  size_t rows = 0;
  for (size_t i = pos; i < end; ++i) {
    if (body[i] < '0' || body[i] > '9') return 0;
    rows = rows * 10 + static_cast<size_t>(body[i] - '0');
  }
  return rows;
}

std::string FullParamFingerprint(
    const std::map<std::string, std::string>& params) {
  std::string fingerprint;
  for (const auto& [key, value] : params) {
    fingerprint += key;
    fingerprint += '=';
    fingerprint += value;
    fingerprint += ';';
  }
  return fingerprint;
}

}  // namespace

FunctionProxy::FunctionProxy(ProxyConfig config,
                             const TemplateRegistry* templates,
                             net::SimulatedChannel* origin,
                             util::SimulatedClock* clock)
    : config_(config), templates_(templates), origin_(origin), clock_(clock) {
  const bool rtree = config_.use_rtree_description;
  RegionIndexFactory factory = [rtree]() -> std::unique_ptr<index::RegionIndex> {
    if (rtree) return std::make_unique<index::RTreeIndex>();
    return std::make_unique<index::ArrayRegionIndex>();
  };
  cache_ = std::make_unique<CacheStore>(factory, config_.cache_shards,
                                        config_.max_cache_bytes,
                                        config_.replacement);
  breaker_ = std::make_unique<CircuitBreaker>(config_.breaker, clock_);
  channel_retries_baseline_ = origin_->retry_stats().retries;
}

ProxyStats FunctionProxy::stats() const {
  ProxyStats s;
  s.requests = counters_.requests.load(kRelaxed);
  s.template_requests = counters_.template_requests.load(kRelaxed);
  s.exact_hits = counters_.exact_hits.load(kRelaxed);
  s.containment_hits = counters_.containment_hits.load(kRelaxed);
  s.region_containments = counters_.region_containments.load(kRelaxed);
  s.overlaps_handled = counters_.overlaps_handled.load(kRelaxed);
  s.misses = counters_.misses.load(kRelaxed);
  s.origin_form_requests = counters_.origin_form_requests.load(kRelaxed);
  s.origin_sql_requests = counters_.origin_sql_requests.load(kRelaxed);
  s.origin_failures = counters_.origin_failures.load(kRelaxed);
  s.breaker_open_rejections = counters_.breaker_open_rejections.load(kRelaxed);
  s.degraded_full = counters_.degraded_full.load(kRelaxed);
  s.degraded_partial = counters_.degraded_partial.load(kRelaxed);
  s.degraded_unavailable = counters_.degraded_unavailable.load(kRelaxed);
  s.check_micros = counters_.check_micros.load(kRelaxed);
  s.local_eval_micros = counters_.local_eval_micros.load(kRelaxed);
  s.merge_micros = counters_.merge_micros.load(kRelaxed);
  s.breaker_transitions = breaker_->transitions();
  s.origin_retries = origin_->retry_stats().retries - channel_retries_baseline_;
  {
    util::MutexLock lock(records_mu_);
    s.coverage_served = coverage_served_;
    s.records = records_;
  }
  return s;
}

bool FunctionProxy::OriginAllowed() {
  return !config_.breaker.enabled || breaker_->Allow();
}

bool FunctionProxy::BreakerOpen() const {
  return config_.breaker.enabled && breaker_->state() == BreakerState::kOpen;
}

void FunctionProxy::NoteOriginOutcome(bool usable) {
  if (usable) {
    breaker_->RecordSuccess();
  } else {
    counters_.origin_failures.fetch_add(1, kRelaxed);
    breaker_->RecordFailure();
  }
}

HttpResponse FunctionProxy::ServiceUnavailable() {
  HttpResponse response;
  response.status_code = 503;
  response.body = "<Error code=\"503\" reason=\"origin-unreachable\"/>\n";
  int64_t cooldown = breaker_->CooldownRemainingMicros();
  int64_t seconds = cooldown > 0 ? (cooldown + 999'999) / 1'000'000
                                 : config_.retry_after_seconds;
  response.headers["Retry-After"] = std::to_string(seconds);
  return response;
}

HttpResponse FunctionProxy::Forward(const HttpRequest& request,
                                    QueryRecord* record) {
  if (!OriginAllowed()) {
    counters_.breaker_open_rejections.fetch_add(1, kRelaxed);
    counters_.degraded_unavailable.fetch_add(1, kRelaxed);
    record->degraded = true;
    return ServiceUnavailable();
  }
  record->contacted_origin = true;
  counters_.origin_form_requests.fetch_add(1, kRelaxed);
  HttpResponse response = origin_->RoundTrip(request);
  NoteOriginOutcome(!net::RetryPolicy::Retryable(response));
  if (response.ok()) {
    record->tuples_total = ExtractRowCount(response.body);
  }
  return response;
}

StatusOr<Table> FunctionProxy::FetchFromOrigin(const HttpRequest& request,
                                               QueryRecord* record) {
  if (!OriginAllowed()) {
    counters_.breaker_open_rejections.fetch_add(1, kRelaxed);
    return Status::Unavailable("circuit breaker open");
  }
  record->contacted_origin = true;
  counters_.origin_form_requests.fetch_add(1, kRelaxed);
  HttpResponse response = origin_->RoundTrip(request);
  if (!response.ok()) {
    bool origin_down = net::RetryPolicy::Retryable(response);
    NoteOriginOutcome(!origin_down);
    std::string message = "origin error " +
                          std::to_string(response.status_code) + ": " +
                          response.body;
    return origin_down ? Status::Unavailable(std::move(message))
                       : Status::Internal(std::move(message));
  }
  // A 200 whose body does not parse as a result table is as unusable as a
  // 500 — it must count against the origin and never reach the cache.
  auto table = sql::TableFromXml(response.body);
  NoteOriginOutcome(table.ok());
  if (!table.ok()) return table.status();
  ChargeMicros(config_.costs.per_origin_response_tuple_us *
               static_cast<double>(table->num_rows()));
  return table;
}

StatusOr<Table> FunctionProxy::FetchRemainder(const sql::SelectStatement& stmt,
                                              QueryRecord* record) {
  if (!OriginAllowed()) {
    counters_.breaker_open_rejections.fetch_add(1, kRelaxed);
    return Status::Unavailable("circuit breaker open");
  }
  record->contacted_origin = true;
  counters_.origin_sql_requests.fetch_add(1, kRelaxed);
  HttpRequest request;
  request.path = "/sql";
  request.query_params["q"] = sql::SelectToSql(stmt);
  HttpResponse response = origin_->RoundTrip(request);
  if (!response.ok()) {
    bool origin_down = net::RetryPolicy::Retryable(response);
    NoteOriginOutcome(!origin_down);
    std::string message = "origin /sql error " +
                          std::to_string(response.status_code) + ": " +
                          response.body;
    return origin_down ? Status::Unavailable(std::move(message))
                       : Status::Internal(std::move(message));
  }
  auto table = sql::TableFromXml(response.body);
  NoteOriginOutcome(table.ok());
  if (!table.ok()) return table.status();
  ChargeMicros(config_.costs.per_origin_response_tuple_us *
               static_cast<double>(table->num_rows()));
  return table;
}

HttpResponse FunctionProxy::Respond(const Table& table) {
  ChargeMicros(config_.costs.per_response_tuple_us *
               static_cast<double>(table.num_rows()));
  HttpResponse response;
  response.body = sql::TableToXml(table);
  return response;
}

HttpResponse FunctionProxy::Respond(const sql::ColumnarTable& table) {
  ChargeMicros(config_.costs.per_response_tuple_us *
               static_cast<double>(table.num_rows()));
  HttpResponse response;
  response.body = sql::TableToXml(table);
  return response;
}

HttpResponse FunctionProxy::Respond(const sql::ColumnarTable& table,
                                    const std::vector<uint32_t>& selection) {
  ChargeMicros(config_.costs.per_response_tuple_us *
               static_cast<double>(selection.size()));
  HttpResponse response;
  response.body = sql::TableToXml(table, sql::ResultXmlAttrs{},
                                  selection.data(), selection.size());
  return response;
}

HttpResponse FunctionProxy::RespondPartial(
    const sql::ColumnarTable& table, const std::vector<uint32_t>& selection,
    double coverage) {
  ChargeMicros(config_.costs.per_response_tuple_us *
               static_cast<double>(selection.size()));
  sql::ResultXmlAttrs attrs;
  attrs.partial = true;
  attrs.coverage = coverage;
  attrs.degraded_reason = "origin-unreachable";
  HttpResponse response;
  response.body =
      sql::TableToXml(table, attrs, selection.data(), selection.size());
  return response;
}

double FunctionProxy::DescriptionCostMicros(size_t comparisons) const {
  double factor = config_.use_rtree_description
                      ? config_.costs.rtree_comparison_factor
                      : 1.0;
  return config_.costs.per_description_comparison_us * factor *
         static_cast<double>(comparisons);
}

void FunctionProxy::CacheResult(
    const QueryTemplate& qt, const std::string& nonspatial_fp,
    const std::string& param_fp, const geometry::Region& region,
    sql::ColumnarTable result,
    const std::vector<std::string>& coordinate_columns, bool truncated) {
  // Resolve coordinate columns to contiguous double arrays now, while the
  // entry is still private to this thread; after Insert the entry is frozen
  // behind shared_ptr<const CacheEntry> and scanned concurrently.
  for (const std::string& name : coordinate_columns) {
    auto idx = result.schema().FindColumn(name);
    if (idx.has_value()) {
      (void)result.PrepareNumericView(*idx);
    }
  }
  CacheEntry entry;
  entry.template_id = qt.id();
  entry.nonspatial_fingerprint = nonspatial_fp;
  entry.param_fingerprint = param_fp;
  entry.region = region.Clone();
  entry.result = std::move(result);
  entry.truncated = truncated;
  entry.last_access_micros = clock_->NowMicros();
  entry.access_count = 1;
  size_t comparisons = 0;
  cache_->Insert(std::move(entry), &comparisons);
  ChargeMicros(DescriptionCostMicros(comparisons));
}

HttpResponse FunctionProxy::HandlePassive(const HttpRequest& request,
                                          QueryRecord* record) {
  std::string key = request.path + "?" + FullParamFingerprint(request.query_params);
  {
    util::MutexLock lock(passive_mu_);
    auto it = passive_items_.find(key);
    if (it != passive_items_.end()) {
      it->second.last_access = clock_->NowMicros();
      record->tuples_total = it->second.rows;
      record->tuples_from_cache = it->second.rows;
      counters_.exact_hits.fetch_add(1, kRelaxed);
      ChargeMicros(config_.costs.per_response_tuple_us *
                   static_cast<double>(it->second.rows));
      HttpResponse response;
      response.body = it->second.body;
      return response;
    }
  }
  counters_.misses.fetch_add(1, kRelaxed);
  HttpResponse response = Forward(request, record);
  // Admission control: only well-formed result documents from 2xx responses
  // enter the cache — a 200 carrying garbage must not poison future hits.
  if (response.ok() && sql::TableFromXml(response.body).ok()) {
    PassiveItem item;
    item.body = response.body;
    item.rows = record->tuples_total;
    item.bytes = response.body.size() + 128;
    item.last_access = clock_->NowMicros();
    if (config_.max_cache_bytes == 0 || item.bytes <= config_.max_cache_bytes) {
      util::MutexLock lock(passive_mu_);
      while (config_.max_cache_bytes != 0 &&
             passive_bytes_ + item.bytes > config_.max_cache_bytes &&
             !passive_items_.empty()) {
        auto victim = passive_items_.begin();
        for (auto iter = passive_items_.begin(); iter != passive_items_.end();
             ++iter) {
          if (iter->second.last_access < victim->second.last_access) {
            victim = iter;
          }
        }
        passive_bytes_ -= victim->second.bytes;
        passive_items_.erase(victim);
      }
      passive_bytes_ += item.bytes;
      passive_items_.emplace(std::move(key), std::move(item));
    }
  }
  return response;
}

HttpResponse FunctionProxy::HandleActive(const HttpRequest& request,
                                         const QueryTemplate& qt,
                                         const FunctionTemplate& ft,
                                         QueryRecord* record) {
  // --- Instantiate: parameters, region, fingerprints. ---
  std::map<std::string, Value> params;
  for (const auto& [key, text] : request.query_params) {
    params[key] = sql::ParseValueFromText(text);
  }
  auto args = qt.FunctionArgs(params);
  if (!args.ok()) {
    return Forward(request, record);
  }
  auto region_or = ft.BuildRegion(*args);
  if (!region_or.ok()) {
    return Forward(request, record);
  }
  std::unique_ptr<geometry::Region> region = std::move(*region_or);
  auto nonspatial_fp = qt.NonSpatialFingerprint(params);
  if (!nonspatial_fp.ok()) {
    return Forward(request, record);
  }
  std::string param_fp = FullParamFingerprint(request.query_params);

  // --- Relationship check against the cache description. The returned
  // snapshots stay valid even if a concurrent admission evicts the entries
  // before this request finishes using them. ---
  RelationshipResult rel =
      CheckRelationship(*cache_, qt.id(), *nonspatial_fp, *region);
  double check_micros =
      DescriptionCostMicros(rel.description_comparisons) +
      config_.costs.per_relation_check_us *
          static_cast<double>(rel.regions_checked);
  counters_.check_micros.fetch_add(static_cast<int64_t>(check_micros),
                                   kRelaxed);
  ChargeMicros(check_micros);
  record->status = rel.status;

  // Templates whose projection carries function-computed values (e.g. a
  // distance to the query point) cannot reuse cached tuples for a different
  // query region: those values would be stale. Exact matches remain safe.
  const bool exact_only = qt.function_dependent_projection();
  const bool handle_region_containment =
      !exact_only && (config_.mode == CachingMode::kActiveFull ||
                      config_.mode == CachingMode::kActiveRegionContainment);
  const bool handle_overlap =
      !exact_only && config_.mode == CachingMode::kActiveFull;

  switch (rel.status) {
    case RegionRelation::kEqual: {
      // Case (a): serve the cached result directly.
      counters_.exact_hits.fetch_add(1, kRelaxed);
      const std::shared_ptr<const CacheEntry>& entry = rel.matched;
      cache_->Touch(entry->id, clock_->NowMicros());
      record->tuples_total = entry->result.num_rows();
      record->tuples_from_cache = entry->result.num_rows();
      if (BreakerOpen()) {
        // Served entirely from cache while the origin is down: a degraded
        // answer that happens to be complete.
        counters_.degraded_full.fetch_add(1, kRelaxed);
        record->degraded = true;
      }
      return Respond(entry->result);
    }

    case RegionRelation::kContainedBy: {
      if (exact_only) break;  // Stale function-computed values; miss path.
      // Case (b): local spatial selection over the containing entry.
      counters_.containment_hits.fetch_add(1, kRelaxed);
      const std::shared_ptr<const CacheEntry>& entry = rel.matched;
      cache_->Touch(entry->id, clock_->NowMicros());
      // Columnar scan: membership kernel over the entry's pre-resolved
      // coordinate arrays, yielding a selection vector that flows through
      // order/top and straight into serialization — no row materialization.
      auto selected =
          SelectInRegion(entry->result, *region, ft.coordinate_columns());
      if (!selected.ok()) {
        FNPROXY_LOG(kWarning) << "local evaluation failed: "
                              << selected.status().ToString();
        return Forward(request, record);
      }
      double eval_micros = config_.costs.per_cached_tuple_scan_us *
                           static_cast<double>(selected->tuples_scanned);
      counters_.local_eval_micros.fetch_add(static_cast<int64_t>(eval_micros),
                                            kRelaxed);
      ChargeMicros(eval_micros);
      auto stmt = qt.Instantiate(params);
      if (!stmt.ok()) return Forward(request, record);
      auto final_selection = ApplyOrderAndTop(
          entry->result, std::move(selected->selection), *stmt);
      if (!final_selection.ok()) return Forward(request, record);
      record->tuples_total = final_selection->size();
      record->tuples_from_cache = final_selection->size();
      if (BreakerOpen()) {
        counters_.degraded_full.fetch_add(1, kRelaxed);
        record->degraded = true;
      }
      // Not cached: the result is already covered by the container (§3.2).
      return Respond(entry->result, *final_selection);
    }

    case RegionRelation::kContains:
    case RegionRelation::kOverlap: {
      bool is_region_containment = rel.status == RegionRelation::kContains;
      bool handled = is_region_containment ? handle_region_containment
                                           : handle_overlap;
      if (!handled) break;  // Fall through to miss handling below.

      // Cases (c) and the region-containment special case: assemble the
      // probe from cached entries, ship a remainder query, merge. `used`
      // keeps snapshots of every entry contributing tuples to the probe; the
      // probe itself is a list of zero-copy slices (cached table + optional
      // selection vector), never copied row tables.
      std::vector<std::shared_ptr<const CacheEntry>> used = rel.contained;
      std::vector<ColumnarSlice> probe_slices;
      std::vector<std::unique_ptr<std::vector<uint32_t>>> probe_selections;
      size_t scanned = 0;
      for (const auto& entry : rel.contained) {
        cache_->Touch(entry->id, clock_->NowMicros());
        // Contained regions lie fully inside the query: their result files
        // are merged wholesale, with no per-tuple spatial filtering.
        probe_slices.push_back({&entry->result, nullptr});
      }
      if (handle_overlap) {
        for (const auto& entry : rel.overlapping) {
          cache_->Touch(entry->id, clock_->NowMicros());
          auto selected =
              SelectInRegion(entry->result, *region, ft.coordinate_columns());
          if (!selected.ok()) continue;
          scanned += selected->tuples_scanned;
          probe_selections.push_back(std::make_unique<std::vector<uint32_t>>(
              std::move(selected->selection)));
          probe_slices.push_back(
              {&entry->result, probe_selections.back().get()});
          used.push_back(entry);
        }
      }
      double eval_micros = config_.costs.per_cached_tuple_scan_us *
                           static_cast<double>(scanned);
      counters_.local_eval_micros.fetch_add(static_cast<int64_t>(eval_micros),
                                            kRelaxed);
      ChargeMicros(eval_micros);

      // Remainder query excludes every region whose tuples the probe holds.
      std::vector<const geometry::Region*> excluded;
      for (const auto& entry : used) {
        excluded.push_back(entry->region.get());
      }
      auto stmt = qt.Instantiate(params);
      if (!stmt.ok()) return Forward(request, record);
      auto remainder_stmt =
          BuildRemainderQuery(*stmt, excluded, ft.coordinate_columns());
      if (!remainder_stmt.ok()) return Forward(request, record);
      auto remainder_table = FetchRemainder(*remainder_stmt, record);
      if (!remainder_table.ok()) {
        // Origin without a remainder facility: fall back to the original
        // query (paper §3.2: "the proxy has no choice but always sends the
        // original query").
        auto full = FetchFromOrigin(request, record);
        if (!full.ok()) {
          // kInternal means the origin answered with a client error — that
          // is not unavailability, so it is not eligible for degradation.
          if (config_.degraded_mode &&
              full.status().code() != util::StatusCode::kInternal) {
            // Degraded mode: the origin is unreachable, but the probe parts
            // are known-correct tuples for their regions — serve them as a
            // partial answer annotated with the covered volume fraction.
            auto probe_only = MergeDistinctColumnar(probe_slices);
            util::StatusOr<std::vector<uint32_t>> partial_selection =
                probe_only.status();
            if (probe_only.ok()) {
              std::vector<uint32_t> all_rows(probe_only->num_rows());
              std::iota(all_rows.begin(), all_rows.end(), 0u);
              partial_selection =
                  ApplyOrderAndTop(*probe_only, std::move(all_rows), *stmt);
            }
            if (partial_selection.ok()) {
              double partial_merge_micros =
                  config_.costs.per_merge_tuple_us *
                  static_cast<double>(probe_only->num_rows());
              counters_.merge_micros.fetch_add(
                  static_cast<int64_t>(partial_merge_micros), kRelaxed);
              ChargeMicros(partial_merge_micros);
              std::vector<const geometry::Region*> part_regions;
              for (const auto& entry : used) {
                part_regions.push_back(entry->region.get());
              }
              double coverage =
                  geometry::EstimateCoverageFraction(*region, part_regions);
              counters_.degraded_partial.fetch_add(1, kRelaxed);
              {
                util::MutexLock lock(records_mu_);
                coverage_served_ += coverage;
              }
              record->degraded = true;
              record->coverage = coverage;
              record->tuples_total = partial_selection->size();
              record->tuples_from_cache = partial_selection->size();
              return RespondPartial(*probe_only, *partial_selection, coverage);
            }
            counters_.degraded_unavailable.fetch_add(1, kRelaxed);
            record->degraded = true;
            return ServiceUnavailable();
          }
          return HttpResponse::MakeError(502, full.status().ToString());
        }
        record->tuples_total = full->num_rows();
        CacheResult(qt, *nonspatial_fp, param_fp, *region, *full,
                    ft.coordinate_columns(),
                    qt.has_top() && stmt->top_n.has_value() &&
                        full->num_rows() ==
                            static_cast<size_t>(*stmt->top_n));
        counters_.misses.fetch_add(1, kRelaxed);
        return Respond(*full);
      }

      if (is_region_containment) {
        counters_.region_containments.fetch_add(1, kRelaxed);
      } else {
        counters_.overlaps_handled.fetch_add(1, kRelaxed);
      }

      // Merge probe slices and the remainder (converted to columnar once).
      auto probe = MergeDistinctColumnar(probe_slices);
      if (!probe.ok()) return Forward(request, record);
      sql::ColumnarTable remainder_columnar(std::move(*remainder_table));
      auto merged = MergeDistinctColumnar(std::vector<ColumnarSlice>{
          {&*probe, nullptr}, {&remainder_columnar, nullptr}});
      if (!merged.ok()) return Forward(request, record);
      double merge_micros = config_.costs.per_merge_tuple_us *
                            static_cast<double>(merged->num_rows());
      counters_.merge_micros.fetch_add(static_cast<int64_t>(merge_micros),
                                       kRelaxed);
      ChargeMicros(merge_micros);

      record->tuples_total = merged->num_rows();
      record->tuples_from_cache = probe->num_rows();

      // Region containment housekeeping (§3.2): the merged result covers the
      // new, larger region — cache it and drop the subsumed entries.
      if (is_region_containment) {
        for (const auto& entry : rel.contained) {
          size_t removal_comparisons = 0;
          cache_->Remove(entry->id, &removal_comparisons);
          ChargeMicros(DescriptionCostMicros(removal_comparisons));
        }
        CacheResult(qt, *nonspatial_fp, param_fp, *region, *merged,
                    ft.coordinate_columns(), /*truncated=*/false);
      } else {
        // General overlap: cache the new query's full result; overlapped
        // entries remain (they are not subsumed).
        CacheResult(qt, *nonspatial_fp, param_fp, *region, *merged,
                    ft.coordinate_columns(), /*truncated=*/false);
      }

      std::vector<uint32_t> all_rows(merged->num_rows());
      std::iota(all_rows.begin(), all_rows.end(), 0u);
      auto final_selection = ApplyOrderAndTop(*merged, std::move(all_rows), *stmt);
      if (!final_selection.ok()) return Forward(request, record);
      return Respond(*merged, *final_selection);
    }

    case RegionRelation::kDisjoint:
      break;
  }

  // Case (d) or a case this scheme does not handle: fetch the original
  // query from the origin and cache the result.
  counters_.misses.fetch_add(1, kRelaxed);
  auto table = FetchFromOrigin(request, record);
  if (!table.ok()) {
    if (config_.degraded_mode &&
        table.status().code() != util::StatusCode::kInternal) {
      // The cache contributes nothing to this query: refuse honestly with a
      // Retry-After instead of a bare gateway error.
      counters_.degraded_unavailable.fetch_add(1, kRelaxed);
      record->degraded = true;
      return ServiceUnavailable();
    }
    return HttpResponse::MakeError(502, table.status().ToString());
  }
  record->tuples_total = table->num_rows();
  record->tuples_from_cache = 0;
  bool truncated = false;
  if (qt.has_top()) {
    auto stmt = qt.Instantiate(params);
    truncated = stmt.ok() && stmt->top_n.has_value() &&
                table->num_rows() == static_cast<size_t>(*stmt->top_n);
  }
  CacheResult(qt, *nonspatial_fp, param_fp, *region, *table,
              ft.coordinate_columns(), truncated);
  return Respond(*table);
}

util::Status FunctionProxy::SaveCache(const std::string& directory) const {
  return SaveCacheSnapshot(*cache_, directory);
}

util::StatusOr<size_t> FunctionProxy::LoadCache(const std::string& directory) {
  return LoadCacheSnapshot(directory, cache_.get());
}

HttpResponse FunctionProxy::Handle(const HttpRequest& request) {
  if (request.path == "/proxy/stats") {
    // Admin endpoint: one consistent snapshot (single pass over the atomics
    // and one lock acquisition), then rendered without re-reading live state.
    ProxyStats snapshot = stats();
    HttpResponse response;
    response.body = snapshot.ToXml();
    response.body += "<Cache entries=\"" +
                     std::to_string(cache_->num_entries()) + "\" bytes=\"" +
                     std::to_string(cache_->bytes_used()) + "\" evictions=\"" +
                     std::to_string(cache_->evictions()) + "\" description=\"" +
                     (config_.use_rtree_description ? "rtree" : "array") +
                     "\" shards=\"" + std::to_string(cache_->num_shards()) +
                     "\" mode=\"" + CachingModeName(config_.mode) + "\"/>\n";
    char breaker_line[160];
    std::snprintf(breaker_line, sizeof(breaker_line),
                  "<CircuitBreaker enabled=\"%d\" state=\"%s\""
                  " transitions=\"%llu\" failureRate=\"%.3f\"/>\n",
                  config_.breaker.enabled ? 1 : 0,
                  BreakerStateName(breaker_->state()),
                  static_cast<unsigned long long>(snapshot.breaker_transitions),
                  breaker_->FailureRate());
    response.body += breaker_line;
    return response;
  }

  counters_.requests.fetch_add(1, kRelaxed);
  ChargeMicros(config_.costs.request_parse_ms * 1000.0);

  QueryRecord record;
  const QueryTemplate* qt = templates_->FindByPath(request.path);
  const FunctionTemplate* ft =
      qt == nullptr ? nullptr
                    : templates_->FindFunctionTemplate(qt->function_name());

  HttpResponse response;
  if (config_.mode == CachingMode::kNoCache || qt == nullptr ||
      ft == nullptr) {
    response = Forward(request, &record);
  } else {
    counters_.template_requests.fetch_add(1, kRelaxed);
    record.handled_by_template = true;
    if (config_.mode == CachingMode::kPassive) {
      response = HandlePassive(request, &record);
    } else {
      response = HandleActive(request, *qt, *ft, &record);
    }
  }
  record.failed = !response.ok();
  {
    util::MutexLock lock(records_mu_);
    records_.push_back(record);
  }
  return response;
}

}  // namespace fnproxy::core
