#ifndef FNPROXY_CORE_LOCAL_EVAL_H_
#define FNPROXY_CORE_LOCAL_EVAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geometry/region.h"
#include "sql/ast.h"
#include "sql/columnar.h"
#include "sql/schema.h"
#include "util/status.h"

namespace fnproxy::core {

/// The proxy's local Query Processor for subsumed queries (paper §3.2 case
/// b): "the evaluation of a subsumed query becomes that of a spatial region
/// selection query over cached results". Given cached result tuples and the
/// new query's region, selects the tuples whose coordinate columns fall in
/// the region. `tuples_scanned` reports the work done (feeds the proxy cost
/// model).
struct LocalEvalResult {
  sql::Table table;
  size_t tuples_scanned = 0;
};

util::StatusOr<LocalEvalResult> SelectInRegion(
    const sql::Table& cached, const geometry::Region& region,
    const std::vector<std::string>& coordinate_columns);

/// Merges result tables with identical schemas, removing duplicate rows
/// (tuples appear in several cached results when regions overlapped).
/// Row identity is whole-row value equality.
util::StatusOr<sql::Table> MergeDistinct(
    const std::vector<const sql::Table*>& parts);

/// Applies the new query's ORDER BY / TOP to a merged table (the remainder
/// query is shipped without them; see BuildRemainderQuery).
util::StatusOr<sql::Table> ApplyOrderAndTop(const sql::Table& input,
                                            const sql::SelectStatement& stmt);

// --- Columnar hot path ------------------------------------------------------
//
// Cached results are stored columnar (core::CacheEntry); the subsumed-query
// pipeline below never materializes row objects: the region scan runs a
// batched membership kernel per region shape over pre-resolved coordinate
// arrays and emits a selection vector, which flows through dedup/order
// straight into XML serialization (sql::TableToXml selection overload).

/// Result of a columnar region scan: indices of the cached rows inside the
/// region, in row order.
struct ColumnarSelection {
  std::vector<uint32_t> selection;
  size_t tuples_scanned = 0;
};

/// Columnar SelectInRegion. Produces exactly the rows the row-wise overload
/// selects (same float semantics as Region::ContainsPoint, same handling of
/// NULL / non-numeric coordinates), as a selection vector instead of copies.
util::StatusOr<ColumnarSelection> SelectInRegion(
    const sql::ColumnarTable& cached, const geometry::Region& region,
    const std::vector<std::string>& coordinate_columns);

/// One merge input: a columnar table, optionally restricted to the rows in
/// `selection` (nullptr = all rows), in selection order.
struct ColumnarSlice {
  const sql::ColumnarTable* table = nullptr;
  const std::vector<uint32_t>* selection = nullptr;
};

/// Columnar MergeDistinct: 64-bit row hashes with equality fallback on
/// collision; first occurrence wins, matching the row-wise overload.
util::StatusOr<sql::ColumnarTable> MergeDistinctColumnar(
    const std::vector<ColumnarSlice>& parts);

/// Columnar ApplyOrderAndTop: reorders/limits `selection` (indices into
/// `input`) per the statement's ORDER BY / TOP. Same ordering semantics and
/// error messages as the row-wise overload.
util::StatusOr<std::vector<uint32_t>> ApplyOrderAndTop(
    const sql::ColumnarTable& input, std::vector<uint32_t> selection,
    const sql::SelectStatement& stmt);

}  // namespace fnproxy::core

#endif  // FNPROXY_CORE_LOCAL_EVAL_H_
