#ifndef FNPROXY_CORE_LOCAL_EVAL_H_
#define FNPROXY_CORE_LOCAL_EVAL_H_

#include <string>
#include <vector>

#include "geometry/region.h"
#include "sql/ast.h"
#include "sql/schema.h"
#include "util/status.h"

namespace fnproxy::core {

/// The proxy's local Query Processor for subsumed queries (paper §3.2 case
/// b): "the evaluation of a subsumed query becomes that of a spatial region
/// selection query over cached results". Given cached result tuples and the
/// new query's region, selects the tuples whose coordinate columns fall in
/// the region. `tuples_scanned` reports the work done (feeds the proxy cost
/// model).
struct LocalEvalResult {
  sql::Table table;
  size_t tuples_scanned = 0;
};

util::StatusOr<LocalEvalResult> SelectInRegion(
    const sql::Table& cached, const geometry::Region& region,
    const std::vector<std::string>& coordinate_columns);

/// Merges result tables with identical schemas, removing duplicate rows
/// (tuples appear in several cached results when regions overlapped).
/// Row identity is whole-row value equality.
util::StatusOr<sql::Table> MergeDistinct(
    const std::vector<const sql::Table*>& parts);

/// Applies the new query's ORDER BY / TOP to a merged table (the remainder
/// query is shipped without them; see BuildRemainderQuery).
util::StatusOr<sql::Table> ApplyOrderAndTop(const sql::Table& input,
                                            const sql::SelectStatement& stmt);

}  // namespace fnproxy::core

#endif  // FNPROXY_CORE_LOCAL_EVAL_H_
