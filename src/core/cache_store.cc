#include "core/cache_store.h"

#include <cassert>
#include <limits>

namespace fnproxy::core {

const char* ReplacementPolicyName(ReplacementPolicy policy) {
  switch (policy) {
    case ReplacementPolicy::kLru:
      return "LRU";
    case ReplacementPolicy::kLfu:
      return "LFU";
    case ReplacementPolicy::kSizeAdjusted:
      return "size-adjusted";
  }
  return "?";
}

CacheStore::CacheStore(std::unique_ptr<index::RegionIndex> description,
                       size_t max_bytes, ReplacementPolicy policy)
    : max_bytes_(max_bytes), policy_(policy) {
  auto shard = std::make_unique<Shard>();
  shard->description = std::move(description);
  shards_.push_back(std::move(shard));
}

CacheStore::CacheStore(const RegionIndexFactory& factory, size_t num_shards,
                       size_t max_bytes, ReplacementPolicy policy)
    : max_bytes_(max_bytes), policy_(policy) {
  if (num_shards == 0) num_shards = 1;
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->description = factory();
    shards_.push_back(std::move(shard));
  }
}

uint64_t CacheStore::PickVictim() const {
  uint64_t victim = 0;
  double best_score = std::numeric_limits<double>::infinity();
  for (const auto& shard : shards_) {
    util::ReaderMutexLock lock(shard->mu);
    for (const auto& [id, stored] : shard->entries) {
      int64_t last_access =
          stored.last_access_micros.load(std::memory_order_relaxed);
      uint64_t accesses = stored.access_count.load(std::memory_order_relaxed);
      double score = 0;
      switch (policy_) {
        case ReplacementPolicy::kLru:
          score = static_cast<double>(last_access);
          break;
        case ReplacementPolicy::kLfu:
          score = static_cast<double>(accesses);
          break;
        case ReplacementPolicy::kSizeAdjusted:
          // Benefit per byte: recently-used small entries are kept; large
          // cold entries go first.
          score = static_cast<double>(accesses + 1) /
                  static_cast<double>(stored.entry->bytes + 1);
          break;
      }
      if (score < best_score) {
        best_score = score;
        victim = id;
      }
    }
  }
  return victim;
}

uint64_t CacheStore::Insert(CacheEntry entry, size_t* comparisons) {
  return Insert(std::move(entry), comparisons, nullptr);
}

uint64_t CacheStore::Insert(CacheEntry entry, size_t* comparisons,
                            std::shared_ptr<const CacheEntry>* snapshot_out) {
  assert(entry.region != nullptr);
  *comparisons = 0;
  if (snapshot_out != nullptr) snapshot_out->reset();
  entry.bytes = entry.result.ByteSize() + 256;  // Entry metadata overhead.
  if (max_bytes_ != 0 && entry.bytes > max_bytes_) {
    return 0;  // Larger than the whole cache; not cacheable.
  }
  // Reserve the bytes first, then evict down to budget. Reserving up front
  // keeps concurrent admissions from all passing a stale budget check and
  // collectively overshooting without bound.
  bytes_used_.fetch_add(entry.bytes, std::memory_order_relaxed);
  while (max_bytes_ != 0 &&
         bytes_used_.load(std::memory_order_relaxed) > max_bytes_ &&
         num_entries_.load(std::memory_order_relaxed) > 0) {
    uint64_t victim = PickVictim();
    if (victim == 0) break;
    size_t removal_comparisons = 0;
    // A concurrent admission may have evicted the same victim; only the
    // thread whose Remove succeeds counts the eviction.
    if (Remove(victim, &removal_comparisons)) {
      *comparisons += removal_comparisons;
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  entry.id = id;
  geometry::Hyperrectangle bbox = entry.region->BoundingBox();
  int64_t last_access = entry.last_access_micros;
  uint64_t accesses = entry.access_count;
  auto snapshot = std::make_shared<const CacheEntry>(std::move(entry));
  if (snapshot_out != nullptr) *snapshot_out = snapshot;

  Shard& shard = ShardFor(id);
  {
    util::WriterMutexLock lock(shard.mu);
    size_t insert_comparisons = 0;
    shard.description->Insert(id, bbox, &insert_comparisons);
    *comparisons += insert_comparisons;
    Stored& stored = shard.entries[id];
    stored.entry = std::move(snapshot);
    stored.last_access_micros.store(last_access, std::memory_order_relaxed);
    stored.access_count.store(accesses, std::memory_order_relaxed);
  }
  num_entries_.fetch_add(1, std::memory_order_relaxed);
  return id;
}

bool CacheStore::Remove(uint64_t id, size_t* comparisons) {
  *comparisons = 0;
  Shard& shard = ShardFor(id);
  size_t freed = 0;
  {
    util::WriterMutexLock lock(shard.mu);
    auto it = shard.entries.find(id);
    if (it == shard.entries.end()) return false;
    freed = it->second.entry->bytes;
    shard.description->Remove(id, comparisons);
    shard.entries.erase(it);
  }
  bytes_used_.fetch_sub(freed, std::memory_order_relaxed);
  num_entries_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

std::shared_ptr<const CacheEntry> CacheStore::Find(uint64_t id) const {
  const Shard& shard = ShardFor(id);
  util::ReaderMutexLock lock(shard.mu);
  auto it = shard.entries.find(id);
  return it == shard.entries.end() ? nullptr : it->second.entry;
}

void CacheStore::Touch(uint64_t id, int64_t now_micros) {
  Shard& shard = ShardFor(id);
  util::ReaderMutexLock lock(shard.mu);
  auto it = shard.entries.find(id);
  if (it == shard.entries.end()) return;
  it->second.last_access_micros.store(now_micros, std::memory_order_relaxed);
  it->second.access_count.fetch_add(1, std::memory_order_relaxed);
}

std::vector<uint64_t> CacheStore::Candidates(
    const geometry::Hyperrectangle& bbox, size_t* comparisons) const {
  *comparisons = 0;
  std::vector<uint64_t> ids;
  for (const auto& shard : shards_) {
    util::ReaderMutexLock lock(shard->mu);
    size_t shard_comparisons = 0;
    std::vector<uint64_t> shard_ids =
        shard->description->SearchIntersecting(bbox, &shard_comparisons);
    *comparisons += shard_comparisons;
    ids.insert(ids.end(), shard_ids.begin(), shard_ids.end());
  }
  return ids;
}

std::vector<uint64_t> CacheStore::AllIds() const {
  std::vector<uint64_t> ids;
  for (const auto& shard : shards_) {
    util::ReaderMutexLock lock(shard->mu);
    for (const auto& [id, stored] : shard->entries) ids.push_back(id);
  }
  return ids;
}

}  // namespace fnproxy::core
