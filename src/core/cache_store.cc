#include "core/cache_store.h"

#include <cassert>
#include <limits>

namespace fnproxy::core {

const char* ReplacementPolicyName(ReplacementPolicy policy) {
  switch (policy) {
    case ReplacementPolicy::kLru:
      return "LRU";
    case ReplacementPolicy::kLfu:
      return "LFU";
    case ReplacementPolicy::kSizeAdjusted:
      return "size-adjusted";
  }
  return "?";
}

CacheStore::CacheStore(std::unique_ptr<index::RegionIndex> description,
                       size_t max_bytes, ReplacementPolicy policy)
    : description_(std::move(description)),
      max_bytes_(max_bytes),
      policy_(policy) {}

uint64_t CacheStore::PickVictim() const {
  uint64_t victim = 0;
  double best_score = std::numeric_limits<double>::infinity();
  for (const auto& [id, entry] : entries_) {
    double score = 0;
    switch (policy_) {
      case ReplacementPolicy::kLru:
        score = static_cast<double>(entry.last_access_micros);
        break;
      case ReplacementPolicy::kLfu:
        score = static_cast<double>(entry.access_count);
        break;
      case ReplacementPolicy::kSizeAdjusted:
        // Benefit per byte: recently-used small entries are kept; large cold
        // entries go first.
        score = static_cast<double>(entry.access_count + 1) /
                static_cast<double>(entry.bytes + 1);
        break;
    }
    if (score < best_score) {
      best_score = score;
      victim = id;
    }
  }
  return victim;
}

uint64_t CacheStore::Insert(CacheEntry entry) {
  assert(entry.region != nullptr);
  entry.bytes = entry.result.ByteSize() + 256;  // Entry metadata overhead.
  if (max_bytes_ != 0 && entry.bytes > max_bytes_) {
    return 0;  // Larger than the whole cache; not cacheable.
  }
  while (max_bytes_ != 0 && bytes_used_ + entry.bytes > max_bytes_ &&
         !entries_.empty()) {
    uint64_t victim = PickVictim();
    if (victim == 0) break;
    Remove(victim);
    ++evictions_;
  }
  entry.id = next_id_++;
  description_->Insert(entry.id, entry.region->BoundingBox());
  bytes_used_ += entry.bytes;
  uint64_t id = entry.id;
  entries_.emplace(id, std::move(entry));
  return id;
}

bool CacheStore::Remove(uint64_t id) {
  auto it = entries_.find(id);
  if (it == entries_.end()) return false;
  bytes_used_ -= it->second.bytes;
  description_->Remove(id);
  entries_.erase(it);
  return true;
}

const CacheEntry* CacheStore::Find(uint64_t id) const {
  auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : &it->second;
}

void CacheStore::Touch(uint64_t id, int64_t now_micros) {
  auto it = entries_.find(id);
  if (it == entries_.end()) return;
  it->second.last_access_micros = now_micros;
  ++it->second.access_count;
}

std::vector<uint64_t> CacheStore::Candidates(
    const geometry::Hyperrectangle& bbox) const {
  return description_->SearchIntersecting(bbox);
}

std::vector<uint64_t> CacheStore::AllIds() const {
  std::vector<uint64_t> ids;
  ids.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) ids.push_back(id);
  return ids;
}

}  // namespace fnproxy::core
