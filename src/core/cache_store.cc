#include "core/cache_store.h"

#include <cassert>
#include <limits>

#include "storage/wire.h"

namespace fnproxy::core {

const char* EntryTierName(EntryTier tier) {
  switch (tier) {
    case EntryTier::kHot:
      return "hot";
    case EntryTier::kFrozen:
      return "frozen";
    case EntryTier::kSpilled:
      return "spilled";
  }
  return "?";
}

const char* ReplacementPolicyName(ReplacementPolicy policy) {
  switch (policy) {
    case ReplacementPolicy::kLru:
      return "LRU";
    case ReplacementPolicy::kLfu:
      return "LFU";
    case ReplacementPolicy::kSizeAdjusted:
      return "size-adjusted";
  }
  return "?";
}

CacheStore::CacheStore(std::unique_ptr<index::RegionIndex> description,
                       size_t max_bytes, ReplacementPolicy policy)
    : max_bytes_(max_bytes), policy_(policy) {
  auto shard = std::make_unique<Shard>();
  shard->description = std::move(description);
  shards_.push_back(std::move(shard));
}

CacheStore::CacheStore(const RegionIndexFactory& factory, size_t num_shards,
                       size_t max_bytes, ReplacementPolicy policy)
    : max_bytes_(max_bytes), policy_(policy) {
  if (num_shards == 0) num_shards = 1;
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->description = factory();
    shards_.push_back(std::move(shard));
  }
}

CacheStore::~CacheStore() {
  // Destruction is single-threaded by contract; locks are taken only to
  // satisfy the thread-safety analysis.
  for (const auto& shard : shards_) {
    util::ReaderMutexLock lock(shard->mu);
    for (const auto& [id, stored] : shard->entries) {
      if (!stored.entry->spill_file.empty()) {
        storage::RemoveFileIfExists(stored.entry->spill_file);
      }
    }
  }
}

uint64_t CacheStore::PickVictim() const {
  uint64_t victim = 0;
  double best_score = std::numeric_limits<double>::infinity();
  for (const auto& shard : shards_) {
    util::ReaderMutexLock lock(shard->mu);
    for (const auto& [id, stored] : shard->entries) {
      int64_t last_access =
          stored.last_access_micros.load(std::memory_order_relaxed);
      uint64_t accesses = stored.access_count.load(std::memory_order_relaxed);
      double score = 0;
      switch (policy_) {
        case ReplacementPolicy::kLru:
          score = static_cast<double>(last_access);
          break;
        case ReplacementPolicy::kLfu:
          score = static_cast<double>(accesses);
          break;
        case ReplacementPolicy::kSizeAdjusted:
          // Benefit per byte: recently-used small entries are kept; large
          // cold entries go first.
          score = static_cast<double>(accesses + 1) /
                  static_cast<double>(stored.entry->bytes + 1);
          break;
      }
      if (score < best_score) {
        best_score = score;
        victim = id;
      }
    }
  }
  return victim;
}

uint64_t CacheStore::Insert(CacheEntry entry, size_t* comparisons) {
  return Insert(std::move(entry), comparisons, nullptr);
}

uint64_t CacheStore::Insert(CacheEntry entry, size_t* comparisons,
                            std::shared_ptr<const CacheEntry>* snapshot_out) {
  assert(entry.region != nullptr);
  assert(entry.tier != EntryTier::kSpilled);  // Admissions are hot or frozen.
  *comparisons = 0;
  if (snapshot_out != nullptr) snapshot_out->reset();
  // Entry metadata overhead on top of the tier's payload.
  entry.bytes = (entry.tier == EntryTier::kHot
                     ? entry.result.ByteSize()
                     : (entry.segment != nullptr ? entry.segment->ByteSize()
                                                 : 0)) +
                256;
  if (max_bytes_ != 0 && entry.bytes > max_bytes_) {
    return 0;  // Larger than the whole cache; not cacheable.
  }
  // Reserve the bytes first, then evict down to budget. Reserving up front
  // keeps concurrent admissions from all passing a stale budget check and
  // collectively overshooting without bound.
  bytes_used_.fetch_add(entry.bytes, std::memory_order_relaxed);
  while (max_bytes_ != 0 &&
         bytes_used_.load(std::memory_order_relaxed) > max_bytes_ &&
         num_entries_.load(std::memory_order_relaxed) > 0) {
    uint64_t victim = PickVictim();
    if (victim == 0) break;
    size_t removal_comparisons = 0;
    // A concurrent admission may have evicted the same victim; only the
    // thread whose Remove succeeds counts the eviction.
    if (Remove(victim, &removal_comparisons)) {
      *comparisons += removal_comparisons;
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  entry.id = id;
  geometry::Hyperrectangle bbox = entry.region->BoundingBox();
  int64_t last_access = entry.last_access_micros;
  uint64_t accesses = entry.access_count;
  if (entry.tier == EntryTier::kFrozen) {
    frozen_entries_.fetch_add(1, std::memory_order_relaxed);
  }
  auto snapshot = std::make_shared<const CacheEntry>(std::move(entry));
  if (snapshot_out != nullptr) *snapshot_out = snapshot;

  Shard& shard = ShardFor(id);
  {
    util::WriterMutexLock lock(shard.mu);
    size_t insert_comparisons = 0;
    shard.description->Insert(id, bbox, &insert_comparisons);
    *comparisons += insert_comparisons;
    Stored& stored = shard.entries[id];
    stored.entry = std::move(snapshot);
    stored.last_access_micros.store(last_access, std::memory_order_relaxed);
    stored.access_count.store(accesses, std::memory_order_relaxed);
  }
  num_entries_.fetch_add(1, std::memory_order_relaxed);
  return id;
}

bool CacheStore::Remove(uint64_t id, size_t* comparisons) {
  *comparisons = 0;
  Shard& shard = ShardFor(id);
  std::shared_ptr<const CacheEntry> removed;
  {
    util::WriterMutexLock lock(shard.mu);
    auto it = shard.entries.find(id);
    if (it == shard.entries.end()) return false;
    removed = std::move(it->second.entry);
    shard.description->Remove(id, comparisons);
    shard.entries.erase(it);
  }
  bytes_used_.fetch_sub(removed->bytes, std::memory_order_relaxed);
  num_entries_.fetch_sub(1, std::memory_order_relaxed);
  if (removed->tier == EntryTier::kFrozen) {
    frozen_entries_.fetch_sub(1, std::memory_order_relaxed);
  } else if (removed->tier == EntryTier::kSpilled) {
    spilled_entries_.fetch_sub(1, std::memory_order_relaxed);
    spill_bytes_.fetch_sub(removed->spill_file_bytes,
                           std::memory_order_relaxed);
    storage::RemoveFileIfExists(removed->spill_file);
  }
  return true;
}

bool CacheStore::SwapEntry(uint64_t id,
                           const std::shared_ptr<const CacheEntry>& expected,
                           std::shared_ptr<const CacheEntry> replacement) {
  Shard& shard = ShardFor(id);
  size_t new_bytes = replacement->bytes;
  EntryTier new_tier = replacement->tier;
  size_t old_bytes = 0;
  EntryTier old_tier = EntryTier::kHot;
  {
    util::WriterMutexLock lock(shard.mu);
    auto it = shard.entries.find(id);
    if (it == shard.entries.end() || it->second.entry != expected) {
      return false;  // Removed or already swapped by a concurrent thread.
    }
    old_bytes = expected->bytes;
    old_tier = expected->tier;
    it->second.entry = std::move(replacement);
  }
  if (new_bytes >= old_bytes) {
    bytes_used_.fetch_add(new_bytes - old_bytes, std::memory_order_relaxed);
  } else {
    bytes_used_.fetch_sub(old_bytes - new_bytes, std::memory_order_relaxed);
  }
  if (old_tier == EntryTier::kFrozen) {
    frozen_entries_.fetch_sub(1, std::memory_order_relaxed);
  } else if (old_tier == EntryTier::kSpilled) {
    spilled_entries_.fetch_sub(1, std::memory_order_relaxed);
  }
  if (new_tier == EntryTier::kFrozen) {
    frozen_entries_.fetch_add(1, std::memory_order_relaxed);
  } else if (new_tier == EntryTier::kSpilled) {
    spilled_entries_.fetch_add(1, std::memory_order_relaxed);
  }
  return true;
}

CacheEntry CacheStore::CloneMeta(const CacheEntry& entry) {
  CacheEntry clone;
  clone.id = entry.id;
  clone.template_id = entry.template_id;
  clone.nonspatial_fingerprint = entry.nonspatial_fingerprint;
  clone.param_fingerprint = entry.param_fingerprint;
  clone.region = entry.region->Clone();
  clone.truncated = entry.truncated;
  clone.last_access_micros = entry.last_access_micros;
  clone.access_count = entry.access_count;
  return clone;
}

std::string CacheStore::SpillPathFor(uint64_t id) const {
  return tier_config_.spill_dir + "/entry-" + std::to_string(id) + ".seg";
}

TierSweepResult CacheStore::SweepColdEntries(int64_t now_micros) {
  TierSweepResult result;
  const TierConfig& cfg = tier_config_;
  if (cfg.freeze_idle_micros <= 0 && cfg.spill_idle_micros <= 0) return result;

  // Phase 1: collect demotion candidates under shared locks (snapshots keep
  // the entries alive after release).
  struct Candidate {
    uint64_t id;
    std::shared_ptr<const CacheEntry> entry;
  };
  std::vector<Candidate> to_freeze;
  std::vector<Candidate> to_spill;
  for (const auto& shard : shards_) {
    util::ReaderMutexLock lock(shard->mu);
    for (const auto& [id, stored] : shard->entries) {
      int64_t idle =
          now_micros - stored.last_access_micros.load(std::memory_order_relaxed);
      const std::shared_ptr<const CacheEntry>& entry = stored.entry;
      if (entry->tier == EntryTier::kHot && cfg.freeze_idle_micros > 0 &&
          idle >= cfg.freeze_idle_micros) {
        to_freeze.push_back({id, entry});
      } else if (entry->tier == EntryTier::kFrozen &&
                 cfg.spill_idle_micros > 0 && !cfg.spill_dir.empty() &&
                 idle >= cfg.spill_idle_micros) {
        to_spill.push_back({id, entry});
      }
    }
  }

  // Phase 2: encode / write outside the locks, then install with a
  // validate-and-swap (a concurrently promoted or evicted entry loses its
  // demotion silently). An entry touched between collection and swap may
  // still freeze — harmless, the next tuple access thaws it.
  for (const Candidate& c : to_freeze) {
    auto segment = std::make_shared<const storage::FrozenSegment>(
        storage::FrozenSegment::Freeze(c.entry->result));
    CacheEntry demoted = CloneMeta(*c.entry);
    demoted.tier = EntryTier::kFrozen;
    demoted.result = sql::ColumnarTable(c.entry->result.schema());
    demoted.segment = segment;
    demoted.bytes = segment->ByteSize() + 256;
    if (SwapEntry(c.id, c.entry,
                  std::make_shared<const CacheEntry>(std::move(demoted)))) {
      freezes_.fetch_add(1, std::memory_order_relaxed);
      frozen_raw_bytes_.fetch_add(segment->raw_byte_size(),
                                  std::memory_order_relaxed);
      frozen_encoded_bytes_.fetch_add(segment->ByteSize(),
                                      std::memory_order_relaxed);
      ++result.frozen;
    }
  }

  for (const Candidate& c : to_spill) {
    std::string file = storage::BuildSnapshotFile(
        {{storage::kSectionEntries, c.entry->segment->Serialize()}});
    if (cfg.spill_max_bytes != 0 &&
        spill_bytes_.load(std::memory_order_relaxed) + file.size() >
            cfg.spill_max_bytes) {
      break;  // Disk budget exhausted; later sweeps retry as files fault back.
    }
    std::string path = SpillPathFor(c.id);
    if (!storage::WriteFileAtomic(path, file).ok()) {
      spill_io_errors_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    CacheEntry demoted = CloneMeta(*c.entry);
    demoted.tier = EntryTier::kSpilled;
    demoted.result = sql::ColumnarTable(c.entry->segment->schema());
    demoted.spill_file = path;
    demoted.spill_file_bytes = file.size();
    demoted.bytes = 256;
    if (SwapEntry(c.id, c.entry,
                  std::make_shared<const CacheEntry>(std::move(demoted)))) {
      spills_.fetch_add(1, std::memory_order_relaxed);
      spill_bytes_.fetch_add(file.size(), std::memory_order_relaxed);
      ++result.spilled;
    } else {
      storage::RemoveFileIfExists(path);
    }
  }
  return result;
}

std::shared_ptr<const CacheEntry> CacheStore::FindHot(uint64_t id) {
  for (int attempt = 0; attempt < 4; ++attempt) {
    std::shared_ptr<const CacheEntry> snapshot = Find(id);
    if (snapshot == nullptr) return nullptr;
    if (snapshot->tier == EntryTier::kHot) return snapshot;

    std::shared_ptr<const storage::FrozenSegment> segment = snapshot->segment;
    if (snapshot->tier == EntryTier::kSpilled) {
      // Fault the segment back from disk, without locks. A lost or corrupt
      // spill file turns the entry into a miss (dropped, not served wrong).
      auto contents = storage::ReadFileToString(snapshot->spill_file);
      std::shared_ptr<const storage::FrozenSegment> parsed;
      if (contents.ok()) {
        auto sections = storage::ParseSnapshotFile(*contents);
        if (sections.ok()) {
          for (const storage::Section& section : *sections) {
            if (section.id != storage::kSectionEntries) continue;
            auto seg = storage::FrozenSegment::Parse(section.payload);
            if (seg.ok()) {
              parsed = std::make_shared<const storage::FrozenSegment>(
                  std::move(*seg));
            }
            break;
          }
        }
      }
      if (parsed == nullptr) {
        spill_io_errors_.fetch_add(1, std::memory_order_relaxed);
        size_t comparisons = 0;
        Remove(id, &comparisons);
        return nullptr;
      }
      segment = std::move(parsed);
      spill_faults_.fetch_add(1, std::memory_order_relaxed);
    }

    CacheEntry promoted = CloneMeta(*snapshot);
    promoted.tier = EntryTier::kHot;
    promoted.result = segment->Thaw();
    promoted.bytes = promoted.result.ByteSize() + 256;
    auto hot = std::make_shared<const CacheEntry>(std::move(promoted));
    if (SwapEntry(id, snapshot, hot)) {
      thaws_.fetch_add(1, std::memory_order_relaxed);
      if (snapshot->tier == EntryTier::kSpilled) {
        spill_bytes_.fetch_sub(snapshot->spill_file_bytes,
                               std::memory_order_relaxed);
        storage::RemoveFileIfExists(snapshot->spill_file);
      }
      return hot;
    }
    // Swap lost a race (concurrent promotion or eviction); re-read and retry.
  }
  // Pathological contention: give the caller a correct private hot copy
  // without installing it.
  std::shared_ptr<const CacheEntry> snapshot = Find(id);
  if (snapshot == nullptr || snapshot->tier == EntryTier::kHot) return snapshot;
  if (snapshot->segment == nullptr) return nullptr;
  CacheEntry promoted = CloneMeta(*snapshot);
  promoted.tier = EntryTier::kHot;
  promoted.result = snapshot->segment->Thaw();
  promoted.bytes = promoted.result.ByteSize() + 256;
  return std::make_shared<const CacheEntry>(std::move(promoted));
}

std::shared_ptr<const CacheEntry> CacheStore::Find(uint64_t id) const {
  const Shard& shard = ShardFor(id);
  util::ReaderMutexLock lock(shard.mu);
  auto it = shard.entries.find(id);
  return it == shard.entries.end() ? nullptr : it->second.entry;
}

void CacheStore::Touch(uint64_t id, int64_t now_micros) {
  Shard& shard = ShardFor(id);
  util::ReaderMutexLock lock(shard.mu);
  auto it = shard.entries.find(id);
  if (it == shard.entries.end()) return;
  it->second.last_access_micros.store(now_micros, std::memory_order_relaxed);
  it->second.access_count.fetch_add(1, std::memory_order_relaxed);
}

std::vector<uint64_t> CacheStore::Candidates(
    const geometry::Hyperrectangle& bbox, size_t* comparisons) const {
  *comparisons = 0;
  std::vector<uint64_t> ids;
  for (const auto& shard : shards_) {
    util::ReaderMutexLock lock(shard->mu);
    size_t shard_comparisons = 0;
    std::vector<uint64_t> shard_ids =
        shard->description->SearchIntersecting(bbox, &shard_comparisons);
    *comparisons += shard_comparisons;
    ids.insert(ids.end(), shard_ids.begin(), shard_ids.end());
  }
  return ids;
}

std::vector<uint64_t> CacheStore::AllIds() const {
  std::vector<uint64_t> ids;
  for (const auto& shard : shards_) {
    util::ReaderMutexLock lock(shard->mu);
    for (const auto& [id, stored] : shard->entries) ids.push_back(id);
  }
  return ids;
}

}  // namespace fnproxy::core
