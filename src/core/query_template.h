#ifndef FNPROXY_CORE_QUERY_TEMPLATE_H_
#define FNPROXY_CORE_QUERY_TEMPLATE_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "sql/ast.h"
#include "sql/value.h"
#include "util/status.h"

namespace fnproxy::core {

/// A function-embedded query template (paper Fig. 2): parameterized SQL tied
/// to an HTML search form, whose FROM clause calls a table-valued function.
/// Parameters are split into *spatial* ones (those feeding the function call
/// and thus the region) and *non-spatial* ones (the optional
/// "other_predicates" constants). Cached queries are comparable — for
/// containment/overlap reasoning — only when their non-spatial parameters
/// match; the spatial relationship then decides everything else.
class QueryTemplate {
 public:
  /// Parses and validates `sql_text`. The FROM source must be a function
  /// call; every FROM argument must be an expression over $parameters and
  /// literals.
  static util::StatusOr<QueryTemplate> Create(std::string id,
                                              std::string form_path,
                                              std::string sql_text);

  const std::string& id() const { return id_; }
  const std::string& form_path() const { return form_path_; }
  const std::string& sql_text() const { return sql_text_; }
  const sql::SelectStatement& statement() const { return stmt_; }
  /// Name of the table-valued function in the FROM clause (as written,
  /// e.g. "dbo.fGetNearbyObjEq").
  const std::string& function_name() const { return stmt_.from.name; }

  const std::set<std::string>& all_params() const { return all_params_; }
  const std::set<std::string>& spatial_params() const { return spatial_params_; }
  const std::set<std::string>& nonspatial_params() const {
    return nonspatial_params_;
  }

  /// True when the statement has a TOP clause (results may be truncated at
  /// the origin; see CacheEntry::truncated).
  bool has_top() const { return stmt_.top_n.has_value(); }

  /// True when the SELECT list or ORDER BY references columns of the
  /// table-valued function's own output (e.g. `n.distance`). Such values
  /// depend on the function's *arguments*, not just on the tuple, so cached
  /// results cannot answer a different (merely contained/overlapping) query
  /// — the proxy restricts these templates to exact-match reuse. Detection
  /// is conservative: a function-qualified or unqualified column reference,
  /// or a star covering the function source, marks the template dependent.
  bool function_dependent_projection() const {
    return function_dependent_projection_;
  }

  /// Evaluates the FROM-clause argument expressions under `params`,
  /// producing the concrete function-call argument values (these feed
  /// FunctionTemplate::BuildRegion).
  util::StatusOr<std::vector<sql::Value>> FunctionArgs(
      const std::map<std::string, sql::Value>& params) const;

  /// Substitutes all parameters, yielding the executable statement.
  util::StatusOr<sql::SelectStatement> Instantiate(
      const std::map<std::string, sql::Value>& params) const;

  /// Canonical string over the non-spatial parameter values; two requests
  /// are cache-comparable iff their fingerprints are equal.
  util::StatusOr<std::string> NonSpatialFingerprint(
      const std::map<std::string, sql::Value>& params) const;

  QueryTemplate(QueryTemplate&&) = default;
  QueryTemplate& operator=(QueryTemplate&&) = default;

 private:
  QueryTemplate() = default;

  std::string id_;
  std::string form_path_;
  std::string sql_text_;
  sql::SelectStatement stmt_;
  std::set<std::string> all_params_;
  std::set<std::string> spatial_params_;
  std::set<std::string> nonspatial_params_;
  bool function_dependent_projection_ = false;
};

}  // namespace fnproxy::core

#endif  // FNPROXY_CORE_QUERY_TEMPLATE_H_
