#include "core/region_predicate.h"

#include "geometry/hyperrectangle.h"
#include "geometry/hypersphere.h"
#include "geometry/polytope.h"

namespace fnproxy::core {

using geometry::Region;
using geometry::ShapeKind;
using sql::BinaryOp;
using sql::Expr;
using sql::Value;
using util::Status;
using util::StatusOr;

namespace {

std::unique_ptr<Expr> Col(const std::string& name) {
  return Expr::ColumnRef("", name);
}

std::unique_ptr<Expr> Lit(double v) { return Expr::Literal(Value::Double(v)); }

}  // namespace

StatusOr<std::unique_ptr<Expr>> RegionToPredicate(
    const Region& region, const std::vector<std::string>& coordinate_columns) {
  if (coordinate_columns.size() != region.dimensions()) {
    return Status::InvalidArgument(
        "coordinate column count does not match region dimensionality");
  }
  switch (region.kind()) {
    case ShapeKind::kHypersphere: {
      const auto& sphere = static_cast<const geometry::Hypersphere&>(region);
      std::unique_ptr<Expr> sum;
      for (size_t i = 0; i < coordinate_columns.size(); ++i) {
        auto diff = Expr::Binary(BinaryOp::kSub, Col(coordinate_columns[i]),
                                 Lit(sphere.center()[i]));
        auto diff_copy = diff->Clone();
        auto square =
            Expr::Binary(BinaryOp::kMul, std::move(diff_copy), std::move(diff));
        sum = sum == nullptr
                  ? std::move(square)
                  : Expr::Binary(BinaryOp::kAdd, std::move(sum),
                                 std::move(square));
      }
      return Expr::Binary(BinaryOp::kLe, std::move(sum),
                          Lit(sphere.radius() * sphere.radius()));
    }
    case ShapeKind::kHyperrectangle: {
      const auto& rect = static_cast<const geometry::Hyperrectangle&>(region);
      std::vector<std::unique_ptr<Expr>> conjuncts;
      for (size_t i = 0; i < coordinate_columns.size(); ++i) {
        conjuncts.push_back(Expr::Binary(
            BinaryOp::kGe, Col(coordinate_columns[i]), Lit(rect.lo()[i])));
        conjuncts.push_back(Expr::Binary(
            BinaryOp::kLe, Col(coordinate_columns[i]), Lit(rect.hi()[i])));
      }
      return sql::ConjoinAll(std::move(conjuncts));
    }
    case ShapeKind::kPolytope: {
      const auto& poly = static_cast<const geometry::Polytope&>(region);
      std::vector<std::unique_ptr<Expr>> conjuncts;
      for (const geometry::Halfspace& h : poly.halfspaces()) {
        std::unique_ptr<Expr> sum;
        for (size_t i = 0; i < coordinate_columns.size(); ++i) {
          auto term = Expr::Binary(BinaryOp::kMul, Lit(h.normal[i]),
                                   Col(coordinate_columns[i]));
          sum = sum == nullptr ? std::move(term)
                               : Expr::Binary(BinaryOp::kAdd, std::move(sum),
                                              std::move(term));
        }
        conjuncts.push_back(
            Expr::Binary(BinaryOp::kLe, std::move(sum), Lit(h.offset)));
      }
      return sql::ConjoinAll(std::move(conjuncts));
    }
  }
  return Status::Internal("bad region kind");
}

StatusOr<sql::SelectStatement> BuildRemainderQuery(
    const sql::SelectStatement& base,
    const std::vector<const Region*>& excluded_regions,
    const std::vector<std::string>& coordinate_columns) {
  sql::SelectStatement remainder = base.Clone();
  // The proxy applies TOP / ORDER BY locally over the merged result; the
  // remainder must return every remaining in-region tuple.
  remainder.top_n.reset();
  remainder.order_by.clear();

  std::vector<std::unique_ptr<Expr>> conjuncts;
  if (remainder.where != nullptr) {
    conjuncts.push_back(std::move(remainder.where));
  }
  for (const Region* region : excluded_regions) {
    FNPROXY_ASSIGN_OR_RETURN(std::unique_ptr<Expr> in_region,
                             RegionToPredicate(*region, coordinate_columns));
    conjuncts.push_back(Expr::Unary(sql::UnaryOp::kNot, std::move(in_region)));
  }
  remainder.where = sql::ConjoinAll(std::move(conjuncts));
  return remainder;
}

}  // namespace fnproxy::core
