#include "core/template_registry.h"

#include "util/string_util.h"
#include "xml/xml.h"

namespace fnproxy::core {

using util::Status;

std::string TemplateRegistry::NormalizeName(std::string_view name) {
  std::string lower = util::ToLower(name);
  if (util::StartsWith(lower, "dbo.")) lower = lower.substr(4);
  return lower;
}

Status TemplateRegistry::RegisterFunctionTemplate(FunctionTemplate tmpl) {
  std::string key = NormalizeName(tmpl.name());
  function_templates_.insert_or_assign(std::move(key), std::move(tmpl));
  return Status::Ok();
}

Status TemplateRegistry::RegisterFunctionTemplateXml(std::string_view xml_text) {
  FNPROXY_ASSIGN_OR_RETURN(FunctionTemplate tmpl,
                           FunctionTemplate::FromXml(xml_text));
  return RegisterFunctionTemplate(std::move(tmpl));
}

Status TemplateRegistry::RegisterQueryTemplate(QueryTemplate tmpl) {
  if (by_id_.count(tmpl.id()) > 0) {
    return Status::AlreadyExists("query template '" + tmpl.id() +
                                 "' already registered");
  }
  path_to_id_[tmpl.form_path()] = tmpl.id();
  std::string id = tmpl.id();
  by_id_.emplace(std::move(id), std::move(tmpl));
  return Status::Ok();
}

Status TemplateRegistry::RegisterInfoXml(std::string_view xml_text) {
  FNPROXY_ASSIGN_OR_RETURN(auto root, xml::ParseXml(xml_text));
  if (root->name() != "TemplateInfo") {
    return Status::ParseError("expected <TemplateInfo> root");
  }
  FNPROXY_ASSIGN_OR_RETURN(std::string id, root->ChildText("Id"));
  FNPROXY_ASSIGN_OR_RETURN(std::string path, root->ChildText("FormPath"));
  FNPROXY_ASSIGN_OR_RETURN(std::string sql, root->ChildText("QueryTemplate"));
  FNPROXY_ASSIGN_OR_RETURN(
      QueryTemplate tmpl,
      QueryTemplate::Create(std::move(id), std::move(path), std::move(sql)));
  return RegisterQueryTemplate(std::move(tmpl));
}

const QueryTemplate* TemplateRegistry::FindByPath(std::string_view path) const {
  auto it = path_to_id_.find(std::string(path));
  if (it == path_to_id_.end()) return nullptr;
  return FindById(it->second);
}

const QueryTemplate* TemplateRegistry::FindById(std::string_view id) const {
  auto it = by_id_.find(std::string(id));
  return it == by_id_.end() ? nullptr : &it->second;
}

const FunctionTemplate* TemplateRegistry::FindFunctionTemplate(
    std::string_view name) const {
  auto it = function_templates_.find(NormalizeName(name));
  return it == function_templates_.end() ? nullptr : &it->second;
}

}  // namespace fnproxy::core
