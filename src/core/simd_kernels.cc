// Membership kernels: runtime-dispatched 8-wide SIMD (AVX2 / NEON) with a
// scalar reference path. Bit-identical selection across paths is a hard
// requirement (the proxy's responses must not depend on the host CPU), which
// constrains the vector code in two ways:
//  * per-row operation order matches the scalar code exactly — rows are
//    assigned to lanes, dimensions stay a sequential inner loop, so each
//    lane accumulates in the same order the scalar loop does;
//  * no fused multiply-add — this translation unit is built with
//    -ffp-contract=off (see src/core/CMakeLists.txt) so mul+add pairs are
//    never contracted into FMA, whose single rounding would diverge from the
//    scalar path's two roundings.
// Selection-vector compaction is branchless: every lane stores its row index
// at out[count] and the mask bit advances the cursor, so match density does
// not perturb the branch predictor.

#include "core/simd_kernels.h"

#include "util/simd.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define FNPROXY_KERNELS_HAVE_AVX2 1
#endif
#if defined(__aarch64__)
#include <arm_neon.h>
#define FNPROXY_KERNELS_HAVE_NEON 1
#endif

namespace fnproxy::core::kernels {

namespace {

/// Validity bits for rows [r, r+8) as an 8-bit mask; `r` must be a multiple
/// of 8, so the eight bits never straddle a bitmap word.
inline uint32_t ValidMask8(const Column* cols, size_t dims, size_t r) {
  uint32_t mask = 0xFFu;
  for (size_t d = 0; d < dims; ++d) {
    if (cols[d].valid != nullptr) {
      mask &= static_cast<uint32_t>((cols[d].valid[r >> 6] >> (r & 63)) &
                                    0xFFu);
    }
  }
  return mask;
}

inline bool RowValid(const Column* cols, size_t dims, size_t r) {
  for (size_t d = 0; d < dims; ++d) {
    if (cols[d].valid != nullptr &&
        ((cols[d].valid[r >> 6] >> (r & 63)) & 1u) == 0) {
      return false;
    }
  }
  return true;
}

inline bool SphereRow(const Column* cols, size_t dims, size_t r,
                      const double* center, double limit_sq) {
  double sum = 0.0;
  for (size_t d = 0; d < dims; ++d) {
    double diff = cols[d].data[r] - center[d];
    sum += diff * diff;
  }
  return sum <= limit_sq;
}

inline bool RectRow(const Column* cols, size_t rect_dims, size_t r,
                    const double* lo, const double* hi) {
  for (size_t d = 0; d < rect_dims; ++d) {
    double x = cols[d].data[r];
    if (x < lo[d] || x > hi[d]) return false;
  }
  return true;
}

inline bool PolytopeRow(const Column* cols, size_t dims, size_t r,
                        const double* normals, const double* thresholds,
                        size_t num_halfspaces) {
  for (size_t h = 0; h < num_halfspaces; ++h) {
    const double* normal = normals + h * dims;
    double dot = 0.0;
    for (size_t d = 0; d < dims; ++d) dot += normal[d] * cols[d].data[r];
    if (dot > thresholds[h]) return false;
  }
  return true;
}

/// Stores rows [r, r+8) whose mask bit is set, branch-free.
inline size_t Compact8(uint32_t mask, size_t r, uint32_t* out, size_t count) {
  for (size_t lane = 0; lane < 8; ++lane) {
    out[count] = static_cast<uint32_t>(r + lane);
    count += (mask >> lane) & 1u;
  }
  return count;
}

#if defined(FNPROXY_KERNELS_HAVE_AVX2)

__attribute__((target("avx2"))) size_t SelectSphereAvx2(
    const Column* cols, size_t dims, size_t num_rows, const double* center,
    double limit_sq, uint32_t* out) {
  size_t count = 0;
  size_t r = 0;
  const __m256d limit = _mm256_set1_pd(limit_sq);
  for (; r + 8 <= num_rows; r += 8) {
    __m256d sum0 = _mm256_setzero_pd();
    __m256d sum1 = _mm256_setzero_pd();
    for (size_t d = 0; d < dims; ++d) {
      const __m256d c = _mm256_set1_pd(center[d]);
      const __m256d d0 = _mm256_sub_pd(_mm256_loadu_pd(cols[d].data + r), c);
      const __m256d d1 =
          _mm256_sub_pd(_mm256_loadu_pd(cols[d].data + r + 4), c);
      sum0 = _mm256_add_pd(sum0, _mm256_mul_pd(d0, d0));
      sum1 = _mm256_add_pd(sum1, _mm256_mul_pd(d1, d1));
    }
    uint32_t mask = static_cast<uint32_t>(_mm256_movemask_pd(
                        _mm256_cmp_pd(sum0, limit, _CMP_LE_OQ))) |
                    (static_cast<uint32_t>(_mm256_movemask_pd(
                         _mm256_cmp_pd(sum1, limit, _CMP_LE_OQ)))
                     << 4);
    mask &= ValidMask8(cols, dims, r);
    count = Compact8(mask, r, out, count);
  }
  for (; r < num_rows; ++r) {
    bool keep =
        RowValid(cols, dims, r) && SphereRow(cols, dims, r, center, limit_sq);
    out[count] = static_cast<uint32_t>(r);
    count += keep ? 1u : 0u;
  }
  return count;
}

__attribute__((target("avx2"))) size_t SelectRectAvx2(
    const Column* cols, size_t dims, size_t rect_dims, size_t num_rows,
    const double* lo, const double* hi, uint32_t* out) {
  size_t count = 0;
  size_t r = 0;
  for (; r + 8 <= num_rows; r += 8) {
    uint32_t mask = ValidMask8(cols, dims, r);
    for (size_t d = 0; d < rect_dims && mask != 0; ++d) {
      const __m256d lod = _mm256_set1_pd(lo[d]);
      const __m256d hid = _mm256_set1_pd(hi[d]);
      const __m256d x0 = _mm256_loadu_pd(cols[d].data + r);
      const __m256d x1 = _mm256_loadu_pd(cols[d].data + r + 4);
      const __m256d in0 = _mm256_and_pd(_mm256_cmp_pd(x0, lod, _CMP_GE_OQ),
                                        _mm256_cmp_pd(x0, hid, _CMP_LE_OQ));
      const __m256d in1 = _mm256_and_pd(_mm256_cmp_pd(x1, lod, _CMP_GE_OQ),
                                        _mm256_cmp_pd(x1, hid, _CMP_LE_OQ));
      mask &= static_cast<uint32_t>(_mm256_movemask_pd(in0)) |
              (static_cast<uint32_t>(_mm256_movemask_pd(in1)) << 4);
    }
    count = Compact8(mask, r, out, count);
  }
  for (; r < num_rows; ++r) {
    bool keep =
        RowValid(cols, dims, r) && RectRow(cols, rect_dims, r, lo, hi);
    out[count] = static_cast<uint32_t>(r);
    count += keep ? 1u : 0u;
  }
  return count;
}

__attribute__((target("avx2"))) size_t SelectPolytopeAvx2(
    const Column* cols, size_t dims, size_t num_rows, const double* normals,
    const double* thresholds, size_t num_halfspaces, uint32_t* out) {
  size_t count = 0;
  size_t r = 0;
  for (; r + 8 <= num_rows; r += 8) {
    uint32_t mask = ValidMask8(cols, dims, r);
    for (size_t h = 0; h < num_halfspaces && mask != 0; ++h) {
      const double* normal = normals + h * dims;
      __m256d dot0 = _mm256_setzero_pd();
      __m256d dot1 = _mm256_setzero_pd();
      for (size_t d = 0; d < dims; ++d) {
        const __m256d n = _mm256_set1_pd(normal[d]);
        dot0 = _mm256_add_pd(
            dot0, _mm256_mul_pd(n, _mm256_loadu_pd(cols[d].data + r)));
        dot1 = _mm256_add_pd(
            dot1, _mm256_mul_pd(n, _mm256_loadu_pd(cols[d].data + r + 4)));
      }
      const __m256d t = _mm256_set1_pd(thresholds[h]);
      mask &= static_cast<uint32_t>(_mm256_movemask_pd(
                  _mm256_cmp_pd(dot0, t, _CMP_LE_OQ))) |
              (static_cast<uint32_t>(_mm256_movemask_pd(
                   _mm256_cmp_pd(dot1, t, _CMP_LE_OQ)))
               << 4);
    }
    count = Compact8(mask, r, out, count);
  }
  for (; r < num_rows; ++r) {
    bool keep = RowValid(cols, dims, r) &&
                PolytopeRow(cols, dims, r, normals, thresholds,
                            num_halfspaces);
    out[count] = static_cast<uint32_t>(r);
    count += keep ? 1u : 0u;
  }
  return count;
}

#endif  // FNPROXY_KERNELS_HAVE_AVX2

#if defined(FNPROXY_KERNELS_HAVE_NEON)

/// Lane-0 and lane-1 compare bits of a float64x2 predicate as a 2-bit mask.
inline uint32_t Mask2(uint64x2_t m) {
  return static_cast<uint32_t>(vgetq_lane_u64(m, 0) & 1u) |
         (static_cast<uint32_t>(vgetq_lane_u64(m, 1) & 1u) << 1);
}

size_t SelectSphereNeon(const Column* cols, size_t dims, size_t num_rows,
                        const double* center, double limit_sq, uint32_t* out) {
  size_t count = 0;
  size_t r = 0;
  const float64x2_t limit = vdupq_n_f64(limit_sq);
  for (; r + 8 <= num_rows; r += 8) {
    float64x2_t sum[4] = {vdupq_n_f64(0.0), vdupq_n_f64(0.0),
                          vdupq_n_f64(0.0), vdupq_n_f64(0.0)};
    for (size_t d = 0; d < dims; ++d) {
      const float64x2_t c = vdupq_n_f64(center[d]);
      for (size_t k = 0; k < 4; ++k) {
        const float64x2_t diff =
            vsubq_f64(vld1q_f64(cols[d].data + r + 2 * k), c);
        sum[k] = vaddq_f64(sum[k], vmulq_f64(diff, diff));
      }
    }
    uint32_t mask = 0;
    for (size_t k = 0; k < 4; ++k) {
      mask |= Mask2(vcleq_f64(sum[k], limit)) << (2 * k);
    }
    mask &= ValidMask8(cols, dims, r);
    count = Compact8(mask, r, out, count);
  }
  for (; r < num_rows; ++r) {
    bool keep =
        RowValid(cols, dims, r) && SphereRow(cols, dims, r, center, limit_sq);
    out[count] = static_cast<uint32_t>(r);
    count += keep ? 1u : 0u;
  }
  return count;
}

size_t SelectRectNeon(const Column* cols, size_t dims, size_t rect_dims,
                      size_t num_rows, const double* lo, const double* hi,
                      uint32_t* out) {
  size_t count = 0;
  size_t r = 0;
  for (; r + 8 <= num_rows; r += 8) {
    uint32_t mask = ValidMask8(cols, dims, r);
    for (size_t d = 0; d < rect_dims && mask != 0; ++d) {
      const float64x2_t lod = vdupq_n_f64(lo[d]);
      const float64x2_t hid = vdupq_n_f64(hi[d]);
      uint32_t in = 0;
      for (size_t k = 0; k < 4; ++k) {
        const float64x2_t x = vld1q_f64(cols[d].data + r + 2 * k);
        in |= Mask2(vandq_u64(vcgeq_f64(x, lod), vcleq_f64(x, hid)))
              << (2 * k);
      }
      mask &= in;
    }
    count = Compact8(mask, r, out, count);
  }
  for (; r < num_rows; ++r) {
    bool keep =
        RowValid(cols, dims, r) && RectRow(cols, rect_dims, r, lo, hi);
    out[count] = static_cast<uint32_t>(r);
    count += keep ? 1u : 0u;
  }
  return count;
}

size_t SelectPolytopeNeon(const Column* cols, size_t dims, size_t num_rows,
                          const double* normals, const double* thresholds,
                          size_t num_halfspaces, uint32_t* out) {
  size_t count = 0;
  size_t r = 0;
  for (; r + 8 <= num_rows; r += 8) {
    uint32_t mask = ValidMask8(cols, dims, r);
    for (size_t h = 0; h < num_halfspaces && mask != 0; ++h) {
      const double* normal = normals + h * dims;
      float64x2_t dot[4] = {vdupq_n_f64(0.0), vdupq_n_f64(0.0),
                            vdupq_n_f64(0.0), vdupq_n_f64(0.0)};
      for (size_t d = 0; d < dims; ++d) {
        const float64x2_t n = vdupq_n_f64(normal[d]);
        for (size_t k = 0; k < 4; ++k) {
          dot[k] = vaddq_f64(
              dot[k], vmulq_f64(n, vld1q_f64(cols[d].data + r + 2 * k)));
        }
      }
      const float64x2_t t = vdupq_n_f64(thresholds[h]);
      uint32_t in = 0;
      for (size_t k = 0; k < 4; ++k) {
        in |= Mask2(vcleq_f64(dot[k], t)) << (2 * k);
      }
      mask &= in;
    }
    count = Compact8(mask, r, out, count);
  }
  for (; r < num_rows; ++r) {
    bool keep = RowValid(cols, dims, r) &&
                PolytopeRow(cols, dims, r, normals, thresholds,
                            num_halfspaces);
    out[count] = static_cast<uint32_t>(r);
    count += keep ? 1u : 0u;
  }
  return count;
}

#endif  // FNPROXY_KERNELS_HAVE_NEON

}  // namespace

size_t SelectSphereScalar(const Column* cols, size_t dims, size_t num_rows,
                          const double* center, double limit_sq,
                          uint32_t* out) {
  size_t count = 0;
  for (size_t r = 0; r < num_rows; ++r) {
    bool keep =
        RowValid(cols, dims, r) && SphereRow(cols, dims, r, center, limit_sq);
    out[count] = static_cast<uint32_t>(r);
    count += keep ? 1u : 0u;
  }
  return count;
}

size_t SelectRectScalar(const Column* cols, size_t dims, size_t rect_dims,
                        size_t num_rows, const double* lo, const double* hi,
                        uint32_t* out) {
  size_t count = 0;
  for (size_t r = 0; r < num_rows; ++r) {
    bool keep =
        RowValid(cols, dims, r) && RectRow(cols, rect_dims, r, lo, hi);
    out[count] = static_cast<uint32_t>(r);
    count += keep ? 1u : 0u;
  }
  return count;
}

size_t SelectPolytopeScalar(const Column* cols, size_t dims, size_t num_rows,
                            const double* normals, const double* thresholds,
                            size_t num_halfspaces, uint32_t* out) {
  size_t count = 0;
  for (size_t r = 0; r < num_rows; ++r) {
    bool keep = RowValid(cols, dims, r) &&
                PolytopeRow(cols, dims, r, normals, thresholds,
                            num_halfspaces);
    out[count] = static_cast<uint32_t>(r);
    count += keep ? 1u : 0u;
  }
  return count;
}

size_t SelectSphere(const Column* cols, size_t dims, size_t num_rows,
                    const double* center, double limit_sq, uint32_t* out) {
  switch (util::simd::ActivePath()) {
#if defined(FNPROXY_KERNELS_HAVE_AVX2)
    case util::simd::DispatchPath::kAvx2:
      return SelectSphereAvx2(cols, dims, num_rows, center, limit_sq, out);
#endif
#if defined(FNPROXY_KERNELS_HAVE_NEON)
    case util::simd::DispatchPath::kNeon:
      return SelectSphereNeon(cols, dims, num_rows, center, limit_sq, out);
#endif
    default:
      return SelectSphereScalar(cols, dims, num_rows, center, limit_sq, out);
  }
}

size_t SelectRect(const Column* cols, size_t dims, size_t rect_dims,
                  size_t num_rows, const double* lo, const double* hi,
                  uint32_t* out) {
  switch (util::simd::ActivePath()) {
#if defined(FNPROXY_KERNELS_HAVE_AVX2)
    case util::simd::DispatchPath::kAvx2:
      return SelectRectAvx2(cols, dims, rect_dims, num_rows, lo, hi, out);
#endif
#if defined(FNPROXY_KERNELS_HAVE_NEON)
    case util::simd::DispatchPath::kNeon:
      return SelectRectNeon(cols, dims, rect_dims, num_rows, lo, hi, out);
#endif
    default:
      return SelectRectScalar(cols, dims, rect_dims, num_rows, lo, hi, out);
  }
}

size_t SelectPolytope(const Column* cols, size_t dims, size_t num_rows,
                      const double* normals, const double* thresholds,
                      size_t num_halfspaces, uint32_t* out) {
  switch (util::simd::ActivePath()) {
#if defined(FNPROXY_KERNELS_HAVE_AVX2)
    case util::simd::DispatchPath::kAvx2:
      return SelectPolytopeAvx2(cols, dims, num_rows, normals, thresholds,
                                num_halfspaces, out);
#endif
#if defined(FNPROXY_KERNELS_HAVE_NEON)
    case util::simd::DispatchPath::kNeon:
      return SelectPolytopeNeon(cols, dims, num_rows, normals, thresholds,
                                num_halfspaces, out);
#endif
    default:
      return SelectPolytopeScalar(cols, dims, num_rows, normals, thresholds,
                                  num_halfspaces, out);
  }
}

}  // namespace fnproxy::core::kernels
