#include "core/function_template.h"

#include "geometry/hyperrectangle.h"
#include "geometry/hypersphere.h"
#include "geometry/polytope.h"
#include "sql/eval.h"
#include "sql/parser.h"
#include "sql/printer.h"
#include "util/string_util.h"
#include "xml/xml.h"

namespace fnproxy::core {

using geometry::ShapeKind;
using sql::Expr;
using sql::Value;
using util::Status;
using util::StatusOr;
using xml::XmlElement;

namespace {

/// Collects the text of all children that are <P>, <C>, <V>, <H> or numbered
/// (<1>, <2>, ...) elements, in document order.
std::vector<const XmlElement*> ListChildren(const XmlElement& parent) {
  std::vector<const XmlElement*> out;
  for (const auto& child : parent.children()) {
    out.push_back(child.get());
  }
  return out;
}

StatusOr<std::unique_ptr<Expr>> ParseTemplateExpr(const std::string& text) {
  FNPROXY_ASSIGN_OR_RETURN(std::unique_ptr<Expr> expr,
                           sql::ParseExpression(text));
  return expr;
}

StatusOr<ShapeKind> ParseShape(std::string_view text) {
  if (util::EqualsIgnoreCase(text, "hypersphere")) {
    return ShapeKind::kHypersphere;
  }
  if (util::EqualsIgnoreCase(text, "hyperrectangle") ||
      util::EqualsIgnoreCase(text, "hypercube")) {
    return ShapeKind::kHyperrectangle;
  }
  if (util::EqualsIgnoreCase(text, "polytope")) {
    return ShapeKind::kPolytope;
  }
  return Status::ParseError("unknown shape '" + std::string(text) + "'");
}

/// Parses a list of expression-bearing child elements into expression trees.
StatusOr<std::vector<std::unique_ptr<Expr>>> ParseExprList(
    const XmlElement& parent, size_t expected, const char* what) {
  std::vector<std::unique_ptr<Expr>> exprs;
  for (const XmlElement* child : ListChildren(parent)) {
    FNPROXY_ASSIGN_OR_RETURN(std::unique_ptr<Expr> expr,
                             ParseTemplateExpr(child->text()));
    exprs.push_back(std::move(expr));
  }
  if (expected != 0 && exprs.size() != expected) {
    return Status::ParseError(std::string(what) + " lists " +
                              std::to_string(exprs.size()) +
                              " expressions, expected " +
                              std::to_string(expected));
  }
  return exprs;
}

}  // namespace

StatusOr<FunctionTemplate> FunctionTemplate::FromXml(
    std::string_view xml_text) {
  FNPROXY_ASSIGN_OR_RETURN(auto root, xml::ParseXml(xml_text));
  if (root->name() != "FunctionTemplate") {
    return Status::ParseError("expected <FunctionTemplate> root");
  }
  FunctionTemplate tmpl;
  FNPROXY_ASSIGN_OR_RETURN(tmpl.name_, root->ChildText("Name"));

  const XmlElement* params = root->FindChild("Params");
  if (params == nullptr) return Status::ParseError("missing <Params>");
  for (const XmlElement* p : ListChildren(*params)) {
    std::string text = p->text();
    if (!text.empty() && text[0] == '$') text = text.substr(1);
    if (text.empty()) return Status::ParseError("empty parameter name");
    tmpl.params_.push_back(std::move(text));
  }

  FNPROXY_ASSIGN_OR_RETURN(std::string shape_text, root->ChildText("Shape"));
  FNPROXY_ASSIGN_OR_RETURN(tmpl.shape_, ParseShape(shape_text));

  FNPROXY_ASSIGN_OR_RETURN(std::string dims_text,
                           root->ChildText("NumDimensions"));
  FNPROXY_ASSIGN_OR_RETURN(int64_t dims, util::ParseInt64(dims_text));
  if (dims <= 0 || dims > 16) {
    return Status::ParseError("NumDimensions must be in [1, 16]");
  }
  tmpl.num_dimensions_ = static_cast<size_t>(dims);

  const XmlElement* coords = root->FindChild("CoordinateColumns");
  if (coords == nullptr) {
    return Status::ParseError(
        "missing <CoordinateColumns> (required for relationship checking "
        "and local evaluation)");
  }
  for (const XmlElement* c : ListChildren(*coords)) {
    tmpl.coordinate_columns_.push_back(c->text());
  }
  if (tmpl.coordinate_columns_.size() != tmpl.num_dimensions_) {
    return Status::ParseError(
        "CoordinateColumns count does not match NumDimensions");
  }

  switch (tmpl.shape_) {
    case ShapeKind::kHypersphere: {
      const XmlElement* center = root->FindChild("CenterCoordinate");
      if (center == nullptr) {
        return Status::ParseError("hypersphere template missing <CenterCoordinate>");
      }
      FNPROXY_ASSIGN_OR_RETURN(
          tmpl.center_exprs_,
          ParseExprList(*center, tmpl.num_dimensions_, "CenterCoordinate"));
      FNPROXY_ASSIGN_OR_RETURN(std::string radius_text,
                               root->ChildText("Radius"));
      FNPROXY_ASSIGN_OR_RETURN(tmpl.radius_expr_,
                               ParseTemplateExpr(radius_text));
      break;
    }
    case ShapeKind::kHyperrectangle: {
      const XmlElement* lo = root->FindChild("Lo");
      const XmlElement* hi = root->FindChild("Hi");
      if (lo == nullptr || hi == nullptr) {
        return Status::ParseError("hyperrectangle template needs <Lo> and <Hi>");
      }
      FNPROXY_ASSIGN_OR_RETURN(tmpl.lo_exprs_,
                               ParseExprList(*lo, tmpl.num_dimensions_, "Lo"));
      FNPROXY_ASSIGN_OR_RETURN(tmpl.hi_exprs_,
                               ParseExprList(*hi, tmpl.num_dimensions_, "Hi"));
      break;
    }
    case ShapeKind::kPolytope: {
      const XmlElement* halfspaces = root->FindChild("Halfspaces");
      const XmlElement* vertices = root->FindChild("Vertices");
      if (halfspaces == nullptr || vertices == nullptr) {
        return Status::ParseError(
            "polytope template needs <Halfspaces> and <Vertices>");
      }
      for (const XmlElement* h : ListChildren(*halfspaces)) {
        const XmlElement* normal = h->FindChild("Normal");
        const XmlElement* offset = h->FindChild("Offset");
        if (normal == nullptr || offset == nullptr) {
          return Status::ParseError("halfspace needs <Normal> and <Offset>");
        }
        HalfspaceExprs hs;
        FNPROXY_ASSIGN_OR_RETURN(
            hs.normal, ParseExprList(*normal, tmpl.num_dimensions_, "Normal"));
        FNPROXY_ASSIGN_OR_RETURN(hs.offset, ParseTemplateExpr(offset->text()));
        tmpl.halfspace_exprs_.push_back(std::move(hs));
      }
      for (const XmlElement* v : ListChildren(*vertices)) {
        FNPROXY_ASSIGN_OR_RETURN(
            std::vector<std::unique_ptr<Expr>> vertex,
            ParseExprList(*v, tmpl.num_dimensions_, "Vertex"));
        tmpl.vertex_exprs_.push_back(std::move(vertex));
      }
      if (tmpl.halfspace_exprs_.empty() || tmpl.vertex_exprs_.empty()) {
        return Status::ParseError("polytope template has empty geometry");
      }
      break;
    }
  }
  return tmpl;
}

std::string FunctionTemplate::ToXml() const {
  std::string out = "<FunctionTemplate>\n";
  out += "  <Name>" + xml::EscapeXml(name_) + "</Name>\n";
  out += "  <Params>";
  for (const std::string& p : params_) out += "<P>$" + p + "</P>";
  out += "</Params>\n";
  out += std::string("  <Shape>") + geometry::ShapeKindName(shape_) +
         "</Shape>\n";
  out += "  <NumDimensions>" + std::to_string(num_dimensions_) +
         "</NumDimensions>\n";
  switch (shape_) {
    case ShapeKind::kHypersphere:
      out += "  <CenterCoordinate>";
      for (const auto& e : center_exprs_) {
        out += "<C>" + xml::EscapeXml(sql::ExprToSql(*e)) + "</C>";
      }
      out += "</CenterCoordinate>\n";
      out += "  <Radius>" + xml::EscapeXml(sql::ExprToSql(*radius_expr_)) +
             "</Radius>\n";
      break;
    case ShapeKind::kHyperrectangle:
      out += "  <Lo>";
      for (const auto& e : lo_exprs_) {
        out += "<C>" + xml::EscapeXml(sql::ExprToSql(*e)) + "</C>";
      }
      out += "</Lo>\n  <Hi>";
      for (const auto& e : hi_exprs_) {
        out += "<C>" + xml::EscapeXml(sql::ExprToSql(*e)) + "</C>";
      }
      out += "</Hi>\n";
      break;
    case ShapeKind::kPolytope:
      out += "  <Halfspaces>";
      for (const auto& h : halfspace_exprs_) {
        out += "<H><Normal>";
        for (const auto& n : h.normal) {
          out += "<C>" + xml::EscapeXml(sql::ExprToSql(*n)) + "</C>";
        }
        out += "</Normal><Offset>" + xml::EscapeXml(sql::ExprToSql(*h.offset)) +
               "</Offset></H>";
      }
      out += "</Halfspaces>\n  <Vertices>";
      for (const auto& v : vertex_exprs_) {
        out += "<V>";
        for (const auto& c : v) {
          out += "<C>" + xml::EscapeXml(sql::ExprToSql(*c)) + "</C>";
        }
        out += "</V>";
      }
      out += "</Vertices>\n";
      break;
  }
  out += "  <CoordinateColumns>";
  for (const std::string& c : coordinate_columns_) {
    out += "<C>" + xml::EscapeXml(c) + "</C>";
  }
  out += "</CoordinateColumns>\n</FunctionTemplate>\n";
  return out;
}

StatusOr<std::unique_ptr<geometry::Region>> FunctionTemplate::BuildRegion(
    const std::vector<Value>& args) const {
  if (args.size() != params_.size()) {
    return Status::InvalidArgument(
        name_ + " template expects " + std::to_string(params_.size()) +
        " arguments, got " + std::to_string(args.size()));
  }
  std::map<std::string, Value> bindings;
  for (size_t i = 0; i < params_.size(); ++i) {
    bindings[params_[i]] = args[i];
  }

  sql::ScalarFunctionRegistry registry =
      sql::ScalarFunctionRegistry::WithBuiltins();
  sql::ExprEvaluator evaluator(&registry);
  sql::RowBinding no_rows;

  auto eval_double = [&](const Expr& expr) -> StatusOr<double> {
    FNPROXY_ASSIGN_OR_RETURN(std::unique_ptr<Expr> bound,
                             sql::SubstituteParameters(expr, bindings));
    FNPROXY_ASSIGN_OR_RETURN(Value v, evaluator.Eval(*bound, no_rows));
    return v.ToNumeric();
  };

  switch (shape_) {
    case ShapeKind::kHypersphere: {
      geometry::Point center(num_dimensions_);
      for (size_t i = 0; i < num_dimensions_; ++i) {
        FNPROXY_ASSIGN_OR_RETURN(center[i], eval_double(*center_exprs_[i]));
      }
      FNPROXY_ASSIGN_OR_RETURN(double radius, eval_double(*radius_expr_));
      if (radius < 0) {
        return Status::InvalidArgument("template radius is negative");
      }
      return std::unique_ptr<geometry::Region>(
          std::make_unique<geometry::Hypersphere>(std::move(center), radius));
    }
    case ShapeKind::kHyperrectangle: {
      geometry::Point lo(num_dimensions_), hi(num_dimensions_);
      for (size_t i = 0; i < num_dimensions_; ++i) {
        FNPROXY_ASSIGN_OR_RETURN(lo[i], eval_double(*lo_exprs_[i]));
        FNPROXY_ASSIGN_OR_RETURN(hi[i], eval_double(*hi_exprs_[i]));
        if (lo[i] > hi[i]) {
          return Status::InvalidArgument("template rectangle has lo > hi");
        }
      }
      return std::unique_ptr<geometry::Region>(
          std::make_unique<geometry::Hyperrectangle>(std::move(lo),
                                                     std::move(hi)));
    }
    case ShapeKind::kPolytope: {
      std::vector<geometry::Halfspace> halfspaces;
      for (const HalfspaceExprs& h : halfspace_exprs_) {
        geometry::Halfspace hs;
        hs.normal.resize(num_dimensions_);
        for (size_t i = 0; i < num_dimensions_; ++i) {
          FNPROXY_ASSIGN_OR_RETURN(hs.normal[i], eval_double(*h.normal[i]));
        }
        FNPROXY_ASSIGN_OR_RETURN(hs.offset, eval_double(*h.offset));
        halfspaces.push_back(std::move(hs));
      }
      std::vector<geometry::Point> vertices;
      for (const auto& v : vertex_exprs_) {
        geometry::Point vertex(num_dimensions_);
        for (size_t i = 0; i < num_dimensions_; ++i) {
          FNPROXY_ASSIGN_OR_RETURN(vertex[i], eval_double(*v[i]));
        }
        vertices.push_back(std::move(vertex));
      }
      auto polytope = std::make_unique<geometry::Polytope>(
          std::move(halfspaces), std::move(vertices));
      FNPROXY_RETURN_NOT_OK(polytope->Validate());
      return std::unique_ptr<geometry::Region>(std::move(polytope));
    }
  }
  return Status::Internal("bad shape kind");
}

}  // namespace fnproxy::core
