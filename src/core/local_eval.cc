#include "core/local_eval.h"

#include <algorithm>

#include "core/simd_kernels.h"
#include "geometry/hyperrectangle.h"
#include "geometry/hypersphere.h"
#include "geometry/polytope.h"
#include "sql/eval.h"
#include "util/arena.h"

namespace fnproxy::core {

using sql::Row;
using sql::Table;
using sql::Value;
using util::Status;
using util::StatusOr;

namespace {

/// Per-worker scratch arena for the probe/merge hot path: selection staging,
/// dedup hash tables and kernel parameter blocks all bump-allocate here and
/// are recycled wholesale at the next query instead of churning malloc.
/// Callers Reset() on entry, so scratch never outlives one call.
util::Arena& ScratchArena() {
  static thread_local util::Arena arena;
  return arena;
}

}  // namespace

StatusOr<LocalEvalResult> SelectInRegion(
    const Table& cached, const geometry::Region& region,
    const std::vector<std::string>& coordinate_columns) {
  std::vector<size_t> coord_indexes;
  coord_indexes.reserve(coordinate_columns.size());
  for (const std::string& name : coordinate_columns) {
    auto idx = cached.schema().FindColumn(name);
    if (!idx.has_value()) {
      return Status::InvalidArgument(
          "cached result lacks coordinate column '" + name +
          "' (violates the result-attribute-availability property)");
    }
    coord_indexes.push_back(*idx);
  }

  LocalEvalResult out;
  out.table = Table(cached.schema());
  out.tuples_scanned = cached.num_rows();
  geometry::Point point(coord_indexes.size());
  for (const Row& row : cached.rows()) {
    bool valid = true;
    for (size_t i = 0; i < coord_indexes.size(); ++i) {
      const Value& v = row[coord_indexes[i]];
      auto numeric = v.ToNumeric();
      if (!numeric.ok()) {
        valid = false;
        break;
      }
      point[i] = *numeric;
    }
    if (valid && region.ContainsPoint(point)) {
      out.table.AddRow(row);
    }
  }
  return out;
}

namespace {

/// Open-addressing hash set for duplicate elimination: 64-bit row hash plus
/// a payload index, linear probing, zero allocations past the two flat
/// arrays. Replaces the historical per-row key strings (ToSqlLiteral
/// concatenation), which allocated a key per tuple; dedup identity is
/// unchanged (see sql::DedupHashRow). True equality is delegated to the
/// caller on hash match, so 64-bit collisions stay correct.
class RowHashSet {
 public:
  /// Backing arrays live in `arena` (not owned); the set is valid until the
  /// arena is reset.
  RowHashSet(size_t expected, util::Arena* arena) {
    size_t cap = 16;
    while (cap < expected * 2) cap <<= 1;
    slots_ = arena->AllocateArray<uint32_t>(cap);
    hashes_ = arena->AllocateArray<uint64_t>(cap);
    std::fill_n(slots_, cap, kEmpty);
    mask_ = cap - 1;
  }

  /// Inserts `index` under `hash` unless `equals(existing_index)` holds for
  /// some already-inserted entry with the same hash; returns true when
  /// inserted (i.e. the row is new).
  template <typename Eq>
  bool InsertIfAbsent(uint64_t hash, uint32_t index, const Eq& equals) {
    size_t pos = hash & mask_;
    while (slots_[pos] != kEmpty) {
      if (hashes_[pos] == hash && equals(slots_[pos])) return false;
      pos = (pos + 1) & mask_;
    }
    slots_[pos] = index;
    hashes_[pos] = hash;
    return true;
  }

 private:
  static constexpr uint32_t kEmpty = 0xFFFFFFFFu;
  uint32_t* slots_ = nullptr;
  uint64_t* hashes_ = nullptr;
  size_t mask_ = 0;
};

}  // namespace

StatusOr<Table> MergeDistinct(const std::vector<const Table*>& parts) {
  if (parts.empty()) {
    return Status::InvalidArgument("nothing to merge");
  }
  const sql::Schema& schema = parts[0]->schema();
  size_t total_rows = 0;
  for (const Table* part : parts) {
    if (!part->schema().SameColumns(schema)) {
      return Status::InvalidArgument(
          "cannot merge results with different schemas: " +
          part->schema().ToString() + " vs " + schema.ToString());
    }
    total_rows += part->num_rows();
  }
  Table merged(schema);
  util::Arena& arena = ScratchArena();
  arena.Reset();
  RowHashSet seen(total_rows, &arena);
  for (const Table* part : parts) {
    for (const Row& row : part->rows()) {
      bool inserted = seen.InsertIfAbsent(
          sql::DedupHashRow(row), static_cast<uint32_t>(merged.num_rows()),
          [&](uint32_t emitted) {
            return sql::DedupEqualRows(merged.row(emitted), row);
          });
      if (inserted) merged.AddRow(row);
    }
  }
  return merged;
}

StatusOr<Table> ApplyOrderAndTop(const Table& input,
                                 const sql::SelectStatement& stmt) {
  std::vector<size_t> order(input.num_rows());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  if (!stmt.order_by.empty()) {
    // Order keys must be projected columns at this point: resolve each
    // ORDER BY expression as a column name in the result schema.
    std::vector<std::pair<size_t, bool>> keys;  // (column, descending)
    for (const sql::OrderItem& item : stmt.order_by) {
      if (item.expr->kind != sql::Expr::Kind::kColumnRef) {
        return Status::Unsupported(
            "local ORDER BY supports projected column references only");
      }
      auto idx = input.schema().FindColumn(item.expr->name);
      if (!idx.has_value()) {
        return Status::InvalidArgument("ORDER BY column '" + item.expr->name +
                                       "' is not in the projected result");
      }
      keys.emplace_back(*idx, item.descending);
    }
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      for (const auto& [col, desc] : keys) {
        auto cmp = input.row(a)[col].Compare(input.row(b)[col]);
        int c = cmp.ok() ? *cmp : 0;
        if (c != 0) return desc ? c > 0 : c < 0;
      }
      return false;
    });
  }

  size_t limit = order.size();
  if (stmt.top_n.has_value()) {
    limit = std::min(limit, static_cast<size_t>(*stmt.top_n));
  }
  Table out(input.schema());
  out.Reserve(limit);
  for (size_t i = 0; i < limit; ++i) {
    out.AddRow(input.row(order[i]));
  }
  return out;
}

// --- Columnar hot path ------------------------------------------------------

namespace {

using sql::ColumnarTable;

bool ViewBit(const uint64_t* bits, size_t i) {
  return ((bits[i >> 6] >> (i & 63)) & 1) != 0;
}

}  // namespace

StatusOr<ColumnarSelection> SelectInRegion(
    const ColumnarTable& cached, const geometry::Region& region,
    const std::vector<std::string>& coordinate_columns) {
  size_t dims = coordinate_columns.size();
  std::vector<size_t> coord_indexes;
  coord_indexes.reserve(dims);
  for (const std::string& name : coordinate_columns) {
    auto idx = cached.schema().FindColumn(name);
    if (!idx.has_value()) {
      return Status::InvalidArgument(
          "cached result lacks coordinate column '" + name +
          "' (violates the result-attribute-availability property)");
    }
    coord_indexes.push_back(*idx);
  }

  // Resolve each coordinate column to a contiguous double array. Entries
  // admitted through the proxy have these views prepared at admission time;
  // tables built elsewhere (tests) fall back to scratch conversions.
  std::vector<ColumnarTable::NumericView> views(dims);
  std::vector<std::vector<double>> scratch_values(dims);
  std::vector<std::vector<uint64_t>> scratch_valid(dims);
  for (size_t i = 0; i < dims; ++i) {
    auto view = cached.numeric_view(coord_indexes[i]);
    views[i] = view.has_value()
                   ? *view
                   : cached.BuildNumericView(coord_indexes[i],
                                             &scratch_values[i],
                                             &scratch_valid[i]);
  }

  size_t num_rows = cached.num_rows();
  ColumnarSelection out;
  out.tuples_scanned = num_rows;

  // Runtime-dispatched membership kernels (core/simd_kernels.h): 8-wide
  // AVX2/NEON with a scalar fallback, each replicating its shape's
  // Region::ContainsPoint float semantics operation-for-operation, so the
  // selected set is bit-identical to the row-wise scan on every dispatch
  // path. Kernel parameter blocks live in the worker's scratch arena; the
  // selection is written dense and trimmed to the matched count.
  util::Arena& arena = ScratchArena();
  arena.Reset();
  auto* cols = arena.AllocateArray<kernels::Column>(dims);
  for (size_t i = 0; i < dims; ++i) {
    cols[i] = kernels::Column{views[i].data, views[i].valid};
  }
  out.selection.resize(num_rows);
  uint32_t* sel = out.selection.data();
  size_t count = 0;
  switch (region.kind()) {
    case geometry::ShapeKind::kHypersphere: {
      const auto& sphere = static_cast<const geometry::Hypersphere&>(region);
      double limit = sphere.radius() + geometry::kGeomEpsilon;
      limit *= limit;
      double* center = arena.AllocateArray<double>(dims);
      for (size_t i = 0; i < dims; ++i) center[i] = sphere.center()[i];
      count = kernels::SelectSphere(cols, dims, num_rows, center, limit, sel);
      break;
    }
    case geometry::ShapeKind::kHyperrectangle: {
      const auto& rect = static_cast<const geometry::Hyperrectangle&>(region);
      size_t rect_dims = std::min(dims, rect.lo().size());
      double* lo = arena.AllocateArray<double>(rect_dims);
      double* hi = arena.AllocateArray<double>(rect_dims);
      for (size_t i = 0; i < rect_dims; ++i) {
        lo[i] = rect.lo()[i] - geometry::kGeomEpsilon;
        hi[i] = rect.hi()[i] + geometry::kGeomEpsilon;
      }
      count =
          kernels::SelectRect(cols, dims, rect_dims, num_rows, lo, hi, sel);
      break;
    }
    case geometry::ShapeKind::kPolytope: {
      const auto& poly = static_cast<const geometry::Polytope&>(region);
      const auto& halfspaces = poly.halfspaces();
      bool flat = true;
      for (const geometry::Halfspace& h : halfspaces) {
        if (h.normal.size() != dims) flat = false;
      }
      if (flat) {
        // Flatten to halfspace-major normals plus precomputed thresholds
        // (offset + eps * |normal| is row-invariant, so hoisting it out of
        // the row loop is bit-identical to ContainsPoint's per-row compute).
        double* normals = arena.AllocateArray<double>(halfspaces.size() * dims);
        double* thresholds = arena.AllocateArray<double>(halfspaces.size());
        for (size_t h = 0; h < halfspaces.size(); ++h) {
          for (size_t d = 0; d < dims; ++d) {
            normals[h * dims + d] = halfspaces[h].normal[d];
          }
          thresholds[h] =
              halfspaces[h].offset +
              geometry::kGeomEpsilon * geometry::Norm(halfspaces[h].normal);
        }
        count = kernels::SelectPolytope(cols, dims, num_rows, normals,
                                        thresholds, halfspaces.size(), sel);
        break;
      }
      // Dimension mismatch between halfspaces and coordinate columns:
      // gather per row and defer to the shape's own predicate.
      geometry::Point point(dims);
      for (size_t r = 0; r < num_rows; ++r) {
        bool valid = true;
        for (size_t i = 0; i < dims; ++i) {
          if (views[i].valid != nullptr && !ViewBit(views[i].valid, r)) {
            valid = false;
            break;
          }
        }
        if (!valid) continue;
        for (size_t i = 0; i < dims; ++i) point[i] = views[i].data[r];
        if (region.ContainsPoint(point)) {
          sel[count++] = static_cast<uint32_t>(r);
        }
      }
      break;
    }
  }
  out.selection.resize(count);
  return out;
}

StatusOr<ColumnarTable> MergeDistinctColumnar(const std::vector<ColumnarSlice>& parts) {
  if (parts.empty()) {
    return Status::InvalidArgument("nothing to merge");
  }
  const sql::Schema& schema = parts[0].table->schema();
  size_t total_rows = 0;
  for (const ColumnarSlice& part : parts) {
    if (!part.table->schema().SameColumns(schema)) {
      return Status::InvalidArgument(
          "cannot merge results with different schemas: " +
          part.table->schema().ToString() + " vs " + schema.ToString());
    }
    total_rows +=
        part.selection ? part.selection->size() : part.table->num_rows();
  }
  // Phase 1: hash all candidate rows column-major and dedup into a kept
  // list of (part, source row). Equality on hash match compares the source
  // rows directly, so no output row needs to exist yet.
  struct KeptRef {
    uint32_t part;
    uint32_t row;
  };
  util::Arena& arena = ScratchArena();
  arena.Reset();
  KeptRef* kept = arena.AllocateArray<KeptRef>(total_rows);
  size_t kept_count = 0;
  size_t max_part_rows = 0;
  for (const ColumnarSlice& part : parts) {
    max_part_rows = std::max(
        max_part_rows,
        part.selection ? part.selection->size() : part.table->num_rows());
  }
  uint64_t* hashes = arena.AllocateArray<uint64_t>(max_part_rows);
  RowHashSet seen(total_rows, &arena);
  for (size_t p = 0; p < parts.size(); ++p) {
    const ColumnarTable& table = *parts[p].table;
    const uint32_t* rows =
        parts[p].selection ? parts[p].selection->data() : nullptr;
    size_t count =
        parts[p].selection ? parts[p].selection->size() : table.num_rows();
    table.RowDedupHashes(rows, count, hashes);
    for (size_t i = 0; i < count; ++i) {
      uint32_t row = rows ? rows[i] : static_cast<uint32_t>(i);
      bool inserted = seen.InsertIfAbsent(
          hashes[i], static_cast<uint32_t>(kept_count), [&](uint32_t k) {
            return ColumnarTable::RowsDedupEqual(*parts[kept[k].part].table,
                                                 kept[k].row, table, row);
          });
      if (inserted) {
        kept[kept_count++] = {static_cast<uint32_t>(p), row};
      }
    }
  }
  // Phase 2: copy the kept rows with one batched append per contiguous run
  // of rows from the same part (first occurrence wins, in part order, so the
  // runs are long).
  ColumnarTable merged(schema);
  merged.Reserve(kept_count);
  uint32_t* run = arena.AllocateArray<uint32_t>(kept_count);
  size_t i = 0;
  while (i < kept_count) {
    uint32_t part = kept[i].part;
    size_t run_len = 0;
    while (i < kept_count && kept[i].part == part) run[run_len++] = kept[i++].row;
    merged.AppendRowsFrom(*parts[part].table, run, run_len);
  }
  return merged;
}

namespace {

/// Per-column three-way comparison mirroring Value::Compare with the
/// caller's historical "errors order as equal" behavior: NULLs and
/// incomparable cells yield 0. Numeric columns coerce to double even for
/// int/int pairs, exactly like Value::Compare's ToNumeric path.
int CompareCells(const ColumnarTable& table, size_t col, uint32_t a,
                 uint32_t b) {
  if (table.CellIsNull(a, col) || table.CellIsNull(b, col)) return 0;
  switch (table.storage_kind(col)) {
    case ColumnarTable::StorageKind::kInt: {
      double x = static_cast<double>(table.CellInt(a, col));
      double y = static_cast<double>(table.CellInt(b, col));
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    case ColumnarTable::StorageKind::kDouble: {
      double x = table.CellDouble(a, col);
      double y = table.CellDouble(b, col);
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    case ColumnarTable::StorageKind::kBool: {
      double x = table.CellBool(a, col) ? 1.0 : 0.0;
      double y = table.CellBool(b, col) ? 1.0 : 0.0;
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    case ColumnarTable::StorageKind::kString: {
      int cmp = table.CellString(a, col).compare(table.CellString(b, col));
      return cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
    }
    case ColumnarTable::StorageKind::kMixed: {
      auto cmp = table.CellMixed(a, col).Compare(table.CellMixed(b, col));
      return cmp.ok() ? *cmp : 0;
    }
    case ColumnarTable::StorageKind::kAllNull:
      return 0;
  }
  return 0;
}

}  // namespace

StatusOr<std::vector<uint32_t>> ApplyOrderAndTop(
    const ColumnarTable& input, std::vector<uint32_t> selection,
    const sql::SelectStatement& stmt) {
  if (!stmt.order_by.empty()) {
    std::vector<std::pair<size_t, bool>> keys;  // (column, descending)
    for (const sql::OrderItem& item : stmt.order_by) {
      if (item.expr->kind != sql::Expr::Kind::kColumnRef) {
        return Status::Unsupported(
            "local ORDER BY supports projected column references only");
      }
      auto idx = input.schema().FindColumn(item.expr->name);
      if (!idx.has_value()) {
        return Status::InvalidArgument("ORDER BY column '" + item.expr->name +
                                       "' is not in the projected result");
      }
      keys.emplace_back(*idx, item.descending);
    }
    std::stable_sort(selection.begin(), selection.end(),
                     [&](uint32_t a, uint32_t b) {
                       for (const auto& [col, desc] : keys) {
                         int c = CompareCells(input, col, a, b);
                         if (c != 0) return desc ? c > 0 : c < 0;
                       }
                       return false;
                     });
  }
  if (stmt.top_n.has_value() &&
      selection.size() > static_cast<size_t>(*stmt.top_n)) {
    selection.resize(static_cast<size_t>(*stmt.top_n));
  }
  return selection;
}

}  // namespace fnproxy::core
