#include "core/local_eval.h"

#include <algorithm>
#include <unordered_set>

#include "sql/eval.h"

namespace fnproxy::core {

using sql::Row;
using sql::Table;
using sql::Value;
using util::Status;
using util::StatusOr;

StatusOr<LocalEvalResult> SelectInRegion(
    const Table& cached, const geometry::Region& region,
    const std::vector<std::string>& coordinate_columns) {
  std::vector<size_t> coord_indexes;
  coord_indexes.reserve(coordinate_columns.size());
  for (const std::string& name : coordinate_columns) {
    auto idx = cached.schema().FindColumn(name);
    if (!idx.has_value()) {
      return Status::InvalidArgument(
          "cached result lacks coordinate column '" + name +
          "' (violates the result-attribute-availability property)");
    }
    coord_indexes.push_back(*idx);
  }

  LocalEvalResult out;
  out.table = Table(cached.schema());
  out.tuples_scanned = cached.num_rows();
  geometry::Point point(coord_indexes.size());
  for (const Row& row : cached.rows()) {
    bool valid = true;
    for (size_t i = 0; i < coord_indexes.size(); ++i) {
      const Value& v = row[coord_indexes[i]];
      auto numeric = v.ToNumeric();
      if (!numeric.ok()) {
        valid = false;
        break;
      }
      point[i] = *numeric;
    }
    if (valid && region.ContainsPoint(point)) {
      out.table.AddRow(row);
    }
  }
  return out;
}

namespace {

/// Canonical row key for duplicate elimination.
std::string RowKey(const Row& row) {
  std::string key;
  for (const Value& v : row) {
    key += v.ToSqlLiteral();
    key += '\x1f';
  }
  return key;
}

}  // namespace

StatusOr<Table> MergeDistinct(const std::vector<const Table*>& parts) {
  if (parts.empty()) {
    return Status::InvalidArgument("nothing to merge");
  }
  const sql::Schema& schema = parts[0]->schema();
  for (const Table* part : parts) {
    if (!part->schema().SameColumns(schema)) {
      return Status::InvalidArgument(
          "cannot merge results with different schemas: " +
          part->schema().ToString() + " vs " + schema.ToString());
    }
  }
  Table merged(schema);
  std::unordered_set<std::string> seen;
  for (const Table* part : parts) {
    for (const Row& row : part->rows()) {
      if (seen.insert(RowKey(row)).second) {
        merged.AddRow(row);
      }
    }
  }
  return merged;
}

StatusOr<Table> ApplyOrderAndTop(const Table& input,
                                 const sql::SelectStatement& stmt) {
  std::vector<size_t> order(input.num_rows());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  if (!stmt.order_by.empty()) {
    // Order keys must be projected columns at this point: resolve each
    // ORDER BY expression as a column name in the result schema.
    std::vector<std::pair<size_t, bool>> keys;  // (column, descending)
    for (const sql::OrderItem& item : stmt.order_by) {
      if (item.expr->kind != sql::Expr::Kind::kColumnRef) {
        return Status::Unsupported(
            "local ORDER BY supports projected column references only");
      }
      auto idx = input.schema().FindColumn(item.expr->name);
      if (!idx.has_value()) {
        return Status::InvalidArgument("ORDER BY column '" + item.expr->name +
                                       "' is not in the projected result");
      }
      keys.emplace_back(*idx, item.descending);
    }
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      for (const auto& [col, desc] : keys) {
        auto cmp = input.row(a)[col].Compare(input.row(b)[col]);
        int c = cmp.ok() ? *cmp : 0;
        if (c != 0) return desc ? c > 0 : c < 0;
      }
      return false;
    });
  }

  size_t limit = order.size();
  if (stmt.top_n.has_value()) {
    limit = std::min(limit, static_cast<size_t>(*stmt.top_n));
  }
  Table out(input.schema());
  out.Reserve(limit);
  for (size_t i = 0; i < limit; ++i) {
    out.AddRow(input.row(order[i]));
  }
  return out;
}

}  // namespace fnproxy::core
