#ifndef FNPROXY_CORE_CIRCUIT_BREAKER_H_
#define FNPROXY_CORE_CIRCUIT_BREAKER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

#include "util/clock.h"

namespace fnproxy::core {

/// Circuit-breaker parameters guarding the proxy→origin channel. Disabled
/// by default; the availability experiment and the fault-profile CLI turn it
/// on.
struct CircuitBreakerConfig {
  bool enabled = false;
  /// Sliding window of the most recent origin outcomes.
  size_t window_size = 16;
  /// Minimum outcomes in the window before the failure rate is meaningful.
  size_t min_samples = 4;
  /// Failure fraction at or above which the breaker opens.
  double failure_threshold = 0.5;
  /// Virtual time an open breaker waits before letting a probe through.
  int64_t open_cooldown_micros = 10'000'000;
  /// Consecutive probe successes in half-open needed to close again.
  size_t half_open_successes = 2;
};

enum class BreakerState { kClosed, kOpen, kHalfOpen };

const char* BreakerStateName(BreakerState state);

/// Closed → open → half-open → closed state machine over a sliding window
/// of origin outcomes, timed on the shared virtual clock so transitions are
/// deterministic for a deterministic workload.
///
/// Thread-safe: state/transition counters are atomics (cheap lock-free
/// reads from the stats endpoint); the window, streak and history are
/// guarded by an internal mutex held only for short bookkeeping sections.
class CircuitBreaker {
 public:
  /// `clock` must outlive the breaker.
  CircuitBreaker(CircuitBreakerConfig config, util::SimulatedClock* clock);

  /// True if the caller may contact the origin now. While open, flips to
  /// half-open (allowing a probe) once the cooldown has elapsed.
  bool Allow();

  /// Reports the outcome of an allowed origin round trip.
  void RecordSuccess();
  void RecordFailure();

  BreakerState state() const { return state_.load(std::memory_order_relaxed); }
  uint64_t transitions() const {
    return transitions_.load(std::memory_order_relaxed);
  }
  /// (virtual time, entered state) for every transition, in order. The
  /// returned reference is only stable while no other thread records
  /// outcomes — callers needing a concurrent-safe copy use HistorySnapshot.
  const std::vector<std::pair<int64_t, BreakerState>>& history() const {
    return history_;
  }
  /// Copy of history() taken under the lock.
  std::vector<std::pair<int64_t, BreakerState>> HistorySnapshot() const;
  /// Failure fraction over the current window (0 when empty).
  double FailureRate() const;

  /// Virtual time until an open breaker will admit a probe (0 unless open).
  /// Feeds the 503 response's Retry-After header.
  int64_t CooldownRemainingMicros() const;

 private:
  void TransitionTo(BreakerState next);  // Requires mu_ held.
  void RecordOutcome(bool failure);      // Requires mu_ held.
  double FailureRateLocked() const;      // Requires mu_ held.

  CircuitBreakerConfig config_;
  util::SimulatedClock* clock_;
  std::atomic<BreakerState> state_{BreakerState::kClosed};
  std::atomic<uint64_t> transitions_{0};
  mutable std::mutex mu_;
  std::deque<bool> window_;  // true = failure. Guarded by mu_.
  size_t half_open_streak_ = 0;         // Guarded by mu_.
  int64_t opened_at_micros_ = 0;        // Guarded by mu_.
  std::vector<std::pair<int64_t, BreakerState>> history_;  // Guarded by mu_.
};

}  // namespace fnproxy::core

#endif  // FNPROXY_CORE_CIRCUIT_BREAKER_H_
