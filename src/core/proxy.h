#ifndef FNPROXY_CORE_PROXY_H_
#define FNPROXY_CORE_PROXY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/cache_store.h"
#include "core/hash_ring.h"
#include "net/circuit_breaker.h"
#include "core/single_flight.h"
#include "core/template_registry.h"
#include "geometry/region.h"
#include "net/http.h"
#include "net/network.h"
#include "net/origin_channel.h"
#include "net/peer_channel.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/clock.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace fnproxy::core {

/// The caching scheme a proxy instance runs (paper §3.2 / §4.2):
///   kNoCache                 — NC: tunneling proxy, everything forwarded.
///   kPassive                 — PC: traditional exact-URL-match caching.
///   kActiveFull              — "First": full semantic caching (exact,
///                              containment, overlap via remainder queries,
///                              region containment with coalescing).
///   kActiveRegionContainment — "Second": exact + containment + region
///                              containment; general overlap not handled.
///   kActiveContainmentOnly   — "Third": exact + containment only.
enum class CachingMode {
  kNoCache,
  kPassive,
  kActiveFull,
  kActiveRegionContainment,
  kActiveContainmentOnly,
};

const char* CachingModeName(CachingMode mode);

/// Virtual-time costs of proxy-side processing, charged on the shared
/// simulated clock. Description comparisons make the array/R-tree choice
/// observable; tuple scan/merge costs make local evaluation non-free (the
/// paper finds probe+merge time "can be significant").
/// Defaults model the paper's 2004 Java-servlet proxy whose cached results
/// are XML files on disk: *spatially filtering* a cached result means
/// reading and parsing its XML file tuple by tuple
/// (per_cached_tuple_scan_us dominates, making probe evaluation of
/// overlapping queries "significant" as §3.2 observes). Taking a contained
/// entry's result wholesale — the region-containment probe — costs only the
/// merge. Description checks stay under the paper's observed ~100 ms.
struct ProxyCostModel {
  double request_parse_ms = 0.8;
  double per_description_comparison_us = 1.5;
  /// R-tree traversal makes dependent, branchy accesses while the array is
  /// one sequential scan over packed boxes; each R-tree box comparison is
  /// charged this multiple of the array's (why the paper finds "a linear
  /// search and a tree search have similar main memory performance" at
  /// cache-description sizes).
  double rtree_comparison_factor = 6.0;
  double per_relation_check_us = 10.0;
  double per_cached_tuple_scan_us = 150.0;
  double per_merge_tuple_us = 20.0;
  double per_response_tuple_us = 5.0;
  double per_origin_response_tuple_us = 10.0;
  /// Promoting a frozen/spilled entry back to the hot tier decodes its
  /// compressed columns; far cheaper than the XML-parse-dominated cached
  /// scan, but not free.
  double per_frozen_tuple_thaw_us = 2.0;
};

/// The tiered result store (docs/STORAGE.md): idle entries are compressed
/// into frozen columnar segments, the coldest frozen segments spill to disk,
/// and the whole cache (plus the stats baseline) can be snapshotted for a
/// warm restart.
struct StorageTierConfig {
  /// Master switch; off = every entry stays hot (pre-tiering behavior).
  bool enable = false;
  /// Idle time (virtual micros since last access) before a hot entry is
  /// compressed in place. 0 disables freezing.
  int64_t freeze_idle_micros = 2'000'000;
  /// Idle time before a frozen entry's segment moves to the spill
  /// directory. 0 (or an empty spill_dir) disables spilling.
  int64_t spill_idle_micros = 10'000'000;
  /// Directory receiving spilled segment files (one file per entry). Must
  /// exist; shared directories need distinct proxies' files to coexist, so
  /// point each proxy at its own subdirectory.
  std::string spill_dir;
  /// Bytes of spill files kept on disk; a sweep stops spilling at the cap.
  /// 0 = unlimited.
  size_t spill_max_bytes = 64ull << 20;
  /// A tier sweep (freeze + spill pass) runs every N handled requests.
  /// 0 disables periodic sweeps (they can still be driven via snapshots).
  uint64_t sweep_every_requests = 64;
  /// Snapshot file for warm restarts. When set, the proxy restores from it
  /// at construction (if it exists and restore_on_start) and writes it at
  /// clean shutdown; snapshot_every_requests adds periodic background
  /// writes so a crash loses at most that window.
  std::string snapshot_path;
  bool restore_on_start = true;
  uint64_t snapshot_every_requests = 0;
  /// Run sweeps and periodic snapshots on a dedicated maintenance thread
  /// (keeps compression and spill I/O off the request lane). Off = inline
  /// in Handle(), which keeps single-threaded traces deterministic.
  bool background_maintenance = true;
};

struct ProxyConfig {
  CachingMode mode = CachingMode::kActiveFull;
  /// Cache description implementation: R-tree (ACR) vs array (ACNR).
  bool use_rtree_description = false;
  /// Result-store budget in bytes; 0 = unlimited.
  size_t max_cache_bytes = 0;
  ReplacementPolicy replacement = ReplacementPolicy::kLru;
  /// Number of cache shards (each with its own reader–writer lock and
  /// description index). 1 preserves the seed's single-threaded behavior
  /// exactly; concurrent drivers typically use 8–16.
  size_t cache_shards = 1;
  ProxyCostModel costs;
  /// Circuit breaker guarding the origin channel (disabled by default).
  net::CircuitBreakerConfig breaker;
  /// When the origin is unreachable (breaker open or retries exhausted), an
  /// active proxy answers subsumed queries from the cache, serves the cached
  /// portion of overlapping queries annotated partial="true" with a coverage
  /// fraction, and returns 503 + Retry-After only when the cache contributes
  /// nothing. Off = every origin failure is surfaced as a gateway error.
  bool degraded_mode = true;
  /// Retry-After value on 503s when no breaker cooldown gives a better one.
  int64_t retry_after_seconds = 30;
  /// Single-flight collapsing: concurrent origin-bound requests for the
  /// same (template, non-spatial fingerprint) whose region is covered by an
  /// in-flight leader's region share that leader's origin fetch instead of
  /// issuing their own (the thundering-herd defense for flash crowds).
  bool collapse_inflight = true;
  /// How long a follower waits (wall clock) for its leader before giving up
  /// and fetching on its own. Generous by default: a leader that dies
  /// completes the flight as failed immediately, so this bound only guards
  /// against a leader wedged inside the origin channel.
  int64_t collapse_wait_millis = 30'000;
  /// Cooperative tier: quantization cell (per dimension) of the region
  /// ownership key. Queries whose bounding-box centers fall in the same cell
  /// map to the same owning proxy, so exact repeats and concentric contained
  /// variants probe the sibling that actually holds the covering entry.
  double peer_ownership_cell = 0.05;
  /// Admission control: maximum concurrently admitted requests. Above this
  /// the proxy sheds with 503 + Retry-After instead of queuing unboundedly.
  /// 0 disables admission control.
  size_t max_queue_depth = 0;
  /// Soft watermark (fraction of max_queue_depth): once in-flight requests
  /// exceed it, new *origin-bound* work is shed while cache hits, subsumed
  /// queries and single-flight followers still pass — the cheap lane keeps
  /// draining when the expensive lane is saturated.
  double origin_shed_watermark = 0.75;
  /// Async pipelined origin channel: the remainder query is issued *before*
  /// the cached portion is evaluated, so the WAN round trip overlaps the
  /// probe scan and the proxy merges on completion. Off = the historical
  /// serialized order (evaluate, then fetch).
  bool async_origin = true;
  /// Coalesce queued deadline-free remainder fetches from concurrent
  /// requests into one /sql/batch wire request (requires async_origin; the
  /// origin advertises support by answering the endpoint, see
  /// net::OriginChannel).
  bool coalesce_remainders = true;
  /// Dispatcher threads in the async origin channel; bounds concurrent
  /// origin wire requests issued through it.
  size_t origin_dispatchers = 8;
  /// Capacity of the in-memory ring of recent per-query traces served by
  /// GET /proxy/trace?last=N. 0 disables span recording entirely (the
  /// per-phase histograms behind GET /metrics stay on either way).
  size_t trace_ring_capacity = 64;
  /// Optional sink receiving every completed query trace (not owned; must
  /// outlive the proxy). `run_trace --trace-out=PATH` plugs a JSONL writer
  /// in here for offline analysis.
  obs::TraceSink* trace_sink = nullptr;
  /// Tiered storage: freeze / spill / warm-restart snapshots.
  StorageTierConfig storage;
};

/// Per-query bookkeeping used by the experiment harness. Cache efficiency is
/// the paper's metric: result tuples served from the proxy cache over total
/// result tuples of the query (§4.1).
struct QueryRecord {
  geometry::RegionRelation status = geometry::RegionRelation::kDisjoint;
  bool handled_by_template = false;
  bool contacted_origin = false;
  /// The request ended in an error or transport failure.
  bool failed = false;
  /// Answered (fully, partially, or refused) without a live origin.
  bool degraded = false;
  /// Served from another request's in-flight origin fetch (single-flight
  /// follower) — no origin round trip of its own.
  bool collapsed = false;
  /// Rejected by admission control (overload / origin backlog / deadline).
  bool shed = false;
  /// Served from a cooperative-tier sibling (peer hit or peer-flight join)
  /// — no origin round trip of its own.
  bool peer_hit = false;
  /// A peer probe failed (outage, garbage, or open peer breaker) and the
  /// request fell back to the origin.
  bool peer_degraded = false;
  /// Fraction of the query's region volume the answer covers; 1 except for
  /// degraded partial answers.
  double coverage = 1.0;
  size_t tuples_total = 0;
  size_t tuples_from_cache = 0;

  /// Cache efficiency (paper §4.1) with failure-aware conventions:
  ///  * failed requests score 0 — an error page serves no tuples;
  ///  * zero-tuple answers that contacted the origin score 0; zero-tuple
  ///    answers derived purely from cached knowledge score 1 (the cache
  ///    proved emptiness, doing all the work the origin would have done);
  ///  * degraded partial answers are scaled by the region coverage actually
  ///    served, so a half-covered overlap answered cache-only scores 0.5
  ///    rather than masquerading as a full answer.
  double CacheEfficiency() const {
    if (failed) return 0.0;
    double base;
    if (tuples_total == 0) {
      base = contacted_origin ? 0.0 : 1.0;
    } else {
      base = static_cast<double>(tuples_from_cache) /
             static_cast<double>(tuples_total);
    }
    return base * coverage;
  }
};

/// A plain, copyable snapshot of the proxy's statistics. The live counters
/// inside FunctionProxy are atomics; `FunctionProxy::stats()` materializes
/// them into this struct in a single pass, so a snapshot is internally
/// consistent enough for reporting even while requests are in flight.
struct ProxyStats {
  uint64_t requests = 0;
  /// XML rendering served by the proxy's /proxy/stats admin endpoint.
  std::string ToXml() const;
  uint64_t template_requests = 0;
  uint64_t exact_hits = 0;
  uint64_t containment_hits = 0;
  uint64_t region_containments = 0;
  uint64_t overlaps_handled = 0;
  uint64_t misses = 0;
  uint64_t origin_form_requests = 0;
  uint64_t origin_sql_requests = 0;
  /// Origin round trips that ended in failure after all retries.
  uint64_t origin_failures = 0;
  /// Retry attempts this proxy's origin traffic caused on its channel.
  uint64_t origin_retries = 0;
  /// Requests short-circuited without a round trip by an open breaker.
  uint64_t breaker_open_rejections = 0;
  /// Breaker state transitions so far (snapshot of the state machine).
  uint64_t breaker_transitions = 0;
  /// Degraded-mode answers: full (subsumed query served while the breaker
  /// was open), partial (overlap served from the cached portion only), and
  /// unavailable (503 — the cache contributed nothing).
  uint64_t degraded_full = 0;
  uint64_t degraded_partial = 0;
  uint64_t degraded_unavailable = 0;
  /// Overload-control counters: requests served off another request's
  /// origin fetch, requests shed by admission control (all reasons), and
  /// requests whose client deadline expired before an answer could fit.
  uint64_t collapsed = 0;
  uint64_t shed = 0;
  uint64_t deadline_exceeded = 0;
  /// Cooperative tier: probes sent to owning siblings (all outcomes),
  /// requests answered from a sibling's cache or in-flight fetch, and peer
  /// round trips that failed or returned garbage.
  uint64_t peer_lookups = 0;
  uint64_t peer_hits = 0;
  uint64_t peer_failures = 0;
  /// Sum of coverage fractions over degraded partial answers.
  double coverage_served = 0.0;
  int64_t check_micros = 0;
  int64_t local_eval_micros = 0;
  int64_t merge_micros = 0;
  std::vector<QueryRecord> records;

  double AverageCacheEfficiency() const;
};

/// A proxy's membership in a cooperative tier: its own node id, the shared
/// consistent-hash ring mapping region ownership keys to proxies, and one
/// breaker-guarded channel per sibling (keyed by node id, self excluded).
/// The ring and channels are owned by the tier topology (workload::ProxyTier)
/// and must outlive the proxy; configure before traffic starts.
struct PeerGroup {
  std::string self_id;
  const HashRing* ring = nullptr;
  std::map<std::string, net::PeerChannel*> peers;
};

/// The function proxy (paper Fig. 4): an HTTP handler that intercepts
/// search-form requests, uses registered templates to reason about the
/// queries behind them, answers what it can from cached results, and
/// collaborates with the origin site (original or remainder queries) for the
/// rest. Non-template traffic is tunneled through unchanged, except the
/// reserved admin endpoint /proxy/stats, which returns the live ProxyStats
/// and cache state as XML without contacting the origin.
///
/// Handle() is thread-safe: the cache is sharded with reader–writer locks,
/// statistics counters are atomics (per-query records live behind a small
/// mutex), and the relationship check hands back shared snapshots so entries
/// stay usable across concurrent eviction. Many worker threads may drive one
/// proxy instance (see util::ThreadPool / workload::ConcurrentDriver).
class FunctionProxy final : public net::HttpHandler {
 public:
  /// `templates`, `origin` and `clock` must outlive the proxy.
  FunctionProxy(ProxyConfig config, const TemplateRegistry* templates,
                net::SimulatedChannel* origin, util::SimulatedClock* clock);
  /// Drains the maintenance thread, then writes the clean-shutdown snapshot
  /// when config().storage.snapshot_path is set.
  ~FunctionProxy() override;

  net::HttpResponse Handle(const net::HttpRequest& request) override
      EXCLUDES(records_mu_);

  /// Consistent snapshot of the statistics (single pass over the atomics
  /// plus one lock acquisition for the per-query records).
  ProxyStats stats() const EXCLUDES(records_mu_);
  const CacheStore& cache() const { return *cache_; }
  const ProxyConfig& config() const { return config_; }
  const net::CircuitBreaker& breaker() const { return *breaker_; }

  /// Joins a cooperative tier (see PeerGroup). Not thread-safe with respect
  /// to Handle(): call during topology setup, before traffic.
  void set_peer_group(PeerGroup group) {
    peer_group_ = std::move(group);
    has_peers_ =
        peer_group_.ring != nullptr && !peer_group_.peers.empty();
  }
  const PeerGroup& peer_group() const { return peer_group_; }

  /// The metrics registry behind GET /metrics. All proxy counters and
  /// per-phase latency histograms live here (see docs/OBSERVABILITY.md for
  /// the catalog); /proxy/stats renders from the same instruments, so the
  /// two endpoints can never disagree. The mutable overload lets the
  /// experiment harness co-register its own instruments (e.g. client-side
  /// latency) so one scrape covers the whole pipeline.
  const obs::MetricsRegistry& metrics() const { return registry_; }
  obs::MetricsRegistry& metrics() { return registry_; }
  /// Ring of recent completed query traces (GET /proxy/trace?last=N).
  const obs::TraceRing& trace_ring() const { return trace_ring_; }

  /// Persists the active cache (result files + manifest) to `directory`,
  /// which must exist — the paper's proxy keeps its cached query results as
  /// XML files on disk.
  util::Status SaveCache(const std::string& directory) const;
  /// Warm-starts the cache from a snapshot; returns entries restored.
  /// Passive-mode items are not persisted (they are raw response bodies).
  util::StatusOr<size_t> LoadCache(const std::string& directory);

  /// Writes a warm-restart snapshot (docs/FORMATS.md §13): every cache
  /// entry as a compressed frozen segment plus the statistics baseline
  /// (counters, per-query records, coverage) needed to make a restarted
  /// proxy's /proxy/stats XML byte-identical to the writer's. Atomic
  /// (tmp + rename); safe to call concurrently with traffic.
  util::Status WriteSnapshot(const std::string& path) const
      EXCLUDES(records_mu_);
  /// Restores entries + stats baseline from a WriteSnapshot file. Intended
  /// for a freshly constructed proxy (counters are *incremented* by the
  /// snapshot values); returns the number of cache entries restored.
  util::StatusOr<size_t> RestoreSnapshot(const std::string& path)
      EXCLUDES(records_mu_);

 private:
  struct PassiveItem {
    std::string body;
    size_t rows = 0;
    size_t bytes = 0;
    int64_t last_access = 0;
  };

  /// Live statistics: raw pointers into registry-owned instruments (stable
  /// for the proxy's lifetime; every increment is one relaxed atomic add).
  /// The same instruments back GET /metrics, stats() / ProxyStats::ToXml()
  /// and the per-phase histograms — one set of atomics, three renderings.
  struct Instruments {
    obs::Counter* requests = nullptr;
    obs::Counter* template_requests = nullptr;
    obs::Counter* exact_hits = nullptr;
    obs::Counter* containment_hits = nullptr;
    obs::Counter* region_containments = nullptr;
    obs::Counter* overlaps_handled = nullptr;
    obs::Counter* misses = nullptr;
    obs::Counter* origin_form_requests = nullptr;
    obs::Counter* origin_sql_requests = nullptr;
    obs::Counter* origin_failures = nullptr;
    obs::Counter* breaker_open_rejections = nullptr;
    obs::Counter* degraded_full = nullptr;
    obs::Counter* degraded_partial = nullptr;
    obs::Counter* degraded_unavailable = nullptr;
    /// Overload control: single-flight followers served off a leader's
    /// fetch, sheds by reason, and deadline expirations.
    obs::Counter* inflight_collapsed = nullptr;
    obs::Counter* shed_overload = nullptr;
    obs::Counter* shed_origin_backlog = nullptr;
    obs::Counter* shed_deadline = nullptr;
    obs::Counter* deadline_exceeded = nullptr;
    /// Cooperative tier: peer lookups by outcome, failed peer round trips,
    /// entries exchanged by direction, and remote single-flight joins.
    obs::Counter* peer_lookup_hit = nullptr;
    obs::Counter* peer_lookup_flight = nullptr;
    obs::Counter* peer_lookup_lead = nullptr;
    obs::Counter* peer_lookup_miss = nullptr;
    obs::Counter* peer_lookup_error = nullptr;
    obs::Counter* peer_lookup_breaker_open = nullptr;
    obs::Counter* peer_failures = nullptr;
    obs::Counter* peer_entries_pushed = nullptr;
    obs::Counter* peer_entries_received = nullptr;
    obs::Counter* peer_flight_joins = nullptr;
    /// Modeled virtual-time totals (exact computed costs, deterministic even
    /// under concurrency — unlike span durations read off the shared clock).
    obs::Counter* check_micros = nullptr;
    obs::Counter* local_eval_micros = nullptr;
    obs::Counter* merge_micros = nullptr;
    /// End-to-end request latency, virtual and wall clock.
    obs::Histogram* request_duration = nullptr;
    obs::Histogram* request_wall = nullptr;
    /// Per-phase virtual-time latency, one histogram per pipeline phase.
    obs::Histogram* phase_template_match = nullptr;
    obs::Histogram* phase_cache_lookup = nullptr;
    obs::Histogram* phase_local_eval = nullptr;
    obs::Histogram* phase_remainder_build = nullptr;
    obs::Histogram* phase_origin_roundtrip = nullptr;
    obs::Histogram* phase_merge = nullptr;
    obs::Histogram* phase_serialize = nullptr;
    obs::Histogram* phase_cache_admit = nullptr;
    obs::Histogram* phase_peer_lookup = nullptr;
    /// Storage tier: sweep (freeze+spill) wall time and on-demand
    /// promotion (thaw / spill fault-back) virtual time.
    obs::Histogram* phase_spill = nullptr;
    obs::Histogram* phase_restore = nullptr;
    /// Relationship-check cost by resulting relation, indexed by
    /// geometry::RegionRelation.
    obs::Histogram* region_compare[5] = {};
  };

  /// Registers every instrument and render-time callback (cache, breaker,
  /// origin channel) into registry_. Constructor-only.
  void RegisterInstruments();

  /// `deadline_micros` is the client's absolute virtual-clock deadline
  /// (0 = none), parsed from X-Deadline-Micros by Handle and threaded down
  /// to every origin round trip.
  net::HttpResponse Forward(const net::HttpRequest& request,
                            int64_t deadline_micros, QueryRecord* record,
                            obs::QueryTrace* trace);
  net::HttpResponse HandlePassive(const net::HttpRequest& request,
                                  int64_t deadline_micros, QueryRecord* record,
                                  obs::QueryTrace* trace);
  net::HttpResponse HandleActive(const net::HttpRequest& request,
                                 const QueryTemplate& qt,
                                 const FunctionTemplate& ft,
                                 int64_t deadline_micros, QueryRecord* record,
                                 obs::QueryTrace* trace);

  /// Admin endpoints (reserved paths, never forwarded to the origin).
  net::HttpResponse HandleStats();
  net::HttpResponse HandleMetrics();
  net::HttpResponse HandleTrace(const net::HttpRequest& request);

  /// RAII for a peer-flight ticket: the remote owner made this request the
  /// tier-wide leader for its subsumption class (X-Peer-Outcome: lead), so
  /// remote followers block on the owner's flight until this request pushes
  /// its origin result — or its failure — via /peer/entry. Unless Fulfill()
  /// ran with an admitted entry, the destructor pushes a failure so no exit
  /// path (error return, shed, exception) strands remote followers past the
  /// owner's reap deadline.
  class PeerFlightGuard {
   public:
    PeerFlightGuard() = default;
    PeerFlightGuard(const PeerFlightGuard&) = delete;
    PeerFlightGuard& operator=(const PeerFlightGuard&) = delete;
    ~PeerFlightGuard() {
      if (proxy_ != nullptr) proxy_->PushPeerEntry(peer_, token_, entry_);
    }
    void Arm(FunctionProxy* proxy, net::PeerChannel* peer, uint64_t token) {
      proxy_ = proxy;
      peer_ = peer;
      token_ = token;
    }
    void Fulfill(std::shared_ptr<const CacheEntry> entry) {
      entry_ = std::move(entry);
    }

   private:
    FunctionProxy* proxy_ = nullptr;
    net::PeerChannel* peer_ = nullptr;
    uint64_t token_ = 0;
    std::shared_ptr<const CacheEntry> entry_;
  };

  /// Cooperative-tier peer endpoints (reserved paths; siblings only).
  /// /peer/lookup: serves a covering cached entry, joins an in-flight local
  /// fetch on the caller's behalf, or hands the caller a peer-flight ticket.
  net::HttpResponse HandlePeerLookup(const net::HttpRequest& request);
  /// /peer/entry: a tier leader pushing its origin result (or failure) back
  /// to complete the flight this proxy holds open for it.
  net::HttpResponse HandlePeerEntry(const net::HttpRequest& request);

  /// Local miss: probes the sibling owning this query's region key before
  /// paying the origin round trip. Returns the response when the peer
  /// served the query (entry admitted locally, local flight fulfilled);
  /// nullopt means proceed to the origin — with `peer_flight` armed when
  /// the owner made this request the tier-wide leader.
  std::optional<net::HttpResponse> ProbePeer(
      const QueryTemplate& qt, const FunctionTemplate& ft,
      const geometry::Region& region, const std::string& nonspatial_fp,
      const std::map<std::string, sql::Value>& params,
      int64_t deadline_micros, QueryRecord* record, obs::QueryTrace* trace,
      FlightGuard* local_flight, PeerFlightGuard* peer_flight);

  /// Pushes `entry` (null = the fetch failed) to the owner holding flight
  /// `token` open. Called by PeerFlightGuard.
  void PushPeerEntry(net::PeerChannel* peer, uint64_t token,
                     const std::shared_ptr<const CacheEntry>& entry);

  /// Completes (as failed) peer-led flights whose leader never pushed
  /// within the collapse-wait bound, so local followers are not stranded by
  /// a crashed or partitioned remote leader.
  void ReapExpiredPeerFlights();

  /// Fetches from the origin via the form endpoint, parses the XML result
  /// and returns the table; advances the clock for parsing. Null status on
  /// origin error.
  util::StatusOr<sql::Table> FetchFromOrigin(const net::HttpRequest& request,
                                             int64_t deadline_micros,
                                             QueryRecord* record,
                                             obs::QueryTrace* trace);
  /// Ships a remainder statement through /sql and parses the result.
  util::StatusOr<sql::Table> FetchRemainder(const sql::SelectStatement& stmt,
                                            int64_t deadline_micros,
                                            QueryRecord* record,
                                            obs::QueryTrace* trace);

  /// A remainder fetch in flight on the async origin channel, issued ahead
  /// of probe evaluation so the WAN round trip overlaps local work.
  struct RemainderFlight {
    std::future<net::HttpResponse> response;
  };
  /// Issues `stmt` through the async origin channel after FetchRemainder's
  /// breaker and deadline admission checks. On success, `origin_span` is
  /// emplaced with the origin_roundtrip span *before* the request reaches a
  /// dispatcher thread — once enqueued the dispatcher advances the shared
  /// virtual clock concurrently, and a later start stamp would
  /// nondeterministically exclude those advances from the observed
  /// duration. The returned flight must be passed to AwaitRemainder.
  util::StatusOr<RemainderFlight> StartRemainder(
      const sql::SelectStatement& stmt, int64_t deadline_micros,
      QueryRecord* record, obs::QueryTrace* trace,
      std::optional<obs::ScopedSpan>* origin_span);
  /// Blocks on the flight and applies FetchRemainder's error mapping,
  /// parsing and cost accounting. `span` is the origin_roundtrip span the
  /// caller opened at issue time (annotated here, finished by the caller).
  util::StatusOr<sql::Table> AwaitRemainder(RemainderFlight flight,
                                            obs::ScopedSpan* span);

  /// Serializes and returns `table` as the response, charging assembly time.
  net::HttpResponse Respond(const sql::Table& table, obs::QueryTrace* trace);
  /// Columnar responses: serialize straight from the cached representation —
  /// whole table, or just the rows in `selection` (zero row materialization).
  net::HttpResponse Respond(const sql::ColumnarTable& table,
                            obs::QueryTrace* trace);
  net::HttpResponse Respond(const sql::ColumnarTable& table,
                            const std::vector<uint32_t>& selection,
                            obs::QueryTrace* trace);
  /// Respond() with partial="true" and the coverage fraction on the root
  /// element (degraded-mode overlap answers).
  net::HttpResponse RespondPartial(const sql::ColumnarTable& table,
                                   const std::vector<uint32_t>& selection,
                                   double coverage, const std::string& reason,
                                   obs::QueryTrace* trace);
  /// 503 with Retry-After (breaker cooldown when open, config default
  /// otherwise) and the machine-readable reason mirrored in both the body
  /// and an X-Shed-Reason header for the driver to record.
  net::HttpResponse Unavailable(const std::string& reason);

  /// Breaker admission check for the origin channel. False means no round
  /// trip may be made now.
  bool OriginAllowed();
  /// True while the breaker is open (degraded bookkeeping for cache-only
  /// answers served during an outage).
  bool BreakerOpen() const;
  /// Feeds an origin round-trip outcome to the breaker and failure stats.
  /// `usable` is false for transport errors, 5xx responses, and well-formed
  /// responses whose body failed to parse (garbage).
  void NoteOriginOutcome(bool usable);

  /// Single-flight collapsing: joins an in-flight leader whose region
  /// covers (template, fingerprint, region) and serves this request locally
  /// from the leader's admitted entry (returns the response), or arms
  /// `guard` as the new leader (nullopt, guard armed), or decides this
  /// request should fetch solo — collapsing off for this query shape,
  /// unusable leader result, or retry rounds exhausted (nullopt, guard
  /// unarmed).
  std::optional<net::HttpResponse> CollapseOrLead(
      const QueryTemplate& qt, const FunctionTemplate& ft,
      const geometry::Region& region, const std::string& nonspatial_fp,
      const std::map<std::string, sql::Value>& params, QueryRecord* record,
      obs::QueryTrace* trace, FlightGuard* guard);

  /// Soft-shed check for the two-priority lane: true once in-flight
  /// requests exceed origin_shed_watermark * max_queue_depth, meaning new
  /// origin-bound work should be refused while cache-served work passes.
  bool OriginBacklogged() const;
  /// True when the remaining client budget cannot fit even one origin round
  /// trip (propagation delay + transfer of `request_bytes` and a minimal
  /// response) — the short-circuit that turns a doomed WAN trip into an
  /// immediate degraded answer.
  bool DeadlineTooTightForOrigin(int64_t deadline_micros,
                                 size_t request_bytes) const;

  /// Virtual cost of `comparisons` box comparisons in the cache description
  /// (R-tree comparisons cost more per unit; see ProxyCostModel).
  double DescriptionCostMicros(size_t comparisons) const;

  /// Inserts a result into the cache (active modes). Accepts the columnar
  /// form directly (row-wise tables convert implicitly) and pre-resolves
  /// `coordinate_columns` to contiguous double arrays before the entry is
  /// frozen, so later region scans run without conversion. Returns the
  /// admitted immutable snapshot (null when not cacheable) so single-flight
  /// leaders can publish it to their followers.
  std::shared_ptr<const CacheEntry> CacheResult(
      const QueryTemplate& qt, const std::string& nonspatial_fp,
      const std::string& param_fp, const geometry::Region& region,
      sql::ColumnarTable result,
      const std::vector<std::string>& coordinate_columns, bool truncated,
      obs::QueryTrace* trace);

  void ChargeMicros(double micros) {
    clock_->Advance(static_cast<int64_t>(micros));
  }

  /// Returns a tier-hot version of `entry` whose `result` holds tuples,
  /// promoting (thaw / spill fault-back) through the cache when the
  /// relationship check handed back a frozen or spilled snapshot. Null when
  /// the entry vanished and its tuples are unrecoverable (treat as a
  /// miss). Charges thaw cost and records the `restore` phase.
  std::shared_ptr<const CacheEntry> EnsureHot(
      const std::shared_ptr<const CacheEntry>& entry, obs::QueryTrace* trace);

  /// Periodic storage maintenance driven off the request count: tier
  /// sweeps (freeze + spill) and background snapshot writes, dispatched to
  /// the maintenance thread when background_maintenance is on.
  void MaybeRunMaintenance();
  /// One freeze/spill pass over the cache; records the `spill` phase (wall
  /// time — runs off the virtual-clock request lane).
  void RunTierSweep(int64_t now_micros);
  /// WriteSnapshot + outcome counters (shared by the periodic writer and
  /// the clean-shutdown path).
  void WriteSnapshotAndCount() EXCLUDES(records_mu_);
  /// The counters persisted in a snapshot's STATS section, in wire order.
  /// Append-only: reordering or removing a slot breaks old snapshots.
  std::vector<obs::Counter*> SnapshotCounters() const;

  ProxyConfig config_;
  const TemplateRegistry* templates_;
  net::SimulatedChannel* origin_;
  /// Async front-end over origin_ (remainder pipelining + coalescing);
  /// created only when config_.async_origin is set.
  std::unique_ptr<net::OriginChannel> origin_async_;
  util::SimulatedClock* clock_;
  std::unique_ptr<CacheStore> cache_;
  std::unique_ptr<net::CircuitBreaker> breaker_;
  /// Single-flight in-flight table (request collapsing).
  SingleFlightTable inflight_;
  /// Concurrently admitted requests (admission-control gauge; admin
  /// endpoints are not counted).
  std::atomic<int64_t> inflight_requests_{0};
  /// Channel retry counters at construction (channels may be shared).
  uint64_t channel_retries_baseline_ = 0;
  /// Cooperative-tier membership (empty when running standalone).
  PeerGroup peer_group_;
  bool has_peers_ = false;
  /// Flights led by a remote prober: token -> virtual-clock deadline by
  /// which the /peer/entry push must arrive before the flight is reaped.
  util::Mutex peer_mu_;
  std::map<uint64_t, int64_t> pending_peer_flights_ GUARDED_BY(peer_mu_);

  // Passive-mode storage: exact-URL-keyed raw responses with LRU eviction
  // (a plain map: passive mode is the paper's baseline, not the
  // concurrency hot path).
  util::Mutex passive_mu_;
  std::map<std::string, PassiveItem> passive_items_ GUARDED_BY(passive_mu_);
  size_t passive_bytes_ GUARDED_BY(passive_mu_) = 0;

  /// Registry first: instruments in ins_ point into it, and callbacks it
  /// holds read cache_/breaker_/origin_ (all outlive renders).
  obs::MetricsRegistry registry_;
  Instruments ins_;
  obs::TraceRing trace_ring_;
  std::atomic<uint64_t> next_trace_id_{0};
  /// Guards records_ and coverage_served_ (doubles have no atomic +=).
  mutable util::Mutex records_mu_;
  std::vector<QueryRecord> records_ GUARDED_BY(records_mu_);
  double coverage_served_ GUARDED_BY(records_mu_) = 0.0;

  // --- Storage tier (docs/STORAGE.md) ---------------------------------------
  /// Single maintenance worker for sweeps and periodic snapshots (created
  /// only when storage.enable && background_maintenance). Tasks touch only
  /// atomics and internally locked state (cache_, records_mu_), per the
  /// repo's async-capture rules.
  std::unique_ptr<util::ThreadPool> maintenance_pool_;
  std::atomic<uint64_t> maintenance_ticks_{0};
  /// At most one sweep / one snapshot queued or running at a time.
  std::atomic<bool> sweep_scheduled_{false};
  std::atomic<bool> snapshot_scheduled_{false};
  std::atomic<uint64_t> sweeps_run_{0};
  std::atomic<uint64_t> snapshots_written_{0};
  std::atomic<uint64_t> snapshot_errors_{0};
  std::atomic<uint64_t> restored_entries_{0};
  /// Stats carried over from the snapshotted process: origin_retries and
  /// breaker_transitions are computed live from the channel/breaker, so a
  /// restarted proxy adds these baselines to keep /proxy/stats continuous.
  std::atomic<uint64_t> restored_origin_retries_{0};
  std::atomic<uint64_t> restored_breaker_transitions_{0};
};

}  // namespace fnproxy::core

#endif  // FNPROXY_CORE_PROXY_H_
