#ifndef FNPROXY_CORE_CACHE_SNAPSHOT_H_
#define FNPROXY_CORE_CACHE_SNAPSHOT_H_

#include <memory>
#include <string>

#include "core/cache_store.h"
#include "geometry/region.h"
#include "util/status.h"

namespace fnproxy::core {

/// Region (de)serialization for persisted cache metadata:
///   <Region shape="hypersphere" dims="3"><Center>..</Center><Radius>..</Radius>
///   <Region shape="hyperrectangle" ...><Lo>..</Lo><Hi>..</Hi>
///   <Region shape="polytope" ...><Halfspaces>..</Halfspaces><Vertices>..</Vertices>
/// Coordinates are space-separated decimal values that round-trip exactly.
std::string RegionToXml(const geometry::Region& region);
util::StatusOr<std::unique_ptr<geometry::Region>> RegionFromXml(
    std::string_view xml_text);

/// Persists the cache as the paper's proxy does — one XML result file per
/// cached query plus a manifest describing each entry's template, parameter
/// fingerprints and region:
///
///   <dir>/manifest.xml
///   <dir>/entry-<id>.xml      (sql::TableToXml result files)
///
/// The directory must exist; existing snapshot files are overwritten.
util::Status SaveCacheSnapshot(const CacheStore& cache,
                               const std::string& directory);

/// Loads a snapshot into `cache` (which should be empty; entries get fresh
/// ids). Returns the number of entries restored. Oversized entries that no
/// longer fit the byte budget are skipped, subject to normal insertion
/// rules.
util::StatusOr<size_t> LoadCacheSnapshot(const std::string& directory,
                                         CacheStore* cache);

}  // namespace fnproxy::core

#endif  // FNPROXY_CORE_CACHE_SNAPSHOT_H_
